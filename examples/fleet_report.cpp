// fleet_report: the full 77-day reproduction. Prints every table/figure of
// the paper (measured vs published) and exports figure data as CSV.
//
//   $ ./fleet_report [output_dir] [days] [seed] [scenario.ini]
//                    [--workers N] [--snapshot-dir DIR]
//                    [--shards N] [--scale-labs K]
//                    [--fault-plan plan.ini] [--retry N]
//                    [--stream] [--pipeline] [--spill-dir DIR] [--resume]
//                    [--spill-codec lmsg1|lmsg2]
//                    [--block-samples N] [--ring-capacity N]
//                    [--anomaly-threshold Z]
//                    [--metrics-out m.prom]
//                    [--trace-out t.json] [--events-out e.jsonl]
//                    [--prof-out prof.json]
//                    [--harvest-dag N] [--job-mix NAME] [--deadline HOURS]
//
// --harvest-dag N switches to harvest mode: instead of the monitoring
// report, an opportunistic DAG of N jobs (shape from --job-mix: bag,
// chain, fanio, layered or mixed — default mixed) is scheduled on the
// idle machines of the same simulated campus, and a goodput/eviction/
// equivalence summary is printed. --deadline HOURS gives every job a
// soft deadline that many hours after submission (misses are counted,
// not enforced). --fault-plan applies chaos to the harvest too.
//
// --stream runs the campaign through the streaming engine: collection
// seals fixed-size trace blocks (--block-samples, default 65536) instead
// of materialising the trace, the merge re-streams them and the analyses
// fold incrementally — peak memory is O(block), independent of --days,
// and the analysis output is bit-identical to the materialised engine.
// --spill-dir DIR spills sealed blocks to per-lab checkpointed segments
// in DIR; --resume reuses valid checkpoints found there (a campaign
// killed mid-run restarts where it left off). --spill-codec picks the
// segment format for newly written spills (default lmsg2, the per-column
// compressed one; lmsg1 is the uncompressed original) — read-back always
// dispatches on each segment's own magic, so resume may mix codecs and
// the analyses are bit-identical either way. --pipeline runs the
// streaming campaign through the pipelined engine instead: shard workers
// overlap simulation with the merge and the analysis fold via a bounded
// staging ring (--ring-capacity, default 64 blocks), same bit-identical
// output; the run summary adds ring/merge-lag/arena-reuse stats and
// --prof-out wraps the profile as {"prof": ..., "pipeline": ...}.
// --anomaly-threshold Z
// enables online per-machine z-score anomaly detection (|z| >= Z on
// memory load and CPU idle) and writes anomalies.jsonl into output_dir.
// Streaming mode skips the CSV/trace exports (there is no materialised
// trace to export).
//
// --shards N runs the simulation over N real threads (0 = one per core,
// default). Output-invariant: any shard count yields the bit-identical
// trace and replays the same snapshot. --scale-labs K replicates the 11
// paper labs K times (169*K machines) for scale studies.
//
// --fault-plan loads a labmon::faultsim scenario (crashes, lab outages,
// wire corruption, ...) injected at the transport boundary; --retry N
// bounds collection retries per machine per iteration (default 1 = no
// retries). Without either flag the run is bit-identical to a build
// without the fault layer.
//
// --snapshot-dir reuses a content-keyed experiment snapshot from DIR (and
// writes one after simulating), so repeated reports on the same config
// skip the simulation entirely. Defaults to $LABMON_SNAPSHOT_DIR.
//
// --workers bounds the analysis-pipeline sweep (0 = all cores); the
// report is bitwise identical for any worker count.
//
// --metrics-out wires the collector into the obs default registry and
// writes a Prometheus text file plus a campaign health report (response
// rate per lab, iteration-overrun distribution — the paper's 6,883-vs-7,392
// effect made visible). --trace-out enables span tracing and writes a
// Chrome trace_event JSON loadable in chrome://tracing / Perfetto.
// --events-out writes the JSONL event stream (log lines + spans + metrics).
//
// --prof-out PATH enables the obs::prof profiler for the whole run and
// writes the per-shard x per-phase wall/allocation report to PATH plus a
// chrome://tracing timeline next to it (PATH with a "_trace.json" suffix).
// Profiling never changes the collected trace (bit-identical on or off).
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "labmon/analysis/aggregate.hpp"
#include "labmon/analysis/availability.hpp"
#include "labmon/analysis/capacity.hpp"
#include "labmon/analysis/equivalence.hpp"
#include "labmon/analysis/per_lab.hpp"
#include "labmon/analysis/session_hours.hpp"
#include "labmon/analysis/stability.hpp"
#include "labmon/analysis/weekly.hpp"
#include "labmon/core/experiment.hpp"
#include "labmon/core/report.hpp"
#include "labmon/core/streaming.hpp"
#include "labmon/faultsim/fault_plan.hpp"
#include "labmon/harvest/dag_scheduler.hpp"
#include "labmon/obs/exporters.hpp"
#include "labmon/obs/prof.hpp"
#include "labmon/trace/binary_io.hpp"
#include "labmon/winsim/paper_specs.hpp"
#include "labmon/workload/config_io.hpp"
#include "labmon/workload/driver.hpp"
#include "labmon/util/log.hpp"
#include "labmon/util/strings.hpp"

namespace {

using namespace labmon;

/// Response rate per lab and the overrun distribution, computed straight
/// from the registry snapshot (exercises the same data a scrape would see).
std::string CampaignHealthReport(const obs::Registry& registry) {
  std::ostringstream out;
  out << "--- campaign health (from metrics registry) ---\n";
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> by_lab;
  for (const auto& family : registry.Snapshot()) {
    if (family.name == "labmon_ddc_probe_outcomes_total") {
      for (const auto& point : family.counters) {
        std::string lab;
        std::string outcome;
        for (const auto& [key, value] : point.labels) {
          if (key == "lab") lab = value;
          if (key == "outcome") outcome = value;
        }
        auto& [ok, total] = by_lab[lab];
        total += point.value;
        if (outcome == "ok") ok += point.value;
      }
    } else if (family.name == "labmon_ddc_iteration_overrun_seconds") {
      for (const auto& point : family.histograms) {
        out << "iteration overrun distribution (" << point.count
            << " iterations):\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < point.boundaries.size(); ++i) {
          cumulative += point.buckets[i];
          out << "  <= " << util::FormatFixed(point.boundaries[i], 0)
              << " s: " << cumulative << '\n';
        }
        out << "  >  "
            << util::FormatFixed(point.boundaries.empty()
                                     ? 0.0
                                     : point.boundaries.back(),
                                 0)
            << " s: " << point.count - cumulative << '\n';
        out << "  mean overrun: "
            << util::FormatFixed(
                   point.count ? point.sum / static_cast<double>(point.count)
                               : 0.0,
                   1)
            << " s\n";
      }
    }
  }
  out << "response rate per lab:\n";
  for (const auto& [lab, counts] : by_lab) {
    const auto [ok, total] = counts;
    out << "  " << lab << ": "
        << util::FormatFixed(
               total ? 100.0 * static_cast<double>(ok) /
                           static_cast<double>(total)
                     : 0.0,
               1)
        << "% (" << ok << "/" << total << ")\n";
  }
  return out.str();
}

/// Pipeline stats as a JSON object — spliced into --prof-out so the same
/// file carries the per-phase profile and the ring/merge/arena counters
/// (the numbers bench/prof_gate budgets).
std::string PipelineStatsJson(const core::PipelineStats& s) {
  std::ostringstream json;
  json << "{\"staged_blocks\": " << s.staged_blocks
       << ", \"ring_capacity\": " << s.ring_capacity
       << ", \"ring_peak_occupancy\": " << s.ring_peak_occupancy
       << ", \"ring_push_stalls\": " << s.ring_push_stalls
       << ", \"ring_pop_stalls\": " << s.ring_pop_stalls
       << ", \"ring_push_wait_s\": " << util::FormatFixed(s.ring_push_wait_s, 6)
       << ", \"ring_pop_wait_s\": " << util::FormatFixed(s.ring_pop_wait_s, 6)
       << ", \"merge_lag_peak_blocks\": " << s.merge_lag_peak_blocks
       << ", \"arena_acquired\": " << s.arena_acquired
       << ", \"arena_reused\": " << s.arena_reused
       << ", \"arena_reuse_ratio\": "
       << util::FormatFixed(s.arena_reuse_ratio, 4)
       << ", \"wall_s\": " << util::FormatFixed(s.wall_s, 6)
       << ", \"pipeline_wall_s\": " << util::FormatFixed(s.pipeline_wall_s, 6)
       << ", \"serial_fraction\": "
       << util::FormatFixed(s.serial_fraction, 4) << "}";
  return json.str();
}

bool WriteFileOrComplain(const std::string& path,
                         const std::function<void(std::ostream&)>& fill) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return false;
  }
  fill(out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::log::SetLevel(util::log::Level::kInfo);

  std::string metrics_out;
  std::string trace_out;
  std::string events_out;
  std::string prof_out;
  std::string snapshot_dir;
  std::string fault_plan_path;
  int retry_attempts = 0;
  int shards = 0;
  int scale_labs = 0;  // 0 = not passed; keep the scenario/default value
  bool stream = false;
  bool use_pipeline = false;
  bool resume = false;
  std::string spill_dir;
  trace::SpillCodecId spill_codec = trace::kDefaultSpillCodec;
  std::size_t block_samples = 0;  // 0 = engine default
  std::size_t ring_capacity = 0;  // 0 = engine default
  double anomaly_threshold = 0.0;
  std::size_t harvest_jobs = 0;  // > 0 switches to harvest mode
  harvest::JobMixKind job_mix = harvest::JobMixKind::kMixed;
  double deadline_hours = 0.0;
  if (const char* env = std::getenv("LABMON_SNAPSHOT_DIR")) snapshot_dir = env;
  std::size_t workers = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](const char* name) -> const char* {
      if (arg != name) return nullptr;
      if (i + 1 >= argc) {
        std::cerr << name << " requires a path argument\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (const char* v = flag_value("--metrics-out")) {
      metrics_out = v;
    } else if (const char* v = flag_value("--trace-out")) {
      trace_out = v;
    } else if (const char* v = flag_value("--events-out")) {
      events_out = v;
    } else if (const char* v = flag_value("--prof-out")) {
      prof_out = v;
    } else if (const char* v = flag_value("--snapshot-dir")) {
      snapshot_dir = v;
    } else if (const char* v = flag_value("--workers")) {
      workers = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = flag_value("--fault-plan")) {
      fault_plan_path = v;
    } else if (const char* v = flag_value("--retry")) {
      retry_attempts = std::atoi(v);
    } else if (const char* v = flag_value("--shards")) {
      // 0 = auto (one per core); clamp nonsense values instead of dying —
      // the shard count cannot change the output anyway.
      shards = std::clamp(std::atoi(v), 0, 1024);
    } else if (const char* v = flag_value("--scale-labs")) {
      scale_labs = std::clamp(std::atoi(v), 1, 1024);
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--pipeline") {
      use_pipeline = true;
      stream = true;  // the pipelined engine is a streaming engine
    } else if (arg == "--resume") {
      resume = true;
    } else if (const char* v = flag_value("--spill-dir")) {
      spill_dir = v;
    } else if (const char* v = flag_value("--spill-codec")) {
      const auto parsed = trace::ParseSpillCodecName(v);
      if (!parsed) {
        std::cerr << "unknown --spill-codec \"" << v
                  << "\" (want lmsg1 or lmsg2)\n";
        return 1;
      }
      spill_codec = *parsed;
    } else if (const char* v = flag_value("--block-samples")) {
      block_samples = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = flag_value("--ring-capacity")) {
      ring_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = flag_value("--anomaly-threshold")) {
      anomaly_threshold = std::atof(v);
    } else if (const char* v = flag_value("--harvest-dag")) {
      harvest_jobs = static_cast<std::size_t>(std::atoll(v));
      if (harvest_jobs == 0) {
        std::cerr << "--harvest-dag wants a positive job count\n";
        return 1;
      }
    } else if (const char* v = flag_value("--job-mix")) {
      const auto parsed = harvest::ParseJobMixName(v);
      if (!parsed) {
        std::cerr << "unknown --job-mix \"" << v
                  << "\" (want bag, chain, fanio, layered or mixed)\n";
        return 1;
      }
      job_mix = *parsed;
    } else if (const char* v = flag_value("--deadline")) {
      deadline_hours = std::atof(v);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << '\n';
      return 1;
    } else {
      positional.push_back(arg);
    }
  }

  const std::string out_dir = !positional.empty() ? positional[0] : "report_out";
  // Create the output directory up front: exporter files (--events-out
  // etc.) commonly point inside it and are opened before the CSV writer
  // would otherwise create it.
  {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::cerr << "cannot create directory: " << out_dir << '\n';
      return 1;
    }
  }
  core::ExperimentConfig config;
  if (positional.size() > 1) config.campus.days = std::atoi(positional[1].c_str());
  if (positional.size() > 2) {
    config.campus.seed =
        static_cast<std::uint64_t>(std::atoll(positional[2].c_str()));
  }
  if (positional.size() > 3) {
    auto loaded = workload::LoadCampusConfig(positional[3], config.campus);
    if (!loaded.ok()) {
      std::cerr << "scenario file error: " << loaded.error() << '\n';
      return 1;
    }
    config.campus = loaded.value();
    std::cout << "scenario overrides loaded from " << positional[3] << "\n";
  }
  if (!fault_plan_path.empty()) {
    auto plan = faultsim::LoadFaultPlan(fault_plan_path);
    if (!plan.ok()) {
      std::cerr << "fault plan error: " << plan.error() << '\n';
      return 1;
    }
    config.fault_plan = plan.value();
    std::cout << "fault plan loaded from " << fault_plan_path << "\n";
  }
  if (retry_attempts > 0) config.collector.retry.max_attempts = retry_attempts;
  config.shards = shards;
  if (scale_labs > 0) config.campus.scale_labs = scale_labs;

  if (harvest_jobs > 0) {
    // Harvest mode: schedule an opportunistic DAG on the idle machines of
    // the same simulated campus instead of running the monitoring report.
    util::Rng rng(config.campus.seed);
    winsim::Fleet fleet = winsim::MakePaperFleet(rng);
    workload::WorkloadDriver driver(fleet, config.campus);
    harvest::JobMixOptions mix;
    mix.kind = job_mix;
    mix.jobs = harvest_jobs;
    mix.seed = config.campus.seed;
    if (deadline_hours > 0.0) {
      mix.deadline = static_cast<util::SimTime>(deadline_hours * 3600.0);
    }
    const harvest::JobDag dag = harvest::MakeJobMix(mix);
    harvest::DagPolicy policy;
    harvest::DagScheduler scheduler(fleet, driver, policy);
    if (config.fault_plan.Active()) scheduler.SetFaultPlan(config.fault_plan);
    const harvest::DagResult r =
        scheduler.Run(dag, 0, config.campus.EndTime());

    std::cout << "--- harvest dag summary ---\n";
    std::cout << "mix: " << harvest::JobMixName(job_mix) << ", "
              << r.jobs_total << " jobs ("
              << util::FormatFixed(dag.TotalIndexSeconds() / 3600.0, 1)
              << " index-hours), " << config.campus.days
              << "-day horizon, seed " << config.campus.seed << '\n';
    std::cout << "completed: " << r.jobs_completed << ", failed: "
              << r.jobs_failed << ", makespan: "
              << (r.dag_finished
                      ? util::FormatFixed(r.makespan_s / 3600.0, 1) + " h"
                      : std::string("DNF"))
              << '\n';
    if (deadline_hours > 0.0) {
      std::cout << "deadline: " << util::FormatFixed(deadline_hours, 1)
                << " h soft, " << r.deadline_misses << " missed\n";
    }
    std::cout << "goodput: " << util::FormatFixed(r.useful_index_seconds / 3600.0, 1)
              << " index-hours useful, "
              << util::FormatFixed(100.0 * r.WasteFraction(), 1)
              << "% wasted to evictions\n";
    std::cout << "evictions: " << r.evictions_login << " login, "
              << r.evictions_poweroff << " poweroff, " << r.evictions_chaos
              << " chaos; " << r.retries << " retries, "
              << r.checkpoints_written << " checkpoints";
    if (config.fault_plan.Active()) {
      std::cout << ", " << r.chaos_task_failures << " chaos task failures";
    }
    std::cout << '\n';
    std::cout << "effective dedicated machines: "
              << util::FormatFixed(r.effective_dedicated_machines, 1) << " of "
              << fleet.size() << " (equivalence ratio "
              << util::FormatFixed(r.effective_dedicated_machines /
                                       static_cast<double>(fleet.size()),
                                   3)
              << "; paper Figure 6 mean_total = 0.51)\n";
    if (r.dag_finished) {
      std::cout << "vs dedicated cluster: "
                << util::FormatFixed(r.harvest_slowdown, 1)
                << "x slowdown, critical path stretched "
                << util::FormatFixed(r.critical_path_stretch, 1) << "x\n";
    }
    return 0;
  }

  // Observability wiring: metrics registry, span tracer, JSONL log capture.
  if (!metrics_out.empty()) {
    config.collector.metrics = &obs::DefaultRegistry();
  }
  if (!trace_out.empty() || !events_out.empty()) {
    obs::DefaultTracer().set_enabled(true);
    config.collector.tracer = &obs::DefaultTracer();
  }
  std::ofstream events_file;
  std::unique_ptr<obs::JsonlWriter> events;
  if (!events_out.empty()) {
    events_file.open(events_out, std::ios::binary);
    if (!events_file) {
      std::cerr << "cannot open " << events_out << " for writing\n";
      return 1;
    }
    events = std::make_unique<obs::JsonlWriter>(events_file);
    // Tee log lines into the event stream (stderr keeps working via the
    // sink printing too).
    util::log::SetSink([&](util::log::Level level, std::string_view message) {
      obs::MakeLogSink(*events)(level, message);
      std::cerr << "[labmon] " << message << '\n';
    });
  }

  if (!prof_out.empty()) obs::prof::Enable();

  if (stream) {
    core::StreamingOptions streaming;
    if (block_samples > 0) streaming.block_samples = block_samples;
    if (ring_capacity > 0) streaming.ring_capacity = ring_capacity;
    streaming.spill_dir = spill_dir;
    streaming.spill_codec = spill_codec;
    streaming.resume = resume;
    streaming.anomaly_threshold = anomaly_threshold;
    std::ofstream anomaly_file;
    std::unique_ptr<obs::JsonlWriter> anomaly_writer;
    const std::string anomalies_path = out_dir + "/anomalies.jsonl";
    if (anomaly_threshold > 0.0) {
      anomaly_file.open(anomalies_path, std::ios::binary);
      if (!anomaly_file) {
        std::cerr << "cannot open " << anomalies_path << " for writing\n";
        return 1;
      }
      anomaly_writer = std::make_unique<obs::JsonlWriter>(anomaly_file);
      streaming.anomaly_writer = anomaly_writer.get();
    }

    const auto streamed = use_pipeline
                              ? core::PipelinedExperiment::Run(config, streaming)
                              : core::StreamingExperiment::Run(config, streaming);
    if (!streamed.errors.empty()) {
      for (const auto& error : streamed.errors) {
        std::cerr << "streaming error: " << error << '\n';
      }
      return 1;
    }

    const auto& a = streamed.analysis;
    std::cout << analysis::RenderTable2(a.table2, true) << '\n';
    std::cout << analysis::RenderSessionHourProfile(a.session_hours) << '\n';
    std::cout << "mean powered-on machines: "
              << util::FormatFixed(a.availability.series.mean_powered_on, 2)
              << " (paper: 84.87), mean user-free: "
              << util::FormatFixed(a.availability.series.mean_user_free, 2)
              << " (paper: 57.29)\n\n";
    std::cout << analysis::RenderUptimeRanking(a.availability.ranking, 10)
              << '\n';
    std::cout << analysis::RenderWeeklyProfiles(a.weekly) << '\n';
    std::cout << analysis::RenderEquivalence(a.equivalence) << '\n';
    std::cout << analysis::RenderStability(a.stability.sessions,
                                           a.stability.smart)
              << '\n';
    std::cout << analysis::RenderPerLabUsage(a.per_lab.usage) << '\n';
    std::cout << analysis::RenderResourceHeadroom(a.per_lab.headroom) << '\n';
    std::cout << analysis::RenderCapacity(a.capacity, {}) << '\n';

    std::cout << "--- streaming run summary ---\n";
    if (use_pipeline) {
      const auto& p = streamed.pipeline;
      std::cout << "pipelined engine: " << p.staged_blocks
                << " blocks staged through a ring of " << p.ring_capacity
                << " (peak occupancy " << p.ring_peak_occupancy << ", "
                << p.ring_push_stalls << " push / " << p.ring_pop_stalls
                << " pop stalls), merge lag peak " << p.merge_lag_peak_blocks
                << " blocks, arena reuse "
                << util::FormatFixed(100.0 * p.arena_reuse_ratio, 1)
                << "%, serial fraction "
                << util::FormatFixed(p.serial_fraction, 3) << " ("
                << util::FormatFixed(p.pipeline_wall_s, 3) << " s of "
                << util::FormatFixed(p.wall_s, 3) << " s overlapped)\n";
    }
    std::cout << "iterations: " << streamed.run_stats.iterations
              << ", attempts: " << streamed.run_stats.attempts
              << ", samples: " << streamed.samples << " streamed through "
              << streamed.merged_blocks << " merged blocks of <= "
              << streaming.block_samples << '\n';
    std::cout << "response rate: "
              << util::FormatFixed(100.0 * streamed.run_stats.ResponseRate(),
                                   1)
              << "% (paper: 50.2%)\n";
    std::cout << "stream hash: " << std::hex << streamed.stream_hash
              << std::dec << " (bit-identical to the materialised engine)\n";
    std::cout << "ground truth: " << streamed.ground_truth.boots
              << " boots, " << streamed.ground_truth.TotalLogins()
              << " logins ("
              << streamed.ground_truth.forgotten_sessions << " forgotten)\n";
    if (!spill_dir.empty()) {
      std::cout << "spill: per-lab segments + checkpoints in " << spill_dir;
      if (streamed.labs_resumed > 0) {
        std::cout << " (" << streamed.labs_resumed << " labs resumed)";
      }
      std::cout << '\n';
      const auto& sp = streamed.spill;
      std::cout << "spill codec " << sp.codec << ": " << sp.segments
                << " segments, " << sp.segment_bytes << " bytes on disk ("
                << sp.raw_bytes_encoded << " raw -> "
                << sp.payload_bytes_encoded << " encoded, "
                << util::FormatFixed(sp.CompressionRatio(), 2)
                << "x), encode "
                << util::FormatFixed(sp.EncodeNsPerSample(), 1)
                << " ns/sample, decode "
                << util::FormatFixed(sp.DecodeNsPerSample(), 1)
                << " ns/sample\n";
    }
    if (anomaly_threshold > 0.0) {
      std::cout << "anomalies: " << streamed.anomalies << " (|z| >= "
                << util::FormatFixed(anomaly_threshold, 1) << " over "
                << streamed.anomaly_observations
                << " observations) written to " << anomalies_path << '\n';
    }
    if (!metrics_out.empty()) {
      if (!WriteFileOrComplain(metrics_out, [](std::ostream& out) {
            obs::WritePrometheus(obs::DefaultRegistry(), out);
          })) {
        return 1;
      }
      std::cout << '\n' << CampaignHealthReport(obs::DefaultRegistry());
      std::cout << "metrics written to " << metrics_out << '\n';
    }
    if (!prof_out.empty()) {
      const obs::prof::Report prof_report = obs::prof::Drain();
      obs::prof::Disable();
      if (!WriteFileOrComplain(prof_out, [&](std::ostream& out) {
            if (use_pipeline) {
              out << "{\"prof\": " << obs::prof::ReportJson(prof_report)
                  << ",\n \"pipeline\": "
                  << PipelineStatsJson(streamed.pipeline) << "}\n";
            } else {
              out << obs::prof::ReportJson(prof_report) << '\n';
            }
          })) {
        return 1;
      }
      std::cout << "profile written to " << prof_out << '\n';
    }
    if (events) {
      obs::WriteSpansJsonl(obs::DefaultTracer(), *events);
      obs::WriteMetricsJsonl(obs::DefaultRegistry(), *events);
      util::log::SetSink({});
      std::cout << "event stream written to " << events_out << " ("
                << events->events() << " events)\n";
    }
    return 0;
  }

  const auto result = core::Experiment::RunCached(config, snapshot_dir);
  core::ReportOptions report_options;
  report_options.workers = workers;
  if (!metrics_out.empty()) report_options.metrics = &obs::DefaultRegistry();
  const core::Report report(result, report_options);

  std::cout << report.FullReport() << '\n';

  std::cout << "--- run summary ---\n";
  std::cout << "iterations: " << result.run_stats.iterations
            << " (aligned 96/day grid; paper completed 6883 of 7392)"
            << ", attempts: " << result.run_stats.attempts
            << ", samples: " << result.trace.size() << " (paper: 583653)\n";
  std::cout << "response rate: "
            << util::FormatFixed(100.0 * result.run_stats.ResponseRate(), 1)
            << "% (paper: 50.2%)\n";
  std::cout << "mean iteration: "
            << util::FormatFixed(result.run_stats.mean_iteration_s / 60.0, 2)
            << " min (paper: 16.1 = 110880/6883)\n";
  if (config.fault_plan.Active() || config.collector.retry.enabled()) {
    const auto& stats = result.run_stats;
    std::cout << "fault/retry: " << stats.faults_injected
              << " faults injected, " << stats.retry_attempts
              << " retry attempts over " << stats.retried_collections
              << " collections, " << stats.recovered_after_retry
              << " recovered ("
              << util::FormatFixed(100.0 * stats.RetryRecoveryRate(), 1)
              << "%), " << stats.missing << " missing, " << stats.corrupt
              << " corrupt\n";
  }
  std::cout << "ground truth: " << result.ground_truth.boots << " boots ("
            << result.ground_truth.short_cycles << " short cycles), "
            << result.ground_truth.TotalLogins() << " logins ("
            << result.ground_truth.forgotten_sessions << " forgotten)\n";

  const auto& pipeline = report.pipeline_stats();
  std::cout << "analysis pipeline: " << pipeline.machines << " machines in "
            << pipeline.chunks << " chunks on " << pipeline.workers
            << " workers; sweep "
            << util::FormatFixed(pipeline.sweep_seconds * 1e3, 1)
            << " ms, merge+finalize "
            << util::FormatFixed(pipeline.merge_seconds * 1e3, 1) << " ms ("
            << report.derived().interval_count() << " intervals, "
            << report.derived().sessions().size()
            << " sessions derived once)\n";
  for (const auto& pass : pipeline.passes) {
    std::cout << "  pass " << pass.name << ": accumulate "
              << util::FormatFixed(pass.accumulate_seconds * 1e3, 1)
              << " ms (cpu), finalize "
              << util::FormatFixed(pass.finalize_seconds * 1e3, 1) << " ms\n";
  }

  if (const auto err = report.WriteCsvFiles(out_dir); !err.empty()) {
    std::cerr << "CSV export failed: " << err << '\n';
    return 1;
  }
  const std::string trace_path = out_dir + "/trace.lmtr";
  if (const auto saved = trace::WriteTraceFile(trace_path, result.trace);
      !saved.ok()) {
    std::cerr << "trace export failed: " << saved.error() << '\n';
    return 1;
  }

  if (!metrics_out.empty()) {
    if (!WriteFileOrComplain(metrics_out, [](std::ostream& out) {
          obs::WritePrometheus(obs::DefaultRegistry(), out);
        })) {
      return 1;
    }
    std::cout << '\n' << CampaignHealthReport(obs::DefaultRegistry());
    std::cout << "metrics written to " << metrics_out << '\n';
  }
  if (!trace_out.empty()) {
    if (!WriteFileOrComplain(trace_out, [](std::ostream& out) {
          obs::WriteChromeTrace(obs::DefaultTracer(), out);
        })) {
      return 1;
    }
    std::cout << "chrome trace written to " << trace_out
              << " (open in chrome://tracing or ui.perfetto.dev; "
              << obs::DefaultTracer().size() << " spans, "
              << obs::DefaultTracer().dropped() << " dropped)\n";
  }
  if (!prof_out.empty()) {
    const obs::prof::Report prof_report = obs::prof::Drain();
    obs::prof::Disable();
    if (!WriteFileOrComplain(prof_out, [&](std::ostream& out) {
          out << obs::prof::ReportJson(prof_report) << '\n';
        })) {
      return 1;
    }
    // Timeline next to the report: prof.json -> prof_trace.json.
    std::string prof_trace_path = prof_out;
    if (const auto dot = prof_trace_path.rfind(".json");
        dot != std::string::npos && dot == prof_trace_path.size() - 5) {
      prof_trace_path.insert(dot, "_trace");
    } else {
      prof_trace_path += "_trace.json";
    }
    obs::Tracer prof_tracer(prof_report.records.size() + 16);
    obs::prof::AppendSpans(prof_report, prof_tracer);
    if (!WriteFileOrComplain(prof_trace_path, [&](std::ostream& out) {
          obs::WriteChromeTrace(prof_tracer, out);
        })) {
      return 1;
    }
    std::cout << "profile written to " << prof_out << " ("
              << prof_report.rows.size() << " shard-phase rows, "
              << prof_report.records.size() << " timeline records, "
              << prof_report.dropped_records
              << " dropped), timeline to " << prof_trace_path << '\n';
  }
  if (events) {
    obs::WriteSpansJsonl(obs::DefaultTracer(), *events);
    obs::WriteMetricsJsonl(obs::DefaultRegistry(), *events);
    util::log::SetSink({});  // detach before the writer goes away
    std::cout << "event stream written to " << events_out << " ("
              << events->events() << " events)\n";
  }

  std::cout << "figure data written to " << out_dir
            << "/, full trace to " << trace_path
            << " (explore it with trace_explorer)\n";
  return 0;
}
