// fleet_report: the full 77-day reproduction. Prints every table/figure of
// the paper (measured vs published) and exports figure data as CSV.
//
//   $ ./fleet_report [output_dir] [days] [seed] [scenario.ini]
#include <cstdlib>
#include <iostream>

#include "labmon/core/experiment.hpp"
#include "labmon/core/report.hpp"
#include "labmon/trace/binary_io.hpp"
#include "labmon/workload/config_io.hpp"
#include "labmon/util/log.hpp"
#include "labmon/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace labmon;
  util::log::SetLevel(util::log::Level::kInfo);

  const std::string out_dir = argc > 1 ? argv[1] : "report_out";
  core::ExperimentConfig config;
  if (argc > 2) config.campus.days = std::atoi(argv[2]);
  if (argc > 3) {
    config.campus.seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
  }
  if (argc > 4) {
    auto loaded = workload::LoadCampusConfig(argv[4], config.campus);
    if (!loaded.ok()) {
      std::cerr << "scenario file error: " << loaded.error() << '\n';
      return 1;
    }
    config.campus = loaded.value();
    std::cout << "scenario overrides loaded from " << argv[4] << "\n";
  }

  const auto result = core::Experiment::Run(config);
  const core::Report report(result);

  std::cout << report.FullReport() << '\n';

  std::cout << "--- run summary ---\n";
  std::cout << "iterations: " << result.run_stats.iterations
            << " (paper: 6883), attempts: " << result.run_stats.attempts
            << ", samples: " << result.trace.size() << " (paper: 583653)\n";
  std::cout << "response rate: "
            << util::FormatFixed(100.0 * result.run_stats.ResponseRate(), 1)
            << "% (paper: 50.2%)\n";
  std::cout << "mean iteration: "
            << util::FormatFixed(result.run_stats.mean_iteration_s / 60.0, 2)
            << " min (paper: 16.1 = 110880/6883)\n";
  std::cout << "ground truth: " << result.ground_truth.boots << " boots ("
            << result.ground_truth.short_cycles << " short cycles), "
            << result.ground_truth.TotalLogins() << " logins ("
            << result.ground_truth.forgotten_sessions << " forgotten)\n";

  if (const auto err = report.WriteCsvFiles(out_dir); !err.empty()) {
    std::cerr << "CSV export failed: " << err << '\n';
    return 1;
  }
  const std::string trace_path = out_dir + "/trace.lmtr";
  if (const auto saved = trace::WriteTraceFile(trace_path, result.trace);
      !saved.ok()) {
    std::cerr << "trace export failed: " << saved.error() << '\n';
    return 1;
  }
  std::cout << "figure data written to " << out_dir
            << "/, full trace to " << trace_path
            << " (explore it with trace_explorer)\n";
  return 0;
}
