// trace_explorer: offline analysis of a saved monitoring trace — the
// workflow of someone reanalysing the study's data without re-running the
// collection. Reads the compact binary format (.lmtr) written by
// fleet_report, or generates a fresh trace when given no file.
//
// Intervals and interactive spans are derived once into a
// trace::DerivedTrace and every table below reads from that shared
// derivation; Table-2 aggregates come from a one-pass AnalysisPipeline.
//
//   $ ./trace_explorer                 # simulate 7 days, then explore
//   $ ./trace_explorer trace.lmtr      # explore a saved trace
#include <algorithm>
#include <iostream>
#include <map>

#include "labmon/analysis/passes.hpp"
#include "labmon/analysis/pipeline.hpp"
#include "labmon/core/experiment.hpp"
#include "labmon/trace/binary_io.hpp"
#include "labmon/trace/derived_trace.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/util/table.hpp"

int main(int argc, char** argv) {
  using namespace labmon;

  trace::TraceStore store(0);
  if (argc > 1) {
    auto loaded = trace::ReadTraceFile(argv[1]);
    if (!loaded.ok()) {
      std::cerr << "cannot load " << argv[1] << ": " << loaded.error() << '\n';
      return 1;
    }
    store = std::move(loaded).value();
    std::cout << "Loaded " << util::FormatWithThousands(
                     static_cast<std::int64_t>(store.size()))
              << " samples from " << argv[1] << "\n\n";
  } else {
    std::cout << "No trace given — simulating 7 days first...\n\n";
    core::ExperimentConfig config;
    config.campus.days = 7;
    auto result = core::Experiment::Run(config);
    store = std::move(result.trace);
  }

  // Derive intervals/sessions/spans exactly once; everything below reads
  // from this.
  const trace::DerivedTrace derived(store);

  // Headline aggregates through the pipeline.
  analysis::AnalysisPipeline pipeline;
  auto& aggregate = pipeline.Emplace<analysis::AggregatePass>();
  pipeline.Run(derived);
  const auto& table2 = aggregate.result();
  std::cout << "samples: " << util::FormatWithThousands(
                   static_cast<std::int64_t>(store.size()))
            << " over " << store.iterations().size() << " iterations, "
            << store.machine_count() << " machines ("
            << derived.interval_count() << " intervals derived)\n";
  std::cout << "fleet CPU idleness: "
            << util::FormatFixed(table2.both.cpu_idle_pct, 2) << "%, RAM "
            << util::FormatFixed(table2.both.ram_load_pct, 1) << "%\n\n";

  // Busiest (least idle) machines: one linear pass over the shared
  // intervals keyed by machine.
  struct MachineLoad {
    std::size_t machine;
    double idle;
    std::uint32_t samples;
  };
  std::vector<double> idle_sum(store.machine_count(), 0.0);
  std::vector<std::size_t> idle_n(store.machine_count(), 0);
  const auto& iv = derived.interval_columns();
  for (std::size_t i = 0; i < derived.interval_count(); ++i) {
    idle_sum[iv.machine[i]] += iv.cpu_idle_pct[i];
    ++idle_n[iv.machine[i]];
  }
  std::vector<MachineLoad> loads;
  for (std::size_t m = 0; m < store.machine_count(); ++m) {
    if (idle_n[m] == 0) continue;
    loads.push_back(MachineLoad{
        m, idle_sum[m] / static_cast<double>(idle_n[m]),
        static_cast<std::uint32_t>(store.MachineSamples(m).size())});
  }
  std::sort(loads.begin(), loads.end(),
            [](const auto& a, const auto& b) { return a.idle < b.idle; });
  util::AsciiTable busiest("Busiest machines (lowest mean CPU idleness)");
  busiest.SetHeader({"Machine", "Mean idle %", "Samples"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, loads.size()); ++i) {
    busiest.AddRow({std::to_string(loads[i].machine),
                    util::FormatFixed(loads[i].idle, 2),
                    std::to_string(loads[i].samples)});
  }
  std::cout << busiest.Render() << '\n';

  // Longest interactive spans (the forgotten-login suspects).
  const auto all_spans = derived.interactive_spans();
  std::vector<trace::InteractiveSpan> spans(all_spans.begin(),
                                            all_spans.end());
  std::sort(spans.begin(), spans.end(), [](const auto& a, const auto& b) {
    return a.ObservedSeconds() > b.ObservedSeconds();
  });
  util::AsciiTable ghosts("Longest interactive sessions (>= 10 h = forgotten)");
  ghosts.SetHeader({"Machine", "Logon at", "Observed length"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, spans.size()); ++i) {
    ghosts.AddRow({std::to_string(spans[i].machine),
                   util::FormatTimestamp(spans[i].logon_time),
                   util::FormatDuration(spans[i].ObservedSeconds())});
  }
  std::cout << ghosts.Render() << '\n';

  // Heaviest network consumers by received volume.
  std::map<std::uint32_t, double> recv_by_machine;
  for (std::size_t i = 0; i < derived.interval_count(); ++i) {
    recv_by_machine[iv.machine[i]] +=
        iv.recv_bps[i] * static_cast<double>(iv.end_t[i] - iv.start_t[i]);
  }
  std::vector<std::pair<double, std::uint32_t>> top_recv;
  for (const auto& [machine, bytes] : recv_by_machine) {
    top_recv.emplace_back(bytes, machine);
  }
  std::sort(top_recv.rbegin(), top_recv.rend());
  util::AsciiTable net("Top downloaders (bytes received over the trace)");
  net.SetHeader({"Machine", "Received"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, top_recv.size()); ++i) {
    net.AddRow({std::to_string(top_recv[i].second),
                util::FormatBytes(top_recv[i].first)});
  }
  std::cout << net.Render();
  return 0;
}
