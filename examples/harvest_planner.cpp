// harvest_planner: a downstream use of the library's public API — size a
// desktop-grid (BOINC/Condor-style) deployment on the monitored classrooms.
//
// Runs the monitoring experiment, derives per-hour harvestable capacity
// from the cluster-equivalence profile, and answers: how long would a batch
// of N CPU-hours (normalised to a dedicated reference machine) take if
// submitted at hour H, with and without occupied machines?
//
//   $ ./harvest_planner [batch_cpu_hours] [days]
#include <cstdlib>
#include <iostream>

#include "labmon/core/experiment.hpp"
#include "labmon/core/report.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/util/table.hpp"

namespace {

using namespace labmon;

/// Walks the weekly equivalence profile from `start_bin`, accumulating
/// dedicated-cluster hours until `batch_hours` are served.
double HoursToDrain(const stats::WeeklyProfile& profile, std::size_t start_bin,
                    double batch_machine_hours, double fleet_machines) {
  const double bin_hours = profile.bin_minutes() / 60.0;
  double served = 0.0;
  double elapsed = 0.0;
  std::size_t bin = start_bin;
  // Cap at 8 weeks of walking: a batch that large simply doesn't fit.
  const std::size_t max_steps = profile.bin_count() * 8;
  for (std::size_t step = 0; step < max_steps; ++step) {
    served += profile.Mean(bin) * fleet_machines * bin_hours;
    elapsed += bin_hours;
    if (served >= batch_machine_hours) return elapsed;
    bin = (bin + 1) % profile.bin_count();
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const double batch_hours = argc > 1 ? std::atof(argv[1]) : 2000.0;
  core::ExperimentConfig config;
  if (argc > 2) config.campus.days = std::atoi(argv[2]);

  std::cout << "Planning a " << util::FormatFixed(batch_hours, 0)
            << " machine-hour batch on the simulated classrooms...\n\n";
  const auto result = core::Experiment::Run(config);
  const core::Report report(result);
  const auto& eq = report.equivalence();

  std::cout << "Average harvestable capacity (dedicated-machine equivalents "
               "of the 169-box fleet):\n";
  std::cout << "  user-free machines only: "
            << util::FormatFixed(eq.mean_free * 169.0, 1) << " machines\n";
  std::cout << "  including occupied machines: "
            << util::FormatFixed(eq.mean_total * 169.0, 1) << " machines\n\n";

  util::AsciiTable table(
      "Wall-clock hours to drain the batch, by submission time");
  table.SetHeader({"Submitted", "Free machines only", "Free + occupied"});
  const auto& total = eq.weekly_total;
  const auto& free = eq.weekly_free;
  for (const int day : {0, 4, 5, 6}) {
    for (const int hour : {9, 21}) {
      const auto t = util::MakeTime(day, hour);
      const auto bin = total.BinOf(t);
      const double with_occupied = HoursToDrain(total, bin, batch_hours, 169.0);
      const double free_only = HoursToDrain(free, bin, batch_hours, 169.0);
      table.AddRow({util::FormatTimestamp(t).substr(5, 9),
                    free_only < 0 ? "never"
                                  : util::FormatFixed(free_only, 1) + " h",
                    with_occupied < 0
                        ? "never"
                        : util::FormatFixed(with_occupied, 1) + " h"});
    }
  }
  std::cout << table.Render();
  std::cout << "\nNote: assumes perfect checkpointing across machine "
               "volatility (the paper's idleness is an upper bound on "
               "harvestable CPU).\n";
  return 0;
}
