// ddc_custom_probe: extending the DDC framework with a user-defined probe
// and post-collect code — the workflow §3 describes ("the possibility of
// tailoring the probe to our monitoring needs").
//
// The custom probe reports only disk health (SMART attribute table, hex
// encoded like a real pass-through read) and the post-collect sink decodes
// the 512-byte block, verifies its checksum, and tallies fleet-wide disk
// statistics.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "labmon/ddc/coordinator.hpp"
#include "labmon/smart/attributes.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/winsim/paper_specs.hpp"
#include "labmon/workload/driver.hpp"

namespace {

using namespace labmon;

/// A probe that dumps the disk's SMART block as hex (smartctl-style raw).
class DiskHealthProbe final : public ddc::Probe {
 public:
  const char* name() const noexcept override { return "diskhealth.exe"; }

  std::string Execute(winsim::Machine& machine, util::SimTime t) override {
    machine.AdvanceTo(t);
    const auto block = machine.DiskSmartData().Snapshot().Encode();
    std::ostringstream out;
    out << "DISKHEALTH 1.0\n";
    out << "host: " << machine.spec().name << '\n';
    out << "serial: " << machine.spec().disk_serial << '\n';
    out << "smart_block: ";
    out << std::hex << std::setfill('0');
    for (const auto byte : block) {
      out << std::setw(2) << static_cast<unsigned>(byte);
    }
    out << '\n';
    return out.str();
  }
};

/// Post-collect code: decode the hex block, verify, aggregate.
class DiskHealthSink final : public ddc::SampleSink {
 public:
  ddc::SampleVerdict OnSample(const ddc::CollectedSample& sample) override {
    if (!sample.outcome.ok()) {
      ++unreachable_;
      return ddc::SampleVerdict::kAccepted;
    }
    const auto& text = sample.outcome.stdout_text;
    const auto pos = text.find("smart_block: ");
    if (pos == std::string::npos) {
      ++rejected_;
      return ddc::SampleVerdict::kRejected;
    }
    const auto hex_view =
        util::Trim(std::string_view(text).substr(pos + 13));
    std::vector<std::uint8_t> block;
    block.reserve(hex_view.size() / 2);
    for (std::size_t i = 0; i + 1 < hex_view.size(); i += 2) {
      const auto hi = HexDigit(hex_view[i]);
      const auto lo = HexDigit(hex_view[i + 1]);
      if (hi < 0 || lo < 0) {
        ++rejected_;
        return ddc::SampleVerdict::kRejected;
      }
      block.push_back(static_cast<std::uint8_t>(hi * 16 + lo));
    }
    const auto table = smart::AttributeTable::Decode(block);
    if (!table.ok()) {
      ++rejected_;
      return ddc::SampleVerdict::kRejected;
    }
    ++decoded_;
    const auto hours = table.value().RawOf(smart::AttributeId::kPowerOnHours);
    const auto cycles =
        table.value().RawOf(smart::AttributeId::kPowerCycleCount);
    total_power_on_hours_ += hours;
    total_cycles_ += cycles;
    if (cycles > 0) {
      ratio_sum_ += static_cast<double>(hours) / static_cast<double>(cycles);
      ++ratio_count_;
    }
    return ddc::SampleVerdict::kAccepted;
  }

  void Report() const {
    std::cout << "decoded SMART blocks: " << decoded_ << " (rejected "
              << rejected_ << ", unreachable " << unreachable_ << ")\n";
    if (decoded_ == 0) return;
    std::cout << "fleet mean power-on hours: "
              << util::FormatFixed(
                     static_cast<double>(total_power_on_hours_) /
                         static_cast<double>(decoded_), 0)
              << ", mean power cycles: "
              << util::FormatFixed(static_cast<double>(total_cycles_) /
                                       static_cast<double>(decoded_), 0)
              << ", mean lifetime uptime/cycle: "
              << util::FormatFixed(ratio_count_ ? ratio_sum_ / ratio_count_
                                                : 0.0, 2)
              << " h (paper §5.2.2: 6.46 h)\n";
  }

 private:
  static int HexDigit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  std::uint64_t decoded_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t unreachable_ = 0;
  std::uint64_t total_power_on_hours_ = 0;
  std::uint64_t total_cycles_ = 0;
  double ratio_sum_ = 0.0;
  std::uint64_t ratio_count_ = 0;
};

}  // namespace

int main() {
  std::cout << "Custom DDC probe demo: one day of hourly disk-health probing\n\n";
  util::Rng rng(20050201);
  winsim::Fleet fleet = winsim::MakePaperFleet(rng);
  workload::CampusConfig campus;
  campus.days = 1;
  workload::WorkloadDriver driver(fleet, campus);

  DiskHealthProbe probe;
  DiskHealthSink sink;
  ddc::CoordinatorConfig config;
  config.period = util::kSecondsPerHour;  // custom cadence for a custom probe
  // The coordinator keeps a non-owning reference to the advance callback,
  // so it must be a named local, not a temporary.
  auto advance = [&driver](util::SimTime t) { driver.AdvanceTo(t); };
  ddc::Coordinator coordinator(fleet, probe, config, sink, advance);
  const auto stats = coordinator.Run(0, campus.EndTime());

  std::cout << "iterations: " << stats.iterations << ", attempts "
            << stats.attempts << ", successes " << stats.successes << "\n";
  sink.Report();
  return 0;
}
