// nbench_host: run the real NBench/BYTEmark-style kernel suite on this
// machine — the same benchmark probe the authors pushed through DDC to fill
// Table 1's INT/FP columns.
//
//   $ ./nbench_host [seconds_per_kernel]
#include <cstdlib>
#include <iostream>

#include "labmon/ddc/nbench_probe.hpp"
#include "labmon/nbench/nbench.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/util/table.hpp"

int main(int argc, char** argv) {
  using namespace labmon;

  nbench::SuiteConfig config;
  config.min_seconds_per_kernel = argc > 1 ? std::atof(argv[1]) : 0.25;
  if (config.min_seconds_per_kernel <= 0.0) {
    std::cerr << "usage: nbench_host [seconds_per_kernel>0]\n";
    return 1;
  }

  std::cout << "Running the 10 BYTEmark-style kernels ("
            << util::FormatFixed(config.min_seconds_per_kernel, 2)
            << " s each, self-validating)...\n\n";

  const auto scores = nbench::RunSuite(config);
  util::AsciiTable table("NBench kernel results");
  table.SetHeader({"Kernel", "Class", "Iterations/s", "Index vs baseline"});
  for (const auto& score : scores) {
    table.AddRow({nbench::KernelName(score.id),
                  nbench::IsIntegerKernel(score.id) ? "INT" : "FP",
                  util::FormatFixed(score.iterations_per_second, 2),
                  util::FormatFixed(score.iterations_per_second /
                                        nbench::BaselineRate(score.id),
                                    2)});
  }
  std::cout << table.Render() << '\n';

  const auto indexes = nbench::ComputeIndexes(scores);
  std::cout << "INTEGER index: " << util::FormatFixed(indexes.int_index, 2)
            << "\nFLOATING-POINT index: "
            << util::FormatFixed(indexes.fp_index, 2)
            << "\ncombined (50/50, as used for Fig 6 normalisation): "
            << util::FormatFixed(indexes.Combined(), 2) << "\n\n";

  std::cout << "Probe-format output (what DDC's post-collect code parses):\n"
            << ddc::NBenchProbe::RunOnHost("localhost", config);
  return 0;
}
