// Quickstart: run a one-week monitoring experiment on the paper's fleet and
// print the headline numbers.
//
//   $ ./quickstart [days]
#include <cstdlib>
#include <iostream>

#include "labmon/core/experiment.hpp"
#include "labmon/core/report.hpp"
#include "labmon/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace labmon;

  core::ExperimentConfig config;
  config.campus.days = argc > 1 ? std::atoi(argv[1]) : 7;
  if (config.campus.days <= 0) {
    std::cerr << "usage: quickstart [days>0]\n";
    return 1;
  }

  std::cout << "Simulating " << config.campus.days
            << " day(s) of 169 Windows 2000 classroom machines...\n\n";
  const auto result = core::Experiment::Run(config);
  const core::Report report(result);

  std::cout << report.Table1() << '\n';
  std::cout << report.Table2() << '\n';
  std::cout << "Iterations completed: " << result.run_stats.iterations
            << " (mean iteration length "
            << util::FormatFixed(result.run_stats.mean_iteration_s / 60.0, 1)
            << " min)\n";
  std::cout << "Ground truth: " << result.ground_truth.boots << " boots, "
            << result.ground_truth.TotalLogins() << " logins, "
            << result.ground_truth.forgotten_sessions
            << " forgotten sessions\n";
  return 0;
}
