// NBench/BYTEmark-style CPU benchmark suite.
//
// The paper normalises machine performance with NBench INT and FP indexes
// (Table 1, §5.4). This module implements the ten classic BYTEmark kernels
// as genuine, self-validating workloads so the indexes can be measured on
// the host (`examples/nbench_host`) exactly the way the authors ran their
// benchmark probe through DDC. The simulator assigns Table 1's published
// indexes to simulated machines; this suite exists so the *measurement
// machinery* is real, not stubbed.
//
// Index semantics follow BYTEmark: the INTEGER index is the geometric mean
// of seven kernels' rates relative to a fixed baseline machine, the
// FLOATING-POINT index the geometric mean of the remaining three.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "labmon/util/rng.hpp"

namespace labmon::nbench {

/// The ten BYTEmark kernels.
enum class KernelId : int {
  kNumericSort = 0,     // INT: heapsort of int arrays
  kStringSort = 1,      // INT: sort of variable-length strings
  kBitfield = 2,        // INT: bitmap set/clear/complement runs
  kFpEmulation = 3,     // INT: software floating point (fixed-point 32.32)
  kAssignment = 4,      // INT: task-assignment problem
  kIdea = 5,            // INT: IDEA block cipher encrypt/decrypt
  kHuffman = 6,         // INT: Huffman compression round-trip
  kFourier = 7,         // FP : Fourier series coefficients
  kNeuralNet = 8,       // FP : back-propagation network training
  kLuDecomposition = 9, // FP : LU solve of dense linear systems
};

inline constexpr int kKernelCount = 10;

/// All kernel ids in canonical order.
[[nodiscard]] std::array<KernelId, kKernelCount> AllKernels() noexcept;

/// Display name ("NUMERIC SORT", matching BYTEmark's banners).
[[nodiscard]] const char* KernelName(KernelId id) noexcept;

/// True for the seven kernels contributing to the INTEGER index.
[[nodiscard]] bool IsIntegerKernel(KernelId id) noexcept;

/// Runs one self-validating iteration of the kernel; returns a checksum
/// that must be stable for a given seed (tests pin these). Throws
/// std::runtime_error if the kernel's internal verification fails.
[[nodiscard]] std::uint64_t RunKernelOnce(KernelId id, std::uint64_t seed);

/// Result of timing one kernel.
struct KernelScore {
  KernelId id{};
  double iterations_per_second = 0.0;
  std::uint64_t iterations = 0;
  double elapsed_seconds = 0.0;
  std::uint64_t checksum = 0;  ///< XOR of per-iteration checksums
};

/// Suite configuration.
struct SuiteConfig {
  /// Minimum wall-clock time to spend per kernel (adaptive batching).
  double min_seconds_per_kernel = 0.10;
  std::uint64_t seed = 1;
};

/// INT + FP indexes, BYTEmark-style.
struct Indexes {
  double int_index = 0.0;
  double fp_index = 0.0;
  /// 50/50 blend used by the paper's equivalence normalisation.
  [[nodiscard]] double Combined() const noexcept {
    return 0.5 * int_index + 0.5 * fp_index;
  }
};

/// Times a single kernel.
[[nodiscard]] KernelScore TimeKernel(KernelId id, const SuiteConfig& config);

/// Runs the whole suite.
[[nodiscard]] std::vector<KernelScore> RunSuite(const SuiteConfig& config);

/// Reduces per-kernel scores to INT/FP indexes (geometric means of rates
/// relative to the built-in baseline rates).
[[nodiscard]] Indexes ComputeIndexes(const std::vector<KernelScore>& scores);

/// Baseline iterations/second for a kernel — the reference machine that
/// scores index 1.0 in each category (a Pentium-90-class box, in keeping
/// with BYTEmark's original normalisation).
[[nodiscard]] double BaselineRate(KernelId id) noexcept;

}  // namespace labmon::nbench
