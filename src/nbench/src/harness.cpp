#include "labmon/nbench/nbench.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "kernels.hpp"

namespace labmon::nbench {

namespace {
using Clock = std::chrono::steady_clock;

double Elapsed(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

std::array<KernelId, kKernelCount> AllKernels() noexcept {
  return {KernelId::kNumericSort,  KernelId::kStringSort,
          KernelId::kBitfield,     KernelId::kFpEmulation,
          KernelId::kAssignment,   KernelId::kIdea,
          KernelId::kHuffman,      KernelId::kFourier,
          KernelId::kNeuralNet,    KernelId::kLuDecomposition};
}

const char* KernelName(KernelId id) noexcept {
  switch (id) {
    case KernelId::kNumericSort: return "NUMERIC SORT";
    case KernelId::kStringSort: return "STRING SORT";
    case KernelId::kBitfield: return "BITFIELD";
    case KernelId::kFpEmulation: return "FP EMULATION";
    case KernelId::kAssignment: return "ASSIGNMENT";
    case KernelId::kIdea: return "IDEA";
    case KernelId::kHuffman: return "HUFFMAN";
    case KernelId::kFourier: return "FOURIER";
    case KernelId::kNeuralNet: return "NEURAL NET";
    case KernelId::kLuDecomposition: return "LU DECOMPOSITION";
  }
  return "UNKNOWN";
}

bool IsIntegerKernel(KernelId id) noexcept {
  switch (id) {
    case KernelId::kFourier:
    case KernelId::kNeuralNet:
    case KernelId::kLuDecomposition:
      return false;
    default:
      return true;
  }
}

std::uint64_t RunKernelOnce(KernelId id, std::uint64_t seed) {
  using namespace detail;
  switch (id) {
    case KernelId::kNumericSort: return RunNumericSort(seed);
    case KernelId::kStringSort: return RunStringSort(seed);
    case KernelId::kBitfield: return RunBitfield(seed);
    case KernelId::kFpEmulation: return RunFpEmulation(seed);
    case KernelId::kAssignment: return RunAssignment(seed);
    case KernelId::kIdea: return RunIdea(seed);
    case KernelId::kHuffman: return RunHuffman(seed);
    case KernelId::kFourier: return RunFourier(seed);
    case KernelId::kNeuralNet: return RunNeuralNet(seed);
    case KernelId::kLuDecomposition: return RunLuDecomposition(seed);
  }
  throw std::runtime_error("unknown kernel id");
}

KernelScore TimeKernel(KernelId id, const SuiteConfig& config) {
  KernelScore score;
  score.id = id;
  // Warm-up iteration (also primes caches / validates once).
  score.checksum ^= RunKernelOnce(id, config.seed);

  const auto start = Clock::now();
  std::uint64_t iterations = 0;
  std::uint64_t batch = 1;
  double elapsed = 0.0;
  while (elapsed < config.min_seconds_per_kernel) {
    for (std::uint64_t i = 0; i < batch; ++i) {
      score.checksum ^= RunKernelOnce(id, config.seed + iterations + i);
    }
    iterations += batch;
    elapsed = Elapsed(start);
    if (elapsed < config.min_seconds_per_kernel / 4.0) batch *= 2;
  }
  score.iterations = iterations;
  score.elapsed_seconds = elapsed;
  score.iterations_per_second =
      elapsed > 0.0 ? static_cast<double>(iterations) / elapsed : 0.0;
  return score;
}

std::vector<KernelScore> RunSuite(const SuiteConfig& config) {
  std::vector<KernelScore> scores;
  scores.reserve(kKernelCount);
  for (const KernelId id : AllKernels()) {
    scores.push_back(TimeKernel(id, config));
  }
  return scores;
}

double BaselineRate(KernelId id) noexcept {
  // Iterations/second that define index 1.0 per kernel — a Pentium-90-class
  // reference in the spirit of BYTEmark's original baseline machine. The
  // absolute constants only shift all indexes by a common factor; relative
  // comparisons between machines (all the paper uses) are unaffected.
  switch (id) {
    case KernelId::kNumericSort: return 60.0;
    case KernelId::kStringSort: return 8.0;
    case KernelId::kBitfield: return 300.0;
    case KernelId::kFpEmulation: return 12.0;
    case KernelId::kAssignment: return 80.0;
    case KernelId::kIdea: return 150.0;
    case KernelId::kHuffman: return 100.0;
    case KernelId::kFourier: return 90.0;
    case KernelId::kNeuralNet: return 20.0;
    case KernelId::kLuDecomposition: return 40.0;
  }
  return 1.0;
}

Indexes ComputeIndexes(const std::vector<KernelScore>& scores) {
  double int_log_sum = 0.0;
  int int_n = 0;
  double fp_log_sum = 0.0;
  int fp_n = 0;
  for (const KernelScore& s : scores) {
    if (s.iterations_per_second <= 0.0) continue;
    const double relative = s.iterations_per_second / BaselineRate(s.id);
    if (IsIntegerKernel(s.id)) {
      int_log_sum += std::log(relative);
      ++int_n;
    } else {
      fp_log_sum += std::log(relative);
      ++fp_n;
    }
  }
  Indexes idx;
  idx.int_index = int_n ? std::exp(int_log_sum / int_n) : 0.0;
  idx.fp_index = fp_n ? std::exp(fp_log_sum / fp_n) : 0.0;
  return idx;
}

}  // namespace labmon::nbench
