// HUFFMAN — Huffman compression round trip (BYTEmark kernel 7). Builds a
// canonical Huffman code over synthetic English-like text, compresses,
// decompresses, and verifies byte-exact recovery plus actual shrinkage.
#include <algorithm>
#include <cstdint>
#include <iterator>
#include <queue>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernels.hpp"
#include "labmon/util/rng.hpp"

namespace labmon::nbench::detail {

namespace {

constexpr std::size_t kTextBytes = 8192;

/// Skewed letter frequencies make the text compressible (~English ranking).
std::string MakeText(util::Rng& rng) {
  static constexpr const char* kAlphabet = " etaoinshrdlucmfwygpbvkxqjz.";
  static constexpr double kWeights[] = {
      17.0, 12.7, 9.1, 8.2, 7.5, 7.0, 6.7, 6.3, 6.1, 6.0, 4.3, 4.0, 2.8,
      2.8,  2.4,  2.4, 2.2, 2.0, 2.0, 1.9, 1.5, 1.0, 0.8, 0.2, 0.2, 0.2,
      0.1,  1.3};
  std::string text;
  text.reserve(kTextBytes);
  const std::span<const double> weights(kWeights, std::size(kWeights));
  for (std::size_t i = 0; i < kTextBytes; ++i) {
    text.push_back(kAlphabet[rng.WeightedIndex(weights)]);
  }
  return text;
}

struct Node {
  std::uint64_t freq = 0;
  int symbol = -1;  ///< leaf symbol, -1 for internal
  int left = -1;
  int right = -1;
};

/// Builds code lengths via a Huffman tree, then assigns canonical codes.
struct Codebook {
  std::vector<std::uint8_t> lengths;   // per symbol (256)
  std::vector<std::uint32_t> codes;    // canonical, MSB-first
};

Codebook BuildCodebook(const std::string& text) {
  std::vector<std::uint64_t> freq(256, 0);
  for (const unsigned char c : text) ++freq[c];

  std::vector<Node> nodes;
  using HeapItem = std::pair<std::uint64_t, int>;  // (freq, node index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (int s = 0; s < 256; ++s) {
    if (freq[s] == 0) continue;
    nodes.push_back(Node{freq[s], s, -1, -1});
    heap.emplace(freq[s], static_cast<int>(nodes.size()) - 1);
  }
  if (heap.size() == 1) {  // degenerate single-symbol text
    const auto [f, idx] = heap.top();
    nodes.push_back(Node{f, -1, idx, idx});
  }
  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    nodes.push_back(Node{fa + fb, -1, a, b});
    heap.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
  }

  Codebook book;
  book.lengths.assign(256, 0);
  book.codes.assign(256, 0);
  // Depth-first walk to get code lengths.
  struct Frame {
    int node;
    std::uint8_t depth;
  };
  std::vector<Frame> stack{{static_cast<int>(nodes.size()) - 1, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(f.node)];
    if (n.symbol >= 0) {
      book.lengths[static_cast<std::size_t>(n.symbol)] =
          std::max<std::uint8_t>(1, f.depth);
      continue;
    }
    stack.push_back({n.left, static_cast<std::uint8_t>(f.depth + 1)});
    if (n.right != n.left) {
      stack.push_back({n.right, static_cast<std::uint8_t>(f.depth + 1)});
    }
  }
  // Canonical code assignment: sort by (length, symbol).
  std::vector<int> symbols;
  for (int s = 0; s < 256; ++s) {
    if (book.lengths[static_cast<std::size_t>(s)] > 0) symbols.push_back(s);
  }
  std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
    const auto la = book.lengths[static_cast<std::size_t>(a)];
    const auto lb = book.lengths[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  });
  std::uint32_t code = 0;
  std::uint8_t prev_len = 0;
  for (const int s : symbols) {
    const auto len = book.lengths[static_cast<std::size_t>(s)];
    code <<= (len - prev_len);
    book.codes[static_cast<std::size_t>(s)] = code;
    ++code;
    prev_len = len;
  }
  return book;
}

}  // namespace

std::uint64_t RunHuffman(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x48554646ULL);  // "HUFF"
  const std::string text = MakeText(rng);
  const Codebook book = BuildCodebook(text);

  // Compress: MSB-first bit packing.
  std::vector<std::uint8_t> packed;
  packed.reserve(text.size() / 2);
  std::uint32_t bit_buffer = 0;
  int bits_pending = 0;
  for (const unsigned char c : text) {
    const std::uint8_t len = book.lengths[c];
    bit_buffer = (bit_buffer << len) | book.codes[c];
    bits_pending += len;
    while (bits_pending >= 8) {
      packed.push_back(
          static_cast<std::uint8_t>(bit_buffer >> (bits_pending - 8)));
      bits_pending -= 8;
    }
  }
  if (bits_pending > 0) {
    packed.push_back(static_cast<std::uint8_t>(bit_buffer << (8 - bits_pending)));
  }
  if (packed.size() >= text.size()) {
    throw std::runtime_error("HUFFMAN: no compression achieved");
  }

  // Decompress with a (length, code) -> symbol walk on canonical codes.
  std::string recovered;
  recovered.reserve(text.size());
  std::uint32_t acc = 0;
  std::uint8_t acc_len = 0;
  std::size_t byte_idx = 0;
  int bit_idx = 7;
  while (recovered.size() < text.size()) {
    if (byte_idx >= packed.size()) {
      throw std::runtime_error("HUFFMAN: bitstream exhausted early");
    }
    acc = (acc << 1) | ((packed[byte_idx] >> bit_idx) & 1u);
    ++acc_len;
    if (--bit_idx < 0) {
      bit_idx = 7;
      ++byte_idx;
    }
    for (int s = 0; s < 256; ++s) {
      if (book.lengths[static_cast<std::size_t>(s)] == acc_len &&
          book.codes[static_cast<std::size_t>(s)] == acc) {
        recovered.push_back(static_cast<char>(s));
        acc = 0;
        acc_len = 0;
        break;
      }
    }
    if (acc_len > 30) throw std::runtime_error("HUFFMAN: code walk diverged");
  }
  if (recovered != text) {
    throw std::runtime_error("HUFFMAN: round trip mismatch");
  }
  std::uint64_t checksum = packed.size();
  for (std::size_t i = 0; i < packed.size(); i += 53) {
    checksum = checksum * 1099511628211ULL ^ packed[i];
  }
  return checksum;
}

}  // namespace labmon::nbench::detail
