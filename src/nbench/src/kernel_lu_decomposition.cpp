// LU DECOMPOSITION — dense linear system solve via Crout/Doolittle LU with
// partial pivoting (BYTEmark kernel 10). Validates by back-substitution
// residual against the original system.
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "kernels.hpp"
#include "labmon/util/rng.hpp"

namespace labmon::nbench::detail {

namespace {
constexpr int kN = 64;
}

std::uint64_t RunLuDecomposition(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x4c554445ULL);  // "LUDE"
  std::vector<double> a(static_cast<std::size_t>(kN) * kN);
  std::vector<double> b(kN);
  const auto at = [&](std::vector<double>& m, int i, int j) -> double& {
    return m[static_cast<std::size_t>(i) * kN + j];
  };
  for (int i = 0; i < kN; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < kN; ++j) {
      const double v = rng.Uniform(-1.0, 1.0);
      at(a, i, j) = v;
      row_sum += std::fabs(v);
    }
    at(a, i, i) += row_sum;  // diagonal dominance keeps the system benign
    b[i] = rng.Uniform(-10.0, 10.0);
  }
  std::vector<double> lu = a;
  std::vector<int> perm(kN);
  for (int i = 0; i < kN; ++i) perm[i] = i;

  // Doolittle LU with partial pivoting, in place.
  for (int k = 0; k < kN; ++k) {
    int pivot = k;
    double best = std::fabs(at(lu, k, k));
    for (int i = k + 1; i < kN; ++i) {
      const double cand = std::fabs(at(lu, i, k));
      if (cand > best) {
        best = cand;
        pivot = i;
      }
    }
    if (best < 1e-12) throw std::runtime_error("LU: singular matrix");
    if (pivot != k) {
      for (int j = 0; j < kN; ++j) std::swap(at(lu, k, j), at(lu, pivot, j));
      std::swap(perm[k], perm[pivot]);
    }
    for (int i = k + 1; i < kN; ++i) {
      at(lu, i, k) /= at(lu, k, k);
      const double factor = at(lu, i, k);
      for (int j = k + 1; j < kN; ++j) {
        at(lu, i, j) -= factor * at(lu, k, j);
      }
    }
  }

  // Solve L y = P b, then U x = y.
  std::vector<double> x(kN);
  for (int i = 0; i < kN; ++i) {
    double sum = b[static_cast<std::size_t>(perm[i])];
    for (int j = 0; j < i; ++j) sum -= at(lu, i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = sum;
  }
  for (int i = kN - 1; i >= 0; --i) {
    double sum = x[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < kN; ++j) sum -= at(lu, i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = sum / at(lu, i, i);
  }

  // Validation: residual ||Ax - b||_inf must be tiny.
  double residual = 0.0;
  for (int i = 0; i < kN; ++i) {
    double dot = 0.0;
    for (int j = 0; j < kN; ++j) dot += at(a, i, j) * x[static_cast<std::size_t>(j)];
    residual = std::max(residual, std::fabs(dot - b[static_cast<std::size_t>(i)]));
  }
  if (residual > 1e-8) throw std::runtime_error("LU: residual too large");

  std::uint64_t checksum = 0;
  for (int i = 0; i < kN; i += 7) {
    checksum = checksum * 1099511628211ULL ^
               static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(x[static_cast<std::size_t>(i)] * 1e6));
  }
  return checksum;
}

}  // namespace labmon::nbench::detail
