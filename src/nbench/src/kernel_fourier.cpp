// FOURIER — coefficients of the Fourier series of f(x) = (x+1)^x over
// [0, 2] by trapezoidal numerical integration (BYTEmark kernel 8).
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "kernels.hpp"

namespace labmon::nbench::detail {

namespace {

constexpr int kCoefficientPairs = 24;
constexpr int kIntegrationSteps = 100;
constexpr double kInterval = 2.0;

double TheFunction(double x, int n, bool cosine) noexcept {
  const double omega_t = 2.0 * n * M_PI * x / kInterval;
  const double base = std::pow(x + 1.0, x);
  return cosine ? base * std::cos(omega_t) : base * std::sin(omega_t);
}

double Trapezoid(int n, bool cosine) noexcept {
  const double dx = kInterval / kIntegrationSteps;
  double sum = 0.5 * (TheFunction(0.0, n, cosine) +
                      TheFunction(kInterval, n, cosine));
  for (int i = 1; i < kIntegrationSteps; ++i) {
    sum += TheFunction(i * dx, n, cosine);
  }
  return sum * dx;
}

}  // namespace

std::uint64_t RunFourier(std::uint64_t seed) {
  // The workload is deterministic; the seed only perturbs the validation
  // probe point so consecutive iterations are not trivially CSE-able.
  const double a0 = Trapezoid(0, true) / kInterval;
  double an[kCoefficientPairs];
  double bn[kCoefficientPairs];
  for (int n = 1; n <= kCoefficientPairs; ++n) {
    an[n - 1] = Trapezoid(n, true) * (2.0 / kInterval);
    bn[n - 1] = Trapezoid(n, false) * (2.0 / kInterval);
  }
  // Validation: the truncated series must approximate f at an interior
  // point (poor near endpoints, decent mid-interval).
  const double x = 1.0 + 1e-9 * static_cast<double>(seed % 97);
  double approx = a0;
  for (int n = 1; n <= kCoefficientPairs; ++n) {
    const double omega_t = 2.0 * n * M_PI * x / kInterval;
    approx += an[n - 1] * std::cos(omega_t) + bn[n - 1] * std::sin(omega_t);
  }
  const double expected = std::pow(x + 1.0, x);
  if (std::fabs(approx - expected) > 0.15 * expected) {
    throw std::runtime_error("FOURIER: series fails to approximate f");
  }
  std::uint64_t checksum = 0;
  for (int n = 0; n < kCoefficientPairs; ++n) {
    checksum = checksum * 1099511628211ULL ^
               static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(an[n] * 1e6));
    checksum = checksum * 1099511628211ULL ^
               static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(bn[n] * 1e6));
  }
  return checksum;
}

}  // namespace labmon::nbench::detail
