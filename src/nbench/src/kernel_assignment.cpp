// ASSIGNMENT — task-assignment problem (BYTEmark kernel 5). Solves a dense
// NxN min-cost assignment with the Hungarian algorithm (potentials form) and
// certifies optimality via complementary slackness before returning.
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "kernels.hpp"
#include "labmon/util/rng.hpp"

namespace labmon::nbench::detail {

namespace {
constexpr int kN = 64;
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}  // namespace

std::uint64_t RunAssignment(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x4153534eULL);  // "ASSN"
  std::vector<std::int64_t> cost(static_cast<std::size_t>(kN) * kN);
  for (auto& c : cost) c = rng.UniformInt(0, 9999);
  const auto at = [&](int i, int j) -> std::int64_t& {
    return cost[static_cast<std::size_t>(i) * kN + j];
  };

  // Hungarian algorithm with row/column potentials (1-indexed internals).
  std::vector<std::int64_t> u(kN + 1, 0), v(kN + 1, 0);
  std::vector<int> p(kN + 1, 0), way(kN + 1, 0);
  for (int i = 1; i <= kN; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<std::int64_t> minv(kN + 1, kInf);
    std::vector<char> used(kN + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      std::int64_t delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= kN; ++j) {
        if (used[j]) continue;
        const std::int64_t cur = at(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= kN; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  // row_of[j0-1] = assigned row for column; build row -> column map.
  std::vector<int> col_of(kN, -1);
  for (int j = 1; j <= kN; ++j) {
    if (p[j] > 0) col_of[p[j] - 1] = j - 1;
  }

  // Validation 1: assignment is a permutation.
  std::vector<char> seen(kN, 0);
  for (int i = 0; i < kN; ++i) {
    if (col_of[i] < 0 || seen[col_of[i]]) {
      throw std::runtime_error("ASSIGNMENT: not a permutation");
    }
    seen[col_of[i]] = 1;
  }
  // Validation 2: complementary slackness certifies optimality:
  // u[i] + v[j] <= c[i][j] for all (i, j), equality on assigned pairs.
  std::int64_t total = 0;
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) {
      if (u[i + 1] + v[j + 1] > at(i, j)) {
        throw std::runtime_error("ASSIGNMENT: dual feasibility violated");
      }
    }
    const int j = col_of[i];
    if (u[i + 1] + v[j + 1] != at(i, j)) {
      throw std::runtime_error("ASSIGNMENT: complementary slackness violated");
    }
    total += at(i, j);
  }
  return static_cast<std::uint64_t>(total) * 1099511628211ULL ^
         static_cast<std::uint64_t>(col_of[0]);
}

}  // namespace labmon::nbench::detail
