// NUMERIC SORT — heapsort of 32-bit integer arrays (BYTEmark kernel 1).
#include <array>
#include <cstdint>
#include <stdexcept>

#include "kernels.hpp"
#include "labmon/util/rng.hpp"

namespace labmon::nbench::detail {

namespace {

constexpr std::size_t kArraySize = 2048;
constexpr int kArraysPerIteration = 4;

void SiftDown(std::array<std::int32_t, kArraySize>& a, std::size_t start,
              std::size_t end) noexcept {
  std::size_t root = start;
  while (2 * root + 1 <= end) {
    std::size_t child = 2 * root + 1;
    if (child + 1 <= end && a[child] < a[child + 1]) ++child;
    if (a[root] < a[child]) {
      std::swap(a[root], a[child]);
      root = child;
    } else {
      return;
    }
  }
}

void HeapSort(std::array<std::int32_t, kArraySize>& a) noexcept {
  for (std::size_t start = kArraySize / 2; start-- > 0;) {
    SiftDown(a, start, kArraySize - 1);
  }
  for (std::size_t end = kArraySize - 1; end > 0; --end) {
    std::swap(a[0], a[end]);
    SiftDown(a, 0, end - 1);
  }
}

}  // namespace

std::uint64_t RunNumericSort(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x4e554d53ULL);  // "NUMS"
  std::uint64_t checksum = 0;
  std::array<std::int32_t, kArraySize> data{};
  for (int pass = 0; pass < kArraysPerIteration; ++pass) {
    for (auto& v : data) {
      v = static_cast<std::int32_t>(rng.NextU64());
    }
    HeapSort(data);
    for (std::size_t i = 1; i < kArraySize; ++i) {
      if (data[i - 1] > data[i]) {
        throw std::runtime_error("NUMERIC SORT: output not sorted");
      }
    }
    checksum = checksum * 1099511628211ULL ^
               static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(data[kArraySize / 2]));
  }
  return checksum;
}

}  // namespace labmon::nbench::detail
