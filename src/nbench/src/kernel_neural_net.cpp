// NEURAL NET — back-propagation training of a small feed-forward network
// (BYTEmark kernel 9). The original learns 5x7 bitmap digits -> 8-bit codes;
// we train 26 8-bit parity/identity patterns through a 8-12-8 network and
// verify the trained network actually classifies its training set.
#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "kernels.hpp"
#include "labmon/util/rng.hpp"

namespace labmon::nbench::detail {

namespace {

constexpr int kIn = 8;
constexpr int kHidden = 12;
constexpr int kOut = 8;
constexpr int kPatterns = 26;
constexpr int kMaxEpochs = 400;
constexpr double kLearningRate = 0.6;
constexpr double kMomentum = 0.4;

double Sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

struct Network {
  std::array<std::array<double, kIn + 1>, kHidden> w_ih{};   // +1 bias
  std::array<std::array<double, kHidden + 1>, kOut> w_ho{};  // +1 bias
  std::array<std::array<double, kIn + 1>, kHidden> dw_ih{};
  std::array<std::array<double, kHidden + 1>, kOut> dw_ho{};

  std::array<double, kHidden> hidden{};
  std::array<double, kOut> out{};

  void Forward(const std::array<double, kIn>& in) noexcept {
    for (int h = 0; h < kHidden; ++h) {
      double sum = w_ih[h][kIn];  // bias
      for (int i = 0; i < kIn; ++i) sum += w_ih[h][i] * in[i];
      hidden[h] = Sigmoid(sum);
    }
    for (int o = 0; o < kOut; ++o) {
      double sum = w_ho[o][kHidden];  // bias
      for (int h = 0; h < kHidden; ++h) sum += w_ho[o][h] * hidden[h];
      out[o] = Sigmoid(sum);
    }
  }

  double Train(const std::array<double, kIn>& in,
               const std::array<double, kOut>& target) noexcept {
    Forward(in);
    std::array<double, kOut> delta_o{};
    double error = 0.0;
    for (int o = 0; o < kOut; ++o) {
      const double e = target[o] - out[o];
      error += e * e;
      delta_o[o] = e * out[o] * (1.0 - out[o]);
    }
    std::array<double, kHidden> delta_h{};
    for (int h = 0; h < kHidden; ++h) {
      double sum = 0.0;
      for (int o = 0; o < kOut; ++o) sum += delta_o[o] * w_ho[o][h];
      delta_h[h] = sum * hidden[h] * (1.0 - hidden[h]);
    }
    for (int o = 0; o < kOut; ++o) {
      for (int h = 0; h < kHidden; ++h) {
        const double dw = kLearningRate * delta_o[o] * hidden[h] +
                          kMomentum * dw_ho[o][h];
        w_ho[o][h] += dw;
        dw_ho[o][h] = dw;
      }
      const double dwb =
          kLearningRate * delta_o[o] + kMomentum * dw_ho[o][kHidden];
      w_ho[o][kHidden] += dwb;
      dw_ho[o][kHidden] = dwb;
    }
    for (int h = 0; h < kHidden; ++h) {
      for (int i = 0; i < kIn; ++i) {
        const double dw =
            kLearningRate * delta_h[h] * in[i] + kMomentum * dw_ih[h][i];
        w_ih[h][i] += dw;
        dw_ih[h][i] = dw;
      }
      const double dwb =
          kLearningRate * delta_h[h] + kMomentum * dw_ih[h][kIn];
      w_ih[h][kIn] += dwb;
      dw_ih[h][kIn] = dwb;
    }
    return error;
  }
};

}  // namespace

std::uint64_t RunNeuralNet(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x4e4e4554ULL);  // "NNET"
  Network net;
  for (auto& row : net.w_ih) {
    for (auto& w : row) w = rng.Uniform(-0.5, 0.5);
  }
  for (auto& row : net.w_ho) {
    for (auto& w : row) w = rng.Uniform(-0.5, 0.5);
  }

  // Training set: input = 8-bit code of letter index, target = rotated code.
  std::array<std::array<double, kIn>, kPatterns> inputs{};
  std::array<std::array<double, kOut>, kPatterns> targets{};
  for (int p = 0; p < kPatterns; ++p) {
    const unsigned code = static_cast<unsigned>(p) + 0x41;  // 'A'..'Z'
    const unsigned rotated = ((code << 3) | (code >> 5)) & 0xff;
    for (int b = 0; b < 8; ++b) {
      inputs[p][b] = (code >> b) & 1u ? 0.9 : 0.1;
      targets[p][b] = (rotated >> b) & 1u ? 0.9 : 0.1;
    }
  }

  int epochs = 0;
  double error = 1e9;
  while (epochs < kMaxEpochs && error > 0.5) {
    error = 0.0;
    for (int p = 0; p < kPatterns; ++p) {
      error += net.Train(inputs[p], targets[p]);
    }
    ++epochs;
  }

  // Validation: every pattern must decode to the correct bits.
  for (int p = 0; p < kPatterns; ++p) {
    net.Forward(inputs[p]);
    for (int b = 0; b < 8; ++b) {
      const bool want = targets[p][b] > 0.5;
      const bool got = net.out[b] > 0.5;
      if (want != got) {
        throw std::runtime_error("NEURAL NET: failed to learn training set");
      }
    }
  }
  std::uint64_t checksum = static_cast<std::uint64_t>(epochs);
  checksum = checksum * 1099511628211ULL ^
             static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(error * 1e6));
  return checksum;
}

}  // namespace labmon::nbench::detail
