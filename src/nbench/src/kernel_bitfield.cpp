// BITFIELD — random runs of bit set/clear/complement over a bitmap
// (BYTEmark kernel 3).
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "kernels.hpp"
#include "labmon/util/rng.hpp"

namespace labmon::nbench::detail {

namespace {
constexpr std::size_t kBitmapWords = 2048;  // 64 Ki bits
constexpr std::size_t kBitCount = kBitmapWords * 32;
constexpr int kOperations = 256;

void SetRun(std::vector<std::uint32_t>& map, std::size_t start,
            std::size_t len) noexcept {
  for (std::size_t b = start; b < start + len; ++b) {
    map[(b % kBitCount) >> 5] |= (1u << ((b % kBitCount) & 31));
  }
}

void ClearRun(std::vector<std::uint32_t>& map, std::size_t start,
              std::size_t len) noexcept {
  for (std::size_t b = start; b < start + len; ++b) {
    map[(b % kBitCount) >> 5] &= ~(1u << ((b % kBitCount) & 31));
  }
}

void ComplementRun(std::vector<std::uint32_t>& map, std::size_t start,
                   std::size_t len) noexcept {
  for (std::size_t b = start; b < start + len; ++b) {
    map[(b % kBitCount) >> 5] ^= (1u << ((b % kBitCount) & 31));
  }
}

}  // namespace

std::uint64_t RunBitfield(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x42495446ULL);  // "BITF"
  std::vector<std::uint32_t> map(kBitmapWords, 0);
  for (int op = 0; op < kOperations; ++op) {
    const auto start = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(kBitCount - 1)));
    const auto len = static_cast<std::size_t>(rng.UniformInt(1, 1024));
    switch (rng.UniformInt(0, 2)) {
      case 0: SetRun(map, start, len); break;
      case 1: ClearRun(map, start, len); break;
      default: ComplementRun(map, start, len); break;
    }
  }
  // Population count doubles as the validation step: recompute it two ways.
  std::uint64_t popcount_loop = 0;
  std::uint64_t popcount_builtin = 0;
  for (const std::uint32_t w : map) {
    popcount_builtin += static_cast<std::uint64_t>(__builtin_popcount(w));
    std::uint32_t v = w;
    while (v) {
      v &= v - 1;
      ++popcount_loop;
    }
  }
  if (popcount_loop != popcount_builtin) {
    throw std::runtime_error("BITFIELD: popcount mismatch");
  }
  std::uint64_t checksum = popcount_loop;
  for (std::size_t i = 0; i < map.size(); i += 97) {
    checksum = checksum * 1099511628211ULL ^ map[i];
  }
  return checksum;
}

}  // namespace labmon::nbench::detail
