// STRING SORT — sorts arrays of variable-length strings (BYTEmark kernel 2).
// Like the original, strings live in one contiguous pool and sorting moves
// index records, not bytes.
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "kernels.hpp"
#include "labmon/util/rng.hpp"

namespace labmon::nbench::detail {

namespace {
constexpr std::size_t kStringCount = 1024;
constexpr std::size_t kMinLen = 4;
constexpr std::size_t kMaxLen = 40;
}  // namespace

std::uint64_t RunStringSort(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x53545253ULL);  // "STRS"
  std::vector<char> pool;
  pool.reserve(kStringCount * kMaxLen);
  struct Record {
    std::uint32_t offset;
    std::uint32_t length;
  };
  std::vector<Record> records;
  records.reserve(kStringCount);
  for (std::size_t i = 0; i < kStringCount; ++i) {
    const auto len = static_cast<std::size_t>(
        rng.UniformInt(static_cast<std::int64_t>(kMinLen),
                       static_cast<std::int64_t>(kMaxLen)));
    records.push_back(Record{static_cast<std::uint32_t>(pool.size()),
                             static_cast<std::uint32_t>(len)});
    for (std::size_t c = 0; c < len; ++c) {
      pool.push_back(static_cast<char>('A' + rng.UniformInt(0, 25)));
    }
  }
  const auto view = [&](const Record& r) {
    return std::string_view(pool.data() + r.offset, r.length);
  };
  std::sort(records.begin(), records.end(),
            [&](const Record& a, const Record& b) { return view(a) < view(b); });
  std::uint64_t checksum = 1469598103934665603ULL;
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (view(records[i - 1]) > view(records[i])) {
      throw std::runtime_error("STRING SORT: output not sorted");
    }
  }
  for (const Record& r : records) {
    const auto sv = view(r);
    checksum = (checksum ^ static_cast<unsigned char>(sv.front())) *
               1099511628211ULL;
    checksum = (checksum ^ sv.size()) * 1099511628211ULL;
  }
  return checksum;
}

}  // namespace labmon::nbench::detail
