// Internal kernel entry points (one translation unit per kernel).
// Each function runs one self-validating iteration with a deterministic
// working set derived from `seed` and returns a checksum; it throws
// std::runtime_error on verification failure.
#pragma once

#include <cstdint>

namespace labmon::nbench::detail {

std::uint64_t RunNumericSort(std::uint64_t seed);
std::uint64_t RunStringSort(std::uint64_t seed);
std::uint64_t RunBitfield(std::uint64_t seed);
std::uint64_t RunFpEmulation(std::uint64_t seed);
std::uint64_t RunAssignment(std::uint64_t seed);
std::uint64_t RunIdea(std::uint64_t seed);
std::uint64_t RunHuffman(std::uint64_t seed);
std::uint64_t RunFourier(std::uint64_t seed);
std::uint64_t RunNeuralNet(std::uint64_t seed);
std::uint64_t RunLuDecomposition(std::uint64_t seed);

}  // namespace labmon::nbench::detail
