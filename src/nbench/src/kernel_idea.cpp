// IDEA — International Data Encryption Algorithm (BYTEmark kernel 6).
// Full 8.5-round IDEA over a 4 KiB buffer; each iteration encrypts then
// decrypts and verifies the round trip (historical benchmark cipher — not
// for production cryptography).
#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "kernels.hpp"
#include "labmon/util/rng.hpp"

namespace labmon::nbench::detail {

namespace {

constexpr int kRounds = 8;
constexpr int kKeySubkeys = 52;
constexpr std::size_t kBufferBytes = 4096;

using SubkeyArray = std::array<std::uint16_t, kKeySubkeys>;

/// Multiplication modulo 65537 with 0 representing 65536 (IDEA's group op).
std::uint16_t MulMod(std::uint32_t a, std::uint32_t b) noexcept {
  if (a == 0) a = 0x10000;
  if (b == 0) b = 0x10000;
  const std::uint32_t product = (a * b) % 0x10001;
  return static_cast<std::uint16_t>(product == 0x10000 ? 0 : product);
}

/// Multiplicative inverse modulo 65537 (extended Euclid).
std::uint16_t MulInv(std::uint16_t x) noexcept {
  if (x <= 1) return x;
  std::int64_t t0 = 0, t1 = 1;
  std::int64_t r0 = 0x10001, r1 = x;
  while (r1 != 0) {
    const std::int64_t q = r0 / r1;
    std::int64_t tmp = r0 - q * r1;
    r0 = r1;
    r1 = tmp;
    tmp = t0 - q * t1;
    t0 = t1;
    t1 = tmp;
  }
  if (t0 < 0) t0 += 0x10001;
  return static_cast<std::uint16_t>(t0);
}

SubkeyArray ExpandKey(const std::array<std::uint16_t, 8>& key) noexcept {
  SubkeyArray z{};
  for (int i = 0; i < 8; ++i) z[i] = key[i];
  // Each batch of 8 subkeys is the 128-bit key rotated left by 25 bits
  // (standard Lai/Massey schedule).
  for (int i = 8; i < kKeySubkeys; ++i) {
    std::uint16_t hi, lo;
    if ((i & 7) < 6) {
      hi = z[i - 7];
      lo = z[i - 6];
    } else if ((i & 7) == 6) {
      hi = z[i - 7];
      lo = z[i - 14];
    } else {
      hi = z[i - 15];
      lo = z[i - 14];
    }
    z[i] = static_cast<std::uint16_t>(((hi & 127u) << 9) | (lo >> 7));
  }
  return z;
}

SubkeyArray InvertKey(const SubkeyArray& z) noexcept {
  // Classic back-to-front construction (Lai/Massey; cf. the reference
  // implementation in Schneier's Applied Cryptography).
  SubkeyArray dk{};
  int zi = 0;
  int p = kKeySubkeys;
  const auto neg = [](std::uint16_t x) {
    return static_cast<std::uint16_t>(0 - x);
  };
  std::uint16_t t1 = MulInv(z[zi++]);
  std::uint16_t t2 = neg(z[zi++]);
  std::uint16_t t3 = neg(z[zi++]);
  dk[--p] = MulInv(z[zi++]);
  dk[--p] = t3;
  dk[--p] = t2;
  dk[--p] = t1;
  for (int r = 1; r < kRounds; ++r) {
    t1 = z[zi++];
    dk[--p] = z[zi++];
    dk[--p] = t1;
    t1 = MulInv(z[zi++]);
    t2 = neg(z[zi++]);
    t3 = neg(z[zi++]);
    dk[--p] = MulInv(z[zi++]);
    dk[--p] = t2;  // inner rounds swap the two additive subkeys
    dk[--p] = t3;
    dk[--p] = t1;
  }
  t1 = z[zi++];
  dk[--p] = z[zi++];
  dk[--p] = t1;
  t1 = MulInv(z[zi++]);
  t2 = neg(z[zi++]);
  t3 = neg(z[zi++]);
  dk[--p] = MulInv(z[zi++]);
  dk[--p] = t3;
  dk[--p] = t2;
  dk[--p] = t1;
  return dk;
}

void CipherBlock(std::uint16_t* block, const SubkeyArray& z) noexcept {
  std::uint16_t x1 = block[0], x2 = block[1], x3 = block[2], x4 = block[3];
  int k = 0;
  for (int r = 0; r < kRounds; ++r) {
    x1 = MulMod(x1, z[k + 0]);
    x2 = static_cast<std::uint16_t>(x2 + z[k + 1]);
    x3 = static_cast<std::uint16_t>(x3 + z[k + 2]);
    x4 = MulMod(x4, z[k + 3]);
    const std::uint16_t t1 = MulMod(x1 ^ x3, z[k + 4]);
    const std::uint16_t t2 =
        MulMod(static_cast<std::uint16_t>((x2 ^ x4) + t1), z[k + 5]);
    const std::uint16_t t3 = static_cast<std::uint16_t>(t1 + t2);
    x1 ^= t2;
    x4 ^= t3;
    const std::uint16_t tmp = x2 ^ t3;
    x2 = x3 ^ t2;
    x3 = tmp;
    k += 6;
  }
  block[0] = MulMod(x1, z[k + 0]);
  block[1] = static_cast<std::uint16_t>(x3 + z[k + 1]);
  block[2] = static_cast<std::uint16_t>(x2 + z[k + 2]);
  block[3] = MulMod(x4, z[k + 3]);
}

}  // namespace

std::uint64_t RunIdea(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x49444541ULL);  // "IDEA"
  std::array<std::uint16_t, 8> key{};
  for (auto& k : key) k = static_cast<std::uint16_t>(rng.NextU64());
  const SubkeyArray enc = ExpandKey(key);
  const SubkeyArray dec = InvertKey(enc);

  std::vector<std::uint16_t> plain(kBufferBytes / 2);
  for (auto& w : plain) w = static_cast<std::uint16_t>(rng.NextU64());
  std::vector<std::uint16_t> work = plain;

  for (std::size_t off = 0; off + 4 <= work.size(); off += 4) {
    CipherBlock(work.data() + off, enc);
  }
  std::uint64_t checksum = 1469598103934665603ULL;
  for (std::size_t i = 0; i < work.size(); i += 31) {
    checksum = (checksum ^ work[i]) * 1099511628211ULL;
  }
  for (std::size_t off = 0; off + 4 <= work.size(); off += 4) {
    CipherBlock(work.data() + off, dec);
  }
  if (work != plain) {
    throw std::runtime_error("IDEA: decrypt(encrypt(x)) != x");
  }
  return checksum;
}

}  // namespace labmon::nbench::detail
