// FP EMULATION — software floating point on integer hardware (BYTEmark
// kernel 4). Implements a miniature binary floating-point format (32-bit
// mantissa + 16-bit exponent, sign/magnitude) with add/sub/mul/div built
// from integer operations only, then validates against the hardware FPU.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "kernels.hpp"
#include "labmon/util/rng.hpp"

namespace labmon::nbench::detail {

namespace {

/// Software float: value = sign * mantissa * 2^(exponent-31), with the
/// mantissa normalised so bit 31 is set (except for zero).
struct SoftFloat {
  std::uint32_t mantissa = 0;
  std::int32_t exponent = 0;
  int sign = 1;
};

SoftFloat Normalize(std::uint64_t mantissa64, std::int32_t exponent,
                    int sign) noexcept {
  if (mantissa64 == 0) return SoftFloat{0, 0, 1};
  while (mantissa64 >= (1ULL << 32)) {
    mantissa64 >>= 1;
    ++exponent;
  }
  while (mantissa64 < (1ULL << 31)) {
    mantissa64 <<= 1;
    --exponent;
  }
  return SoftFloat{static_cast<std::uint32_t>(mantissa64), exponent, sign};
}

SoftFloat FromDouble(double v) noexcept {
  if (v == 0.0) return SoftFloat{0, 0, 1};
  const int sign = v < 0 ? -1 : 1;
  v = std::fabs(v);
  int exp2 = 0;
  const double frac = std::frexp(v, &exp2);  // frac in [0.5, 1)
  const auto mant =
      static_cast<std::uint64_t>(frac * 4294967296.0);  // frac * 2^32
  return Normalize(mant, exp2 - 1, sign);  // mantissa*2^(exp-31) semantics
}

double ToDouble(const SoftFloat& f) noexcept {
  if (f.mantissa == 0) return 0.0;
  return f.sign * std::ldexp(static_cast<double>(f.mantissa), f.exponent - 31);
}

SoftFloat Add(const SoftFloat& a, const SoftFloat& b) noexcept {
  if (a.mantissa == 0) return b;
  if (b.mantissa == 0) return a;
  const SoftFloat* hi = &a;
  const SoftFloat* lo = &b;
  if (b.exponent > a.exponent ||
      (b.exponent == a.exponent && b.mantissa > a.mantissa)) {
    hi = &b;
    lo = &a;
  }
  const std::int32_t shift = hi->exponent - lo->exponent;
  const std::uint64_t lo_mant = shift >= 64 ? 0 : (static_cast<std::uint64_t>(lo->mantissa) >> shift);
  std::uint64_t mant;
  int sign = hi->sign;
  if (hi->sign == lo->sign) {
    mant = static_cast<std::uint64_t>(hi->mantissa) + lo_mant;
  } else {
    mant = static_cast<std::uint64_t>(hi->mantissa) - lo_mant;
  }
  return Normalize(mant, hi->exponent, sign);
}

SoftFloat Neg(SoftFloat f) noexcept {
  f.sign = -f.sign;
  return f;
}

SoftFloat Mul(const SoftFloat& a, const SoftFloat& b) noexcept {
  if (a.mantissa == 0 || b.mantissa == 0) return SoftFloat{0, 0, 1};
  const std::uint64_t product =
      (static_cast<std::uint64_t>(a.mantissa) * b.mantissa) >> 31;
  return Normalize(product, a.exponent + b.exponent, a.sign * b.sign);
}

SoftFloat Div(const SoftFloat& a, const SoftFloat& b) {
  if (b.mantissa == 0) throw std::runtime_error("FP EMULATION: divide by zero");
  if (a.mantissa == 0) return SoftFloat{0, 0, 1};
  const std::uint64_t numer = static_cast<std::uint64_t>(a.mantissa) << 31;
  const std::uint64_t quotient = numer / b.mantissa;
  return Normalize(quotient, a.exponent - b.exponent, a.sign * b.sign);
}

}  // namespace

std::uint64_t RunFpEmulation(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x46454d55ULL);  // "FEMU"
  std::uint64_t checksum = 0;
  constexpr int kExpressions = 160;
  for (int i = 0; i < kExpressions; ++i) {
    const double x = rng.Uniform(-100.0, 100.0);
    const double y = rng.Uniform(0.5, 50.0);
    const double z = rng.Uniform(-10.0, 10.0);
    // Evaluate ((x*y) + z) / y - x in software FP…
    const SoftFloat sx = FromDouble(x);
    const SoftFloat sy = FromDouble(y);
    const SoftFloat sz = FromDouble(z);
    const SoftFloat soft =
        Add(Div(Add(Mul(sx, sy), sz), sy), Neg(sx));  // should be ~ z/y
    const double got = ToDouble(soft);
    // …and validate against the hardware FPU within emulation tolerance.
    const double want = (x * y + z) / y - x;
    const double scale = std::max({std::fabs(x), std::fabs(want), 1.0});
    if (std::fabs(got - want) > 1e-6 * scale) {
      throw std::runtime_error("FP EMULATION: result diverged from FPU");
    }
    checksum = checksum * 1099511628211ULL ^
               static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(got * 4096.0));
  }
  return checksum;
}

}  // namespace labmon::nbench::detail
