#include "labmon/trace/sample_record.hpp"

#include <algorithm>

namespace labmon::trace {

SampleRecord MakeRecord(std::uint32_t machine, std::uint32_t iteration,
                        std::int64_t t, const ddc::W32Sample& sample) {
  SampleRecord r;
  r.machine = machine;
  r.iteration = iteration;
  r.t = t;
  r.boot_time = sample.boot_time;
  r.uptime_s = sample.uptime_s;
  r.cpu_idle_s = sample.cpu_idle_s;
  r.ram_mb = static_cast<std::uint16_t>(std::clamp(sample.ram_mb, 0, 65535));
  r.mem_load_pct = static_cast<std::uint8_t>(
      std::clamp(sample.mem_load_pct, 0, 100));
  r.swap_load_pct = static_cast<std::uint8_t>(
      std::clamp(sample.swap_load_pct, 0, 100));
  r.disk_total_b = sample.disk_total_b;
  r.disk_free_b = sample.disk_free_b;
  r.smart_power_on_hours = sample.smart_power_on_hours;
  r.smart_power_cycles = sample.smart_power_cycles;
  r.net_sent_b = sample.net_sent_b;
  r.net_recv_b = sample.net_recv_b;
  r.has_session = sample.HasSession();
  if (r.has_session) {
    r.session_logon = sample.session_logon_time;
    r.user = *sample.session_user;
  }
  return r;
}

}  // namespace labmon::trace
