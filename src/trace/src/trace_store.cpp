#include "labmon/trace/trace_store.hpp"

#include <algorithm>
#include <sstream>

#include "labmon/util/csv.hpp"
#include "labmon/util/strings.hpp"

namespace labmon::trace {

void TraceStore::Reserve(std::size_t samples) {
  ForEachColumn([&](auto member) { (columns_.*member).reserve(samples); });
}

std::uint32_t TraceStore::InternUser(const std::string& user) {
  const auto [it, inserted] =
      user_ids_.emplace(user, static_cast<std::uint32_t>(users_.size()));
  if (inserted) users_.push_back(user);
  return it->second;
}

void TraceStore::Append(const SampleRecord& record) {
  const auto index = static_cast<std::uint32_t>(size());
  columns_.machine.push_back(record.machine);
  columns_.iteration.push_back(record.iteration);
  columns_.t.push_back(record.t);
  columns_.boot_time.push_back(record.boot_time);
  columns_.uptime_s.push_back(record.uptime_s);
  columns_.cpu_idle_s.push_back(record.cpu_idle_s);
  columns_.ram_mb.push_back(record.ram_mb);
  columns_.mem_load_pct.push_back(record.mem_load_pct);
  columns_.swap_load_pct.push_back(record.swap_load_pct);
  columns_.disk_total_b.push_back(record.disk_total_b);
  columns_.disk_free_b.push_back(record.disk_free_b);
  columns_.smart_power_on_hours.push_back(record.smart_power_on_hours);
  columns_.smart_power_cycles.push_back(record.smart_power_cycles);
  columns_.net_sent_b.push_back(record.net_sent_b);
  columns_.net_recv_b.push_back(record.net_recv_b);
  columns_.has_session.push_back(record.has_session ? 1 : 0);
  columns_.session_logon.push_back(record.has_session ? record.session_logon
                                                      : 0);
  columns_.user_id.push_back(record.has_session ? InternUser(record.user)
                                                : kNoUser);
  if (record.machine >= per_machine_.size()) {
    per_machine_.resize(
        std::max<std::size_t>(record.machine + 1, machine_count_));
  }
  per_machine_[record.machine].push_back(index);
}

void TraceStore::AppendFrom(const Columns& src, std::size_t i,
                            std::uint32_t user_id) {
  const auto index = static_cast<std::uint32_t>(size());
  const std::uint32_t machine = src.machine[i];
  // Generic column-to-column copy; only user_id needs the caller's
  // translation (and a canonical kNoUser for session-free rows — source
  // stores built through Append already hold canonical session_logon).
  ForEachColumn(
      [&](auto member) { (columns_.*member).push_back((src.*member)[i]); });
  columns_.user_id.back() = src.has_session[i] != 0 ? user_id : kNoUser;
  if (machine >= per_machine_.size()) {
    per_machine_.resize(std::max<std::size_t>(machine + 1, machine_count_));
  }
  per_machine_[machine].push_back(index);
}

void TraceStore::ClearSamples() {
  ForEachColumn([&](auto member) { (columns_.*member).clear(); });
  iterations_.clear();
  users_.clear();
  user_ids_.clear();
  for (auto& index : per_machine_) index.clear();
}

void TraceStore::AppendIteration(IterationInfo info) {
  iterations_.push_back(info);
}

std::uint64_t TraceStore::TotalAttempts() const noexcept {
  std::uint64_t total = 0;
  for (const auto& it : iterations_) total += it.attempts;
  return total;
}

SampleRecord TraceStore::Sample(std::size_t i) const {
  SampleRecord s;
  s.machine = columns_.machine[i];
  s.iteration = columns_.iteration[i];
  s.t = columns_.t[i];
  s.boot_time = columns_.boot_time[i];
  s.uptime_s = columns_.uptime_s[i];
  s.cpu_idle_s = columns_.cpu_idle_s[i];
  s.ram_mb = columns_.ram_mb[i];
  s.mem_load_pct = columns_.mem_load_pct[i];
  s.swap_load_pct = columns_.swap_load_pct[i];
  s.disk_total_b = columns_.disk_total_b[i];
  s.disk_free_b = columns_.disk_free_b[i];
  s.smart_power_on_hours = columns_.smart_power_on_hours[i];
  s.smart_power_cycles = columns_.smart_power_cycles[i];
  s.net_sent_b = columns_.net_sent_b[i];
  s.net_recv_b = columns_.net_recv_b[i];
  s.has_session = columns_.has_session[i] != 0;
  if (s.has_session) {
    s.session_logon = columns_.session_logon[i];
    s.user = users_[columns_.user_id[i]];
  }
  return s;
}

std::string_view TraceStore::UserOf(std::size_t i) const noexcept {
  const std::uint32_t id = columns_.user_id[i];
  return id == kNoUser ? std::string_view{} : std::string_view(users_[id]);
}

std::span<const std::uint32_t> TraceStore::MachineSamples(
    std::size_t machine) const noexcept {
  if (machine >= per_machine_.size()) return {};
  return per_machine_[machine];
}

std::vector<std::uint32_t> TraceStore::ResponsesPerMachine() const {
  std::vector<std::uint32_t> counts(
      std::max(machine_count_, per_machine_.size()), 0);
  for (std::size_t m = 0; m < per_machine_.size(); ++m) {
    counts[m] = static_cast<std::uint32_t>(per_machine_[m].size());
  }
  return counts;
}

std::string TraceStore::SamplesToCsv() const {
  std::ostringstream oss;
  util::CsvWriter w(oss);
  w.Row("machine", "iteration", "t", "boot_time", "uptime_s", "cpu_idle_s",
        "ram_mb", "mem_load_pct", "swap_load_pct", "disk_total_b", "disk_free_b",
        "smart_poh", "smart_cycles", "net_sent_b", "net_recv_b", "user",
        "session_logon");
  const Columns& c = columns_;
  for (std::size_t i = 0; i < size(); ++i) {
    const bool session = c.has_session[i] != 0;
    w.Row(std::to_string(c.machine[i]), std::to_string(c.iteration[i]),
          std::to_string(c.t[i]), std::to_string(c.boot_time[i]),
          std::to_string(c.uptime_s[i]), util::FormatFixed(c.cpu_idle_s[i], 2),
          std::to_string(c.ram_mb[i]), std::to_string(c.mem_load_pct[i]),
          std::to_string(c.swap_load_pct[i]),
          std::to_string(c.disk_total_b[i]), std::to_string(c.disk_free_b[i]),
          std::to_string(c.smart_power_on_hours[i]),
          std::to_string(c.smart_power_cycles[i]),
          std::to_string(c.net_sent_b[i]), std::to_string(c.net_recv_b[i]),
          session ? std::string(UserOf(i)) : "",
          session ? std::to_string(c.session_logon[i]) : "");
  }
  return oss.str();
}

std::string TraceStore::IterationsToCsv() const {
  std::ostringstream oss;
  util::CsvWriter w(oss);
  w.Row("iteration", "start_t", "end_t", "attempts", "successes");
  for (const auto& it : iterations_) {
    w.Row(std::to_string(it.iteration), std::to_string(it.start_t),
          std::to_string(it.end_t), std::to_string(it.attempts),
          std::to_string(it.successes));
  }
  return oss.str();
}

util::Result<TraceStore> TraceStore::FromCsv(const std::string& samples_csv,
                                             const std::string& iterations_csv,
                                             std::size_t machine_count) {
  using R = util::Result<TraceStore>;
  const auto samples_doc = util::ParseCsv(samples_csv);
  if (!samples_doc.ok()) return R::Err("samples: " + samples_doc.error());
  const auto iter_doc = util::ParseCsv(iterations_csv);
  if (!iter_doc.ok()) return R::Err("iterations: " + iter_doc.error());

  TraceStore store(machine_count);
  store.Reserve(samples_doc.value().rows.size());
  for (const auto& row : samples_doc.value().rows) {
    if (row.size() < 17) return R::Err("short sample row");
    const auto i64 = [&](std::size_t col) {
      return util::ParseInt64(row[col]).value_or(0);
    };
    SampleRecord s;
    s.machine = static_cast<std::uint32_t>(i64(0));
    s.iteration = static_cast<std::uint32_t>(i64(1));
    s.t = i64(2);
    s.boot_time = i64(3);
    s.uptime_s = i64(4);
    s.cpu_idle_s = util::ParseDouble(row[5]).value_or(0.0);
    s.ram_mb = static_cast<std::uint16_t>(i64(6));
    s.mem_load_pct = static_cast<std::uint8_t>(i64(7));
    s.swap_load_pct = static_cast<std::uint8_t>(i64(8));
    s.disk_total_b = static_cast<std::uint64_t>(i64(9));
    s.disk_free_b = static_cast<std::uint64_t>(i64(10));
    s.smart_power_on_hours = static_cast<std::uint64_t>(i64(11));
    s.smart_power_cycles = static_cast<std::uint64_t>(i64(12));
    s.net_sent_b = static_cast<std::uint64_t>(i64(13));
    s.net_recv_b = static_cast<std::uint64_t>(i64(14));
    s.has_session = !row[15].empty();
    if (s.has_session) {
      s.user = row[15];
      s.session_logon = i64(16);
    }
    store.Append(s);
  }
  for (const auto& row : iter_doc.value().rows) {
    if (row.size() < 5) return R::Err("short iteration row");
    IterationInfo info;
    info.iteration =
        static_cast<std::uint64_t>(util::ParseInt64(row[0]).value_or(0));
    info.start_t = util::ParseInt64(row[1]).value_or(0);
    info.end_t = util::ParseInt64(row[2]).value_or(0);
    info.attempts =
        static_cast<std::uint32_t>(util::ParseInt64(row[3]).value_or(0));
    info.successes =
        static_cast<std::uint32_t>(util::ParseInt64(row[4]).value_or(0));
    store.AppendIteration(info);
  }
  return store;
}

}  // namespace labmon::trace
