#include "labmon/trace/trace_store.hpp"

#include <sstream>

#include "labmon/util/csv.hpp"
#include "labmon/util/strings.hpp"

namespace labmon::trace {

void TraceStore::Append(SampleRecord record) {
  samples_.push_back(std::move(record));
  index_dirty_ = true;
}

void TraceStore::AppendIteration(IterationInfo info) {
  iterations_.push_back(info);
}

std::uint64_t TraceStore::TotalAttempts() const noexcept {
  std::uint64_t total = 0;
  for (const auto& it : iterations_) total += it.attempts;
  return total;
}

void TraceStore::EnsureIndex() const {
  if (!index_dirty_) return;
  per_machine_.assign(machine_count_, {});
  for (std::uint32_t i = 0; i < samples_.size(); ++i) {
    const auto m = samples_[i].machine;
    if (m >= per_machine_.size()) per_machine_.resize(m + 1);
    per_machine_[m].push_back(i);
  }
  index_dirty_ = false;
}

std::span<const std::uint32_t> TraceStore::MachineSamples(
    std::size_t machine) const {
  EnsureIndex();
  if (machine >= per_machine_.size()) return {};
  return per_machine_[machine];
}

std::vector<std::uint32_t> TraceStore::ResponsesPerMachine() const {
  EnsureIndex();
  std::vector<std::uint32_t> counts(per_machine_.size(), 0);
  for (std::size_t m = 0; m < per_machine_.size(); ++m) {
    counts[m] = static_cast<std::uint32_t>(per_machine_[m].size());
  }
  return counts;
}

std::string TraceStore::SamplesToCsv() const {
  std::ostringstream oss;
  util::CsvWriter w(oss);
  w.Row("machine", "iteration", "t", "boot_time", "uptime_s", "cpu_idle_s",
        "ram_mb", "mem_load_pct", "swap_load_pct", "disk_total_b", "disk_free_b",
        "smart_poh", "smart_cycles", "net_sent_b", "net_recv_b", "user",
        "session_logon");
  for (const auto& s : samples_) {
    w.Row(std::to_string(s.machine), std::to_string(s.iteration),
          std::to_string(s.t), std::to_string(s.boot_time),
          std::to_string(s.uptime_s), util::FormatFixed(s.cpu_idle_s, 2),
          std::to_string(s.ram_mb), std::to_string(s.mem_load_pct),
          std::to_string(s.swap_load_pct),
          std::to_string(s.disk_total_b), std::to_string(s.disk_free_b),
          std::to_string(s.smart_power_on_hours),
          std::to_string(s.smart_power_cycles), std::to_string(s.net_sent_b),
          std::to_string(s.net_recv_b), s.has_session ? s.user : "",
          s.has_session ? std::to_string(s.session_logon) : "");
  }
  return oss.str();
}

std::string TraceStore::IterationsToCsv() const {
  std::ostringstream oss;
  util::CsvWriter w(oss);
  w.Row("iteration", "start_t", "end_t", "attempts", "successes");
  for (const auto& it : iterations_) {
    w.Row(std::to_string(it.iteration), std::to_string(it.start_t),
          std::to_string(it.end_t), std::to_string(it.attempts),
          std::to_string(it.successes));
  }
  return oss.str();
}

util::Result<TraceStore> TraceStore::FromCsv(const std::string& samples_csv,
                                             const std::string& iterations_csv,
                                             std::size_t machine_count) {
  using R = util::Result<TraceStore>;
  const auto samples_doc = util::ParseCsv(samples_csv);
  if (!samples_doc.ok()) return R::Err("samples: " + samples_doc.error());
  const auto iter_doc = util::ParseCsv(iterations_csv);
  if (!iter_doc.ok()) return R::Err("iterations: " + iter_doc.error());

  TraceStore store(machine_count);
  store.Reserve(samples_doc.value().rows.size());
  for (const auto& row : samples_doc.value().rows) {
    if (row.size() < 17) return R::Err("short sample row");
    const auto i64 = [&](std::size_t col) {
      return util::ParseInt64(row[col]).value_or(0);
    };
    SampleRecord s;
    s.machine = static_cast<std::uint32_t>(i64(0));
    s.iteration = static_cast<std::uint32_t>(i64(1));
    s.t = i64(2);
    s.boot_time = i64(3);
    s.uptime_s = i64(4);
    s.cpu_idle_s = util::ParseDouble(row[5]).value_or(0.0);
    s.ram_mb = static_cast<std::uint16_t>(i64(6));
    s.mem_load_pct = static_cast<std::uint8_t>(i64(7));
    s.swap_load_pct = static_cast<std::uint8_t>(i64(8));
    s.disk_total_b = static_cast<std::uint64_t>(i64(9));
    s.disk_free_b = static_cast<std::uint64_t>(i64(10));
    s.smart_power_on_hours = static_cast<std::uint64_t>(i64(11));
    s.smart_power_cycles = static_cast<std::uint64_t>(i64(12));
    s.net_sent_b = static_cast<std::uint64_t>(i64(13));
    s.net_recv_b = static_cast<std::uint64_t>(i64(14));
    s.has_session = !row[15].empty();
    if (s.has_session) {
      s.user = row[15];
      s.session_logon = i64(16);
    }
    store.Append(std::move(s));
  }
  for (const auto& row : iter_doc.value().rows) {
    if (row.size() < 5) return R::Err("short iteration row");
    IterationInfo info;
    info.iteration =
        static_cast<std::uint64_t>(util::ParseInt64(row[0]).value_or(0));
    info.start_t = util::ParseInt64(row[1]).value_or(0);
    info.end_t = util::ParseInt64(row[2]).value_or(0);
    info.attempts =
        static_cast<std::uint32_t>(util::ParseInt64(row[3]).value_or(0));
    info.successes =
        static_cast<std::uint32_t>(util::ParseInt64(row[4]).value_or(0));
    store.AppendIteration(info);
  }
  return store;
}

}  // namespace labmon::trace
