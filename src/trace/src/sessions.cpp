#include "labmon/trace/sessions.hpp"

namespace labmon::trace {

void AppendMachineSessions(const TraceStore& trace, std::size_t machine,
                           std::vector<MachineSession>& out) {
  const TraceStore::Columns& c = trace.columns();
  const MachineSession* open = nullptr;
  for (const std::uint32_t idx : trace.MachineSamples(machine)) {
    // A new boot epoch: first sample, boot time changed, or uptime went
    // backwards (boot-time equality is the robust signal; uptime
    // regression catches clock quirks).
    const bool new_session = open == nullptr ||
                             c.boot_time[idx] != open->boot_time ||
                             c.uptime_s[idx] < open->last_uptime_s;
    if (new_session) {
      MachineSession session;
      session.machine = static_cast<std::uint32_t>(machine);
      session.boot_time = c.boot_time[idx];
      session.first_sample_t = c.t[idx];
      session.last_sample_t = c.t[idx];
      session.last_uptime_s = c.uptime_s[idx];
      session.sample_count = 1;
      out.push_back(session);
    } else {
      auto& session = out.back();
      session.last_sample_t = c.t[idx];
      session.last_uptime_s = c.uptime_s[idx];
      ++session.sample_count;
    }
    open = &out.back();
  }
}

std::vector<MachineSession> ReconstructSessions(const TraceStore& trace) {
  std::vector<MachineSession> sessions;
  for (std::size_t m = 0; m < trace.machine_count(); ++m) {
    AppendMachineSessions(trace, m, sessions);
  }
  return sessions;
}

void AppendMachineInteractiveSpans(const TraceStore& trace,
                                   std::size_t machine,
                                   std::vector<InteractiveSpan>& out) {
  const TraceStore::Columns& c = trace.columns();
  const InteractiveSpan* open = nullptr;
  for (const std::uint32_t idx : trace.MachineSamples(machine)) {
    if (!c.has_session[idx]) {
      open = nullptr;
      continue;
    }
    // Logon instants are exact (the probe reports session start), so a
    // span is keyed by its logon time.
    if (open == nullptr || c.session_logon[idx] != open->logon_time) {
      InteractiveSpan span;
      span.machine = static_cast<std::uint32_t>(machine);
      span.logon_time = c.session_logon[idx];
      span.last_sample_t = c.t[idx];
      span.sample_count = 1;
      out.push_back(span);
    } else {
      auto& span = out.back();
      span.last_sample_t = c.t[idx];
      ++span.sample_count;
    }
    open = &out.back();
  }
}

std::vector<InteractiveSpan> ReconstructInteractiveSpans(
    const TraceStore& trace) {
  std::vector<InteractiveSpan> spans;
  for (std::size_t m = 0; m < trace.machine_count(); ++m) {
    AppendMachineInteractiveSpans(trace, m, spans);
  }
  return spans;
}

}  // namespace labmon::trace
