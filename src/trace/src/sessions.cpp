#include "labmon/trace/sessions.hpp"

namespace labmon::trace {

std::vector<MachineSession> ReconstructSessions(const TraceStore& trace) {
  std::vector<MachineSession> sessions;
  for (std::size_t m = 0; m < trace.machine_count(); ++m) {
    const auto indices = trace.MachineSamples(m);
    const MachineSession* open = nullptr;
    for (const std::uint32_t idx : indices) {
      const SampleRecord& s = trace.samples()[idx];
      // A new boot epoch: first sample, boot time changed, or uptime went
      // backwards (boot-time equality is the robust signal; uptime
      // regression catches clock quirks).
      const bool new_session =
          open == nullptr || s.boot_time != open->boot_time ||
          s.uptime_s < open->last_uptime_s;
      if (new_session) {
        MachineSession session;
        session.machine = static_cast<std::uint32_t>(m);
        session.boot_time = s.boot_time;
        session.first_sample_t = s.t;
        session.last_sample_t = s.t;
        session.last_uptime_s = s.uptime_s;
        session.sample_count = 1;
        sessions.push_back(session);
        open = &sessions.back();
      } else {
        auto& session = sessions.back();
        session.last_sample_t = s.t;
        session.last_uptime_s = s.uptime_s;
        ++session.sample_count;
        open = &session;
      }
    }
  }
  return sessions;
}

std::vector<InteractiveSpan> ReconstructInteractiveSpans(
    const TraceStore& trace) {
  std::vector<InteractiveSpan> spans;
  for (std::size_t m = 0; m < trace.machine_count(); ++m) {
    const auto indices = trace.MachineSamples(m);
    const InteractiveSpan* open = nullptr;
    for (const std::uint32_t idx : indices) {
      const SampleRecord& s = trace.samples()[idx];
      if (!s.has_session) {
        open = nullptr;
        continue;
      }
      // Logon instants are exact (the probe reports session start), so a
      // span is keyed by its logon time.
      if (open == nullptr || s.session_logon != open->logon_time) {
        InteractiveSpan span;
        span.machine = static_cast<std::uint32_t>(m);
        span.logon_time = s.session_logon;
        span.last_sample_t = s.t;
        span.sample_count = 1;
        spans.push_back(span);
        open = &spans.back();
      } else {
        auto& span = spans.back();
        span.last_sample_t = s.t;
        ++span.sample_count;
        open = &span;
      }
    }
  }
  return spans;
}

}  // namespace labmon::trace
