#include "labmon/trace/segment.hpp"

#include <chrono>
#include <utility>

#include "labmon/obs/registry.hpp"
#include "labmon/util/varint.hpp"

namespace labmon::trace {

namespace {

constexpr std::size_t kMagicLen = 5;
constexpr std::uint64_t kVersion = 1;
/// Hard sanity bound on one block payload (a 64k-sample block is a few MB
/// encoded; anything near this is a corrupt length prefix).
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 31;

std::uint64_t Fnv1a(const std::string& bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t NowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Reads one LEB128 varint byte-at-a-time from the stream. Returns false
/// on EOF before the first byte (clean end) with *clean_eof = true, or on
/// truncation/overlong input with *clean_eof = false.
bool ReadVarint(std::istream& in, std::uint64_t& value, bool& clean_eof) {
  value = 0;
  clean_eof = false;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    const int c = in.get();
    if (c == EOF) {
      clean_eof = i == 0;
      return false;
    }
    value |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

/// Bulk-updates the registry's spill codec counters, one call per
/// Append/Next so the encode/decode hot loops stay clean (the per-column
/// breakdown is counted inside the LMSG2 codec itself).
void CountSpillIo(const SpillCodec& codec, const char* direction,
                  const SpillCodecStats& delta) {
  obs::Registry& registry = obs::DefaultRegistry();
  const char* name = SpillCodecName(codec.id());
  registry
      .GetCounter("labmon_spill_raw_bytes_total",
                  "In-memory columnar bytes moved through the spill codecs",
                  {{"codec", name}, {"direction", direction}})
      .Increment(delta.raw_bytes);
  registry
      .GetCounter("labmon_spill_payload_bytes_total",
                  "Encoded payload bytes moved through the spill codecs",
                  {{"codec", name}, {"direction", direction}})
      .Increment(delta.payload_bytes);
  registry
      .GetCounter("labmon_spill_codec_ns_total",
                  "Wall nanoseconds spent in spill encode/decode",
                  {{"codec", name}, {"direction", direction}})
      .Increment(delta.ns);
  registry
      .GetCounter("labmon_spill_codec_samples_total",
                  "Samples moved through the spill codecs",
                  {{"codec", name}, {"direction", direction}})
      .Increment(delta.samples);
}

}  // namespace

util::Result<SegmentWriter> SegmentWriter::Open(const std::string& path,
                                                std::size_t machine_count,
                                                SpillCodecId codec) {
  using R = util::Result<SegmentWriter>;
  SegmentWriter writer;
  writer.path_ = path;
  writer.codec_ = &GetSpillCodec(codec);
  writer.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.out_) return R::Err("cannot open segment for write: " + path);
  std::string header(writer.codec_->magic());
  util::PutVarint(header, kVersion);
  util::PutVarint(header, machine_count);
  writer.out_.write(header.data(),
                    static_cast<std::streamsize>(header.size()));
  writer.bytes_written_ += header.size();
  if (!writer.out_) return R::Err("segment header write failed: " + path);
  return writer;
}

util::Result<bool> SegmentWriter::Append(const TraceStore& block_store) {
  using R = util::Result<bool>;
  if (!out_) return R::Err("segment writer not open: " + path_);
  const std::uint64_t t0 = NowNs();
  codec_->EncodeBlock(block_store, payload_);
  SpillCodecStats delta;
  delta.blocks = 1;
  delta.samples = block_store.size();
  delta.raw_bytes = RawColumnBytes(block_store);
  delta.payload_bytes = payload_.size();
  delta.ns = NowNs() - t0;
  stats_ += delta;
  CountSpillIo(*codec_, "write", delta);
  std::string frame;
  util::PutVarint(frame, payload_.size());
  const std::uint64_t checksum = Fnv1a(payload_);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.write(payload_.data(), static_cast<std::streamsize>(payload_.size()));
  char sum[8];
  for (int i = 0; i < 8; ++i) {
    sum[i] = static_cast<char>((checksum >> (8 * i)) & 0xff);
  }
  out_.write(sum, 8);
  if (!out_) return R::Err("segment block write failed: " + path_);
  bytes_written_ += frame.size() + payload_.size() + 8;
  ++blocks_;
  return true;
}

util::Result<bool> SegmentWriter::Finish() {
  using R = util::Result<bool>;
  out_.flush();
  if (!out_) return R::Err("segment flush failed: " + path_);
  out_.close();
  if (out_.fail()) return R::Err("segment close failed: " + path_);
  return true;
}

util::Result<SegmentReader> SegmentReader::Open(const std::string& path) {
  using R = util::Result<SegmentReader>;
  SegmentReader reader;
  reader.path_ = path;
  reader.in_.open(path, std::ios::binary);
  if (!reader.in_) return R::Err("cannot open segment for read: " + path);
  char magic[kMagicLen];
  reader.in_.read(magic, kMagicLen);
  if (reader.in_.gcount() != static_cast<std::streamsize>(kMagicLen)) {
    return R::Err("bad segment magic: " + path);
  }
  reader.codec_ = FindSpillCodecByMagic(std::string_view(magic, kMagicLen));
  if (reader.codec_ == nullptr) {
    return R::Err("bad segment magic: " + path);
  }
  std::uint64_t version = 0;
  std::uint64_t machines = 0;
  bool clean = false;
  if (!ReadVarint(reader.in_, version, clean) || version != kVersion) {
    return R::Err("unsupported segment version: " + path);
  }
  if (!ReadVarint(reader.in_, machines, clean)) {
    return R::Err("truncated segment header: " + path);
  }
  reader.machine_count_ = static_cast<std::size_t>(machines);
  reader.first_block_pos_ = reader.in_.tellg();
  return reader;
}

void SegmentReader::Reset() {
  error_.clear();
  in_.clear();
  in_.seekg(first_block_pos_);
  next_iteration_ = 0;
}

const TraceBlock* SegmentReader::Next() {
  if (!error_.empty()) return nullptr;
  std::uint64_t payload_len = 0;
  bool clean_eof = false;
  if (!ReadVarint(in_, payload_len, clean_eof)) {
    if (!clean_eof) error_ = "truncated block length prefix: " + path_;
    return nullptr;
  }
  if (payload_len > kMaxPayloadBytes) {
    error_ = "implausible block length (corrupt prefix): " + path_;
    return nullptr;
  }
  payload_.resize(static_cast<std::size_t>(payload_len));
  in_.read(payload_.data(), static_cast<std::streamsize>(payload_len));
  if (in_.gcount() != static_cast<std::streamsize>(payload_len)) {
    error_ = "truncated block payload: " + path_;
    return nullptr;
  }
  char sum[8];
  in_.read(sum, 8);
  if (in_.gcount() != 8) {
    error_ = "truncated block checksum: " + path_;
    return nullptr;
  }
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(static_cast<unsigned char>(sum[i]))
              << (8 * i);
  }
  if (stored != Fnv1a(payload_)) {
    error_ = "block checksum mismatch: " + path_;
    return nullptr;
  }
  const std::uint64_t t0 = NowNs();
  auto decoded = codec_->DecodeBlock(payload_, machine_count_, scratch_);
  if (!decoded.ok()) {
    error_ = "block payload decode failed (" + decoded.error() + "): " + path_;
    return nullptr;
  }
  SpillCodecStats delta;
  delta.blocks = 1;
  delta.samples = scratch_.size();
  delta.raw_bytes = RawColumnBytes(scratch_);
  delta.payload_bytes = payload_.size();
  delta.ns = NowNs() - t0;
  stats_ += delta;
  CountSpillIo(*codec_, "read", delta);
  // Payloads number iteration rows from zero; a segment's blocks cover the
  // lab's iterations contiguously in order, so restore the stream-global
  // numbering the merge keys on.
  for (IterationInfo& info : scratch_.iterations) {
    info.iteration = next_iteration_++;
  }
  return &scratch_;
}

}  // namespace labmon::trace
