#include "labmon/trace/merge_frontier.hpp"

#include <algorithm>
#include <utility>

#include "labmon/util/parallel.hpp"

namespace labmon::trace {

namespace {
/// Fronts gathered per Advance() batch before sorting + appending. Bounds
/// the staged-key working set; large enough that a backed-up ring yields
/// real sort parallelism.
constexpr std::size_t kMaxFrontBatch = 32;
/// Parallel sorting only pays for itself past this many staged keys.
constexpr std::size_t kParallelSortThreshold = 4096;
}  // namespace

MergeFrontier::MergeFrontier(std::size_t part_count,
                             std::size_t machine_count,
                             std::size_t block_samples)
    : parts_(part_count),
      block_samples_(std::max<std::size_t>(1, block_samples)),
      builder_(machine_count) {}

void MergeFrontier::Append(std::size_t part,
                           std::unique_ptr<TraceBlock> block) {
  Part& p = parts_[part];
  Slot slot;
  slot.view = block.get();
  slot.owned = std::move(block);
  p.slots.push_back(std::move(slot));
  ++buffered_blocks_;
}

void MergeFrontier::AppendView(std::size_t part, const TraceBlock* block) {
  Slot slot;
  slot.view = block;
  parts_[part].slots.push_back(std::move(slot));
  ++buffered_blocks_;
}

void MergeFrontier::FinishPart(std::size_t part) {
  parts_[part].done = true;
}

void MergeFrontier::RetireExhausted(std::size_t part) {
  Part& p = parts_[part];
  while (!p.slots.empty()) {
    const TraceBlock& head = *p.slots.front().view;
    if (p.idx < head.size() || p.it_idx < head.iterations.size()) break;
    Slot slot = std::move(p.slots.front());
    p.slots.pop_front();
    p.idx = 0;
    p.it_idx = 0;
    --buffered_blocks_;
    if (slot.owned) retired_.emplace_back(part, std::move(slot.owned));
  }
}

MergeFrontier::Scan MergeFrontier::CheckReady() {
  while (scan_pos_ < parts_.size()) {
    Part& part = parts_[scan_pos_];
    RetireExhausted(scan_pos_);
    if (!part.slots.empty()) {
      scan_content_ = true;
    } else if (!part.done) {
      stalled_part_ = scan_pos_;
      return Scan::kStalled;
    }
    ++scan_pos_;
  }
  return scan_content_ ? Scan::kReady : Scan::kExhausted;
}

void MergeFrontier::GatherFront() {
  const std::uint64_t it = next_front_;
  const std::size_t range_begin = batch_keys_.size();
  IterationInfo info;
  info.iteration = it;
  bool any = false;
  for (Part& part : parts_) {
    if (part.slots.empty()) continue;  // finished part, stream drained
    const TraceBlock& block = *part.slots.front().view;
    // Drop malformed (non-monotonic / info-less) rows so a corrupt input
    // cannot wedge the merge loop; MergeTraces drops the same rows by
    // leaving its cursor stuck until max_iters.
    while (part.idx < block.size() &&
           block.cols.iteration[part.idx] < it) {
      ++part.idx;
    }
    while (part.it_idx < block.iterations.size() &&
           block.iterations[part.it_idx].iteration < it) {
      ++part.it_idx;
    }
    if (part.it_idx >= block.iterations.size() ||
        block.iterations[part.it_idx].iteration != it) {
      continue;
    }
    const IterationInfo& pi = block.iterations[part.it_idx];
    ++part.it_idx;
    if (!any) {
      info.start_t = pi.start_t;
      info.end_t = pi.end_t;
      any = true;
    } else {
      info.start_t = std::min(info.start_t, pi.start_t);
      info.end_t = std::max(info.end_t, pi.end_t);
    }
    info.attempts += pi.attempts;
    info.successes += pi.successes;
    const TraceStore::Columns& cols = block.cols;
    while (part.idx < block.size() && cols.iteration[part.idx] == it) {
      batch_keys_.push_back({cols.t[part.idx], cols.machine[part.idx],
                             &block,
                             static_cast<std::uint32_t>(part.idx)});
      ++part.idx;
    }
  }
  batch_ranges_.emplace_back(range_begin, batch_keys_.size());
  batch_infos_.push_back(info);
  batch_has_info_.push_back(any ? 1 : 0);
  ++next_front_;
  // The next front starts a fresh readiness scan (this one consumed
  // content, so earlier parts may now be exhausted).
  scan_pos_ = 0;
  scan_content_ = false;
}

void MergeFrontier::Seal(EmitFn emit) {
  if (builder_.size() == 0) return;
  sealed_.AssignFrom(builder_);
  sealed_.iterations.clear();
  samples_ += sealed_.size();
  ++blocks_;
  emit(sealed_);
  builder_.ClearSamples();
}

std::size_t MergeFrontier::Advance(EmitFn emit, RecycleFn recycle,
                                   std::size_t sort_workers) {
  std::size_t fronts_merged = 0;
  while (!finished_) {
    // Gather a batch of ready fronts.
    batch_keys_.clear();
    batch_ranges_.clear();
    batch_infos_.clear();
    batch_has_info_.clear();
    Scan scan = Scan::kReady;
    while (batch_ranges_.size() < kMaxFrontBatch) {
      scan = CheckReady();
      if (scan != Scan::kReady) break;
      GatherFront();
    }
    if (!batch_ranges_.empty()) {
      // Sort each front's keys — in parallel when the ring backed up and
      // the batch is big enough to amortise the threads. Keys are unique
      // per front ((t, machine); a machine is probed at most once per
      // iteration), so the sorted order does not depend on scheduling.
      const auto sort_range = [&](std::size_t f) {
        const auto [begin, end] = batch_ranges_[f];
        std::sort(batch_keys_.begin() + static_cast<std::ptrdiff_t>(begin),
                  batch_keys_.begin() + static_cast<std::ptrdiff_t>(end),
                  [](const Key& a, const Key& b) {
                    return a.t != b.t ? a.t < b.t : a.machine < b.machine;
                  });
      };
      if (sort_workers > 1 && batch_ranges_.size() > 1 &&
          batch_keys_.size() >= kParallelSortThreshold) {
        util::ParallelFor(batch_ranges_.size(), sort_range, sort_workers);
      } else {
        for (std::size_t f = 0; f < batch_ranges_.size(); ++f) {
          sort_range(f);
        }
      }
      // Append strictly in front order; seal points fall exactly where the
      // one-front-at-a-time merge would put them.
      for (std::size_t f = 0; f < batch_ranges_.size(); ++f) {
        const auto [begin, end] = batch_ranges_[f];
        for (std::size_t k = begin; k < end; ++k) {
          const Key& key = batch_keys_[k];
          const TraceBlock& src = *key.src;
          std::uint32_t uid = src.cols.user_id[key.idx];
          if (uid != TraceStore::kNoUser) {
            uid = builder_.InternUserId(src.users[uid]);
          }
          builder_.AppendFrom(src.cols, key.idx, uid);
        }
        if (batch_has_info_[f]) iterations_.push_back(batch_infos_[f]);
        ++fronts_merged;
        if (builder_.size() >= block_samples_) Seal(emit);
      }
    }
    // Consumed owned blocks are safe to recycle once their rows are
    // appended (keys referenced them during the batch).
    for (auto& [part, block] : retired_) {
      recycle(part, std::move(block));
    }
    retired_.clear();
    if (scan == Scan::kExhausted) {
      Seal(emit);  // trailing partial block
      finished_ = true;
      break;
    }
    if (scan == Scan::kStalled) break;
  }
  return fronts_merged;
}

}  // namespace labmon::trace
