#include "labmon/trace/block.hpp"

#include <algorithm>
#include <bit>
#include <type_traits>

namespace labmon::trace {

namespace {

inline std::uint64_t FnvBytes(std::uint64_t h, const void* data,
                              std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t FnvU64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<unsigned char>(v >> (8 * i));
    h *= 0x100000001b3ull;
  }
  return h;
}

template <typename T>
std::uint64_t CanonicalU64(T v) noexcept {
  if constexpr (std::is_same_v<T, double>) {
    return std::bit_cast<std::uint64_t>(v);
  } else if constexpr (std::is_signed_v<T>) {
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
  } else {
    return static_cast<std::uint64_t>(v);
  }
}

}  // namespace

void TraceBlock::AssignFrom(const TraceStore& store) {
  Clear();
  const TraceStore::Columns& src = store.columns();
  TraceStore::ForEachColumn([&](auto member) { cols.*member = src.*member; });
  users.assign(store.users().begin(), store.users().end());
  iterations.assign(store.iterations().begin(), store.iterations().end());
}

StoreReader::StoreReader(const TraceStore& store, std::size_t block_samples)
    : store_(&store), block_samples_(std::max<std::size_t>(1, block_samples)) {
  scratch_.users.assign(store.users().begin(), store.users().end());
}

const TraceBlock* StoreReader::Next() {
  if (pos_ >= store_->size()) return nullptr;
  const std::size_t end = std::min(pos_ + block_samples_, store_->size());
  TraceStore::ForEachColumn([&](auto member) { (scratch_.cols.*member).clear(); });
  const TraceStore::Columns& src = store_->columns();
  TraceStore::ForEachColumn([&](auto member) {
    (scratch_.cols.*member)
        .assign((src.*member).begin() + static_cast<std::ptrdiff_t>(pos_),
                (src.*member).begin() + static_cast<std::ptrdiff_t>(end));
  });
  pos_ = end;
  return &scratch_;
}

std::uint64_t HashBlockSamples(std::uint64_t h, const TraceBlock& block) {
  using Columns = TraceStore::Columns;
  for (std::size_t i = 0; i < block.size(); ++i) {
    TraceStore::ForEachColumn([&](auto member) {
      // user_id is interning-scheme-dependent; the user *string* is hashed
      // below instead.
      if constexpr (std::is_same_v<decltype(member),
                                   std::vector<std::uint32_t> Columns::*>) {
        if (member == &Columns::user_id) return;
      }
      h = FnvU64(h, CanonicalU64((block.cols.*member)[i]));
    });
    if (block.cols.has_session[i] != 0) {
      const std::string_view user = block.UserOf(i);
      h = FnvU64(h, user.size());
      h = FnvBytes(h, user.data(), user.size());
    }
  }
  return h;
}

std::uint64_t HashSampleStream(TraceReader& reader) {
  std::uint64_t h = kSampleStreamHashSeed;
  while (const TraceBlock* block = reader.Next()) {
    h = HashBlockSamples(h, *block);
  }
  return h;
}

}  // namespace labmon::trace
