#include "labmon/trace/sink.hpp"

#include "labmon/ddc/w32_probe.hpp"
#include "labmon/util/log.hpp"

namespace labmon::trace {

ddc::SampleVerdict TraceStoreSink::OnSample(const ddc::CollectedSample& sample) {
  ++iteration_attempts_;
  if (!sample.outcome.ok()) return ddc::SampleVerdict::kAccepted;
  if (sample.structured != nullptr) {
    // Structured fast path: the probe delivered the sample in-process. On
    // cross-check attempts the text was rendered too — verify the codecs
    // still agree before trusting the fast path.
    if (!sample.outcome.stdout_text.empty()) {
      ++crosschecks_;
      const auto parsed =
          ddc::ParseW32ProbeOutput(sample.outcome.stdout_text, &parse_scratch_);
      if (!parsed.ok() || !(parse_scratch_ == *sample.structured)) {
        ++crosscheck_mismatches_;
        if (util::log::Enabled(util::log::Level::kWarn)) {
          util::log::Warn(
              "structured/text cross-check mismatch on " +
              sample.structured->host +
              (parsed.ok() ? "" : " (text parse: " + parsed.error() + ")"));
        }
      }
    }
    ++iteration_successes_;
    store_->Append(
        MakeRecord(static_cast<std::uint32_t>(sample.machine_index),
                   static_cast<std::uint32_t>(sample.iteration),
                   sample.attempt_time, *sample.structured));
    return ddc::SampleVerdict::kAccepted;
  }
  const auto parsed =
      ddc::ParseW32ProbeOutput(sample.outcome.stdout_text, &parse_scratch_);
  if (!parsed.ok()) {
    ++parse_failures_;
    if (util::log::Enabled(util::log::Level::kWarn)) {
      util::log::Warn("post-collect parse failure: " + parsed.error());
    }
    return ddc::SampleVerdict::kRejected;
  }
  ++iteration_successes_;
  store_->Append(MakeRecord(static_cast<std::uint32_t>(sample.machine_index),
                            static_cast<std::uint32_t>(sample.iteration),
                            sample.attempt_time, parse_scratch_));
  return ddc::SampleVerdict::kAccepted;
}

void TraceStoreSink::OnIterationEnd(std::uint64_t iteration,
                                    util::SimTime start_time,
                                    util::SimTime end_time) {
  IterationInfo info;
  info.iteration = iteration;
  info.start_t = start_time;
  info.end_t = end_time;
  info.attempts = iteration_attempts_;
  info.successes = iteration_successes_;
  store_->AppendIteration(info);
  iteration_attempts_ = 0;
  iteration_successes_ = 0;
}

}  // namespace labmon::trace
