#include "labmon/trace/intervals.hpp"

namespace labmon::trace {

std::vector<SampleInterval> DeriveIntervals(const TraceStore& trace,
                                            const IntervalOptions& options) {
  std::vector<SampleInterval> intervals;
  intervals.reserve(trace.size());
  ForEachInterval(trace, options, [&](const SampleInterval& interval) {
    intervals.push_back(interval);
  });
  return intervals;
}

}  // namespace labmon::trace
