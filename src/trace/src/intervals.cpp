#include "labmon/trace/intervals.hpp"

#include <algorithm>

namespace labmon::trace {

void ForEachInterval(const TraceStore& trace, const IntervalOptions& options,
                     const std::function<void(const SampleInterval&)>& fn) {
  for (std::size_t m = 0; m < trace.machine_count(); ++m) {
    const auto indices = trace.MachineSamples(m);
    for (std::size_t k = 1; k < indices.size(); ++k) {
      const SampleRecord& a = trace.samples()[indices[k - 1]];
      const SampleRecord& b = trace.samples()[indices[k]];
      if (a.boot_time != b.boot_time) continue;  // reboot between samples
      if (b.uptime_s <= a.uptime_s) continue;    // same-boot sanity
      const std::int64_t dt = b.t - a.t;
      if (dt <= 0 || dt > options.max_interval_s) continue;

      SampleInterval interval;
      interval.machine = static_cast<std::uint32_t>(m);
      interval.end_index = indices[k];
      interval.start_t = a.t;
      interval.end_t = b.t;
      interval.cpu_idle_pct = std::clamp(
          (b.cpu_idle_s - a.cpu_idle_s) / static_cast<double>(dt) * 100.0,
          0.0, 100.0);
      // NIC counters reset at boot and only grow within an epoch; guard
      // against decreasing totals anyway (counter wrap on real hardware).
      interval.sent_bps =
          b.net_sent_b >= a.net_sent_b
              ? static_cast<double>(b.net_sent_b - a.net_sent_b) /
                    static_cast<double>(dt)
              : 0.0;
      interval.recv_bps =
          b.net_recv_b >= a.net_recv_b
              ? static_cast<double>(b.net_recv_b - a.net_recv_b) /
                    static_cast<double>(dt)
              : 0.0;
      // Attribute the interval to "with login" when *either* endpoint shows
      // an occupied machine: a session covering most of the interval but
      // ending just before the closing sample still spent its traffic and
      // CPU inside this interval.
      const auto class_b = b.Classify(options.forgotten_threshold_s);
      if (class_b == LoginClass::kWithLogin) {
        interval.login_class = class_b;
      } else {
        const auto class_a = a.Classify(options.forgotten_threshold_s);
        interval.login_class = class_a == LoginClass::kWithLogin
                                   ? class_a
                                   : class_b;
      }
      fn(interval);
    }
  }
}

std::vector<SampleInterval> DeriveIntervals(const TraceStore& trace,
                                            const IntervalOptions& options) {
  std::vector<SampleInterval> intervals;
  intervals.reserve(trace.size());
  ForEachInterval(trace, options, [&](const SampleInterval& interval) {
    intervals.push_back(interval);
  });
  return intervals;
}

}  // namespace labmon::trace
