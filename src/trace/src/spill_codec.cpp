#include "labmon/trace/spill_codec.hpp"

#include <algorithm>
#include <span>
#include <vector>

#include "labmon/obs/registry.hpp"
#include "labmon/trace/binary_io.hpp"
#include "labmon/util/varint.hpp"

namespace labmon::trace {

namespace {

constexpr std::string_view kLmsg1Magic = "LMSG1";
constexpr std::string_view kLmsg2Magic = "LMSG2";

// Same sanity bounds as the LMTR1 parser: a corrupt count must fail fast,
// not drive a multi-gigabyte reserve.
constexpr std::uint64_t kMaxSamples = std::uint64_t{1} << 32;
constexpr std::uint64_t kMaxUsers = std::uint64_t{1} << 28;
constexpr std::uint64_t kMaxIterations = std::uint64_t{1} << 28;
constexpr std::uint64_t kMaxUserLen = 4096;
// Fallback machine-id bound when the caller has no segment header count.
constexpr std::uint64_t kMaxMachines = std::uint64_t{1} << 26;

constexpr std::size_t kSpillColumnCount = [] {
  std::size_t n = 0;
  TraceStore::ForEachColumn([&n](auto) { ++n; });
  return n;
}();
// The LMSG2 transform tables below (EncodeBlock/DecodeBlock) are written
// out per column. If this fires, a column was added to (or removed from)
// TraceStore::Columns: give it a transform in both directions, a name in
// kColumnNames, and bump the LMSG2 version if old readers would misparse.
static_assert(kSpillColumnCount == 18,
              "TraceStore column set changed: update the LMSG2 spill codec");

constexpr const char* kColumnNames[kSpillColumnCount] = {
    "machine",          "iteration",
    "t",                "boot_time",
    "uptime_s",         "cpu_idle_s",
    "ram_mb",           "mem_load_pct",
    "swap_load_pct",    "disk_total_b",
    "disk_free_b",      "smart_power_on_hours",
    "smart_power_cycles", "net_sent_b",
    "net_recv_b",       "has_session",
    "session_logon",    "user_id"};

/// Idle seconds -> centiseconds, the same transform LMTR1 applies (the
/// probe emits two decimals, so the value is exact and the decode-side
/// `/100.0` is bit-identical across codecs). Unlike LMTR1 the cast is
/// guarded: non-finite or out-of-range doubles (possible only from hostile
/// inputs, never from the probe) map to 0 instead of undefined behaviour.
std::int64_t IdleCentiseconds(double idle_s) noexcept {
  const double cs = idle_s * 100.0 + 0.5;
  constexpr double kBound = 9.0e18;
  if (!(cs > -kBound && cs < kBound)) return 0;
  return static_cast<std::int64_t>(cs);
}

std::size_t VarintLen(std::uint64_t v) noexcept {
  std::size_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

// ---------------------------------------------------------------------------
// Token-stream RLE layer. A column is first transformed into one u64 token
// per row, then coded as groups:
//   varint header h:  h & 1 == 1  ->  run of (h >> 1) copies of one
//                                     following varint token
//                     h & 1 == 0  ->  (h >> 1) literal varint tokens follow
// Groups are never empty; the decoder checks exact token counts and exact
// section byte counts, so a flipped length or header fails loudly.
// ---------------------------------------------------------------------------

constexpr std::size_t kMinRun = 3;

void RleEncode(const std::vector<std::uint64_t>& tokens, std::string& out) {
  const std::size_t n = tokens.size();
  const std::size_t hint = n + 16;  // ~1 byte/token once deltas collapse
  std::size_t lit_start = 0;
  const auto flush_literals = [&](std::size_t end) {
    if (end == lit_start) return;
    util::PutVarint(out, std::uint64_t{end - lit_start} << 1, hint);
    for (std::size_t k = lit_start; k < end; ++k) {
      util::PutVarint(out, tokens[k], hint);
    }
  };
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && tokens[j] == tokens[i]) ++j;
    if (j - i >= kMinRun) {
      flush_literals(i);
      util::PutVarint(out, (std::uint64_t{j - i} << 1) | 1, hint);
      util::PutVarint(out, tokens[i], hint);
      lit_start = j;
    }
    i = j;
  }
  flush_literals(n);
}

bool RleDecode(util::VarintReader& r, std::size_t expected,
               std::vector<std::uint64_t>& out, std::string& err) {
  out.clear();
  out.reserve(expected);
  while (out.size() < expected) {
    const auto header = r.Read();
    if (!header) {
      err = "truncated token group header";
      return false;
    }
    const std::uint64_t count = *header >> 1;
    if (count == 0 || count > expected - out.size()) {
      err = "token group overruns column";
      return false;
    }
    if (*header & 1) {
      const auto value = r.Read();
      if (!value) {
        err = "truncated run value";
        return false;
      }
      out.insert(out.end(), static_cast<std::size_t>(count), *value);
    } else {
      for (std::uint64_t k = 0; k < count; ++k) {
        const auto value = r.Read();
        if (!value) {
          err = "truncated literal token";
          return false;
        }
        out.push_back(*value);
      }
    }
  }
  if (!r.AtEnd()) {
    err = "trailing bytes in column section";
    return false;
  }
  return true;
}

// Per-thread scratch so the stateless codec singletons stay shareable
// across shard workers without locking or steady-state allocation.
struct CodecScratch {
  std::vector<std::uint64_t> tokens;
  std::vector<std::uint64_t> prev;  ///< per-machine previous, u64 wrap domain
  std::string section;
};

CodecScratch& Scratch() {
  thread_local CodecScratch scratch;
  return scratch;
}

/// Bulk per-column byte accounting (encode side only; one pass per block).
void CountColumnBytes(const std::uint64_t (&raw)[kSpillColumnCount],
                      const std::uint64_t (&encoded)[kSpillColumnCount]) {
  obs::Registry& registry = obs::DefaultRegistry();
  for (std::size_t i = 0; i < kSpillColumnCount; ++i) {
    registry
        .GetCounter("labmon_spill_column_bytes_total",
                    "Per-column bytes through the LMSG2 spill encoder",
                    {{"column", kColumnNames[i]}, {"kind", "raw"}})
        .Increment(raw[i]);
    registry
        .GetCounter("labmon_spill_column_bytes_total",
                    "Per-column bytes through the LMSG2 spill encoder",
                    {{"column", kColumnNames[i]}, {"kind", "encoded"}})
        .Increment(encoded[i]);
    if (encoded[i] > 0) {
      registry
          .GetGauge("labmon_spill_column_ratio",
                    "Cumulative raw/encoded ratio per LMSG2 column",
                    {{"column", kColumnNames[i]}})
          .Set(static_cast<double>(raw[i]) / static_cast<double>(encoded[i]));
    }
  }
}

// ---------------------------------------------------------------------------
// LMSG1: the original row-major LMTR1 payload, kept for compatibility.
// ---------------------------------------------------------------------------

class Lmsg1Codec final : public SpillCodec {
 public:
  [[nodiscard]] SpillCodecId id() const noexcept override {
    return SpillCodecId::kLmsg1;
  }
  [[nodiscard]] std::string_view magic() const noexcept override {
    return kLmsg1Magic;
  }

  void EncodeBlock(const TraceStore& block_store,
                   std::string& out) const override {
    out = SerializeTrace(block_store);
  }

  [[nodiscard]] util::Result<bool> DecodeBlock(
      std::string_view payload, std::size_t /*machine_count*/,
      TraceBlock& out) const override {
    auto store = DeserializeTrace(payload);
    if (!store.ok()) return util::Result<bool>::Err(store.error());
    out.AssignFrom(store.value());
    return true;
  }
};

// ---------------------------------------------------------------------------
// LMSG2: per-column transforms + RLE'd varint token streams.
//
// Payload layout:
//   varint sample_count, varint iteration_count, varint user_count
//   user table: { varint len, len bytes } x user_count
//   per column, in TraceStore::ForEachColumn order:
//     varint section_len, section bytes (RLE token groups, see above)
//   iteration rows: { zigzag d_start, zigzag d_end,
//                     varint attempts, varint successes } x iteration_count
//
// Column transforms (all delta arithmetic is u64 wraparound, so every
// 64-bit pattern round-trips without signed overflow):
//   machine, iteration, t           stream delta vs previous row (zigzag)
//   boot_time, uptime_s, ram_mb, mem_load_pct, swap_load_pct,
//   disk_total_b, disk_free_b, smart_power_on_hours, smart_power_cycles,
//   net_sent_b, net_recv_b, session_logon
//                                   delta vs the same machine's previous
//                                   row (zigzag); the machine column is
//                                   decoded first to rebuild the state
//   cpu_idle_s                      centiseconds (LMTR1's transform), then
//                                   per-machine delta
//   has_session                     raw 0/1 tokens
//   user_id                         raw, kNoUser -> 0, else id + 1
// ---------------------------------------------------------------------------

class Lmsg2Codec final : public SpillCodec {
 public:
  [[nodiscard]] SpillCodecId id() const noexcept override {
    return SpillCodecId::kLmsg2;
  }
  [[nodiscard]] std::string_view magic() const noexcept override {
    return kLmsg2Magic;
  }

  void EncodeBlock(const TraceStore& block_store,
                   std::string& out) const override;
  [[nodiscard]] util::Result<bool> DecodeBlock(
      std::string_view payload, std::size_t machine_count,
      TraceBlock& out) const override;
};

void Lmsg2Codec::EncodeBlock(const TraceStore& store, std::string& out) const {
  const TraceStore::Columns& c = store.columns();
  const std::size_t n = store.size();
  out.clear();
  out.reserve(n + 256);

  util::PutVarint(out, n);
  util::PutVarint(out, store.iterations().size());
  const std::span<const std::string> users = store.users();
  util::PutVarint(out, users.size());
  for (const std::string& user : users) {
    util::PutVarint(out, user.size());
    out.append(user);
  }

  CodecScratch& s = Scratch();
  std::uint32_t max_machine = 0;
  for (const std::uint32_t m : c.machine) max_machine = std::max(max_machine, m);

  std::uint64_t column_raw[kSpillColumnCount] = {};
  std::uint64_t column_encoded[kSpillColumnCount] = {};
  std::size_t col = 0;

  const auto emit = [&](std::size_t elem_size, auto&& fill) {
    s.tokens.clear();
    s.tokens.reserve(n);
    fill();
    s.section.clear();
    RleEncode(s.tokens, s.section);
    util::PutVarint(out, s.section.size(), s.section.size() + 16);
    out.append(s.section);
    column_raw[col] = n * elem_size;
    column_encoded[col] = s.section.size() + VarintLen(s.section.size());
    ++col;
  };

  const auto stream_delta = [&](const auto& v) {
    emit(sizeof(v[0]), [&] {
      std::uint64_t prev = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t cur = static_cast<std::uint64_t>(v[i]);
        s.tokens.push_back(
            util::ZigzagEncode(static_cast<std::int64_t>(cur - prev)));
        prev = cur;
      }
    });
  };
  const auto machine_delta_of = [&](std::size_t elem_size, auto&& value_of) {
    emit(elem_size, [&] {
      s.prev.assign(static_cast<std::size_t>(max_machine) + 1, 0);
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t& prev = s.prev[c.machine[i]];
        const std::uint64_t cur = value_of(i);
        s.tokens.push_back(
            util::ZigzagEncode(static_cast<std::int64_t>(cur - prev)));
        prev = cur;
      }
    });
  };
  const auto machine_delta = [&](const auto& v) {
    machine_delta_of(sizeof(v[0]), [&](std::size_t i) {
      return static_cast<std::uint64_t>(v[i]);
    });
  };

  // Order must match TraceStore::ForEachColumn (see the static_assert).
  stream_delta(c.machine);
  stream_delta(c.iteration);
  stream_delta(c.t);
  machine_delta(c.boot_time);
  machine_delta(c.uptime_s);
  machine_delta_of(sizeof(double), [&](std::size_t i) {
    return static_cast<std::uint64_t>(IdleCentiseconds(c.cpu_idle_s[i]));
  });
  machine_delta(c.ram_mb);
  machine_delta(c.mem_load_pct);
  machine_delta(c.swap_load_pct);
  machine_delta(c.disk_total_b);
  machine_delta(c.disk_free_b);
  machine_delta(c.smart_power_on_hours);
  machine_delta(c.smart_power_cycles);
  machine_delta(c.net_sent_b);
  machine_delta(c.net_recv_b);
  emit(sizeof(c.has_session[0]), [&] {
    for (std::size_t i = 0; i < n; ++i) {
      s.tokens.push_back(c.has_session[i]);
    }
  });
  machine_delta(c.session_logon);
  emit(sizeof(c.user_id[0]), [&] {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t id = c.user_id[i];
      s.tokens.push_back(id == TraceStore::kNoUser
                             ? 0
                             : static_cast<std::uint64_t>(id) + 1);
    }
  });

  // Iteration rows, delta-coded against the previous row like LMTR1.
  std::int64_t prev_start = 0;
  std::int64_t prev_end = 0;
  for (const IterationInfo& it : store.iterations()) {
    util::PutSignedVarint(out, it.start_t - prev_start);
    util::PutSignedVarint(out, it.end_t - prev_end);
    util::PutVarint(out, it.attempts);
    util::PutVarint(out, it.successes);
    prev_start = it.start_t;
    prev_end = it.end_t;
  }

  CountColumnBytes(column_raw, column_encoded);
}

util::Result<bool> Lmsg2Codec::DecodeBlock(std::string_view payload,
                                           std::size_t machine_count,
                                           TraceBlock& out) const {
  using R = util::Result<bool>;
  out.Clear();
  util::VarintReader r(payload);

  const auto sample_count = r.Read();
  const auto iteration_count = r.Read();
  const auto user_count = r.Read();
  if (!sample_count || !iteration_count || !user_count) {
    return R::Err("truncated LMSG2 block header");
  }
  if (*sample_count > kMaxSamples || *user_count > kMaxUsers ||
      *iteration_count > kMaxIterations) {
    return R::Err("implausible LMSG2 header counts");
  }
  const std::size_t n = static_cast<std::size_t>(*sample_count);

  out.users.reserve(static_cast<std::size_t>(*user_count));
  for (std::uint64_t i = 0; i < *user_count; ++i) {
    const auto len = r.Read();
    if (!len || *len > kMaxUserLen) return R::Err("garbled LMSG2 user table");
    auto name = r.ReadBytes(static_cast<std::size_t>(*len));
    if (!name) return R::Err("truncated LMSG2 user table");
    out.users.push_back(std::move(*name));
  }

  CodecScratch& s = Scratch();
  std::size_t col = 0;
  std::string err;

  // Reads the next column's section into s.tokens (exactly n of them).
  const auto read_tokens = [&]() -> bool {
    const auto len = r.Read();
    if (!len) {
      err = "truncated section length";
      return false;
    }
    if (*len > r.remaining()) {
      err = "section overruns payload";
      return false;
    }
    util::VarintReader section(
        payload.substr(r.position(), static_cast<std::size_t>(*len)));
    if (!RleDecode(section, n, s.tokens, err)) return false;
    (void)r.Skip(static_cast<std::size_t>(*len));
    return true;
  };
  const auto column_error = [&]() {
    return R::Err(std::string("LMSG2 column '") + kColumnNames[col] + "': " +
                  err);
  };

  TraceStore::Columns& cols = out.cols;
  const std::uint64_t machine_bound =
      machine_count > 0 ? machine_count : kMaxMachines;

  // machine — decoded first: every per-machine delta column keys on it.
  if (!read_tokens()) return column_error();
  cols.machine.reserve(n);
  {
    std::uint64_t prev = 0;
    for (const std::uint64_t tok : s.tokens) {
      prev += static_cast<std::uint64_t>(util::ZigzagDecode(tok));
      if (prev >= machine_bound) {
        err = "machine id out of range";
        return column_error();
      }
      cols.machine.push_back(static_cast<std::uint32_t>(prev));
    }
  }
  ++col;
  std::uint32_t max_machine = 0;
  for (const std::uint32_t m : cols.machine) {
    max_machine = std::max(max_machine, m);
  }

  // Stream-delta column with an upper value bound (kNoLimit = any u64).
  constexpr std::uint64_t kNoLimit = ~std::uint64_t{0};
  const auto stream_delta_into = [&](auto& dst, std::uint64_t max_value) {
    if (!read_tokens()) return false;
    dst.reserve(n);
    std::uint64_t prev = 0;
    for (const std::uint64_t tok : s.tokens) {
      prev += static_cast<std::uint64_t>(util::ZigzagDecode(tok));
      if (max_value != kNoLimit && prev > max_value) {
        err = "value out of column range";
        return false;
      }
      dst.push_back(
          static_cast<typename std::decay_t<decltype(dst)>::value_type>(prev));
    }
    ++col;
    return true;
  };
  // Per-machine-delta column; `store` converts the recovered u64 to the
  // column's value type (with range checking where the type is narrow).
  const auto machine_delta_into = [&](auto&& store_value) {
    if (!read_tokens()) return false;
    s.prev.assign(static_cast<std::size_t>(max_machine) + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t& prev = s.prev[cols.machine[i]];
      prev += static_cast<std::uint64_t>(util::ZigzagDecode(s.tokens[i]));
      if (!store_value(prev)) {
        err = "value out of column range";
        return false;
      }
    }
    ++col;
    return true;
  };
  const auto machine_delta_unsigned = [&](auto& dst, std::uint64_t max_value) {
    dst.reserve(n);
    return machine_delta_into([&](std::uint64_t v) {
      if (max_value != kNoLimit && v > max_value) return false;
      dst.push_back(
          static_cast<typename std::decay_t<decltype(dst)>::value_type>(v));
      return true;
    });
  };
  const auto machine_delta_signed = [&](std::vector<std::int64_t>& dst) {
    dst.reserve(n);
    return machine_delta_into([&](std::uint64_t v) {
      dst.push_back(static_cast<std::int64_t>(v));
      return true;
    });
  };

  if (!stream_delta_into(cols.iteration, 0xffffffffull)) {
    return column_error();
  }
  {  // t: signed, any 64-bit value
    if (!read_tokens()) return column_error();
    cols.t.reserve(n);
    std::uint64_t prev = 0;
    for (const std::uint64_t tok : s.tokens) {
      prev += static_cast<std::uint64_t>(util::ZigzagDecode(tok));
      cols.t.push_back(static_cast<std::int64_t>(prev));
    }
    ++col;
  }
  if (!machine_delta_signed(cols.boot_time)) return column_error();
  if (!machine_delta_signed(cols.uptime_s)) return column_error();
  {  // cpu_idle_s: centiseconds back to seconds (bit-identical to LMTR1)
    cols.cpu_idle_s.reserve(n);
    if (!machine_delta_into([&](std::uint64_t v) {
          cols.cpu_idle_s.push_back(
              static_cast<double>(static_cast<std::int64_t>(v)) / 100.0);
          return true;
        })) {
      return column_error();
    }
  }
  if (!machine_delta_unsigned(cols.ram_mb, 0xffffull)) return column_error();
  if (!machine_delta_unsigned(cols.mem_load_pct, 0xffull)) {
    return column_error();
  }
  if (!machine_delta_unsigned(cols.swap_load_pct, 0xffull)) {
    return column_error();
  }
  if (!machine_delta_unsigned(cols.disk_total_b, kNoLimit)) {
    return column_error();
  }
  if (!machine_delta_unsigned(cols.disk_free_b, kNoLimit)) {
    return column_error();
  }
  if (!machine_delta_unsigned(cols.smart_power_on_hours, kNoLimit)) {
    return column_error();
  }
  if (!machine_delta_unsigned(cols.smart_power_cycles, kNoLimit)) {
    return column_error();
  }
  if (!machine_delta_unsigned(cols.net_sent_b, kNoLimit)) {
    return column_error();
  }
  if (!machine_delta_unsigned(cols.net_recv_b, kNoLimit)) {
    return column_error();
  }
  {  // has_session: raw 0/1 tokens
    if (!read_tokens()) return column_error();
    cols.has_session.reserve(n);
    for (const std::uint64_t tok : s.tokens) {
      if (tok > 1) {
        err = "session flag out of range";
        return column_error();
      }
      cols.has_session.push_back(static_cast<std::uint8_t>(tok));
    }
    ++col;
  }
  if (!machine_delta_signed(cols.session_logon)) return column_error();
  {  // user_id: 0 = no session, else table index + 1
    if (!read_tokens()) return column_error();
    cols.user_id.reserve(n);
    for (const std::uint64_t tok : s.tokens) {
      if (tok == 0) {
        cols.user_id.push_back(TraceStore::kNoUser);
      } else {
        if (tok > out.users.size()) {
          err = "dangling user reference";
          return column_error();
        }
        cols.user_id.push_back(static_cast<std::uint32_t>(tok - 1));
      }
    }
    ++col;
  }

  // Iteration rows (numbered from zero; the segment reader renumbers).
  std::int64_t prev_start = 0;
  std::int64_t prev_end = 0;
  out.iterations.reserve(static_cast<std::size_t>(*iteration_count));
  for (std::uint64_t i = 0; i < *iteration_count; ++i) {
    const auto ds = r.ReadSigned();
    const auto de = r.ReadSigned();
    const auto attempts = r.Read();
    const auto successes = r.Read();
    if (!ds || !de || !attempts || !successes) {
      return R::Err("truncated LMSG2 iteration metadata");
    }
    if (*attempts > 0xffffffffull || *successes > 0xffffffffull) {
      return R::Err("implausible LMSG2 iteration counts");
    }
    prev_start += *ds;
    prev_end += *de;
    IterationInfo info;
    info.iteration = i;
    info.start_t = prev_start;
    info.end_t = prev_end;
    info.attempts = static_cast<std::uint32_t>(*attempts);
    info.successes = static_cast<std::uint32_t>(*successes);
    out.iterations.push_back(info);
  }

  if (!r.AtEnd()) return R::Err("trailing bytes after LMSG2 block");
  return true;
}

}  // namespace

const char* SpillCodecName(SpillCodecId id) noexcept {
  switch (id) {
    case SpillCodecId::kLmsg1:
      return "lmsg1";
    case SpillCodecId::kLmsg2:
      return "lmsg2";
  }
  return "unknown";
}

std::optional<SpillCodecId> ParseSpillCodecName(std::string_view name) noexcept {
  if (name == "lmsg1") return SpillCodecId::kLmsg1;
  if (name == "lmsg2") return SpillCodecId::kLmsg2;
  return std::nullopt;
}

std::uint64_t RawColumnBytes(const TraceStore& store) noexcept {
  std::uint64_t bytes = 0;
  TraceStore::ForEachColumn([&](auto member) {
    const auto& column = store.columns().*member;
    bytes += column.size() * sizeof(column[0]);
  });
  for (const std::string& user : store.users()) bytes += user.size();
  bytes += store.iterations().size() * sizeof(IterationInfo);
  return bytes;
}

std::uint64_t RawColumnBytes(const TraceBlock& block) noexcept {
  std::uint64_t bytes = 0;
  TraceStore::ForEachColumn([&](auto member) {
    const auto& column = block.cols.*member;
    bytes += column.size() * sizeof(column[0]);
  });
  for (const std::string& user : block.users) bytes += user.size();
  bytes += block.iterations.size() * sizeof(IterationInfo);
  return bytes;
}

const SpillCodec& GetSpillCodec(SpillCodecId id) noexcept {
  static const Lmsg1Codec lmsg1;
  static const Lmsg2Codec lmsg2;
  return id == SpillCodecId::kLmsg1 ? static_cast<const SpillCodec&>(lmsg1)
                                    : static_cast<const SpillCodec&>(lmsg2);
}

const SpillCodec* FindSpillCodecByMagic(std::string_view magic) noexcept {
  if (magic == kLmsg1Magic) return &GetSpillCodec(SpillCodecId::kLmsg1);
  if (magic == kLmsg2Magic) return &GetSpillCodec(SpillCodecId::kLmsg2);
  return nullptr;
}

}  // namespace labmon::trace
