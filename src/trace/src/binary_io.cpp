#include "labmon/trace/binary_io.hpp"

#include <span>
#include <vector>

#include "labmon/obs/registry.hpp"
#include "labmon/obs/span.hpp"
#include "labmon/util/csv.hpp"
#include "labmon/util/varint.hpp"

namespace labmon::trace {

namespace {

constexpr char kMagic[] = "LMTR1";
constexpr std::size_t kMagicLen = 5;

/// Per-machine previous-sample state used for delta coding.
struct Previous {
  std::int64_t t = 0;
  std::int64_t iteration = 0;
  std::int64_t boot_time = 0;
  std::int64_t uptime_s = 0;
  std::int64_t idle_cs = 0;  ///< idle seconds in centiseconds (exact: the
                             ///< probe emits 2 decimals)
  std::int64_t ram_mb = 0;
  std::int64_t mem = 0;
  std::int64_t swap = 0;
  std::int64_t disk_total = 0;
  std::int64_t disk_free = 0;
  std::int64_t poh = 0;
  std::int64_t cycles = 0;
  std::int64_t sent = 0;
  std::int64_t recv = 0;
  std::int64_t logon = 0;
};

std::int64_t IdleCentiseconds(double idle_s) {
  return static_cast<std::int64_t>(idle_s * 100.0 + 0.5);
}

/// Bulk-updates the default registry's trace I/O counters (one call per
/// serialise/parse, never per record, so the codec hot loop stays clean).
void CountTraceIo(const char* direction, std::uint64_t bytes,
                  std::uint64_t records) {
  obs::Registry& registry = obs::DefaultRegistry();
  registry
      .GetCounter("labmon_trace_io_bytes_total",
                  "Binary trace bytes moved through the LMTR1 codec",
                  {{"direction", direction}})
      .Increment(bytes);
  registry
      .GetCounter("labmon_trace_io_records_total",
                  "Sample records moved through the LMTR1 codec",
                  {{"direction", direction}})
      .Increment(records);
}

}  // namespace

std::string SerializeTrace(const TraceStore& store) {
  obs::Span span("trace.serialize");
  std::string out;
  out.reserve(store.size() * 24 + 64);
  out.append(kMagic, kMagicLen);

  // User string table — the store's interned table, which is already in
  // first-appearance order.
  const std::span<const std::string> users = store.users();

  util::PutVarint(out, store.machine_count());
  util::PutVarint(out, store.size());
  util::PutVarint(out, store.iterations().size());
  util::PutVarint(out, users.size());
  for (const std::string& user : users) {
    util::PutVarint(out, user.size());
    out.append(user);
  }

  std::vector<Previous> prev(store.machine_count());
  for (std::size_t i = 0; i < store.size(); ++i) {
    const SampleRecord s = store.Sample(i);
    if (s.machine >= prev.size()) prev.resize(s.machine + 1);
    Previous& p = prev[s.machine];
    util::PutVarint(out, s.machine);
    util::PutSignedVarint(out, static_cast<std::int64_t>(s.iteration) -
                                   p.iteration);
    util::PutSignedVarint(out, s.t - p.t);
    util::PutSignedVarint(out, s.boot_time - p.boot_time);
    util::PutSignedVarint(out, s.uptime_s - p.uptime_s);
    const std::int64_t idle_cs = IdleCentiseconds(s.cpu_idle_s);
    util::PutSignedVarint(out, idle_cs - p.idle_cs);
    util::PutSignedVarint(out, s.ram_mb - p.ram_mb);
    util::PutSignedVarint(out, s.mem_load_pct - p.mem);
    util::PutSignedVarint(out, s.swap_load_pct - p.swap);
    util::PutSignedVarint(out,
                          static_cast<std::int64_t>(s.disk_total_b) -
                              p.disk_total);
    util::PutSignedVarint(out,
                          static_cast<std::int64_t>(s.disk_free_b) -
                              p.disk_free);
    util::PutSignedVarint(
        out, static_cast<std::int64_t>(s.smart_power_on_hours) - p.poh);
    util::PutSignedVarint(
        out, static_cast<std::int64_t>(s.smart_power_cycles) - p.cycles);
    util::PutSignedVarint(out,
                          static_cast<std::int64_t>(s.net_sent_b) - p.sent);
    util::PutSignedVarint(out,
                          static_cast<std::int64_t>(s.net_recv_b) - p.recv);
    if (s.has_session) {
      util::PutVarint(out, 1 + store.columns().user_id[i]);
      util::PutSignedVarint(out, s.session_logon - p.logon);
      p.logon = s.session_logon;
    } else {
      util::PutVarint(out, 0);
    }
    p.iteration = s.iteration;
    p.t = s.t;
    p.boot_time = s.boot_time;
    p.uptime_s = s.uptime_s;
    p.idle_cs = idle_cs;
    p.ram_mb = s.ram_mb;
    p.mem = s.mem_load_pct;
    p.swap = s.swap_load_pct;
    p.disk_total = static_cast<std::int64_t>(s.disk_total_b);
    p.disk_free = static_cast<std::int64_t>(s.disk_free_b);
    p.poh = static_cast<std::int64_t>(s.smart_power_on_hours);
    p.cycles = static_cast<std::int64_t>(s.smart_power_cycles);
    p.sent = static_cast<std::int64_t>(s.net_sent_b);
    p.recv = static_cast<std::int64_t>(s.net_recv_b);
  }

  // Iteration metadata (delta against the previous iteration row).
  std::int64_t prev_start = 0;
  std::int64_t prev_end = 0;
  for (const auto& it : store.iterations()) {
    util::PutSignedVarint(out, it.start_t - prev_start);
    util::PutSignedVarint(out, it.end_t - prev_end);
    util::PutVarint(out, it.attempts);
    util::PutVarint(out, it.successes);
    prev_start = it.start_t;
    prev_end = it.end_t;
  }
  CountTraceIo("write", out.size(), store.size());
  return out;
}

util::Result<TraceStore> DeserializeTrace(std::string_view bytes) {
  obs::Span span("trace.deserialize");
  using R = util::Result<TraceStore>;
  if (bytes.size() < kMagicLen ||
      bytes.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return R::Err("not a LMTR1 trace (bad magic)");
  }
  util::VarintReader reader(bytes);
  (void)reader.ReadBytes(kMagicLen);

  const auto machine_count = reader.Read();
  const auto sample_count = reader.Read();
  const auto iteration_count = reader.Read();
  const auto user_count = reader.Read();
  if (!machine_count || !sample_count || !iteration_count || !user_count) {
    return R::Err("truncated header");
  }
  if (*sample_count > (std::uint64_t{1} << 32) ||
      *user_count > (std::uint64_t{1} << 28)) {
    return R::Err("implausible header counts");
  }

  std::vector<std::string> users;
  users.reserve(*user_count);
  for (std::uint64_t i = 0; i < *user_count; ++i) {
    const auto len = reader.Read();
    if (!len || *len > 4096) return R::Err("garbled user table");
    auto name = reader.ReadBytes(*len);
    if (!name) return R::Err("truncated user table");
    users.push_back(std::move(*name));
  }

  TraceStore store(*machine_count);
  store.Reserve(*sample_count);
  std::vector<Previous> prev(*machine_count);
  for (std::uint64_t n = 0; n < *sample_count; ++n) {
    const auto machine = reader.Read();
    if (!machine) return R::Err("truncated sample stream");
    if (*machine >= prev.size()) prev.resize(*machine + 1);
    Previous& p = prev[*machine];

    SampleRecord s;
    s.machine = static_cast<std::uint32_t>(*machine);
    const auto read = [&](std::int64_t& base) -> bool {
      const auto delta = reader.ReadSigned();
      if (!delta) return false;
      base += *delta;
      return true;
    };
    if (!read(p.iteration) || !read(p.t) || !read(p.boot_time) ||
        !read(p.uptime_s) || !read(p.idle_cs) || !read(p.ram_mb) ||
        !read(p.mem) ||
        !read(p.swap) || !read(p.disk_total) || !read(p.disk_free) ||
        !read(p.poh) || !read(p.cycles) || !read(p.sent) || !read(p.recv)) {
      return R::Err("truncated sample fields");
    }
    s.iteration = static_cast<std::uint32_t>(p.iteration);
    s.t = p.t;
    s.boot_time = p.boot_time;
    s.uptime_s = p.uptime_s;
    s.cpu_idle_s = static_cast<double>(p.idle_cs) / 100.0;
    s.ram_mb = static_cast<std::uint16_t>(p.ram_mb);
    s.mem_load_pct = static_cast<std::uint8_t>(p.mem);
    s.swap_load_pct = static_cast<std::uint8_t>(p.swap);
    s.disk_total_b = static_cast<std::uint64_t>(p.disk_total);
    s.disk_free_b = static_cast<std::uint64_t>(p.disk_free);
    s.smart_power_on_hours = static_cast<std::uint64_t>(p.poh);
    s.smart_power_cycles = static_cast<std::uint64_t>(p.cycles);
    s.net_sent_b = static_cast<std::uint64_t>(p.sent);
    s.net_recv_b = static_cast<std::uint64_t>(p.recv);

    const auto user_ref = reader.Read();
    if (!user_ref) return R::Err("truncated session field");
    if (*user_ref > 0) {
      if (*user_ref > users.size()) return R::Err("dangling user reference");
      s.has_session = true;
      s.user = users[*user_ref - 1];
      const auto logon_delta = reader.ReadSigned();
      if (!logon_delta) return R::Err("truncated logon field");
      p.logon += *logon_delta;
      s.session_logon = p.logon;
    }
    store.Append(std::move(s));
  }

  std::int64_t prev_start = 0;
  std::int64_t prev_end = 0;
  for (std::uint64_t i = 0; i < *iteration_count; ++i) {
    const auto ds = reader.ReadSigned();
    const auto de = reader.ReadSigned();
    const auto attempts = reader.Read();
    const auto successes = reader.Read();
    if (!ds || !de || !attempts || !successes) {
      return R::Err("truncated iteration metadata");
    }
    prev_start += *ds;
    prev_end += *de;
    IterationInfo info;
    info.iteration = i;
    info.start_t = prev_start;
    info.end_t = prev_end;
    info.attempts = static_cast<std::uint32_t>(*attempts);
    info.successes = static_cast<std::uint32_t>(*successes);
    store.AppendIteration(info);
  }
  CountTraceIo("read", bytes.size(), store.size());
  return store;
}

util::Result<bool> WriteTraceFile(const std::string& path,
                                  const TraceStore& store) {
  return util::WriteTextFile(path, SerializeTrace(store));
}

util::Result<TraceStore> ReadTraceFile(const std::string& path) {
  auto bytes = util::ReadTextFile(path);
  if (!bytes.ok()) return util::Result<TraceStore>::Err(bytes.error());
  return DeserializeTrace(bytes.value());
}

}  // namespace labmon::trace
