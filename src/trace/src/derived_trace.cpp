#include "labmon/trace/derived_trace.hpp"

#include <memory>
#include <utility>

#include "labmon/obs/span.hpp"
#include "labmon/util/parallel.hpp"

namespace labmon::trace {

namespace {

/// Per-machine session/span bucket; filled during the sequential scan,
/// concatenated in machine order afterwards so the flat vectors match the
/// serial ReconstructSessions/ReconstructInteractiveSpans output.
/// Intervals skip the bucket: the scan counts them exactly, so every
/// machine writes straight into its final slice of the flat buffer.
struct MachineDerivation {
  std::vector<MachineSession> sessions;
  std::vector<InteractiveSpan> spans;
};

template <typename T>
void Flatten(std::vector<MachineDerivation>& buckets,
             std::vector<T> MachineDerivation::* member,
             std::vector<T>& flat, std::vector<std::size_t>& offsets) {
  offsets.assign(buckets.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t m = 0; m < buckets.size(); ++m) {
    offsets[m] = total;
    total += (buckets[m].*member).size();
  }
  offsets[buckets.size()] = total;
  flat.clear();
  flat.reserve(total);
  for (auto& bucket : buckets) {
    auto& part = bucket.*member;
    flat.insert(flat.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
}

/// One sequential pass over the rows (append order) that does all the
/// cheap derivation work at once: bakes each sample's login class at the
/// derivation threshold, counts the valid intervals per machine (the
/// integer-only prefix of the EmitInterval conditions, producing the
/// machine-major fenceposts), reconstructs machine sessions, and
/// reconstructs interactive spans. Reading every column linearly here is
/// far cheaper than three per-machine gathers through the index; the
/// expensive interval arithmetic stays in the per-machine fill pass,
/// which the fenceposts let us run serially or in parallel over disjoint
/// output slices.
void ScanTrace(const TraceStore& trace, const IntervalOptions& options,
               std::vector<std::size_t>& interval_offsets,
               std::vector<MachineDerivation>& buckets,
               std::vector<std::uint8_t>& sample_classes) {
  constexpr std::uint32_t kNone = 0xffffffffu;
  const TraceStore::Columns& c = trace.columns();
  const std::size_t machines = buckets.size();
  const std::int64_t threshold = options.forgotten_threshold_s;

  sample_classes.resize(trace.size());
  std::vector<std::size_t> counts(machines, 0);
  std::vector<std::uint32_t> prev(machines, kNone);
  std::vector<std::uint8_t> session_open(machines, 0);
  std::vector<std::uint8_t> span_open(machines, 0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::uint32_t m = c.machine[i];
    MachineDerivation& bucket = buckets[m];

    // Classification needs only has_session/t/session_logon — columns this
    // scan streams anyway, so baking the byte here costs one store.
    sample_classes[i] =
        static_cast<std::uint8_t>(trace.Classify(i, threshold));

    const std::uint32_t ia = prev[m];
    prev[m] = static_cast<std::uint32_t>(i);
    if (ia != kNone && c.boot_time[ia] == c.boot_time[i] &&
        c.uptime_s[i] > c.uptime_s[ia]) {
      const std::int64_t dt = c.t[i] - c.t[ia];
      if (dt > 0 && dt <= options.max_interval_s) ++counts[m];
    }

    // Machine sessions: new boot epoch when the boot time changed or the
    // uptime went backwards (same rule as AppendMachineSessions).
    if (!session_open[m] ||
        c.boot_time[i] != bucket.sessions.back().boot_time ||
        c.uptime_s[i] < bucket.sessions.back().last_uptime_s) {
      MachineSession session;
      session.machine = m;
      session.boot_time = c.boot_time[i];
      session.first_sample_t = c.t[i];
      session.last_sample_t = c.t[i];
      session.last_uptime_s = c.uptime_s[i];
      session.sample_count = 1;
      bucket.sessions.push_back(session);
      session_open[m] = 1;
    } else {
      auto& session = bucket.sessions.back();
      session.last_sample_t = c.t[i];
      session.last_uptime_s = c.uptime_s[i];
      ++session.sample_count;
    }

    // Interactive spans: keyed by logon instant, broken by session-free
    // samples (same rule as AppendMachineInteractiveSpans).
    if (!c.has_session[i]) {
      span_open[m] = 0;
    } else if (!span_open[m] ||
               c.session_logon[i] != bucket.spans.back().logon_time) {
      InteractiveSpan span;
      span.machine = m;
      span.logon_time = c.session_logon[i];
      span.last_sample_t = c.t[i];
      span.sample_count = 1;
      bucket.spans.push_back(span);
      span_open[m] = 1;
    } else {
      auto& span = bucket.spans.back();
      span.last_sample_t = c.t[i];
      ++span.sample_count;
    }
  }

  interval_offsets.assign(machines + 1, 0);
  std::size_t total = 0;
  for (std::size_t m = 0; m < machines; ++m) {
    interval_offsets[m] = total;
    total += counts[m];
  }
  interval_offsets[machines] = total;
}

}  // namespace

DerivedTrace::DerivedTrace(const TraceStore& trace,
                           const DerivedTraceOptions& options)
    : trace_(&trace), options_(options) {
  obs::Span span("trace.derive");

  const std::size_t machines = trace.machine_count();
  const std::size_t workers = options_.workers != 0
                                  ? options_.workers
                                  : util::DefaultWorkerCount();

  // One sequential scan bakes the per-sample login classes, counts
  // intervals per machine, and reconstructs sessions and spans; then
  // every machine fills its own disjoint slice of the uninitialized
  // columns. Serial and parallel fills visit the same (ia, ib) pairs
  // through the same emit template and write each interval to the same
  // slot, so the derived columns are bitwise identical for any worker
  // count (pinned by tests).
  std::vector<MachineDerivation> buckets(machines);
  ScanTrace(trace, options_.intervals, interval_offsets_, buckets,
            sample_classes_);
  interval_columns_ = IntervalColumns(interval_offsets_.back());
  // The baked byte column holds exactly what Classify returns at the
  // derivation threshold, so classifying endpoints from it emits the same
  // intervals as ForEachMachineInterval while skipping the three-column
  // re-derivation per endpoint (the same "either endpoint occupied" rule
  // as ClassifyInterval).
  const auto classify = [this](std::uint32_t a, std::uint32_t b) noexcept {
    const auto class_b = static_cast<LoginClass>(sample_classes_[b]);
    if (class_b == LoginClass::kWithLogin) return class_b;
    const auto class_a = static_cast<LoginClass>(sample_classes_[a]);
    return class_a == LoginClass::kWithLogin ? class_a : class_b;
  };
  const TraceStore::Columns& c = trace.columns();
  IntervalColumns& iv = interval_columns_;
  // The emitted record lives in registers after inlining; its fields
  // scatter straight into the column streams at the given slot.
  const auto write_interval = [&iv](const SampleInterval& interval,
                                    std::size_t pos) {
    std::construct_at(iv.machine.data() + pos, interval.machine);
    std::construct_at(iv.start_index.data() + pos, interval.start_index);
    std::construct_at(iv.end_index.data() + pos, interval.end_index);
    std::construct_at(iv.start_t.data() + pos, interval.start_t);
    std::construct_at(iv.end_t.data() + pos, interval.end_t);
    std::construct_at(iv.cpu_idle_pct.data() + pos, interval.cpu_idle_pct);
    std::construct_at(iv.sent_bps.data() + pos, interval.sent_bps);
    std::construct_at(iv.recv_bps.data() + pos, interval.recv_bps);
    std::construct_at(iv.login_class.data() + pos,
                      static_cast<std::uint8_t>(interval.login_class));
  };
  if (workers <= 1 || machines <= 1) {
    // Append-order fill: the closing sample is the linear scan position
    // and the opening one was streamed machine_count rows earlier (still
    // cached), so the emit columns are read sequentially instead of
    // gathered per machine through the index. Each machine advances its
    // own cursor inside its disjoint slice — the same (ia, ib) pairs and
    // the same slots as the per-machine walk, in a different order.
    constexpr std::uint32_t kNone = 0xffffffffu;
    std::vector<std::size_t> cursor(interval_offsets_.begin(),
                                    interval_offsets_.end() - 1);
    std::vector<std::uint32_t> prev(machines, kNone);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const std::uint32_t m = c.machine[i];
      const std::uint32_t ia = prev[m];
      prev[m] = static_cast<std::uint32_t>(i);
      if (ia == kNone) continue;
      detail::EmitIntervalClassified(
          c, m, ia, static_cast<std::uint32_t>(i), options_.intervals,
          classify, [&](const SampleInterval& interval) {
            write_interval(interval, cursor[m]++);
          });
    }
  } else {
    util::ParallelFor(
        machines,
        [&](std::size_t m) {
          const auto indices = trace.MachineSamples(m);
          std::size_t pos = interval_offsets_[m];
          for (std::size_t k = 1; k < indices.size(); ++k) {
            detail::EmitIntervalClassified(
                c, static_cast<std::uint32_t>(m), indices[k - 1], indices[k],
                options_.intervals, classify,
                [&](const SampleInterval& interval) {
                  write_interval(interval, pos++);
                });
          }
        },
        options_.workers);
  }

  Flatten(buckets, &MachineDerivation::sessions, sessions_, session_offsets_);
  Flatten(buckets, &MachineDerivation::spans, spans_, span_offsets_);

  if (options_.metrics != nullptr) {
    options_.metrics
        ->GetCounter("labmon_trace_derive_intervals_total",
                     "Intervals derived by DerivedTrace construction")
        .Increment(interval_columns_.size());
    options_.metrics
        ->GetCounter("labmon_trace_derive_sessions_total",
                     "Machine sessions reconstructed by DerivedTrace")
        .Increment(sessions_.size());
    options_.metrics
        ->GetCounter("labmon_trace_derive_spans_total",
                     "Interactive spans reconstructed by DerivedTrace")
        .Increment(spans_.size());
  }
}

}  // namespace labmon::trace
