#include "labmon/trace/merge.hpp"

#include <algorithm>

#include "labmon/obs/prof.hpp"

namespace labmon::trace {

TraceStore MergeTraces(std::span<const TraceStore> parts) {
  obs::prof::PhaseScope prof_scope(obs::prof::Phase::kMerge);
  TraceStore merged(parts.empty() ? 0 : parts.front().machine_count());
  if (parts.empty()) return merged;

  std::size_t total = 0;
  std::size_t max_iters = 0;
  for (const TraceStore& p : parts) {
    total += p.size();
    max_iters = std::max(max_iters, p.iterations().size());
  }
  merged.Reserve(total);

  // Per-part cursors. Samples are appended iteration-major, so each part's
  // iteration block is a contiguous run at its cursor.
  std::vector<std::size_t> cursor(parts.size(), 0);
  std::vector<std::size_t> it_cursor(parts.size(), 0);

  struct Key {
    std::int64_t t;
    std::uint32_t machine;
    std::size_t part;
    std::size_t idx;
  };
  std::vector<Key> block;

  // Lazily-built part-local → merged user-id translation. Merged ids are
  // assigned at the first merged-order appearance of each user string,
  // exactly as the old per-sample re-intern did, so serialised output
  // (and hence trace hashes) stays bit-identical. After the first
  // appearance the per-sample cost is one vector lookup instead of a
  // string copy + hash.
  std::vector<std::vector<std::uint32_t>> user_remap(parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    user_remap[p].assign(parts[p].users().size(), TraceStore::kNoUser);
  }

  for (std::size_t it = 0; it < max_iters; ++it) {
    block.clear();
    IterationInfo info;
    info.iteration = it;
    bool any = false;
    for (std::size_t p = 0; p < parts.size(); ++p) {
      const auto its = parts[p].iterations();
      if (it_cursor[p] >= its.size()) continue;
      const IterationInfo& pi = its[it_cursor[p]];
      if (pi.iteration != it) continue;
      ++it_cursor[p];
      if (!any) {
        info.start_t = pi.start_t;
        info.end_t = pi.end_t;
        any = true;
      } else {
        info.start_t = std::min(info.start_t, pi.start_t);
        info.end_t = std::max(info.end_t, pi.end_t);
      }
      info.attempts += pi.attempts;
      info.successes += pi.successes;
      const TraceStore::Columns& cols = parts[p].columns();
      while (cursor[p] < parts[p].size() && cols.iteration[cursor[p]] == it) {
        block.push_back(
            {cols.t[cursor[p]], cols.machine[cursor[p]], p, cursor[p]});
        ++cursor[p];
      }
    }
    // (t, machine) is a total order: a machine is probed at most once per
    // iteration, so ties in t cannot repeat a machine.
    std::sort(block.begin(), block.end(), [](const Key& a, const Key& b) {
      return a.t != b.t ? a.t < b.t : a.machine < b.machine;
    });
    // Columnar append: no SampleRecord gather, no user-string re-intern.
    for (const Key& k : block) {
      const TraceStore::Columns& cols = parts[k.part].columns();
      std::uint32_t uid = cols.user_id[k.idx];
      if (uid != TraceStore::kNoUser) {
        std::uint32_t& mapped = user_remap[k.part][uid];
        if (mapped == TraceStore::kNoUser) {
          mapped = merged.InternUserId(parts[k.part].users()[uid]);
        }
        uid = mapped;
      }
      merged.AppendFrom(cols, k.idx, uid);
    }
    if (any) merged.AppendIteration(info);
  }
  return merged;
}

}  // namespace labmon::trace
