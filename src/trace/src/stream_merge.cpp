#include "labmon/trace/stream_merge.hpp"

#include <memory>

#include "labmon/obs/prof.hpp"
#include "labmon/trace/merge_frontier.hpp"

namespace labmon::trace {

// Pull-model adapter over MergeFrontier: feed each reader's current block
// as a borrowed view, advance until the frontier stalls, pull the stalled
// part's next block. A part never buffers more than one view at a time, so
// the reader's scratch block stays valid exactly as long as the frontier
// references it (its rows are appended before Advance returns).
StreamMergeResult StreamMergeBlocks(
    std::span<TraceReader* const> parts, std::size_t machine_count,
    std::size_t block_samples,
    util::FunctionRef<void(const TraceBlock&)> sink) {
  obs::prof::PhaseScope prof_scope(obs::prof::Phase::kMerge);
  StreamMergeResult result;
  if (parts.empty()) return result;

  MergeFrontier frontier(parts.size(), machine_count, block_samples);
  const auto feed = [&](std::size_t p) {
    if (const TraceBlock* block = parts[p]->Next(); block != nullptr) {
      frontier.AppendView(p, block);
    } else {
      frontier.FinishPart(p);
    }
  };
  for (std::size_t p = 0; p < parts.size(); ++p) feed(p);

  const auto emit = [&](TraceBlock& block) { sink(block); };
  const auto drop = [](std::size_t, std::unique_ptr<TraceBlock>) {};
  while (!frontier.finished()) {
    frontier.Advance(emit, drop);
    if (frontier.finished()) break;
    feed(frontier.stalled_part());
  }

  result.iterations = frontier.TakeIterations();
  result.samples = frontier.samples();
  result.blocks = frontier.blocks();
  return result;
}

}  // namespace labmon::trace
