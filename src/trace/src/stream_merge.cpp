#include "labmon/trace/stream_merge.hpp"

#include <algorithm>
#include <string>

#include "labmon/obs/prof.hpp"

namespace labmon::trace {

namespace {

/// Cursor over one part's block stream: current block plus sample and
/// iteration indices within it. Collection blocks are iteration-aligned,
/// so one iteration's samples and its IterationInfo always live in the
/// same block — gathering an iteration never crosses a block boundary.
struct PartCursor {
  TraceReader* reader = nullptr;
  const TraceBlock* block = nullptr;
  std::size_t idx = 0;
  std::size_t it_idx = 0;
  bool done = false;

  void NextBlock() {
    block = reader->Next();
    idx = 0;
    it_idx = 0;
    done = block == nullptr;
  }
  /// Skips past fully-consumed blocks; false when the stream is exhausted.
  bool EnsureContent() {
    while (!done && idx >= block->size() &&
           it_idx >= block->iterations.size()) {
      NextBlock();
    }
    return !done;
  }
};

}  // namespace

StreamMergeResult StreamMergeBlocks(
    std::span<TraceReader* const> parts, std::size_t machine_count,
    std::size_t block_samples,
    util::FunctionRef<void(const TraceBlock&)> sink) {
  obs::prof::PhaseScope prof_scope(obs::prof::Phase::kMerge);
  StreamMergeResult result;
  if (parts.empty()) return result;
  block_samples = std::max<std::size_t>(1, block_samples);

  std::vector<PartCursor> cursors(parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    cursors[p].reader = parts[p];
    cursors[p].NextBlock();
  }

  // Same per-iteration staging as MergeTraces: Key sorted by (t, machine)
  // is a total order because a machine is probed at most once per
  // iteration.
  struct Key {
    std::int64_t t;
    std::uint32_t machine;
    std::size_t part;
    std::size_t idx;
  };
  std::vector<Key> staged;

  // The output block is built in a TraceStore so the sealed block gets a
  // block-local user table via the store's interning; user strings are
  // carried by value across the part→merged boundary, so the merged ids
  // are block-local and the stream hash (which hashes strings, not ids)
  // is unaffected.
  TraceStore builder(machine_count);
  TraceBlock sealed;
  const auto seal = [&] {
    if (builder.size() == 0) return;
    sealed.AssignFrom(builder);
    sealed.iterations.clear();
    result.samples += sealed.size();
    ++result.blocks;
    sink(sealed);
    builder.ClearSamples();
  };

  for (std::uint64_t it = 0;; ++it) {
    bool alive = false;
    bool any = false;
    IterationInfo info;
    info.iteration = it;
    for (std::size_t p = 0; p < parts.size(); ++p) {
      PartCursor& cur = cursors[p];
      if (!cur.EnsureContent()) continue;
      alive = true;
      // Drop malformed (non-monotonic / info-less) rows so a corrupt input
      // cannot wedge the merge loop; MergeTraces drops the same rows by
      // leaving its cursor stuck until max_iters.
      while (cur.idx < cur.block->size() &&
             cur.block->cols.iteration[cur.idx] < it) {
        ++cur.idx;
      }
      while (cur.it_idx < cur.block->iterations.size() &&
             cur.block->iterations[cur.it_idx].iteration < it) {
        ++cur.it_idx;
      }
      if (cur.it_idx >= cur.block->iterations.size() ||
          cur.block->iterations[cur.it_idx].iteration != it) {
        continue;
      }
      const IterationInfo& pi = cur.block->iterations[cur.it_idx];
      ++cur.it_idx;
      if (!any) {
        info.start_t = pi.start_t;
        info.end_t = pi.end_t;
        any = true;
      } else {
        info.start_t = std::min(info.start_t, pi.start_t);
        info.end_t = std::max(info.end_t, pi.end_t);
      }
      info.attempts += pi.attempts;
      info.successes += pi.successes;
      const TraceStore::Columns& cols = cur.block->cols;
      while (cur.idx < cur.block->size() && cols.iteration[cur.idx] == it) {
        staged.push_back({cols.t[cur.idx], cols.machine[cur.idx], p, cur.idx});
        ++cur.idx;
      }
    }
    if (!alive) break;
    std::sort(staged.begin(), staged.end(), [](const Key& a, const Key& b) {
      return a.t != b.t ? a.t < b.t : a.machine < b.machine;
    });
    for (const Key& k : staged) {
      const TraceBlock& src = *cursors[k.part].block;
      std::uint32_t uid = src.cols.user_id[k.idx];
      if (uid != TraceStore::kNoUser) {
        uid = builder.InternUserId(src.users[uid]);
      }
      builder.AppendFrom(src.cols, k.idx, uid);
    }
    staged.clear();
    if (any) result.iterations.push_back(info);
    if (builder.size() >= block_samples) seal();
  }
  seal();
  return result;
}

}  // namespace labmon::trace
