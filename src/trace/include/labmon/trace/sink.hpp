// TraceStoreSink — the study's "post-collecting code": parses W32Probe
// stdout right after each successful remote execution and appends the
// extracted record to the trace (§3, Figure 1 step 3).
#pragma once

#include <cstdint>

#include "labmon/ddc/coordinator.hpp"
#include "labmon/trace/trace_store.hpp"

namespace labmon::trace {

class TraceStoreSink final : public ddc::SampleSink {
 public:
  explicit TraceStoreSink(TraceStore& store) : store_(&store) {}

  void OnSample(const ddc::CollectedSample& sample) override;
  void OnIterationEnd(std::uint64_t iteration, util::SimTime start_time,
                      util::SimTime end_time) override;

  /// Samples whose stdout failed to parse (post-collect rejects).
  [[nodiscard]] std::uint64_t parse_failures() const noexcept {
    return parse_failures_;
  }

 private:
  TraceStore* store_;
  std::uint64_t parse_failures_ = 0;
  std::uint32_t iteration_attempts_ = 0;
  std::uint32_t iteration_successes_ = 0;
};

}  // namespace labmon::trace
