// TraceStoreSink — the study's "post-collecting code": parses W32Probe
// stdout right after each successful remote execution and appends the
// extracted record to the trace (§3, Figure 1 step 3).
#pragma once

#include <cstdint>

#include "labmon/ddc/coordinator.hpp"
#include "labmon/trace/trace_store.hpp"

namespace labmon::trace {

class TraceStoreSink final : public ddc::SampleSink {
 public:
  explicit TraceStoreSink(TraceStore& store) : store_(&store) {}

  ddc::SampleVerdict OnSample(const ddc::CollectedSample& sample) override;
  void OnIterationEnd(std::uint64_t iteration, util::SimTime start_time,
                      util::SimTime end_time) override;

  /// Samples whose stdout failed to parse (post-collect rejects).
  [[nodiscard]] std::uint64_t parse_failures() const noexcept {
    return parse_failures_;
  }
  /// Structured fast-path samples whose cross-check text parse disagreed
  /// with the structured values. Must stay zero — any other value means the
  /// two codecs diverged.
  [[nodiscard]] std::uint64_t crosscheck_mismatches() const noexcept {
    return crosscheck_mismatches_;
  }
  /// Cross-checks actually performed (structured samples carrying text).
  [[nodiscard]] std::uint64_t crosschecks() const noexcept {
    return crosschecks_;
  }

 private:
  TraceStore* store_;
  // Scratch sample for the text parse: reusing its string capacity keeps
  // the per-sample post-collect parse allocation-free.
  ddc::W32Sample parse_scratch_;
  std::uint64_t parse_failures_ = 0;
  std::uint64_t crosscheck_mismatches_ = 0;
  std::uint64_t crosschecks_ = 0;
  std::uint32_t iteration_attempts_ = 0;
  std::uint32_t iteration_successes_ = 0;
};

}  // namespace labmon::trace
