// Streaming deterministic merge — MergeTraces over block streams.
//
// Consumes one TraceReader per part (lab), each iteration-major and
// iteration-aligned (collection blocks), and replays MergeTraces' exact
// merge order — per global iteration: gather every part's samples, sort by
// (t, machine), append — without ever materialising a whole part or the
// merged trace. Sealed merged blocks (block-local user tables, no
// iteration rows) are handed to the sink as they fill; merged
// IterationInfo metadata is returned, since it is O(iterations) and every
// downstream consumer (analysis finalise, run stats) needs it resident
// anyway. The emitted sample sequence is bit-identical to
// MergeTraces(parts) — pinned by HashSampleStream in tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "labmon/trace/block.hpp"
#include "labmon/util/function_ref.hpp"

namespace labmon::trace {

struct StreamMergeResult {
  std::vector<IterationInfo> iterations;
  std::uint64_t samples = 0;
  std::uint64_t blocks = 0;
};

/// Merges the part streams; calls `sink` once per sealed merged block (and
/// once for the final partial block, if non-empty). Readers must be fresh
/// (or Reset); reader-level IO failures end that part's stream early —
/// callers owning SegmentReaders must check their failed() afterwards.
StreamMergeResult StreamMergeBlocks(
    std::span<TraceReader* const> parts, std::size_t machine_count,
    std::size_t block_samples,
    util::FunctionRef<void(const TraceBlock&)> sink);

}  // namespace labmon::trace
