// Session reconstruction from the sampled trace (§5.2).
//
// A *machine session* is the activity between a boot and its corresponding
// shutdown; the sampling methodology observes it as a run of samples
// sharing a boot epoch. Between two samples only one reboot can be
// detected (uptime-based detection), so multiple quick reboots collapse —
// exactly the bias §5.2.2 quantifies against SMART ground truth.
#pragma once

#include <cstdint>
#include <vector>

#include "labmon/trace/trace_store.hpp"

namespace labmon::trace {

/// One reconstructed machine session (boot -> shutdown).
struct MachineSession {
  std::uint32_t machine = 0;
  std::int64_t boot_time = 0;      ///< as reported by the probe
  std::int64_t first_sample_t = 0;
  std::int64_t last_sample_t = 0;
  std::int64_t last_uptime_s = 0;  ///< observed session length
  std::uint32_t sample_count = 0;
};

/// All sessions of all machines, ordered by (machine, boot_time).
[[nodiscard]] std::vector<MachineSession> ReconstructSessions(
    const TraceStore& trace);

/// Appends machine `m`'s sessions to `out` in time order (the per-machine
/// building block ReconstructSessions and DerivedTrace share).
void AppendMachineSessions(const TraceStore& trace, std::size_t machine,
                           std::vector<MachineSession>& out);

/// One observed interactive login span (per machine+logon instant).
struct InteractiveSpan {
  std::uint32_t machine = 0;
  std::int64_t logon_time = 0;
  std::int64_t last_sample_t = 0;
  std::uint32_t sample_count = 0;

  /// Observed span length (logon to last sample that still showed it).
  [[nodiscard]] std::int64_t ObservedSeconds() const noexcept {
    return last_sample_t - logon_time;
  }
};

/// All interactive spans observed in the trace.
[[nodiscard]] std::vector<InteractiveSpan> ReconstructInteractiveSpans(
    const TraceStore& trace);

/// Appends machine `m`'s interactive spans to `out` in time order.
void AppendMachineInteractiveSpans(const TraceStore& trace,
                                   std::size_t machine,
                                   std::vector<InteractiveSpan>& out);

}  // namespace labmon::trace
