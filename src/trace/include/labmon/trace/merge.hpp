// Deterministic merge of per-shard traces into one campus-wide TraceStore.
//
// The sharded experiment collects each lab into its own store on its own
// thread. Because every shard sweeps the same aligned iteration grid, the
// per-lab stores carry the same iteration numbers; the merge zips them
// iteration by iteration, ordering samples within an iteration by
// (t, machine) — a total order, since a machine is probed at most once per
// iteration. The output is byte-for-byte independent of the shard count and
// of thread scheduling: it depends only on the per-lab sample sets, which
// the RNG-substream scheme pins.
#pragma once

#include <span>

#include "labmon/trace/trace_store.hpp"

namespace labmon::trace {

/// Merges per-shard stores (each covering a disjoint machine range, all
/// sharing one aligned iteration grid) into a single store.
///
/// - Samples: iteration-major, (t, machine)-sorted within an iteration;
///   users are re-interned in merge order, so user ids are deterministic.
/// - IterationInfo: start = min of parts' starts, end = max of parts' ends,
///   attempts/successes summed. Iterations beyond a part's range contribute
///   nothing; the merged grid spans the longest part.
/// `machine_count` of the result is taken from the first part (parts are
/// built with the fleet-global machine count).
[[nodiscard]] TraceStore MergeTraces(std::span<const TraceStore> parts);

}  // namespace labmon::trace
