// Inter-sample interval derivation (§4.2): the probe reports *cumulative*
// idle-thread time and NIC byte totals since boot precisely so that two
// consecutive samples of one boot epoch yield the average CPU idleness and
// network rates over the interval between them.
//
// ForEachInterval is a template over the callback so the ~10^6-interval
// hot loop inlines the visitor instead of paying a std::function indirect
// call per interval; it reads the columnar store directly. Prefer
// trace::DerivedTrace when several analyses need the intervals — it
// derives them exactly once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "labmon/trace/trace_store.hpp"

namespace labmon::trace {

/// One derived interval between two consecutive samples of a boot epoch.
struct SampleInterval {
  std::uint32_t machine = 0;
  std::uint32_t start_index = 0;  ///< index of the opening sample
  std::uint32_t end_index = 0;    ///< index of the closing sample
  std::int64_t start_t = 0;
  std::int64_t end_t = 0;
  double cpu_idle_pct = 0.0;      ///< average idleness over the interval
  double sent_bps = 0.0;
  double recv_bps = 0.0;
  LoginClass login_class = LoginClass::kNoLogin;  ///< at derivation threshold

  [[nodiscard]] std::int64_t Seconds() const noexcept {
    return end_t - start_t;
  }
};

/// Options for interval derivation.
struct IntervalOptions {
  /// Forgotten-login threshold for classification (paper: 10 h).
  std::int64_t forgotten_threshold_s = kForgottenThresholdSeconds;
  /// Discard intervals longer than this (a machine that vanished for hours
  /// between two samples of one boot epoch carries little information).
  std::int64_t max_interval_s = 2 * 3600;
};

/// Classifies the interval between samples `a` and `b` (column indices)
/// under the paper's rule: the interval counts as "with login" when
/// *either* endpoint shows an occupied machine — a session covering most
/// of the interval but ending just before the closing sample still spent
/// its traffic and CPU inside it.
[[nodiscard]] inline LoginClass ClassifyInterval(
    const TraceStore& trace, std::size_t a, std::size_t b,
    std::int64_t threshold_s) noexcept {
  const LoginClass class_b = trace.Classify(b, threshold_s);
  if (class_b == LoginClass::kWithLogin) return class_b;
  const LoginClass class_a = trace.Classify(a, threshold_s);
  return class_a == LoginClass::kWithLogin ? class_a : class_b;
}

namespace detail {

/// Evaluates the interval between the consecutive same-machine samples at
/// column indices `ia` < `ib`; invokes `fn` when the pair forms a valid
/// interval. `classify(ia, ib)` supplies the login class so callers that
/// have the per-sample classes baked into a byte column (DerivedTrace)
/// can skip re-deriving them from the session columns — the bytes hold
/// exactly what Classify returns, so the emitted intervals stay
/// bit-identical across callers.
template <typename Classify, typename Fn>
inline void EmitIntervalClassified(const TraceStore::Columns& c,
                                   std::uint32_t machine, std::uint32_t ia,
                                   std::uint32_t ib,
                                   const IntervalOptions& options,
                                   Classify&& classify, Fn&& fn) {
  if (c.boot_time[ia] != c.boot_time[ib]) return;  // reboot in between
  if (c.uptime_s[ib] <= c.uptime_s[ia]) return;    // same-boot sanity
  const std::int64_t dt = c.t[ib] - c.t[ia];
  if (dt <= 0 || dt > options.max_interval_s) return;

  SampleInterval interval;
  interval.machine = machine;
  interval.start_index = ia;
  interval.end_index = ib;
  interval.start_t = c.t[ia];
  interval.end_t = c.t[ib];
  interval.cpu_idle_pct = std::clamp(
      (c.cpu_idle_s[ib] - c.cpu_idle_s[ia]) / static_cast<double>(dt) * 100.0,
      0.0, 100.0);
  // NIC counters reset at boot and only grow within an epoch; guard
  // against decreasing totals anyway (counter wrap on real hardware).
  interval.sent_bps =
      c.net_sent_b[ib] >= c.net_sent_b[ia]
          ? static_cast<double>(c.net_sent_b[ib] - c.net_sent_b[ia]) /
                static_cast<double>(dt)
          : 0.0;
  interval.recv_bps =
      c.net_recv_b[ib] >= c.net_recv_b[ia]
          ? static_cast<double>(c.net_recv_b[ib] - c.net_recv_b[ia]) /
                static_cast<double>(dt)
          : 0.0;
  interval.login_class = classify(ia, ib);
  fn(interval);
}

/// EmitIntervalClassified with the default classifier (re-derives the
/// endpoint classes from the session columns).
template <typename Fn>
inline void EmitInterval(const TraceStore& trace, const TraceStore::Columns& c,
                         std::uint32_t machine, std::uint32_t ia,
                         std::uint32_t ib, const IntervalOptions& options,
                         Fn&& fn) {
  EmitIntervalClassified(
      c, machine, ia, ib, options,
      [&](std::uint32_t a, std::uint32_t b) {
        return ClassifyInterval(trace, a, b, options.forgotten_threshold_s);
      },
      std::forward<Fn>(fn));
}

}  // namespace detail

/// Derives the intervals of one machine, invoking `fn` per interval in
/// time order. Template: the callback inlines into the column scan.
template <typename Fn>
void ForEachMachineInterval(const TraceStore& trace, std::size_t machine,
                            const IntervalOptions& options, Fn&& fn) {
  const TraceStore::Columns& c = trace.columns();
  const auto indices = trace.MachineSamples(machine);
  for (std::size_t k = 1; k < indices.size(); ++k) {
    detail::EmitInterval(trace, c, static_cast<std::uint32_t>(machine),
                         indices[k - 1], indices[k], options, fn);
  }
}

/// Streaming variant over all machines: invokes `fn` per interval without
/// materialising the vector (the 77-day trace has ~10^6 of them).
template <typename Fn>
void ForEachInterval(const TraceStore& trace, const IntervalOptions& options,
                     Fn&& fn) {
  for (std::size_t m = 0; m < trace.machine_count(); ++m) {
    ForEachMachineInterval(trace, m, options, fn);
  }
}

/// Derives all intervals (per machine, consecutive same-boot samples).
[[nodiscard]] std::vector<SampleInterval> DeriveIntervals(
    const TraceStore& trace, const IntervalOptions& options = {});

}  // namespace labmon::trace
