// Inter-sample interval derivation (§4.2): the probe reports *cumulative*
// idle-thread time and NIC byte totals since boot precisely so that two
// consecutive samples of one boot epoch yield the average CPU idleness and
// network rates over the interval between them.
//
// ForEachInterval is a template over the callback so the ~10^6-interval
// hot loop inlines the visitor instead of paying a std::function indirect
// call per interval; it reads the columnar store directly. Prefer
// trace::DerivedTrace when several analyses need the intervals — it
// derives them exactly once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "labmon/trace/trace_store.hpp"

namespace labmon::trace {

/// One derived interval between two consecutive samples of a boot epoch.
struct SampleInterval {
  std::uint32_t machine = 0;
  std::uint32_t start_index = 0;  ///< index of the opening sample
  std::uint32_t end_index = 0;    ///< index of the closing sample
  std::int64_t start_t = 0;
  std::int64_t end_t = 0;
  double cpu_idle_pct = 0.0;      ///< average idleness over the interval
  double sent_bps = 0.0;
  double recv_bps = 0.0;
  LoginClass login_class = LoginClass::kNoLogin;  ///< at derivation threshold

  [[nodiscard]] std::int64_t Seconds() const noexcept {
    return end_t - start_t;
  }
};

/// Options for interval derivation.
struct IntervalOptions {
  /// Forgotten-login threshold for classification (paper: 10 h).
  std::int64_t forgotten_threshold_s = kForgottenThresholdSeconds;
  /// Discard intervals longer than this (a machine that vanished for hours
  /// between two samples of one boot epoch carries little information).
  std::int64_t max_interval_s = 2 * 3600;
};

/// Classifies the interval between samples `a` and `b` (column indices)
/// under the paper's rule: the interval counts as "with login" when
/// *either* endpoint shows an occupied machine — a session covering most
/// of the interval but ending just before the closing sample still spent
/// its traffic and CPU inside it.
[[nodiscard]] inline LoginClass ClassifyInterval(
    const TraceStore& trace, std::size_t a, std::size_t b,
    std::int64_t threshold_s) noexcept {
  const LoginClass class_b = trace.Classify(b, threshold_s);
  if (class_b == LoginClass::kWithLogin) return class_b;
  const LoginClass class_a = trace.Classify(a, threshold_s);
  return class_a == LoginClass::kWithLogin ? class_a : class_b;
}

/// The per-sample fields interval emission reads — a value form of one
/// endpoint, so stream folds that no longer hold the closing sample's
/// column index (the previous block is gone) can still emit intervals
/// through the exact same arithmetic as the materialised path.
struct IntervalEndpoint {
  std::int64_t t = 0;
  std::int64_t boot_time = 0;
  std::int64_t uptime_s = 0;
  double cpu_idle_s = 0.0;
  std::uint64_t net_sent_b = 0;
  std::uint64_t net_recv_b = 0;
};

namespace detail {

/// The one interval-emission core: evaluates the interval between two
/// consecutive same-machine endpoints and invokes `fn` when the pair is
/// valid. `classify()` supplies the login class lazily (only valid
/// intervals pay for it). Both the index-based materialised path and the
/// value-based streaming path funnel through this function, so the
/// emitted doubles are bit-identical by construction. start/end_index are
/// left at 0 — index-carrying callers fill them in their wrapper.
template <typename Classify, typename Fn>
inline void EmitIntervalFromEndpoints(const IntervalEndpoint& a,
                                      const IntervalEndpoint& b,
                                      std::uint32_t machine,
                                      const IntervalOptions& options,
                                      Classify&& classify, Fn&& fn) {
  if (a.boot_time != b.boot_time) return;  // reboot in between
  if (b.uptime_s <= a.uptime_s) return;    // same-boot sanity
  const std::int64_t dt = b.t - a.t;
  if (dt <= 0 || dt > options.max_interval_s) return;

  SampleInterval interval;
  interval.machine = machine;
  interval.start_t = a.t;
  interval.end_t = b.t;
  interval.cpu_idle_pct = std::clamp(
      (b.cpu_idle_s - a.cpu_idle_s) / static_cast<double>(dt) * 100.0, 0.0,
      100.0);
  // NIC counters reset at boot and only grow within an epoch; guard
  // against decreasing totals anyway (counter wrap on real hardware).
  interval.sent_bps = b.net_sent_b >= a.net_sent_b
                          ? static_cast<double>(b.net_sent_b - a.net_sent_b) /
                                static_cast<double>(dt)
                          : 0.0;
  interval.recv_bps = b.net_recv_b >= a.net_recv_b
                          ? static_cast<double>(b.net_recv_b - a.net_recv_b) /
                                static_cast<double>(dt)
                          : 0.0;
  interval.login_class = classify();
  fn(interval);
}

/// Loads one endpoint's fields out of the columnar store.
[[nodiscard]] inline IntervalEndpoint LoadEndpoint(
    const TraceStore::Columns& c, std::uint32_t i) noexcept {
  return IntervalEndpoint{c.t[i],          c.boot_time[i],  c.uptime_s[i],
                          c.cpu_idle_s[i], c.net_sent_b[i], c.net_recv_b[i]};
}

/// Evaluates the interval between the consecutive same-machine samples at
/// column indices `ia` < `ib`; invokes `fn` when the pair forms a valid
/// interval. `classify(ia, ib)` supplies the login class so callers that
/// have the per-sample classes baked into a byte column (DerivedTrace)
/// can skip re-deriving them from the session columns — the bytes hold
/// exactly what Classify returns, so the emitted intervals stay
/// bit-identical across callers.
template <typename Classify, typename Fn>
inline void EmitIntervalClassified(const TraceStore::Columns& c,
                                   std::uint32_t machine, std::uint32_t ia,
                                   std::uint32_t ib,
                                   const IntervalOptions& options,
                                   Classify&& classify, Fn&& fn) {
  EmitIntervalFromEndpoints(
      LoadEndpoint(c, ia), LoadEndpoint(c, ib), machine, options,
      [&] { return classify(ia, ib); },
      [&](SampleInterval interval) {
        interval.start_index = ia;
        interval.end_index = ib;
        fn(interval);
      });
}

/// EmitIntervalClassified with the default classifier (re-derives the
/// endpoint classes from the session columns).
template <typename Fn>
inline void EmitInterval(const TraceStore& trace, const TraceStore::Columns& c,
                         std::uint32_t machine, std::uint32_t ia,
                         std::uint32_t ib, const IntervalOptions& options,
                         Fn&& fn) {
  EmitIntervalClassified(
      c, machine, ia, ib, options,
      [&](std::uint32_t a, std::uint32_t b) {
        return ClassifyInterval(trace, a, b, options.forgotten_threshold_s);
      },
      std::forward<Fn>(fn));
}

}  // namespace detail

/// Derives the intervals of one machine, invoking `fn` per interval in
/// time order. Template: the callback inlines into the column scan.
template <typename Fn>
void ForEachMachineInterval(const TraceStore& trace, std::size_t machine,
                            const IntervalOptions& options, Fn&& fn) {
  const TraceStore::Columns& c = trace.columns();
  const auto indices = trace.MachineSamples(machine);
  for (std::size_t k = 1; k < indices.size(); ++k) {
    detail::EmitInterval(trace, c, static_cast<std::uint32_t>(machine),
                         indices[k - 1], indices[k], options, fn);
  }
}

/// Streaming variant over all machines: invokes `fn` per interval without
/// materialising the vector (the 77-day trace has ~10^6 of them).
template <typename Fn>
void ForEachInterval(const TraceStore& trace, const IntervalOptions& options,
                     Fn&& fn) {
  for (std::size_t m = 0; m < trace.machine_count(); ++m) {
    ForEachMachineInterval(trace, m, options, fn);
  }
}

/// Derives all intervals (per machine, consecutive same-boot samples).
[[nodiscard]] std::vector<SampleInterval> DeriveIntervals(
    const TraceStore& trace, const IntervalOptions& options = {});

}  // namespace labmon::trace
