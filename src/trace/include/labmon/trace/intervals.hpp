// Inter-sample interval derivation (§4.2): the probe reports *cumulative*
// idle-thread time and NIC byte totals since boot precisely so that two
// consecutive samples of one boot epoch yield the average CPU idleness and
// network rates over the interval between them.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "labmon/trace/trace_store.hpp"

namespace labmon::trace {

/// One derived interval between two consecutive samples of a boot epoch.
struct SampleInterval {
  std::uint32_t machine = 0;
  std::uint32_t end_index = 0;    ///< index of the closing sample
  std::int64_t start_t = 0;
  std::int64_t end_t = 0;
  double cpu_idle_pct = 0.0;      ///< average idleness over the interval
  double sent_bps = 0.0;
  double recv_bps = 0.0;
  LoginClass login_class = LoginClass::kNoLogin;  ///< of the closing sample

  [[nodiscard]] std::int64_t Seconds() const noexcept {
    return end_t - start_t;
  }
};

/// Options for interval derivation.
struct IntervalOptions {
  /// Forgotten-login threshold for classification (paper: 10 h).
  std::int64_t forgotten_threshold_s = kForgottenThresholdSeconds;
  /// Discard intervals longer than this (a machine that vanished for hours
  /// between two samples of one boot epoch carries little information).
  std::int64_t max_interval_s = 2 * 3600;
};

/// Derives all intervals (per machine, consecutive same-boot samples).
[[nodiscard]] std::vector<SampleInterval> DeriveIntervals(
    const TraceStore& trace, const IntervalOptions& options = {});

/// Streaming variant: invokes `fn` per interval without materialising the
/// vector (the 77-day trace has ~10^6 of them).
void ForEachInterval(const TraceStore& trace, const IntervalOptions& options,
                     const std::function<void(const SampleInterval&)>& fn);

}  // namespace labmon::trace
