// TraceBlock / TraceReader — the streaming view of a trace.
//
// A TraceBlock is a fixed-capacity columnar slice of samples (same SoA
// layout as TraceStore::Columns) plus a self-contained user table: the
// user_id column of a block refers to the block's own `users` list, never
// to some external store, so a block can be spilled to disk and
// re-streamed in isolation. Blocks produced by the collection path are
// additionally iteration-aligned and carry the IterationInfo rows they
// cover; blocks cut from a materialised store (StoreReader) split at
// arbitrary sample boundaries and leave `iterations` empty.
//
// TraceReader is the cursor abstraction every streaming consumer folds
// over: `Next()` yields sealed blocks until nullptr. The analysis fold,
// the streaming merge, the segment spill and the stream hash all consume
// this one interface, so "materialised store", "in-memory block list" and
// "on-disk segment" are interchangeable sources.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "labmon/trace/trace_store.hpp"

namespace labmon::trace {

/// Default sealed-block capacity (~64k samples ≈ a few MB of columns).
inline constexpr std::size_t kDefaultBlockSamples = 65536;

struct TraceBlock {
  TraceStore::Columns cols;
  /// Block-local user table; cols.user_id indexes it (kNoUser = none).
  std::vector<std::string> users;
  /// Iteration metadata covered by this block (collection blocks only).
  std::vector<IterationInfo> iterations;

  [[nodiscard]] std::size_t size() const noexcept { return cols.t.size(); }
  [[nodiscard]] bool empty() const noexcept { return cols.t.empty(); }

  void Clear() {
    TraceStore::ForEachColumn([&](auto member) { (cols.*member).clear(); });
    users.clear();
    iterations.clear();
  }

  /// User string of row i ("" when the row has no session).
  [[nodiscard]] std::string_view UserOf(std::size_t i) const noexcept {
    const std::uint32_t id = cols.user_id[i];
    return id == TraceStore::kNoUser ? std::string_view{}
                                     : std::string_view(users[id]);
  }

  /// Copies a whole store (samples + users + iterations) into this block.
  void AssignFrom(const TraceStore& store);
};

/// Appends row `i` of `src` onto `dst`, column-generically (the user_id
/// value is copied verbatim — translate before or after if tables differ).
inline void AppendRow(TraceStore::Columns& dst, const TraceStore::Columns& src,
                      std::size_t i) {
  TraceStore::ForEachColumn(
      [&](auto member) { (dst.*member).push_back((src.*member)[i]); });
}

class TraceReader {
 public:
  virtual ~TraceReader() = default;
  /// The next sealed block, or nullptr at end of stream. The returned
  /// pointer stays valid until the next call on the same reader.
  virtual const TraceBlock* Next() = 0;
  /// Rewinds to the first block.
  virtual void Reset() = 0;
};

/// Streams a materialised TraceStore as fixed-size blocks — the adapter
/// that lets every streaming consumer also run on an in-memory trace.
class StoreReader final : public TraceReader {
 public:
  explicit StoreReader(const TraceStore& store,
                       std::size_t block_samples = kDefaultBlockSamples);

  const TraceBlock* Next() override;
  void Reset() override { pos_ = 0; }

 private:
  const TraceStore* store_;
  std::size_t block_samples_;
  std::size_t pos_ = 0;
  TraceBlock scratch_;
};

/// Streams an already-sealed in-memory block list (the no-spill segment).
class BlockVectorReader final : public TraceReader {
 public:
  explicit BlockVectorReader(const std::vector<TraceBlock>& blocks)
      : blocks_(&blocks) {}

  const TraceBlock* Next() override {
    return index_ < blocks_->size() ? &(*blocks_)[index_++] : nullptr;
  }
  void Reset() override { index_ = 0; }

 private:
  const std::vector<TraceBlock>* blocks_;
  std::size_t index_ = 0;
};

/// Order-sensitive FNV-1a over the sample stream. Every column except
/// user_id is hashed as fixed-width bytes; session rows hash the user
/// *string* instead of its table id, so the hash is independent of the
/// interning scheme (block-local vs merged ids) and of block boundaries —
/// a streamed-and-merged run and a materialised store hash identically iff
/// their sample sequences match exactly. Iteration metadata is excluded.
[[nodiscard]] std::uint64_t HashSampleStream(TraceReader& reader);

/// Incremental form of HashSampleStream for folds that already walk the
/// blocks: seed with kSampleStreamHashSeed, fold each block in order.
inline constexpr std::uint64_t kSampleStreamHashSeed = 0xcbf29ce484222325ull;
[[nodiscard]] std::uint64_t HashBlockSamples(std::uint64_t h,
                                             const TraceBlock& block);

}  // namespace labmon::trace
