// SpillCodec — the pluggable block codec behind on-disk trace segments.
//
// A segment file (segment.hpp) is framing: magic, header, then
// length-prefixed checksummed block payloads. The *codec* decides what the
// payload bytes are:
//
//   LMSG1  payload = a complete LMTR1 trace (binary_io) — row-major
//          delta/varint records. The original spill format; always
//          readable.
//   LMSG2  payload = per-column encoding of the sealed block: each column
//          is transformed (stream-delta, per-machine-delta or raw — see
//          spill_codec.cpp) into a token stream, then run-length + varint
//          coded. The block-local user table is written once and the
//          user_id column references it by index (dictionary reuse), as
//          do session flags. Typically ~3–5x smaller than LMSG1 on
//          simulated fleet traces because constant-delta columns (uptime,
//          boot_time, disk, SMART counters) collapse into runs.
//
// Codecs are stateless singletons safe to share across threads (encode
// scratch is thread-local), and both directions are loud about
// corruption: DecodeBlock validates every section length, token count and
// value range and fails with a diagnostic rather than truncating.
//
// Bit-fidelity contract: for any sealed block, Encode→Decode under either
// codec reproduces the exact sample values LMSG1 reproduces (cpu_idle_s
// goes through the same centisecond transform as LMTR1), so streams,
// hashes and analysis results are codec-independent and a checkpointed
// campaign may resume across codecs freely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "labmon/trace/block.hpp"
#include "labmon/util/expected.hpp"

namespace labmon::trace {

enum class SpillCodecId : std::uint8_t {
  kLmsg1 = 1,
  kLmsg2 = 2,
};

/// Codec used for newly written segments when the caller does not choose.
inline constexpr SpillCodecId kDefaultSpillCodec = SpillCodecId::kLmsg2;

/// "lmsg1" / "lmsg2" — the names accepted on the CLI and written into
/// checkpoint sidecars.
[[nodiscard]] const char* SpillCodecName(SpillCodecId id) noexcept;

/// Parses a codec name (as produced by SpillCodecName); nullopt when the
/// name is unknown.
[[nodiscard]] std::optional<SpillCodecId> ParseSpillCodecName(
    std::string_view name) noexcept;

/// Cumulative codec-side accounting, one direction (encode or decode).
/// `raw_bytes` is the in-memory columnar footprint of the blocks moved
/// (columns + user strings + iteration rows) — the denominator of the
/// compression ratio; `payload_bytes` is the encoded payload size
/// (excluding segment framing).
struct SpillCodecStats {
  std::uint64_t blocks = 0;
  std::uint64_t samples = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t ns = 0;  ///< wall time spent encoding/decoding

  SpillCodecStats& operator+=(const SpillCodecStats& o) noexcept {
    blocks += o.blocks;
    samples += o.samples;
    raw_bytes += o.raw_bytes;
    payload_bytes += o.payload_bytes;
    ns += o.ns;
    return *this;
  }
};

/// In-memory columnar footprint of a block's contents — the "raw" side of
/// every compression ratio this module reports.
[[nodiscard]] std::uint64_t RawColumnBytes(const TraceStore& store) noexcept;
[[nodiscard]] std::uint64_t RawColumnBytes(const TraceBlock& block) noexcept;

class SpillCodec {
 public:
  virtual ~SpillCodec() = default;

  [[nodiscard]] virtual SpillCodecId id() const noexcept = 0;
  /// The 5-byte segment magic announcing this codec ("LMSG1"/"LMSG2").
  [[nodiscard]] virtual std::string_view magic() const noexcept = 0;

  /// Encodes one sealed block (samples + block-local user table +
  /// iteration rows) into `out` (cleared first). Pure in-memory transform;
  /// cannot fail.
  virtual void EncodeBlock(const TraceStore& block_store,
                           std::string& out) const = 0;

  /// Decodes one payload into `out` (cleared first). `machine_count` is
  /// the segment-header fleet size, used to bound machine ids. Iteration
  /// rows are numbered from zero within the payload (the segment reader
  /// restores stream-global numbering). Any structural problem — short or
  /// long sections, token counts that disagree with the header, values
  /// out of column range, trailing bytes — is an error, never silently
  /// short data.
  [[nodiscard]] virtual util::Result<bool> DecodeBlock(
      std::string_view payload, std::size_t machine_count,
      TraceBlock& out) const = 0;
};

/// The process-wide codec singleton for `id`.
[[nodiscard]] const SpillCodec& GetSpillCodec(SpillCodecId id) noexcept;

/// Codec whose segment magic is `magic`, or nullptr — how SegmentReader
/// dispatches on the bytes it finds, so spill directories may mix formats.
[[nodiscard]] const SpillCodec* FindSpillCodecByMagic(
    std::string_view magic) noexcept;

}  // namespace labmon::trace
