// On-disk trace segments ("LMSG1") — the spill format of the streaming
// pipeline.
//
// A segment is a header plus a sequence of length-prefixed, checksummed
// blocks; each block payload is a complete LMTR1 trace (binary_io) holding
// that block's samples, its *block-local* user table and the iteration
// metadata the block covers. Blocks are therefore fully self-contained:
// delta state never crosses a block boundary, so a partially-written
// segment is readable up to its last complete block and a resumed
// campaign can re-stream spilled labs without any sidecar decoder state.
//
// Layout:
//   magic "LMSG1"
//   varint version (1), varint machine_count
//   per block: varint payload_len, payload (LMTR1 bytes),
//              8-byte LE FNV-1a checksum of the payload
//
// Truncation anywhere inside a block, or a checksum/LMTR1 parse failure,
// surfaces as a read error (never as silently-short data).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "labmon/trace/block.hpp"
#include "labmon/util/expected.hpp"

namespace labmon::trace {

class SegmentWriter {
 public:
  /// Opens (truncates) `path` and writes the segment header.
  [[nodiscard]] static util::Result<SegmentWriter> Open(
      const std::string& path, std::size_t machine_count);

  SegmentWriter(SegmentWriter&&) = default;
  SegmentWriter& operator=(SegmentWriter&&) = default;

  /// Appends one sealed block: `block_store` must hold the block's samples,
  /// its own (block-local) user table and its iteration rows.
  [[nodiscard]] util::Result<bool> Append(const TraceStore& block_store);

  /// Flushes and closes; returns an error if any write failed.
  [[nodiscard]] util::Result<bool> Finish();

  [[nodiscard]] std::uint64_t blocks() const noexcept { return blocks_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }

 private:
  SegmentWriter() = default;

  std::ofstream out_;
  std::string path_;
  std::uint64_t blocks_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Streams the blocks of a segment file back. A failed read (truncation,
/// checksum mismatch, payload parse error) ends the stream with
/// `failed()` true and a diagnostic in `error()` — callers must check
/// after Next() returns nullptr.
class SegmentReader final : public TraceReader {
 public:
  [[nodiscard]] static util::Result<SegmentReader> Open(
      const std::string& path);

  SegmentReader(SegmentReader&&) = default;
  SegmentReader& operator=(SegmentReader&&) = default;

  const TraceBlock* Next() override;
  void Reset() override;

  [[nodiscard]] bool failed() const noexcept { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::size_t machine_count() const noexcept {
    return machine_count_;
  }

 private:
  SegmentReader() = default;

  std::ifstream in_;
  std::string path_;
  std::size_t machine_count_ = 0;
  std::uint64_t next_iteration_ = 0;
  std::streampos first_block_pos_;
  std::string error_;
  std::string payload_;
  TraceBlock scratch_;
};

}  // namespace labmon::trace
