// On-disk trace segments — the spill files of the streaming pipeline.
//
// A segment is a header plus a sequence of length-prefixed, checksummed
// block payloads; what the payload bytes are is the codec's business
// (spill_codec.hpp): LMSG1 payloads are complete LMTR1 traces, LMSG2
// payloads are per-column compressed encodings of the same block. Either
// way a block carries its samples, its *block-local* user table and the
// iteration metadata it covers, so blocks are fully self-contained: codec
// state never crosses a block boundary, a partially-written segment is
// readable up to its last complete block, and a resumed campaign can
// re-stream spilled labs without any sidecar decoder state.
//
// Layout (framing is identical for every codec):
//   magic: the codec's 5 bytes ("LMSG1" or "LMSG2")
//   varint version (1), varint machine_count
//   per block: varint payload_len, payload bytes,
//              8-byte LE FNV-1a checksum of the (encoded) payload
//
// The reader dispatches on the magic it finds, so one spill directory may
// mix segments written under different codecs (e.g. across a resumed
// campaign that changed codec). Truncation anywhere inside a block, a
// checksum mismatch, or a payload decode failure surfaces as a read error
// — never as silently-short data.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "labmon/trace/block.hpp"
#include "labmon/trace/spill_codec.hpp"
#include "labmon/util/expected.hpp"

namespace labmon::trace {

class SegmentWriter {
 public:
  /// Opens (truncates) `path` and writes the segment header for `codec`.
  [[nodiscard]] static util::Result<SegmentWriter> Open(
      const std::string& path, std::size_t machine_count,
      SpillCodecId codec = kDefaultSpillCodec);

  SegmentWriter(SegmentWriter&&) = default;
  SegmentWriter& operator=(SegmentWriter&&) = default;

  /// Appends one sealed block: `block_store` must hold the block's samples,
  /// its own (block-local) user table and its iteration rows. Encoding runs
  /// on the calling thread — spill callers invoke this from shard workers
  /// so compression stays off any merge critical path.
  [[nodiscard]] util::Result<bool> Append(const TraceStore& block_store);

  /// Flushes and closes; returns an error if any write failed.
  [[nodiscard]] util::Result<bool> Finish();

  [[nodiscard]] std::uint64_t blocks() const noexcept { return blocks_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] SpillCodecId codec() const noexcept { return codec_->id(); }
  /// Encode-side accounting (raw vs payload bytes, encode time) summed
  /// over every Append on this writer.
  [[nodiscard]] const SpillCodecStats& codec_stats() const noexcept {
    return stats_;
  }

 private:
  SegmentWriter() = default;

  std::ofstream out_;
  std::string path_;
  const SpillCodec* codec_ = nullptr;
  std::string payload_;  ///< reused encode buffer
  SpillCodecStats stats_;
  std::uint64_t blocks_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Streams the blocks of a segment file back. A failed read (truncation,
/// checksum mismatch, payload decode error) ends the stream with
/// `failed()` true and a diagnostic in `error()` — callers must check
/// after Next() returns nullptr.
class SegmentReader final : public TraceReader {
 public:
  [[nodiscard]] static util::Result<SegmentReader> Open(
      const std::string& path);

  SegmentReader(SegmentReader&&) = default;
  SegmentReader& operator=(SegmentReader&&) = default;

  const TraceBlock* Next() override;
  void Reset() override;

  [[nodiscard]] bool failed() const noexcept { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::size_t machine_count() const noexcept {
    return machine_count_;
  }
  /// The codec this segment was written under (from its magic).
  [[nodiscard]] SpillCodecId codec() const noexcept { return codec_->id(); }
  /// Decode-side accounting summed over every Next on this reader
  /// (cumulative across Reset).
  [[nodiscard]] const SpillCodecStats& codec_stats() const noexcept {
    return stats_;
  }

 private:
  SegmentReader() = default;

  std::ifstream in_;
  std::string path_;
  const SpillCodec* codec_ = nullptr;
  std::size_t machine_count_ = 0;
  std::uint64_t next_iteration_ = 0;
  std::streampos first_block_pos_;
  std::string error_;
  std::string payload_;
  SpillCodecStats stats_;
  TraceBlock scratch_;
};

}  // namespace labmon::trace
