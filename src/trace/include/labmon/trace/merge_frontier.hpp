// MergeFrontier — the incremental, push-model core of the streaming merge.
//
// StreamMergeBlocks (stream_merge.hpp) pulls blocks from readers; the
// pipelined engine instead *pushes* blocks as labs seal them, out of lab
// order, and wants merged output as soon as an iteration front is ready —
// an iteration front is complete when every live part has either buffered
// content covering that iteration or finished its stream. MergeFrontier
// is that state machine: Append()/FinishPart() feed it, Advance() merges
// every ready front (replaying MergeTraces' exact order: per global
// iteration, gather all parts' samples, sort by (t, machine), append) and
// emits sealed merged blocks. Both StreamMergeBlocks and the pipelined
// driver are built on it, so the merged sample sequence is bit-identical
// across all three engines by construction.
//
// Ready fronts are gathered in batches; when more than one front is ready
// (the staging ring backed up while the merge was busy) the per-front key
// sorts run in parallel via util::ParallelFor — sorting is the only
// commutative step, appending stays strictly front-ordered. (t, machine)
// keys are unique within a front, so the sort order — and thus the output
// — is identical however the sorting is scheduled.
//
// Buffered blocks are either owned (heap TraceBlocks, handed back through
// the recycle callback once fully consumed — the pipelined engine returns
// them to per-shard pools) or borrowed views (the pull model's reader
// scratch, valid until the caller invalidates it after Advance returns).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "labmon/trace/block.hpp"
#include "labmon/util/function_ref.hpp"

namespace labmon::trace {

class MergeFrontier {
 public:
  /// Sealed merged block consumer. The block reference stays owned by the
  /// frontier but the callee may swap its contents away (e.g. with a
  /// cleared pooled block) — the frontier clears and reuses it afterwards.
  using EmitFn = util::FunctionRef<void(TraceBlock&)>;
  /// Receives fully-consumed owned blocks for recycling (never views).
  using RecycleFn =
      util::FunctionRef<void(std::size_t part, std::unique_ptr<TraceBlock>)>;

  MergeFrontier(std::size_t part_count, std::size_t machine_count,
                std::size_t block_samples);

  /// Buffers the next owned block of `part`. Blocks of one part must
  /// arrive in that part's stream order; parts interleave arbitrarily.
  void Append(std::size_t part, std::unique_ptr<TraceBlock> block);
  /// Buffers a borrowed block. The pointer must stay valid until after
  /// the Advance() call that consumes the block's last row returns.
  void AppendView(std::size_t part, const TraceBlock* block);
  /// Marks `part`'s stream complete (no further Append for it).
  void FinishPart(std::size_t part);

  /// Merges every iteration front the buffered streams can complete,
  /// sealing merged blocks into `emit` and handing consumed owned blocks
  /// to `recycle`. With `sort_workers` > 1 and several ready fronts, the
  /// per-front key sorts run in parallel. Returns the number of fronts
  /// merged. After the last part finishes, the trailing partial block is
  /// flushed and finished() turns true.
  std::size_t Advance(EmitFn emit, RecycleFn recycle,
                      std::size_t sort_workers = 1);

  /// True once every part finished and the merged stream is fully emitted.
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  /// The part the last Advance() stalled on (meaningful when Advance
  /// returned without finishing): its next block unblocks the merge.
  [[nodiscard]] std::size_t stalled_part() const noexcept {
    return stalled_part_;
  }
  /// Input blocks currently buffered (the merge lag behind collection).
  [[nodiscard]] std::size_t buffered_blocks() const noexcept {
    return buffered_blocks_;
  }
  /// Merged iteration metadata accumulated so far.
  [[nodiscard]] const std::vector<IterationInfo>& iterations() const noexcept {
    return iterations_;
  }
  /// Moves the accumulated iteration metadata out (call once, after
  /// finished()).
  [[nodiscard]] std::vector<IterationInfo> TakeIterations() noexcept {
    return std::move(iterations_);
  }
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }
  [[nodiscard]] std::uint64_t blocks() const noexcept { return blocks_; }

 private:
  struct Slot {
    std::unique_ptr<TraceBlock> owned;  ///< null for borrowed views
    const TraceBlock* view = nullptr;   ///< always valid while buffered
  };
  struct Part {
    std::deque<Slot> slots;
    std::size_t idx = 0;     ///< sample cursor within the head block
    std::size_t it_idx = 0;  ///< iteration cursor within the head block
    bool done = false;
  };
  /// A staged sample row: sort key + source location. `src` is stable for
  /// the whole batch (heap block or caller-held view); consumed slots are
  /// retired only after the batch's append phase.
  struct Key {
    std::int64_t t;
    std::uint32_t machine;
    const TraceBlock* src;
    std::uint32_t idx;
  };
  enum class Scan : std::uint8_t { kReady, kStalled, kExhausted };

  /// Pops fully-consumed head blocks of `part` onto the retired list.
  void RetireExhausted(std::size_t part);
  /// Checks whether the next front is decidable with the buffered state.
  Scan CheckReady();
  /// Gathers the next front's keys into batch_keys_ (consuming cursors);
  /// records the key range and the front's IterationInfo (if any).
  void GatherFront();
  void Seal(EmitFn emit);

  std::vector<Part> parts_;
  const std::size_t block_samples_;
  TraceStore builder_;
  TraceBlock sealed_;

  std::uint64_t next_front_ = 0;
  // Readiness scan state, persisted across stalls: parts below scan_pos_
  // are verified ready for front next_front_ (Append never revokes
  // readiness, so a stalled scan resumes where it left off).
  std::size_t scan_pos_ = 0;
  bool scan_content_ = false;
  std::size_t stalled_part_ = 0;
  bool finished_ = false;

  std::vector<Key> batch_keys_;
  std::vector<std::pair<std::size_t, std::size_t>> batch_ranges_;
  /// IterationInfo per batched front; .attempts == 0 && !valid marker is
  /// avoided by a parallel validity vector (a front can have no records).
  std::vector<IterationInfo> batch_infos_;
  std::vector<char> batch_has_info_;
  std::vector<std::pair<std::size_t, std::unique_ptr<TraceBlock>>> retired_;

  std::vector<IterationInfo> iterations_;
  std::uint64_t samples_ = 0;
  std::uint64_t blocks_ = 0;
  std::size_t buffered_blocks_ = 0;
};

}  // namespace labmon::trace
