// TraceStore — the collected monitoring trace.
//
// Stores every *successful* sample (the paper's 583,653 rows) plus
// per-iteration metadata, so attempt counts and response rates are exact
// without storing a row per timeout. Supports CSV round-trip for
// persistence and external analysis.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "labmon/trace/sample_record.hpp"
#include "labmon/util/expected.hpp"

namespace labmon::trace {

/// Metadata of one coordinator iteration.
struct IterationInfo {
  std::uint64_t iteration = 0;
  std::int64_t start_t = 0;
  std::int64_t end_t = 0;
  std::uint32_t attempts = 0;
  std::uint32_t successes = 0;
};

class TraceStore {
 public:
  explicit TraceStore(std::size_t machine_count = 0)
      : machine_count_(machine_count) {}

  void Reserve(std::size_t samples) { samples_.reserve(samples); }

  /// Appends a successful sample (must be time-ordered per machine).
  void Append(SampleRecord record);
  /// Appends iteration metadata (in iteration order).
  void AppendIteration(IterationInfo info);

  [[nodiscard]] std::size_t machine_count() const noexcept {
    return machine_count_;
  }
  void set_machine_count(std::size_t n) noexcept { machine_count_ = n; }

  [[nodiscard]] std::span<const SampleRecord> samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::span<const IterationInfo> iterations() const noexcept {
    return iterations_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] std::uint64_t TotalAttempts() const noexcept;

  /// Indices of one machine's samples, in time order.
  [[nodiscard]] std::span<const std::uint32_t> MachineSamples(
      std::size_t machine) const;

  /// Per-machine response (success) counts.
  [[nodiscard]] std::vector<std::uint32_t> ResponsesPerMachine() const;

  /// Serialises all samples to CSV text (with header).
  [[nodiscard]] std::string SamplesToCsv() const;
  /// Serialises iteration metadata to CSV text.
  [[nodiscard]] std::string IterationsToCsv() const;

  /// Parses a store back from the two CSV documents.
  [[nodiscard]] static util::Result<TraceStore> FromCsv(
      const std::string& samples_csv, const std::string& iterations_csv,
      std::size_t machine_count);

 private:
  void EnsureIndex() const;

  std::size_t machine_count_;
  std::vector<SampleRecord> samples_;
  std::vector<IterationInfo> iterations_;
  mutable std::vector<std::vector<std::uint32_t>> per_machine_;  ///< lazy
  mutable bool index_dirty_ = true;
};

}  // namespace labmon::trace
