// TraceStore — the collected monitoring trace.
//
// Stores every *successful* sample (the paper's 583,653 rows) plus
// per-iteration metadata, so attempt counts and response rates are exact
// without storing a row per timeout. Supports CSV round-trip for
// persistence and external analysis.
//
// Storage is columnar (structure-of-arrays): each probe field lives in its
// own contiguous vector, so an analysis pass that touches two or three
// fields of 10^5..10^6 samples streams only those columns through the
// cache instead of 100+-byte rows. User names are interned into a string
// table and referenced by id. The row-oriented API (`samples()`,
// `Sample(i)`) is preserved as a gather layer for convenience and
// compatibility; hot paths should read `columns()` directly.
//
// The per-machine sample index is maintained eagerly on Append. Reads
// (`MachineSamples`, `ResponsesPerMachine`, `columns()`) never mutate the
// store, so a fully-collected trace is safe to share across analysis
// threads without synchronisation. (The previous lazy `EnsureIndex`
// rebuild was a data race when first touched under util::ParallelFor.)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "labmon/trace/sample_record.hpp"
#include "labmon/util/expected.hpp"

namespace labmon::trace {

/// Metadata of one coordinator iteration.
struct IterationInfo {
  std::uint64_t iteration = 0;
  std::int64_t start_t = 0;
  std::int64_t end_t = 0;
  std::uint32_t attempts = 0;
  std::uint32_t successes = 0;
};

class TraceStore {
 public:
  /// Sentinel user id of samples without an interactive session.
  static constexpr std::uint32_t kNoUser = 0xffffffffu;

  /// The columnar sample storage, one vector per probe field, all of
  /// length size(). Append order (chronological, iteration-major).
  struct Columns {
    std::vector<std::uint32_t> machine;
    std::vector<std::uint32_t> iteration;
    std::vector<std::int64_t> t;
    std::vector<std::int64_t> boot_time;
    std::vector<std::int64_t> uptime_s;
    std::vector<double> cpu_idle_s;
    std::vector<std::uint16_t> ram_mb;
    std::vector<std::uint8_t> mem_load_pct;
    std::vector<std::uint8_t> swap_load_pct;
    std::vector<std::uint64_t> disk_total_b;
    std::vector<std::uint64_t> disk_free_b;
    std::vector<std::uint64_t> smart_power_on_hours;
    std::vector<std::uint64_t> smart_power_cycles;
    std::vector<std::uint64_t> net_sent_b;
    std::vector<std::uint64_t> net_recv_b;
    std::vector<std::uint8_t> has_session;    ///< 0/1 flag column
    std::vector<std::int64_t> session_logon;  ///< 0 when no session
    std::vector<std::uint32_t> user_id;       ///< kNoUser when no session
  };

  /// Visits every column of `Columns` as a member pointer, in the canonical
  /// (wire/append) order. The single source of truth for "what columns
  /// exist": Reserve, AppendFrom, the block/segment codecs and the stream
  /// hash all iterate this list, so adding a column here updates every
  /// column-generic path at once instead of hand-maintained copies.
  template <typename Visitor>
  static constexpr void ForEachColumn(Visitor&& v) {
    v(&Columns::machine);
    v(&Columns::iteration);
    v(&Columns::t);
    v(&Columns::boot_time);
    v(&Columns::uptime_s);
    v(&Columns::cpu_idle_s);
    v(&Columns::ram_mb);
    v(&Columns::mem_load_pct);
    v(&Columns::swap_load_pct);
    v(&Columns::disk_total_b);
    v(&Columns::disk_free_b);
    v(&Columns::smart_power_on_hours);
    v(&Columns::smart_power_cycles);
    v(&Columns::net_sent_b);
    v(&Columns::net_recv_b);
    v(&Columns::has_session);
    v(&Columns::session_logon);
    v(&Columns::user_id);
  }

  explicit TraceStore(std::size_t machine_count = 0)
      : machine_count_(machine_count) {}

  void Reserve(std::size_t samples);

  /// Appends a successful sample (must be time-ordered per machine).
  /// Not thread-safe: collection is single-writer by design.
  void Append(const SampleRecord& record);
  /// Appends iteration metadata (in iteration order).
  void AppendIteration(IterationInfo info);

  /// Interns `user` exactly as Append does and returns its id — for bulk
  /// columnar appends (MergeTraces) that translate source-store user ids
  /// themselves instead of re-hashing the string per sample.
  [[nodiscard]] std::uint32_t InternUserId(const std::string& user) {
    return InternUser(user);
  }
  /// Columnar append of sample `i` of `src`, with `user_id` already
  /// translated into *this* store's table (kNoUser = no session). Skips
  /// the row gather + string re-intern of Append; the resulting store is
  /// byte-identical to appending the gathered SampleRecord.
  void AppendFrom(const Columns& src, std::size_t i, std::uint32_t user_id);

  /// Drops all samples, iterations and interned users but keeps the
  /// machine count — the spilling sink's "seal a block, start the next"
  /// reset. Column capacity is retained so steady-state block collection
  /// does not re-allocate.
  void ClearSamples();

  [[nodiscard]] std::size_t machine_count() const noexcept {
    return machine_count_;
  }
  void set_machine_count(std::size_t n) noexcept { machine_count_ = n; }

  [[nodiscard]] std::size_t size() const noexcept {
    return columns_.t.size();
  }
  [[nodiscard]] const Columns& columns() const noexcept { return columns_; }
  [[nodiscard]] std::span<const IterationInfo> iterations() const noexcept {
    return iterations_;
  }
  [[nodiscard]] std::uint64_t TotalAttempts() const noexcept;

  /// Gathers sample i back into a row (copies the interned user string).
  [[nodiscard]] SampleRecord Sample(std::size_t i) const;

  /// Interned user name of sample i ("" when no session).
  [[nodiscard]] std::string_view UserOf(std::size_t i) const noexcept;
  /// The interned user string table (index = user id).
  [[nodiscard]] std::span<const std::string> users() const noexcept {
    return users_;
  }

  // --- Column-based per-sample helpers (mirror SampleRecord's methods) ---

  /// Session age of sample i at probe time (0 when no session).
  [[nodiscard]] std::int64_t SessionSeconds(std::size_t i) const noexcept {
    return columns_.has_session[i] ? columns_.t[i] - columns_.session_logon[i]
                                   : 0;
  }
  /// Login-state classification of sample i (paper's 10-hour rule).
  [[nodiscard]] LoginClass Classify(
      std::size_t i,
      std::int64_t threshold_s = kForgottenThresholdSeconds) const noexcept {
    if (!columns_.has_session[i]) return LoginClass::kNoLogin;
    return SessionSeconds(i) >= threshold_s ? LoginClass::kForgotten
                                            : LoginClass::kWithLogin;
  }
  [[nodiscard]] bool CountsAsOccupied(
      std::size_t i,
      std::int64_t threshold_s = kForgottenThresholdSeconds) const noexcept {
    return Classify(i, threshold_s) == LoginClass::kWithLogin;
  }
  [[nodiscard]] std::uint64_t DiskUsedBytes(std::size_t i) const noexcept {
    return columns_.disk_total_b[i] - columns_.disk_free_b[i];
  }
  [[nodiscard]] double FreeRamMb(std::size_t i) const noexcept {
    return columns_.ram_mb[i] * (100.0 - columns_.mem_load_pct[i]) / 100.0;
  }

  /// Row-compat view over the columnar store: iterable, indexable, yields
  /// gathered SampleRecord values. Convenience/IO path — analysis hot
  /// loops should read columns() instead.
  class RowRange {
   public:
    class Iterator {
     public:
      using iterator_category = std::input_iterator_tag;
      using value_type = SampleRecord;
      using difference_type = std::ptrdiff_t;
      using pointer = const SampleRecord*;
      using reference = SampleRecord;

      Iterator(const TraceStore* store, std::size_t i)
          : store_(store), i_(i) {}
      [[nodiscard]] SampleRecord operator*() const {
        return store_->Sample(i_);
      }
      Iterator& operator++() {
        ++i_;
        return *this;
      }
      Iterator operator++(int) {
        Iterator copy = *this;
        ++i_;
        return copy;
      }
      [[nodiscard]] bool operator==(const Iterator& other) const noexcept {
        return i_ == other.i_;
      }
      [[nodiscard]] bool operator!=(const Iterator& other) const noexcept {
        return i_ != other.i_;
      }

     private:
      const TraceStore* store_;
      std::size_t i_;
    };

    [[nodiscard]] std::size_t size() const noexcept { return store_->size(); }
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }
    [[nodiscard]] SampleRecord operator[](std::size_t i) const {
      return store_->Sample(i);
    }
    [[nodiscard]] Iterator begin() const noexcept {
      return Iterator(store_, 0);
    }
    [[nodiscard]] Iterator end() const noexcept {
      return Iterator(store_, store_->size());
    }

   private:
    friend class TraceStore;
    explicit RowRange(const TraceStore* store) : store_(store) {}
    const TraceStore* store_;
  };

  /// Row view of all samples (gathered on access).
  [[nodiscard]] RowRange samples() const noexcept { return RowRange(this); }

  /// Indices of one machine's samples, in time order. The index is built
  /// eagerly on Append, so this is a pure read (thread-safe on an
  /// immutable store).
  [[nodiscard]] std::span<const std::uint32_t> MachineSamples(
      std::size_t machine) const noexcept;

  /// Per-machine response (success) counts.
  [[nodiscard]] std::vector<std::uint32_t> ResponsesPerMachine() const;

  /// Serialises all samples to CSV text (with header).
  [[nodiscard]] std::string SamplesToCsv() const;
  /// Serialises iteration metadata to CSV text.
  [[nodiscard]] std::string IterationsToCsv() const;

  /// Parses a store back from the two CSV documents.
  [[nodiscard]] static util::Result<TraceStore> FromCsv(
      const std::string& samples_csv, const std::string& iterations_csv,
      std::size_t machine_count);

 private:
  [[nodiscard]] std::uint32_t InternUser(const std::string& user);

  std::size_t machine_count_;
  Columns columns_;
  std::vector<IterationInfo> iterations_;
  std::vector<std::string> users_;
  std::unordered_map<std::string, std::uint32_t> user_ids_;
  std::vector<std::vector<std::uint32_t>> per_machine_;  ///< eager index
};

}  // namespace labmon::trace
