// Compact binary trace format ("LMTR1").
//
// A 77-day trace holds ~580 k samples; as CSV that is ~70 MB. This format
// delta-encodes every numeric field against the machine's previous sample
// (timestamps, cumulative counters and near-constant levels all shrink to
// one or two bytes) and interns usernames in a string table, giving ~10x
// smaller files with exact round-trip fidelity.
//
// Layout:
//   magic "LMTR1"
//   varint machine_count, sample_count, iteration_count, user_count
//   user table: per user { varint len, bytes }
//   samples (in global append order): per sample, varint/zigzag deltas
//     against that machine's previous sample
//   iterations: delta-coded metadata rows
#pragma once

#include <string>
#include <string_view>

#include "labmon/trace/trace_store.hpp"
#include "labmon/util/expected.hpp"

namespace labmon::trace {

/// Serialises the full store (samples + iteration metadata).
[[nodiscard]] std::string SerializeTrace(const TraceStore& store);

/// Parses a binary trace; verifies magic, bounds and counts.
[[nodiscard]] util::Result<TraceStore> DeserializeTrace(
    std::string_view bytes);

/// Writes/reads a binary trace file.
[[nodiscard]] util::Result<bool> WriteTraceFile(const std::string& path,
                                                const TraceStore& store);
[[nodiscard]] util::Result<TraceStore> ReadTraceFile(const std::string& path);

}  // namespace labmon::trace
