// DerivedTrace — intervals, machine sessions, and interactive spans
// computed from a collected TraceStore exactly once.
//
// Every analysis in the paper consumes one or more of these derivations;
// before this class each analysis re-derived what it needed (core::Report
// reconstructed the session list twice). A DerivedTrace derives them
// eagerly at construction — machine-major, serially or in parallel with
// bit-identical results — and is immutable afterwards, so it can be
// shared freely across analysis threads. Intervals are stored as columns
// (IntervalColumns) so each analysis streams only the fields it reads.
//
// Interval *geometry* (endpoints, idleness, rates) is independent of the
// forgotten-login threshold; only the classification depends on it. The
// stored `login_class` is baked at the construction threshold, and
// IntervalClass() re-classifies under any other threshold from the
// endpoint sample indices (used by the §5.4 equivalence analysis, which
// splits on raw presence, and the session-hours profile).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "labmon/obs/registry.hpp"
#include "labmon/trace/intervals.hpp"
#include "labmon/trace/sessions.hpp"
#include "labmon/trace/trace_store.hpp"
#include "labmon/util/raw_buffer.hpp"

namespace labmon::trace {

struct DerivedTraceOptions {
  IntervalOptions intervals;
  /// Worker threads for derivation (0 = hardware concurrency).
  std::size_t workers = 0;
  /// Optional metrics sink for derivation counters (null = none).
  obs::Registry* metrics = nullptr;
};

/// Columnar (SoA) interval storage, machine-major then time-ordered —
/// the same layout rationale as TraceStore::Columns: every analysis
/// touches only the fields it needs, so a sweep streams a few tight
/// arrays instead of pulling each 64-byte SampleInterval record through
/// the cache for one or two of its fields.
struct IntervalColumns {
  IntervalColumns() = default;
  explicit IntervalColumns(std::size_t n)
      : machine(n),
        start_index(n),
        end_index(n),
        start_t(n),
        end_t(n),
        cpu_idle_pct(n),
        sent_bps(n),
        recv_bps(n),
        login_class(n) {}

  util::RawBuffer<std::uint32_t> machine;
  util::RawBuffer<std::uint32_t> start_index;  ///< opening sample index
  util::RawBuffer<std::uint32_t> end_index;    ///< closing sample index
  util::RawBuffer<std::int64_t> start_t;
  util::RawBuffer<std::int64_t> end_t;
  util::RawBuffer<double> cpu_idle_pct;
  util::RawBuffer<double> sent_bps;
  util::RawBuffer<double> recv_bps;
  util::RawBuffer<std::uint8_t> login_class;  ///< at derivation threshold

  [[nodiscard]] std::size_t size() const noexcept { return end_t.size(); }
};

/// Half-open index range into the interval columns (one machine's slice).
struct IntervalRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return begin == end; }
};

class DerivedTrace {
 public:
  /// Derives everything eagerly. `trace` must outlive the DerivedTrace and
  /// must not be appended to afterwards.
  explicit DerivedTrace(const TraceStore& trace,
                        const DerivedTraceOptions& options = {});

  [[nodiscard]] const TraceStore& trace() const noexcept { return *trace_; }
  [[nodiscard]] const IntervalOptions& interval_options() const noexcept {
    return options_.intervals;
  }

  /// Columnar view of all intervals, machine-major then time-ordered
  /// (field-for-field identical to DeriveIntervals on the same store).
  [[nodiscard]] const IntervalColumns& interval_columns() const noexcept {
    return interval_columns_;
  }
  [[nodiscard]] std::size_t interval_count() const noexcept {
    return interval_columns_.size();
  }
  /// Index range of one machine's intervals within the columns.
  [[nodiscard]] IntervalRange MachineIntervalRange(
      std::size_t machine) const noexcept {
    if (machine + 1 >= interval_offsets_.size()) return {};
    return {interval_offsets_[machine], interval_offsets_[machine + 1]};
  }
  /// Gathers interval `i` back into record form (convenience for callers
  /// that want whole records; sweeps should read the columns directly).
  [[nodiscard]] SampleInterval Interval(std::size_t i) const noexcept {
    SampleInterval interval;
    interval.machine = interval_columns_.machine[i];
    interval.start_index = interval_columns_.start_index[i];
    interval.end_index = interval_columns_.end_index[i];
    interval.start_t = interval_columns_.start_t[i];
    interval.end_t = interval_columns_.end_t[i];
    interval.cpu_idle_pct = interval_columns_.cpu_idle_pct[i];
    interval.sent_bps = interval_columns_.sent_bps[i];
    interval.recv_bps = interval_columns_.recv_bps[i];
    interval.login_class =
        static_cast<LoginClass>(interval_columns_.login_class[i]);
    return interval;
  }

  /// All machine sessions, ordered by (machine, boot time) — identical to
  /// ReconstructSessions on the same store.
  [[nodiscard]] std::span<const MachineSession> sessions() const noexcept {
    return sessions_;
  }
  [[nodiscard]] std::span<const MachineSession> MachineSessions(
      std::size_t machine) const noexcept {
    return Slice(std::span<const MachineSession>(sessions_), session_offsets_,
                 machine);
  }

  /// All interactive login spans — identical to
  /// ReconstructInteractiveSpans on the same store.
  [[nodiscard]] std::span<const InteractiveSpan> interactive_spans()
      const noexcept {
    return spans_;
  }
  [[nodiscard]] std::span<const InteractiveSpan> MachineInteractiveSpans(
      std::size_t machine) const noexcept {
    return Slice(std::span<const InteractiveSpan>(spans_), span_offsets_,
                 machine);
  }

  /// Classification of sample i under an arbitrary threshold. The class at
  /// the derivation threshold is baked into a byte column during the
  /// derivation scan, so the common case is a single load instead of
  /// re-deriving from three session columns. Other thresholds still
  /// resolve from the byte when ordering decides the answer: a session
  /// is present or absent regardless of threshold, shorter-than-baked
  /// stays kWithLogin under any larger threshold (including the
  /// kNoForgottenThreshold sentinel), longer-than-baked stays kForgotten
  /// under any smaller one.
  [[nodiscard]] LoginClass SampleClass(std::size_t i,
                                       std::int64_t threshold_s) const noexcept {
    const auto baked = static_cast<LoginClass>(sample_classes_[i]);
    if (baked == LoginClass::kNoLogin) return baked;
    const std::int64_t baked_threshold =
        options_.intervals.forgotten_threshold_s;
    if (baked == LoginClass::kWithLogin
            ? threshold_s >= baked_threshold
            : threshold_s <= baked_threshold) {
      return baked;
    }
    return trace_->Classify(i, threshold_s);
  }

  /// Classification of an interval under an arbitrary threshold. Returns
  /// the baked class when the threshold matches the derivation options.
  [[nodiscard]] LoginClass IntervalClass(
      const SampleInterval& interval, std::int64_t threshold_s) const noexcept {
    if (threshold_s == options_.intervals.forgotten_threshold_s) {
      return interval.login_class;
    }
    return ClassifyInterval(*trace_, interval.start_index, interval.end_index,
                            threshold_s);
  }

  /// IntervalClass by column index: a single byte load at the derivation
  /// threshold, endpoint re-classification (through the baked sample
  /// bytes, same "either endpoint occupied" rule as ClassifyInterval)
  /// otherwise.
  [[nodiscard]] LoginClass IntervalClassAt(
      std::size_t i, std::int64_t threshold_s) const noexcept {
    if (threshold_s == options_.intervals.forgotten_threshold_s) {
      return static_cast<LoginClass>(interval_columns_.login_class[i]);
    }
    const auto class_b =
        SampleClass(interval_columns_.end_index[i], threshold_s);
    if (class_b == LoginClass::kWithLogin) return class_b;
    const auto class_a =
        SampleClass(interval_columns_.start_index[i], threshold_s);
    return class_a == LoginClass::kWithLogin ? class_a : class_b;
  }

 private:
  template <typename T>
  [[nodiscard]] static std::span<const T> Slice(
      std::span<const T> flat, const std::vector<std::size_t>& offsets,
      std::size_t machine) noexcept {
    if (machine + 1 >= offsets.size()) return {};
    return flat.subspan(offsets[machine],
                        offsets[machine + 1] - offsets[machine]);
  }

  const TraceStore* trace_;
  DerivedTraceOptions options_;
  std::vector<std::uint8_t> sample_classes_;  ///< LoginClass at derivation thr.
  IntervalColumns interval_columns_;
  std::vector<std::size_t> interval_offsets_;  ///< machine_count()+1 fenceposts
  std::vector<MachineSession> sessions_;
  std::vector<std::size_t> session_offsets_;
  std::vector<InteractiveSpan> spans_;
  std::vector<std::size_t> span_offsets_;
};

}  // namespace labmon::trace
