// Flattened successful-probe record — the rows of the study's trace.
#pragma once

#include <cstdint>
#include <string>

#include "labmon/ddc/w32_probe.hpp"
#include "labmon/util/time.hpp"

namespace labmon::trace {

/// The paper's forgotten-login threshold: samples whose interactive session
/// is >= 10 h old are treated as captured on non-occupied machines (§4.2).
inline constexpr std::int64_t kForgottenThresholdSeconds = 10 * 3600;

/// Sentinel threshold disabling reclassification entirely (raw login state).
inline constexpr std::int64_t kNoForgottenThreshold =
    std::int64_t{1} << 62;

/// Login-state classification of a sample.
enum class LoginClass : std::uint8_t {
  kNoLogin = 0,     ///< no interactive session
  kWithLogin = 1,   ///< session younger than the threshold
  kForgotten = 2,   ///< session >= threshold: counted as no-login (§4.2)
};

/// One successful probe execution, flattened for analysis.
struct SampleRecord {
  std::uint32_t machine = 0;
  std::uint32_t iteration = 0;
  std::int64_t t = 0;  ///< execution instant

  std::int64_t boot_time = 0;
  std::int64_t uptime_s = 0;
  double cpu_idle_s = 0.0;
  std::uint16_t ram_mb = 0;      ///< installed RAM (static metric)
  std::uint8_t mem_load_pct = 0;
  std::uint8_t swap_load_pct = 0;
  std::uint64_t disk_total_b = 0;
  std::uint64_t disk_free_b = 0;
  std::uint64_t smart_power_on_hours = 0;
  std::uint64_t smart_power_cycles = 0;
  std::uint64_t net_sent_b = 0;
  std::uint64_t net_recv_b = 0;
  bool has_session = false;
  std::int64_t session_logon = 0;
  std::string user;

  /// Session age at probe time (0 when no session).
  [[nodiscard]] std::int64_t SessionSeconds() const noexcept {
    return has_session ? t - session_logon : 0;
  }

  /// Classification with a configurable threshold (the paper uses 10 h).
  [[nodiscard]] LoginClass Classify(
      std::int64_t threshold_s = kForgottenThresholdSeconds) const noexcept {
    if (!has_session) return LoginClass::kNoLogin;
    return SessionSeconds() >= threshold_s ? LoginClass::kForgotten
                                           : LoginClass::kWithLogin;
  }

  /// True when the sample counts as "occupied" under the paper's rule.
  [[nodiscard]] bool CountsAsOccupied(
      std::int64_t threshold_s = kForgottenThresholdSeconds) const noexcept {
    return Classify(threshold_s) == LoginClass::kWithLogin;
  }

  [[nodiscard]] std::uint64_t DiskUsedBytes() const noexcept {
    return disk_total_b - disk_free_b;
  }

  /// Unused (available) main memory in MB at sample time.
  [[nodiscard]] double FreeRamMb() const noexcept {
    return ram_mb * (100.0 - mem_load_pct) / 100.0;
  }
};

/// Builds a record from parsed probe output.
[[nodiscard]] SampleRecord MakeRecord(std::uint32_t machine,
                                      std::uint32_t iteration, std::int64_t t,
                                      const ddc::W32Sample& sample);

}  // namespace labmon::trace
