// FunctionRef — a non-owning, trivially-copyable reference to a callable
// (the C++26 std::function_ref shape). Used on synchronous hot paths where
// std::function's type erasure would cost an allocation and an opaque
// indirect call: parallel loops, interval scans, per-sample visitors.
//
// The referenced callable must outlive the FunctionRef; this is only safe
// for "call me back before I return" APIs, which is exactly what the
// parallel helpers and trace scans are.
#pragma once

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace labmon::util {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Null reference; calling it is undefined. Test with operator bool —
  /// callback slots that are optional (e.g. the coordinator's advance hook)
  /// need a "not set" state just like std::function's empty state.
  FunctionRef() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function_ref — lambdas bind at call sites without ceremony.
  FunctionRef(F&& f) noexcept
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* object, Args... args) -> R {
          return std::invoke(
              *static_cast<std::add_pointer_t<std::remove_reference_t<F>>>(
                  object),
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(object_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return call_ != nullptr;
  }

 private:
  void* object_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace labmon::util
