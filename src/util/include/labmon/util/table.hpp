// ASCII table rendering for bench harness output: every reproduced paper
// table/figure prints "paper vs measured" rows through this.
#pragma once

#include <string>
#include <vector>

namespace labmon::util {

/// Column alignment inside an AsciiTable.
enum class Align { kLeft, kRight };

/// Builds monospace tables like:
///
///   +----------+---------+----------+
///   | Metric   |   Paper | Measured |
///   +----------+---------+----------+
///   | CPU idle |    97.9 |     97.6 |
///   +----------+---------+----------+
class AsciiTable {
 public:
  explicit AsciiTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; column count is fixed from here on.
  void SetHeader(std::vector<std::string> header);
  /// Per-column alignment (defaults: first column left, others right).
  void SetAlignments(std::vector<Align> alignments);
  /// Appends a body row; must match the header's column count (short rows
  /// are padded with empty cells).
  void AddRow(std::vector<std::string> row);
  /// Appends a horizontal separator between body rows.
  void AddSeparator();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the full table (including trailing newline).
  [[nodiscard]] std::string Render() const;

 private:
  struct RowEntry {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<RowEntry> rows_;
};

}  // namespace labmon::util
