// Simulated-time utilities for the labmon experiment clock.
//
// The experiment clock counts whole seconds from an epoch defined as
// *Monday 00:00:00* of the first monitored week (the paper notes its plots'
// x-axis labels denote Mondays, so every civil-time computation here is
// anchored the same way). No time zones, no DST: classroom timetables in the
// paper are expressed in local wall-clock time and so are we.
#pragma once

#include <cstdint>
#include <string>

namespace labmon::util {

/// Seconds since the experiment epoch (Monday 00:00:00 of week 0).
using SimTime = std::int64_t;

inline constexpr SimTime kSecondsPerMinute = 60;
inline constexpr SimTime kSecondsPerHour = 60 * kSecondsPerMinute;
inline constexpr SimTime kSecondsPerDay = 24 * kSecondsPerHour;
inline constexpr SimTime kSecondsPerWeek = 7 * kSecondsPerDay;

/// Days of the week; the experiment epoch falls on a Monday.
enum class DayOfWeek : int {
  kMonday = 0,
  kTuesday = 1,
  kWednesday = 2,
  kThursday = 3,
  kFriday = 4,
  kSaturday = 5,
  kSunday = 6,
};

/// Three-letter English day name ("Mon", ...).
[[nodiscard]] const char* DayName(DayOfWeek dow) noexcept;

/// Broken-down civil time relative to the experiment epoch.
struct CivilTime {
  int day = 0;            ///< whole days since epoch (day 0 = first Monday)
  int week = 0;           ///< whole weeks since epoch
  DayOfWeek dow = DayOfWeek::kMonday;
  int hour = 0;           ///< [0, 24)
  int minute = 0;         ///< [0, 60)
  int second = 0;         ///< [0, 60)
  int minute_of_day = 0;  ///< [0, 1440)
  int minute_of_week = 0; ///< [0, 10080)
};

/// Breaks a simulation instant into civil components. `t` must be >= 0.
[[nodiscard]] CivilTime ToCivil(SimTime t) noexcept;

/// Builds an instant from civil components ("day 12 at 14:30:00").
[[nodiscard]] SimTime MakeTime(int day, int hour, int minute = 0,
                               int second = 0) noexcept;

/// Instant of `dow` in week `week` at the given wall-clock time.
[[nodiscard]] SimTime MakeWeekTime(int week, DayOfWeek dow, int hour,
                                   int minute = 0, int second = 0) noexcept;

/// Day-of-week of an instant.
[[nodiscard]] DayOfWeek DayOfWeekOf(SimTime t) noexcept;

/// Fractional hour of day in [0, 24) — convenient for intensity curves.
[[nodiscard]] double HourOfDay(SimTime t) noexcept;

/// True when `t` falls on Saturday or Sunday.
[[nodiscard]] bool IsWeekend(SimTime t) noexcept;

/// Renders a duration as a compact mixed unit string, e.g. "15h55m",
/// "3d02h", "42s". Negative durations are prefixed with '-'.
[[nodiscard]] std::string FormatDuration(SimTime seconds);

/// Renders an instant as "D012 Tue 14:30:00".
[[nodiscard]] std::string FormatTimestamp(SimTime t);

}  // namespace labmon::util
