// RawBuffer — owning *uninitialized* storage for trivially-destructible
// element types.
//
// std::vector<T>::resize(n) value-initializes every element, which for a
// multi-megabyte buffer is a full zeroing sweep over memory that is about
// to be overwritten anyway (tens of milliseconds for the ~35 MB interval
// vector of a semester-long trace). RawBuffer allocates raw storage and
// leaves element creation to the caller: every slot must be created with
// std::construct_at (or equivalent placement-new) before it is first
// read. Destruction is a plain deallocation, hence the trivially-
// destructible requirement.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>

namespace labmon::util {

template <typename T>
class RawBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "RawBuffer never runs element destructors");

 public:
  RawBuffer() = default;
  explicit RawBuffer(std::size_t size)
      : data_(size != 0 ? std::allocator<T>().allocate(size) : nullptr),
        size_(size) {}

  RawBuffer(RawBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  RawBuffer& operator=(RawBuffer&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  RawBuffer(const RawBuffer&) = delete;
  RawBuffer& operator=(const RawBuffer&) = delete;
  ~RawBuffer() { Reset(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  /// View of the buffer; only valid once every element has been created.
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_, size_};
  }

 private:
  void Reset() noexcept {
    if (data_ != nullptr) {
      std::allocator<T>().deallocate(data_, size_);
    }
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace labmon::util
