// Minimal INI reader: `[section]` headers, `key = value` pairs, `#`/`;`
// comments. Backs scenario files for the workload configuration
// (workload::LoadCampusConfig) so experiments can be re-parameterised
// without recompiling.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "labmon/util/expected.hpp"

namespace labmon::util {

/// A parsed INI document. Keys are addressed as "section.key" (keys before
/// any section header live in the "" section and are addressed bare).
class IniFile {
 public:
  /// Parses INI text; fails on malformed lines (no '=' outside a comment,
  /// unterminated section header).
  [[nodiscard]] static Result<IniFile> Parse(const std::string& text);
  /// Reads and parses a file.
  [[nodiscard]] static Result<IniFile> Load(const std::string& path);

  /// Raw string lookup ("section.key"), nullopt when absent.
  [[nodiscard]] std::optional<std::string> Get(const std::string& key) const;
  /// Typed lookups: return `fallback` when the key is absent, and an error
  /// via `ok=false` (if provided) when present but unparsable.
  [[nodiscard]] double GetDouble(const std::string& key, double fallback,
                                 bool* ok = nullptr) const;
  [[nodiscard]] std::int64_t GetInt(const std::string& key,
                                    std::int64_t fallback,
                                    bool* ok = nullptr) const;
  [[nodiscard]] bool GetBool(const std::string& key, bool fallback,
                             bool* ok = nullptr) const;

  /// All "section.key" names present (document order).
  [[nodiscard]] const std::vector<std::string>& keys() const noexcept {
    return keys_;
  }

 private:
  std::vector<std::string> keys_;
  std::vector<std::string> values_;
};

}  // namespace labmon::util
