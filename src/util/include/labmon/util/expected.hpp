// Minimal Result<T> error-or-value type (libstdc++ 12 lacks std::expected).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace labmon::util {

/// Lightweight error payload: a human-readable message.
struct Error {
  std::string message;
};

/// Value-or-error, in the spirit of std::expected<T, Error>.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}        // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Result Err(std::string message) {
    return Result(Error{std::move(message)});
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const std::string& error() const {
    assert(!ok());
    return std::get<Error>(data_).message;
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace labmon::util
