// Tiny leveled logger. Default level is kWarn so library code stays quiet in
// tests; examples/bench raise it explicitly. Output goes to stderr unless a
// sink is installed (tests capture warnings; labmon::obs routes log events
// into its JSONL exporter).
#pragma once

#include <functional>
#include <string_view>

namespace labmon::util::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold (thread-safe).
void SetLevel(Level level) noexcept;
[[nodiscard]] Level GetLevel() noexcept;

/// Receives every message that passes the threshold.
using Sink = std::function<void(Level, std::string_view)>;

/// Replaces the stderr default with `sink`; pass an empty function to
/// restore stderr. Thread-safe; the sink runs under the emit lock, so it
/// must not log recursively.
void SetSink(Sink sink);

/// Emits a message to the sink (stderr by default) when `level` >= the
/// global threshold.
void Emit(Level level, std::string_view message);

/// True when a message at `level` would be emitted. Hot paths use this to
/// skip building the message string when logging is disabled.
[[nodiscard]] inline bool Enabled(Level level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(GetLevel());
}

inline void Debug(std::string_view m) { Emit(Level::kDebug, m); }
inline void Info(std::string_view m) { Emit(Level::kInfo, m); }
inline void Warn(std::string_view m) { Emit(Level::kWarn, m); }
inline void ErrorMsg(std::string_view m) { Emit(Level::kError, m); }

}  // namespace labmon::util::log
