// Deterministic pseudo-random number generation for the simulator.
//
// Everything stochastic in labmon flows through Rng (xoshiro256** seeded via
// SplitMix64), never through std:: distributions, so a given seed produces an
// identical trace on every platform and compiler. The distribution samplers
// below are hand-rolled for exactly that reason.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>

namespace labmon::util {

/// SplitMix64 — used to expand a single seed into xoshiro state and as a
/// cheap standalone generator for hashing-style uses.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Substream families for DeriveSeed. Each subsystem that hands out
/// per-entity streams owns one tag, so (base seed, entity id) pairs can
/// never collide across subsystems.
namespace seed_stream {
inline constexpr std::uint64_t kTimetable = 1;     ///< campus-wide timetable
inline constexpr std::uint64_t kLabEvents = 2;     ///< per-lab behaviour draws
inline constexpr std::uint64_t kMachineTraits = 3; ///< per-machine temperament
inline constexpr std::uint64_t kCollector = 4;     ///< per-lab DDC transport
inline constexpr std::uint64_t kFaults = 5;        ///< per-lab fault injection
inline constexpr std::uint64_t kHarvest = 6;       ///< harvest chaos + job mixes
}  // namespace seed_stream

/// Derives a statistically independent seed for one entity of one substream
/// family, by chaining SplitMix64 over (base, stream, entity). This is how
/// the sharded simulation replaces a single serial draw order: every lab and
/// machine gets its own stream keyed only by its identity, so the draw
/// sequence an entity sees is invariant under fleet partitioning.
[[nodiscard]] constexpr std::uint64_t DeriveSeed(std::uint64_t base,
                                                 std::uint64_t stream,
                                                 std::uint64_t entity = 0) noexcept {
  SplitMix64 a(base);
  SplitMix64 b(a.Next() ^ stream);
  SplitMix64 c(b.Next() ^ entity);
  return c.Next();
}

/// xoshiro256** 1.0 (Blackman & Vigna) with a suite of distribution
/// samplers. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed1abf001dull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return NextU64(); }

  std::uint64_t NextU64() noexcept;

  /// Derives an independent generator (stream-split); used to give each
  /// machine / lab / subsystem its own deterministic stream.
  [[nodiscard]] Rng Fork() noexcept;

  /// Uniform double in [0, 1).
  double Uniform() noexcept;
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p) noexcept;
  /// Standard normal via Box–Muller (cached spare).
  double StdNormal() noexcept;
  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) noexcept;
  /// Log-normal parameterised by the *underlying* normal's mu/sigma.
  double LogNormal(double mu, double sigma) noexcept;
  /// Log-normal parameterised by the desired mean and stddev of the
  /// log-normal variate itself (solves for mu/sigma). mean > 0.
  double LogNormalMeanStd(double mean, double stddev) noexcept;
  /// Exponential with the given mean (mean = 1/rate). mean > 0.
  double Exponential(double mean) noexcept;
  /// Poisson variate; Knuth's method for small means, normal approximation
  /// above 64 (adequate for arrival counts).
  int Poisson(double mean) noexcept;
  /// Index sampled proportionally to non-negative weights; returns
  /// weights.size() when all weights are zero/empty.
  std::size_t WeightedIndex(std::span<const double> weights) noexcept;
  /// Triangular distribution on [lo, hi] with the given mode.
  double Triangular(double lo, double mode, double hi) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace labmon::util
