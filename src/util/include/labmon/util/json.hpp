// Minimal JSON reader for labmon's own machine-readable artifacts
// (BENCH_*.json, prof reports). Full RFC 8259 value grammar — objects,
// arrays, strings with escapes, numbers, booleans, null — parsed into a
// simple owning tree. Not a streaming parser and not tuned for huge
// documents; the consumers (bench/prof_gate, tests) read kilobyte files.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "labmon/util/expected.hpp"

namespace labmon::util::json {

class Value;
using Array = std::vector<Value>;
/// Ordered map keeps iteration deterministic for tests; transparent
/// comparator lets lookups take string_view without allocating.
using Object = std::map<std::string, Value, std::less<>>;

class Value {
 public:
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };

  Value() = default;                      ///< null
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double n) : type_(Type::kNumber), number_(n) {}
  explicit Value(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject),
        object_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  [[nodiscard]] bool AsBool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double AsNumber(double fallback = 0.0) const noexcept {
    return is_number() ? number_ : fallback;
  }
  [[nodiscard]] const std::string& AsString() const noexcept {
    static const std::string empty;
    return is_string() ? string_ : empty;
  }
  [[nodiscard]] const Array& AsArray() const noexcept {
    static const Array empty;
    return is_array() ? *array_ : empty;
  }
  [[nodiscard]] const Object& AsObject() const noexcept {
    static const Object empty;
    return is_object() ? *object_ : empty;
  }

  /// Object member lookup; returns a null Value when absent or not an
  /// object, so lookups chain without intermediate checks:
  ///   doc["runs"][2]["speedup"].AsNumber()
  [[nodiscard]] const Value& operator[](std::string_view key) const noexcept;
  /// Array element lookup; null Value when out of range.
  [[nodiscard]] const Value& operator[](std::size_t index) const noexcept;

  /// Convenience: member `key` as a number, or `fallback` when missing.
  [[nodiscard]] double Number(std::string_view key,
                              double fallback = 0.0) const noexcept {
    const Value& v = (*this)[key];
    return v.is_number() ? v.number_ : fallback;
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // shared_ptr keeps Value copyable/compact without recursive variant
  // gymnastics; trees are read-only after parse.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses one JSON document (leading/trailing whitespace allowed; anything
/// else after the value is an error). Errors carry byte offsets.
[[nodiscard]] util::Result<Value> Parse(std::string_view text);

}  // namespace labmon::util::json
