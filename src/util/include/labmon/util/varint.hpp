// LEB128-style varint and zigzag coding — the primitives of the binary
// trace format (trace/binary_io). Kept in util so tests can hammer them
// independently.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace labmon::util {

/// Appends an unsigned LEB128 varint (1–10 bytes).
void PutVarint(std::string& out, std::uint64_t value);

/// Same, with a reserve hint: when the buffer is within one varint of its
/// capacity, it grows by at least `reserve_hint` bytes in one step. Encoder
/// hot loops that append millions of varints per block pass the expected
/// section size so the buffer is sized once instead of reallocating along
/// the string's default growth curve.
void PutVarint(std::string& out, std::uint64_t value, std::size_t reserve_hint);

/// Zigzag-maps a signed value and appends it as a varint.
void PutSignedVarint(std::string& out, std::int64_t value);

/// Zigzag + reserve hint (see the PutVarint overload).
void PutSignedVarint(std::string& out, std::int64_t value,
                     std::size_t reserve_hint);

/// Zigzag encode/decode.
[[nodiscard]] constexpr std::uint64_t ZigzagEncode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t ZigzagDecode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Cursor-based reader over an encoded buffer.
class VarintReader {
 public:
  explicit VarintReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}
  explicit VarintReader(const std::string& data) noexcept
      : data_(reinterpret_cast<const std::uint8_t*>(data.data()),
              data.size()) {}
  explicit VarintReader(std::string_view data) noexcept
      : data_(reinterpret_cast<const std::uint8_t*>(data.data()),
              data.size()) {}

  /// Reads one unsigned varint; nullopt on truncation/overlong input.
  [[nodiscard]] std::optional<std::uint64_t> Read() noexcept;
  /// Reads one zigzag-coded signed varint.
  [[nodiscard]] std::optional<std::int64_t> ReadSigned() noexcept;
  /// Reads `n` raw bytes as a string.
  [[nodiscard]] std::optional<std::string> ReadBytes(std::size_t n);
  /// Advances the cursor `n` bytes; false (cursor unchanged) if fewer
  /// remain.
  [[nodiscard]] bool Skip(std::size_t n) noexcept {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool AtEnd() const noexcept { return pos_ >= data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace labmon::util
