// Small string helpers shared across the project (libstdc++ 12 has no
// std::format, so number formatting is snprintf-backed here).
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace labmon::util {

/// Splits on a single character; keeps empty fields ("a,,b" -> 3 fields).
[[nodiscard]] std::vector<std::string> Split(std::string_view text, char sep);

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view Trim(std::string_view text) noexcept;

/// Lower-cases ASCII letters.
[[nodiscard]] std::string ToLower(std::string_view text);

/// Strict integer parse of the whole (trimmed) string.
[[nodiscard]] std::optional<std::int64_t> ParseInt64(std::string_view text) noexcept;

/// Strict floating-point parse of the whole (trimmed) string.
[[nodiscard]] std::optional<double> ParseDouble(std::string_view text) noexcept;

/// Fixed-point rendering, e.g. FormatFixed(3.14159, 2) == "3.14".
[[nodiscard]] std::string FormatFixed(double value, int precision);

/// Thousands-separated integer rendering, e.g. 583653 -> "583,653".
[[nodiscard]] std::string FormatWithThousands(std::int64_t value);

/// Human-readable byte count ("13.6 GB", "512 MB").
[[nodiscard]] std::string FormatBytes(double bytes);

/// Streams all arguments into one string; the project's std::format stand-in.
template <typename... Args>
[[nodiscard]] std::string Cat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}

}  // namespace labmon::util
