// Bounded MPSC staging ring + block recycling pool — the plumbing of the
// pipelined execution engine.
//
// StagingRing<T> is a fixed-capacity FIFO with condition-variable parking
// on both ends: producers block in Push() while the ring is full
// (backpressure — a fast simulator cannot outrun a slow merge by more
// than `capacity` blocks), the consumer blocks in Pop() while it is
// empty. Close() ends the stream gracefully (pending items remain
// poppable), Cancel() aborts it (pending items are dropped and every
// parked thread wakes with `false`). Per-ring counters record occupancy
// peaks and stall time on both ends; the pipelined driver exports them
// through obs::Registry. Like the rest of util, the ring itself carries
// no observability dependencies.
//
// RecyclingPool<T> is the arena companion: consumers Release() cleared
// objects (e.g. TraceBlock::Clear() keeps vector capacity) and producers
// Acquire() them back, so steady-state block traffic performs no heap
// allocation. The reuse ratio is tracked for the arena-reuse metric.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace labmon::util {

/// Counters of one ring's lifetime. `*_stalls` counts calls that had to
/// park at least once; `*_wait_ns` is the wall time spent parked.
struct StagingRingStats {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t push_stalls = 0;
  std::uint64_t pop_stalls = 0;
  std::uint64_t push_wait_ns = 0;
  std::uint64_t pop_wait_ns = 0;
  std::size_t peak_occupancy = 0;
  std::size_t capacity = 0;
};

template <typename T>
class StagingRing {
 public:
  explicit StagingRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  StagingRing(const StagingRing&) = delete;
  StagingRing& operator=(const StagingRing&) = delete;

  /// Blocks while the ring is full. Returns false (item not enqueued) when
  /// the ring was closed or cancelled.
  bool Push(T&& item) {
    std::unique_lock lock(mutex_);
    if (items_.size() >= capacity_ && !closed_ && !cancelled_) {
      ++stats_.push_stalls;
      const auto t0 = std::chrono::steady_clock::now();
      not_full_.wait(lock, [&] {
        return items_.size() < capacity_ || closed_ || cancelled_;
      });
      stats_.push_wait_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
    if (closed_ || cancelled_) return false;
    items_.push_back(std::move(item));
    ++stats_.pushed;
    stats_.peak_occupancy = std::max(stats_.peak_occupancy, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the ring is empty and open. Returns false when the ring
  /// is cancelled, or closed and fully drained.
  bool Pop(T& out) {
    std::unique_lock lock(mutex_);
    if (items_.empty() && !closed_ && !cancelled_) {
      ++stats_.pop_stalls;
      const auto t0 = std::chrono::steady_clock::now();
      not_empty_.wait(lock,
                      [&] { return !items_.empty() || closed_ || cancelled_; });
      stats_.pop_wait_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
    if (cancelled_ || items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking Pop; false when nothing is immediately available.
  bool TryPop(T& out) {
    std::unique_lock lock(mutex_);
    if (cancelled_ || items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Ends the stream: further Push() fails, pending items stay poppable,
  /// a parked consumer wakes once the queue drains.
  void Close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Aborts the stream: drops every pending item and wakes all parked
  /// threads with `false`. Used on the error path so producers blocked on
  /// a full ring can never deadlock a failed run.
  void Cancel() {
    {
      const std::scoped_lock lock(mutex_);
      cancelled_ = true;
      items_.clear();
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool cancelled() const {
    const std::scoped_lock lock(mutex_);
    return cancelled_;
  }
  [[nodiscard]] StagingRingStats stats() const {
    const std::scoped_lock lock(mutex_);
    StagingRingStats out = stats_;
    out.capacity = capacity_;
    return out;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  bool cancelled_ = false;
  StagingRingStats stats_;
};

/// Free-list of reusable objects. Thread-safe; Acquire() falls back to
/// default construction when the list is empty (counted as an allocation,
/// not a reuse). Callers must reset an object before Release() — the pool
/// never looks inside T.
template <typename T>
class RecyclingPool {
 public:
  struct Stats {
    std::uint64_t acquired = 0;
    std::uint64_t reused = 0;
    std::uint64_t released = 0;
    /// Fraction of Acquire() calls served from the free list.
    [[nodiscard]] double ReuseRatio() const noexcept {
      return acquired ? static_cast<double>(reused) /
                            static_cast<double>(acquired)
                      : 0.0;
    }
  };

  RecyclingPool() = default;
  RecyclingPool(const RecyclingPool&) = delete;
  RecyclingPool& operator=(const RecyclingPool&) = delete;

  [[nodiscard]] T Acquire() {
    const std::scoped_lock lock(mutex_);
    ++stats_.acquired;
    if (free_.empty()) return T{};
    ++stats_.reused;
    T out = std::move(free_.back());
    free_.pop_back();
    return out;
  }

  void Release(T&& item) {
    const std::scoped_lock lock(mutex_);
    ++stats_.released;
    free_.push_back(std::move(item));
  }

  [[nodiscard]] Stats stats() const {
    const std::scoped_lock lock(mutex_);
    return stats_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<T> free_;
  Stats stats_;
};

}  // namespace labmon::util
