// CSV reading/writing used for trace persistence and figure data export.
// Handles RFC-4180-style quoting (fields containing separator, quote or
// newline are quoted; embedded quotes doubled).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "labmon/util/expected.hpp"

namespace labmon::util {

/// Escapes one field for CSV output (quotes only when needed).
[[nodiscard]] std::string CsvEscape(std::string_view field, char sep = ',');

/// Splits one CSV record (no trailing newline) honouring quotes.
[[nodiscard]] std::vector<std::string> CsvSplit(std::string_view line,
                                                char sep = ',');

/// Streaming CSV writer.
class CsvWriter {
 public:
  /// Writes to the given stream, which must outlive the writer.
  explicit CsvWriter(std::ostream& out, char sep = ',') noexcept
      : out_(&out), sep_(sep) {}

  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience variadic row: every argument is streamed to a string.
  template <typename... Args>
  void Row(Args&&... args) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(args));
    (fields.push_back(Stringify(std::forward<Args>(args))), ...);
    WriteRow(fields);
  }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  template <typename T>
  static std::string Stringify(T&& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(std::forward<T>(value));
    } else {
      return ToStringImpl(std::forward<T>(value));
    }
  }
  template <typename T>
  static std::string ToStringImpl(const T& value) {
    return std::to_string(value);
  }

  std::ostream* out_;
  char sep_;
  std::size_t rows_ = 0;
};

/// Fully-parsed CSV document.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or npos.
  [[nodiscard]] std::size_t ColumnIndex(std::string_view name) const noexcept;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Parses CSV text (first record = header). Tolerates trailing newline and
/// CRLF line endings; fails on unbalanced quotes.
[[nodiscard]] Result<CsvDocument> ParseCsv(std::string_view text,
                                           char sep = ',');

/// Reads and parses a CSV file from disk.
[[nodiscard]] Result<CsvDocument> ReadCsvFile(const std::string& path,
                                              char sep = ',');

/// Writes an entire string to a file, failing loudly.
[[nodiscard]] Result<bool> WriteTextFile(const std::string& path,
                                         std::string_view content);

/// Reads an entire file into a string.
[[nodiscard]] Result<std::string> ReadTextFile(const std::string& path);

}  // namespace labmon::util
