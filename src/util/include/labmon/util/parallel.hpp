// Shared-memory parallel helpers (per the C++ Core Guidelines: RAII-managed
// std::jthread workers, no detached threads, exceptions propagated).
//
// Used by the analysis layer to fan per-machine computations across cores
// and by tests to validate thread-safety of the sinks.
#pragma once

#include <cstddef>

#include "labmon/util/function_ref.hpp"

namespace labmon::util {

/// Number of workers ParallelFor will use by default (hardware concurrency,
/// at least 1).
[[nodiscard]] std::size_t DefaultWorkerCount() noexcept;

/// Runs body(i) for i in [0, count) across `workers` threads with static
/// block scheduling. Runs inline when count is small or workers <= 1.
/// The first exception thrown by any invocation is rethrown on the caller.
/// The body is taken by non-owning reference (no std::function allocation).
void ParallelFor(std::size_t count, FunctionRef<void(std::size_t)> body,
                 std::size_t workers = 0);

/// Chunked variant: body(begin, end) over disjoint ranges covering
/// [0, count). Lets callers keep per-chunk accumulators without sharing.
void ParallelForChunked(
    std::size_t count,
    FunctionRef<void(std::size_t begin, std::size_t end)> body,
    std::size_t workers = 0);

}  // namespace labmon::util
