// Shared-memory parallel helpers (per the C++ Core Guidelines: RAII-managed
// std::jthread workers, no detached threads, exceptions propagated).
//
// Used by the analysis layer to fan per-machine computations across cores
// and by tests to validate thread-safety of the sinks.
#pragma once

#include <cstddef>
#include <cstdint>

#include "labmon/util/function_ref.hpp"

namespace labmon::util {

/// Number of workers ParallelFor will use by default (hardware concurrency,
/// at least 1).
[[nodiscard]] std::size_t DefaultWorkerCount() noexcept;

/// Per-worker timing of one ParallelFor region (observer hook below).
struct ParallelWorkerStats {
  std::uint64_t start_delay_ns = 0;  ///< region entry -> worker body start
  std::uint64_t busy_ns = 0;         ///< time inside the worker body
};

/// One multi-threaded ParallelFor/ParallelForChunked region. `workers`
/// points at `worker_count` entries, valid only during the observer call.
struct ParallelRegionStats {
  std::size_t count = 0;    ///< items the region covered
  std::uint64_t wall_ns = 0;  ///< region entry -> all workers joined
  const ParallelWorkerStats* workers = nullptr;
  std::size_t worker_count = 0;
};

/// Observer invoked after every region that actually spawned threads
/// (inline runs are not reported). Install with null to remove. The
/// profiler (labmon::obs::prof) uses this to surface queue-wait and
/// barrier-wait; util itself stays observability-free. The pointer is a
/// process-global; installing is thread-safe, the observer itself must be.
using ParallelObserver = void (*)(const ParallelRegionStats&);
void SetParallelObserver(ParallelObserver observer) noexcept;

/// Runs body(i) for i in [0, count) across `workers` threads with static
/// block scheduling. Runs inline when count is small or workers <= 1.
/// The first exception thrown by any invocation is rethrown on the caller.
/// The body is taken by non-owning reference (no std::function allocation).
void ParallelFor(std::size_t count, FunctionRef<void(std::size_t)> body,
                 std::size_t workers = 0);

/// Chunked variant: body(begin, end) over disjoint ranges covering
/// [0, count). Lets callers keep per-chunk accumulators without sharing.
void ParallelForChunked(
    std::size_t count,
    FunctionRef<void(std::size_t begin, std::size_t end)> body,
    std::size_t workers = 0);

}  // namespace labmon::util
