#include "labmon/util/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace labmon::util::json {

namespace {

const Value kNullValue;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  [[nodiscard]] bool Literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos += word.size();
    return true;
  }

  bool ParseString(std::string& out) {
    if (pos >= text.size() || text[pos] != '"') {
      return Fail("expected '\"'");
    }
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        if (pos + 1 >= text.size()) return Fail("truncated escape");
        const char esc = text[pos + 1];
        pos += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            pos += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are passed
            // through as two 3-byte sequences — labmon artifacts are ASCII).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: return Fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      out += c;
      ++pos;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(double& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return Fail("expected number");
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    out = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos = start;
      return Fail("malformed number");
    }
    return true;
  }

  bool ParseValue(Value& out, int depth) {
    if (depth > 64) return Fail("nesting too deep");
    SkipWs();
    if (pos >= text.size()) return Fail("unexpected end of input");
    switch (text[pos]) {
      case '{': {
        ++pos;
        Object object;
        SkipWs();
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          out = Value(std::move(object));
          return true;
        }
        while (true) {
          SkipWs();
          std::string key;
          if (!ParseString(key)) return false;
          SkipWs();
          if (pos >= text.size() || text[pos] != ':') {
            return Fail("expected ':'");
          }
          ++pos;
          Value member;
          if (!ParseValue(member, depth + 1)) return false;
          object.insert_or_assign(std::move(key), std::move(member));
          SkipWs();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (pos < text.size() && text[pos] == '}') {
            ++pos;
            out = Value(std::move(object));
            return true;
          }
          return Fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos;
        Array array;
        SkipWs();
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          out = Value(std::move(array));
          return true;
        }
        while (true) {
          Value element;
          if (!ParseValue(element, depth + 1)) return false;
          array.push_back(std::move(element));
          SkipWs();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (pos < text.size() && text[pos] == ']') {
            ++pos;
            out = Value(std::move(array));
            return true;
          }
          return Fail("expected ',' or ']'");
        }
      }
      case '"': {
        std::string s;
        if (!ParseString(s)) return false;
        out = Value(std::move(s));
        return true;
      }
      case 't':
        if (!Literal("true")) return false;
        out = Value(true);
        return true;
      case 'f':
        if (!Literal("false")) return false;
        out = Value(false);
        return true;
      case 'n':
        if (!Literal("null")) return false;
        out = Value();
        return true;
      default: {
        double number = 0.0;
        if (!ParseNumber(number)) return false;
        out = Value(number);
        return true;
      }
    }
  }
};

}  // namespace

const Value& Value::operator[](std::string_view key) const noexcept {
  if (!is_object()) return kNullValue;
  const auto it = object_->find(key);
  return it != object_->end() ? it->second : kNullValue;
}

const Value& Value::operator[](std::size_t index) const noexcept {
  if (!is_array() || index >= array_->size()) return kNullValue;
  return (*array_)[index];
}

util::Result<Value> Parse(std::string_view text) {
  Parser parser{text};
  Value value;
  if (!parser.ParseValue(value, 0)) {
    return util::Result<Value>::Err(parser.error);
  }
  parser.SkipWs();
  if (parser.pos != text.size()) {
    return util::Result<Value>::Err("trailing content at offset " +
                                    std::to_string(parser.pos));
  }
  return value;
}

}  // namespace labmon::util::json
