#include "labmon/util/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace labmon::util {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string_view Trim(std::string_view text) noexcept {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::int64_t> ParseInt64(std::string_view text) noexcept {
  const std::string_view trimmed = Trim(text);
  if (trimmed.empty() || trimmed.size() > 32) return std::nullopt;
  char buf[40];
  trimmed.copy(buf, trimmed.size());
  buf[trimmed.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + trimmed.size()) return std::nullopt;
  return static_cast<std::int64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) noexcept {
  const std::string_view trimmed = Trim(text);
  if (trimmed.empty() || trimmed.size() > 48) return std::nullopt;
  char buf[56];
  trimmed.copy(buf, trimmed.size());
  buf[trimmed.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf, &end);
  if (errno != 0 || end != buf + trimmed.size()) return std::nullopt;
  return value;
}

std::string FormatFixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string FormatWithThousands(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return negative ? "-" + out : out;
}

std::string FormatBytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  double v = bytes;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", v, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace labmon::util
