#include "labmon/util/time.hpp"

#include <cstdio>

namespace labmon::util {

const char* DayName(DayOfWeek dow) noexcept {
  switch (dow) {
    case DayOfWeek::kMonday: return "Mon";
    case DayOfWeek::kTuesday: return "Tue";
    case DayOfWeek::kWednesday: return "Wed";
    case DayOfWeek::kThursday: return "Thu";
    case DayOfWeek::kFriday: return "Fri";
    case DayOfWeek::kSaturday: return "Sat";
    case DayOfWeek::kSunday: return "Sun";
  }
  return "???";
}

CivilTime ToCivil(SimTime t) noexcept {
  CivilTime c;
  c.day = static_cast<int>(t / kSecondsPerDay);
  c.week = static_cast<int>(t / kSecondsPerWeek);
  c.dow = static_cast<DayOfWeek>(c.day % 7);
  const auto sec_of_day = t % kSecondsPerDay;
  c.hour = static_cast<int>(sec_of_day / kSecondsPerHour);
  c.minute = static_cast<int>((sec_of_day / kSecondsPerMinute) % 60);
  c.second = static_cast<int>(sec_of_day % 60);
  c.minute_of_day = c.hour * 60 + c.minute;
  c.minute_of_week = static_cast<int>((t % kSecondsPerWeek) / kSecondsPerMinute);
  return c;
}

SimTime MakeTime(int day, int hour, int minute, int second) noexcept {
  return SimTime{day} * kSecondsPerDay + SimTime{hour} * kSecondsPerHour +
         SimTime{minute} * kSecondsPerMinute + SimTime{second};
}

SimTime MakeWeekTime(int week, DayOfWeek dow, int hour, int minute,
                     int second) noexcept {
  return MakeTime(week * 7 + static_cast<int>(dow), hour, minute, second);
}

DayOfWeek DayOfWeekOf(SimTime t) noexcept {
  return static_cast<DayOfWeek>((t / kSecondsPerDay) % 7);
}

double HourOfDay(SimTime t) noexcept {
  return static_cast<double>(t % kSecondsPerDay) /
         static_cast<double>(kSecondsPerHour);
}

bool IsWeekend(SimTime t) noexcept {
  const auto dow = DayOfWeekOf(t);
  return dow == DayOfWeek::kSaturday || dow == DayOfWeek::kSunday;
}

std::string FormatDuration(SimTime seconds) {
  std::string prefix;
  if (seconds < 0) {
    prefix = "-";
    seconds = -seconds;
  }
  char buf[64];
  const auto days = seconds / kSecondsPerDay;
  const auto hours = (seconds % kSecondsPerDay) / kSecondsPerHour;
  const auto minutes = (seconds % kSecondsPerHour) / kSecondsPerMinute;
  const auto secs = seconds % kSecondsPerMinute;
  if (days > 0) {
    std::snprintf(buf, sizeof buf, "%lldd%02lldh", static_cast<long long>(days),
                  static_cast<long long>(hours));
  } else if (hours > 0) {
    std::snprintf(buf, sizeof buf, "%lldh%02lldm", static_cast<long long>(hours),
                  static_cast<long long>(minutes));
  } else if (minutes > 0) {
    std::snprintf(buf, sizeof buf, "%lldm%02llds",
                  static_cast<long long>(minutes), static_cast<long long>(secs));
  } else {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(secs));
  }
  return prefix + buf;
}

std::string FormatTimestamp(SimTime t) {
  const CivilTime c = ToCivil(t);
  char buf[64];
  std::snprintf(buf, sizeof buf, "D%03d %s %02d:%02d:%02d", c.day,
                DayName(c.dow), c.hour, c.minute, c.second);
  return buf;
}

}  // namespace labmon::util
