#include "labmon/util/table.hpp"

#include <algorithm>
#include <sstream>

namespace labmon::util {

void AsciiTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::SetAlignments(std::vector<Align> alignments) {
  alignments_ = std::move(alignments);
}

void AsciiTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(RowEntry{std::move(row), false});
}

void AsciiTable::AddSeparator() { rows_.push_back(RowEntry{{}, true}); }

std::string AsciiTable::Render() const {
  const std::size_t cols = header_.size();
  std::vector<std::size_t> widths(cols, 0);
  for (std::size_t i = 0; i < cols; ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < cols && i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  const auto align_of = [&](std::size_t col) {
    if (col < alignments_.size()) return alignments_[col];
    return col == 0 ? Align::kLeft : Align::kRight;
  };

  std::ostringstream oss;
  const auto rule = [&]() {
    oss << '+';
    for (std::size_t i = 0; i < cols; ++i) {
      oss << std::string(widths[i] + 2, '-') << '+';
    }
    oss << '\n';
  };
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    oss << '|';
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      const std::size_t pad = widths[i] - cell.size();
      oss << ' ';
      if (align_of(i) == Align::kRight) {
        oss << std::string(pad, ' ') << cell;
      } else {
        oss << cell << std::string(pad, ' ');
      }
      oss << " |";
    }
    oss << '\n';
  };

  if (!title_.empty()) oss << title_ << '\n';
  rule();
  emit_row(header_);
  rule();
  for (const auto& row : rows_) {
    if (row.separator) {
      rule();
    } else {
      emit_row(row.cells);
    }
  }
  rule();
  return oss.str();
}

}  // namespace labmon::util
