#include "labmon/util/ini.hpp"

#include "labmon/util/csv.hpp"
#include "labmon/util/strings.hpp"

namespace labmon::util {

Result<IniFile> IniFile::Parse(const std::string& text) {
  using R = Result<IniFile>;
  IniFile ini;
  std::string section;
  int line_no = 0;
  for (const auto& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return R::Err("line " + std::to_string(line_no) +
                      ": malformed section header");
      }
      section = std::string(Trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return R::Err("line " + std::to_string(line_no) + ": expected key=value");
    }
    const auto key = Trim(line.substr(0, eq));
    if (key.empty()) {
      return R::Err("line " + std::to_string(line_no) + ": empty key");
    }
    const auto value = Trim(line.substr(eq + 1));
    ini.keys_.push_back(section.empty()
                            ? std::string(key)
                            : section + "." + std::string(key));
    ini.values_.emplace_back(value);
  }
  return ini;
}

Result<IniFile> IniFile::Load(const std::string& path) {
  auto text = ReadTextFile(path);
  if (!text.ok()) return Result<IniFile>::Err(text.error());
  return Parse(text.value());
}

std::optional<std::string> IniFile::Get(const std::string& key) const {
  // Last assignment wins, like most INI dialects.
  for (std::size_t i = keys_.size(); i-- > 0;) {
    if (keys_[i] == key) return values_[i];
  }
  return std::nullopt;
}

double IniFile::GetDouble(const std::string& key, double fallback,
                          bool* ok) const {
  if (ok) *ok = true;
  const auto raw = Get(key);
  if (!raw) return fallback;
  const auto parsed = ParseDouble(*raw);
  if (!parsed) {
    if (ok) *ok = false;
    return fallback;
  }
  return *parsed;
}

std::int64_t IniFile::GetInt(const std::string& key, std::int64_t fallback,
                             bool* ok) const {
  if (ok) *ok = true;
  const auto raw = Get(key);
  if (!raw) return fallback;
  const auto parsed = ParseInt64(*raw);
  if (!parsed) {
    if (ok) *ok = false;
    return fallback;
  }
  return *parsed;
}

bool IniFile::GetBool(const std::string& key, bool fallback, bool* ok) const {
  if (ok) *ok = true;
  const auto raw = Get(key);
  if (!raw) return fallback;
  const std::string lowered = ToLower(*raw);
  if (lowered == "true" || lowered == "yes" || lowered == "on" ||
      lowered == "1") {
    return true;
  }
  if (lowered == "false" || lowered == "no" || lowered == "off" ||
      lowered == "0") {
    return false;
  }
  if (ok) *ok = false;
  return fallback;
}

}  // namespace labmon::util
