#include "labmon/util/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace labmon::util {

std::string CsvEscape(std::string_view field, char sep) {
  const bool needs_quotes =
      field.find(sep) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      field.find('\r') != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::vector<std::string> CsvSplit(std::string_view line, char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << sep_;
    *out_ << CsvEscape(fields[i], sep_);
  }
  *out_ << '\n';
  ++rows_;
}

std::size_t CsvDocument::ColumnIndex(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return npos;
}

Result<CsvDocument> ParseCsv(std::string_view text, char sep) {
  CsvDocument doc;
  std::size_t start = 0;
  bool first = true;
  while (start <= text.size()) {
    if (start == text.size()) break;
    // Find end of record, respecting quotes.
    bool in_quotes = false;
    std::size_t end = start;
    while (end < text.size()) {
      const char c = text[end];
      if (c == '"') in_quotes = !in_quotes;
      if (c == '\n' && !in_quotes) break;
      ++end;
    }
    if (in_quotes) return Result<CsvDocument>::Err("unbalanced quotes in CSV");
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty() || !first) {
      auto fields = CsvSplit(line, sep);
      if (first) {
        doc.header = std::move(fields);
        first = false;
      } else {
        doc.rows.push_back(std::move(fields));
      }
    }
    start = end + 1;
  }
  if (first) return Result<CsvDocument>::Err("empty CSV document");
  return doc;
}

Result<CsvDocument> ReadCsvFile(const std::string& path, char sep) {
  auto text = ReadTextFile(path);
  if (!text.ok()) return Result<CsvDocument>::Err(text.error());
  return ParseCsv(text.value(), sep);
}

Result<bool> WriteTextFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Result<bool>::Err("cannot open for write: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Result<bool>::Err("write failed: " + path);
  return true;
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Result<std::string>::Err("cannot open for read: " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

}  // namespace labmon::util
