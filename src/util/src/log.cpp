#include "labmon/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace labmon::util::log {

namespace {
std::atomic<int> g_level{static_cast<int>(Level::kWarn)};
std::mutex g_emit_mutex;

Sink& GlobalSink() {
  static Sink sink;  // empty = stderr default
  return sink;
}

const char* LevelTag(Level level) noexcept {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void SetLevel(Level level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level GetLevel() noexcept {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

void SetSink(Sink sink) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  GlobalSink() = std::move(sink);
}

void Emit(Level level, std::string_view message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (const Sink& sink = GlobalSink()) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "[labmon %s] %.*s\n", LevelTag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace labmon::util::log
