#include "labmon/util/parallel.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace labmon::util {

std::size_t DefaultWorkerCount() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ParallelForChunked(
    std::size_t count,
    FunctionRef<void(std::size_t, std::size_t)> body,
    std::size_t workers) {
  if (workers == 0) workers = DefaultWorkerCount();
  workers = std::min(workers, count);
  if (count == 0) return;
  if (workers <= 1 || count < 2) {
    body(0, count);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    const std::size_t chunk = (count + workers - 1) / workers;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t begin = w * chunk;
      const std::size_t end = std::min(count, begin + chunk);
      if (begin >= end) break;
      pool.emplace_back([&, begin, end] {
        try {
          body(begin, end);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
  }  // jthread joins here
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(std::size_t count, FunctionRef<void(std::size_t)> body,
                 std::size_t workers) {
  ParallelForChunked(
      count,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      workers);
}

}  // namespace labmon::util
