#include "labmon/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace labmon::util {

namespace {

std::atomic<ParallelObserver> g_observer{nullptr};

std::uint64_t NowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void SetParallelObserver(ParallelObserver observer) noexcept {
  g_observer.store(observer, std::memory_order_relaxed);
}

std::size_t DefaultWorkerCount() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ParallelForChunked(
    std::size_t count,
    FunctionRef<void(std::size_t, std::size_t)> body,
    std::size_t workers) {
  if (workers == 0) workers = DefaultWorkerCount();
  workers = std::min(workers, count);
  if (count == 0) return;
  if (workers <= 1 || count < 2) {
    body(0, count);
    return;
  }

  const ParallelObserver observer =
      g_observer.load(std::memory_order_relaxed);
  const std::uint64_t region_t0 = observer != nullptr ? NowNs() : 0;
  std::vector<ParallelWorkerStats> stats(observer != nullptr ? workers : 0);

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::size_t spawned = 0;
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    const std::size_t chunk = (count + workers - 1) / workers;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t begin = w * chunk;
      const std::size_t end = std::min(count, begin + chunk);
      if (begin >= end) break;
      ++spawned;
      pool.emplace_back([&, w, begin, end] {
        const std::uint64_t t_start = observer != nullptr ? NowNs() : 0;
        try {
          body(begin, end);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (observer != nullptr) {
          stats[w].start_delay_ns = t_start - region_t0;
          stats[w].busy_ns = NowNs() - t_start;
        }
      });
    }
  }  // jthread joins here
  if (first_error) std::rethrow_exception(first_error);
  if (observer != nullptr) {
    ParallelRegionStats region;
    region.count = count;
    region.wall_ns = NowNs() - region_t0;
    region.workers = stats.data();
    region.worker_count = spawned;
    observer(region);
  }
}

void ParallelFor(std::size_t count, FunctionRef<void(std::size_t)> body,
                 std::size_t workers) {
  ParallelForChunked(
      count,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      workers);
}

}  // namespace labmon::util
