#include "labmon/util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace labmon::util {

namespace {
constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
}

std::uint64_t Rng::NextU64() noexcept {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Fork() noexcept {
  // Seeding a child from two draws of the parent keeps streams decorrelated
  // well enough for simulation purposes (each child re-expands via SplitMix).
  const std::uint64_t a = NextU64();
  const std::uint64_t b = NextU64();
  return Rng(a ^ Rotl(b, 31) ^ 0x9e3779b97f4a7c15ULL);
}

double Rng::Uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * Uniform();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(NextU64());  // full range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::Bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::StdNormal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) noexcept {
  return mean + stddev * StdNormal();
}

double Rng::LogNormal(double mu, double sigma) noexcept {
  return std::exp(Normal(mu, sigma));
}

double Rng::LogNormalMeanStd(double mean, double stddev) noexcept {
  const double variance_ratio = (stddev * stddev) / (mean * mean);
  const double sigma2 = std::log1p(variance_ratio);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return LogNormal(mu, std::sqrt(sigma2));
}

double Rng::Exponential(double mean) noexcept {
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

int Rng::Poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = Normal(mean, std::sqrt(mean));
    return std::max(0, static_cast<int>(std::lround(v)));
  }
  const double limit = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= Uniform();
  } while (p > limit);
  return k - 1;
}

std::size_t Rng::WeightedIndex(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return weights.size();
  double target = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(0.0, weights[i]);
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

double Rng::Triangular(double lo, double mode, double hi) noexcept {
  const double u = Uniform();
  const double cut = (hi > lo) ? (mode - lo) / (hi - lo) : 0.5;
  if (u < cut) return lo + std::sqrt(u * (hi - lo) * (mode - lo));
  return hi - std::sqrt((1.0 - u) * (hi - lo) * (hi - mode));
}

}  // namespace labmon::util
