#include "labmon/util/varint.hpp"

namespace labmon::util {

void PutVarint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

void PutSignedVarint(std::string& out, std::int64_t value) {
  PutVarint(out, ZigzagEncode(value));
}

std::optional<std::uint64_t> VarintReader::Read() noexcept {
  std::uint64_t value = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 63 && byte > 1) return std::nullopt;  // overlong
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) return std::nullopt;
  }
  return std::nullopt;  // truncated
}

std::optional<std::int64_t> VarintReader::ReadSigned() noexcept {
  const auto raw = Read();
  if (!raw) return std::nullopt;
  return ZigzagDecode(*raw);
}

std::optional<std::string> VarintReader::ReadBytes(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

}  // namespace labmon::util
