#include "labmon/util/varint.hpp"

namespace labmon::util {

namespace {

constexpr std::size_t kMaxVarintBytes = 10;

// Encodes into a stack buffer and appends once; a single append lets the
// string grow (or not) with one capacity check instead of one per byte.
inline void AppendVarint(std::string& out, std::uint64_t value) {
  char buf[kMaxVarintBytes];
  std::size_t n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<char>((value & 0x7f) | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<char>(value);
  out.append(buf, n);
}

}  // namespace

void PutVarint(std::string& out, std::uint64_t value) {
  AppendVarint(out, value);
}

void PutVarint(std::string& out, std::uint64_t value,
               std::size_t reserve_hint) {
  if (out.capacity() - out.size() < kMaxVarintBytes) {
    out.reserve(out.size() +
                (reserve_hint > kMaxVarintBytes ? reserve_hint
                                                : kMaxVarintBytes));
  }
  AppendVarint(out, value);
}

void PutSignedVarint(std::string& out, std::int64_t value) {
  AppendVarint(out, ZigzagEncode(value));
}

void PutSignedVarint(std::string& out, std::int64_t value,
                     std::size_t reserve_hint) {
  PutVarint(out, ZigzagEncode(value), reserve_hint);
}

std::optional<std::uint64_t> VarintReader::Read() noexcept {
  std::uint64_t value = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 63 && byte > 1) return std::nullopt;  // overlong
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) return std::nullopt;
  }
  return std::nullopt;  // truncated
}

std::optional<std::int64_t> VarintReader::ReadSigned() noexcept {
  const auto raw = Read();
  if (!raw) return std::nullopt;
  return ZigzagDecode(*raw);
}

std::optional<std::string> VarintReader::ReadBytes(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

}  // namespace labmon::util
