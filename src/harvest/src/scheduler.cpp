#include "labmon/harvest/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "labmon/util/strings.hpp"

namespace labmon::harvest {

DesktopGrid::DesktopGrid(winsim::Fleet& fleet,
                         workload::WorkloadDriver& driver,
                         HarvestPolicy policy)
    : fleet_(fleet), driver_(driver), policy_(policy) {}

bool DesktopGrid::Eligible(const winsim::Machine& machine) const noexcept {
  if (!machine.powered_on()) return false;
  if (policy_.use_occupied_machines) return true;
  return !machine.Session().has_value();
}

HarvestResult DesktopGrid::Run(const JobBatch& batch, util::SimTime start,
                               util::SimTime end) {
  HarvestResult result;
  result.units_total = batch.unit_count;
  result.makespan_s = static_cast<double>(end - start);

  std::vector<UnitState> units(batch.unit_count);
  // LIFO pending queue of unit ids — evicted units get picked back up
  // promptly, like a real grid queue.
  std::vector<std::size_t> queue(batch.unit_count);
  for (std::size_t u = 0; u < queue.size(); ++u) {
    queue[u] = queue.size() - 1 - u;
  }
  std::vector<Slot> slots(fleet_.size());
  const auto step = std::max<util::SimTime>(1, policy_.scheduler_step_s);
  const double step_s = static_cast<double>(step);

  double busy_machine_seconds = 0.0;
  double elapsed_s = 0.0;

  // Finds the least-progressed running unit eligible for a backup copy.
  const auto pick_backup_victim = [&]() -> std::size_t {
    std::size_t best = units.size();
    double best_progress = std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < units.size(); ++u) {
      const auto& unit = units[u];
      if (unit.done || unit.queued || unit.running_copies == 0) continue;
      if (unit.running_copies >= policy_.max_copies_per_unit) continue;
      if (unit.checkpoint < best_progress) {
        best_progress = unit.checkpoint;
        best = u;
      }
    }
    return best;
  };

  const auto detach_copy = [&](Slot& slot, bool requeue_if_orphaned) {
    UnitState& unit = units[slot.unit];
    --unit.running_copies;
    if (!unit.done && unit.running_copies == 0 && !unit.queued &&
        requeue_if_orphaned) {
      queue.push_back(slot.unit);
      unit.queued = true;
    }
    slot = Slot{};
  };

  for (util::SimTime t = start; t < end; t += step) {
    driver_.AdvanceTo(t);
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
      auto& m = fleet_.machine(i);
      m.AdvanceTo(t);
      auto& slot = slots[i];
      const bool eligible = Eligible(m);

      if (slot.has_task) {
        UnitState& unit = units[slot.unit];
        if (unit.done) {
          // Another copy finished first: everything this copy computed
          // beyond its resume point is duplicated work.
          result.wasted_index_seconds +=
              std::max(0.0, slot.progress - slot.started_from);
          ++result.backup_copies_cancelled;
          detach_copy(slot, /*requeue_if_orphaned=*/false);
        } else if (!eligible) {
          // Evicted: progress beyond the unit's best checkpoint is lost.
          result.wasted_index_seconds +=
              std::max(0.0, slot.progress - unit.checkpoint);
          if (!m.powered_on()) {
            ++result.evictions_poweroff;
          } else {
            ++result.evictions_login;
          }
          detach_copy(slot, /*requeue_if_orphaned=*/true);
        } else {
          // Harvest the idle share of this step.
          const double idle_share =
              std::max(0.0, 1.0 - m.cpu_busy_fraction());
          slot.progress += m.spec().CombinedIndex() * idle_share * step_s;
          slot.runtime_since_cp += step_s;
          busy_machine_seconds += step_s;
          if (policy_.checkpoint_interval_s > 0.0 &&
              slot.runtime_since_cp >= policy_.checkpoint_interval_s) {
            unit.checkpoint = std::max(unit.checkpoint, slot.progress);
            slot.runtime_since_cp = 0.0;
            ++result.checkpoints_written;
          }
          if (slot.progress >= batch.unit_index_seconds) {
            // Completed. Overshoot within the final step is discarded (at
            // most one step of one machine per unit). Work duplicated by
            // still-running sibling copies is charged when they notice.
            unit.done = true;
            ++result.units_completed;
            // The unit's full work is credited exactly once, here (partial
            // progress of unfinished units is credited at run end).
            result.useful_index_seconds += batch.unit_index_seconds;
            detach_copy(slot, /*requeue_if_orphaned=*/false);
            if (result.units_completed == batch.unit_count) {
              result.batch_finished = true;
              result.makespan_s = static_cast<double>(t + step - start);
            }
          }
        }
      }

      if (!slot.has_task && eligible) {
        if (!slot.was_eligible) slot.free_since = t;
        if (t - slot.free_since >= policy_.claim_delay_s) {
          std::size_t unit_id = units.size();
          bool is_backup = false;
          if (!queue.empty()) {
            unit_id = queue.back();
            queue.pop_back();
            units[unit_id].queued = false;
          } else if (policy_.speculative_backups) {
            unit_id = pick_backup_victim();
            is_backup = unit_id < units.size();
          }
          if (unit_id < units.size()) {
            UnitState& unit = units[unit_id];
            slot.has_task = true;
            slot.unit = unit_id;
            slot.progress = unit.checkpoint;
            slot.started_from = unit.checkpoint;
            slot.runtime_since_cp = 0.0;
            ++unit.running_copies;
            if (is_backup) ++result.backup_copies_started;
          }
        }
      }
      slot.was_eligible = eligible;
    }
    elapsed_s += step_s;
    if (result.batch_finished) break;
  }

  // Surviving progress still counts as useful — it is resumable. For each
  // unfinished unit, credit the best of its checkpoint and any running
  // copy (duplicates beyond that best are waste).
  std::vector<double> best(units.size(), 0.0);
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (!units[u].done) best[u] = units[u].checkpoint;
  }
  for (const auto& slot : slots) {
    if (!slot.has_task || units[slot.unit].done) continue;
    best[slot.unit] = std::max(best[slot.unit], slot.progress);
  }
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (!units[u].done) result.useful_index_seconds += best[u];
  }

  result.mean_busy_machines =
      elapsed_s > 0.0 ? busy_machine_seconds / elapsed_s : 0.0;
  result.fleet_mean_index = fleet_.MeanCombinedIndex();
  if (result.makespan_s > 0.0 && result.fleet_mean_index > 0.0) {
    result.effective_dedicated_machines = result.useful_index_seconds /
                                          result.makespan_s /
                                          result.fleet_mean_index;
  }
  return result;
}

std::string DescribePolicy(const HarvestPolicy& policy) {
  std::string out = policy.use_occupied_machines ? "free+occupied" : "free-only";
  if (policy.checkpoint_interval_s <= 0.0) {
    out += ", no ckpt";
  } else {
    out += ", ckpt " +
           util::FormatFixed(policy.checkpoint_interval_s / 60.0, 0) + " min";
  }
  if (policy.speculative_backups) out += ", backups";
  return out;
}

}  // namespace labmon::harvest
