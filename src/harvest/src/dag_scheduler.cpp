#include "labmon/harvest/dag_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "labmon/obs/harvest_metrics.hpp"

namespace labmon::harvest {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void HashU64(std::uint64_t v, std::uint64_t* h) noexcept {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xffULL;
    *h *= kFnvPrime;
  }
}

void HashF64(double v, std::uint64_t* h) noexcept {
  HashU64(std::bit_cast<std::uint64_t>(v), h);
}

/// Ready-queue order: priority desc, earliest deadline (0 = none = last),
/// then job id. Total and strict, so dispatch order is deterministic.
struct ReadyBefore {
  const JobDag* dag;
  bool operator()(std::size_t a, std::size_t b) const noexcept {
    const DagJob& ja = dag->jobs[a];
    const DagJob& jb = dag->jobs[b];
    if (ja.priority != jb.priority) return ja.priority > jb.priority;
    const auto da = ja.deadline > 0 ? ja.deadline
                                    : std::numeric_limits<util::SimTime>::max();
    const auto db = jb.deadline > 0 ? jb.deadline
                                    : std::numeric_limits<util::SimTime>::max();
    if (da != db) return da < db;
    return a < b;
  }
};

}  // namespace

std::uint64_t DagResult::ResultHash() const noexcept {
  std::uint64_t h = kFnvOffset;
  HashU64(jobs_total, &h);
  HashU64(jobs_completed, &h);
  HashU64(jobs_failed, &h);
  HashU64(deadline_misses, &h);
  HashU64(dag_finished ? 1 : 0, &h);
  HashU64(evictions_login, &h);
  HashU64(evictions_poweroff, &h);
  HashU64(evictions_chaos, &h);
  HashU64(chaos_task_failures, &h);
  HashU64(retries, &h);
  HashU64(checkpoints_written, &h);
  HashF64(makespan_s, &h);
  HashF64(useful_index_seconds, &h);
  HashF64(wasted_index_seconds, &h);
  for (const DagJobRun& j : jobs) {
    HashU64(static_cast<std::uint64_t>(j.state), &h);
    HashU64(static_cast<std::uint64_t>(j.completed_at), &h);
    HashU64(j.attempts, &h);
    HashU64(j.evictions, &h);
    HashU64(j.chaos_failures, &h);
    HashU64(j.completions, &h);
    HashU64(j.deadline_met ? 1 : 0, &h);
  }
  return h;
}

DagScheduler::DagScheduler(winsim::Fleet& fleet,
                           workload::WorkloadDriver& driver, DagPolicy policy)
    : fleet_(fleet), driver_(driver), policy_(policy) {}

void DagScheduler::SetFaultPlan(const faultsim::FaultPlan& plan) {
  plan_ = plan;
  chaos_active_ = plan_.Active();
  crash_windows_.clear();
  if (!chaos_active_) return;
  for (const auto& c : plan_.crashes) {
    if (c.machine >= fleet_.size() || c.down_seconds <= 0) continue;
    crash_windows_.push_back(
        {c.machine, 1, c.at, c.at + static_cast<util::SimTime>(c.down_seconds)});
  }
  for (const auto& o : plan_.outages) {
    if (o.end <= o.start) continue;
    for (const auto& lab : fleet_.labs()) {
      if (lab.name == o.lab) {
        crash_windows_.push_back({lab.first, lab.count, o.start, o.end});
        break;
      }
    }
  }
}

void DagScheduler::SetMetrics(obs::Registry* registry) { metrics_ = registry; }

bool DagScheduler::MachineDownByChaos(std::size_t machine,
                                      util::SimTime t) const noexcept {
  for (const CrashWindow& w : crash_windows_) {
    if (machine >= w.first && machine < w.first + w.count && t >= w.start &&
        t < w.end) {
      return true;
    }
  }
  return false;
}

void DagScheduler::OnBoot(std::size_t machine, util::SimTime t) {
  (void)t;
  if (machine < slots_.size()) slots_[machine].power_blip = true;
}

void DagScheduler::OnShutdown(std::size_t machine, util::SimTime t) {
  (void)t;
  if (machine < slots_.size()) slots_[machine].power_blip = true;
}

void DagScheduler::OnLogin(std::size_t machine, util::SimTime t) {
  (void)t;
  if (machine < slots_.size()) slots_[machine].login_blip = true;
}

void DagScheduler::OnLogout(std::size_t machine, util::SimTime t) {
  // A logout does not interrupt anything; eligibility is re-evaluated at
  // the next step (the keyboard-idle guard starts from the step boundary).
  (void)machine;
  (void)t;
}

DagResult DagScheduler::Run(const JobDag& dag, util::SimTime start,
                            util::SimTime end) {
  const std::size_t n = dag.jobs.size();
  DagResult result;
  result.jobs_total = n;
  result.makespan_s = static_cast<double>(end - start);
  result.jobs.assign(n, DagJobRun{});

  const auto instruments = obs::HarvestInstruments::For(metrics_);

  // Dependency bookkeeping: children adjacency + unfinished-parent counts.
  std::vector<JobState> jobs(n);
  std::vector<std::vector<std::uint32_t>> children(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs[i].waiting_on = static_cast<std::uint32_t>(dag.jobs[i].deps.size());
    for (std::uint32_t d : dag.jobs[i].deps) {
      children[d].push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Ready queue (sorted by ReadyBefore; dispatch pops the front) plus a
  // cooling list of requeued jobs still inside their backoff window
  // (kept in id order; promoted to ready when eligible_at passes).
  const ReadyBefore before{&dag};
  std::vector<std::size_t> ready;
  std::vector<std::size_t> cooling;
  const auto enqueue_ready = [&](std::size_t job) {
    ready.insert(std::upper_bound(ready.begin(), ready.end(), job, before),
                 job);
    result.jobs[job].state = DagJobState::kReady;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (jobs[i].waiting_on == 0) enqueue_ready(i);
  }

  slots_.assign(fleet_.size(), Slot{});
  driver_.SetObserver(this);

  // Private chaos stream; never touched while the plan is inactive, so a
  // zero-fault run makes zero draws (bit-identity with a no-plan run).
  util::Rng chaos_rng(
      util::DeriveSeed(plan_.seed, util::seed_stream::kHarvest));
  const auto step = std::max<util::SimTime>(1, policy_.grid.scheduler_step_s);
  const double step_s = static_cast<double>(step);
  // Stochastic rates are per task-hour; convert to a per-step probability.
  const double hour_frac = step_s / 3600.0;
  const double p_fail = plan_.stochastic.transient_error_prob * hour_frac;
  const double p_hang = plan_.stochastic.hang_prob * hour_frac;
  const double p_straggle = plan_.stochastic.straggler_prob * hour_frac;
  const bool stochastic_chaos =
      chaos_active_ && (p_fail > 0.0 || p_hang > 0.0 || p_straggle > 0.0);

  double busy_machine_seconds = 0.0;
  double elapsed_s = 0.0;
  std::uint64_t terminal = 0;  // completed + failed

  // Requeues an interrupted/failed job under bounded exponential backoff.
  const auto requeue = [&](std::size_t job, util::SimTime t) {
    JobState& js = jobs[job];
    const double backoff =
        std::min(policy_.retry_backoff_base_s *
                     std::ldexp(1.0, static_cast<int>(std::min<std::uint32_t>(
                                    js.retries, 20))),
                 policy_.retry_backoff_max_s);
    ++js.retries;
    js.eligible_at = t + static_cast<util::SimTime>(backoff);
    cooling.insert(std::upper_bound(cooling.begin(), cooling.end(), job), job);
    result.jobs[job].state = DagJobState::kReady;
    ++result.retries;
    if (instruments.enabled()) instruments.retries->Increment();
  };

  // Marks `job` completed and releases its children. Exactly-once: the
  // completions counter is the audited invariant.
  const auto complete = [&](std::size_t job, util::SimTime at) {
    DagJobRun& run = result.jobs[job];
    run.state = DagJobState::kCompleted;
    run.completed_at = at;
    ++run.completions;
    const util::SimTime deadline = dag.jobs[job].deadline;
    if (deadline > 0) {
      run.deadline_met = at - start <= deadline;
      if (!run.deadline_met) ++result.deadline_misses;
    }
    ++result.jobs_completed;
    ++terminal;
    result.useful_index_seconds += dag.jobs[job].index_seconds;
    if (instruments.enabled()) {
      instruments.jobs_completed->Increment();
      instruments.turnaround_hours->Observe(
          static_cast<double>(at - start) / 3600.0);
    }
    // Failed parents never reach here, so their children keep a nonzero
    // waiting_on and stay stranded in kPending — by design.
    for (std::uint32_t child : children[job]) {
      if (--jobs[child].waiting_on == 0) enqueue_ready(child);
    }
  };

  for (util::SimTime t = start; t < end; t += step) {
    driver_.AdvanceTo(t);

    // Promote cooled-down jobs back into the ready order.
    if (!cooling.empty()) {
      std::vector<std::size_t> still_cooling;
      for (std::size_t job : cooling) {
        if (jobs[job].eligible_at <= t) {
          ready.insert(
              std::upper_bound(ready.begin(), ready.end(), job, before), job);
        } else {
          still_cooling.push_back(job);
        }
      }
      cooling = std::move(still_cooling);
    }
    if (instruments.enabled()) {
      instruments.queue_depth->Observe(static_cast<double>(ready.size()));
    }

    for (std::size_t i = 0; i < fleet_.size(); ++i) {
      auto& m = fleet_.machine(i);
      m.AdvanceTo(t);
      Slot& slot = slots_[i];
      const bool chaos_down = chaos_active_ && MachineDownByChaos(i, t);
      const bool session_evicts =
          !policy_.grid.use_occupied_machines &&
          (slot.login_blip || m.Session().has_value());
      const bool eligible = !chaos_down && m.powered_on() &&
                            (policy_.grid.use_occupied_machines ||
                             !m.Session().has_value());

      if (slot.has_task) {
        const std::size_t job = slot.job;
        JobState& js = jobs[job];
        bool evicted = false;
        if (chaos_down) {
          ++result.evictions_chaos;
          if (instruments.enabled()) instruments.evictions_chaos->Increment();
          evicted = true;
        } else if (slot.power_blip || !m.powered_on()) {
          ++result.evictions_poweroff;
          if (instruments.enabled()) {
            instruments.evictions_poweroff->Increment();
          }
          evicted = true;
        } else if (session_evicts) {
          ++result.evictions_login;
          if (instruments.enabled()) instruments.evictions_login->Increment();
          evicted = true;
        }

        if (evicted) {
          // Progress beyond the job's checkpoint is lost; the job cools
          // down and retries. Evictions never consume the failure budget.
          result.wasted_index_seconds +=
              std::max(0.0, slot.progress - js.checkpoint);
          ++result.jobs[job].evictions;
          requeue(job, t);
          slot.has_task = false;
          slot.progress = 0.0;
          slot.runtime_since_cp = 0.0;
        } else {
          // Stochastic chaos, drawn in a fixed per-task protocol.
          bool failed = false;
          bool hung = false;
          double pace = 1.0;
          if (stochastic_chaos) {
            if (chaos_rng.Bernoulli(p_fail)) {
              failed = true;
            } else if (chaos_rng.Bernoulli(p_hang)) {
              hung = true;
            } else if (chaos_rng.Bernoulli(p_straggle)) {
              pace = 1.0 / chaos_rng.Uniform(
                               plan_.stochastic.straggler_multiplier_lo,
                               plan_.stochastic.straggler_multiplier_hi);
            }
          }
          if (failed) {
            result.wasted_index_seconds +=
                std::max(0.0, slot.progress - js.checkpoint);
            ++result.chaos_task_failures;
            ++result.jobs[job].chaos_failures;
            if (result.jobs[job].chaos_failures >=
                static_cast<std::uint32_t>(std::max(1, policy_.max_attempts))) {
              // Budget exhausted: terminal failure. The checkpointed work
              // becomes waste at run end; descendants stay pending.
              result.jobs[job].state = DagJobState::kFailed;
              ++result.jobs_failed;
              ++terminal;
              if (instruments.enabled()) instruments.jobs_failed->Increment();
            } else {
              requeue(job, t);
            }
            slot.has_task = false;
            slot.progress = 0.0;
            slot.runtime_since_cp = 0.0;
          } else {
            busy_machine_seconds += step_s;
            if (!hung) {
              const double idle_share =
                  std::max(0.0, 1.0 - m.cpu_busy_fraction());
              slot.progress +=
                  m.spec().CombinedIndex() * idle_share * step_s * pace;
            }
            slot.runtime_since_cp += step_s;
            if (policy_.grid.checkpoint_interval_s > 0.0 &&
                slot.runtime_since_cp >= policy_.grid.checkpoint_interval_s) {
              js.checkpoint = std::max(js.checkpoint, slot.progress);
              slot.runtime_since_cp = 0.0;
              ++result.checkpoints_written;
              if (instruments.enabled()) instruments.checkpoints->Increment();
            }
            if (slot.progress >= dag.jobs[job].index_seconds) {
              complete(job, t + step);
              slot.has_task = false;
              slot.progress = 0.0;
              slot.runtime_since_cp = 0.0;
              if (result.jobs_completed == n) {
                result.dag_finished = true;
                result.makespan_s = static_cast<double>(t + step - start);
              }
            }
          }
        }
      }

      if (!slot.has_task && eligible) {
        // The keyboard-idle guard restarts on any interaction inside the
        // step (a blip), and on the eligibility transition itself.
        const bool guard_reset =
            slot.power_blip || !slot.was_eligible ||
            (!policy_.grid.use_occupied_machines && slot.login_blip);
        if (guard_reset) slot.free_since = t;
        if (t - slot.free_since >= policy_.grid.claim_delay_s &&
            !ready.empty()) {
          const std::size_t job = ready.front();
          ready.erase(ready.begin());
          slot.has_task = true;
          slot.job = job;
          slot.progress = jobs[job].checkpoint;
          slot.runtime_since_cp = 0.0;
          result.jobs[job].state = DagJobState::kRunning;
          ++result.jobs[job].attempts;
        }
      }
      slot.was_eligible = eligible;
      slot.login_blip = false;
      slot.power_blip = false;
    }
    elapsed_s += step_s;
    if (terminal == n) break;
  }

  driver_.SetObserver(nullptr);

  // Surviving progress of live jobs still counts as useful (resumable);
  // the checkpointed progress of terminally failed jobs does not.
  for (std::size_t i = 0; i < n; ++i) {
    const DagJobState state = result.jobs[i].state;
    if (state == DagJobState::kCompleted) continue;
    if (state == DagJobState::kFailed) {
      result.wasted_index_seconds += jobs[i].checkpoint;
      continue;
    }
    double best = jobs[i].checkpoint;
    for (const Slot& slot : slots_) {
      if (slot.has_task && slot.job == i) best = std::max(best, slot.progress);
    }
    result.useful_index_seconds += best;
  }
  slots_.clear();

  result.mean_busy_machines =
      elapsed_s > 0.0 ? busy_machine_seconds / elapsed_s : 0.0;
  result.fleet_mean_index = fleet_.MeanCombinedIndex();
  if (result.makespan_s > 0.0 && result.fleet_mean_index > 0.0) {
    result.effective_dedicated_machines = result.useful_index_seconds /
                                          result.makespan_s /
                                          result.fleet_mean_index;
  }
  result.critical_path_index_seconds = CriticalPathIndexSeconds(dag);
  result.dedicated_makespan_s =
      DedicatedMakespanSeconds(dag, fleet_.size(), result.fleet_mean_index);
  if (result.dedicated_makespan_s > 0.0) {
    result.harvest_slowdown = result.makespan_s / result.dedicated_makespan_s;
  }
  if (result.critical_path_index_seconds > 0.0 &&
      result.fleet_mean_index > 0.0) {
    result.critical_path_stretch =
        result.makespan_s /
        (result.critical_path_index_seconds / result.fleet_mean_index);
  }
  if (instruments.enabled()) {
    instruments.effective_machines->Set(result.effective_dedicated_machines);
  }
  return result;
}

}  // namespace labmon::harvest
