#include "labmon/harvest/dag.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>

namespace labmon::harvest {
namespace {

// Job sizes are drawn log-normal (heavy right tail, like real batch
// workloads) but clamped so no single job dwarfs the batch: at least one
// index-minute, at most 16x the configured mean.
double DrawIndexSeconds(util::Rng& rng, const JobMixOptions& o) {
  const double mean_s = std::max(o.mean_index_hours, 1.0 / 60.0) * 3600.0;
  const double sigma_s = std::max(o.sigma_index_hours, 0.0) * 3600.0;
  double v = sigma_s > 0.0 ? rng.LogNormalMeanStd(mean_s, sigma_s) : mean_s;
  return std::clamp(v, 60.0, 16.0 * mean_s);
}

DagJob DrawJob(util::Rng& rng, const JobMixOptions& o) {
  DagJob j;
  j.index_seconds = DrawIndexSeconds(rng, o);
  // A sprinkle of priority classes exercises the ready-queue ordering
  // without dominating it: most jobs are priority 0.
  j.priority = rng.Bernoulli(0.1) ? static_cast<int>(rng.UniformInt(1, 3)) : 0;
  j.deadline = o.deadline;
  return j;
}

void AppendBagOfTasks(JobDag& dag, util::Rng& rng, const JobMixOptions& o,
                      std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) dag.jobs.push_back(DrawJob(rng, o));
}

void AppendChains(JobDag& dag, util::Rng& rng, const JobMixOptions& o,
                  std::size_t count) {
  // Parallel pipelines of 3-6 stages each.
  std::size_t made = 0;
  while (made < count) {
    const std::size_t len = std::min<std::size_t>(
        count - made, static_cast<std::size_t>(rng.UniformInt(3, 6)));
    for (std::size_t k = 0; k < len; ++k) {
      DagJob j = DrawJob(rng, o);
      if (k > 0) j.deps.push_back(static_cast<std::uint32_t>(dag.jobs.size() - 1));
      dag.jobs.push_back(std::move(j));
    }
    made += len;
  }
}

void AppendFanInFanOut(JobDag& dag, util::Rng& rng, const JobMixOptions& o,
                       std::size_t count) {
  // Diamond blocks: one source fans out to W middles which fan into a sink.
  std::size_t made = 0;
  while (made < count) {
    if (count - made < 3) {  // not enough left for a diamond
      AppendBagOfTasks(dag, rng, o, count - made);
      return;
    }
    const std::size_t width = std::min<std::size_t>(
        count - made - 2, static_cast<std::size_t>(rng.UniformInt(2, 8)));
    const auto source = static_cast<std::uint32_t>(dag.jobs.size());
    dag.jobs.push_back(DrawJob(rng, o));
    DagJob sink = DrawJob(rng, o);
    for (std::size_t w = 0; w < width; ++w) {
      DagJob mid = DrawJob(rng, o);
      mid.deps.push_back(source);
      sink.deps.push_back(static_cast<std::uint32_t>(dag.jobs.size()));
      dag.jobs.push_back(std::move(mid));
    }
    dag.jobs.push_back(std::move(sink));
    made += width + 2;
  }
}

void AppendRandomLayered(JobDag& dag, util::Rng& rng, const JobMixOptions& o,
                         std::size_t count) {
  // Random layer widths; each non-root job depends on 1-3 jobs of the
  // previous layer. Forward-only edges by construction.
  std::vector<std::uint32_t> prev_layer;
  std::size_t made = 0;
  while (made < count) {
    const std::size_t width = std::min<std::size_t>(
        count - made, static_cast<std::size_t>(rng.UniformInt(2, 10)));
    std::vector<std::uint32_t> layer;
    layer.reserve(width);
    for (std::size_t w = 0; w < width; ++w) {
      DagJob j = DrawJob(rng, o);
      if (!prev_layer.empty()) {
        const auto parents = static_cast<std::size_t>(rng.UniformInt(
            1, static_cast<std::int64_t>(std::min<std::size_t>(3, prev_layer.size()))));
        // Sample distinct parents; the candidate pool is small, so a simple
        // draw-and-check loop stays O(parents^2).
        for (std::size_t p = 0; p < parents; ++p) {
          const auto pick = prev_layer[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(prev_layer.size()) - 1))];
          if (std::find(j.deps.begin(), j.deps.end(), pick) == j.deps.end())
            j.deps.push_back(pick);
        }
        std::sort(j.deps.begin(), j.deps.end());
      }
      layer.push_back(static_cast<std::uint32_t>(dag.jobs.size()));
      dag.jobs.push_back(std::move(j));
    }
    prev_layer = std::move(layer);
    made += width;
  }
}

}  // namespace

double JobDag::TotalIndexSeconds() const noexcept {
  double sum = 0.0;
  for (const DagJob& j : jobs) sum += j.index_seconds;
  return sum;
}

std::string ValidateDag(const JobDag& dag) {
  for (std::size_t i = 0; i < dag.jobs.size(); ++i) {
    const DagJob& j = dag.jobs[i];
    if (!(j.index_seconds >= 0.0) || !std::isfinite(j.index_seconds)) {
      std::ostringstream os;
      os << "job " << i << ": index_seconds must be finite and >= 0";
      return os.str();
    }
    if (j.deadline < 0) {
      std::ostringstream os;
      os << "job " << i << ": negative deadline";
      return os.str();
    }
    std::vector<std::uint32_t> seen;
    for (std::uint32_t d : j.deps) {
      if (d >= i) {
        std::ostringstream os;
        os << "job " << i << ": dependency " << d
           << " is not a lower job id (edges must point backwards)";
        return os.str();
      }
      if (std::find(seen.begin(), seen.end(), d) != seen.end()) {
        std::ostringstream os;
        os << "job " << i << ": duplicate dependency " << d;
        return os.str();
      }
      seen.push_back(d);
    }
  }
  return {};
}

double CriticalPathIndexSeconds(const JobDag& dag) {
  // Job ids are a topological order, so one forward pass suffices.
  std::vector<double> finish(dag.jobs.size(), 0.0);
  double best = 0.0;
  for (std::size_t i = 0; i < dag.jobs.size(); ++i) {
    double start = 0.0;
    for (std::uint32_t d : dag.jobs[i].deps) start = std::max(start, finish[d]);
    finish[i] = start + dag.jobs[i].index_seconds;
    best = std::max(best, finish[i]);
  }
  return best;
}

double DedicatedMakespanSeconds(const JobDag& dag, std::size_t machines,
                                double machine_index) {
  if (dag.jobs.empty() || machines == 0 || machine_index <= 0.0) return 0.0;
  const std::size_t n = dag.jobs.size();

  // Earliest ready time of each job = max finish time over its parents.
  std::vector<double> ready(n, 0.0);
  std::vector<double> finish(n, 0.0);

  // Machines as a min-heap of (next-free time, machine id); ties broken by
  // id so the schedule is deterministic.
  using Slot = std::pair<double, std::size_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (std::size_t m = 0; m < machines; ++m) free_at.emplace(0.0, m);

  // Pending jobs ordered by (ready time, -priority, deadline, id): a job is
  // dispatched to the earliest-free machine once its parents are done. Job
  // ids are topological, so scanning in id order and delaying each job to
  // its ready time is a valid list schedule.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const DagJob& ja = dag.jobs[a];
    const DagJob& jb = dag.jobs[b];
    if (ja.priority != jb.priority) return ja.priority > jb.priority;
    return a < b;
  });

  double makespan = 0.0;
  // Process in topological (id) order to compute ready times, but assign
  // machines in priority order within the constraint. A simple and
  // deterministic approximation: walk jobs in `order`, but a job cannot
  // start before its parents finish — which are guaranteed scheduled
  // because priority inversion across an edge just delays the child.
  std::vector<bool> done(n, false);
  std::vector<std::size_t> remaining = order;
  while (!remaining.empty()) {
    std::vector<std::size_t> deferred;
    bool progressed = false;
    for (std::size_t id : remaining) {
      bool parents_done = true;
      double r = 0.0;
      for (std::uint32_t d : dag.jobs[id].deps) {
        if (!done[d]) {
          parents_done = false;
          break;
        }
        r = std::max(r, finish[d]);
      }
      if (!parents_done) {
        deferred.push_back(id);
        continue;
      }
      ready[id] = r;
      auto [free_t, m] = free_at.top();
      free_at.pop();
      const double start = std::max(free_t, r);
      finish[id] = start + dag.jobs[id].index_seconds / machine_index;
      free_at.emplace(finish[id], m);
      makespan = std::max(makespan, finish[id]);
      done[id] = true;
      progressed = true;
    }
    if (!progressed) break;  // unreachable for a valid dag
    remaining = std::move(deferred);
  }
  return makespan;
}

const char* JobMixName(JobMixKind kind) noexcept {
  switch (kind) {
    case JobMixKind::kBagOfTasks: return "bag";
    case JobMixKind::kChain: return "chain";
    case JobMixKind::kFanInFanOut: return "fanio";
    case JobMixKind::kRandomLayered: return "layered";
    case JobMixKind::kMixed: return "mixed";
  }
  return "?";
}

std::optional<JobMixKind> ParseJobMixName(std::string_view name) {
  if (name == "bag") return JobMixKind::kBagOfTasks;
  if (name == "chain") return JobMixKind::kChain;
  if (name == "fanio") return JobMixKind::kFanInFanOut;
  if (name == "layered") return JobMixKind::kRandomLayered;
  if (name == "mixed") return JobMixKind::kMixed;
  return std::nullopt;
}

JobDag MakeJobMix(const JobMixOptions& options) {
  JobDag dag;
  dag.jobs.reserve(options.jobs);
  util::Rng rng(util::DeriveSeed(options.seed, util::seed_stream::kHarvest,
                                 static_cast<std::uint64_t>(options.kind)));
  switch (options.kind) {
    case JobMixKind::kBagOfTasks:
      AppendBagOfTasks(dag, rng, options, options.jobs);
      break;
    case JobMixKind::kChain:
      AppendChains(dag, rng, options, options.jobs);
      break;
    case JobMixKind::kFanInFanOut:
      AppendFanInFanOut(dag, rng, options, options.jobs);
      break;
    case JobMixKind::kRandomLayered:
      AppendRandomLayered(dag, rng, options, options.jobs);
      break;
    case JobMixKind::kMixed: {
      const std::size_t q = options.jobs / 4;
      AppendBagOfTasks(dag, rng, options, q);
      AppendChains(dag, rng, options, q);
      AppendFanInFanOut(dag, rng, options, q);
      AppendRandomLayered(dag, rng, options, options.jobs - 3 * q);
      break;
    }
  }
  return dag;
}

}  // namespace labmon::harvest
