// Desktop-grid harvesting simulator.
//
// The paper's conclusion is that classroom idleness is harvestable "for
// grid desktop computing" but that volatility "requires survival techniques
// such as checkpointing, oversubscription and multiple executions" (§6).
// This module puts a number on that claim: a Condor/BOINC-style scavenger
// runs a batch of work units on the simulated fleet, co-driven by the same
// behavioural model the monitoring experiment measures, and reports
// throughput, evictions and wasted work under different policies.
//
// Progress is measured in *index-seconds*: one second of exclusive CPU on a
// machine of NBench combined index 1.0. A unit of, say, 25 index-hours
// takes ~48 wall minutes on an idle L03 box (index ~38).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "labmon/util/time.hpp"
#include "labmon/winsim/fleet.hpp"
#include "labmon/workload/driver.hpp"

namespace labmon::harvest {

/// Scavenging policy knobs.
struct HarvestPolicy {
  /// Also run on occupied machines (stealing only the idle share), or
  /// restrict to user-free machines (eviction when somebody logs in).
  bool use_occupied_machines = false;
  /// Seconds of task runtime between checkpoints; 0 disables checkpointing
  /// (an eviction then loses the unit's entire accrued progress).
  double checkpoint_interval_s = 15 * 60;
  /// Scheduler reaction period (matches real scavengers' polling).
  util::SimTime scheduler_step_s = 60;
  /// Machines must have been free for this long before being claimed
  /// (Condor-style "keyboard idle" guard). 0 claims immediately.
  util::SimTime claim_delay_s = 5 * 60;
  /// Speculative backup copies (the paper's "multiple executions"): when
  /// the queue drains, idle machines re-execute the least-progressed
  /// running units from their checkpoints; the first copy to finish wins.
  bool speculative_backups = false;
  int max_copies_per_unit = 2;
};

/// A batch of identical work units.
struct JobBatch {
  std::uint64_t unit_count = 0;
  double unit_index_seconds = 0.0;  ///< work per unit, in index-seconds

  [[nodiscard]] double TotalIndexSeconds() const noexcept {
    return static_cast<double>(unit_count) * unit_index_seconds;
  }
};

/// Outcome of one harvesting run.
struct HarvestResult {
  std::uint64_t units_completed = 0;
  std::uint64_t units_total = 0;
  /// Wall-clock seconds from start until the last unit finished
  /// (= the full horizon when the batch did not finish).
  double makespan_s = 0.0;
  bool batch_finished = false;
  /// Useful work delivered (index-seconds credited to completed/ongoing
  /// progress, net of losses).
  double useful_index_seconds = 0.0;
  /// Work lost to evictions (progress beyond the last checkpoint).
  double wasted_index_seconds = 0.0;
  std::uint64_t evictions_login = 0;     ///< user sat down (free-only mode)
  std::uint64_t evictions_poweroff = 0;  ///< machine shut down under us
  std::uint64_t checkpoints_written = 0;
  std::uint64_t backup_copies_started = 0;
  std::uint64_t backup_copies_cancelled = 0;
  /// Mean number of machines computing at any instant.
  double mean_busy_machines = 0.0;
  /// Fleet-average combined index (Fleet::MeanCombinedIndex) used as the
  /// Fig 6 normaliser below — recorded so consumers never re-derive it.
  double fleet_mean_index = 0.0;
  /// Useful throughput expressed as dedicated machines of fleet-average
  /// index: useful_index_seconds / makespan_s / fleet_mean_index. Divide
  /// by the fleet size to get Figure 6's equivalence ratio (the paper's
  /// 2:1 claim is ratio ≈ 0.51 over free + occupied periods).
  double effective_dedicated_machines = 0.0;

  [[nodiscard]] double WasteFraction() const noexcept {
    const double gross = useful_index_seconds + wasted_index_seconds;
    return gross > 0.0 ? wasted_index_seconds / gross : 0.0;
  }
};

/// The scavenging scheduler. Owns no resources; runs against a fleet and
/// its behavioural driver.
class DesktopGrid {
 public:
  DesktopGrid(winsim::Fleet& fleet, workload::WorkloadDriver& driver,
              HarvestPolicy policy);

  /// Runs `batch` from `start` until completion or `end`, co-simulating
  /// the campus behaviour. Deterministic.
  [[nodiscard]] HarvestResult Run(const JobBatch& batch, util::SimTime start,
                                  util::SimTime end);

 private:
  struct Slot {
    bool has_task = false;
    std::size_t unit = 0;          ///< index into the unit table
    double progress = 0.0;         ///< index-seconds done on this copy
    double started_from = 0.0;     ///< checkpoint the copy resumed from
    double runtime_since_cp = 0.0; ///< task wall seconds since checkpoint
    util::SimTime free_since = 0;  ///< when the machine last became eligible
    bool was_eligible = false;
  };

  struct UnitState {
    double checkpoint = 0.0;  ///< best secured progress across copies
    bool done = false;
    int running_copies = 0;
    bool queued = true;
  };

  [[nodiscard]] bool Eligible(const winsim::Machine& machine) const noexcept;

  winsim::Fleet& fleet_;
  workload::WorkloadDriver& driver_;
  HarvestPolicy policy_;
};

/// Renders a result row (used by the bench).
[[nodiscard]] std::string DescribePolicy(const HarvestPolicy& policy);

}  // namespace labmon::harvest
