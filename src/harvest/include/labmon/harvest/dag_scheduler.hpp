// DagScheduler — opportunistic execution of job DAGs on the idle fleet.
//
// Where DesktopGrid (scheduler.hpp) runs a bag of identical units, the
// DagScheduler runs a JobDag: heterogeneous jobs with dependency edges,
// priorities and deadlines, in the style of taskvine/makeflow workers
// scavenging desktop cycles. It is built on the same substrate — machines
// are claimed through the keyboard-idle guard, tasks checkpoint on a timer,
// evictions cost the progress beyond the last checkpoint — and adds:
//
//  * dependency-aware dispatch: a job becomes ready only when every parent
//    has completed; ready jobs are ordered by priority, then earliest
//    deadline, then id;
//  * event-driven eviction: the scheduler registers as a MachineObserver on
//    the behavioural driver, so interactive logins and power transitions
//    *between* scheduler steps still evict (and reset the idle guard) —
//    a pure poller would miss the paper's §5.2.2 invisible short cycles;
//  * chaos tolerance: a faultsim::FaultPlan maps onto the harvest layer
//    (scripted crashes/outages make machines unclaimable and evict their
//    tasks; stochastic transient errors kill the attempt; hangs stall a
//    step; stragglers slow one), and evicted/failed jobs are retried from
//    their checkpoint under bounded exponential backoff;
//  * exactly-once accounting: each job's work is credited at its first
//    completion and never again, chaos or not.
//
// Retry semantics: the attempt budget (`max_attempts`) is consumed only by
// injected task failures — an eviction is the environment's fault, so it
// requeues (with backoff) without spending the budget. A job whose budget
// is exhausted goes to kFailed and its descendants stay kPending forever.
//
// Determinism: the scheduler is single-threaded, every container is
// index-ordered, and all chaos draws come from one private stream (plan
// seed, substream kHarvest) gated on FaultPlan::Active() — an inactive plan
// makes zero draws, so a zero-fault run is bit-identical to a run with no
// plan at all. DagResult::ResultHash() fingerprints a run for such checks.
#pragma once

#include <cstdint>
#include <vector>

#include "labmon/faultsim/fault_plan.hpp"
#include "labmon/harvest/dag.hpp"
#include "labmon/harvest/scheduler.hpp"
#include "labmon/obs/registry.hpp"
#include "labmon/util/time.hpp"
#include "labmon/winsim/fleet.hpp"
#include "labmon/workload/driver.hpp"

namespace labmon::harvest {

/// Policy of a DAG harvesting run. The embedded HarvestPolicy supplies the
/// substrate knobs (occupied-machine use, checkpoint interval, scheduler
/// step, claim delay); its speculative-backup fields are ignored here —
/// dag jobs run one copy at a time.
struct DagPolicy {
  HarvestPolicy grid;
  /// Injected-failure budget per job (evictions do not count against it).
  int max_attempts = 8;
  /// Bounded exponential backoff applied on every requeue:
  /// delay = min(base * 2^retries, max).
  double retry_backoff_base_s = 60.0;
  double retry_backoff_max_s = 30.0 * 60.0;
};

/// Terminal / in-flight state of one job.
enum class DagJobState : std::uint8_t {
  kPending,    ///< waiting on parents (or stranded behind a failed parent)
  kReady,      ///< dispatchable (includes backoff cooling)
  kRunning,    ///< claimed by a machine
  kCompleted,  ///< finished; credited exactly once
  kFailed,     ///< injected-failure budget exhausted
};

/// Per-job outcome record.
struct DagJobRun {
  DagJobState state = DagJobState::kPending;
  util::SimTime completed_at = 0;   ///< absolute sim time; 0 if never
  std::uint32_t attempts = 0;       ///< dispatches to a machine
  std::uint32_t evictions = 0;      ///< login + poweroff + chaos evictions
  std::uint32_t chaos_failures = 0; ///< injected failures (consume budget)
  std::uint32_t completions = 0;    ///< exactly-once invariant: always <= 1
  bool deadline_met = false;        ///< true iff completed within deadline
};

/// Outcome of one DAG harvesting run.
struct DagResult {
  std::uint64_t jobs_total = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t deadline_misses = 0;  ///< among completed jobs with deadlines
  bool dag_finished = false;
  /// Wall seconds from start to the last completion (= horizon when the
  /// dag did not finish).
  double makespan_s = 0.0;
  /// Goodput: index-seconds credited to completed jobs plus surviving
  /// checkpointed progress of unfinished ones.
  double useful_index_seconds = 0.0;
  /// Eviction/failure waste: progress lost beyond the last checkpoint,
  /// in index-seconds.
  double wasted_index_seconds = 0.0;
  std::uint64_t evictions_login = 0;
  std::uint64_t evictions_poweroff = 0;
  std::uint64_t evictions_chaos = 0;   ///< scripted crash/outage windows
  std::uint64_t chaos_task_failures = 0;
  std::uint64_t retries = 0;           ///< requeues (evictions + failures)
  std::uint64_t checkpoints_written = 0;
  double mean_busy_machines = 0.0;
  /// Fleet-average combined index used in the Fig 6 normalisation.
  double fleet_mean_index = 0.0;
  /// Useful throughput as dedicated machines of fleet-average index —
  /// divide by the fleet size for Figure 6's equivalence ratio.
  double effective_dedicated_machines = 0.0;
  /// Infinite-fleet lower bound of the dag (index-seconds).
  double critical_path_index_seconds = 0.0;
  /// List-schedule makespan on an equal-size dedicated cluster of
  /// fleet-average index (dag.hpp::DedicatedMakespanSeconds).
  double dedicated_makespan_s = 0.0;
  /// makespan / dedicated_makespan (0 when either is unknown); the price
  /// of volatility relative to owning the hardware outright.
  double harvest_slowdown = 0.0;
  /// makespan / (critical path / fleet-mean index): stretch against the
  /// dependency-bound lower envelope.
  double critical_path_stretch = 0.0;
  std::vector<DagJobRun> jobs;

  [[nodiscard]] double WasteFraction() const noexcept {
    const double gross = useful_index_seconds + wasted_index_seconds;
    return gross > 0.0 ? wasted_index_seconds / gross : 0.0;
  }

  /// FNV-1a fingerprint over every per-job record and global counter.
  /// Bit-identical runs (same dag, seeds, plan) hash identically; a single
  /// divergent eviction or duplicated credit changes it.
  [[nodiscard]] std::uint64_t ResultHash() const noexcept;
};

/// The DAG scavenging scheduler. Owns no resources; runs against a fleet
/// and its behavioural driver. Registers itself as the driver's machine
/// observer for the duration of Run (restoring none after).
class DagScheduler final : public workload::MachineObserver {
 public:
  DagScheduler(winsim::Fleet& fleet, workload::WorkloadDriver& driver,
               DagPolicy policy);

  /// Installs the chaos scenario for subsequent Run calls. An inactive
  /// plan (default) is a strict no-op. Scripted outages resolve lab names
  /// against the fleet; unknown labs never fire.
  void SetFaultPlan(const faultsim::FaultPlan& plan);

  /// Optional metrics sink (labmon_harvest_* instruments).
  void SetMetrics(obs::Registry* registry);

  /// Runs `dag` from `start` until completion or `end`, co-simulating the
  /// campus behaviour. Deterministic. The dag must pass ValidateDag.
  [[nodiscard]] DagResult Run(const JobDag& dag, util::SimTime start,
                              util::SimTime end);

  // MachineObserver — driver transitions between scheduler steps.
  void OnBoot(std::size_t machine, util::SimTime t) override;
  void OnShutdown(std::size_t machine, util::SimTime t) override;
  void OnLogin(std::size_t machine, util::SimTime t) override;
  void OnLogout(std::size_t machine, util::SimTime t) override;

 private:
  struct Slot {
    bool has_task = false;
    std::size_t job = 0;
    double progress = 0.0;          ///< index-seconds done on this attempt
    double runtime_since_cp = 0.0;  ///< task wall seconds since checkpoint
    util::SimTime free_since = 0;   ///< when the machine became eligible
    bool was_eligible = false;
    // Transition flags raised by observer callbacks between steps and
    // consumed at the next step.
    bool login_blip = false;   ///< an interactive login occurred
    bool power_blip = false;   ///< a boot or shutdown occurred
  };

  struct JobState {
    double checkpoint = 0.0;  ///< secured progress, index-seconds
    std::uint32_t waiting_on = 0;  ///< unfinished parents
    util::SimTime eligible_at = 0; ///< backoff gate for requeues
    std::uint32_t retries = 0;     ///< requeues so far (backoff exponent)
  };

  struct CrashWindow {
    std::size_t first = 0;   ///< machine range [first, first+count)
    std::size_t count = 0;
    util::SimTime start = 0;
    util::SimTime end = 0;
  };

  [[nodiscard]] bool MachineDownByChaos(std::size_t machine,
                                        util::SimTime t) const noexcept;

  winsim::Fleet& fleet_;
  workload::WorkloadDriver& driver_;
  DagPolicy policy_;
  faultsim::FaultPlan plan_;
  bool chaos_active_ = false;
  std::vector<CrashWindow> crash_windows_;  ///< crashes + resolved outages
  obs::Registry* metrics_ = nullptr;
  std::vector<Slot> slots_;  ///< live only inside Run (observer target)
};

}  // namespace labmon::harvest
