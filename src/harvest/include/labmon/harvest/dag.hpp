// DAG job model for the harvest scheduler.
//
// A JobDag is a batch of heterogeneous work items with dependency edges,
// per-job sizes (in index-seconds, see scheduler.hpp), priorities and
// optional deadlines — the taskvine/makeflow-style workload the paper's §6
// "desktop grid computing" conclusion implies but never runs. Edges point
// strictly backwards (every dependency id is smaller than the job's own
// id), so a valid dag is acyclic by construction and job id order is a
// topological order.
//
// The workload-mix generator produces the four canonical shapes of the
// grid-scheduling literature — bag-of-tasks, chains, fan-in/fan-out
// diamonds, and random layered DAGs — from a seed, deterministically: the
// same options build the identical dag on every platform.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "labmon/util/rng.hpp"
#include "labmon/util/time.hpp"

namespace labmon::harvest {

/// One job of a dag batch.
struct DagJob {
  /// Work, in index-seconds (one second of exclusive CPU on a machine of
  /// NBench combined index 1.0).
  double index_seconds = 0.0;
  /// Higher runs first; ties broken by earliest deadline, then job id.
  int priority = 0;
  /// Completion deadline relative to the run's start (0 = none). Informs
  /// scheduling order (EDF tie-break) and the deadline-miss tally; a missed
  /// deadline never cancels the job.
  util::SimTime deadline = 0;
  /// Parent job ids; every id must be < this job's own id.
  std::vector<std::uint32_t> deps;
};

/// A dependency-ordered batch of jobs.
struct JobDag {
  std::vector<DagJob> jobs;

  [[nodiscard]] double TotalIndexSeconds() const noexcept;
};

/// Structural validation: forward-only edges, no self/duplicate deps,
/// finite non-negative sizes. Returns "" when valid, else a diagnostic.
[[nodiscard]] std::string ValidateDag(const JobDag& dag);

/// Longest dependency path, in index-seconds — the infinite-fleet lower
/// bound on any schedule's work content.
[[nodiscard]] double CriticalPathIndexSeconds(const JobDag& dag);

/// Makespan of a deterministic priority list schedule of `dag` on
/// `machines` identical *dedicated* machines of `machine_index` — no
/// interruptions, no volatility. The baseline the harvested fleet is
/// compared against (the denominator of critical-path stretch and of the
/// dedicated-vs-harvested tables).
[[nodiscard]] double DedicatedMakespanSeconds(const JobDag& dag,
                                              std::size_t machines,
                                              double machine_index);

/// Canonical workload shapes.
enum class JobMixKind : std::uint8_t {
  kBagOfTasks,     ///< independent jobs, no edges
  kChain,          ///< parallel chains (sequential pipelines)
  kFanInFanOut,    ///< diamond blocks: source -> W middles -> sink
  kRandomLayered,  ///< random layer widths, 1-3 parents from the layer above
  kMixed,          ///< one quarter of each shape above
};

[[nodiscard]] const char* JobMixName(JobMixKind kind) noexcept;
/// Parses "bag" / "chain" / "fanio" / "layered" / "mixed".
[[nodiscard]] std::optional<JobMixKind> ParseJobMixName(std::string_view name);

struct JobMixOptions {
  JobMixKind kind = JobMixKind::kMixed;
  std::size_t jobs = 120;
  /// Per-job work drawn log-normal with this mean/sigma (index-hours).
  double mean_index_hours = 8.0;
  double sigma_index_hours = 4.0;
  /// Applied to every job when nonzero (seconds from run start).
  util::SimTime deadline = 0;
  std::uint64_t seed = 20050201;
};

/// Builds a seed-deterministic dag of the requested shape. The result
/// always passes ValidateDag.
[[nodiscard]] JobDag MakeJobMix(const JobMixOptions& options);

}  // namespace labmon::harvest
