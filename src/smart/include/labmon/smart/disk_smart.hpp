// Stateful SMART counters of one simulated hard disk.
//
// Tracks lifetime Power-On Hours and Power Cycle Count across the disk's
// whole life — including the pre-experiment "prior life" the paper exploits
// in §5.2.2 to estimate long-run uptime-per-power-cycle. Sub-hour on-time is
// carried internally so the exported hour counter advances like a real
// drive's (whole hours only).
#pragma once

#include <cstdint>
#include <string>

#include "labmon/smart/attributes.hpp"

namespace labmon::smart {

/// Lifetime SMART state of a disk.
class DiskSmart {
 public:
  DiskSmart() = default;
  /// Seeds prior-life counters (hours on, cycle count) accumulated before
  /// the monitoring experiment begins.
  DiskSmart(std::string serial, double prior_hours, std::uint64_t prior_cycles);

  /// Registers a power-on event (increments the cycle counter).
  void NotePowerOn() noexcept { ++power_cycles_; }

  /// Accrues powered-on time. Call whenever simulated on-time elapses.
  void AccrueOnTime(double seconds) noexcept;

  [[nodiscard]] const std::string& serial() const noexcept { return serial_; }
  /// Lifetime whole power-on hours (SMART raw value of attribute 0x09).
  [[nodiscard]] std::uint64_t PowerOnHours() const noexcept;
  /// Lifetime power-on hours including the fractional part (model-internal
  /// precision, used by analyses that want exact ratios).
  [[nodiscard]] double PowerOnHoursExact() const noexcept { return hours_; }
  /// Lifetime power cycle count (SMART raw value of attribute 0x0C).
  [[nodiscard]] std::uint64_t PowerCycles() const noexcept {
    return power_cycles_;
  }

  /// Mean power-on hours per power cycle over the disk's whole life.
  [[nodiscard]] double UptimePerCycleHours() const noexcept;

  /// Snapshot as an encodable SMART attribute table (the two counters the
  /// study uses plus plausible static attributes).
  [[nodiscard]] AttributeTable Snapshot() const;

 private:
  std::string serial_ = "UNSET-SERIAL";
  double hours_ = 0.0;  ///< lifetime powered-on hours (exact)
  std::uint64_t power_cycles_ = 0;
};

}  // namespace labmon::smart
