// ATA S.M.A.R.T. attribute model.
//
// The paper (§3.1, §5.2.2) reads two SMART counters from every monitored
// disk: Power-On Hours Count (attribute 0x09) and Power Cycle Count
// (attribute 0x0C). We model the real on-disk representation — the 512-byte
// SMART data block of ATA/ATAPI-5, containing up to 30 twelve-byte attribute
// entries and a two's-complement checksum — so the probe exercises a genuine
// decode path rather than reading struct fields.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "labmon/util/expected.hpp"

namespace labmon::smart {

/// Well-known attribute identifiers (subset relevant to the study).
enum class AttributeId : std::uint8_t {
  kRawReadErrorRate = 0x01,
  kSpinUpTime = 0x03,
  kStartStopCount = 0x04,
  kReallocatedSectors = 0x05,
  kSeekErrorRate = 0x07,
  kPowerOnHours = 0x09,
  kSpinRetryCount = 0x0A,
  kPowerCycleCount = 0x0C,
  kTemperature = 0xC2,
  kHardwareEccRecovered = 0xC3,
  kCurrentPendingSectors = 0xC5,
};

/// Human-readable name for an attribute id ("Power_On_Hours", ...).
[[nodiscard]] const char* AttributeName(AttributeId id) noexcept;

/// One 12-byte SMART attribute table entry.
struct Attribute {
  AttributeId id{};
  std::uint16_t flags = 0x0032;  ///< typical event-count flags
  std::uint8_t value = 100;      ///< normalised current value
  std::uint8_t worst = 100;      ///< normalised worst value
  std::uint64_t raw = 0;         ///< 48-bit raw counter
};

inline constexpr std::size_t kSmartBlockSize = 512;
inline constexpr std::size_t kMaxAttributes = 30;

/// A decoded SMART data block: ordered attribute list.
class AttributeTable {
 public:
  /// Adds or replaces the entry for `attr.id`.
  void Set(const Attribute& attr);
  /// Looks up an entry by id.
  [[nodiscard]] std::optional<Attribute> Find(AttributeId id) const noexcept;
  /// Raw counter of an attribute, or `fallback` when absent.
  [[nodiscard]] std::uint64_t RawOf(AttributeId id,
                                    std::uint64_t fallback = 0) const noexcept;

  [[nodiscard]] const std::vector<Attribute>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Serialises to the 512-byte ATA SMART data block (entries at offset 2,
  /// zero padding, checksum in the final byte so the block sums to 0 mod 256).
  [[nodiscard]] std::array<std::uint8_t, kSmartBlockSize> Encode() const;

  /// Parses a 512-byte block; verifies the checksum and entry bounds.
  [[nodiscard]] static util::Result<AttributeTable> Decode(
      std::span<const std::uint8_t> block);

 private:
  std::vector<Attribute> entries_;
};

}  // namespace labmon::smart
