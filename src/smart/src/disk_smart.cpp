#include "labmon/smart/disk_smart.hpp"

#include <algorithm>
#include <cmath>

namespace labmon::smart {

DiskSmart::DiskSmart(std::string serial, double prior_hours,
                     std::uint64_t prior_cycles)
    : serial_(std::move(serial)),
      hours_(std::max(0.0, prior_hours)),
      power_cycles_(prior_cycles) {}

void DiskSmart::AccrueOnTime(double seconds) noexcept {
  if (seconds > 0.0) hours_ += seconds / 3600.0;
}

std::uint64_t DiskSmart::PowerOnHours() const noexcept {
  return static_cast<std::uint64_t>(hours_);
}

double DiskSmart::UptimePerCycleHours() const noexcept {
  if (power_cycles_ == 0) return 0.0;
  return hours_ / static_cast<double>(power_cycles_);
}

AttributeTable DiskSmart::Snapshot() const {
  AttributeTable table;
  // Normalised value for POH conventionally decays from 100; clamp at 1.
  const auto poh = PowerOnHours();
  const auto poh_value = static_cast<std::uint8_t>(
      std::max<std::int64_t>(1, 100 - static_cast<std::int64_t>(poh / 1000)));
  table.Set(Attribute{AttributeId::kRawReadErrorRate, 0x000f, 100, 100, 0});
  table.Set(Attribute{AttributeId::kSpinUpTime, 0x0003, 97, 97, 1480});
  table.Set(Attribute{AttributeId::kStartStopCount, 0x0032, 100, 100,
                      power_cycles_});
  table.Set(Attribute{AttributeId::kReallocatedSectors, 0x0033, 100, 100, 0});
  table.Set(Attribute{AttributeId::kPowerOnHours, 0x0032, poh_value, poh_value,
                      poh});
  table.Set(Attribute{AttributeId::kPowerCycleCount, 0x0032, 100, 100,
                      power_cycles_});
  table.Set(Attribute{AttributeId::kTemperature, 0x0022, 36, 42, 36});
  return table;
}

}  // namespace labmon::smart
