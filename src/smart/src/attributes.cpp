#include "labmon/smart/attributes.hpp"

#include <algorithm>

namespace labmon::smart {

const char* AttributeName(AttributeId id) noexcept {
  switch (id) {
    case AttributeId::kRawReadErrorRate: return "Raw_Read_Error_Rate";
    case AttributeId::kSpinUpTime: return "Spin_Up_Time";
    case AttributeId::kStartStopCount: return "Start_Stop_Count";
    case AttributeId::kReallocatedSectors: return "Reallocated_Sector_Ct";
    case AttributeId::kSeekErrorRate: return "Seek_Error_Rate";
    case AttributeId::kPowerOnHours: return "Power_On_Hours";
    case AttributeId::kSpinRetryCount: return "Spin_Retry_Count";
    case AttributeId::kPowerCycleCount: return "Power_Cycle_Count";
    case AttributeId::kTemperature: return "Temperature_Celsius";
    case AttributeId::kHardwareEccRecovered: return "Hardware_ECC_Recovered";
    case AttributeId::kCurrentPendingSectors: return "Current_Pending_Sector";
  }
  return "Unknown_Attribute";
}

void AttributeTable::Set(const Attribute& attr) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Attribute& e) { return e.id == attr.id; });
  if (it != entries_.end()) {
    *it = attr;
  } else {
    entries_.push_back(attr);
  }
}

std::optional<Attribute> AttributeTable::Find(AttributeId id) const noexcept {
  for (const auto& e : entries_) {
    if (e.id == id) return e;
  }
  return std::nullopt;
}

std::uint64_t AttributeTable::RawOf(AttributeId id,
                                    std::uint64_t fallback) const noexcept {
  const auto attr = Find(id);
  return attr ? attr->raw : fallback;
}

std::array<std::uint8_t, kSmartBlockSize> AttributeTable::Encode() const {
  std::array<std::uint8_t, kSmartBlockSize> block{};
  // Bytes 0-1: SMART structure revision number (0x0010 little-endian).
  block[0] = 0x10;
  block[1] = 0x00;
  std::size_t offset = 2;
  const std::size_t n = std::min(entries_.size(), kMaxAttributes);
  for (std::size_t i = 0; i < n; ++i) {
    const Attribute& a = entries_[i];
    block[offset + 0] = static_cast<std::uint8_t>(a.id);
    block[offset + 1] = static_cast<std::uint8_t>(a.flags & 0xff);
    block[offset + 2] = static_cast<std::uint8_t>(a.flags >> 8);
    block[offset + 3] = a.value;
    block[offset + 4] = a.worst;
    for (int b = 0; b < 6; ++b) {
      block[offset + 5 + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>((a.raw >> (8 * b)) & 0xff);
    }
    block[offset + 11] = 0;  // reserved
    offset += 12;
  }
  // Final byte: two's-complement checksum over the first 511 bytes.
  std::uint8_t sum = 0;
  for (std::size_t i = 0; i + 1 < kSmartBlockSize; ++i) sum += block[i];
  block[kSmartBlockSize - 1] = static_cast<std::uint8_t>(0x100 - sum);
  return block;
}

util::Result<AttributeTable> AttributeTable::Decode(
    std::span<const std::uint8_t> block) {
  using R = util::Result<AttributeTable>;
  if (block.size() != kSmartBlockSize) {
    return R::Err("SMART block must be exactly 512 bytes");
  }
  std::uint8_t sum = 0;
  for (const std::uint8_t byte : block) sum += byte;
  if (sum != 0) return R::Err("SMART block checksum mismatch");

  AttributeTable table;
  std::size_t offset = 2;
  for (std::size_t i = 0; i < kMaxAttributes; ++i, offset += 12) {
    const std::uint8_t id = block[offset];
    if (id == 0) continue;  // vacant slot
    Attribute a;
    a.id = static_cast<AttributeId>(id);
    a.flags = static_cast<std::uint16_t>(block[offset + 1] |
                                         (block[offset + 2] << 8));
    a.value = block[offset + 3];
    a.worst = block[offset + 4];
    a.raw = 0;
    for (int b = 5; b >= 0; --b) {
      a.raw = (a.raw << 8) | block[offset + 5 + static_cast<std::size_t>(b)];
    }
    table.entries_.push_back(a);
  }
  return table;
}

}  // namespace labmon::smart
