#include "labmon/workload/timetable.hpp"

#include <algorithm>

namespace labmon::workload {

Timetable Timetable::Generate(const TimetableModel& model,
                              std::size_t lab_count,
                              const std::vector<double>& popularity,
                              util::Rng& rng) {
  Timetable tt;
  for (std::size_t lab = 0; lab < lab_count; ++lab) {
    const double pop = lab < popularity.size() ? popularity[lab] : 0.5;
    // Scale slot probability around the mean by popularity: fast labs get
    // proportionally more teaching (they are requested by lecturers).
    const double scale =
        1.0 + model.popularity_skew * (2.0 * pop - 1.0);
    const double weekday_p =
        std::clamp(model.weekday_slot_prob * scale, 0.0, 0.95);
    const double saturday_p =
        std::clamp(model.saturday_slot_prob * scale, 0.0, 0.9);

    for (int d = 0; d < 5; ++d) {
      for (const int hour : TimetableModel::kWeekdaySlots) {
        if (!rng.Bernoulli(weekday_p)) continue;
        ClassBlock block;
        block.lab = lab;
        block.day = static_cast<util::DayOfWeek>(d);
        block.start_hour = hour;
        block.duration_hours = 2;
        tt.blocks_.push_back(block);
      }
    }
    for (const int hour : TimetableModel::kSaturdaySlots) {
      if (!rng.Bernoulli(saturday_p)) continue;
      ClassBlock block;
      block.lab = lab;
      block.day = util::DayOfWeek::kSaturday;
      block.start_hour = hour;
      block.duration_hours = 2;
      tt.blocks_.push_back(block);
    }
  }

  // The CPU-heavy Tuesday practical: remove colliding blocks, then insert.
  if (model.heavy_class_lab >= 0 &&
      static_cast<std::size_t>(model.heavy_class_lab) < lab_count) {
    const auto lab = static_cast<std::size_t>(model.heavy_class_lab);
    const int start = model.heavy_class_start_hour;
    const int end = start + model.heavy_class_hours;
    std::erase_if(tt.blocks_, [&](const ClassBlock& b) {
      if (b.lab != lab || b.day != util::DayOfWeek::kTuesday) return false;
      const int b_end = b.start_hour + b.duration_hours;
      return b.start_hour < end && b_end > start;
    });
    ClassBlock heavy;
    heavy.lab = lab;
    heavy.day = util::DayOfWeek::kTuesday;
    heavy.start_hour = start;
    heavy.duration_hours = model.heavy_class_hours;
    heavy.cpu_heavy = true;
    tt.blocks_.push_back(heavy);
  }

  std::sort(tt.blocks_.begin(), tt.blocks_.end(),
            [](const ClassBlock& a, const ClassBlock& b) {
              const auto ka = a.StartInWeek(0);
              const auto kb = b.StartInWeek(0);
              return ka != kb ? ka < kb : a.lab < b.lab;
            });
  return tt;
}

std::vector<ClassBlock> Timetable::BlocksForLab(std::size_t lab) const {
  std::vector<ClassBlock> out;
  for (const ClassBlock& b : blocks_) {
    if (b.lab == lab) out.push_back(b);
  }
  return out;
}

bool Timetable::InClass(std::size_t lab, int minute_of_week) const noexcept {
  for (const ClassBlock& b : blocks_) {
    if (b.lab != lab) continue;
    const int start =
        (static_cast<int>(b.day) * 24 + b.start_hour) * 60;
    const int end = start + b.duration_hours * 60;
    if (minute_of_week >= start && minute_of_week < end) return true;
  }
  return false;
}

double Timetable::MeanClassesPerLab(std::size_t lab_count) const noexcept {
  if (lab_count == 0) return 0.0;
  return static_cast<double>(blocks_.size()) / static_cast<double>(lab_count);
}

}  // namespace labmon::workload
