#include "labmon/workload/config_io.hpp"

#include <sstream>
#include <vector>

#include "labmon/util/csv.hpp"
#include "labmon/util/ini.hpp"
#include "labmon/util/strings.hpp"

namespace labmon::workload {

namespace {

/// A flat view over every tunable of a CampusConfig.
struct FieldMap {
  std::vector<std::pair<std::string, double*>> doubles;
  std::vector<std::pair<std::string, int*>> ints;
  std::vector<std::pair<std::string, bool*>> bools;
};

FieldMap BuildMap(CampusConfig& c) {
  FieldMap m;
  const auto d = [&](const char* key, double& field) {
    m.doubles.emplace_back(key, &field);
  };
  const auto i = [&](const char* key, int& field) {
    m.ints.emplace_back(key, &field);
  };
  const auto b = [&](const char* key, bool& field) {
    m.bools.emplace_back(key, &field);
  };

  i("experiment.days", c.days);
  i("experiment.scale_labs", c.scale_labs);

  i("hours.open_hour", c.hours.open_hour);
  i("hours.weekday_close_hour", c.hours.weekday_close_hour);
  i("hours.saturday_close_hour", c.hours.saturday_close_hour);
  b("hours.sunday_open", c.hours.sunday_open);

  d("timetable.weekday_slot_prob", c.timetable.weekday_slot_prob);
  d("timetable.saturday_slot_prob", c.timetable.saturday_slot_prob);
  d("timetable.popularity_skew", c.timetable.popularity_skew);
  d("timetable.class_occupancy", c.timetable.class_occupancy);
  d("timetable.keep_walkin_in_class", c.timetable.keep_walkin_in_class);
  d("timetable.heavy_class_occupancy", c.timetable.heavy_class_occupancy);
  i("timetable.heavy_class_lab", c.timetable.heavy_class_lab);
  i("timetable.heavy_class_start_hour", c.timetable.heavy_class_start_hour);
  i("timetable.heavy_class_hours", c.timetable.heavy_class_hours);

  d("arrivals.weekday_peak_per_hour", c.arrivals.weekday_peak_per_hour);
  d("arrivals.morning_factor", c.arrivals.morning_factor);
  d("arrivals.midday_factor", c.arrivals.midday_factor);
  d("arrivals.afternoon_factor", c.arrivals.afternoon_factor);
  d("arrivals.evening_factor", c.arrivals.evening_factor);
  d("arrivals.night_factor", c.arrivals.night_factor);
  d("arrivals.saturday_factor", c.arrivals.saturday_factor);
  d("arrivals.popularity_bias", c.arrivals.popularity_bias);
  b("arrivals.prefer_off_machines", c.arrivals.prefer_off_machines);
  d("arrivals.session_minutes_mean", c.arrivals.session_minutes_mean);
  d("arrivals.session_minutes_sigma", c.arrivals.session_minutes_sigma);
  d("arrivals.session_minutes_cap", c.arrivals.session_minutes_cap);
  d("arrivals.long_stay_prob", c.arrivals.long_stay_prob);
  d("arrivals.long_stay_hours_lo", c.arrivals.long_stay_hours_lo);
  d("arrivals.long_stay_hours_hi", c.arrivals.long_stay_hours_hi);

  d("activity.background_busy", c.activity.background_busy);
  d("activity.boot_busy", c.activity.boot_busy);
  d("activity.boot_busy_seconds", c.activity.boot_busy_seconds);
  d("activity.phase_minutes_mean", c.activity.phase_minutes_mean);
  d("activity.light_prob", c.activity.light_prob);
  d("activity.light_busy_lo", c.activity.light_busy_lo);
  d("activity.light_busy_hi", c.activity.light_busy_hi);
  d("activity.medium_prob", c.activity.medium_prob);
  d("activity.medium_busy_lo", c.activity.medium_busy_lo);
  d("activity.medium_busy_hi", c.activity.medium_busy_hi);
  d("activity.heavy_busy_lo", c.activity.heavy_busy_lo);
  d("activity.heavy_busy_hi", c.activity.heavy_busy_hi);
  d("activity.heavy_class_busy_lo", c.activity.heavy_class_busy_lo);
  d("activity.heavy_class_busy_hi", c.activity.heavy_class_busy_hi);
  d("activity.compute_server_fraction", c.activity.compute_server_fraction);
  d("activity.compute_server_busy_lo", c.activity.compute_server_busy_lo);
  d("activity.compute_server_busy_hi", c.activity.compute_server_busy_hi);

  d("memory.base_load_512mb", c.memory.base_load_512mb);
  d("memory.base_load_256mb", c.memory.base_load_256mb);
  d("memory.base_load_128mb", c.memory.base_load_128mb);
  d("memory.base_jitter", c.memory.base_jitter);
  d("memory.app_mb_mean", c.memory.app_mb_mean);
  d("memory.app_mb_sigma", c.memory.app_mb_sigma);
  d("memory.swap_base_512mb", c.memory.swap_base_512mb);
  d("memory.swap_base_256mb", c.memory.swap_base_256mb);
  d("memory.swap_base_128mb", c.memory.swap_base_128mb);
  d("memory.swap_jitter", c.memory.swap_jitter);
  d("memory.swap_app_points_mean", c.memory.swap_app_points_mean);

  d("disk.jitter_gb", c.disk.jitter_gb);
  d("disk.student_temp_mb_lo", c.disk.student_temp_mb_lo);
  d("disk.student_temp_mb_hi", c.disk.student_temp_mb_hi);
  d("disk.image_gb_large", c.disk.image_gb_large);
  d("disk.image_gb_medium", c.disk.image_gb_medium);
  d("disk.image_gb_small", c.disk.image_gb_small);
  d("disk.image_gb_tiny", c.disk.image_gb_tiny);
  d("disk.image_gb_mini", c.disk.image_gb_mini);

  d("network.background_sent_bps", c.network.background_sent_bps);
  d("network.background_recv_bps", c.network.background_recv_bps);
  d("network.background_jitter", c.network.background_jitter);
  d("network.active_recv_bps_mean", c.network.active_recv_bps_mean);
  d("network.active_recv_bps_sigma", c.network.active_recv_bps_sigma);
  d("network.active_sent_ratio_lo", c.network.active_sent_ratio_lo);
  d("network.active_sent_ratio_hi", c.network.active_sent_ratio_hi);

  b("power.sweeps_enabled", c.power.sweeps_enabled);
  d("power.off_after_walkin", c.power.off_after_walkin);
  d("power.off_after_class", c.power.off_after_class);
  d("power.off_after_evening", c.power.off_after_evening);
  i("power.evening_hour", c.power.evening_hour);
  d("power.sweep_kill_floor", c.power.sweep_kill_floor);
  d("power.sweep_kill_scale", c.power.sweep_kill_scale);
  d("power.weekend_kill_floor", c.power.weekend_kill_floor);
  d("power.weekend_kill_scale", c.power.weekend_kill_scale);
  d("power.ghost_kill_multiplier", c.power.ghost_kill_multiplier);
  d("power.sticky_fraction", c.power.sticky_fraction);
  d("power.sticky_stay_on_lo", c.power.sticky_stay_on_lo);
  d("power.sticky_stay_on_hi", c.power.sticky_stay_on_hi);
  d("power.normal_stay_on_lo", c.power.normal_stay_on_lo);
  d("power.normal_stay_on_hi", c.power.normal_stay_on_hi);
  d("power.class_start_reboot_prob", c.power.class_start_reboot_prob);
  d("power.short_cycles_per_day", c.power.short_cycles_per_day);
  d("power.short_cycle_minutes_lo", c.power.short_cycle_minutes_lo);
  d("power.short_cycle_minutes_hi", c.power.short_cycle_minutes_hi);

  d("forgotten.forget_prob_walkin", c.forgotten.forget_prob_walkin);
  d("forgotten.forget_prob_class", c.forgotten.forget_prob_class);
  d("forgotten.forget_prob_at_close", c.forgotten.forget_prob_at_close);
  d("forgotten.abandon_tail_minutes", c.forgotten.abandon_tail_minutes);

  return m;
}

}  // namespace

util::Result<CampusConfig> ParseCampusConfig(const std::string& ini_text,
                                             const CampusConfig& base) {
  using R = util::Result<CampusConfig>;
  const auto ini = util::IniFile::Parse(ini_text);
  if (!ini.ok()) return R::Err(ini.error());

  CampusConfig config = base;
  FieldMap map = BuildMap(config);

  for (const auto& key : ini.value().keys()) {
    // seed is the only 64-bit field and is handled specially.
    if (key == "experiment.seed") {
      const auto raw = ini.value().Get(key);
      const auto parsed = util::ParseInt64(*raw);
      if (!parsed) return R::Err("unparsable value for " + key);
      config.seed = static_cast<std::uint64_t>(*parsed);
      continue;
    }
    bool matched = false;
    bool ok = true;
    for (const auto& [name, field] : map.doubles) {
      if (name == key) {
        *field = ini.value().GetDouble(key, *field, &ok);
        matched = true;
        break;
      }
    }
    if (!matched) {
      for (const auto& [name, field] : map.ints) {
        if (name == key) {
          *field = static_cast<int>(ini.value().GetInt(key, *field, &ok));
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      for (const auto& [name, field] : map.bools) {
        if (name == key) {
          *field = ini.value().GetBool(key, *field, &ok);
          matched = true;
          break;
        }
      }
    }
    if (!matched) return R::Err("unknown scenario key: " + key);
    if (!ok) return R::Err("unparsable value for " + key);
  }
  return config;
}

util::Result<CampusConfig> LoadCampusConfig(const std::string& path,
                                            const CampusConfig& base) {
  auto text = util::ReadTextFile(path);
  if (!text.ok()) return util::Result<CampusConfig>::Err(text.error());
  return ParseCampusConfig(text.value(), base);
}

std::string SaveCampusConfig(const CampusConfig& config) {
  CampusConfig copy = config;
  FieldMap map = BuildMap(copy);
  std::ostringstream out;
  out << "# labmon scenario file\n";
  out << "[experiment]\ndays = " << config.days << "\nseed = " << config.seed
      << "\n";
  // The manual header above already opened [experiment]; seed it into the
  // section tracker so map-order keys (scale_labs) land under it.
  std::string section = "experiment";
  const auto emit = [&](const std::string& key, const std::string& value) {
    const auto dot = key.find('.');
    const std::string sec = key.substr(0, dot);
    if (sec != section) {
      out << "\n[" << sec << "]\n";
      section = sec;
    }
    out << key.substr(dot + 1) << " = " << value << "\n";
  };
  // Emit in map order, which groups by section. 'experiment.days' was
  // already written explicitly above, so skip it here.
  for (const auto& [key, field] : map.ints) {
    if (key == "experiment.days") continue;
    emit(key, std::to_string(*field));
  }
  for (const auto& [key, field] : map.bools) {
    emit(key, *field ? "true" : "false");
  }
  for (const auto& [key, field] : map.doubles) {
    emit(key, util::FormatFixed(*field, 6));
  }
  return out.str();
}

}  // namespace labmon::workload
