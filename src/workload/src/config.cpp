#include "labmon/workload/config.hpp"

namespace labmon::workload {

CampusConfig PaperCampusConfig() { return CampusConfig{}; }

CampusConfig CorporateCampusConfig() {
  CampusConfig config;
  config.seed = 20050202;
  // No teaching: machines belong to individual employees.
  config.timetable.weekday_slot_prob = 0.0;
  config.timetable.saturday_slot_prob = 0.0;
  config.timetable.heavy_class_lab = -1;
  // One owner per machine: arrivals are workday logins, mostly 8-hour days.
  config.arrivals.weekday_peak_per_hour = 26.0;
  config.arrivals.popularity_bias = 0.0;  // owners sit at their own box
  config.arrivals.prefer_off_machines = true;
  config.arrivals.morning_factor = 1.0;   // everyone arrives in the morning
  config.arrivals.midday_factor = 0.35;
  config.arrivals.afternoon_factor = 0.25;
  config.arrivals.evening_factor = 0.05;
  config.arrivals.night_factor = 0.01;
  config.arrivals.saturday_factor = 0.05;
  config.arrivals.long_stay_prob = 0.80;
  config.arrivals.long_stay_hours_lo = 6.0;
  config.arrivals.long_stay_hours_hi = 9.5;
  // Power habits: the paper (citing Douceur) describes two corporate
  // populations — daytime machines and 24-hour machines. No sweeps.
  config.power.sweeps_enabled = false;
  config.power.sticky_fraction = 0.65;   // the 24-hour population
  config.power.sticky_stay_on_lo = 0.96;
  config.power.sticky_stay_on_hi = 0.995;
  config.power.normal_stay_on_lo = 0.10;
  config.power.normal_stay_on_hi = 0.45;
  config.power.off_after_walkin = 0.10;  // logouts rarely power off
  config.power.off_after_class = 0.10;
  config.power.off_after_evening = 0.70; // daytime machines off for the night
  config.power.short_cycles_per_day = 0.2;
  // A minority of boxes crunches continuously (Bolosky's 100%-CPU hosts).
  config.activity.compute_server_fraction = 0.10;
  // Office users forget to log out much less than students do, and there
  // is nobody to shoo them out at a closing time.
  config.forgotten.forget_prob_walkin = 0.05;
  config.forgotten.forget_prob_class = 0.0;
  return config;
}

}  // namespace labmon::workload
