#include "labmon/workload/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace labmon::workload {

namespace {

using util::DayOfWeek;
using util::SimTime;

constexpr double kBootDelaySeconds = 75.0;  // POST + Win2000 startup

}  // namespace

WorkloadDriver::WorkloadDriver(winsim::Fleet& fleet, const CampusConfig& config)
    : fleet_(fleet),
      config_(config),
      owned_profile_(std::make_unique<CampusProfile>(
          CampusProfile::Build(fleet, config))),
      profile_(owned_profile_.get()) {
  Init(0, fleet_.lab_count());
}

WorkloadDriver::WorkloadDriver(winsim::Fleet& fleet, const CampusConfig& config,
                               const CampusProfile& profile,
                               std::size_t lab_begin, std::size_t lab_end)
    : fleet_(fleet), config_(config), profile_(&profile) {
  Init(lab_begin, lab_end);
}

void WorkloadDriver::Init(std::size_t lab_begin, std::size_t lab_end) {
  lab_begin_ = lab_begin;
  lab_end_ = lab_end;
  const auto labs = fleet_.labs();
  first_machine_ = labs[lab_begin_].first;
  machine_end_ = labs[lab_end_ - 1].first + labs[lab_end_ - 1].count;

  labs_.resize(fleet_.lab_count());
  lab_rng_.resize(fleet_.lab_count());
  next_student_.assign(fleet_.lab_count(), 1);
  for (std::size_t l = 0; l < fleet_.lab_count(); ++l) {
    labs_[l].popularity = profile_->popularity[l];
    labs_[l].arrival_weight = profile_->arrival_weight[l];
  }
  for (std::size_t l = lab_begin_; l < lab_end_; ++l) {
    lab_rng_[l] = util::Rng(
        util::DeriveSeed(config_.seed, util::seed_stream::kLabEvents, l));
  }

  // Per-machine temperament, fixed disk image and short power cycles, all
  // from the machine's own substream: the values depend only on the machine
  // identity, never on which other machines this driver covers.
  const SimTime end = config_.EndTime();
  machines_.resize(fleet_.size());
  for (std::size_t i = first_machine_; i < machine_end_; ++i) {
    util::Rng mrng(
        util::DeriveSeed(config_.seed, util::seed_stream::kMachineTraits, i));
    auto& st = machines_[i];
    const PowerModel& pm = config_.power;
    st.stay_on = mrng.Bernoulli(pm.sticky_fraction)
                     ? mrng.Uniform(pm.sticky_stay_on_lo, pm.sticky_stay_on_hi)
                     : mrng.Uniform(pm.normal_stay_on_lo, pm.normal_stay_on_hi);
    st.disk_image_gb = DiskImageGbFor(fleet_.machine(i).spec().disk_gb) +
                       mrng.Normal(0.0, config_.disk.jitter_gb);
    st.disk_image_gb = std::max(2.0, st.disk_image_gb);
    st.compute_server =
        mrng.Bernoulli(config_.activity.compute_server_fraction);

    // Short power cycles (invisible to 15-min sampling). Busy labs see more
    // of them, and some machines are chronically power-cycled, which spreads
    // the per-machine SMART cycle counts (the paper's sigma = 37).
    const double lab_weight = labs_[fleet_.LabOf(i)].arrival_weight *
                              static_cast<double>(labs_.size());
    const double short_rate = config_.power.short_cycles_per_day * lab_weight *
                              mrng.LogNormalMeanStd(1.0, 0.9);
    for (int day = 0; day < config_.days; ++day) {
      const int cycles = mrng.Poisson(short_rate);
      for (int c = 0; c < cycles; ++c) {
        // Place in the busy part of the day; the handler checks openness.
        const SimTime t =
            util::MakeTime(day, 8) +
            mrng.UniformInt(0, 15 * util::kSecondsPerHour - 1);
        if (t < end) {
          Push(t, EventKind::kShortCycleStart, static_cast<std::uint32_t>(i));
        }
      }
    }
  }

  ScheduleCalendar();
}

void WorkloadDriver::Push(SimTime t, EventKind kind, std::uint32_t index,
                          std::uint64_t gen, SimTime aux, bool flag) {
  queue_.push(Event{t, next_seq_++, kind, index, gen, aux, flag});
}

void WorkloadDriver::ScheduleCalendar() {
  const SimTime end = config_.EndTime();
  const int weeks = (config_.days + 6) / 7;

  // Class blocks, instantiated weekly (only the covered labs' blocks).
  for (int w = 0; w < weeks; ++w) {
    for (std::size_t b = 0; b < profile_->timetable.blocks().size(); ++b) {
      const ClassBlock& block = profile_->timetable.blocks()[b];
      if (block.lab < lab_begin_ || block.lab >= lab_end_) continue;
      const SimTime start = block.StartInWeek(w);
      const SimTime stop = block.EndInWeek(w);
      if (start >= end) continue;
      Push(start, EventKind::kClassStart,
           static_cast<std::uint32_t>(block.lab), 0, stop, block.cpu_heavy);
      Push(std::min(stop, end - 1), EventKind::kClassEnd,
           static_cast<std::uint32_t>(block.lab));
    }
  }

  // Hourly walk-in planners and closing sweeps.
  for (int day = 0; day < config_.days; ++day) {
    for (std::size_t lab = lab_begin_; lab < lab_end_; ++lab) {
      for (int hour = 0; hour < 24; ++hour) {
        Push(util::MakeTime(day, hour), EventKind::kHourPlan,
             static_cast<std::uint32_t>(lab));
      }
      const auto dow = static_cast<DayOfWeek>(day % 7);
      if (!config_.power.sweeps_enabled) continue;
      if (dow == DayOfWeek::kSaturday) {
        // Weekend sweep at Saturday close.
        Push(util::MakeTime(day, config_.hours.saturday_close_hour),
             EventKind::kSweep, static_cast<std::uint32_t>(lab), 0, 0, true);
      } else if (dow != DayOfWeek::kSunday) {
        // Nightly sweep at next-day 04:00 (weekday close).
        const SimTime sweep_t =
            util::MakeTime(day + 1, config_.hours.weekday_close_hour);
        if (sweep_t < end) {
          Push(sweep_t, EventKind::kSweep, static_cast<std::uint32_t>(lab));
        }
      }
    }
  }
}

void WorkloadDriver::AdvanceTo(SimTime t) {
  while (!queue_.empty() && queue_.top().t <= t) {
    const Event e = queue_.top();
    queue_.pop();
    now_ = std::max(now_, e.t);
    ++dispatched_;
    Dispatch(e);
  }
  now_ = std::max(now_, t);
}

void WorkloadDriver::FinishAt(SimTime t) {
  AdvanceTo(t);
  fleet_.AdvanceRangeTo(first_machine_, machine_end_ - first_machine_, t);
}

double WorkloadDriver::StayOnTendency(std::size_t machine) const noexcept {
  return machines_[machine].stay_on;
}

bool WorkloadDriver::IsOpen(SimTime t) const noexcept {
  const auto c = util::ToCivil(t);
  if (c.dow == DayOfWeek::kSunday && !config_.hours.sunday_open) return false;
  if (c.hour >= config_.hours.weekday_close_hour && c.hour < config_.hours.open_hour) {
    return false;  // the 04:00–08:00 daily closure
  }
  if (c.hour >= config_.hours.open_hour) {
    if (c.dow == DayOfWeek::kSaturday) {
      return c.hour < config_.hours.saturday_close_hour;
    }
    return true;
  }
  // 00:00–04:00: spill-over from the previous day's opening.
  switch (c.dow) {
    case DayOfWeek::kMonday:  // Sunday night — closed
    case DayOfWeek::kSunday:  // Saturday closed at 21:00
      return false;
    default:
      return true;
  }
}

double WorkloadDriver::ArrivalRate(std::size_t lab, SimTime t) const noexcept {
  if (!IsOpen(t)) return 0.0;
  const auto c = util::ToCivil(t);
  const ArrivalModel& m = config_.arrivals;
  double factor;
  if (c.hour < 4) {
    factor = m.night_factor;
  } else if (c.hour < 10) {
    factor = m.morning_factor;
  } else if (c.hour < 14) {
    factor = m.midday_factor;
  } else if (c.hour < 18) {
    factor = m.afternoon_factor;
  } else if (c.hour < 22) {
    factor = m.evening_factor;
  } else {
    factor = m.night_factor;
  }
  if (c.dow == DayOfWeek::kSaturday) factor *= m.saturday_factor;
  return m.weekday_peak_per_hour * profile_->arrival_peak_scale * factor *
         labs_[lab].arrival_weight;
}

// ---------------------------------------------------------------------------
// Event dispatch
// ---------------------------------------------------------------------------

void WorkloadDriver::Dispatch(const Event& e) {
  switch (e.kind) {
    case EventKind::kClassStart: OnClassStart(e); break;
    case EventKind::kClassEnd: OnClassEnd(e); break;
    case EventKind::kSeatStart: OnSeatStart(e); break;
    case EventKind::kHourPlan: OnHourPlan(e); break;
    case EventKind::kArrival: OnArrival(e); break;
    case EventKind::kDeferredLogin: OnDeferredLogin(e); break;
    case EventKind::kSessionEnd: OnSessionEnd(e); break;
    case EventKind::kActivityPhase: OnActivityPhase(e); break;
    case EventKind::kAbandonSettle: OnAbandonSettle(e); break;
    case EventKind::kBootSettle: OnBootSettle(e); break;
    case EventKind::kSweep: OnSweep(e); break;
    case EventKind::kShortCycleStart: OnShortCycleStart(e); break;
    case EventKind::kShortCycleEnd: OnShortCycleEnd(e); break;
  }
}

void WorkloadDriver::OnClassStart(const Event& e) {
  const std::size_t lab = e.index;
  util::Rng& rng = lab_rng_[lab];
  labs_[lab].in_class = true;
  labs_[lab].heavy = e.flag;
  labs_[lab].class_end = e.aux;
  const auto& info = fleet_.labs()[lab];
  for (std::size_t i = info.first; i < info.first + info.count; ++i) {
    auto& m = fleet_.machine(i);
    m.AdvanceTo(e.t);
    // Classroom prep: ghost sessions are logged off; live walk-in sessions
    // often stay (the student attends the class or keeps the seat);
    // occasionally a free machine is rebooted (an extra SMART power cycle).
    bool seat_taken = false;
    if (m.powered_on() && m.Session().has_value()) {
      auto& st = machines_[i];
      if (st.sess != SessKind::kForgotten &&
          rng.Bernoulli(config_.timetable.keep_walkin_in_class)) {
        seat_taken = true;
      } else {
        ForceLogout(i, e.t);
      }
    }
    if (m.powered_on() && !seat_taken &&
        rng.Bernoulli(config_.power.class_start_reboot_prob)) {
      ShutdownMachine(i, e.t);
      BootMachine(i, e.t);
      ++truth_.reboots;
    }
    // Enrolled student sits down within the first minutes.
    const double occupancy = e.flag ? config_.timetable.heavy_class_occupancy
                                    : config_.timetable.class_occupancy;
    if (!seat_taken && rng.Bernoulli(occupancy)) {
      const SimTime sit = e.t + rng.UniformInt(0, 7 * 60);
      const SimTime planned_end =
          e.aux + static_cast<SimTime>(rng.Normal(-5.0 * 60.0, 5.0 * 60.0));
      Push(sit, EventKind::kSeatStart, static_cast<std::uint32_t>(i),
           machines_[i].session_gen, std::max(sit + 10 * 60, planned_end),
           e.flag);
    }
  }
}

void WorkloadDriver::OnClassEnd(const Event& e) {
  labs_[e.index].in_class = false;
  labs_[e.index].heavy = false;
}

void WorkloadDriver::OnSeatStart(const Event& e) {
  const std::size_t i = e.index;
  auto& m = fleet_.machine(i);
  m.AdvanceTo(e.t);
  if (m.powered_on() && m.Session().has_value()) return;  // already taken
  if (!m.powered_on()) BootMachine(i, e.t);
  LoginMachine(i, e.t, SessKind::kClass, e.aux, e.flag);
}

void WorkloadDriver::OnHourPlan(const Event& e) {
  const double rate = ArrivalRate(e.index, e.t);
  if (rate <= 0.0) return;
  util::Rng& rng = lab_rng_[e.index];
  const int n = rng.Poisson(rate);
  for (int k = 0; k < n; ++k) {
    Push(e.t + rng.UniformInt(0, util::kSecondsPerHour - 1),
         EventKind::kArrival, e.index);
  }
}

void WorkloadDriver::OnArrival(const Event& e) {
  const std::size_t lab = e.index;
  if (!IsOpen(e.t)) return;
  if (labs_[lab].in_class) {
    ++truth_.lost_arrivals;
    return;
  }
  util::Rng& rng = lab_rng_[lab];
  const auto& info = fleet_.labs()[lab];
  // Prefer a free powered-on machine; otherwise power one on; as a last
  // resort, take over a machine abandoned with a forgotten session.
  std::vector<std::size_t> on_free;
  std::vector<std::size_t> off;
  std::vector<std::size_t> ghosts;
  for (std::size_t i = info.first; i < info.first + info.count; ++i) {
    auto& m = fleet_.machine(i);
    if (!m.powered_on()) {
      off.push_back(i);
    } else if (!m.Session().has_value()) {
      on_free.push_back(i);
    } else if (machines_[i].sess == SessKind::kForgotten) {
      ghosts.push_back(i);
    }
  }
  const ArrivalModel& am = config_.arrivals;
  double minutes;
  if (rng.Bernoulli(am.long_stay_prob)) {
    minutes = 60.0 * rng.Uniform(am.long_stay_hours_lo, am.long_stay_hours_hi);
  } else {
    minutes = std::min(am.session_minutes_cap,
                       rng.LogNormalMeanStd(am.session_minutes_mean,
                                            am.session_minutes_sigma));
  }
  const auto length = static_cast<SimTime>(
      std::max(120.0, minutes * static_cast<double>(util::kSecondsPerMinute)));
  if (config_.arrivals.prefer_off_machines && !off.empty()) {
    const std::size_t i = off[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(off.size()) - 1))];
    fleet_.machine(i).AdvanceTo(e.t);
    BootMachine(i, e.t);
    Push(e.t + static_cast<SimTime>(kBootDelaySeconds),
         EventKind::kDeferredLogin, static_cast<std::uint32_t>(i),
         machines_[i].power_gen, e.t + length, false);
  } else if (!on_free.empty()) {
    const std::size_t i = on_free[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(on_free.size()) - 1))];
    fleet_.machine(i).AdvanceTo(e.t);
    LoginMachine(i, e.t, SessKind::kWalkin, e.t + length, false);
  } else if (!off.empty()) {
    const std::size_t i = off[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(off.size()) - 1))];
    fleet_.machine(i).AdvanceTo(e.t);
    BootMachine(i, e.t);
    Push(e.t + static_cast<SimTime>(kBootDelaySeconds),
         EventKind::kDeferredLogin, static_cast<std::uint32_t>(i),
         machines_[i].power_gen, e.t + length, false);
  } else if (!ghosts.empty()) {
    const std::size_t i = ghosts[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(ghosts.size()) - 1))];
    fleet_.machine(i).AdvanceTo(e.t);
    ForceLogout(i, e.t);  // the ghost session is finally logged off
    LoginMachine(i, e.t, SessKind::kWalkin, e.t + length, false);
  } else {
    ++truth_.lost_arrivals;
  }
}

void WorkloadDriver::OnDeferredLogin(const Event& e) {
  const std::size_t i = e.index;
  auto& m = fleet_.machine(i);
  if (!m.powered_on() || machines_[i].power_gen != e.gen) return;
  m.AdvanceTo(e.t);
  if (m.Session().has_value()) return;
  LoginMachine(i, e.t, SessKind::kWalkin, e.aux, false);
}

void WorkloadDriver::OnSessionEnd(const Event& e) {
  const std::size_t i = e.index;
  auto& st = machines_[i];
  if (st.session_gen != e.gen) return;  // stale
  auto& m = fleet_.machine(i);
  if (!m.powered_on() || !m.Session().has_value()) return;
  m.AdvanceTo(e.t);

  util::Rng& rng = EventRng(i);
  const SessKind kind = st.sess;
  if (rng.Bernoulli(ForgetProb(kind))) {
    // The user walks away without logging out: the session persists, the
    // residual activity dies down after a short tail (§4.2, Figure 2).
    st.sess = SessKind::kForgotten;
    ++truth_.forgotten_sessions;
    const double tail_s =
        rng.Exponential(config_.forgotten.abandon_tail_minutes * 60.0);
    Push(e.t + static_cast<SimTime>(std::max(30.0, tail_s)),
         EventKind::kAbandonSettle, static_cast<std::uint32_t>(i),
         st.session_gen);
    return;
  }

  ForceLogout(i, e.t);
  const auto hour = util::ToCivil(e.t).hour;
  const bool evening =
      hour >= config_.power.evening_hour || hour < config_.hours.open_hour;
  // The machine's stay-on tendency (lab signage, teacher boxes) damps the
  // user's inclination to power it off.
  const double off_prob =
      (evening ? config_.power.off_after_evening : OffProb(kind)) *
      (1.0 - machines_[i].stay_on);
  if (rng.Bernoulli(off_prob)) {
    ShutdownMachine(i, e.t);
  }
}

void WorkloadDriver::OnActivityPhase(const Event& e) {
  const std::size_t i = e.index;
  auto& st = machines_[i];
  if (st.session_gen != e.gen) return;  // stale
  auto& m = fleet_.machine(i);
  if (!m.powered_on() || !m.Session().has_value()) return;
  if (st.sess == SessKind::kNone) return;
  m.AdvanceTo(e.t);

  util::Rng& rng = EventRng(i);
  const ActivityModel& am = config_.activity;
  const NetworkModel& nm = config_.network;
  const double busy = DrawPhaseBusy(rng, st.heavy);
  m.SetCpuBusyFraction(am.background_busy + busy);

  double recv_bps;
  double sent_bps;
  if (st.heavy) {
    // The CPU-heavy practical computes locally; traffic stays modest.
    recv_bps = rng.Uniform(1500.0, 8000.0);
    sent_bps = recv_bps * rng.Uniform(0.2, 0.5);
  } else if (busy < 0.05) {
    // Reading/thinking: near-background traffic.
    recv_bps = nm.background_recv_bps * rng.Uniform(1.0, 4.0);
    sent_bps = nm.background_sent_bps * rng.Uniform(1.0, 3.0);
  } else {
    recv_bps = rng.LogNormalMeanStd(nm.active_recv_bps_mean,
                                    nm.active_recv_bps_sigma);
    sent_bps =
        recv_bps * rng.Uniform(nm.active_sent_ratio_lo, nm.active_sent_ratio_hi);
  }
  m.SetNetRates(sent_bps, recv_bps);

  const double phase_s = rng.Exponential(am.phase_minutes_mean * 60.0);
  Push(e.t + static_cast<SimTime>(std::max(20.0, phase_s)),
       EventKind::kActivityPhase, static_cast<std::uint32_t>(i),
       st.session_gen);
}

void WorkloadDriver::OnAbandonSettle(const Event& e) {
  const std::size_t i = e.index;
  auto& st = machines_[i];
  if (st.session_gen != e.gen) return;
  if (st.sess != SessKind::kForgotten) return;
  auto& m = fleet_.machine(i);
  if (!m.powered_on()) return;
  m.AdvanceTo(e.t);
  // Kill pending activity events; the login session itself stays open.
  ++st.session_gen;
  ApplyIdleRates(i);
}

void WorkloadDriver::OnBootSettle(const Event& e) {
  const std::size_t i = e.index;
  if (machines_[i].power_gen != e.gen) return;
  auto& m = fleet_.machine(i);
  if (!m.powered_on()) return;
  m.AdvanceTo(e.t);
  if (!m.Session().has_value()) ApplyIdleRates(i);
}

void WorkloadDriver::OnSweep(const Event& e) {
  const std::size_t lab = e.index;
  util::Rng& rng = lab_rng_[lab];
  const PowerModel& pm = config_.power;
  const double floor = e.flag ? pm.weekend_kill_floor : pm.sweep_kill_floor;
  const double scale = e.flag ? pm.weekend_kill_scale : pm.sweep_kill_scale;
  const auto& info = fleet_.labs()[lab];
  for (std::size_t i = info.first; i < info.first + info.count; ++i) {
    auto& m = fleet_.machine(i);
    if (!m.powered_on()) continue;
    m.AdvanceTo(e.t);
    auto& st = machines_[i];
    // Anyone still working at closing time is shooed out: the session
    // either ends properly or is left open (and becomes a forgotten one
    // that survives as long as the machine does). Staff powers machines
    // off, but does not log ghost sessions off machines it leaves running.
    if (m.Session().has_value() && st.sess != SessKind::kForgotten) {
      if (rng.Bernoulli(config_.forgotten.forget_prob_at_close)) {
        st.sess = SessKind::kForgotten;
        ++st.session_gen;  // cancels pending session/activity events
        ++truth_.forgotten_sessions;
        ApplyIdleRates(i);
      } else {
        ForceLogout(i, e.t);
      }
    }
    double kill = floor + scale * (1.0 - st.stay_on);
    if (st.sess == SessKind::kForgotten) {
      kill *= config_.power.ghost_kill_multiplier;
    }
    if (rng.Bernoulli(kill)) {
      ShutdownMachine(i, e.t);
      ++truth_.sweep_shutdowns;
    }
  }
}

void WorkloadDriver::OnShortCycleStart(const Event& e) {
  const std::size_t i = e.index;
  auto& m = fleet_.machine(i);
  if (m.powered_on()) return;
  if (!IsOpen(e.t)) return;
  const std::size_t lab = fleet_.LabOf(i);
  if (labs_[lab].in_class) return;
  m.AdvanceTo(e.t);
  BootMachine(i, e.t);
  ++truth_.short_cycles;
  util::Rng& rng = lab_rng_[lab];
  const double minutes = rng.Uniform(config_.power.short_cycle_minutes_lo,
                                     config_.power.short_cycle_minutes_hi);
  Push(e.t + static_cast<SimTime>(minutes * 60.0), EventKind::kShortCycleEnd,
       static_cast<std::uint32_t>(i), machines_[i].power_gen);
}

void WorkloadDriver::OnShortCycleEnd(const Event& e) {
  const std::size_t i = e.index;
  if (machines_[i].power_gen != e.gen) return;
  auto& m = fleet_.machine(i);
  if (!m.powered_on() || m.Session().has_value()) return;
  m.AdvanceTo(e.t);
  ShutdownMachine(i, e.t);
}

// ---------------------------------------------------------------------------
// Machine manipulation
// ---------------------------------------------------------------------------

void WorkloadDriver::BootMachine(std::size_t i, SimTime t) {
  auto& m = fleet_.machine(i);
  auto& st = machines_[i];
  util::Rng& rng = EventRng(i);
  m.Boot(t);
  ++st.power_gen;
  ++truth_.boots;
  if (observer_ != nullptr) observer_->OnBoot(i, t);

  const auto& spec = m.spec();
  const MemoryModel& mm = config_.memory;
  double base_mem;
  double base_swap;
  if (spec.ram_mb >= 512) {
    base_mem = mm.base_load_512mb;
    base_swap = mm.swap_base_512mb;
  } else if (spec.ram_mb >= 256) {
    base_mem = mm.base_load_256mb;
    base_swap = mm.swap_base_256mb;
  } else {
    base_mem = mm.base_load_128mb;
    base_swap = mm.swap_base_128mb;
  }
  st.base_mem = std::clamp(base_mem + rng.Normal(0.0, mm.base_jitter), 5.0, 95.0);
  st.base_swap =
      std::clamp(base_swap + rng.Normal(0.0, mm.swap_jitter), 2.0, 90.0);
  st.app_mem_points = 0.0;
  st.app_swap_points = 0.0;
  st.temp_disk_bytes = 0.0;
  st.sess = SessKind::kNone;
  st.heavy = false;

  m.SetMemLoadPercent(st.base_mem);
  m.SetSwapLoadPercent(st.base_swap);
  m.SetDiskUsedBytes(static_cast<std::uint64_t>(st.disk_image_gb * 1e9));

  // Boot burst, then settle to the idle baseline.
  m.SetCpuBusyFraction(config_.activity.boot_busy);
  const NetworkModel& nm = config_.network;
  m.SetNetRates(nm.background_sent_bps * 2.5, nm.background_recv_bps * 3.0);
  Push(t + static_cast<SimTime>(config_.activity.boot_busy_seconds),
       EventKind::kBootSettle, static_cast<std::uint32_t>(i), st.power_gen);
}

void WorkloadDriver::ShutdownMachine(std::size_t i, SimTime t) {
  auto& m = fleet_.machine(i);
  auto& st = machines_[i];
  m.Shutdown(t);
  ++st.power_gen;
  ++st.session_gen;
  st.sess = SessKind::kNone;
  ++truth_.shutdowns;
  // A shutdown implies the end of any interactive session; observers get
  // only the shutdown (the stronger signal).
  if (observer_ != nullptr) observer_->OnShutdown(i, t);
}

void WorkloadDriver::LoginMachine(std::size_t i, SimTime t, SessKind kind,
                                  SimTime planned_end, bool heavy) {
  auto& m = fleet_.machine(i);
  auto& st = machines_[i];
  if (m.Session().has_value()) return;

  // Lab-scoped account names: the per-lab sequence keeps a lab's user ids
  // independent of campus-wide login interleaving (shard invariance).
  const std::size_t lab = fleet_.LabOf(i);
  util::Rng& rng = lab_rng_[lab];
  char user[32];
  std::snprintf(user, sizeof user, "a%03llu%05llu",
                static_cast<unsigned long long>(lab),
                static_cast<unsigned long long>(next_student_[lab]++));
  m.Login(user, t);
  ++st.session_gen;
  st.sess = kind;
  st.heavy = heavy;
  if (observer_ != nullptr) observer_->OnLogin(i, t);
  if (kind == SessKind::kClass) {
    ++truth_.class_logins;
  } else {
    ++truth_.walkin_logins;
  }

  const MemoryModel& mm = config_.memory;
  const double app_mb =
      std::max(15.0, rng.Normal(mm.app_mb_mean, mm.app_mb_sigma));
  st.app_mem_points = app_mb / m.spec().ram_mb * 100.0;
  st.app_swap_points =
      mm.swap_app_points_mean * (256.0 / m.spec().ram_mb) *
      rng.Uniform(0.6, 1.4);
  m.SetMemLoadPercent(std::min(95.0, st.base_mem + st.app_mem_points));
  m.SetSwapLoadPercent(std::min(90.0, st.base_swap + st.app_swap_points));

  st.temp_disk_bytes = rng.Uniform(config_.disk.student_temp_mb_lo,
                                   config_.disk.student_temp_mb_hi) *
                       1e6;
  m.SetDiskUsedBytes(static_cast<std::uint64_t>(st.disk_image_gb * 1e9 +
                                                st.temp_disk_bytes));

  const SimTime end = std::max(planned_end, t + 2 * util::kSecondsPerMinute);
  Push(end, EventKind::kSessionEnd, static_cast<std::uint32_t>(i),
       st.session_gen);
  Push(t + 5, EventKind::kActivityPhase, static_cast<std::uint32_t>(i),
       st.session_gen);
}

void WorkloadDriver::ForceLogout(std::size_t i, SimTime t) {
  auto& m = fleet_.machine(i);
  auto& st = machines_[i];
  if (!m.powered_on()) return;
  m.AdvanceTo(t);
  if (!m.Session().has_value()) return;
  m.Logout();
  ++st.session_gen;
  st.sess = SessKind::kNone;
  st.heavy = false;
  st.app_mem_points = 0.0;
  st.app_swap_points = 0.0;
  // Local temp area is cleaned at logout (usage policy, §5).
  st.temp_disk_bytes = 0.0;
  m.SetMemLoadPercent(st.base_mem);
  m.SetSwapLoadPercent(st.base_swap);
  m.SetDiskUsedBytes(static_cast<std::uint64_t>(st.disk_image_gb * 1e9));
  ApplyIdleRates(i);
  if (observer_ != nullptr) observer_->OnLogout(i, t);
}

void WorkloadDriver::ApplyIdleRates(std::size_t i) {
  auto& m = fleet_.machine(i);
  util::Rng& rng = EventRng(i);
  const NetworkModel& nm = config_.network;
  if (machines_[i].compute_server) {
    // A compute box crunches whenever it is powered on ("some of the
    // machines presented a continuous 100% CPU usage", §5 / Bolosky).
    m.SetCpuBusyFraction(rng.Uniform(config_.activity.compute_server_busy_lo,
                                     config_.activity.compute_server_busy_hi));
  } else {
    m.SetCpuBusyFraction(config_.activity.background_busy *
                         rng.Uniform(0.7, 1.5));
  }
  m.SetNetRates(
      nm.background_sent_bps * (1.0 + rng.Normal(0.0, nm.background_jitter)),
      nm.background_recv_bps * (1.0 + rng.Normal(0.0, nm.background_jitter)));
}

double WorkloadDriver::DiskImageGbFor(double disk_gb) const noexcept {
  const DiskModel& dm = config_.disk;
  if (disk_gb >= 70.0) return dm.image_gb_large;
  if (disk_gb >= 50.0) return dm.image_gb_medium;
  if (disk_gb >= 30.0) return dm.image_gb_small;
  if (disk_gb >= 17.0) return dm.image_gb_tiny;
  return dm.image_gb_mini;
}

double WorkloadDriver::DrawPhaseBusy(util::Rng& rng, bool heavy_session) {
  const ActivityModel& am = config_.activity;
  if (heavy_session) {
    return rng.Uniform(am.heavy_class_busy_lo, am.heavy_class_busy_hi);
  }
  const double u = rng.Uniform();
  if (u < am.light_prob) {
    return rng.Uniform(am.light_busy_lo, am.light_busy_hi);
  }
  if (u < am.light_prob + am.medium_prob) {
    return rng.Uniform(am.medium_busy_lo, am.medium_busy_hi);
  }
  return rng.Uniform(am.heavy_busy_lo, am.heavy_busy_hi);
}

double WorkloadDriver::ForgetProb(SessKind kind) const noexcept {
  switch (kind) {
    case SessKind::kWalkin: return config_.forgotten.forget_prob_walkin;
    case SessKind::kClass: return config_.forgotten.forget_prob_class;
    default: return 0.0;
  }
}

double WorkloadDriver::OffProb(SessKind kind) const noexcept {
  switch (kind) {
    case SessKind::kWalkin: return config_.power.off_after_walkin;
    case SessKind::kClass: return config_.power.off_after_class;
    default: return 0.0;
  }
}

}  // namespace labmon::workload
