#include "labmon/workload/profile.hpp"

#include <algorithm>

#include "labmon/util/rng.hpp"

namespace labmon::workload {

CampusProfile CampusProfile::Build(const winsim::Fleet& fleet,
                                   const CampusConfig& config) {
  CampusProfile profile;
  const std::size_t lab_count = fleet.lab_count();
  profile.popularity.resize(lab_count);
  profile.arrival_weight.resize(lab_count);
  profile.arrival_peak_scale = static_cast<double>(std::max(1, config.scale_labs));

  // Lab popularity from the NBench combined index (min-max normalised).
  double min_idx = 1e18, max_idx = -1e18;
  std::vector<double> lab_index(lab_count, 0.0);
  for (std::size_t l = 0; l < lab_count; ++l) {
    const auto& info = fleet.labs()[l];
    lab_index[l] = fleet.machine(info.first).spec().CombinedIndex();
    min_idx = std::min(min_idx, lab_index[l]);
    max_idx = std::max(max_idx, lab_index[l]);
  }
  double weight_sum = 0.0;
  for (std::size_t l = 0; l < lab_count; ++l) {
    const double pop = max_idx > min_idx
                           ? (lab_index[l] - min_idx) / (max_idx - min_idx)
                           : 0.5;
    profile.popularity[l] = pop;
    // Walk-in demand: popular labs attract disproportionally more students;
    // small labs (L09) proportionally fewer.
    const auto& info = fleet.labs()[l];
    const double bias = config.arrivals.popularity_bias;
    profile.arrival_weight[l] = ((1.0 - bias) + bias * pop) *
                                (static_cast<double>(info.count) / 16.0);
    weight_sum += profile.arrival_weight[l];
  }
  for (double& w : profile.arrival_weight) w /= weight_sum;

  util::Rng tt_rng(
      util::DeriveSeed(config.seed, util::seed_stream::kTimetable));
  profile.timetable = Timetable::Generate(config.timetable, lab_count,
                                          profile.popularity, tt_rng);
  return profile;
}

}  // namespace labmon::workload
