// CampusProfile — fleet-wide behavioural context shared by every
// WorkloadDriver shard.
//
// Lab popularity, walk-in arrival weights and the weekly class timetable are
// campus-global quantities: they depend on the whole fleet, not on any one
// lab. The sharded engine computes them exactly once (from their own
// deterministic substream) and hands a const reference to each per-lab
// driver, so a lab's behaviour never depends on which shard simulates it.
#pragma once

#include <vector>

#include "labmon/winsim/fleet.hpp"
#include "labmon/workload/config.hpp"
#include "labmon/workload/timetable.hpp"

namespace labmon::workload {

struct CampusProfile {
  /// Per-lab popularity in [0,1] (NBench combined index, min-max normalised
  /// over the whole campus).
  std::vector<double> popularity;
  /// Per-lab share of campus walk-ins; sums to 1 over all labs.
  std::vector<double> arrival_weight;
  /// The weekly class timetable for every lab on campus.
  Timetable timetable;
  /// Multiplier on ArrivalModel::weekday_peak_per_hour. Set to
  /// CampusConfig::scale_labs so each lab replica sees the paper's demand
  /// despite its arrival weight being normalised over the scaled campus.
  double arrival_peak_scale = 1.0;

  /// Builds the profile for a fleet. Deterministic in (fleet, config):
  /// the timetable draws from substream (config.seed, kTimetable).
  [[nodiscard]] static CampusProfile Build(const winsim::Fleet& fleet,
                                           const CampusConfig& config);
};

}  // namespace labmon::workload
