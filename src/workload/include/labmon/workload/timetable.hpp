// Weekly class timetable: which lab teaches in which two-hour slot.
// Real academic timetables repeat weekly, so one schedule is generated per
// lab and instantiated for every week of the experiment.
#pragma once

#include <vector>

#include "labmon/util/rng.hpp"
#include "labmon/util/time.hpp"
#include "labmon/workload/config.hpp"

namespace labmon::workload {

/// One recurring class: `lab` teaches from start to end minute-of-week.
struct ClassBlock {
  std::size_t lab = 0;
  util::DayOfWeek day = util::DayOfWeek::kMonday;
  int start_hour = 0;
  int duration_hours = 2;
  bool cpu_heavy = false;  ///< the Tuesday 50%-CPU practical (§5.3)

  [[nodiscard]] util::SimTime StartInWeek(int week) const noexcept {
    return util::MakeWeekTime(week, day, start_hour);
  }
  [[nodiscard]] util::SimTime EndInWeek(int week) const noexcept {
    return StartInWeek(week) + util::SimTime{duration_hours} * util::kSecondsPerHour;
  }
};

/// The full weekly timetable of the campus.
class Timetable {
 public:
  /// Generates a weekly schedule for `lab_count` labs. `popularity[i]` in
  /// [0, 1] skews class allocation toward popular (faster) labs.
  static Timetable Generate(const TimetableModel& model,
                            std::size_t lab_count,
                            const std::vector<double>& popularity,
                            util::Rng& rng);

  [[nodiscard]] const std::vector<ClassBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return blocks_.size(); }

  /// Blocks taught by one lab.
  [[nodiscard]] std::vector<ClassBlock> BlocksForLab(std::size_t lab) const;

  /// True when `lab` has a class covering minute-of-week `minute`.
  [[nodiscard]] bool InClass(std::size_t lab, int minute_of_week) const noexcept;

  /// Average number of classes per lab per week.
  [[nodiscard]] double MeanClassesPerLab(std::size_t lab_count) const noexcept;

 private:
  std::vector<ClassBlock> blocks_;
};

}  // namespace labmon::workload
