// Scenario files: load/save a CampusConfig as INI so experiments can be
// re-parameterised without recompiling. Every behavioural knob maps to a
// `[section] key`; unknown keys are reported as errors (they are almost
// always typos that would otherwise silently fall back to defaults).
#pragma once

#include <string>

#include "labmon/util/expected.hpp"
#include "labmon/workload/config.hpp"

namespace labmon::workload {

/// Parses a scenario from INI text, starting from `base` (defaults to the
/// paper scenario) and overriding any keys present.
[[nodiscard]] util::Result<CampusConfig> ParseCampusConfig(
    const std::string& ini_text, const CampusConfig& base = CampusConfig{});

/// Loads a scenario file from disk.
[[nodiscard]] util::Result<CampusConfig> LoadCampusConfig(
    const std::string& path, const CampusConfig& base = CampusConfig{});

/// Renders a config as INI text (round-trips through ParseCampusConfig).
[[nodiscard]] std::string SaveCampusConfig(const CampusConfig& config);

}  // namespace labmon::workload
