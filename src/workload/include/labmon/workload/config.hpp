// Behavioural configuration of the simulated campus.
//
// Every stochastic behaviour the paper measures has an explicit knob here.
// `PaperCampusConfig()` returns the calibrated scenario whose emergent
// statistics reproduce the shape of the paper's results (Table 2,
// Figures 2–6); the calibration targets are listed in DESIGN.md.
#pragma once

#include <cstdint>

#include "labmon/util/time.hpp"

namespace labmon::workload {

/// Lab opening policy. The studied classrooms are open 20 h/day on
/// weekdays and Saturdays (closed 04:00–08:00), closed from Saturday 21:00
/// until Monday 08:00 (§4.2, §5.3).
struct OpeningHours {
  int open_hour = 8;            ///< doors open (each open day)
  int weekday_close_hour = 4;   ///< 04:00 *next day* close on Mon–Fri
  int saturday_close_hour = 21; ///< Saturday closes at 21:00
  bool sunday_open = false;     ///< Sundays closed
};

/// Weekly class timetable generation.
struct TimetableModel {
  /// Two-hour teaching slots start at these hours on weekdays.
  static constexpr int kWeekdaySlots[5] = {8, 10, 14, 16, 18};
  static constexpr int kSaturdaySlots[2] = {9, 11};
  /// Probability a weekday slot hosts a class in the *average* lab; actual
  /// per-lab probability is scaled by lab popularity (fast labs teach more).
  double weekday_slot_prob = 0.52;
  double saturday_slot_prob = 0.16;
  /// How strongly popularity skews class allocation (0 = uniform).
  double popularity_skew = 0.70;
  /// Fraction of a lab's seats occupied by enrolled students in a class.
  double class_occupancy = 0.72;
  /// Probability an ongoing walk-in session survives a class starting in
  /// its lab (the student is attending, or simply stays put).
  double keep_walkin_in_class = 0.85;
  /// Seat occupancy of the CPU-heavy practical (it was well attended).
  double heavy_class_occupancy = 0.80;
  /// The infamous Tuesday-afternoon CPU-heavy class (§5.3): lab index,
  /// start hour and duration. Disabled when lab index is negative.
  int heavy_class_lab = 2;        ///< L03 (fast P4 lab)
  int heavy_class_start_hour = 14;
  int heavy_class_hours = 3;      ///< 14:00–17:00 Tuesday
};

/// Walk-in (outside-class) student arrivals.
struct ArrivalModel {
  /// Fleet-wide mean arrivals per hour at the weekday peak; per-lab rates
  /// are this split by popularity weight.
  double weekday_peak_per_hour = 15.5;
  /// Multipliers shaping the day: morning ramp, lunch, afternoon peak,
  /// evening decline, late night trickle.
  double morning_factor = 0.55;    ///< 08–10
  double midday_factor = 0.85;     ///< 10–14
  double afternoon_factor = 1.0;   ///< 14–18
  double evening_factor = 0.65;    ///< 18–22
  double night_factor = 0.20;      ///< 22–04 (labs open late)
  double saturday_factor = 0.25;   ///< whole-day multiplier on Saturdays
  /// How strongly walk-ins prefer fast labs: weight = (1-bias) + bias*pop.
  /// Classrooms: students flock to the P4 rooms; corporate owners have no
  /// choice (bias 0).
  double popularity_bias = 0.85;
  /// Corporate semantics: an arriving owner goes to their *own* (usually
  /// powered-off) box rather than to any free running machine.
  bool prefer_off_machines = false;
  /// Mean/σ of walk-in session length (minutes, log-normal).
  double session_minutes_mean = 82.0;
  double session_minutes_sigma = 68.0;
  double session_minutes_cap = 480.0;
  /// Long-stay students (whole afternoon/evening in the lab): probability
  /// and uniform length range in hours. These populate the 2–9 h bins of
  /// Figure 2 with genuinely active sessions.
  double long_stay_prob = 0.20;
  double long_stay_hours_lo = 6.5;
  double long_stay_hours_hi = 10.6;
};

/// Interactive-session resource behaviour.
struct ActivityModel {
  /// Idle-machine background CPU (services, probes): 0.0025 -> 99.75% idle.
  double background_busy = 0.0025;
  /// Boot burst: CPU pegged at `boot_busy` for `boot_busy_seconds`.
  double boot_busy = 0.45;
  double boot_busy_seconds = 60.0;
  /// Interactive activity is a renewal process of phases with this mean
  /// length (minutes, exponential).
  double phase_minutes_mean = 8.0;
  /// Phase busy-fraction mixture: light (reading/typing), medium (apps),
  /// heavy (compiles/multimedia). Calibrated so an interactive session
  /// consumes ~5.5% CPU on average (Table 2's 94.2% idleness).
  double light_prob = 0.70;
  double light_busy_lo = 0.008, light_busy_hi = 0.05;
  double medium_prob = 0.27;
  double medium_busy_lo = 0.05, medium_busy_hi = 0.17;
  double heavy_busy_lo = 0.25, heavy_busy_hi = 0.60;
  /// CPU-heavy class sessions draw busy uniformly from this range.
  double heavy_class_busy_lo = 0.56, heavy_class_busy_hi = 0.82;
  /// Fraction of machines running continuous compute jobs whenever on
  /// (Bolosky et al. observed such always-100% boxes in the corporate
  /// fleet; zero in classrooms).
  double compute_server_fraction = 0.0;
  double compute_server_busy_lo = 0.90, compute_server_busy_hi = 1.0;
};

/// dwMemoryLoad model: base OS load by installed RAM plus the footprint of
/// interactive applications.
struct MemoryModel {
  double base_load_512mb = 41.5;
  double base_load_256mb = 56.0;
  double base_load_128mb = 65.5;
  double base_jitter = 3.0;        ///< per-boot N(0, σ) wobble
  double app_mb_mean = 62.0;       ///< RAM consumed by a session's apps
  double app_mb_sigma = 22.0;
  double swap_base_512mb = 19.5;
  double swap_base_256mb = 25.0;
  double swap_base_128mb = 31.0;
  double swap_jitter = 2.5;
  /// Extra page-file load while a session's apps are open (percent points,
  /// scaled like app memory by machine size).
  double swap_app_points_mean = 12.0;
};

/// Disk usage: OS + class software image per machine, plus the 100–300 MB
/// student temp area cleared at logout (§5).
struct DiskModel {
  double jitter_gb = 1.0;
  double student_temp_mb_lo = 100.0;
  double student_temp_mb_hi = 300.0;
  /// OS+software image size by disk capacity (GB); interpolated by
  /// capacity thresholds in the driver.
  double image_gb_large = 18.3;   ///< 74.5 GB disks
  double image_gb_medium = 14.6;  ///< 55–60 GB disks
  double image_gb_small = 13.5;   ///< 37 GB disks
  double image_gb_tiny = 10.2;    ///< 18.6 GB disks
  double image_gb_mini = 9.4;     ///< 14.5 GB disks
};

/// NIC traffic model (client-role machines: received >> sent).
struct NetworkModel {
  double background_sent_bps = 250.0;  ///< domain/broadcast chatter
  double background_recv_bps = 350.0;
  double background_jitter = 0.25;     ///< relative σ
  /// Active-phase traffic (log-normal, mean/σ in bytes per second).
  double active_recv_bps_mean = 36000.0;
  double active_recv_bps_sigma = 40000.0;
  double active_sent_ratio_lo = 0.18;  ///< sent = recv * U(lo, hi)
  double active_sent_ratio_hi = 0.42;
};

/// Power on/off habits — the availability engine behind Figs 3/4 and §5.2.
struct PowerModel {
  /// Closing-time sweeps happen at all (classrooms: yes; the corporate
  /// comparison scenario of §5.1 has no cleaning staff powering boxes off).
  bool sweeps_enabled = true;
  /// Probability a student powers the machine off when their session ends.
  double off_after_walkin = 0.18;
  double off_after_class = 0.18;
  /// Sessions ending late (>= `evening_hour`) are likelier to end with a
  /// shutdown — the user is leaving for the day.
  double off_after_evening = 0.72;
  int evening_hour = 19;
  /// Nightly closing sweep: P(shutdown) = floor + scale*(1 - stay_on_i).
  double sweep_kill_floor = 0.06;
  double sweep_kill_scale = 0.78;
  /// Kill-probability multiplier for machines with a live (forgotten)
  /// session on screen — staff hesitates to cut someone's "work".
  double ghost_kill_multiplier = 0.45;
  /// Saturday-close sweep is more thorough (weekend shutdown).
  double weekend_kill_floor = 0.38;
  double weekend_kill_scale = 0.45;
  /// Per-machine "left running" tendency: a bimodal population. Most
  /// machines are dutifully switched off (stay_on in the low range); a
  /// small "sticky" fraction — the server-ish boxes of Fig 4's tail — is
  /// habitually left running.
  double sticky_fraction = 0.20;
  double sticky_stay_on_lo = 0.70;
  double sticky_stay_on_hi = 0.88;
  double normal_stay_on_lo = 0.00;
  double normal_stay_on_hi = 0.15;
  /// P(classroom prep reboots an already-running machine at class start).
  double class_start_reboot_prob = 0.10;
  /// Expected short power cycles (<15 min, invisible to 15-min sampling)
  /// per machine per open day (§5.2.2's 30% cycle excess). Attempts landing
  /// on machines that are already on are dropped, so the effective rate is
  /// roughly half of this.
  double short_cycles_per_day = 1.7;
  double short_cycle_minutes_lo = 2.0;
  double short_cycle_minutes_hi = 7.0;
};

/// Forgotten-logout behaviour (§4.2, Figure 2).
struct ForgottenModel {
  /// Probability a session ends by walking away without logging out.
  double forget_prob_walkin = 0.18;
  double forget_prob_class = 0.10;
  /// Probability that a user still logged in at closing time leaves the
  /// session open (shooed out by staff) rather than logging out. Forgotten
  /// sessions on machines that survive the sweep persist across days —
  /// the source of the paper's 87,830 >= 10 h login samples.
  double forget_prob_at_close = 0.45;
  /// A forgotten session stays "active-looking" for a short tail before
  /// the machine goes fully idle (minutes, exponential).
  double abandon_tail_minutes = 12.0;
};

/// Top-level campus scenario.
struct CampusConfig {
  int days = 77;             ///< experiment length (starts on a Monday)
  std::uint64_t seed = 20050201;  ///< master seed (paper ran Jan–Apr 2005)
  /// Lab-replication factor: the campus holds `scale_labs` copies of the 11
  /// paper labs (169·K machines). The walk-in arrival peak scales with K so
  /// every replica behaves like the paper campus; 1 = the paper itself.
  int scale_labs = 1;

  OpeningHours hours;
  TimetableModel timetable;
  ArrivalModel arrivals;
  ActivityModel activity;
  MemoryModel memory;
  DiskModel disk;
  NetworkModel network;
  PowerModel power;
  ForgottenModel forgotten;

  [[nodiscard]] util::SimTime EndTime() const noexcept {
    return util::SimTime{days} * util::kSecondsPerDay;
  }
};

/// The calibrated scenario reproducing the paper (defaults above are the
/// calibration; this exists as the single named entry point).
[[nodiscard]] CampusConfig PaperCampusConfig();

/// The corporate desktop environment the paper contrasts against (§5.1,
/// after Bolosky et al.): owner-assigned machines, no classes, no closing
/// sweeps, a daytime/24-hour split of power habits, and a minority of
/// always-busy compute boxes. Used by the corporate_comparison bench.
[[nodiscard]] CampusConfig CorporateCampusConfig();

}  // namespace labmon::workload
