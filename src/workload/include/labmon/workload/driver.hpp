// WorkloadDriver — the discrete-event behavioural engine.
//
// Drives a winsim::Fleet through the experiment: weekly class timetables,
// walk-in student arrivals, interactive activity phases, forgotten logouts,
// night closing sweeps, short power cycles and boot bursts. The DDC
// coordinator co-simulates by calling `AdvanceTo(t)` before probing, so
// machine state is always consistent with the behavioural history at every
// sample instant.
//
// Sharding: a driver can cover the whole campus (the classic constructor)
// or any contiguous lab range sharing a precomputed CampusProfile. Labs are
// behaviourally closed systems — classes, arrivals, sweeps, short cycles and
// sessions never cross a lab boundary — and every stochastic draw comes from
// a per-lab or per-machine substream (util::DeriveSeed), so a lab's history
// is bit-identical whether it is simulated alone, with its shard, or with
// the whole campus.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "labmon/util/rng.hpp"
#include "labmon/util/time.hpp"
#include "labmon/winsim/fleet.hpp"
#include "labmon/workload/config.hpp"
#include "labmon/workload/profile.hpp"
#include "labmon/workload/timetable.hpp"

namespace labmon::workload {

/// Counters of what "really happened" — ground truth the sampling-based
/// analyses can be validated against (e.g. §5.2.2's invisible short cycles).
struct GroundTruth {
  std::uint64_t boots = 0;
  std::uint64_t shutdowns = 0;
  std::uint64_t reboots = 0;
  std::uint64_t short_cycles = 0;
  std::uint64_t class_logins = 0;
  std::uint64_t walkin_logins = 0;
  std::uint64_t forgotten_sessions = 0;
  std::uint64_t lost_arrivals = 0;
  std::uint64_t sweep_shutdowns = 0;

  [[nodiscard]] std::uint64_t TotalLogins() const noexcept {
    return class_logins + walkin_logins;
  }

  GroundTruth& operator+=(const GroundTruth& other) noexcept {
    boots += other.boots;
    shutdowns += other.shutdowns;
    reboots += other.reboots;
    short_cycles += other.short_cycles;
    class_logins += other.class_logins;
    walkin_logins += other.walkin_logins;
    forgotten_sessions += other.forgotten_sessions;
    lost_arrivals += other.lost_arrivals;
    sweep_shutdowns += other.sweep_shutdowns;
    return *this;
  }
};

/// Observer of machine-level behavioural transitions, invoked synchronously
/// from AdvanceTo at the exact event instants. This is the interactive-
/// session eviction signal of the harvest layer: a scavenger that merely
/// polls machine state on its scheduler period would miss sessions and
/// power cycles shorter than a step (the §5.2.2 "invisible" short cycles),
/// while a hook sees every one. Callbacks must not mutate the fleet or the
/// driver. Default implementations do nothing, so observers override only
/// the transitions they care about.
class MachineObserver {
 public:
  virtual ~MachineObserver() = default;
  virtual void OnBoot(std::size_t machine, util::SimTime t) {
    (void)machine;
    (void)t;
  }
  virtual void OnShutdown(std::size_t machine, util::SimTime t) {
    (void)machine;
    (void)t;
  }
  virtual void OnLogin(std::size_t machine, util::SimTime t) {
    (void)machine;
    (void)t;
  }
  virtual void OnLogout(std::size_t machine, util::SimTime t) {
    (void)machine;
    (void)t;
  }
};

class WorkloadDriver {
 public:
  /// Whole-campus driver. The fleet must outlive the driver. All machines
  /// must be powered off and at time 0. Builds its own CampusProfile.
  WorkloadDriver(winsim::Fleet& fleet, const CampusConfig& config);

  /// Shard driver covering labs [lab_begin, lab_end). `profile` must cover
  /// the whole fleet and outlive the driver; events, machine stepping and
  /// ground truth are confined to the range's machines.
  WorkloadDriver(winsim::Fleet& fleet, const CampusConfig& config,
                 const CampusProfile& profile, std::size_t lab_begin,
                 std::size_t lab_end);

  WorkloadDriver(const WorkloadDriver&) = delete;
  WorkloadDriver& operator=(const WorkloadDriver&) = delete;

  /// Processes every behavioural event with timestamp <= t. Monotone.
  void AdvanceTo(util::SimTime t);

  /// Advances to `t` and integrates the range's machine counters to `t`
  /// (call once at the end of the experiment).
  void FinishAt(util::SimTime t);

  [[nodiscard]] const Timetable& timetable() const noexcept {
    return profile_->timetable;
  }
  [[nodiscard]] const GroundTruth& ground_truth() const noexcept {
    return truth_;
  }
  [[nodiscard]] const CampusConfig& config() const noexcept { return config_; }
  [[nodiscard]] util::SimTime now() const noexcept { return now_; }
  /// Behavioural events dispatched so far (micro-benchmark counter).
  [[nodiscard]] std::uint64_t dispatched_events() const noexcept {
    return dispatched_;
  }

  /// Installs (or, with nullptr, removes) the transition observer. The
  /// observer must outlive the driver or be removed first; it never affects
  /// the behavioural simulation (no RNG draws, no state changes).
  void SetObserver(MachineObserver* observer) noexcept { observer_ = observer; }

  /// Per-machine behavioural temperament (tests & ablations).
  [[nodiscard]] double StayOnTendency(std::size_t machine) const noexcept;

  /// Walk-in arrival rate (students/hour) for a lab at an instant — exposed
  /// for tests of the intensity shape.
  [[nodiscard]] double ArrivalRate(std::size_t lab, util::SimTime t) const noexcept;

  /// True when the classrooms are open at `t` (§4.2 opening policy).
  [[nodiscard]] bool IsOpen(util::SimTime t) const noexcept;

 private:
  enum class EventKind : std::uint8_t {
    kClassStart,
    kClassEnd,
    kSeatStart,
    kHourPlan,
    kArrival,
    kDeferredLogin,
    kSessionEnd,
    kActivityPhase,
    kAbandonSettle,
    kBootSettle,
    kSweep,
    kShortCycleStart,
    kShortCycleEnd,
  };

  struct Event {
    util::SimTime t = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break for determinism
    EventKind kind{};
    std::uint32_t index = 0;     ///< lab or machine index (fleet-global)
    std::uint64_t gen = 0;       ///< generation tag (stale-event filter)
    util::SimTime aux = 0;       ///< e.g. planned session end
    bool flag = false;           ///< e.g. cpu-heavy / weekend sweep
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  enum class SessKind : std::uint8_t { kNone, kWalkin, kClass, kForgotten };

  struct MachineState {
    std::uint64_t power_gen = 0;
    std::uint64_t session_gen = 0;
    SessKind sess = SessKind::kNone;
    bool heavy = false;
    double stay_on = 0.0;            ///< resists sweeps when high
    bool compute_server = false;     ///< crunches 100% CPU whenever on
    double disk_image_gb = 0.0;      ///< OS+software image (fixed)
    double base_mem = 0.0;           ///< drawn per boot
    double base_swap = 0.0;
    double app_mem_points = 0.0;     ///< while a session's apps are open
    double app_swap_points = 0.0;
    double temp_disk_bytes = 0.0;    ///< student temp area
  };

  struct LabState {
    bool in_class = false;
    bool heavy = false;
    util::SimTime class_end = 0;
    double popularity = 0.5;         ///< [0,1], from NBench indexes
    double arrival_weight = 1.0;     ///< share of campus walk-ins
  };

  void Init(std::size_t lab_begin, std::size_t lab_end);

  /// The event-time stream of the lab a machine belongs to. Every draw a
  /// handler makes for machine `i` must come from here, so a lab's draw
  /// sequence is independent of which other labs this driver covers.
  [[nodiscard]] util::Rng& EventRng(std::size_t machine) noexcept {
    return lab_rng_[fleet_.LabOf(machine)];
  }

  // -- scheduling helpers --------------------------------------------------
  void Push(util::SimTime t, EventKind kind, std::uint32_t index,
            std::uint64_t gen = 0, util::SimTime aux = 0, bool flag = false);
  void ScheduleCalendar();

  // -- event handlers --------------------------------------------------
  void Dispatch(const Event& e);
  void OnClassStart(const Event& e);
  void OnClassEnd(const Event& e);
  void OnSeatStart(const Event& e);
  void OnHourPlan(const Event& e);
  void OnArrival(const Event& e);
  void OnDeferredLogin(const Event& e);
  void OnSessionEnd(const Event& e);
  void OnActivityPhase(const Event& e);
  void OnAbandonSettle(const Event& e);
  void OnBootSettle(const Event& e);
  void OnSweep(const Event& e);
  void OnShortCycleStart(const Event& e);
  void OnShortCycleEnd(const Event& e);

  // -- machine manipulation -------------------------------------------
  void BootMachine(std::size_t i, util::SimTime t);
  void ShutdownMachine(std::size_t i, util::SimTime t);
  void LoginMachine(std::size_t i, util::SimTime t, SessKind kind,
                    util::SimTime planned_end, bool heavy);
  void ForceLogout(std::size_t i, util::SimTime t);
  void ApplyIdleRates(std::size_t i);
  [[nodiscard]] double DiskImageGbFor(double disk_gb) const noexcept;
  [[nodiscard]] double DrawPhaseBusy(util::Rng& rng, bool heavy_session);
  [[nodiscard]] double ForgetProb(SessKind kind) const noexcept;
  [[nodiscard]] double OffProb(SessKind kind) const noexcept;

  winsim::Fleet& fleet_;
  CampusConfig config_;
  std::unique_ptr<CampusProfile> owned_profile_;  ///< whole-campus ctor only
  const CampusProfile* profile_;
  std::size_t lab_begin_ = 0;
  std::size_t lab_end_ = 0;        ///< exclusive
  std::size_t first_machine_ = 0;
  std::size_t machine_end_ = 0;    ///< exclusive
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  util::SimTime now_ = 0;
  /// Per-lab event-time streams, indexed by fleet-global lab id; only the
  /// covered range is seeded (substream kLabEvents).
  std::vector<util::Rng> lab_rng_;
  std::vector<MachineState> machines_;   ///< fleet-global machine index
  std::vector<LabState> labs_;           ///< fleet-global lab index
  /// Per-lab login sequence for synthetic usernames ("a<lab><seq>"), so a
  /// lab's user names do not depend on campus-wide login interleaving.
  std::vector<std::uint64_t> next_student_;
  GroundTruth truth_;
  MachineObserver* observer_ = nullptr;
};

}  // namespace labmon::workload
