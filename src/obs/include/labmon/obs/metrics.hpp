// The three instrument kinds of labmon::obs.
//
// Instruments are lock-free on the write path: Counter and Histogram use
// relaxed atomics, Gauge uses a CAS loop on an atomic<double>. Registry
// lookups (which do take a mutex) are meant to happen once, outside hot
// loops — callers cache the returned reference/pointer.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

namespace labmon::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (may go up and down).
class Gauge {
 public:
  void Set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram (Prometheus bucket semantics: bucket i counts
/// observations <= boundaries[i]; one extra bucket catches the rest).
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries)
      : boundaries_(std::move(boundaries)),
        buckets_(boundaries_.size() + 1) {}

  void Observe(double v) noexcept {
    const auto it =
        std::lower_bound(boundaries_.begin(), boundaries_.end(), v);
    buckets_[static_cast<std::size_t>(it - boundaries_.begin())].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] const std::vector<double>& boundaries() const noexcept {
    return boundaries_;
  }
  /// Non-cumulative count of bucket `i` (i == boundaries().size() is the
  /// overflow / +Inf bucket).
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const auto n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }

 private:
  std::vector<double> boundaries_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

}  // namespace labmon::obs
