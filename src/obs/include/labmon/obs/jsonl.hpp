// JSONL event stream — one JSON object per line, the third labmon::obs
// export format. Carries heterogeneous events (spans, log lines, metric
// dumps) so a whole campaign can be replayed from a single append-only
// file.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string_view>

#include "labmon/util/log.hpp"

namespace labmon::obs {

/// Serialises flat JSON objects line by line. Thread-safe: each
/// Begin()..End() sequence holds the writer lock, so events from
/// concurrent threads interleave only at line granularity.
class JsonlWriter {
 public:
  explicit JsonlWriter(std::ostream& out) : out_(&out) {}
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  /// Opens an event object and writes its "type" field.
  JsonlWriter& Begin(std::string_view type);
  JsonlWriter& Field(std::string_view key, std::string_view value);
  JsonlWriter& Field(std::string_view key, const char* value) {
    return Field(key, std::string_view(value));
  }
  JsonlWriter& Field(std::string_view key, double value);
  JsonlWriter& Field(std::string_view key, std::int64_t value);
  JsonlWriter& Field(std::string_view key, std::uint64_t value);
  /// Closes the object and emits the newline.
  void End();

  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }

 private:
  std::ostream* out_;
  std::mutex mutex_;
  bool open_ = false;
  std::uint64_t events_ = 0;
};

/// Builds a util::log sink that appends every emitted log line to `writer`
/// as {"type":"log","level":"warn","message":...}. Install it with
/// util::log::SetSink; the writer must outlive the installation.
[[nodiscard]] util::log::Sink MakeLogSink(JsonlWriter& writer);

}  // namespace labmon::obs
