// Trace spans — RAII timing scopes ("coordinator.iteration",
// "analysis.table2") recorded into a bounded in-memory ring buffer.
//
// A span captures both wall time (microseconds of steady clock, relative to
// the tracer's construction instant) and, optionally, simulation time.
// When the owning tracer is disabled (the default) constructing a Span
// costs one atomic load and no clock reads, so library code can be
// instrumented unconditionally.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "labmon/util/time.hpp"

namespace labmon::obs {

/// One completed span.
struct SpanRecord {
  std::string name;
  std::uint64_t start_us = 0;     ///< wall clock, relative to tracer epoch
  std::uint64_t duration_us = 0;  ///< wall-clock duration
  util::SimTime sim_start = -1;   ///< simulation range; -1 = not set
  util::SimTime sim_end = -1;
  std::uint32_t thread_id = 0;    ///< small per-process thread ordinal
  std::uint32_t depth = 0;        ///< nesting depth within the thread
  std::uint64_t seq = 0;          ///< global completion order
};

/// Bounded span store. When full, the oldest records are overwritten; the
/// drop count is kept so exports can say so.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 8192);

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since tracer construction (steady clock).
  [[nodiscard]] std::uint64_t NowMicros() const noexcept;

  void Record(SpanRecord record);

  /// Retained records in completion order (oldest first).
  [[nodiscard]] std::vector<SpanRecord> Snapshot() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Records evicted by the ring since construction/Clear.
  [[nodiscard]] std::uint64_t dropped() const;
  void Clear();

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t head_ = 0;         ///< next write slot once the ring is full
  std::uint64_t recorded_ = 0;   ///< total Record() calls
};

/// The process-global tracer (disabled until someone enables it).
[[nodiscard]] Tracer& DefaultTracer();

/// RAII timing scope. Records into `tracer` at destruction when the tracer
/// was enabled at construction; a null/disabled tracer makes the whole
/// object a no-op.
class Span {
 public:
  explicit Span(std::string_view name, Tracer* tracer = &DefaultTracer());
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Attaches the simulation-time range the span covers.
  void SetSimRange(util::SimTime start, util::SimTime end) noexcept {
    record_.sim_start = start;
    record_.sim_end = end;
  }
  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;  ///< null = disabled at construction
  SpanRecord record_;
};

}  // namespace labmon::obs
