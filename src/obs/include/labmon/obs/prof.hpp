// labmon::obs::prof — always-available, shard-aware profiler.
//
// The obs registry answers "how often"; spans answer "when". This layer
// answers "where did the wall time and the bytes go, per shard, per
// phase" — cheaply enough to leave compiled in everywhere:
//
//  * Phase timers: RAII PhaseScope tags a region with a Phase (simulate /
//    probe / collect / merge / analysis / ...). Each thread owns a private
//    log — plain stores, no atomics, no locks on the hot path — holding
//    (a) exact per-(shard, phase) aggregates (wall self/inclusive time,
//    scope count, allocation bytes/count) that never drop data, and (b) a
//    bounded ring of individual timestamped records for timeline export
//    (drop-oldest on overflow, never blocks; drops are counted).
//  * Hot-path sampling: SampledPhaseScope times 1 of every
//    hot_sample_period scopes (weighting the aggregate by the period) so
//    the per-machine-sample probe/advance path stays within the <= 2%
//    overhead budget; the phase *shares* it reports are unbiased because
//    the ~200k machine-samples per run are statistically homogeneous.
//  * Shard attribution: ShardScope sets the thread's current shard id;
//    scopes opened inside it are attributed to that shard.
//  * Allocation accounting: the library interposes global operator
//    new/delete (see prof.cpp) and tallies per-thread bytes/counts;
//    a PhaseScope charges the delta to its phase, children excluded
//    (self-allocation, mirroring self-time).
//  * Contention: when enabled, the profiler installs the
//    util::SetParallelObserver hook and surfaces per-worker queue-wait
//    (spawn-to-start) and barrier-wait (finish-to-join) as registry
//    histograms (labmon_prof_queue_wait_seconds /
//    labmon_prof_barrier_wait_seconds).
//
// When disabled (the default), a PhaseScope costs one relaxed atomic load
// and a branch; the allocation tallies are two thread-local increments per
// new/delete. Enable() is not thread-safe against concurrently open
// scopes — flip it between runs, not during one.
//
// The profiler never perturbs simulation output: it reads clocks and
// counters only, so the collected trace is bit-identical with profiling on
// or off (pinned by tests/obs/test_obs_prof.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace labmon::obs {
class Tracer;
}  // namespace labmon::obs

namespace labmon::obs::prof {

/// Phases of the reproduction pipeline a scope can be charged to.
enum class Phase : std::uint8_t {
  kBuildFleet = 0,  ///< fleet + campus-profile construction
  kSimulate,        ///< workload driver advancement (behaviour model)
  kProbe,           ///< remote execution attempts (transport + codec)
  kCollect,         ///< coordinator sweep shell (sink, retry logic, tallies)
  kMerge,           ///< deterministic per-lab trace merge
  kAnalysis,        ///< derived trace + analysis pipeline
  kSnapshot,        ///< snapshot cache load/store
  kExport,          ///< report/CSV/exporter output
  kStage,           ///< pipelined engine: block sealing + ring transfer/waits
  kFold,            ///< pipelined engine: streaming-analysis fold stage
  kOther,
};
inline constexpr std::size_t kPhaseCount = 11;
[[nodiscard]] const char* PhaseName(Phase phase) noexcept;

/// Shard id meaning "not inside any shard" (serial / coordinator thread).
inline constexpr std::uint32_t kNoShard = 0xffffffffu;

struct Options {
  /// Per-thread ring capacity for individual records (timeline export).
  /// Aggregates are exact regardless; only timeline records drop.
  std::size_t ring_capacity = 8192;
  /// SampledPhaseScope times 1 of every `hot_sample_period` scopes and
  /// weights the aggregate by the period, so per-machine-sample hot paths
  /// (hundreds of thousands of scopes per run) cost a thread-local
  /// increment when sampled out instead of two clock reads. 1 = time
  /// every scope (SampledPhaseScope degenerates to PhaseScope).
  std::uint32_t hot_sample_period = 32;
};

/// Enables the profiler process-wide and installs the ParallelFor
/// observer. Not thread-safe against open scopes.
void Enable(const Options& options = {});
/// Disables scope recording and uninstalls the ParallelFor observer.
/// Accumulated data stays readable until Reset().
void Disable();
[[nodiscard]] bool Enabled() noexcept;
/// Zeroes every thread log (aggregates, rings, drop counters). Call
/// between runs, never while scopes are open on other threads.
void Reset();

/// Monotonic per-thread allocation tallies (bytes requested / call count),
/// maintained by the operator new/delete interposition. Always counting,
/// whether or not the profiler is enabled.
struct AllocCounters {
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
};
[[nodiscard]] AllocCounters ThreadAllocCounters() noexcept;

namespace detail {
struct ThreadLog;
/// Returns this thread's log, creating (or reusing a retired) one.
ThreadLog* AcquireThreadLog();
void RecordScopeExit(ThreadLog* log, Phase phase, std::uint32_t shard,
                     std::uint8_t depth, std::uint64_t start_ns,
                     std::uint64_t total_ns, std::uint64_t self_ns,
                     std::uint64_t bytes_self, std::uint64_t allocs_self,
                     std::uint64_t weight = 1);
[[nodiscard]] std::uint64_t NowNanos() noexcept;
/// True for the 1-in-period scope that should be timed (bumps the
/// thread-local tick); false costs one increment and a branch. Ticks are
/// kept per phase: hot scopes of different phases strictly alternate on a
/// thread (advance, probe, advance, ...), so a single shared counter mod
/// period would phase-lock and starve one of the streams entirely.
[[nodiscard]] bool SampleHotScope(Phase phase) noexcept;
// Thread-local scope stack head + current shard (defined in prof.cpp).
}  // namespace detail

/// Tags the current thread with a shard id for the scope's lifetime.
class ShardScope {
 public:
  explicit ShardScope(std::uint32_t shard) noexcept;
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;
  ~ShardScope();

 private:
  std::uint32_t previous_ = kNoShard;
  bool active_ = false;
};

/// RAII phase timer. Nesting is supported: a parent's self time/allocation
/// excludes its children's, so per-phase self aggregates sum to the real
/// wall time without double counting.
class PhaseScope {
 public:
  explicit PhaseScope(Phase phase) noexcept;
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope();

  [[nodiscard]] bool active() const noexcept { return log_ != nullptr; }

 private:
  friend class SampledPhaseScope;
  detail::ThreadLog* log_ = nullptr;  ///< null = profiler disabled
  PhaseScope* parent_ = nullptr;
  Phase phase_ = Phase::kOther;
  std::uint32_t shard_ = kNoShard;
  std::uint8_t depth_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t bytes0_ = 0;
  std::uint64_t allocs0_ = 0;
  // Totals propagated up by exiting children.
  std::uint64_t child_ns_ = 0;
  std::uint64_t child_bytes_ = 0;
  std::uint64_t child_allocs_ = 0;
};

/// Statistical phase timer for per-machine-sample hot paths (one probe,
/// one driver advance). Times 1 of every Options::hot_sample_period
/// scopes and records it with that weight, so aggregates estimate the
/// full population while a sampled-out scope costs a single thread-local
/// increment. Hot scopes are leaves by design: they propagate their
/// weighted time to the enclosing PhaseScope (keeping the parent's self
/// time statistically correct) but do not expect children of their own.
class SampledPhaseScope {
 public:
  explicit SampledPhaseScope(Phase phase) noexcept;
  SampledPhaseScope(const SampledPhaseScope&) = delete;
  SampledPhaseScope& operator=(const SampledPhaseScope&) = delete;
  ~SampledPhaseScope();

  [[nodiscard]] bool active() const noexcept { return log_ != nullptr; }

 private:
  detail::ThreadLog* log_ = nullptr;  ///< null = disabled or sampled out
  Phase phase_ = Phase::kOther;
  std::uint32_t shard_ = kNoShard;
  std::uint32_t weight_ = 1;
  std::uint8_t depth_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t bytes0_ = 0;
  std::uint64_t allocs0_ = 0;
};

/// One timeline record (ring entry).
struct Record {
  std::uint64_t start_ns = 0;  ///< since profiler epoch (Enable time)
  std::uint64_t dur_ns = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t alloc_bytes = 0;  ///< self (children excluded)
  std::uint32_t alloc_count = 0;
  std::uint32_t shard = kNoShard;
  std::uint32_t thread = 0;  ///< dense per-process log ordinal
  Phase phase = Phase::kOther;
  std::uint8_t depth = 0;
};

/// Exact per-(shard, phase) aggregate.
struct PhaseAgg {
  std::uint32_t shard = kNoShard;
  Phase phase = Phase::kOther;
  std::uint64_t count = 0;        ///< scopes closed
  std::uint64_t self_ns = 0;      ///< wall time, children excluded
  std::uint64_t incl_ns = 0;      ///< wall time including children
  std::uint64_t alloc_bytes = 0;  ///< bytes allocated, children excluded
  std::uint64_t alloc_count = 0;  ///< allocations, children excluded
};

/// Drained profiler state.
struct Report {
  std::vector<PhaseAgg> rows;    ///< sorted by (shard, phase)
  std::vector<Record> records;   ///< all retained ring records, by start_ns
  std::uint64_t dropped_records = 0;
  std::size_t thread_logs = 0;

  /// Sum of self_ns over rows matching `phase` (any shard), seconds.
  [[nodiscard]] double PhaseSelfSeconds(Phase phase) const noexcept;
  /// Sum of alloc_bytes over rows matching `phase` (any shard).
  [[nodiscard]] std::uint64_t PhaseAllocBytes(Phase phase) const noexcept;
};

/// Aggregates every thread log (live and retired). Does not clear.
[[nodiscard]] Report Drain();

/// Replays the report's timeline records into `tracer` as completed spans
/// named "prof.<phase>" (shard in the name when set), so the existing
/// Chrome-trace exporter renders profiler output directly.
void AppendSpans(const Report& report, Tracer& tracer);

/// Renders the report as a JSON object fragment:
///   {"dropped_records":N,"thread_logs":N,"phases":[{...},...]}
/// (no trailing newline; embeddable in a larger document).
[[nodiscard]] std::string ReportJson(const Report& report);

}  // namespace labmon::obs::prof
