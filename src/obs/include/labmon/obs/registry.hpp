// Metrics registry — named families of Counter/Gauge/Histogram instruments
// keyed by canonical label set.
//
// Two usage modes, matching the DDC pipeline:
//  * the process-global DefaultRegistry() — what binary_io, campaigns and
//    fleet_report use by default;
//  * injectable per-campaign registries — CoordinatorConfig/CampaignConfig
//    carry a nullable Registry*; null opts the hot path out entirely.
//
// Lookups take a mutex; returned references are stable for the registry's
// lifetime, so hot paths resolve instruments once and cache the pointer.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "labmon/obs/labels.hpp"
#include "labmon/obs/metrics.hpp"

namespace labmon::obs {

enum class MetricType { kCounter, kGauge, kHistogram };

/// Point-in-time copies used by exporters and report code.
struct CounterPoint {
  Labels labels;
  std::uint64_t value = 0;
};
struct GaugePoint {
  Labels labels;
  double value = 0.0;
};
struct HistogramPoint {
  Labels labels;
  std::vector<double> boundaries;
  std::vector<std::uint64_t> buckets;  ///< non-cumulative, +Inf last
  std::uint64_t count = 0;
  double sum = 0.0;
};
struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<CounterPoint> counters;
  std::vector<GaugePoint> gauges;
  std::vector<HistogramPoint> histograms;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the instrument for (name, labels), creating family and/or
  /// series on first use. `help` is kept from the first registration.
  /// Requesting an existing family under a different type is reported via
  /// util::log and returns a detached dummy instrument (writes are lost but
  /// safe) rather than corrupting the family.
  Counter& GetCounter(std::string_view name, std::string_view help = "",
                      Labels labels = {});
  Gauge& GetGauge(std::string_view name, std::string_view help = "",
                  Labels labels = {});
  /// `boundaries` must be sorted ascending; they are fixed by the first
  /// registration of the family (later calls reuse them).
  Histogram& GetHistogram(std::string_view name,
                          std::vector<double> boundaries,
                          std::string_view help = "", Labels labels = {});

  /// Consistent copy of every family, families in name order and series in
  /// canonical label order (deterministic exporter output).
  [[nodiscard]] std::vector<FamilySnapshot> Snapshot() const;

  [[nodiscard]] std::size_t family_count() const;

  /// Drops every family. Only for tests.
  void Clear();

 private:
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::vector<double> boundaries;  ///< histograms only
    std::map<Labels, std::unique_ptr<Counter>> counters;
    std::map<Labels, std::unique_ptr<Gauge>> gauges;
    std::map<Labels, std::unique_ptr<Histogram>> histograms;
  };

  Family& GetFamily(std::string_view name, std::string_view help,
                    MetricType type, bool& type_ok);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
  // Sinks for type-mismatched lookups; never exported.
  Counter mismatch_counter_;
  Gauge mismatch_gauge_;
  std::unique_ptr<Histogram> mismatch_histogram_;
};

/// The process-global registry.
[[nodiscard]] Registry& DefaultRegistry();

}  // namespace labmon::obs
