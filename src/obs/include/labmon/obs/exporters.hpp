// Exporters — turn a Registry / Tracer into external formats:
//  * Prometheus text exposition (metrics scrape / file inspection),
//  * Chrome trace_event JSON (open in chrome://tracing or Perfetto),
//  * JSONL event stream (spans + metrics as line-delimited JSON).
#pragma once

#include <ostream>

#include "labmon/obs/jsonl.hpp"
#include "labmon/obs/registry.hpp"
#include "labmon/obs/span.hpp"

namespace labmon::obs {

/// Prometheus text exposition format 0.0.4: # HELP/# TYPE headers, one line
/// per series, histograms as cumulative le="" buckets plus _sum/_count.
/// Deterministic: families in name order, series in label order.
void WritePrometheus(const Registry& registry, std::ostream& out);

/// Chrome trace_event JSON. Spans become "X" (complete) events on two
/// synthetic processes: pid 1 carries the wall-clock timeline, and spans
/// with a sim range are mirrored on pid 2 where 1 simulated second is
/// rendered as 1 second (ts/dur in microseconds). Load the file in
/// chrome://tracing or https://ui.perfetto.dev.
void WriteChromeTrace(const Tracer& tracer, std::ostream& out);

/// Appends every retained span as a {"type":"span",...} event.
void WriteSpansJsonl(const Tracer& tracer, JsonlWriter& writer);

/// Appends the registry snapshot as {"type":"metric",...} events
/// (histograms dump count/sum/mean, not individual buckets).
void WriteMetricsJsonl(const Registry& registry, JsonlWriter& writer);

}  // namespace labmon::obs
