// Harvest-scheduler instrument bundle.
//
// The DAG scheduler's inner loop runs once per machine per scheduler step
// (169 × 1,440 slots per simulated day at the 60 s step), so instruments
// are resolved against the registry exactly once, here, and the scheduler
// writes through cached pointers — the same idiom the DDC coordinator uses.
// A null registry yields a bundle of null pointers; callers guard with
// `enabled()` so the opt-out path stays free of atomic traffic.
#pragma once

#include "labmon/obs/registry.hpp"

namespace labmon::obs {

struct HarvestInstruments {
  Counter* jobs_completed = nullptr;
  Counter* jobs_failed = nullptr;
  Counter* evictions_login = nullptr;
  Counter* evictions_poweroff = nullptr;
  Counter* evictions_chaos = nullptr;
  Counter* retries = nullptr;
  Counter* checkpoints = nullptr;
  Counter* backup_copies = nullptr;
  Histogram* queue_depth = nullptr;       ///< ready jobs, sampled per step
  Histogram* turnaround_hours = nullptr;  ///< submit -> completion per job
  Gauge* effective_machines = nullptr;    ///< Fig 6 comparison, set at run end

  [[nodiscard]] bool enabled() const noexcept { return jobs_completed != nullptr; }

  /// Resolves the bundle against `registry` (nullptr = everything off).
  static HarvestInstruments For(Registry* registry) {
    HarvestInstruments out;
    if (registry == nullptr) return out;
    const auto counter = [&](const char* name, const char* help) {
      return &registry->GetCounter(name, help);
    };
    out.jobs_completed = counter("labmon_harvest_jobs_completed_total",
                                 "DAG jobs completed by the harvest scheduler");
    out.jobs_failed = counter("labmon_harvest_jobs_failed_total",
                              "DAG jobs that exhausted their retry budget");
    out.evictions_login =
        counter("labmon_harvest_evictions_login_total",
                "harvest tasks evicted by an interactive login");
    out.evictions_poweroff =
        counter("labmon_harvest_evictions_poweroff_total",
                "harvest tasks evicted by a machine power-off");
    out.evictions_chaos =
        counter("labmon_harvest_evictions_chaos_total",
                "harvest tasks evicted by injected faults (crash/outage)");
    out.retries = counter("labmon_harvest_retries_total",
                          "harvest task attempts re-queued after eviction or "
                          "injected failure");
    out.checkpoints = counter("labmon_harvest_checkpoints_total",
                              "harvest task checkpoints written");
    out.backup_copies = counter("labmon_harvest_backup_copies_total",
                                "speculative backup copies started");
    out.queue_depth = &registry->GetHistogram(
        "labmon_harvest_queue_depth",
        {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
         1024.0},
        "ready-to-run DAG jobs, sampled each scheduler step");
    out.turnaround_hours = &registry->GetHistogram(
        "labmon_harvest_job_turnaround_hours",
        {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 48.0, 96.0, 168.0},
        "submit-to-completion wall hours per completed DAG job");
    out.effective_machines =
        &registry->GetGauge("labmon_harvest_effective_dedicated_machines",
                            "useful harvest throughput expressed as dedicated "
                            "machines of fleet-average NBench index (Fig 6)");
    return out;
  }
};

}  // namespace labmon::obs
