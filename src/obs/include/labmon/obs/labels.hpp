// Metric labels — ordered key/value pairs attached to an instrument, e.g.
// {lab="L01", outcome="timeout"}. Labels are canonicalised (sorted by key)
// on registration so {a=1,b=2} and {b=2,a=1} name the same time series.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace labmon::obs {

/// One label set. Kept as a flat vector: label counts are tiny (0-3) and a
/// flat sorted vector beats a map for both lookup-key use and iteration.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Returns `labels` sorted by key (ties keep first occurrence order).
[[nodiscard]] Labels Canonical(Labels labels);

/// Escapes a label value for Prometheus/JSON exposition: backslash, double
/// quote and newline become \\, \" and \n.
[[nodiscard]] std::string EscapeLabelValue(std::string_view value);

/// Renders `{k1="v1",k2="v2"}`, or "" for an empty set.
[[nodiscard]] std::string RenderLabels(const Labels& labels);

}  // namespace labmon::obs
