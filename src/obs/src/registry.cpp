#include "labmon/obs/registry.hpp"

#include <algorithm>

#include "labmon/util/log.hpp"

namespace labmon::obs {

Labels Canonical(Labels labels) {
  std::stable_sort(labels.begin(), labels.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  return labels;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += '"';
  }
  out += '}';
  return out;
}

Registry::Family& Registry::GetFamily(std::string_view name,
                                      std::string_view help, MetricType type,
                                      bool& type_ok) {
  const auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.type = type;
    family.help = std::string(help);
    type_ok = true;
    return families_.emplace(std::string(name), std::move(family))
        .first->second;
  }
  type_ok = it->second.type == type;
  if (!type_ok) {
    util::log::Warn("obs: metric '" + std::string(name) +
                    "' re-registered with a different type; returning "
                    "detached instrument");
  }
  return it->second;
}

Counter& Registry::GetCounter(std::string_view name, std::string_view help,
                              Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool type_ok = false;
  Family& family = GetFamily(name, help, MetricType::kCounter, type_ok);
  if (!type_ok) return mismatch_counter_;
  auto& slot = family.counters[Canonical(std::move(labels))];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(std::string_view name, std::string_view help,
                          Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool type_ok = false;
  Family& family = GetFamily(name, help, MetricType::kGauge, type_ok);
  if (!type_ok) return mismatch_gauge_;
  auto& slot = family.gauges[Canonical(std::move(labels))];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::vector<double> boundaries,
                                  std::string_view help, Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool type_ok = false;
  Family& family = GetFamily(name, help, MetricType::kHistogram, type_ok);
  if (!type_ok) {
    if (!mismatch_histogram_) {
      mismatch_histogram_ = std::make_unique<Histogram>(std::move(boundaries));
    }
    return *mismatch_histogram_;
  }
  if (family.boundaries.empty()) family.boundaries = std::move(boundaries);
  auto& slot = family.histograms[Canonical(std::move(labels))];
  if (!slot) slot = std::make_unique<Histogram>(family.boundaries);
  return *slot;
}

std::vector<FamilySnapshot> Registry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot snap;
    snap.name = name;
    snap.help = family.help;
    snap.type = family.type;
    for (const auto& [labels, counter] : family.counters) {
      snap.counters.push_back({labels, counter->value()});
    }
    for (const auto& [labels, gauge] : family.gauges) {
      snap.gauges.push_back({labels, gauge->value()});
    }
    for (const auto& [labels, histogram] : family.histograms) {
      HistogramPoint point;
      point.labels = labels;
      point.boundaries = histogram->boundaries();
      // Writers bump bucket, count and sum as three relaxed atomics, so a
      // concurrent snapshot can catch them mid-update. Read count first,
      // buckets second: any Observe racing the snapshot then lands in the
      // buckets but maybe not in count, so taking the larger of the two
      // keeps the published invariant sum(buckets) == count (a torn read
      // the other way would render a negative +Inf bucket).
      point.count = histogram->count();
      point.buckets.reserve(histogram->bucket_count());
      std::uint64_t bucket_total = 0;
      for (std::size_t i = 0; i < histogram->bucket_count(); ++i) {
        point.buckets.push_back(histogram->bucket(i));
        bucket_total += point.buckets.back();
      }
      point.count = std::max(point.count, bucket_total);
      point.sum = histogram->sum();
      snap.histograms.push_back(std::move(point));
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::size_t Registry::family_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return families_.size();
}

void Registry::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  families_.clear();
}

Registry& DefaultRegistry() {
  static Registry registry;
  return registry;
}

}  // namespace labmon::obs
