#include "labmon/obs/span.hpp"

namespace labmon::obs {

namespace {
// Small dense thread ordinals (Chrome traces render tid 1, 2, … nicely).
std::uint32_t ThisThreadOrdinal() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

thread_local std::uint32_t t_depth = 0;
std::atomic<std::uint64_t> g_seq{0};
}  // namespace

Tracer::Tracer(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity ? capacity : 1) {}

std::uint64_t Tracer::NowMicros() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Record(SpanRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ - ring_.size();
}

void Tracer::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

Tracer& DefaultTracer() {
  static Tracer tracer;
  return tracer;
}

Span::Span(std::string_view name, Tracer* tracer) {
  if (!tracer || !tracer->enabled()) return;
  tracer_ = tracer;
  record_.name = std::string(name);
  record_.start_us = tracer->NowMicros();
  record_.thread_id = ThisThreadOrdinal();
  record_.depth = t_depth++;
}

Span::~Span() {
  if (!tracer_) return;
  --t_depth;
  record_.duration_us = tracer_->NowMicros() - record_.start_us;
  record_.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  tracer_->Record(std::move(record_));
}

}  // namespace labmon::obs
