#include "labmon/obs/exporters.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>

namespace labmon::obs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Prometheus-style number: integral values render without a decimal point,
/// the rest as shortest %g with 10 significant digits.
std::string FormatValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

std::string FormatBoundary(double b) { return FormatValue(b); }

/// Label set rendered with an extra `le` pair appended (histogram buckets).
std::string RenderBucketLabels(const Labels& labels, const std::string& le) {
  Labels with_le = labels;
  with_le.emplace_back("le", le);
  return RenderLabels(with_le);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteChromeEvent(std::ostream& out, const SpanRecord& span, int pid,
                      std::uint64_t ts, std::uint64_t dur, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":\"" << JsonEscape(span.name)
      << "\",\"cat\":\"labmon\",\"ph\":\"X\",\"ts\":" << ts
      << ",\"dur\":" << dur << ",\"pid\":" << pid
      << ",\"tid\":" << span.thread_id << ",\"args\":{\"depth\":"
      << span.depth;
  if (span.sim_start >= 0) {
    out << ",\"sim_start\":" << span.sim_start
        << ",\"sim_end\":" << span.sim_end;
  }
  out << "}}";
}

void WriteProcessName(std::ostream& out, int pid, const char* name,
                      bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"" << name << "\"}}";
}

}  // namespace

void WritePrometheus(const Registry& registry, std::ostream& out) {
  for (const auto& family : registry.Snapshot()) {
    if (!family.help.empty()) {
      out << "# HELP " << family.name << ' ' << family.help << '\n';
    }
    out << "# TYPE " << family.name << ' ' << TypeName(family.type) << '\n';
    for (const auto& point : family.counters) {
      out << family.name << RenderLabels(point.labels) << ' ' << point.value
          << '\n';
    }
    for (const auto& point : family.gauges) {
      out << family.name << RenderLabels(point.labels) << ' '
          << FormatValue(point.value) << '\n';
    }
    for (const auto& point : family.histograms) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < point.boundaries.size(); ++i) {
        cumulative += point.buckets[i];
        out << family.name << "_bucket"
            << RenderBucketLabels(point.labels,
                                  FormatBoundary(point.boundaries[i]))
            << ' ' << cumulative << '\n';
      }
      out << family.name << "_bucket"
          << RenderBucketLabels(point.labels, "+Inf") << ' ' << point.count
          << '\n';
      out << family.name << "_sum" << RenderLabels(point.labels) << ' '
          << FormatValue(point.sum) << '\n';
      out << family.name << "_count" << RenderLabels(point.labels) << ' '
          << point.count << '\n';
    }
  }
}

void WriteChromeTrace(const Tracer& tracer, std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  WriteProcessName(out, 1, "labmon wall clock", first);
  WriteProcessName(out, 2, "labmon sim clock", first);
  for (const auto& span : tracer.Snapshot()) {
    WriteChromeEvent(out, span, /*pid=*/1, span.start_us, span.duration_us,
                     first);
    if (span.sim_start >= 0 && span.sim_end >= span.sim_start) {
      // Mirror on the sim timeline: 1 simulated second = 1 rendered second.
      WriteChromeEvent(
          out, span, /*pid=*/2,
          static_cast<std::uint64_t>(span.sim_start) * 1000000u,
          static_cast<std::uint64_t>(span.sim_end - span.sim_start) *
              1000000u,
          first);
    }
  }
  out << "\n]}\n";
}

void WriteSpansJsonl(const Tracer& tracer, JsonlWriter& writer) {
  for (const auto& span : tracer.Snapshot()) {
    writer.Begin("span")
        .Field("name", span.name)
        .Field("start_us", span.start_us)
        .Field("duration_us", span.duration_us)
        .Field("thread", static_cast<std::uint64_t>(span.thread_id))
        .Field("depth", static_cast<std::uint64_t>(span.depth));
    if (span.sim_start >= 0) {
      writer.Field("sim_start", static_cast<std::int64_t>(span.sim_start))
          .Field("sim_end", static_cast<std::int64_t>(span.sim_end));
    }
    writer.End();
  }
}

void WriteMetricsJsonl(const Registry& registry, JsonlWriter& writer) {
  for (const auto& family : registry.Snapshot()) {
    for (const auto& point : family.counters) {
      writer.Begin("metric")
          .Field("name", family.name)
          .Field("labels", RenderLabels(point.labels))
          .Field("value", point.value);
      writer.End();
    }
    for (const auto& point : family.gauges) {
      writer.Begin("metric")
          .Field("name", family.name)
          .Field("labels", RenderLabels(point.labels))
          .Field("value", point.value);
      writer.End();
    }
    for (const auto& point : family.histograms) {
      const double mean =
          point.count ? point.sum / static_cast<double>(point.count) : 0.0;
      writer.Begin("metric")
          .Field("name", family.name)
          .Field("labels", RenderLabels(point.labels))
          .Field("count", point.count)
          .Field("sum", point.sum)
          .Field("mean", mean);
      writer.End();
    }
  }
}

}  // namespace labmon::obs
