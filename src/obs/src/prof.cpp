#include "labmon/obs/prof.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <new>

#include "labmon/obs/registry.hpp"
#include "labmon/obs/span.hpp"
#include "labmon/util/parallel.hpp"
#include "labmon/util/strings.hpp"

namespace labmon::obs::prof {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint32_t> g_hot_period{32};

// Per-thread monotonic allocation tallies, bumped by the operator
// new/delete interposition below. Constant-initialised, so they are safe
// to touch from any allocation, however early.
thread_local std::uint64_t t_alloc_bytes = 0;
thread_local std::uint64_t t_alloc_count = 0;

thread_local std::uint32_t t_shard = kNoShard;
thread_local PhaseScope* t_open = nullptr;
thread_local std::uint32_t t_hot_tick[kPhaseCount] = {};

struct PhaseTotals {
  std::uint64_t count = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t incl_ns = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t alloc_count = 0;
};

struct ShardRows {
  std::uint32_t shard = kNoShard;
  PhaseTotals rows[kPhaseCount];
};

}  // namespace

namespace detail {

/// One thread's private log. Single-writer (the owning thread); readers
/// (Drain/Reset) run only when no scopes are open — post-join by contract.
struct ThreadLog {
  std::vector<ShardRows> shards;
  std::size_t last_idx = 0;  ///< cache: index into shards for last_shard
  std::uint32_t last_shard = kNoShard - 1;  ///< never a valid initial hit

  std::vector<Record> ring;  ///< fixed size once created
  std::size_t write_pos = 0;
  std::size_t count = 0;
  std::uint64_t dropped = 0;

  std::uint32_t ordinal = 0;
  bool in_use = false;
};

}  // namespace detail

namespace {

using detail::ThreadLog;

/// Global log registry. Leaked on purpose: thread-exit hooks and
/// late allocations may touch it during shutdown.
struct ProfState {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadLog>> logs;
  std::vector<ThreadLog*> free_logs;  ///< retired by exited threads
  Options options;
};

ProfState& State() {
  static ProfState* state = new ProfState;
  return *state;
}

/// Releases the thread's log back to the pool at thread exit. The log's
/// contents survive (Drain still sees them); only the slot is reusable.
struct ThreadLogHandle {
  ThreadLog* log = nullptr;
  ~ThreadLogHandle() {
    if (log == nullptr) return;
    ProfState& state = State();
    const std::lock_guard<std::mutex> lock(state.mutex);
    log->in_use = false;
    state.free_logs.push_back(log);
  }
};

thread_local ThreadLogHandle t_log_handle;

std::uint64_t EpochNanos() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void ClearLog(ThreadLog& log, std::size_t ring_capacity) {
  log.shards.clear();
  log.last_idx = 0;
  log.last_shard = kNoShard - 1;
  if (log.ring.size() != ring_capacity) {
    log.ring.assign(ring_capacity, Record{});
  }
  log.write_pos = 0;
  log.count = 0;
  log.dropped = 0;
}

/// Feeds ParallelFor region stats into the default registry: queue wait =
/// spawn-to-start latency, barrier wait = time a finished worker spent
/// waiting for the join (the stragglers' shadow).
void ParallelObserverFn(const util::ParallelRegionStats& stats) {
  static const std::vector<double> kWaitBounds = {
      1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0};
  auto& registry = DefaultRegistry();
  auto& queue_wait = registry.GetHistogram(
      "labmon_prof_queue_wait_seconds", kWaitBounds,
      "Per-worker delay between ParallelFor entry and worker body start.");
  auto& barrier_wait = registry.GetHistogram(
      "labmon_prof_barrier_wait_seconds", kWaitBounds,
      "Per-worker idle time between its last item and the region join.");
  for (std::size_t w = 0; w < stats.worker_count; ++w) {
    const auto& worker = stats.workers[w];
    queue_wait.Observe(static_cast<double>(worker.start_delay_ns) * 1e-9);
    const std::uint64_t occupied = worker.start_delay_ns + worker.busy_ns;
    const std::uint64_t wait =
        stats.wall_ns > occupied ? stats.wall_ns - occupied : 0;
    barrier_wait.Observe(static_cast<double>(wait) * 1e-9);
  }
  registry
      .GetCounter("labmon_prof_parallel_regions_total",
                  "ParallelFor regions observed by the profiler.")
      .Increment();
}

}  // namespace

namespace detail {

std::uint64_t NowNanos() noexcept { return EpochNanos(); }

bool SampleHotScope(Phase phase) noexcept {
  const std::uint32_t period = g_hot_period.load(std::memory_order_relaxed);
  if (period <= 1) return true;
  return ++t_hot_tick[static_cast<std::size_t>(phase)] % period == 0;
}

ThreadLog* AcquireThreadLog() {
  if (t_log_handle.log != nullptr) return t_log_handle.log;
  ProfState& state = State();
  const std::lock_guard<std::mutex> lock(state.mutex);
  ThreadLog* log = nullptr;
  if (!state.free_logs.empty()) {
    log = state.free_logs.back();
    state.free_logs.pop_back();
  } else {
    state.logs.push_back(std::make_unique<ThreadLog>());
    log = state.logs.back().get();
    log->ordinal = static_cast<std::uint32_t>(state.logs.size() - 1);
    log->ring.assign(state.options.ring_capacity, Record{});
  }
  log->in_use = true;
  t_log_handle.log = log;
  return log;
}

void RecordScopeExit(ThreadLog* log, Phase phase, std::uint32_t shard,
                     std::uint8_t depth, std::uint64_t start_ns,
                     std::uint64_t total_ns, std::uint64_t self_ns,
                     std::uint64_t bytes_self, std::uint64_t allocs_self,
                     std::uint64_t weight) {
  // Aggregate row (exact for weight 1; a weighted exit extrapolates the
  // sampled-out siblings of a SampledPhaseScope).
  if (shard != log->last_shard) {
    std::size_t i = 0;
    for (; i < log->shards.size(); ++i) {
      if (log->shards[i].shard == shard) break;
    }
    if (i == log->shards.size()) {
      log->shards.emplace_back();
      log->shards.back().shard = shard;
    }
    log->last_idx = i;
    log->last_shard = shard;
  }
  PhaseTotals& row =
      log->shards[log->last_idx].rows[static_cast<std::size_t>(phase)];
  row.count += weight;
  row.self_ns += self_ns * weight;
  row.incl_ns += total_ns * weight;
  row.alloc_bytes += bytes_self * weight;
  row.alloc_count += allocs_self * weight;

  // Timeline record (bounded ring, drop-oldest, never blocks).
  if (!log->ring.empty()) {
    Record& slot = log->ring[log->write_pos];
    slot.start_ns = start_ns;
    slot.dur_ns = total_ns;
    slot.self_ns = self_ns;
    slot.alloc_bytes = bytes_self;
    slot.alloc_count = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(allocs_self, 0xffffffffu));
    slot.shard = shard;
    slot.thread = log->ordinal;
    slot.phase = phase;
    slot.depth = depth;
    log->write_pos = (log->write_pos + 1) % log->ring.size();
    if (log->count < log->ring.size()) {
      ++log->count;
    } else {
      ++log->dropped;
    }
  }
}

}  // namespace detail

const char* PhaseName(Phase phase) noexcept {
  switch (phase) {
    case Phase::kBuildFleet: return "build_fleet";
    case Phase::kSimulate: return "simulate";
    case Phase::kProbe: return "probe";
    case Phase::kCollect: return "collect";
    case Phase::kMerge: return "merge";
    case Phase::kAnalysis: return "analysis";
    case Phase::kSnapshot: return "snapshot";
    case Phase::kExport: return "export";
    case Phase::kStage: return "stage";
    case Phase::kFold: return "fold";
    case Phase::kOther: return "other";
  }
  return "other";
}

void Enable(const Options& options) {
  {
    ProfState& state = State();
    const std::lock_guard<std::mutex> lock(state.mutex);
    state.options = options;
  }
  g_hot_period.store(std::max<std::uint32_t>(1, options.hot_sample_period),
                     std::memory_order_relaxed);
  (void)EpochNanos();  // pin the epoch before the first scope
  util::SetParallelObserver(&ParallelObserverFn);
  g_enabled.store(true, std::memory_order_relaxed);
}

void Disable() {
  g_enabled.store(false, std::memory_order_relaxed);
  util::SetParallelObserver(nullptr);
}

bool Enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void Reset() {
  ProfState& state = State();
  const std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& log : state.logs) {
    ClearLog(*log, state.options.ring_capacity);
  }
}

AllocCounters ThreadAllocCounters() noexcept {
  return {t_alloc_bytes, t_alloc_count};
}

ShardScope::ShardScope(std::uint32_t shard) noexcept {
  if (!Enabled()) return;
  active_ = true;
  previous_ = t_shard;
  t_shard = shard;
}

ShardScope::~ShardScope() {
  if (active_) t_shard = previous_;
}

PhaseScope::PhaseScope(Phase phase) noexcept {
  if (!Enabled()) return;
  log_ = detail::AcquireThreadLog();
  parent_ = t_open;
  t_open = this;
  phase_ = phase;
  shard_ = t_shard;
  depth_ = parent_ != nullptr
               ? static_cast<std::uint8_t>(
                     std::min<int>(parent_->depth_ + 1, 255))
               : 0;
  start_ns_ = detail::NowNanos();
  bytes0_ = t_alloc_bytes;
  allocs0_ = t_alloc_count;
}

PhaseScope::~PhaseScope() {
  if (log_ == nullptr) return;
  const std::uint64_t now = detail::NowNanos();
  const std::uint64_t total_ns = now - start_ns_;
  const std::uint64_t bytes_total = t_alloc_bytes - bytes0_;
  const std::uint64_t allocs_total = t_alloc_count - allocs0_;
  const std::uint64_t self_ns =
      total_ns - std::min(total_ns, child_ns_);
  const std::uint64_t bytes_self =
      bytes_total - std::min(bytes_total, child_bytes_);
  const std::uint64_t allocs_self =
      allocs_total - std::min(allocs_total, child_allocs_);
  t_open = parent_;
  if (parent_ != nullptr) {
    parent_->child_ns_ += total_ns;
    parent_->child_bytes_ += bytes_total;
    parent_->child_allocs_ += allocs_total;
  }
  detail::RecordScopeExit(log_, phase_, shard_, depth_, start_ns_, total_ns,
                          self_ns, bytes_self, allocs_self);
}

SampledPhaseScope::SampledPhaseScope(Phase phase) noexcept {
  if (!Enabled() || !detail::SampleHotScope(phase)) return;
  log_ = detail::AcquireThreadLog();
  phase_ = phase;
  shard_ = t_shard;
  weight_ = g_hot_period.load(std::memory_order_relaxed);
  if (weight_ == 0) weight_ = 1;
  depth_ = t_open != nullptr
               ? static_cast<std::uint8_t>(
                     std::min<int>(t_open->depth_ + 1, 255))
               : 0;
  start_ns_ = detail::NowNanos();
  bytes0_ = t_alloc_bytes;
  allocs0_ = t_alloc_count;
}

SampledPhaseScope::~SampledPhaseScope() {
  if (log_ == nullptr) return;
  const std::uint64_t total_ns = detail::NowNanos() - start_ns_;
  const std::uint64_t bytes = t_alloc_bytes - bytes0_;
  const std::uint64_t allocs = t_alloc_count - allocs0_;
  // Statistically remove this hot leaf (and its sampled-out siblings)
  // from the enclosing PhaseScope's self time.
  if (t_open != nullptr) {
    t_open->child_ns_ += total_ns * weight_;
    t_open->child_bytes_ += bytes * weight_;
    t_open->child_allocs_ += allocs * weight_;
  }
  detail::RecordScopeExit(log_, phase_, shard_, depth_, start_ns_, total_ns,
                          total_ns, bytes, allocs, weight_);
}

double Report::PhaseSelfSeconds(Phase phase) const noexcept {
  std::uint64_t ns = 0;
  for (const PhaseAgg& row : rows) {
    if (row.phase == phase) ns += row.self_ns;
  }
  return static_cast<double>(ns) * 1e-9;
}

std::uint64_t Report::PhaseAllocBytes(Phase phase) const noexcept {
  std::uint64_t bytes = 0;
  for (const PhaseAgg& row : rows) {
    if (row.phase == phase) bytes += row.alloc_bytes;
  }
  return bytes;
}

Report Drain() {
  Report report;
  ProfState& state = State();
  const std::lock_guard<std::mutex> lock(state.mutex);
  report.thread_logs = state.logs.size();
  std::map<std::pair<std::uint32_t, std::uint8_t>, PhaseAgg> agg;
  for (const auto& log : state.logs) {
    for (const ShardRows& shard_rows : log->shards) {
      for (std::size_t p = 0; p < kPhaseCount; ++p) {
        const PhaseTotals& row = shard_rows.rows[p];
        if (row.count == 0) continue;
        PhaseAgg& out =
            agg[{shard_rows.shard, static_cast<std::uint8_t>(p)}];
        out.shard = shard_rows.shard;
        out.phase = static_cast<Phase>(p);
        out.count += row.count;
        out.self_ns += row.self_ns;
        out.incl_ns += row.incl_ns;
        out.alloc_bytes += row.alloc_bytes;
        out.alloc_count += row.alloc_count;
      }
    }
    report.dropped_records += log->dropped;
    // Ring: oldest first. When full, the oldest record sits at write_pos.
    const std::size_t n = log->count;
    const std::size_t cap = log->ring.size();
    const std::size_t begin = n < cap ? 0 : log->write_pos;
    for (std::size_t i = 0; i < n; ++i) {
      report.records.push_back(log->ring[(begin + i) % cap]);
    }
  }
  for (const auto& [key, row] : agg) report.rows.push_back(row);
  std::sort(report.records.begin(), report.records.end(),
            [](const Record& a, const Record& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.dur_ns > b.dur_ns;
            });
  return report;
}

void AppendSpans(const Report& report, Tracer& tracer) {
  for (const Record& record : report.records) {
    SpanRecord span;
    span.name = std::string("prof.") + PhaseName(record.phase);
    if (record.shard != kNoShard) {
      span.name += "/shard" + std::to_string(record.shard);
    }
    span.start_us = record.start_ns / 1000;
    span.duration_us = record.dur_ns / 1000;
    span.thread_id = record.thread;
    span.depth = record.depth;
    tracer.Record(std::move(span));
  }
}

std::string ReportJson(const Report& report) {
  std::string out;
  out += "{\"dropped_records\":" + std::to_string(report.dropped_records);
  out += ",\"thread_logs\":" + std::to_string(report.thread_logs);
  out += ",\"phases\":[";
  bool first = true;
  for (const PhaseAgg& row : report.rows) {
    if (!first) out += ',';
    first = false;
    out += "{\"shard\":";
    out += row.shard == kNoShard
               ? std::string("-1")
               : std::to_string(static_cast<std::int64_t>(row.shard));
    out += ",\"phase\":\"";
    out += PhaseName(row.phase);
    out += "\",\"count\":" + std::to_string(row.count);
    out += ",\"wall_self_s\":" +
           util::FormatFixed(static_cast<double>(row.self_ns) * 1e-9, 6);
    out += ",\"wall_incl_s\":" +
           util::FormatFixed(static_cast<double>(row.incl_ns) * 1e-9, 6);
    out += ",\"alloc_bytes\":" + std::to_string(row.alloc_bytes);
    out += ",\"alloc_count\":" + std::to_string(row.alloc_count);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace labmon::obs::prof

// ---------------------------------------------------------------------------
// Global allocation interposition. Every new/delete in the process lands
// here (the linker pulls this TU in because Experiment/Coordinator
// reference PhaseScope). Tallies are two thread-local increments; the
// profiler charges deltas to phase scopes. Deletes are not subtracted —
// the counters measure allocation *pressure* (monotonic), not live bytes.
// ---------------------------------------------------------------------------

namespace {

inline void* ProfAlloc(std::size_t size) {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  labmon::obs::prof::t_alloc_bytes += size;
  ++labmon::obs::prof::t_alloc_count;
  return p;
}

inline void* ProfAllocAligned(std::size_t size, std::size_t align) {
  void* p = nullptr;
  if (posix_memalign(&p, std::max(align, sizeof(void*)),
                     size != 0 ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  labmon::obs::prof::t_alloc_bytes += size;
  ++labmon::obs::prof::t_alloc_count;
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return ProfAlloc(size); }
void* operator new[](std::size_t size) { return ProfAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return ProfAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ProfAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
