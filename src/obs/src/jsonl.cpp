#include "labmon/obs/jsonl.hpp"

#include <cmath>
#include <cstdio>

namespace labmon::obs {

namespace {
std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* LevelName(util::log::Level level) {
  switch (level) {
    case util::log::Level::kDebug: return "debug";
    case util::log::Level::kInfo: return "info";
    case util::log::Level::kWarn: return "warn";
    case util::log::Level::kError: return "error";
    case util::log::Level::kOff: return "off";
  }
  return "unknown";
}
}  // namespace

JsonlWriter& JsonlWriter::Begin(std::string_view type) {
  mutex_.lock();
  open_ = true;
  *out_ << "{\"type\":\"" << Escape(type) << '"';
  return *this;
}

JsonlWriter& JsonlWriter::Field(std::string_view key, std::string_view value) {
  *out_ << ",\"" << Escape(key) << "\":\"" << Escape(value) << '"';
  return *this;
}

JsonlWriter& JsonlWriter::Field(std::string_view key, double value) {
  char buf[64];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", value);
  }
  *out_ << ",\"" << Escape(key) << "\":" << buf;
  return *this;
}

JsonlWriter& JsonlWriter::Field(std::string_view key, std::int64_t value) {
  *out_ << ",\"" << Escape(key) << "\":" << value;
  return *this;
}

JsonlWriter& JsonlWriter::Field(std::string_view key, std::uint64_t value) {
  *out_ << ",\"" << Escape(key) << "\":" << value;
  return *this;
}

void JsonlWriter::End() {
  *out_ << "}\n";
  ++events_;
  open_ = false;
  mutex_.unlock();
}

util::log::Sink MakeLogSink(JsonlWriter& writer) {
  return [&writer](util::log::Level level, std::string_view message) {
    writer.Begin("log")
        .Field("level", LevelName(level))
        .Field("message", message);
    writer.End();
  };
}

}  // namespace labmon::obs
