#include "labmon/core/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "labmon/core/snapshot.hpp"
#include "labmon/ddc/w32_probe.hpp"
#include "labmon/faultsim/fault_injector.hpp"
#include "labmon/obs/prof.hpp"
#include "labmon/obs/registry.hpp"
#include "labmon/obs/span.hpp"
#include "labmon/trace/merge.hpp"
#include "labmon/trace/sink.hpp"
#include "labmon/util/log.hpp"
#include "labmon/util/parallel.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/winsim/paper_specs.hpp"
#include "labmon/workload/profile.hpp"

namespace labmon::core {

std::vector<LabShard> PartitionLabsByMachines(const winsim::Fleet& fleet,
                                              std::size_t shards) {
  const auto labs = fleet.labs();
  std::size_t machines_left = fleet.size();
  std::vector<LabShard> out;
  out.reserve(shards);
  std::size_t lab = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t shards_left = shards - s;
    const std::size_t target =
        (machines_left + shards_left - 1) / shards_left;
    LabShard shard;
    shard.lab_begin = lab;
    std::size_t took = 0;
    // Take labs up to the per-shard target, but always leave enough labs
    // for the remaining shards.
    while (lab < labs.size() &&
           labs.size() - lab > shards_left - 1 &&
           (took == 0 || took + labs[lab].count <= target)) {
      took += labs[lab].count;
      ++lab;
    }
    if (took == 0 && lab < labs.size()) {  // forced single lab
      took = labs[lab].count;
      ++lab;
    }
    shard.lab_end = lab;
    machines_left -= took;
    out.push_back(shard);
  }
  return out;
}

namespace {

/// Trace capacity estimate per machine: ~96 aligned iterations per day,
/// responses only while a machine is powered on. The response-rate guess is
/// derived from the configured opening policy (fraction of the week the
/// rooms are open) times the observed on-while-open share, instead of a
/// hardcoded /2.
std::size_t ReservePerMachine(const workload::CampusConfig& campus) {
  const workload::OpeningHours& h = campus.hours;
  const double weekday_open_h =
      static_cast<double>((24 - h.open_hour) + h.weekday_close_hour);
  const double saturday_open_h = static_cast<double>(
      std::max(0, h.saturday_close_hour - h.open_hour));
  const double sunday_open_h = h.sunday_open ? weekday_open_h : 0.0;
  const double open_fraction =
      (5.0 * weekday_open_h + saturday_open_h + sunday_open_h) / 168.0;
  // ~3/4 of machines respond while the rooms are open (Fig 3), plus a small
  // floor for the boxes left running overnight.
  const double response_guess = std::min(1.0, open_fraction * 0.75 + 0.05);
  return static_cast<std::size_t>(static_cast<double>(campus.days) * 96.0 *
                                  response_guess) +
         1;
}

/// What one shard produces; merged on the main thread afterwards.
struct ShardOutput {
  ddc::RunStats stats;             ///< attempt tallies summed over the labs
  workload::GroundTruth truth;
  std::uint64_t parse_failures = 0;
  std::uint64_t crosscheck_mismatches = 0;
  double wall_s = 0.0;             ///< real time the shard's thread spent
};

}  // namespace

ExperimentResult Experiment::Run(const ExperimentConfig& config) {
  obs::DefaultRegistry()
      .GetCounter("labmon_experiment_simulations_total",
                  "Full experiment simulations actually executed.")
      .Increment();
  obs::Span run_span("experiment.run");
  run_span.SetSimRange(0, config.campus.EndTime());
  const auto run_t0 = std::chrono::steady_clock::now();
  util::Rng rng(config.campus.seed);
  winsim::Fleet fleet = [&] {
    obs::Span build_span("experiment.build_fleet");
    obs::prof::PhaseScope prof_scope(obs::prof::Phase::kBuildFleet);
    return winsim::MakePaperFleet(rng, config.prior_life,
                                  config.campus.scale_labs);
  }();

  const std::size_t lab_count = fleet.lab_count();
  const std::size_t shard_count = std::min(
      lab_count, config.shards > 0 ? static_cast<std::size_t>(config.shards)
                                   : util::DefaultWorkerCount());
  const std::vector<LabShard> shards =
      PartitionLabsByMachines(fleet, std::max<std::size_t>(1, shard_count));

  // Campus-global behavioural context, computed once and shared read-only
  // by every shard (its draws come from dedicated substreams).
  const workload::CampusProfile profile = [&] {
    obs::prof::PhaseScope prof_scope(obs::prof::Phase::kBuildFleet);
    return workload::CampusProfile::Build(fleet, config.campus);
  }();

  ExperimentResult result;
  result.days = config.campus.days;
  const std::size_t reserve_per_machine = ReservePerMachine(config.campus);

  util::log::Info("running " + std::to_string(config.campus.days) +
                  "-day experiment over " + std::to_string(fleet.size()) +
                  " machines (" + std::to_string(shards.size()) + " shards)");

  // One trace per lab, merged below; one output per shard.
  std::vector<trace::TraceStore> lab_traces(lab_count);
  std::vector<ShardOutput> outputs(shards.size());
  const auto collect_t0 = std::chrono::steady_clock::now();
  {
    obs::Span collect_span("experiment.collect");
    collect_span.SetSimRange(0, config.campus.EndTime());
    auto run_shard = [&](std::size_t s) {
      const auto t0 = std::chrono::steady_clock::now();
      obs::Span shard_span("experiment.shard");
      shard_span.SetSimRange(0, config.campus.EndTime());
      obs::prof::ShardScope prof_shard(static_cast<std::uint32_t>(s));
      obs::prof::PhaseScope prof_collect(obs::prof::Phase::kCollect);
      ShardOutput& out = outputs[s];
      for (std::size_t lab = shards[s].lab_begin; lab < shards[s].lab_end;
           ++lab) {
        const winsim::LabInfo& info = fleet.labs()[lab];
        workload::WorkloadDriver driver(fleet, config.campus, profile, lab,
                                        lab + 1);
        trace::TraceStore& store = lab_traces[lab];
        store.set_machine_count(fleet.size());
        store.Reserve(reserve_per_machine * info.count);
        trace::TraceStoreSink sink(store);
        ddc::W32Probe probe;
        ddc::CoordinatorConfig collector = config.collector;
        collector.structured_fast_path = config.structured_fast_path;
        collector.first_machine = info.first;
        collector.machine_count = info.count;
        collector.aligned_schedule = true;
        collector.seed = util::DeriveSeed(
            config.collector.seed, util::seed_stream::kCollector, lab);
        // Per-lab injector: a plan copy on the lab's own fault substream, so
        // fault draws are independent of how labs are grouped into shards.
        faultsim::FaultPlan plan = config.fault_plan;
        plan.seed = util::DeriveSeed(config.fault_plan.seed,
                                     util::seed_stream::kFaults, lab);
        faultsim::FaultInjector injector(plan, collector.metrics);
        if (injector.active()) {
          injector.BindFleet(fleet);
          collector.faults = &injector;
        }
        auto advance = [&driver](util::SimTime t) {
          // Hot path (one call per machine-sample): sampled, not timed
          // in full, to stay inside the profiler's overhead budget.
          obs::prof::SampledPhaseScope prof_scope(obs::prof::Phase::kSimulate);
          driver.AdvanceTo(t);
        };
        ddc::Coordinator coordinator(fleet, probe, collector, sink, advance);
        const ddc::RunStats stats =
            coordinator.Run(0, config.campus.EndTime());
        driver.FinishAt(config.campus.EndTime());

        out.stats.attempts += stats.attempts;
        out.stats.successes += stats.successes;
        out.stats.timeouts += stats.timeouts;
        out.stats.errors += stats.errors;
        out.stats.missing += stats.missing;
        out.stats.corrupt += stats.corrupt;
        out.stats.recovered_after_retry += stats.recovered_after_retry;
        out.stats.retry_attempts += stats.retry_attempts;
        out.stats.retried_collections += stats.retried_collections;
        out.stats.faults_injected += stats.faults_injected;
        out.truth += driver.ground_truth();
        out.parse_failures += sink.parse_failures();
        out.crosscheck_mismatches += sink.crosscheck_mismatches();
      }
      out.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    };
    util::ParallelFor(shards.size(), run_shard, shards.size());
  }
  const double collect_wall_s = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    collect_t0)
                                    .count();

  // Shard-imbalance gauge: max shard wall time over the mean. 1.0 = perfect
  // balance; large values mean one shard serialised the run.
  {
    double max_wall = 0.0;
    double sum_wall = 0.0;
    for (const ShardOutput& out : outputs) {
      max_wall = std::max(max_wall, out.wall_s);
      sum_wall += out.wall_s;
    }
    const double mean_wall = sum_wall / static_cast<double>(outputs.size());
    obs::DefaultRegistry()
        .GetGauge("labmon_experiment_shard_imbalance_ratio",
                  "Max shard wall time / mean shard wall time of the last "
                  "sharded run (1.0 = perfectly balanced).")
        .Set(mean_wall > 0.0 ? max_wall / mean_wall : 1.0);
  }

  // Deterministic merge: iteration-major, (t, machine)-ordered. The result
  // is the same for every shard count and thread schedule.
  result.trace = trace::MergeTraces(lab_traces);
  for (const ShardOutput& out : outputs) {
    result.run_stats.attempts += out.stats.attempts;
    result.run_stats.successes += out.stats.successes;
    result.run_stats.timeouts += out.stats.timeouts;
    result.run_stats.errors += out.stats.errors;
    result.run_stats.missing += out.stats.missing;
    result.run_stats.corrupt += out.stats.corrupt;
    result.run_stats.recovered_after_retry += out.stats.recovered_after_retry;
    result.run_stats.retry_attempts += out.stats.retry_attempts;
    result.run_stats.retried_collections += out.stats.retried_collections;
    result.run_stats.faults_injected += out.stats.faults_injected;
    result.ground_truth += out.truth;
    result.parse_failures += out.parse_failures;
    result.crosscheck_mismatches += out.crosscheck_mismatches;
  }
  // Iteration aggregates from the merged (campus-wide) iteration records:
  // an iteration spans the earliest lab start to the latest lab end.
  {
    double sum_s = 0.0;
    for (const trace::IterationInfo& it : result.trace.iterations()) {
      const double duration = static_cast<double>(it.end_t - it.start_t);
      sum_s += duration;
      result.run_stats.max_iteration_s =
          std::max(result.run_stats.max_iteration_s, duration);
    }
    const std::size_t n = result.trace.iterations().size();
    result.run_stats.iterations = n;
    result.run_stats.mean_iteration_s =
        n ? sum_s / static_cast<double>(n) : 0.0;
    result.run_stats.total_span_s =
        n ? static_cast<double>(result.trace.iterations().back().end_t) : 0.0;
  }
  if (result.crosscheck_mismatches != 0) {
    util::log::Warn(std::to_string(result.crosscheck_mismatches) +
                    " structured/text cross-check mismatches — the fast-path "
                    "codec diverged from the wire format");
  }
  result.hardware = fleet.HardwareTotals();
  result.perf_index.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    result.perf_index.push_back(fleet.machine(i).spec().CombinedIndex());
  }
  for (const auto& lab : fleet.labs()) {
    const auto& spec = fleet.machine(lab.first).spec();
    LabSummary summary;
    summary.name = lab.name;
    summary.machine_count = lab.count;
    summary.cpu_model = spec.cpu_model;
    summary.cpu_ghz = spec.cpu_ghz;
    summary.ram_mb = spec.ram_mb;
    summary.disk_gb = spec.disk_gb;
    summary.int_index = spec.int_index;
    summary.fp_index = spec.fp_index;
    result.labs.push_back(std::move(summary));
  }
  // Critical-path share: fraction of the run's wall time spent outside the
  // sharded collect region (fleet build, merge, aggregation) — the serial
  // work that caps any shard-count speedup (Amdahl). Exposed for the
  // profiler report and the prof_gate bench comparator.
  {
    const double run_wall_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - run_t0)
                                  .count();
    const double serial_s = std::max(0.0, run_wall_s - collect_wall_s);
    obs::DefaultRegistry()
        .GetGauge("labmon_prof_critical_path_fraction",
                  "Serial (non-sharded) share of the last experiment run's "
                  "wall time: 0 = fully parallel, 1 = fully serial.")
        .Set(run_wall_s > 0.0 ? serial_s / run_wall_s : 0.0);
  }
  util::log::Info("collected " + std::to_string(result.trace.size()) +
                  " samples in " +
                  std::to_string(result.run_stats.iterations) + " iterations");
  return result;
}

ExperimentResult Experiment::RunCached(const ExperimentConfig& config,
                                       const std::string& snapshot_dir) {
  if (snapshot_dir.empty()) return Run(config);

  auto& registry = obs::DefaultRegistry();
  const auto load_counter = [&registry](const char* outcome) -> obs::Counter& {
    return registry.GetCounter(
        "labmon_snapshot_loads_total",
        "Snapshot lookup outcomes (hit / miss / corrupt).",
        {{"result", outcome}});
  };

  const std::uint64_t fingerprint = FingerprintConfig(config);
  const SnapshotCache cache(snapshot_dir);
  if (cache.Contains(fingerprint)) {
    obs::prof::PhaseScope prof_scope(obs::prof::Phase::kSnapshot);
    auto loaded = cache.Load(fingerprint);
    if (loaded.ok()) {
      load_counter("hit").Increment();
      util::log::Info("replayed snapshot " + cache.PathFor(fingerprint) +
                      " (" + std::to_string(loaded.value().trace.size()) +
                      " samples, no simulation)");
      return std::move(loaded).value();
    }
    // Existing but unusable file: corruption, truncation or a stale format.
    // Warn, fall through to simulation and overwrite it.
    load_counter("corrupt").Increment();
    util::log::Warn("snapshot " + cache.PathFor(fingerprint) + " unusable (" +
                    loaded.error() + "); re-simulating");
  } else {
    load_counter("miss").Increment();
  }

  ExperimentResult result = Run(config);
  obs::prof::PhaseScope store_scope(obs::prof::Phase::kSnapshot);
  if (const auto stored = cache.Store(fingerprint, result); stored.ok()) {
    registry
        .GetCounter("labmon_snapshot_stores_total",
                    "Snapshots written after a simulation.")
        .Increment();
    util::log::Info("stored snapshot " + cache.PathFor(fingerprint));
  } else {
    util::log::Warn("failed to store snapshot: " + stored.error());
  }
  return result;
}

}  // namespace labmon::core
