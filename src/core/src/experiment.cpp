#include "labmon/core/experiment.hpp"

#include <utility>

#include "labmon/core/snapshot.hpp"
#include "labmon/ddc/w32_probe.hpp"
#include "labmon/faultsim/fault_injector.hpp"
#include "labmon/obs/registry.hpp"
#include "labmon/obs/span.hpp"
#include "labmon/trace/sink.hpp"
#include "labmon/util/log.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/winsim/paper_specs.hpp"

namespace labmon::core {

ExperimentResult Experiment::Run(const ExperimentConfig& config) {
  obs::DefaultRegistry()
      .GetCounter("labmon_experiment_simulations_total",
                  "Full experiment simulations actually executed.")
      .Increment();
  obs::Span run_span("experiment.run");
  run_span.SetSimRange(0, config.campus.EndTime());
  util::Rng rng(config.campus.seed);
  winsim::Fleet fleet = [&] {
    obs::Span build_span("experiment.build_fleet");
    return winsim::MakePaperFleet(rng, config.prior_life);
  }();
  workload::WorkloadDriver driver(fleet, config.campus);

  ExperimentResult result;
  result.days = config.campus.days;
  result.trace.set_machine_count(fleet.size());
  // ~96 iterations/day upper bound; reserve for the ~50% response rate.
  result.trace.Reserve(static_cast<std::size_t>(config.campus.days) * 96 *
                       fleet.size() / 2);

  trace::TraceStoreSink sink(result.trace);
  ddc::W32Probe probe;
  ddc::CoordinatorConfig collector = config.collector;
  collector.structured_fast_path = config.structured_fast_path;
  // The fault injector lives on this frame for the coordinator's lifetime;
  // an inactive plan keeps the transport path (and the trace) untouched.
  faultsim::FaultInjector injector(config.fault_plan,
                                   collector.metrics);
  if (injector.active()) {
    injector.BindFleet(fleet);
    collector.faults = &injector;
  }
  // Named local: the coordinator holds a FunctionRef to this callable for
  // its whole lifetime, so it must outlive the coordinator.
  auto advance = [&driver](util::SimTime t) { driver.AdvanceTo(t); };
  ddc::Coordinator coordinator(fleet, probe, collector, sink, advance);

  util::log::Info("running " + std::to_string(config.campus.days) +
                  "-day experiment over " + std::to_string(fleet.size()) +
                  " machines");
  {
    obs::Span collect_span("experiment.collect");
    collect_span.SetSimRange(0, config.campus.EndTime());
    result.run_stats = coordinator.Run(0, config.campus.EndTime());
    driver.FinishAt(config.campus.EndTime());
  }

  result.ground_truth = driver.ground_truth();
  result.parse_failures = sink.parse_failures();
  result.crosscheck_mismatches = sink.crosscheck_mismatches();
  if (result.crosscheck_mismatches != 0) {
    util::log::Warn(std::to_string(result.crosscheck_mismatches) +
                    " structured/text cross-check mismatches — the fast-path "
                    "codec diverged from the wire format");
  }
  result.hardware = fleet.HardwareTotals();
  result.perf_index.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    result.perf_index.push_back(fleet.machine(i).spec().CombinedIndex());
  }
  for (const auto& lab : fleet.labs()) {
    const auto& spec = fleet.machine(lab.first).spec();
    LabSummary summary;
    summary.name = lab.name;
    summary.machine_count = lab.count;
    summary.cpu_model = spec.cpu_model;
    summary.cpu_ghz = spec.cpu_ghz;
    summary.ram_mb = spec.ram_mb;
    summary.disk_gb = spec.disk_gb;
    summary.int_index = spec.int_index;
    summary.fp_index = spec.fp_index;
    result.labs.push_back(std::move(summary));
  }
  util::log::Info("collected " + std::to_string(result.trace.size()) +
                  " samples in " +
                  std::to_string(result.run_stats.iterations) + " iterations");
  return result;
}

ExperimentResult Experiment::RunCached(const ExperimentConfig& config,
                                       const std::string& snapshot_dir) {
  if (snapshot_dir.empty()) return Run(config);

  auto& registry = obs::DefaultRegistry();
  const auto load_counter = [&registry](const char* outcome) -> obs::Counter& {
    return registry.GetCounter(
        "labmon_snapshot_loads_total",
        "Snapshot lookup outcomes (hit / miss / corrupt).",
        {{"result", outcome}});
  };

  const std::uint64_t fingerprint = FingerprintConfig(config);
  const SnapshotCache cache(snapshot_dir);
  if (cache.Contains(fingerprint)) {
    auto loaded = cache.Load(fingerprint);
    if (loaded.ok()) {
      load_counter("hit").Increment();
      util::log::Info("replayed snapshot " + cache.PathFor(fingerprint) +
                      " (" + std::to_string(loaded.value().trace.size()) +
                      " samples, no simulation)");
      return std::move(loaded).value();
    }
    // Existing but unusable file: corruption, truncation or a stale format.
    // Warn, fall through to simulation and overwrite it.
    load_counter("corrupt").Increment();
    util::log::Warn("snapshot " + cache.PathFor(fingerprint) + " unusable (" +
                    loaded.error() + "); re-simulating");
  } else {
    load_counter("miss").Increment();
  }

  ExperimentResult result = Run(config);
  if (const auto stored = cache.Store(fingerprint, result); stored.ok()) {
    registry
        .GetCounter("labmon_snapshot_stores_total",
                    "Snapshots written after a simulation.")
        .Increment();
    util::log::Info("stored snapshot " + cache.PathFor(fingerprint));
  } else {
    util::log::Warn("failed to store snapshot: " + stored.error());
  }
  return result;
}

}  // namespace labmon::core
