#include "labmon/core/report.hpp"

#include <filesystem>
#include <sstream>

#include "labmon/obs/prof.hpp"
#include "labmon/trace/sessions.hpp"
#include "labmon/util/csv.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/util/table.hpp"

namespace labmon::core {

namespace {

// Charges the shared interval/session derivation to the analysis phase
// (it runs in the member-init list, before the constructor body's scope).
trace::DerivedTrace BuildDerived(const ExperimentResult& result,
                                 const ReportOptions& options) {
  obs::prof::PhaseScope prof_scope(obs::prof::Phase::kAnalysis);
  return trace::DerivedTrace(
      result.trace,
      trace::DerivedTraceOptions{{}, options.workers, options.metrics});
}

}  // namespace

Report::Report(const ExperimentResult& result, ReportOptions options)
    : result_(&result), derived_(BuildDerived(result, options)) {
  obs::prof::PhaseScope prof_scope(obs::prof::Phase::kAnalysis);
  std::vector<analysis::LabKey> keys;
  std::size_t first = 0;
  for (const auto& lab : result.labs) {
    keys.push_back(analysis::LabKey{lab.name, first, lab.machine_count});
    first += lab.machine_count;
  }

  // One sweep feeds every analysis; intervals and sessions come from the
  // shared derivation above (computed exactly once).
  analysis::AnalysisPipeline pipeline(
      analysis::PipelineOptions{options.workers, 8, options.metrics});
  auto& table2 = pipeline.Emplace<analysis::AggregatePass>();
  auto& availability = pipeline.Emplace<analysis::AvailabilityPass>();
  auto& session_hours = pipeline.Emplace<analysis::SessionHoursPass>();
  auto& weekly = pipeline.Emplace<analysis::WeeklyPass>();
  // §5.4 splits occupied/free by *raw* interactive presence (the
  // forgotten-login reclassification is a Table-2 device; the
  // equivalence figure charges any open session to "occupied").
  auto& equivalence = pipeline.Emplace<analysis::EquivalencePass>(
      result.perf_index, 15, trace::kNoForgottenThreshold);
  auto& stability = pipeline.Emplace<analysis::StabilityPass>(result.days);
  auto& per_lab = pipeline.Emplace<analysis::PerLabPass>(std::move(keys));
  auto& capacity = pipeline.Emplace<analysis::CapacityPass>();
  pipeline_stats_ = pipeline.Run(derived_);

  table2_ = table2.result();
  availability_ = availability.result().series;
  ranking_ = availability.result().ranking;
  session_lengths_ = availability.result().session_lengths;
  session_stats_ = stability.result().sessions;
  smart_stats_ = stability.result().smart;
  session_hours_ = session_hours.result();
  weekly_ = weekly.result();
  equivalence_ = equivalence.result();
  per_lab_ = per_lab.result().usage;
  headroom_ = per_lab.result().headroom;
  capacity_ = capacity.result();
}

std::string Report::Table1() const {
  util::AsciiTable table("Table 1: Main characteristics of machines");
  table.SetHeader({"Lab", "CPU (GHz)", "RAM MB", "Disk (GB)", "INT / FP",
                   "Machines"});
  for (const auto& lab : result_->labs) {
    table.AddRow({lab.name,
                  lab.cpu_model + " (" + util::FormatFixed(lab.cpu_ghz, 2) +
                      ")",
                  std::to_string(lab.ram_mb),
                  util::FormatFixed(lab.disk_gb, 1),
                  util::FormatFixed(lab.int_index, 1) + " / " +
                      util::FormatFixed(lab.fp_index, 1),
                  std::to_string(lab.machine_count)});
  }
  std::string out = table.Render();
  out += "combined: " + util::FormatFixed(result_->hardware.ram_gb, 2) +
         " GB RAM (paper: 56.62), " +
         util::FormatFixed(result_->hardware.disk_tb, 2) +
         " TB disk (paper: 6.66)\n";
  return out;
}

std::string Report::Table2() const {
  return analysis::RenderTable2(table2_, /*with_paper_reference=*/true);
}

std::string Report::Figure2() const {
  return analysis::RenderSessionHourProfile(session_hours_);
}

std::string Report::Figure3() const {
  std::ostringstream oss;
  oss << "Figure 3: machines powered on / user-free over the experiment\n";
  oss << "mean powered-on machines: "
      << util::FormatFixed(availability_.mean_powered_on, 2)
      << " (paper: 84.87)\n";
  oss << "mean user-free machines: "
      << util::FormatFixed(availability_.mean_user_free, 2)
      << " (paper: 57.29)\n";
  oss << "user-free share of powered-on: "
      << util::FormatFixed(100.0 * availability_.mean_user_free /
                               std::max(1.0, availability_.mean_powered_on),
                           1)
      << "% (paper: ~70%)\n";
  return oss.str();
}

std::string Report::Figure4() const {
  std::string out = analysis::RenderUptimeRanking(ranking_, 10);
  util::AsciiTable table(
      "Figure 4 (right): distribution of machine-session uptime (<= 96 h)");
  table.SetHeader({"Length bin (h)", "Sessions", "Fraction (%)"});
  const auto& h = session_lengths_.histogram;
  for (std::size_t i = 0; i < h.bin_count(); i += 2) {
    const double count = h.count(i) + (i + 1 < h.bin_count() ? h.count(i + 1) : 0.0);
    table.AddRow({"[" + util::FormatFixed(h.bin_lo(i), 0) + "-" +
                      util::FormatFixed(h.bin_lo(i) + 4.0, 0) + "[",
                  util::FormatFixed(count, 0),
                  util::FormatFixed(
                      100.0 * count / std::max(1.0, h.total()), 2)});
  }
  out += table.Render();
  out += "sessions <= 96 h: " +
         util::FormatFixed(session_lengths_.fraction_within_96h, 2) +
         "% of sessions (paper: 98.7%), " +
         util::FormatFixed(session_lengths_.uptime_fraction_within_96h, 2) +
         "% of cumulated uptime (paper: 87.93%)\n";
  return out;
}

std::string Report::Figure5() const {
  return analysis::RenderWeeklyProfiles(weekly_);
}

std::string Report::Figure6() const {
  return analysis::RenderEquivalence(equivalence_);
}

std::string Report::Stability() const {
  return analysis::RenderStability(session_stats_, smart_stats_);
}

std::string Report::PerLab() const {
  return analysis::RenderPerLabUsage(per_lab_) +
         analysis::RenderResourceHeadroom(headroom_);
}

std::string Report::FullReport() const {
  std::ostringstream oss;
  oss << Table1() << '\n'
      << Table2() << '\n'
      << Figure2() << '\n'
      << Figure3() << '\n'
      << Figure4() << '\n'
      << Stability() << '\n'
      << PerLab() << '\n'
      << Figure5() << '\n'
      << Figure6();
  return oss.str();
}

std::string Report::WriteCsvFiles(const std::string& directory) const {
  obs::prof::PhaseScope prof_scope(obs::prof::Phase::kExport);
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return "cannot create directory: " + directory;

  const auto write = [&](const std::string& name,
                         const std::string& content) -> std::string {
    const auto result = util::WriteTextFile(directory + "/" + name, content);
    return result.ok() ? std::string{} : result.error();
  };

  // Figure 3 series.
  if (auto err = write("fig3_powered_on.csv",
                       availability_.powered_on.ToCsv("powered_on"));
      !err.empty()) {
    return err;
  }
  if (auto err = write("fig3_user_free.csv",
                       availability_.user_free.ToCsv("user_free"));
      !err.empty()) {
    return err;
  }

  // Figure 4 left: ranking.
  {
    std::ostringstream oss;
    util::CsvWriter w(oss);
    w.Row("rank", "machine", "uptime_ratio", "nines");
    for (std::size_t i = 0; i < ranking_.entries.size(); ++i) {
      const auto& e = ranking_.entries[i];
      w.Row(std::to_string(i + 1), std::to_string(e.machine),
            util::FormatFixed(e.uptime_ratio, 6),
            util::FormatFixed(e.nines, 6));
    }
    if (auto err = write("fig4_uptime_ranking.csv", oss.str()); !err.empty()) {
      return err;
    }
  }

  // Figure 4 right: session-length histogram.
  {
    std::ostringstream oss;
    util::CsvWriter w(oss);
    w.Row("bin_lo_h", "bin_hi_h", "sessions");
    const auto& h = session_lengths_.histogram;
    for (std::size_t i = 0; i < h.bin_count(); ++i) {
      w.Row(util::FormatFixed(h.bin_lo(i), 1), util::FormatFixed(h.bin_hi(i), 1),
            util::FormatFixed(h.count(i), 0));
    }
    if (auto err = write("fig4_session_lengths.csv", oss.str());
        !err.empty()) {
      return err;
    }
  }

  // Figure 2: session-hour profile.
  {
    std::ostringstream oss;
    util::CsvWriter w(oss);
    w.Row("hour_bin", "samples", "mean_cpu_idle_pct");
    for (const auto& bin : session_hours_.bins) {
      w.Row(std::to_string(bin.hour), std::to_string(bin.samples),
            util::FormatFixed(bin.mean_cpu_idle_pct, 4));
    }
    if (auto err = write("fig2_session_hours.csv", oss.str()); !err.empty()) {
      return err;
    }
  }

  // Figures 5 and 6: weekly profiles.
  {
    std::ostringstream oss;
    util::CsvWriter w(oss);
    w.Row("minute_of_week", "label", "cpu_idle_pct", "ram_pct", "swap_pct",
          "sent_bps", "recv_bps", "equiv_total", "equiv_occupied",
          "equiv_free");
    for (std::size_t i = 0; i < weekly_.cpu_idle_pct.bin_count(); ++i) {
      w.Row(std::to_string(weekly_.cpu_idle_pct.BinStartMinute(i)),
            weekly_.cpu_idle_pct.BinLabel(i),
            util::FormatFixed(weekly_.cpu_idle_pct.Mean(i), 4),
            util::FormatFixed(weekly_.ram_load_pct.Mean(i), 4),
            util::FormatFixed(weekly_.swap_load_pct.Mean(i), 4),
            util::FormatFixed(weekly_.sent_bps.Mean(i), 2),
            util::FormatFixed(weekly_.recv_bps.Mean(i), 2),
            util::FormatFixed(equivalence_.weekly_total.Mean(i), 5),
            util::FormatFixed(equivalence_.weekly_occupied.Mean(i), 5),
            util::FormatFixed(equivalence_.weekly_free.Mean(i), 5));
    }
    if (auto err = write("fig5_fig6_weekly.csv", oss.str()); !err.empty()) {
      return err;
    }
  }
  return {};
}

}  // namespace labmon::core
