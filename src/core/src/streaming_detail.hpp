// Internal helpers shared by the streaming and pipelined campaign engines
// (core/src only — not part of the installed API): the per-lab checkpoint
// payload, its sidecar codec, spill-path naming, and the result-assembly
// steps both engines perform identically.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "labmon/core/streaming.hpp"
#include "labmon/obs/registry.hpp"
#include "labmon/trace/spill_codec.hpp"
#include "labmon/winsim/fleet.hpp"

namespace labmon::core::detail {

/// What one lab's collection contributes to the campaign totals — exactly
/// the fields Experiment::Run sums per shard. This is also the sidecar
/// payload: a resumed lab restores these without re-simulating.
struct LabCheckpoint {
  ddc::RunStats stats;
  workload::GroundTruth truth;
  std::uint64_t parse_failures = 0;
  std::uint64_t crosscheck_mismatches = 0;
  std::uint64_t blocks = 0;
  /// Codec the lab's segment was written under. Informational: resume
  /// re-opens the segment and dispatches on its actual magic, so a
  /// checkpoint written under either codec resumes under any requested
  /// codec (cross-codec resume is pinned by the determinism tests).
  trace::SpillCodecId codec = trace::kDefaultSpillCodec;
};

inline constexpr char kSidecarMagic[] = "LMSGCK";
// v2 added the "codec" line; v1 sidecars are simply re-simulated.
inline constexpr std::uint64_t kSidecarVersion = 2;

inline std::string LabFileStem(const std::string& dir, std::size_t lab) {
  char name[32];
  std::snprintf(name, sizeof(name), "lab%04zu", lab);
  return dir + "/" + name;
}

inline std::string SegmentPath(const std::string& dir, std::size_t lab) {
  return LabFileStem(dir, lab) + ".lmsg";
}

inline std::string SidecarPath(const std::string& dir, std::size_t lab) {
  return LabFileStem(dir, lab) + ".ck";
}

/// The sidecar is the checkpoint commit point: written (atomically, via
/// temp file + rename) only after the lab's segment is complete, so a
/// crash mid-lab leaves no sidecar and the lab is simply re-simulated.
inline bool WriteSidecar(const std::string& path, std::uint64_t fingerprint,
                         std::size_t lab, const LabCheckpoint& cp) {
  std::ostringstream out;
  out << kSidecarMagic << ' ' << kSidecarVersion << '\n';
  out << "fingerprint " << fingerprint << '\n';
  out << "lab " << lab << '\n';
  out << "codec " << trace::SpillCodecName(cp.codec) << '\n';
  out << "blocks " << cp.blocks << '\n';
  out << "parse_failures " << cp.parse_failures << '\n';
  out << "crosscheck_mismatches " << cp.crosscheck_mismatches << '\n';
  const ddc::RunStats& s = cp.stats;
  out << "stats " << s.attempts << ' ' << s.successes << ' ' << s.timeouts
      << ' ' << s.errors << ' ' << s.missing << ' ' << s.corrupt << ' '
      << s.recovered_after_retry << ' ' << s.retry_attempts << ' '
      << s.retried_collections << ' ' << s.faults_injected << '\n';
  const workload::GroundTruth& t = cp.truth;
  out << "truth " << t.boots << ' ' << t.shutdowns << ' ' << t.reboots << ' '
      << t.short_cycles << ' ' << t.class_logins << ' ' << t.walkin_logins
      << ' ' << t.forgotten_sessions << ' ' << t.lost_arrivals << ' '
      << t.sweep_shutdowns << '\n';

  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return false;
    const std::string bytes = out.str();
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    file.flush();
    if (!file) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// Parses and validates a sidecar; false on any mismatch (wrong magic or
/// version, foreign fingerprint, wrong lab index, truncation).
inline bool LoadSidecar(const std::string& path, std::uint64_t fingerprint,
                        std::size_t lab, LabCheckpoint& cp) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  std::string magic;
  std::uint64_t version = 0;
  std::uint64_t stored_fingerprint = 0;
  std::uint64_t stored_lab = 0;
  std::string key;
  if (!(file >> magic >> version) || magic != kSidecarMagic ||
      version != kSidecarVersion) {
    return false;
  }
  if (!(file >> key >> stored_fingerprint) || key != "fingerprint" ||
      stored_fingerprint != fingerprint) {
    return false;
  }
  if (!(file >> key >> stored_lab) || key != "lab" || stored_lab != lab) {
    return false;
  }
  std::string codec_name;
  if (!(file >> key >> codec_name) || key != "codec") return false;
  const auto codec = trace::ParseSpillCodecName(codec_name);
  if (!codec.has_value()) return false;
  cp.codec = *codec;
  if (!(file >> key >> cp.blocks) || key != "blocks") return false;
  if (!(file >> key >> cp.parse_failures) || key != "parse_failures") {
    return false;
  }
  if (!(file >> key >> cp.crosscheck_mismatches) ||
      key != "crosscheck_mismatches") {
    return false;
  }
  ddc::RunStats& s = cp.stats;
  if (!(file >> key >> s.attempts >> s.successes >> s.timeouts >> s.errors >>
        s.missing >> s.corrupt >> s.recovered_after_retry >>
        s.retry_attempts >> s.retried_collections >> s.faults_injected) ||
      key != "stats") {
    return false;
  }
  workload::GroundTruth& t = cp.truth;
  if (!(file >> key >> t.boots >> t.shutdowns >> t.reboots >>
        t.short_cycles >> t.class_logins >> t.walkin_logins >>
        t.forgotten_sessions >> t.lost_arrivals >> t.sweep_shutdowns) ||
      key != "truth") {
    return false;
  }
  return true;
}

/// Sums one lab's checkpoint into the campaign result (iteration-derived
/// RunStats fields are installed later from the merged iteration records).
inline void AccumulateCheckpoint(StreamingExperimentResult& result,
                                 const LabCheckpoint& cp) {
  result.run_stats.attempts += cp.stats.attempts;
  result.run_stats.successes += cp.stats.successes;
  result.run_stats.timeouts += cp.stats.timeouts;
  result.run_stats.errors += cp.stats.errors;
  result.run_stats.missing += cp.stats.missing;
  result.run_stats.corrupt += cp.stats.corrupt;
  result.run_stats.recovered_after_retry += cp.stats.recovered_after_retry;
  result.run_stats.retry_attempts += cp.stats.retry_attempts;
  result.run_stats.retried_collections += cp.stats.retried_collections;
  result.run_stats.faults_injected += cp.stats.faults_injected;
  result.ground_truth += cp.truth;
  result.parse_failures += cp.parse_failures;
  result.crosscheck_mismatches += cp.crosscheck_mismatches;
}

/// Folds one finished segment writer into the run's encode-side spill
/// accounting. Callers on worker threads must hold their own lock.
inline void AccumulateSpillEncode(SpillCompressionStats& spill,
                                  const trace::SpillCodecStats& stats,
                                  std::uint64_t segment_bytes) {
  ++spill.segments;
  spill.segment_bytes += segment_bytes;
  spill.blocks_encoded += stats.blocks;
  spill.samples_encoded += stats.samples;
  spill.raw_bytes_encoded += stats.raw_bytes;
  spill.payload_bytes_encoded += stats.payload_bytes;
  spill.encode_s += static_cast<double>(stats.ns) * 1e-9;
}

/// Folds one drained segment reader into the decode-side accounting.
inline void AccumulateSpillDecode(SpillCompressionStats& spill,
                                  const trace::SpillCodecStats& stats) {
  spill.blocks_decoded += stats.blocks;
  spill.samples_decoded += stats.samples;
  spill.raw_bytes_decoded += stats.raw_bytes;
  spill.payload_bytes_decoded += stats.payload_bytes;
  spill.decode_s += static_cast<double>(stats.ns) * 1e-9;
}

/// Mirrors the run's spill accounting into obs gauges (no-op when the run
/// did not spill). Per-column ratios are kept by the codec itself under
/// labmon_spill_column_*.
inline void PublishSpillGauges(const SpillCompressionStats& spill) {
  if (spill.codec.empty() || spill.segments == 0) return;
  auto& registry = obs::DefaultRegistry();
  const obs::Labels labels{{"codec", spill.codec}};
  registry
      .GetGauge("labmon_spill_compression_ratio",
                "Raw columnar bytes per encoded spill payload byte.", labels)
      .Set(spill.CompressionRatio());
  registry
      .GetGauge("labmon_spill_segment_bytes",
                "On-disk spill segment bytes written by the last run.",
                labels)
      .Set(static_cast<double>(spill.segment_bytes));
  registry
      .GetGauge("labmon_spill_encode_ns_per_sample",
                "Spill encode cost of the last run, ns per sample.", labels)
      .Set(spill.EncodeNsPerSample());
  registry
      .GetGauge("labmon_spill_decode_ns_per_sample",
                "Spill decode cost of the last run, ns per sample.", labels)
      .Set(spill.DecodeNsPerSample());
}

/// Copies fleet-derived summaries (hardware totals, perf index, per-lab
/// specs) into the result and returns the analysis lab keys.
inline std::vector<analysis::LabKey> FillFleetSummaries(
    StreamingExperimentResult& result, const winsim::Fleet& fleet) {
  result.hardware = fleet.HardwareTotals();
  result.perf_index.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    result.perf_index.push_back(fleet.machine(i).spec().CombinedIndex());
  }
  std::vector<analysis::LabKey> keys;
  for (const auto& lab : fleet.labs()) {
    const auto& spec = fleet.machine(lab.first).spec();
    LabSummary summary;
    summary.name = lab.name;
    summary.machine_count = lab.count;
    summary.cpu_model = spec.cpu_model;
    summary.cpu_ghz = spec.cpu_ghz;
    summary.ram_mb = spec.ram_mb;
    summary.disk_gb = spec.disk_gb;
    summary.int_index = spec.int_index;
    summary.fp_index = spec.fp_index;
    result.labs.push_back(std::move(summary));
    keys.push_back(analysis::LabKey{lab.name, lab.first, lab.count});
  }
  return keys;
}

/// Iteration aggregates from result.summary, exactly as Experiment::Run
/// computes them from the merged trace.
inline void ComputeIterationAggregates(StreamingExperimentResult& result) {
  double sum_s = 0.0;
  for (const trace::IterationInfo& it : result.summary.iterations()) {
    const double duration = static_cast<double>(it.end_t - it.start_t);
    sum_s += duration;
    result.run_stats.max_iteration_s =
        std::max(result.run_stats.max_iteration_s, duration);
  }
  const std::size_t n = result.summary.iterations().size();
  result.run_stats.iterations = n;
  result.run_stats.mean_iteration_s =
      n ? sum_s / static_cast<double>(n) : 0.0;
  result.run_stats.total_span_s =
      n ? static_cast<double>(result.summary.iterations().back().end_t) : 0.0;
}

}  // namespace labmon::core::detail
