// PipelinedExperiment — the three streaming stages run concurrently.
//
// Thread structure of one run:
//
//   shard workers (ParallelFor, one pass per lockstep window)
//       │  seal iteration-aligned blocks at window boundaries
//       ▼
//   collect ring (bounded MPSC StagingRing<StagedBlock>)
//       │  merge thread: drain → MergeFrontier::Advance
//       ▼
//   fold ring (StagingRing<TraceBlock>, merged blocks)
//       │  fold thread: StreamingAnalysis::ConsumeRing (hash + Accept)
//       ▼
//   StreamingAnalysisResult + stream hash
//
// Every lab is advanced through window w before any lab starts w+1
// (Coordinator::Begin/StepUntil/Finish keeps the probe/fault sequence
// bit-identical to one Run() call), so after each window the merge
// frontier holds complete iteration fronts and emits merged blocks while
// later windows are still simulating. Block buffers recycle backwards:
// the frontier hands consumed collection blocks to per-shard pools the
// sealers draw from, and the fold returns emptied merged blocks to the
// emitter's pool — steady-state block traffic allocates nothing.
//
// Shutdown discipline (no path may deadlock): the merge thread drains the
// collect ring unconditionally, the fold thread drains the fold ring
// unconditionally, so producers can never park forever on a full ring.
// On error the rings are cancelled, which wakes every parked thread with
// `false`; a scope guard declared after the worker threads cancels both
// rings during unwind so the jthread joins always complete.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "labmon/core/snapshot.hpp"
#include "labmon/core/streaming.hpp"
#include "labmon/ddc/w32_probe.hpp"
#include "labmon/faultsim/fault_injector.hpp"
#include "labmon/obs/prof.hpp"
#include "labmon/obs/registry.hpp"
#include "labmon/obs/span.hpp"
#include "labmon/trace/merge_frontier.hpp"
#include "labmon/trace/segment.hpp"
#include "labmon/trace/sink.hpp"
#include "labmon/util/log.hpp"
#include "labmon/util/parallel.hpp"
#include "labmon/util/staging_ring.hpp"
#include "labmon/winsim/paper_specs.hpp"
#include "labmon/workload/profile.hpp"
#include "streaming_detail.hpp"

namespace labmon::core {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One collect-ring item: a sealed block of `lab`'s stream, or (with
/// `final_block` set and no payload) the end-of-stream marker that lets
/// the merge finish the lab's part.
struct StagedBlock {
  std::size_t lab = 0;
  bool final_block = false;
  std::unique_ptr<trace::TraceBlock> block;
};

/// Per-shard arena: sealers acquire heap blocks here, the merge returns
/// them once consumed. Acquire() yields a null pointer when the pool is
/// empty (counted as an allocation) — the caller falls back to new.
using BlockPool = util::RecyclingPool<std::unique_ptr<trace::TraceBlock>>;

/// The pipelined counterpart of streaming.cpp's SpillingSink: samples
/// append to the lab's working store; sealing copies the store into a
/// pooled heap block pushed onto the collect ring (and, when spilling,
/// also appends it to the lab's segment so the checkpoint protocol is
/// unchanged). Seals happen at the block budget *and* at every window
/// boundary, so blocks stay iteration-aligned and fronts keep advancing
/// even in iteration-sparse windows.
class PipelineSink final : public ddc::SampleSink {
 public:
  PipelineSink(trace::TraceStore& store, std::size_t block_samples,
               trace::SegmentWriter* writer,
               util::StagingRing<StagedBlock>& ring, BlockPool& pool,
               std::size_t lab)
      : inner_(store),
        store_(&store),
        block_samples_(std::max<std::size_t>(1, block_samples)),
        writer_(writer),
        ring_(&ring),
        pool_(&pool),
        lab_(lab) {}

  ddc::SampleVerdict OnSample(const ddc::CollectedSample& sample) override {
    return inner_.OnSample(sample);
  }

  void OnIterationEnd(std::uint64_t iteration, util::SimTime start_time,
                      util::SimTime end_time) override {
    inner_.OnIterationEnd(iteration, start_time, end_time);
    if (store_->size() >= block_samples_) Seal();
  }

  /// Window-boundary / end-of-run seal of whatever is buffered.
  void SealPending() {
    if (store_->size() > 0 || !store_->iterations().empty()) Seal();
  }

  /// Publishes the lab's end-of-stream marker; false when the ring was
  /// cancelled (error path — the marker no longer matters).
  bool PublishFinal() {
    StagedBlock item;
    item.lab = lab_;
    item.final_block = true;
    return ring_->Push(std::move(item));
  }

  [[nodiscard]] std::uint64_t blocks_sealed() const noexcept {
    return blocks_sealed_;
  }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const trace::TraceStoreSink& inner() const noexcept {
    return inner_;
  }

 private:
  void Seal() {
    obs::prof::PhaseScope prof_scope(obs::prof::Phase::kStage);
    if (writer_ != nullptr) {
      if (auto appended = writer_->Append(*store_);
          !appended.ok() && error_.empty()) {
        error_ = appended.error();
      }
    }
    std::unique_ptr<trace::TraceBlock> block = pool_->Acquire();
    if (!block) block = std::make_unique<trace::TraceBlock>();
    block->AssignFrom(*store_);
    StagedBlock item;
    item.lab = lab_;
    item.block = std::move(block);
    ring_->Push(std::move(item));  // false only when cancelled (error path)
    ++blocks_sealed_;
    store_->ClearSamples();
  }

  trace::TraceStoreSink inner_;
  trace::TraceStore* store_;
  std::size_t block_samples_;
  trace::SegmentWriter* writer_;
  util::StagingRing<StagedBlock>* ring_;
  BlockPool* pool_;
  std::size_t lab_;
  std::uint64_t blocks_sealed_ = 0;
  std::string error_;
};

/// Everything one live lab keeps alive across windows: the behaviour
/// driver, working store, sink, probe, injector and the incrementally
/// driven coordinator. Heap-allocated and never moved, so the
/// FunctionRef-bound advance hook and the coordinator's references stay
/// valid for the whole run.
class LabRun {
 public:
  LabRun(winsim::Fleet& fleet, const workload::CampusConfig& campus,
         const workload::CampusProfile& profile, std::size_t lab,
         std::size_t machine_count, std::size_t reserve,
         const ddc::CoordinatorConfig& collector,
         const faultsim::FaultPlan& plan,
         std::unique_ptr<trace::SegmentWriter> writer,
         std::size_t block_samples, util::StagingRing<StagedBlock>& ring,
         BlockPool& pool)
      : driver_(fleet, campus, profile, lab, lab + 1),
        store_(machine_count),
        writer_(std::move(writer)),
        sink_(store_, block_samples, writer_.get(), ring, pool, lab),
        injector_(plan, collector.metrics) {
    store_.Reserve(reserve);
    ddc::CoordinatorConfig config = collector;
    if (injector_.active()) {
      injector_.BindFleet(fleet);
      config.faults = &injector_;
    }
    coordinator_.emplace(fleet, probe_, config, sink_,
                         ddc::Coordinator::AdvanceFn(advance_));
  }

  [[nodiscard]] ddc::Coordinator& coordinator() noexcept {
    return *coordinator_;
  }
  [[nodiscard]] PipelineSink& sink() noexcept { return sink_; }
  [[nodiscard]] workload::WorkloadDriver& driver() noexcept { return driver_; }
  [[nodiscard]] trace::SegmentWriter* writer() noexcept {
    return writer_.get();
  }

 private:
  struct Advance {
    workload::WorkloadDriver* driver;
    void operator()(util::SimTime t) const {
      obs::prof::SampledPhaseScope prof_scope(obs::prof::Phase::kSimulate);
      driver->AdvanceTo(t);
    }
  };

  workload::WorkloadDriver driver_;
  trace::TraceStore store_;
  std::unique_ptr<trace::SegmentWriter> writer_;
  PipelineSink sink_;
  ddc::W32Probe probe_;
  faultsim::FaultInjector injector_;
  Advance advance_{&driver_};
  std::optional<ddc::Coordinator> coordinator_;
};

}  // namespace

StreamingExperimentResult PipelinedExperiment::Run(
    const ExperimentConfig& config, const StreamingOptions& options) {
  obs::DefaultRegistry()
      .GetCounter("labmon_pipelined_runs_total",
                  "Pipelined campaign runs executed.")
      .Increment();
  obs::Span run_span("experiment.pipeline");
  run_span.SetSimRange(0, config.campus.EndTime());
  const auto run_t0 = Clock::now();

  util::Rng rng(config.campus.seed);
  winsim::Fleet fleet = [&] {
    obs::Span build_span("experiment.build_fleet");
    obs::prof::PhaseScope prof_scope(obs::prof::Phase::kBuildFleet);
    return winsim::MakePaperFleet(rng, config.prior_life,
                                  config.campus.scale_labs);
  }();
  const workload::CampusProfile profile = [&] {
    obs::prof::PhaseScope prof_scope(obs::prof::Phase::kBuildFleet);
    return workload::CampusProfile::Build(fleet, config.campus);
  }();

  const std::size_t lab_count = fleet.lab_count();
  const std::size_t machine_count = fleet.size();
  const bool spill = !options.spill_dir.empty();
  const std::uint64_t fingerprint = FingerprintConfig(config);
  const util::SimTime horizon = config.campus.EndTime();

  StreamingExperimentResult result;
  result.days = config.campus.days;
  if (spill) result.spill.codec = trace::SpillCodecName(options.spill_codec);
  std::mutex error_mutex;
  auto record_error = [&](std::string message) {
    const std::scoped_lock lock(error_mutex);
    result.errors.push_back(std::move(message));
  };
  std::mutex spill_mutex;

  if (spill) {
    std::error_code ec;
    std::filesystem::create_directories(options.spill_dir, ec);
    if (ec) {
      result.errors.push_back("cannot create spill dir: " +
                              options.spill_dir);
      return result;
    }
  }

  std::vector<detail::LabCheckpoint> checkpoints(lab_count);
  std::vector<char> resumed(lab_count, 0);
  if (options.resume && spill) {
    for (std::size_t lab = 0; lab < lab_count; ++lab) {
      detail::LabCheckpoint cp;
      if (!detail::LoadSidecar(detail::SidecarPath(options.spill_dir, lab),
                               fingerprint, lab, cp)) {
        continue;
      }
      auto reader = trace::SegmentReader::Open(
          detail::SegmentPath(options.spill_dir, lab));
      if (!reader.ok() || reader.value().machine_count() != machine_count) {
        continue;
      }
      checkpoints[lab] = cp;
      resumed[lab] = 1;
      ++result.labs_resumed;
    }
  }

  const std::size_t workers = std::min(
      std::max<std::size_t>(1, lab_count),
      std::max<std::size_t>(1, config.shards > 0
                                   ? static_cast<std::size_t>(config.shards)
                                   : util::DefaultWorkerCount()));
  const std::vector<LabShard> shards =
      PartitionLabsByMachines(fleet, workers);
  std::vector<std::size_t> shard_of_lab(lab_count, 0);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (std::size_t lab = shards[s].lab_begin; lab < shards[s].lab_end;
         ++lab) {
      shard_of_lab[lab] = s;
    }
  }
  std::size_t live_labs = 0;
  for (std::size_t lab = 0; lab < lab_count; ++lab) {
    if (!resumed[lab]) ++live_labs;
  }

  const util::SimTime period =
      config.collector.period > 0 ? config.collector.period : horizon;
  const util::SimTime window_span = std::max<util::SimTime>(
      period,
      static_cast<util::SimTime>(
          std::max<std::size_t>(1, options.window_iterations)) *
          period);

  util::log::Info(
      "pipelining " + std::to_string(config.campus.days) +
      "-day campaign over " + std::to_string(machine_count) + " machines (" +
      std::to_string(shards.size()) + " shards, window " +
      std::to_string(options.window_iterations) + " iterations, ring " +
      std::to_string(options.ring_capacity) + " blocks" +
      (spill ? ", spill to " + options.spill_dir : "") +
      (result.labs_resumed
           ? ", " + std::to_string(result.labs_resumed) + " labs resumed"
           : "") +
      ")");

  // Fold configuration needs the fleet summaries, so fill them up front.
  std::vector<analysis::LabKey> keys = detail::FillFleetSummaries(result, fleet);
  analysis::StreamingAnalysisConfig fold_config;
  fold_config.machine_count = machine_count;
  fold_config.perf_index = result.perf_index;
  fold_config.labs = std::move(keys);
  fold_config.experiment_days = config.campus.days;
  analysis::StreamingAnalysis fold(std::move(fold_config));

  std::unique_ptr<analysis::AnomalyDetector> detector;
  if (options.anomaly_threshold > 0.0) {
    analysis::AnomalyOptions anomaly_options;
    anomaly_options.threshold = options.anomaly_threshold;
    anomaly_options.min_samples = options.anomaly_min_samples;
    detector = std::make_unique<analysis::AnomalyDetector>(
        machine_count, anomaly_options, options.anomaly_writer);
    fold.AttachAnomalyDetector(detector.get());
  }

  // Pipeline plumbing. Declared before the worker threads (which capture
  // everything by reference) and destroyed after them.
  util::StagingRing<StagedBlock> collect_ring(options.ring_capacity);
  util::StagingRing<trace::TraceBlock> fold_ring(
      std::max<std::size_t>(1, options.ring_capacity));
  std::vector<std::unique_ptr<BlockPool>> shard_pools;
  shard_pools.reserve(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shard_pools.push_back(std::make_unique<BlockPool>());
  }
  util::RecyclingPool<trace::TraceBlock> merged_pool;

  std::vector<std::unique_ptr<LabRun>> runs(lab_count);
  std::vector<char> lab_failed(lab_count, 0);
  std::atomic<bool> any_failed{false};
  std::vector<double> shard_busy_s(shards.size(), 0.0);

  // Merge-stage outputs, written by the merge thread before it closes the
  // fold ring (the ring's mutex orders them for the fold thread) and read
  // by the main thread after the joins.
  std::vector<trace::IterationInfo> merged_iterations;
  std::uint64_t merged_samples = 0;
  std::uint64_t merged_blocks = 0;
  std::size_t merge_lag_peak = 0;
  bool merge_clean = false;

  // Fold-stage outputs, read by the main thread after the joins.
  std::uint64_t stream_hash = trace::kSampleStreamHashSeed;
  analysis::StreamingAnalysisResult analysis_result;
  trace::TraceStore summary_store;
  bool fold_finished = false;

  const std::size_t sort_workers_max = std::max<std::size_t>(
      1, options.merge_sort_workers > 0
             ? options.merge_sort_workers
             : std::min<std::size_t>(4, util::DefaultWorkerCount()));

  const auto pipe_t0 = Clock::now();

  std::jthread merge_thread([&] {
    trace::MergeFrontier frontier(lab_count, machine_count,
                                  options.block_samples);
    const auto emit = [&](trace::TraceBlock& sealed) {
      trace::TraceBlock out = merged_pool.Acquire();
      std::swap(out, sealed);
      fold_ring.Push(std::move(out));  // false only when cancelled
    };
    const auto recycle = [&](std::size_t part,
                             std::unique_ptr<trace::TraceBlock> block) {
      block->Clear();
      shard_pools[shard_of_lab[part]]->Release(std::move(block));
    };
    StagedBlock item;
    for (;;) {
      bool got = false;
      {
        obs::prof::PhaseScope prof_stage(obs::prof::Phase::kStage);
        got = collect_ring.Pop(item);
      }
      if (!got) break;
      if (item.final_block) {
        frontier.FinishPart(item.lab);
      } else {
        frontier.Append(item.lab, std::move(item.block));
      }
      merge_lag_peak = std::max(merge_lag_peak, frontier.buffered_blocks());
      // Escalate to parallel per-front sorts when the ring backs up —
      // output-invariant, it only changes who sorts which ready front.
      const std::size_t sort_workers =
          collect_ring.size() * 2 >= collect_ring.capacity()
              ? sort_workers_max
              : 1;
      obs::prof::PhaseScope prof_merge(obs::prof::Phase::kMerge);
      frontier.Advance(emit, recycle, sort_workers);
    }
    if (!collect_ring.cancelled()) {
      if (!frontier.finished()) {
        obs::prof::PhaseScope prof_merge(obs::prof::Phase::kMerge);
        frontier.Advance(emit, recycle, 1);
      }
      if (frontier.finished()) {
        merged_iterations = frontier.TakeIterations();
        merged_samples = frontier.samples();
        merged_blocks = frontier.blocks();
        merge_clean = true;
      } else {
        record_error("pipelined merge ended with incomplete lab streams");
      }
    }
    fold_ring.Close();
  });

  std::jthread fold_thread([&] {
    stream_hash =
        fold.ConsumeRing(fold_ring, &merged_pool, trace::kSampleStreamHashSeed);
    // merge_clean was written before fold_ring.Close(), which happens-
    // before ConsumeRing's final (false) Pop.
    if (!merge_clean || fold_ring.cancelled()) return;
    summary_store = trace::TraceStore(machine_count);
    for (const trace::IterationInfo& info : merged_iterations) {
      summary_store.AppendIteration(info);
    }
    analysis_result = fold.Finish(summary_store);
    fold_finished = true;
  });

  // Resumed labs replay their spilled segments into the ring from a
  // dedicated reader thread, concurrent with live simulation.
  std::jthread replay_thread;
  if (result.labs_resumed > 0) {
    replay_thread = std::jthread([&] {
      obs::prof::PhaseScope prof_stage(obs::prof::Phase::kStage);
      for (std::size_t lab = 0; lab < lab_count; ++lab) {
        if (!resumed[lab]) continue;
        auto opened = trace::SegmentReader::Open(
            detail::SegmentPath(options.spill_dir, lab));
        if (!opened.ok()) {
          record_error(opened.error());
          any_failed.store(true);
          continue;
        }
        trace::SegmentReader reader = std::move(opened).value();
        BlockPool& pool = *shard_pools[shard_of_lab[lab]];
        while (const trace::TraceBlock* next = reader.Next()) {
          std::unique_ptr<trace::TraceBlock> block = pool.Acquire();
          if (!block) block = std::make_unique<trace::TraceBlock>();
          *block = *next;
          StagedBlock item;
          item.lab = lab;
          item.block = std::move(block);
          if (!collect_ring.Push(std::move(item))) return;  // cancelled
        }
        if (reader.failed()) {
          record_error(reader.error());
          any_failed.store(true);
          continue;
        }
        {
          const std::scoped_lock lock(spill_mutex);
          detail::AccumulateSpillDecode(result.spill, reader.codec_stats());
        }
        StagedBlock fin;
        fin.lab = lab;
        fin.final_block = true;
        if (!collect_ring.Push(std::move(fin))) return;
      }
    });
  }

  // Unwind safety: cancelling both rings wakes every parked thread, so the
  // jthread destructors above can always join. Declared after the threads
  // so it runs first during stack unwinding; on the normal path both rings
  // are already closed and drained by the time it fires.
  struct CancelGuard {
    util::StagingRing<StagedBlock>* collect;
    util::StagingRing<trace::TraceBlock>* fold;
    ~CancelGuard() {
      collect->Cancel();
      fold->Cancel();
    }
  } cancel_guard{&collect_ring, &fold_ring};

  // ---- Producer side: lockstep windows over the shard groups. ----
  {
    obs::Span collect_span("experiment.pipeline_collect");
    collect_span.SetSimRange(0, horizon);
    auto run_window = [&](std::size_t s, util::SimTime until) {
      const auto t0 = Clock::now();
      obs::prof::ShardScope prof_shard(static_cast<std::uint32_t>(s));
      obs::prof::PhaseScope prof_collect(obs::prof::Phase::kCollect);
      for (std::size_t lab = shards[s].lab_begin; lab < shards[s].lab_end;
           ++lab) {
        if (resumed[lab] || lab_failed[lab]) continue;
        if (!runs[lab]) {
          const winsim::LabInfo& info = fleet.labs()[lab];
          std::unique_ptr<trace::SegmentWriter> writer;
          if (spill) {
            auto opened = trace::SegmentWriter::Open(
                detail::SegmentPath(options.spill_dir, lab), machine_count,
                options.spill_codec);
            if (!opened.ok()) {
              record_error(opened.error());
              lab_failed[lab] = 1;
              any_failed.store(true);
              continue;
            }
            writer = std::make_unique<trace::SegmentWriter>(
                std::move(opened).value());
          }
          ddc::CoordinatorConfig collector = config.collector;
          collector.structured_fast_path = config.structured_fast_path;
          collector.first_machine = info.first;
          collector.machine_count = info.count;
          collector.aligned_schedule = true;
          collector.seed = util::DeriveSeed(
              config.collector.seed, util::seed_stream::kCollector, lab);
          faultsim::FaultPlan plan = config.fault_plan;
          plan.seed = util::DeriveSeed(config.fault_plan.seed,
                                       util::seed_stream::kFaults, lab);
          // A window seals at most window_iterations iterations (plus the
          // budget-crossing one), so the working store never needs the
          // full block budget for short windows.
          const std::size_t reserve =
              std::min(options.block_samples,
                       (std::max<std::size_t>(1, options.window_iterations) +
                        1) *
                           info.count) +
              info.count;
          runs[lab] = std::make_unique<LabRun>(
              fleet, config.campus, profile, lab, machine_count, reserve,
              collector, plan, std::move(writer), options.block_samples,
              collect_ring, *shard_pools[s]);
          runs[lab]->coordinator().Begin(0);
        }
        LabRun& run = *runs[lab];
        run.coordinator().StepUntil(until);
        run.sink().SealPending();
        if (!run.sink().error().empty()) {
          record_error(run.sink().error());
          lab_failed[lab] = 1;
          any_failed.store(true);
        }
      }
      shard_busy_s[s] += SecondsSince(t0);
    };

    if (live_labs > 0) {
      for (util::SimTime window = 0; window < horizon;
           window += window_span) {
        if (any_failed.load()) break;
        const util::SimTime until =
            std::min<util::SimTime>(horizon, window + window_span);
        util::ParallelFor(
            shards.size(), [&](std::size_t s) { run_window(s, until); },
            shards.size());
      }
    }

    // Per-lab finalisation: run stats, trailing seal, checkpoint sidecar,
    // end-of-stream marker.
    if (live_labs > 0 && !any_failed.load()) {
      auto finish_shard = [&](std::size_t s) {
        const auto t0 = Clock::now();
        obs::prof::ShardScope prof_shard(static_cast<std::uint32_t>(s));
        obs::prof::PhaseScope prof_collect(obs::prof::Phase::kCollect);
        for (std::size_t lab = shards[s].lab_begin; lab < shards[s].lab_end;
             ++lab) {
          if (resumed[lab] || lab_failed[lab] || !runs[lab]) continue;
          LabRun& run = *runs[lab];
          const ddc::RunStats stats = run.coordinator().Finish();
          run.driver().FinishAt(horizon);
          run.sink().SealPending();
          if (!run.sink().error().empty()) {
            record_error(run.sink().error());
            lab_failed[lab] = 1;
            any_failed.store(true);
            continue;
          }

          detail::LabCheckpoint& cp = checkpoints[lab];
          cp.stats.attempts = stats.attempts;
          cp.stats.successes = stats.successes;
          cp.stats.timeouts = stats.timeouts;
          cp.stats.errors = stats.errors;
          cp.stats.missing = stats.missing;
          cp.stats.corrupt = stats.corrupt;
          cp.stats.recovered_after_retry = stats.recovered_after_retry;
          cp.stats.retry_attempts = stats.retry_attempts;
          cp.stats.retried_collections = stats.retried_collections;
          cp.stats.faults_injected = stats.faults_injected;
          cp.truth = run.driver().ground_truth();
          cp.parse_failures = run.sink().inner().parse_failures();
          cp.crosscheck_mismatches =
              run.sink().inner().crosscheck_mismatches();
          cp.blocks = run.sink().blocks_sealed();
          cp.codec = options.spill_codec;

          if (spill) {
            if (auto finished = run.writer()->Finish(); !finished.ok()) {
              record_error(finished.error());
              lab_failed[lab] = 1;
              any_failed.store(true);
              continue;
            }
            // Encoding itself ran inside PipelineSink::Seal on this shard
            // worker — compression never touches the merge thread.
            {
              const std::scoped_lock lock(spill_mutex);
              detail::AccumulateSpillEncode(result.spill,
                                            run.writer()->codec_stats(),
                                            run.writer()->bytes_written());
            }
            if (!detail::WriteSidecar(
                    detail::SidecarPath(options.spill_dir, lab), fingerprint,
                    lab, cp)) {
              util::log::Warn("checkpoint sidecar write failed for lab " +
                              std::to_string(lab));
            }
          }
          run.sink().PublishFinal();
        }
        shard_busy_s[s] += SecondsSince(t0);
      };
      util::ParallelFor(shards.size(), finish_shard, shards.size());
    }
  }

  // ---- Shutdown: end (or abort) the streams, join the stages. ----
  if (any_failed.load()) collect_ring.Cancel();
  if (replay_thread.joinable()) replay_thread.join();
  if (any_failed.load()) {
    collect_ring.Cancel();
  } else {
    collect_ring.Close();
  }
  merge_thread.join();
  fold_thread.join();
  const double pipeline_wall_s = SecondsSince(pipe_t0);

  {
    const std::scoped_lock lock(error_mutex);
    if (!result.errors.empty()) return result;
  }
  if (!merge_clean || !fold_finished) {
    result.errors.push_back("pipelined run aborted before completion");
    return result;
  }

  // ---- Result assembly (serial tail). ----
  for (const detail::LabCheckpoint& cp : checkpoints) {
    detail::AccumulateCheckpoint(result, cp);
  }
  if (result.crosscheck_mismatches != 0) {
    util::log::Warn(std::to_string(result.crosscheck_mismatches) +
                    " structured/text cross-check mismatches — the fast-path "
                    "codec diverged from the wire format");
  }

  result.summary = std::move(summary_store);
  result.samples = merged_samples;
  result.merged_blocks = merged_blocks;
  result.stream_hash = stream_hash;
  detail::ComputeIterationAggregates(result);
  result.analysis = std::move(analysis_result);
  if (detector) {
    result.anomalies = detector->anomalies();
    result.anomaly_observations = detector->observations();
  }
  detail::PublishSpillGauges(result.spill);

  // ---- Pipeline health: result struct + registry gauges. ----
  const util::StagingRingStats ring_stats = collect_ring.stats();
  PipelineStats& pipe = result.pipeline;
  pipe.staged_blocks = ring_stats.pushed;
  pipe.ring_push_stalls = ring_stats.push_stalls;
  pipe.ring_pop_stalls = ring_stats.pop_stalls;
  pipe.ring_push_wait_s =
      static_cast<double>(ring_stats.push_wait_ns) * 1e-9;
  pipe.ring_pop_wait_s = static_cast<double>(ring_stats.pop_wait_ns) * 1e-9;
  pipe.ring_peak_occupancy = ring_stats.peak_occupancy;
  pipe.ring_capacity = ring_stats.capacity;
  pipe.merge_lag_peak_blocks = merge_lag_peak;
  {
    util::RecyclingPool<trace::TraceBlock>::Stats merged_stats =
        merged_pool.stats();
    pipe.arena_acquired = merged_stats.acquired;
    pipe.arena_reused = merged_stats.reused;
    for (const auto& pool : shard_pools) {
      const BlockPool::Stats stats = pool->stats();
      pipe.arena_acquired += stats.acquired;
      pipe.arena_reused += stats.reused;
    }
    pipe.arena_reuse_ratio =
        pipe.arena_acquired ? static_cast<double>(pipe.arena_reused) /
                                  static_cast<double>(pipe.arena_acquired)
                            : 0.0;
  }
  pipe.wall_s = SecondsSince(run_t0);
  pipe.pipeline_wall_s = std::min(pipeline_wall_s, pipe.wall_s);
  pipe.serial_fraction =
      pipe.wall_s > 0.0
          ? std::max(0.0, pipe.wall_s - pipe.pipeline_wall_s) / pipe.wall_s
          : 0.0;

  obs::Registry& registry = obs::DefaultRegistry();
  registry
      .GetGauge("labmon_pipeline_ring_occupancy_peak",
                "Peak staging-ring occupancy (blocks) of the last pipelined "
                "run.")
      .Set(static_cast<double>(pipe.ring_peak_occupancy));
  registry
      .GetGauge("labmon_pipeline_ring_push_stall_seconds_total",
                "Producer wall time spent parked on a full staging ring "
                "during the last pipelined run.")
      .Set(pipe.ring_push_wait_s);
  registry
      .GetGauge("labmon_pipeline_ring_pop_stall_seconds_total",
                "Merge wall time spent parked on an empty staging ring "
                "during the last pipelined run.")
      .Set(pipe.ring_pop_wait_s);
  registry
      .GetGauge("labmon_pipeline_merge_lag_blocks_peak",
                "Peak input blocks buffered in the merge frontier (merge "
                "lag behind collection) of the last pipelined run.")
      .Set(static_cast<double>(pipe.merge_lag_peak_blocks));
  registry
      .GetGauge("labmon_pipeline_arena_reuse_ratio",
                "Fraction of block acquisitions served from recycling "
                "pools in the last pipelined run.")
      .Set(pipe.arena_reuse_ratio);
  registry
      .GetGauge("labmon_pipeline_serial_fraction",
                "Share of the last pipelined run's wall time outside the "
                "overlapped collect/merge/fold region.")
      .Set(pipe.serial_fraction);
  registry
      .GetGauge("labmon_prof_critical_path_fraction",
                "Serial (non-sharded) share of the last experiment run's "
                "wall time: 0 = fully parallel, 1 = fully serial.")
      .Set(pipe.serial_fraction);
  {
    double max_busy = 0.0;
    double sum_busy = 0.0;
    for (const double busy : shard_busy_s) {
      max_busy = std::max(max_busy, busy);
      sum_busy += busy;
    }
    const double mean_busy =
        shard_busy_s.empty()
            ? 0.0
            : sum_busy / static_cast<double>(shard_busy_s.size());
    registry
        .GetGauge("labmon_experiment_shard_imbalance_ratio",
                  "Max shard wall time / mean shard wall time of the last "
                  "sharded run (1.0 = perfectly balanced).")
        .Set(mean_busy > 0.0 ? max_busy / mean_busy : 1.0);
  }

  util::log::Info(
      "pipelined " + std::to_string(result.samples) + " samples in " +
      std::to_string(result.merged_blocks) + " merged blocks over " +
      std::to_string(result.run_stats.iterations) + " iterations (" +
      std::to_string(pipe.staged_blocks) + " staged blocks, serial fraction " +
      std::to_string(pipe.serial_fraction) + ")");
  return result;
}

}  // namespace labmon::core
