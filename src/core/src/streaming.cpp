#include "labmon/core/streaming.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "labmon/core/snapshot.hpp"
#include "labmon/ddc/w32_probe.hpp"
#include "labmon/faultsim/fault_injector.hpp"
#include "labmon/obs/prof.hpp"
#include "labmon/obs/registry.hpp"
#include "labmon/obs/span.hpp"
#include "labmon/trace/segment.hpp"
#include "labmon/trace/sink.hpp"
#include "labmon/trace/stream_merge.hpp"
#include "labmon/util/log.hpp"
#include "labmon/util/parallel.hpp"
#include "labmon/winsim/paper_specs.hpp"
#include "labmon/workload/profile.hpp"

namespace labmon::core {

namespace {

/// What one lab's collection contributes to the campaign totals — exactly
/// the fields Experiment::Run sums per shard. This is also the sidecar
/// payload: a resumed lab restores these without re-simulating.
struct LabCheckpoint {
  ddc::RunStats stats;
  workload::GroundTruth truth;
  std::uint64_t parse_failures = 0;
  std::uint64_t crosscheck_mismatches = 0;
  std::uint64_t blocks = 0;
};

constexpr char kSidecarMagic[] = "LMSGCK";
constexpr std::uint64_t kSidecarVersion = 1;

std::string LabFileStem(const std::string& dir, std::size_t lab) {
  char name[32];
  std::snprintf(name, sizeof(name), "lab%04zu", lab);
  return dir + "/" + name;
}

std::string SegmentPath(const std::string& dir, std::size_t lab) {
  return LabFileStem(dir, lab) + ".lmsg";
}

std::string SidecarPath(const std::string& dir, std::size_t lab) {
  return LabFileStem(dir, lab) + ".ck";
}

/// The sidecar is the checkpoint commit point: written (atomically, via
/// temp file + rename) only after the lab's segment is complete, so a
/// crash mid-lab leaves no sidecar and the lab is simply re-simulated.
bool WriteSidecar(const std::string& path, std::uint64_t fingerprint,
                  std::size_t lab, const LabCheckpoint& cp) {
  std::ostringstream out;
  out << kSidecarMagic << ' ' << kSidecarVersion << '\n';
  out << "fingerprint " << fingerprint << '\n';
  out << "lab " << lab << '\n';
  out << "blocks " << cp.blocks << '\n';
  out << "parse_failures " << cp.parse_failures << '\n';
  out << "crosscheck_mismatches " << cp.crosscheck_mismatches << '\n';
  const ddc::RunStats& s = cp.stats;
  out << "stats " << s.attempts << ' ' << s.successes << ' ' << s.timeouts
      << ' ' << s.errors << ' ' << s.missing << ' ' << s.corrupt << ' '
      << s.recovered_after_retry << ' ' << s.retry_attempts << ' '
      << s.retried_collections << ' ' << s.faults_injected << '\n';
  const workload::GroundTruth& t = cp.truth;
  out << "truth " << t.boots << ' ' << t.shutdowns << ' ' << t.reboots << ' '
      << t.short_cycles << ' ' << t.class_logins << ' ' << t.walkin_logins
      << ' ' << t.forgotten_sessions << ' ' << t.lost_arrivals << ' '
      << t.sweep_shutdowns << '\n';

  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return false;
    const std::string bytes = out.str();
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    file.flush();
    if (!file) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// Parses and validates a sidecar; false on any mismatch (wrong magic or
/// version, foreign fingerprint, wrong lab index, truncation).
bool LoadSidecar(const std::string& path, std::uint64_t fingerprint,
                 std::size_t lab, LabCheckpoint& cp) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  std::string magic;
  std::uint64_t version = 0;
  std::uint64_t stored_fingerprint = 0;
  std::uint64_t stored_lab = 0;
  std::string key;
  if (!(file >> magic >> version) || magic != kSidecarMagic ||
      version != kSidecarVersion) {
    return false;
  }
  if (!(file >> key >> stored_fingerprint) || key != "fingerprint" ||
      stored_fingerprint != fingerprint) {
    return false;
  }
  if (!(file >> key >> stored_lab) || key != "lab" || stored_lab != lab) {
    return false;
  }
  if (!(file >> key >> cp.blocks) || key != "blocks") return false;
  if (!(file >> key >> cp.parse_failures) || key != "parse_failures") {
    return false;
  }
  if (!(file >> key >> cp.crosscheck_mismatches) ||
      key != "crosscheck_mismatches") {
    return false;
  }
  ddc::RunStats& s = cp.stats;
  if (!(file >> key >> s.attempts >> s.successes >> s.timeouts >> s.errors >>
        s.missing >> s.corrupt >> s.recovered_after_retry >>
        s.retry_attempts >> s.retried_collections >> s.faults_injected) ||
      key != "stats") {
    return false;
  }
  workload::GroundTruth& t = cp.truth;
  if (!(file >> key >> t.boots >> t.shutdowns >> t.reboots >>
        t.short_cycles >> t.class_logins >> t.walkin_logins >>
        t.forgotten_sessions >> t.lost_arrivals >> t.sweep_shutdowns) ||
      key != "truth") {
    return false;
  }
  return true;
}

/// Wraps the post-collect sink: samples append to a small working store,
/// and whenever an iteration completes with the store at or past the
/// block budget the store is sealed — spilled as one segment block or
/// moved into the in-memory block list — and cleared. Blocks are
/// therefore always iteration-aligned and self-contained (block-local
/// user table + the iteration rows they cover).
class SpillingSink final : public ddc::SampleSink {
 public:
  SpillingSink(trace::TraceStore& store, std::size_t block_samples,
               trace::SegmentWriter* writer,
               std::vector<trace::TraceBlock>* blocks)
      : inner_(store),
        store_(&store),
        block_samples_(std::max<std::size_t>(1, block_samples)),
        writer_(writer),
        blocks_(blocks) {}

  ddc::SampleVerdict OnSample(const ddc::CollectedSample& sample) override {
    return inner_.OnSample(sample);
  }

  void OnIterationEnd(std::uint64_t iteration, util::SimTime start_time,
                      util::SimTime end_time) override {
    inner_.OnIterationEnd(iteration, start_time, end_time);
    if (store_->size() >= block_samples_) Seal();
  }

  /// Seals the trailing partial block; call once after the run.
  void Flush() {
    if (store_->size() > 0 || !store_->iterations().empty()) Seal();
  }

  [[nodiscard]] std::uint64_t blocks_sealed() const noexcept {
    return blocks_sealed_;
  }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const trace::TraceStoreSink& inner() const noexcept {
    return inner_;
  }

 private:
  void Seal() {
    if (writer_ != nullptr) {
      if (auto appended = writer_->Append(*store_);
          !appended.ok() && error_.empty()) {
        error_ = appended.error();
      }
    } else {
      trace::TraceBlock block;
      block.AssignFrom(*store_);
      blocks_->push_back(std::move(block));
    }
    ++blocks_sealed_;
    store_->ClearSamples();
  }

  trace::TraceStoreSink inner_;
  trace::TraceStore* store_;
  std::size_t block_samples_;
  trace::SegmentWriter* writer_;
  std::vector<trace::TraceBlock>* blocks_;
  std::uint64_t blocks_sealed_ = 0;
  std::string error_;
};

}  // namespace

StreamingExperimentResult StreamingExperiment::Run(
    const ExperimentConfig& config, const StreamingOptions& options) {
  obs::DefaultRegistry()
      .GetCounter("labmon_streaming_runs_total",
                  "Streaming campaign runs executed.")
      .Increment();
  obs::Span run_span("experiment.stream");
  run_span.SetSimRange(0, config.campus.EndTime());

  util::Rng rng(config.campus.seed);
  winsim::Fleet fleet = [&] {
    obs::Span build_span("experiment.build_fleet");
    obs::prof::PhaseScope prof_scope(obs::prof::Phase::kBuildFleet);
    return winsim::MakePaperFleet(rng, config.prior_life,
                                  config.campus.scale_labs);
  }();
  const workload::CampusProfile profile = [&] {
    obs::prof::PhaseScope prof_scope(obs::prof::Phase::kBuildFleet);
    return workload::CampusProfile::Build(fleet, config.campus);
  }();

  const std::size_t lab_count = fleet.lab_count();
  const std::size_t machine_count = fleet.size();
  const bool spill = !options.spill_dir.empty();
  const std::uint64_t fingerprint = FingerprintConfig(config);

  StreamingExperimentResult result;
  result.days = config.campus.days;
  std::mutex error_mutex;
  auto record_error = [&](std::string message) {
    const std::scoped_lock lock(error_mutex);
    result.errors.push_back(std::move(message));
  };

  if (spill) {
    std::error_code ec;
    std::filesystem::create_directories(options.spill_dir, ec);
    if (ec) {
      result.errors.push_back("cannot create spill dir: " +
                              options.spill_dir);
      return result;
    }
  }

  std::vector<LabCheckpoint> checkpoints(lab_count);
  std::vector<char> resumed(lab_count, 0);
  // In-memory mode keeps each lab's sealed blocks until the merge.
  std::vector<std::vector<trace::TraceBlock>> lab_blocks(lab_count);

  if (options.resume && spill) {
    for (std::size_t lab = 0; lab < lab_count; ++lab) {
      LabCheckpoint cp;
      if (!LoadSidecar(SidecarPath(options.spill_dir, lab), fingerprint, lab,
                       cp)) {
        continue;
      }
      // The sidecar is only written after a complete segment, but guard
      // against the segment being deleted or clobbered since.
      auto reader = trace::SegmentReader::Open(
          SegmentPath(options.spill_dir, lab));
      if (!reader.ok() || reader.value().machine_count() != machine_count) {
        continue;
      }
      checkpoints[lab] = cp;
      resumed[lab] = 1;
      ++result.labs_resumed;
    }
  }

  const std::size_t workers = std::min(
      lab_count, std::max<std::size_t>(
                     1, config.shards > 0
                            ? static_cast<std::size_t>(config.shards)
                            : util::DefaultWorkerCount()));

  util::log::Info("streaming " + std::to_string(config.campus.days) +
                  "-day campaign over " + std::to_string(machine_count) +
                  " machines (" + std::to_string(workers) + " workers, " +
                  (spill ? "spill to " + options.spill_dir
                         : std::string("in-memory blocks")) +
                  (result.labs_resumed
                       ? ", " + std::to_string(result.labs_resumed) +
                             " labs resumed"
                       : "") +
                  ")");

  {
    obs::Span collect_span("experiment.stream_collect");
    collect_span.SetSimRange(0, config.campus.EndTime());
    auto run_lab = [&](std::size_t lab) {
      if (resumed[lab]) return;
      obs::prof::ShardScope prof_shard(static_cast<std::uint32_t>(lab));
      obs::prof::PhaseScope prof_collect(obs::prof::Phase::kCollect);
      const winsim::LabInfo& info = fleet.labs()[lab];
      workload::WorkloadDriver driver(fleet, config.campus, profile, lab,
                                      lab + 1);
      trace::TraceStore store;
      store.set_machine_count(machine_count);
      // An iteration appends at most one sample per lab machine, and the
      // store is cleared at the first iteration end past the budget.
      store.Reserve(options.block_samples + info.count);

      std::unique_ptr<trace::SegmentWriter> writer;
      if (spill) {
        auto opened = trace::SegmentWriter::Open(
            SegmentPath(options.spill_dir, lab), machine_count);
        if (!opened.ok()) {
          record_error(opened.error());
          return;
        }
        writer = std::make_unique<trace::SegmentWriter>(
            std::move(opened).value());
      }
      SpillingSink sink(store, options.block_samples, writer.get(),
                       &lab_blocks[lab]);

      ddc::W32Probe probe;
      ddc::CoordinatorConfig collector = config.collector;
      collector.structured_fast_path = config.structured_fast_path;
      collector.first_machine = info.first;
      collector.machine_count = info.count;
      collector.aligned_schedule = true;
      collector.seed = util::DeriveSeed(config.collector.seed,
                                        util::seed_stream::kCollector, lab);
      faultsim::FaultPlan plan = config.fault_plan;
      plan.seed = util::DeriveSeed(config.fault_plan.seed,
                                   util::seed_stream::kFaults, lab);
      faultsim::FaultInjector injector(plan, collector.metrics);
      if (injector.active()) {
        injector.BindFleet(fleet);
        collector.faults = &injector;
      }
      auto advance = [&driver](util::SimTime t) {
        obs::prof::SampledPhaseScope prof_scope(obs::prof::Phase::kSimulate);
        driver.AdvanceTo(t);
      };
      ddc::Coordinator coordinator(fleet, probe, collector, sink, advance);
      const ddc::RunStats stats = coordinator.Run(0, config.campus.EndTime());
      driver.FinishAt(config.campus.EndTime());
      sink.Flush();
      if (!sink.error().empty()) {
        record_error(sink.error());
        return;
      }

      LabCheckpoint& cp = checkpoints[lab];
      cp.stats.attempts = stats.attempts;
      cp.stats.successes = stats.successes;
      cp.stats.timeouts = stats.timeouts;
      cp.stats.errors = stats.errors;
      cp.stats.missing = stats.missing;
      cp.stats.corrupt = stats.corrupt;
      cp.stats.recovered_after_retry = stats.recovered_after_retry;
      cp.stats.retry_attempts = stats.retry_attempts;
      cp.stats.retried_collections = stats.retried_collections;
      cp.stats.faults_injected = stats.faults_injected;
      cp.truth = driver.ground_truth();
      cp.parse_failures = sink.inner().parse_failures();
      cp.crosscheck_mismatches = sink.inner().crosscheck_mismatches();
      cp.blocks = sink.blocks_sealed();

      if (spill) {
        if (auto finished = writer->Finish(); !finished.ok()) {
          record_error(finished.error());
          return;
        }
        if (!WriteSidecar(SidecarPath(options.spill_dir, lab), fingerprint,
                          lab, cp)) {
          // A failed sidecar only costs a re-simulation on resume.
          util::log::Warn("checkpoint sidecar write failed for lab " +
                          std::to_string(lab));
        }
      }
    };
    util::ParallelFor(lab_count, run_lab, workers);
  }
  if (!result.errors.empty()) return result;

  for (const LabCheckpoint& cp : checkpoints) {
    result.run_stats.attempts += cp.stats.attempts;
    result.run_stats.successes += cp.stats.successes;
    result.run_stats.timeouts += cp.stats.timeouts;
    result.run_stats.errors += cp.stats.errors;
    result.run_stats.missing += cp.stats.missing;
    result.run_stats.corrupt += cp.stats.corrupt;
    result.run_stats.recovered_after_retry += cp.stats.recovered_after_retry;
    result.run_stats.retry_attempts += cp.stats.retry_attempts;
    result.run_stats.retried_collections += cp.stats.retried_collections;
    result.run_stats.faults_injected += cp.stats.faults_injected;
    result.ground_truth += cp.truth;
    result.parse_failures += cp.parse_failures;
    result.crosscheck_mismatches += cp.crosscheck_mismatches;
  }
  if (result.crosscheck_mismatches != 0) {
    util::log::Warn(std::to_string(result.crosscheck_mismatches) +
                    " structured/text cross-check mismatches — the fast-path "
                    "codec diverged from the wire format");
  }

  result.hardware = fleet.HardwareTotals();
  result.perf_index.reserve(machine_count);
  for (std::size_t i = 0; i < machine_count; ++i) {
    result.perf_index.push_back(fleet.machine(i).spec().CombinedIndex());
  }
  std::vector<analysis::LabKey> keys;
  for (const auto& lab : fleet.labs()) {
    const auto& spec = fleet.machine(lab.first).spec();
    LabSummary summary;
    summary.name = lab.name;
    summary.machine_count = lab.count;
    summary.cpu_model = spec.cpu_model;
    summary.cpu_ghz = spec.cpu_ghz;
    summary.ram_mb = spec.ram_mb;
    summary.disk_gb = spec.disk_gb;
    summary.int_index = spec.int_index;
    summary.fp_index = spec.fp_index;
    result.labs.push_back(std::move(summary));
    keys.push_back(analysis::LabKey{lab.name, lab.first, lab.count});
  }

  // Merge + fold: re-stream every lab, merge iteration-major and fold the
  // merged blocks into the incremental analysis as they seal. The stream
  // hash fingerprints the merged sample sequence for determinism checks.
  analysis::StreamingAnalysisConfig fold_config;
  fold_config.machine_count = machine_count;
  fold_config.perf_index = result.perf_index;
  fold_config.labs = std::move(keys);
  fold_config.experiment_days = config.campus.days;
  analysis::StreamingAnalysis fold(std::move(fold_config));

  std::unique_ptr<analysis::AnomalyDetector> detector;
  if (options.anomaly_threshold > 0.0) {
    analysis::AnomalyOptions anomaly_options;
    anomaly_options.threshold = options.anomaly_threshold;
    anomaly_options.min_samples = options.anomaly_min_samples;
    detector = std::make_unique<analysis::AnomalyDetector>(
        machine_count, anomaly_options, options.anomaly_writer);
    fold.AttachAnomalyDetector(detector.get());
  }

  trace::StreamMergeResult merged;
  std::uint64_t stream_hash = trace::kSampleStreamHashSeed;
  {
    obs::Span merge_span("experiment.stream_merge");
    obs::prof::PhaseScope prof_merge(obs::prof::Phase::kMerge);
    std::vector<trace::SegmentReader> segment_readers;
    std::vector<trace::BlockVectorReader> block_readers;
    std::vector<trace::TraceReader*> parts;
    parts.reserve(lab_count);
    if (spill) {
      segment_readers.reserve(lab_count);
      for (std::size_t lab = 0; lab < lab_count; ++lab) {
        auto opened =
            trace::SegmentReader::Open(SegmentPath(options.spill_dir, lab));
        if (!opened.ok()) {
          record_error(opened.error());
          return result;
        }
        segment_readers.push_back(std::move(opened).value());
      }
      for (auto& reader : segment_readers) parts.push_back(&reader);
    } else {
      block_readers.reserve(lab_count);
      for (std::size_t lab = 0; lab < lab_count; ++lab) {
        block_readers.emplace_back(lab_blocks[lab]);
      }
      for (auto& reader : block_readers) parts.push_back(&reader);
    }

    merged = trace::StreamMergeBlocks(
        parts, machine_count, options.block_samples,
        [&](const trace::TraceBlock& block) {
          stream_hash = trace::HashBlockSamples(stream_hash, block);
          fold.Accept(block);
        });
    for (auto& reader : segment_readers) {
      if (reader.failed()) record_error(reader.error());
    }
    if (!result.errors.empty()) return result;
  }

  result.summary = trace::TraceStore(machine_count);
  for (const trace::IterationInfo& info : merged.iterations) {
    result.summary.AppendIteration(info);
  }
  result.samples = merged.samples;
  result.merged_blocks = merged.blocks;
  result.stream_hash = stream_hash;

  // Iteration aggregates, exactly as Experiment::Run computes them.
  {
    double sum_s = 0.0;
    for (const trace::IterationInfo& it : result.summary.iterations()) {
      const double duration = static_cast<double>(it.end_t - it.start_t);
      sum_s += duration;
      result.run_stats.max_iteration_s =
          std::max(result.run_stats.max_iteration_s, duration);
    }
    const std::size_t n = result.summary.iterations().size();
    result.run_stats.iterations = n;
    result.run_stats.mean_iteration_s =
        n ? sum_s / static_cast<double>(n) : 0.0;
    result.run_stats.total_span_s =
        n ? static_cast<double>(result.summary.iterations().back().end_t)
          : 0.0;
  }

  result.analysis = fold.Finish(result.summary);
  if (detector) {
    result.anomalies = detector->anomalies();
    result.anomaly_observations = detector->observations();
  }

  util::log::Info("streamed " + std::to_string(result.samples) +
                  " samples in " + std::to_string(result.merged_blocks) +
                  " merged blocks over " +
                  std::to_string(result.run_stats.iterations) + " iterations");
  return result;
}

}  // namespace labmon::core
