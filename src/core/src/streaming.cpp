#include "labmon/core/streaming.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <mutex>
#include <utility>

#include "labmon/core/snapshot.hpp"
#include "labmon/ddc/w32_probe.hpp"
#include "labmon/faultsim/fault_injector.hpp"
#include "labmon/obs/prof.hpp"
#include "labmon/obs/registry.hpp"
#include "labmon/obs/span.hpp"
#include "labmon/trace/segment.hpp"
#include "labmon/trace/sink.hpp"
#include "labmon/trace/stream_merge.hpp"
#include "labmon/util/log.hpp"
#include "labmon/util/parallel.hpp"
#include "labmon/winsim/paper_specs.hpp"
#include "labmon/workload/profile.hpp"
#include "streaming_detail.hpp"

namespace labmon::core {

namespace {

using detail::LabCheckpoint;
using detail::LoadSidecar;
using detail::SegmentPath;
using detail::SidecarPath;
using detail::WriteSidecar;

/// Wraps the post-collect sink: samples append to a small working store,
/// and whenever an iteration completes with the store at or past the
/// block budget the store is sealed — spilled as one segment block or
/// moved into the in-memory block list — and cleared. Blocks are
/// therefore always iteration-aligned and self-contained (block-local
/// user table + the iteration rows they cover).
class SpillingSink final : public ddc::SampleSink {
 public:
  SpillingSink(trace::TraceStore& store, std::size_t block_samples,
               trace::SegmentWriter* writer,
               std::vector<trace::TraceBlock>* blocks)
      : inner_(store),
        store_(&store),
        block_samples_(std::max<std::size_t>(1, block_samples)),
        writer_(writer),
        blocks_(blocks) {}

  ddc::SampleVerdict OnSample(const ddc::CollectedSample& sample) override {
    return inner_.OnSample(sample);
  }

  void OnIterationEnd(std::uint64_t iteration, util::SimTime start_time,
                      util::SimTime end_time) override {
    inner_.OnIterationEnd(iteration, start_time, end_time);
    if (store_->size() >= block_samples_) Seal();
  }

  /// Seals the trailing partial block; call once after the run.
  void Flush() {
    if (store_->size() > 0 || !store_->iterations().empty()) Seal();
  }

  [[nodiscard]] std::uint64_t blocks_sealed() const noexcept {
    return blocks_sealed_;
  }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const trace::TraceStoreSink& inner() const noexcept {
    return inner_;
  }

 private:
  void Seal() {
    if (writer_ != nullptr) {
      if (auto appended = writer_->Append(*store_);
          !appended.ok() && error_.empty()) {
        error_ = appended.error();
      }
    } else {
      trace::TraceBlock block;
      block.AssignFrom(*store_);
      blocks_->push_back(std::move(block));
    }
    ++blocks_sealed_;
    store_->ClearSamples();
  }

  trace::TraceStoreSink inner_;
  trace::TraceStore* store_;
  std::size_t block_samples_;
  trace::SegmentWriter* writer_;
  std::vector<trace::TraceBlock>* blocks_;
  std::uint64_t blocks_sealed_ = 0;
  std::string error_;
};

}  // namespace

StreamingExperimentResult StreamingExperiment::Run(
    const ExperimentConfig& config, const StreamingOptions& options) {
  obs::DefaultRegistry()
      .GetCounter("labmon_streaming_runs_total",
                  "Streaming campaign runs executed.")
      .Increment();
  obs::Span run_span("experiment.stream");
  run_span.SetSimRange(0, config.campus.EndTime());

  util::Rng rng(config.campus.seed);
  winsim::Fleet fleet = [&] {
    obs::Span build_span("experiment.build_fleet");
    obs::prof::PhaseScope prof_scope(obs::prof::Phase::kBuildFleet);
    return winsim::MakePaperFleet(rng, config.prior_life,
                                  config.campus.scale_labs);
  }();
  const workload::CampusProfile profile = [&] {
    obs::prof::PhaseScope prof_scope(obs::prof::Phase::kBuildFleet);
    return workload::CampusProfile::Build(fleet, config.campus);
  }();

  const std::size_t lab_count = fleet.lab_count();
  const std::size_t machine_count = fleet.size();
  const bool spill = !options.spill_dir.empty();
  const std::uint64_t fingerprint = FingerprintConfig(config);

  StreamingExperimentResult result;
  result.days = config.campus.days;
  if (spill) result.spill.codec = trace::SpillCodecName(options.spill_codec);
  std::mutex error_mutex;
  auto record_error = [&](std::string message) {
    const std::scoped_lock lock(error_mutex);
    result.errors.push_back(std::move(message));
  };
  std::mutex spill_mutex;

  if (spill) {
    std::error_code ec;
    std::filesystem::create_directories(options.spill_dir, ec);
    if (ec) {
      result.errors.push_back("cannot create spill dir: " +
                              options.spill_dir);
      return result;
    }
  }

  std::vector<LabCheckpoint> checkpoints(lab_count);
  std::vector<char> resumed(lab_count, 0);
  // In-memory mode keeps each lab's sealed blocks until the merge.
  std::vector<std::vector<trace::TraceBlock>> lab_blocks(lab_count);

  if (options.resume && spill) {
    for (std::size_t lab = 0; lab < lab_count; ++lab) {
      LabCheckpoint cp;
      if (!LoadSidecar(SidecarPath(options.spill_dir, lab), fingerprint, lab,
                       cp)) {
        continue;
      }
      // The sidecar is only written after a complete segment, but guard
      // against the segment being deleted or clobbered since.
      auto reader = trace::SegmentReader::Open(
          SegmentPath(options.spill_dir, lab));
      if (!reader.ok() || reader.value().machine_count() != machine_count) {
        continue;
      }
      checkpoints[lab] = cp;
      resumed[lab] = 1;
      ++result.labs_resumed;
    }
  }

  const std::size_t workers = std::min(
      lab_count, std::max<std::size_t>(
                     1, config.shards > 0
                            ? static_cast<std::size_t>(config.shards)
                            : util::DefaultWorkerCount()));

  util::log::Info("streaming " + std::to_string(config.campus.days) +
                  "-day campaign over " + std::to_string(machine_count) +
                  " machines (" + std::to_string(workers) + " workers, " +
                  (spill ? "spill to " + options.spill_dir
                         : std::string("in-memory blocks")) +
                  (result.labs_resumed
                       ? ", " + std::to_string(result.labs_resumed) +
                             " labs resumed"
                       : "") +
                  ")");

  {
    obs::Span collect_span("experiment.stream_collect");
    collect_span.SetSimRange(0, config.campus.EndTime());
    auto run_lab = [&](std::size_t lab) {
      if (resumed[lab]) return;
      obs::prof::ShardScope prof_shard(static_cast<std::uint32_t>(lab));
      obs::prof::PhaseScope prof_collect(obs::prof::Phase::kCollect);
      const winsim::LabInfo& info = fleet.labs()[lab];
      workload::WorkloadDriver driver(fleet, config.campus, profile, lab,
                                      lab + 1);
      trace::TraceStore store;
      store.set_machine_count(machine_count);
      // An iteration appends at most one sample per lab machine, and the
      // store is cleared at the first iteration end past the budget.
      store.Reserve(options.block_samples + info.count);

      std::unique_ptr<trace::SegmentWriter> writer;
      if (spill) {
        auto opened = trace::SegmentWriter::Open(
            SegmentPath(options.spill_dir, lab), machine_count,
            options.spill_codec);
        if (!opened.ok()) {
          record_error(opened.error());
          return;
        }
        writer = std::make_unique<trace::SegmentWriter>(
            std::move(opened).value());
      }
      SpillingSink sink(store, options.block_samples, writer.get(),
                       &lab_blocks[lab]);

      ddc::W32Probe probe;
      ddc::CoordinatorConfig collector = config.collector;
      collector.structured_fast_path = config.structured_fast_path;
      collector.first_machine = info.first;
      collector.machine_count = info.count;
      collector.aligned_schedule = true;
      collector.seed = util::DeriveSeed(config.collector.seed,
                                        util::seed_stream::kCollector, lab);
      faultsim::FaultPlan plan = config.fault_plan;
      plan.seed = util::DeriveSeed(config.fault_plan.seed,
                                   util::seed_stream::kFaults, lab);
      faultsim::FaultInjector injector(plan, collector.metrics);
      if (injector.active()) {
        injector.BindFleet(fleet);
        collector.faults = &injector;
      }
      auto advance = [&driver](util::SimTime t) {
        obs::prof::SampledPhaseScope prof_scope(obs::prof::Phase::kSimulate);
        driver.AdvanceTo(t);
      };
      ddc::Coordinator coordinator(fleet, probe, collector, sink, advance);
      const ddc::RunStats stats = coordinator.Run(0, config.campus.EndTime());
      driver.FinishAt(config.campus.EndTime());
      sink.Flush();
      if (!sink.error().empty()) {
        record_error(sink.error());
        return;
      }

      LabCheckpoint& cp = checkpoints[lab];
      cp.stats.attempts = stats.attempts;
      cp.stats.successes = stats.successes;
      cp.stats.timeouts = stats.timeouts;
      cp.stats.errors = stats.errors;
      cp.stats.missing = stats.missing;
      cp.stats.corrupt = stats.corrupt;
      cp.stats.recovered_after_retry = stats.recovered_after_retry;
      cp.stats.retry_attempts = stats.retry_attempts;
      cp.stats.retried_collections = stats.retried_collections;
      cp.stats.faults_injected = stats.faults_injected;
      cp.truth = driver.ground_truth();
      cp.parse_failures = sink.inner().parse_failures();
      cp.crosscheck_mismatches = sink.inner().crosscheck_mismatches();
      cp.blocks = sink.blocks_sealed();
      cp.codec = options.spill_codec;

      if (spill) {
        if (auto finished = writer->Finish(); !finished.ok()) {
          record_error(finished.error());
          return;
        }
        {
          const std::scoped_lock lock(spill_mutex);
          detail::AccumulateSpillEncode(result.spill, writer->codec_stats(),
                                        writer->bytes_written());
        }
        if (!WriteSidecar(SidecarPath(options.spill_dir, lab), fingerprint,
                          lab, cp)) {
          // A failed sidecar only costs a re-simulation on resume.
          util::log::Warn("checkpoint sidecar write failed for lab " +
                          std::to_string(lab));
        }
      }
    };
    util::ParallelFor(lab_count, run_lab, workers);
  }
  if (!result.errors.empty()) return result;

  for (const LabCheckpoint& cp : checkpoints) {
    detail::AccumulateCheckpoint(result, cp);
  }
  if (result.crosscheck_mismatches != 0) {
    util::log::Warn(std::to_string(result.crosscheck_mismatches) +
                    " structured/text cross-check mismatches — the fast-path "
                    "codec diverged from the wire format");
  }

  std::vector<analysis::LabKey> keys = detail::FillFleetSummaries(result, fleet);

  // Merge + fold: re-stream every lab, merge iteration-major and fold the
  // merged blocks into the incremental analysis as they seal. The stream
  // hash fingerprints the merged sample sequence for determinism checks.
  analysis::StreamingAnalysisConfig fold_config;
  fold_config.machine_count = machine_count;
  fold_config.perf_index = result.perf_index;
  fold_config.labs = std::move(keys);
  fold_config.experiment_days = config.campus.days;
  analysis::StreamingAnalysis fold(std::move(fold_config));

  std::unique_ptr<analysis::AnomalyDetector> detector;
  if (options.anomaly_threshold > 0.0) {
    analysis::AnomalyOptions anomaly_options;
    anomaly_options.threshold = options.anomaly_threshold;
    anomaly_options.min_samples = options.anomaly_min_samples;
    detector = std::make_unique<analysis::AnomalyDetector>(
        machine_count, anomaly_options, options.anomaly_writer);
    fold.AttachAnomalyDetector(detector.get());
  }

  trace::StreamMergeResult merged;
  std::uint64_t stream_hash = trace::kSampleStreamHashSeed;
  {
    obs::Span merge_span("experiment.stream_merge");
    obs::prof::PhaseScope prof_merge(obs::prof::Phase::kMerge);
    std::vector<trace::SegmentReader> segment_readers;
    std::vector<trace::BlockVectorReader> block_readers;
    std::vector<trace::TraceReader*> parts;
    parts.reserve(lab_count);
    if (spill) {
      segment_readers.reserve(lab_count);
      for (std::size_t lab = 0; lab < lab_count; ++lab) {
        auto opened =
            trace::SegmentReader::Open(SegmentPath(options.spill_dir, lab));
        if (!opened.ok()) {
          record_error(opened.error());
          return result;
        }
        segment_readers.push_back(std::move(opened).value());
      }
      for (auto& reader : segment_readers) parts.push_back(&reader);
    } else {
      block_readers.reserve(lab_count);
      for (std::size_t lab = 0; lab < lab_count; ++lab) {
        block_readers.emplace_back(lab_blocks[lab]);
      }
      for (auto& reader : block_readers) parts.push_back(&reader);
    }

    merged = trace::StreamMergeBlocks(
        parts, machine_count, options.block_samples,
        [&](const trace::TraceBlock& block) {
          stream_hash = trace::HashBlockSamples(stream_hash, block);
          fold.Accept(block);
        });
    for (auto& reader : segment_readers) {
      if (reader.failed()) record_error(reader.error());
    }
    if (!result.errors.empty()) return result;
    for (const auto& reader : segment_readers) {
      detail::AccumulateSpillDecode(result.spill, reader.codec_stats());
    }
  }
  detail::PublishSpillGauges(result.spill);

  result.summary = trace::TraceStore(machine_count);
  for (const trace::IterationInfo& info : merged.iterations) {
    result.summary.AppendIteration(info);
  }
  result.samples = merged.samples;
  result.merged_blocks = merged.blocks;
  result.stream_hash = stream_hash;

  detail::ComputeIterationAggregates(result);

  result.analysis = fold.Finish(result.summary);
  if (detector) {
    result.anomalies = detector->anomalies();
    result.anomaly_observations = detector->observations();
  }

  util::log::Info("streamed " + std::to_string(result.samples) +
                  " samples in " + std::to_string(result.merged_blocks) +
                  " merged blocks over " +
                  std::to_string(result.run_stats.iterations) + " iterations");
  return result;
}

}  // namespace labmon::core
