#include "labmon/core/snapshot.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "labmon/trace/binary_io.hpp"
#include "labmon/util/csv.hpp"
#include "labmon/util/varint.hpp"

namespace labmon::core {

namespace {

constexpr char kMagic[] = "LMSS1";
constexpr std::size_t kMagicLen = 5;

// ---------------------------------------------------------------------------
// Config fingerprint: FNV-1a over a canonical field stream. Every
// behaviour-affecting field is mixed in explicit order; adding a config
// field without mixing it here would alias configs, so keep this list in
// sync with workload/config.hpp, CoordinatorConfig and PriorLifeModel.
// ---------------------------------------------------------------------------
class Fingerprinter {
 public:
  void Mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }
  void MixInt(std::int64_t v) noexcept { Mix(static_cast<std::uint64_t>(v)); }
  void MixDouble(double v) noexcept { Mix(std::bit_cast<std::uint64_t>(v)); }
  void MixBool(bool v) noexcept { Mix(v ? 1 : 0); }
  void MixString(const std::string& s) noexcept {
    Mix(s.size());
    for (const char c : s) Mix(static_cast<unsigned char>(c));
  }

  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
};

void MixCampus(Fingerprinter& fp, const workload::CampusConfig& c) {
  fp.MixInt(c.days);
  fp.Mix(c.seed);
  fp.MixInt(c.scale_labs);

  fp.MixInt(c.hours.open_hour);
  fp.MixInt(c.hours.weekday_close_hour);
  fp.MixInt(c.hours.saturday_close_hour);
  fp.MixBool(c.hours.sunday_open);

  fp.MixDouble(c.timetable.weekday_slot_prob);
  fp.MixDouble(c.timetable.saturday_slot_prob);
  fp.MixDouble(c.timetable.popularity_skew);
  fp.MixDouble(c.timetable.class_occupancy);
  fp.MixDouble(c.timetable.keep_walkin_in_class);
  fp.MixDouble(c.timetable.heavy_class_occupancy);
  fp.MixInt(c.timetable.heavy_class_lab);
  fp.MixInt(c.timetable.heavy_class_start_hour);
  fp.MixInt(c.timetable.heavy_class_hours);

  fp.MixDouble(c.arrivals.weekday_peak_per_hour);
  fp.MixDouble(c.arrivals.morning_factor);
  fp.MixDouble(c.arrivals.midday_factor);
  fp.MixDouble(c.arrivals.afternoon_factor);
  fp.MixDouble(c.arrivals.evening_factor);
  fp.MixDouble(c.arrivals.night_factor);
  fp.MixDouble(c.arrivals.saturday_factor);
  fp.MixDouble(c.arrivals.popularity_bias);
  fp.MixBool(c.arrivals.prefer_off_machines);
  fp.MixDouble(c.arrivals.session_minutes_mean);
  fp.MixDouble(c.arrivals.session_minutes_sigma);
  fp.MixDouble(c.arrivals.session_minutes_cap);
  fp.MixDouble(c.arrivals.long_stay_prob);
  fp.MixDouble(c.arrivals.long_stay_hours_lo);
  fp.MixDouble(c.arrivals.long_stay_hours_hi);

  fp.MixDouble(c.activity.background_busy);
  fp.MixDouble(c.activity.boot_busy);
  fp.MixDouble(c.activity.boot_busy_seconds);
  fp.MixDouble(c.activity.phase_minutes_mean);
  fp.MixDouble(c.activity.light_prob);
  fp.MixDouble(c.activity.light_busy_lo);
  fp.MixDouble(c.activity.light_busy_hi);
  fp.MixDouble(c.activity.medium_prob);
  fp.MixDouble(c.activity.medium_busy_lo);
  fp.MixDouble(c.activity.medium_busy_hi);
  fp.MixDouble(c.activity.heavy_busy_lo);
  fp.MixDouble(c.activity.heavy_busy_hi);
  fp.MixDouble(c.activity.heavy_class_busy_lo);
  fp.MixDouble(c.activity.heavy_class_busy_hi);
  fp.MixDouble(c.activity.compute_server_fraction);
  fp.MixDouble(c.activity.compute_server_busy_lo);
  fp.MixDouble(c.activity.compute_server_busy_hi);

  fp.MixDouble(c.memory.base_load_512mb);
  fp.MixDouble(c.memory.base_load_256mb);
  fp.MixDouble(c.memory.base_load_128mb);
  fp.MixDouble(c.memory.base_jitter);
  fp.MixDouble(c.memory.app_mb_mean);
  fp.MixDouble(c.memory.app_mb_sigma);
  fp.MixDouble(c.memory.swap_base_512mb);
  fp.MixDouble(c.memory.swap_base_256mb);
  fp.MixDouble(c.memory.swap_base_128mb);
  fp.MixDouble(c.memory.swap_jitter);
  fp.MixDouble(c.memory.swap_app_points_mean);

  fp.MixDouble(c.disk.jitter_gb);
  fp.MixDouble(c.disk.student_temp_mb_lo);
  fp.MixDouble(c.disk.student_temp_mb_hi);
  fp.MixDouble(c.disk.image_gb_large);
  fp.MixDouble(c.disk.image_gb_medium);
  fp.MixDouble(c.disk.image_gb_small);
  fp.MixDouble(c.disk.image_gb_tiny);
  fp.MixDouble(c.disk.image_gb_mini);

  fp.MixDouble(c.network.background_sent_bps);
  fp.MixDouble(c.network.background_recv_bps);
  fp.MixDouble(c.network.background_jitter);
  fp.MixDouble(c.network.active_recv_bps_mean);
  fp.MixDouble(c.network.active_recv_bps_sigma);
  fp.MixDouble(c.network.active_sent_ratio_lo);
  fp.MixDouble(c.network.active_sent_ratio_hi);

  fp.MixBool(c.power.sweeps_enabled);
  fp.MixDouble(c.power.off_after_walkin);
  fp.MixDouble(c.power.off_after_class);
  fp.MixDouble(c.power.off_after_evening);
  fp.MixInt(c.power.evening_hour);
  fp.MixDouble(c.power.sweep_kill_floor);
  fp.MixDouble(c.power.sweep_kill_scale);
  fp.MixDouble(c.power.ghost_kill_multiplier);
  fp.MixDouble(c.power.weekend_kill_floor);
  fp.MixDouble(c.power.weekend_kill_scale);
  fp.MixDouble(c.power.sticky_fraction);
  fp.MixDouble(c.power.sticky_stay_on_lo);
  fp.MixDouble(c.power.sticky_stay_on_hi);
  fp.MixDouble(c.power.normal_stay_on_lo);
  fp.MixDouble(c.power.normal_stay_on_hi);
  fp.MixDouble(c.power.class_start_reboot_prob);
  fp.MixDouble(c.power.short_cycles_per_day);
  fp.MixDouble(c.power.short_cycle_minutes_lo);
  fp.MixDouble(c.power.short_cycle_minutes_hi);

  fp.MixDouble(c.forgotten.forget_prob_walkin);
  fp.MixDouble(c.forgotten.forget_prob_class);
  fp.MixDouble(c.forgotten.forget_prob_at_close);
  fp.MixDouble(c.forgotten.abandon_tail_minutes);
}

void MixCollector(Fingerprinter& fp, const ddc::CoordinatorConfig& c) {
  // metrics/tracer and the structured fast path are output-invariant and
  // deliberately excluded.
  fp.MixInt(c.period);
  fp.MixInt(static_cast<int>(c.mode));
  fp.MixInt(c.workers);
  fp.MixDouble(c.exec_policy.success_latency_mean_s);
  fp.MixDouble(c.exec_policy.success_latency_sigma_s);
  fp.MixDouble(c.exec_policy.success_latency_min_s);
  fp.MixDouble(c.exec_policy.offline_timeout_mean_s);
  fp.MixDouble(c.exec_policy.offline_timeout_sigma_s);
  fp.MixDouble(c.exec_policy.offline_timeout_min_s);
  fp.MixDouble(c.exec_policy.transient_failure_prob);
  fp.MixInt(c.retry.max_attempts);
  fp.MixDouble(c.retry.backoff_initial_s);
  fp.MixDouble(c.retry.backoff_multiplier);
  fp.MixDouble(c.retry.backoff_max_s);
  fp.MixDouble(c.retry.jitter_fraction);
  fp.MixDouble(c.retry.iteration_budget_s);
  fp.MixBool(c.retry.retry_timeouts);
  fp.MixBool(c.retry.retry_rejects);
  fp.Mix(c.seed);
}

void MixFaultPlan(Fingerprinter& fp, const faultsim::FaultPlan& p) {
  // An inert plan still mixes its (default) fields, which is fine: every
  // zero-fault config mixes the same constants. Any scenario or knob edit
  // keys a different snapshot, so faulted runs never alias clean ones.
  fp.MixBool(p.enabled);
  fp.Mix(p.seed);
  fp.MixDouble(p.timeout_latency_mean_s);
  fp.MixDouble(p.timeout_latency_sigma_s);
  fp.MixDouble(p.timeout_latency_min_s);
  fp.MixDouble(p.error_latency_mean_s);
  fp.MixDouble(p.error_latency_sigma_s);
  fp.MixDouble(p.error_latency_min_s);
  const auto& s = p.stochastic;
  fp.MixDouble(s.transient_error_prob);
  fp.MixDouble(s.hang_prob);
  fp.MixDouble(s.hang_seconds_mean);
  fp.MixDouble(s.hang_seconds_sigma);
  fp.MixDouble(s.straggler_prob);
  fp.MixDouble(s.straggler_multiplier_lo);
  fp.MixDouble(s.straggler_multiplier_hi);
  fp.MixDouble(s.wire_truncation_prob);
  fp.MixDouble(s.wire_corruption_prob);
  fp.MixInt(s.wire_corruption_max_bytes);
  fp.MixDouble(s.nic_reset_prob);
  fp.MixDouble(s.archive_write_failure_prob);
  fp.Mix(p.outages.size());
  for (const auto& o : p.outages) {
    fp.MixString(o.lab);
    fp.MixInt(o.start);
    fp.MixInt(o.end);
  }
  fp.Mix(p.crashes.size());
  for (const auto& c : p.crashes) {
    fp.Mix(c.machine);
    fp.MixInt(c.at);
    fp.MixInt(c.down_seconds);
  }
  fp.Mix(p.nic_resets.size());
  for (const auto& n : p.nic_resets) {
    fp.Mix(n.machine);
    fp.MixInt(n.at);
  }
}

void MixPriorLife(Fingerprinter& fp, const winsim::PriorLifeModel& m) {
  fp.MixDouble(m.min_age_years);
  fp.MixDouble(m.max_age_years);
  fp.MixDouble(m.hours_per_cycle_mean);
  fp.MixDouble(m.hours_per_cycle_sigma);
  fp.MixDouble(m.duty_cycle_mean);
  fp.MixDouble(m.duty_cycle_sigma);
}

// ---------------------------------------------------------------------------
// Sidecar codec helpers.
// ---------------------------------------------------------------------------
void PutU64(std::string& out, std::uint64_t bits) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string& out, double v) {
  PutU64(out, std::bit_cast<std::uint64_t>(v));
}

/// FNV-1a over raw bytes — the payload checksum. Any flipped/cut byte in
/// the stored payload changes it.
std::uint64_t ChecksumBytes(const char* data, std::size_t size) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

void PutString(std::string& out, const std::string& s) {
  util::PutVarint(out, s.size());
  out += s;
}

struct SidecarReader {
  util::VarintReader reader;
  bool failed = false;

  explicit SidecarReader(const std::string& bytes, std::size_t offset)
      : reader(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(bytes.data()) + offset,
            bytes.size() - offset)) {}

  std::uint64_t U64() {
    if (const auto v = reader.Read(); v && !failed) return *v;
    failed = true;
    return 0;
  }
  std::int64_t I64() {
    if (const auto v = reader.ReadSigned(); v && !failed) return *v;
    failed = true;
    return 0;
  }
  std::uint64_t RawU64() {
    const auto bytes = reader.ReadBytes(8);
    if (!bytes || failed) {
      failed = true;
      return 0;
    }
    std::uint64_t bits = 0;
    std::memcpy(&bits, bytes->data(), 8);
    return bits;
  }
  double F64() { return std::bit_cast<double>(RawU64()); }
  std::string Str() {
    const auto len = U64();
    if (failed) return {};
    auto bytes = reader.ReadBytes(static_cast<std::size_t>(len));
    if (!bytes) {
      failed = true;
      return {};
    }
    return std::move(*bytes);
  }
};

}  // namespace

std::uint64_t FingerprintConfig(const ExperimentConfig& config) {
  Fingerprinter fp;
  fp.Mix(kSnapshotFormatVersion);
  // The RNG draw protocol determines the simulated trace as much as any
  // config field; note ExperimentConfig::shards is deliberately NOT mixed —
  // every shard count replays the same snapshot.
  fp.Mix(kRngSchemeVersion);
  MixCampus(fp, config.campus);
  MixCollector(fp, config.collector);
  MixPriorLife(fp, config.prior_life);
  MixFaultPlan(fp, config.fault_plan);
  return fp.hash();
}

std::string SerializeExperimentResult(const ExperimentResult& result,
                                      std::uint64_t fingerprint) {
  // Payload built separately so the header can carry its checksum.
  std::string out;

  util::PutSignedVarint(out, result.days);
  util::PutVarint(out, result.parse_failures);
  util::PutVarint(out, result.crosscheck_mismatches);

  const auto& rs = result.run_stats;
  util::PutVarint(out, rs.iterations);
  util::PutVarint(out, rs.attempts);
  util::PutVarint(out, rs.successes);
  util::PutVarint(out, rs.timeouts);
  util::PutVarint(out, rs.errors);
  util::PutVarint(out, rs.missing);
  util::PutVarint(out, rs.corrupt);
  util::PutVarint(out, rs.recovered_after_retry);
  util::PutVarint(out, rs.retry_attempts);
  util::PutVarint(out, rs.retried_collections);
  util::PutVarint(out, rs.faults_injected);
  PutF64(out, rs.total_span_s);
  PutF64(out, rs.max_iteration_s);
  PutF64(out, rs.mean_iteration_s);

  const auto& gt = result.ground_truth;
  util::PutVarint(out, gt.boots);
  util::PutVarint(out, gt.shutdowns);
  util::PutVarint(out, gt.reboots);
  util::PutVarint(out, gt.short_cycles);
  util::PutVarint(out, gt.class_logins);
  util::PutVarint(out, gt.walkin_logins);
  util::PutVarint(out, gt.forgotten_sessions);
  util::PutVarint(out, gt.lost_arrivals);
  util::PutVarint(out, gt.sweep_shutdowns);

  PutF64(out, result.hardware.ram_gb);
  PutF64(out, result.hardware.disk_tb);
  PutF64(out, result.hardware.sum_int_index);
  PutF64(out, result.hardware.sum_fp_index);

  util::PutVarint(out, result.perf_index.size());
  for (const double v : result.perf_index) PutF64(out, v);

  util::PutVarint(out, result.labs.size());
  for (const auto& lab : result.labs) {
    PutString(out, lab.name);
    util::PutVarint(out, lab.machine_count);
    PutString(out, lab.cpu_model);
    PutF64(out, lab.cpu_ghz);
    util::PutSignedVarint(out, lab.ram_mb);
    PutF64(out, lab.disk_gb);
    PutF64(out, lab.int_index);
    PutF64(out, lab.fp_index);
  }

  const std::string trace_bytes = trace::SerializeTrace(result.trace);
  util::PutVarint(out, trace_bytes.size());
  out += trace_bytes;

  std::string framed;
  framed.reserve(out.size() + 32);
  framed.append(kMagic, kMagicLen);
  util::PutVarint(framed, kSnapshotFormatVersion);
  util::PutVarint(framed, fingerprint);
  PutU64(framed, ChecksumBytes(out.data(), out.size()));
  framed += out;
  return framed;
}

util::Result<ExperimentResult> DeserializeExperimentResult(
    const std::string& bytes, std::uint64_t expected_fingerprint) {
  using R = util::Result<ExperimentResult>;
  if (bytes.size() < kMagicLen ||
      std::memcmp(bytes.data(), kMagic, kMagicLen) != 0) {
    return R::Err("not a labmon snapshot (bad magic)");
  }
  SidecarReader in(bytes, kMagicLen);

  const std::uint64_t version = in.U64();
  if (in.failed) return R::Err("truncated snapshot header");
  if (version != kSnapshotFormatVersion) {
    return R::Err("stale snapshot format (version " + std::to_string(version) +
                  ", expected " + std::to_string(kSnapshotFormatVersion) + ")");
  }
  const std::uint64_t fingerprint = in.U64();
  if (in.failed) return R::Err("truncated snapshot header");
  if (fingerprint != expected_fingerprint) {
    return R::Err("snapshot fingerprint mismatch (different config)");
  }
  const std::uint64_t stored_checksum = in.RawU64();
  if (in.failed) return R::Err("truncated snapshot header");
  const std::size_t payload_offset = kMagicLen + in.reader.position();
  if (ChecksumBytes(bytes.data() + payload_offset,
                    bytes.size() - payload_offset) != stored_checksum) {
    return R::Err("snapshot payload checksum mismatch (corrupt file)");
  }

  ExperimentResult result;
  result.days = static_cast<int>(in.I64());
  result.parse_failures = in.U64();
  result.crosscheck_mismatches = in.U64();

  result.run_stats.iterations = in.U64();
  result.run_stats.attempts = in.U64();
  result.run_stats.successes = in.U64();
  result.run_stats.timeouts = in.U64();
  result.run_stats.errors = in.U64();
  result.run_stats.missing = in.U64();
  result.run_stats.corrupt = in.U64();
  result.run_stats.recovered_after_retry = in.U64();
  result.run_stats.retry_attempts = in.U64();
  result.run_stats.retried_collections = in.U64();
  result.run_stats.faults_injected = in.U64();
  result.run_stats.total_span_s = in.F64();
  result.run_stats.max_iteration_s = in.F64();
  result.run_stats.mean_iteration_s = in.F64();

  result.ground_truth.boots = in.U64();
  result.ground_truth.shutdowns = in.U64();
  result.ground_truth.reboots = in.U64();
  result.ground_truth.short_cycles = in.U64();
  result.ground_truth.class_logins = in.U64();
  result.ground_truth.walkin_logins = in.U64();
  result.ground_truth.forgotten_sessions = in.U64();
  result.ground_truth.lost_arrivals = in.U64();
  result.ground_truth.sweep_shutdowns = in.U64();

  result.hardware.ram_gb = in.F64();
  result.hardware.disk_tb = in.F64();
  result.hardware.sum_int_index = in.F64();
  result.hardware.sum_fp_index = in.F64();

  const std::uint64_t perf_count = in.U64();
  if (in.failed || perf_count > in.reader.remaining()) {
    return R::Err("truncated snapshot sidecar");
  }
  result.perf_index.reserve(static_cast<std::size_t>(perf_count));
  for (std::uint64_t i = 0; i < perf_count; ++i) {
    result.perf_index.push_back(in.F64());
  }

  const std::uint64_t lab_count = in.U64();
  if (in.failed || lab_count > in.reader.remaining()) {
    return R::Err("truncated snapshot sidecar");
  }
  result.labs.reserve(static_cast<std::size_t>(lab_count));
  for (std::uint64_t i = 0; i < lab_count; ++i) {
    LabSummary lab;
    lab.name = in.Str();
    lab.machine_count = static_cast<std::size_t>(in.U64());
    lab.cpu_model = in.Str();
    lab.cpu_ghz = in.F64();
    lab.ram_mb = static_cast<int>(in.I64());
    lab.disk_gb = in.F64();
    lab.int_index = in.F64();
    lab.fp_index = in.F64();
    result.labs.push_back(std::move(lab));
  }
  if (in.failed) return R::Err("truncated snapshot sidecar");

  const std::uint64_t trace_len = in.U64();
  if (in.failed || trace_len != in.reader.remaining()) {
    return R::Err("truncated snapshot trace");
  }
  auto trace_bytes = in.reader.ReadBytes(static_cast<std::size_t>(trace_len));
  if (!trace_bytes) return R::Err("truncated snapshot trace");
  auto trace = trace::DeserializeTrace(*trace_bytes);
  if (!trace.ok()) {
    return R::Err("snapshot trace decode failed: " + trace.error());
  }
  result.trace = std::move(trace.value());
  return result;
}

SnapshotCache::SnapshotCache(std::string directory)
    : directory_(std::move(directory)) {}

std::string SnapshotCache::PathFor(std::uint64_t fingerprint) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.lmsnap",
                static_cast<unsigned long long>(fingerprint));
  return directory_ + "/" + name;
}

bool SnapshotCache::Contains(std::uint64_t fingerprint) const {
  std::error_code ec;
  return std::filesystem::exists(PathFor(fingerprint), ec);
}

util::Result<ExperimentResult> SnapshotCache::Load(
    std::uint64_t fingerprint) const {
  auto bytes = util::ReadTextFile(PathFor(fingerprint));
  if (!bytes.ok()) {
    return util::Result<ExperimentResult>::Err(bytes.error());
  }
  return DeserializeExperimentResult(bytes.value(), fingerprint);
}

util::Result<bool> SnapshotCache::Store(std::uint64_t fingerprint,
                                        const ExperimentResult& result) const {
  using R = util::Result<bool>;
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    return R::Err("cannot create snapshot dir " + directory_ + ": " +
                  ec.message());
  }
  const std::string path = PathFor(fingerprint);
  const std::string tmp = path + ".tmp";
  if (const auto written =
          util::WriteTextFile(tmp, SerializeExperimentResult(result,
                                                             fingerprint));
      !written.ok()) {
    return R::Err(written.error());
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return R::Err("cannot publish snapshot " + path + ": " + ec.message());
  }
  return true;
}

}  // namespace labmon::core
