// Report — runs every analysis of the paper on an ExperimentResult and
// renders/exports them.
#pragma once

#include <string>

#include "labmon/analysis/aggregate.hpp"
#include "labmon/analysis/availability.hpp"
#include "labmon/analysis/equivalence.hpp"
#include "labmon/analysis/per_lab.hpp"
#include "labmon/analysis/session_hours.hpp"
#include "labmon/analysis/stability.hpp"
#include "labmon/analysis/weekly.hpp"
#include "labmon/core/experiment.hpp"

namespace labmon::core {

class Report {
 public:
  /// Computes all analyses eagerly. The result must outlive the report.
  explicit Report(const ExperimentResult& result);

  // Rendered artefacts (paper-vs-measured tables).
  [[nodiscard]] std::string Table1() const;  ///< machine inventory
  [[nodiscard]] std::string Table2() const;  ///< main results
  [[nodiscard]] std::string Figure2() const;
  [[nodiscard]] std::string Figure3() const;
  [[nodiscard]] std::string Figure4() const;
  [[nodiscard]] std::string Figure5() const;
  [[nodiscard]] std::string Figure6() const;
  [[nodiscard]] std::string Stability() const;
  /// Per-lab usage breakdown + fleet resource headroom (paper abstract).
  [[nodiscard]] std::string PerLab() const;
  /// All of the above concatenated.
  [[nodiscard]] std::string FullReport() const;

  // Raw analysis results, for programmatic use.
  [[nodiscard]] const analysis::Table2Result& table2() const noexcept {
    return table2_;
  }
  [[nodiscard]] const analysis::AvailabilitySeries& availability()
      const noexcept {
    return availability_;
  }
  [[nodiscard]] const analysis::UptimeRanking& uptime_ranking()
      const noexcept {
    return ranking_;
  }
  [[nodiscard]] const analysis::SessionLengthDistribution& session_lengths()
      const noexcept {
    return session_lengths_;
  }
  [[nodiscard]] const analysis::SessionStats& session_stats() const noexcept {
    return session_stats_;
  }
  [[nodiscard]] const analysis::SmartStats& smart_stats() const noexcept {
    return smart_stats_;
  }
  [[nodiscard]] const analysis::SessionHourProfile& session_hours()
      const noexcept {
    return session_hours_;
  }
  [[nodiscard]] const analysis::WeeklyProfiles& weekly() const noexcept {
    return weekly_;
  }
  [[nodiscard]] const analysis::EquivalenceResult& equivalence()
      const noexcept {
    return equivalence_;
  }
  [[nodiscard]] const std::vector<analysis::LabUsage>& per_lab()
      const noexcept {
    return per_lab_;
  }
  [[nodiscard]] const analysis::ResourceHeadroom& headroom() const noexcept {
    return headroom_;
  }

  /// Writes figure data as CSV files into `directory` (created if needed).
  /// Returns an error message on failure, empty string on success.
  [[nodiscard]] std::string WriteCsvFiles(const std::string& directory) const;

 private:
  const ExperimentResult* result_;
  analysis::Table2Result table2_;
  analysis::AvailabilitySeries availability_;
  analysis::UptimeRanking ranking_;
  analysis::SessionLengthDistribution session_lengths_;
  analysis::SessionStats session_stats_;
  analysis::SmartStats smart_stats_;
  analysis::SessionHourProfile session_hours_;
  analysis::WeeklyProfiles weekly_;
  analysis::EquivalenceResult equivalence_;
  std::vector<analysis::LabUsage> per_lab_;
  analysis::ResourceHeadroom headroom_;
};

}  // namespace labmon::core
