// Report — runs every analysis of the paper on an ExperimentResult and
// renders/exports them.
//
// All analyses run through analysis::AnalysisPipeline in one parallel
// sweep over a trace::DerivedTrace, so intervals and sessions are derived
// exactly once (the previous constructor reconstructed the session list
// twice and every analysis re-derived its own intervals).
#pragma once

#include <string>

#include "labmon/analysis/passes.hpp"
#include "labmon/analysis/pipeline.hpp"
#include "labmon/core/experiment.hpp"
#include "labmon/trace/derived_trace.hpp"

namespace labmon::core {

struct ReportOptions {
  /// Worker threads for derivation and the analysis sweep
  /// (0 = hardware concurrency). Results are identical for any value.
  std::size_t workers = 0;
  /// Optional metrics sink for derivation/pipeline instrumentation.
  obs::Registry* metrics = nullptr;
};

class Report {
 public:
  /// Computes all analyses eagerly. The result must outlive the report.
  explicit Report(const ExperimentResult& result, ReportOptions options = {});

  // Rendered artefacts (paper-vs-measured tables).
  [[nodiscard]] std::string Table1() const;  ///< machine inventory
  [[nodiscard]] std::string Table2() const;  ///< main results
  [[nodiscard]] std::string Figure2() const;
  [[nodiscard]] std::string Figure3() const;
  [[nodiscard]] std::string Figure4() const;
  [[nodiscard]] std::string Figure5() const;
  [[nodiscard]] std::string Figure6() const;
  [[nodiscard]] std::string Stability() const;
  /// Per-lab usage breakdown + fleet resource headroom (paper abstract).
  [[nodiscard]] std::string PerLab() const;
  /// All of the above concatenated.
  [[nodiscard]] std::string FullReport() const;

  // Raw analysis results, for programmatic use.
  [[nodiscard]] const analysis::Table2Result& table2() const noexcept {
    return table2_;
  }
  [[nodiscard]] const analysis::AvailabilitySeries& availability()
      const noexcept {
    return availability_;
  }
  [[nodiscard]] const analysis::UptimeRanking& uptime_ranking()
      const noexcept {
    return ranking_;
  }
  [[nodiscard]] const analysis::SessionLengthDistribution& session_lengths()
      const noexcept {
    return session_lengths_;
  }
  [[nodiscard]] const analysis::SessionStats& session_stats() const noexcept {
    return session_stats_;
  }
  [[nodiscard]] const analysis::SmartStats& smart_stats() const noexcept {
    return smart_stats_;
  }
  [[nodiscard]] const analysis::SessionHourProfile& session_hours()
      const noexcept {
    return session_hours_;
  }
  [[nodiscard]] const analysis::WeeklyProfiles& weekly() const noexcept {
    return weekly_;
  }
  [[nodiscard]] const analysis::EquivalenceResult& equivalence()
      const noexcept {
    return equivalence_;
  }
  [[nodiscard]] const std::vector<analysis::LabUsage>& per_lab()
      const noexcept {
    return per_lab_;
  }
  [[nodiscard]] const analysis::ResourceHeadroom& headroom() const noexcept {
    return headroom_;
  }
  [[nodiscard]] const analysis::CapacityResult& capacity() const noexcept {
    return capacity_;
  }

  /// The shared derivation every analysis consumed (intervals, sessions,
  /// interactive spans — computed exactly once).
  [[nodiscard]] const trace::DerivedTrace& derived() const noexcept {
    return derived_;
  }
  /// Timings/shape of the analysis sweep that produced this report.
  [[nodiscard]] const analysis::PipelineRunStats& pipeline_stats()
      const noexcept {
    return pipeline_stats_;
  }

  /// Writes figure data as CSV files into `directory` (created if needed).
  /// Returns an error message on failure, empty string on success.
  [[nodiscard]] std::string WriteCsvFiles(const std::string& directory) const;

 private:
  const ExperimentResult* result_;
  trace::DerivedTrace derived_;
  analysis::PipelineRunStats pipeline_stats_;
  analysis::Table2Result table2_;
  analysis::AvailabilitySeries availability_;
  analysis::UptimeRanking ranking_;
  analysis::SessionLengthDistribution session_lengths_{
      stats::Histogram(0.0, 96.0, 48)};
  analysis::SessionStats session_stats_;
  analysis::SmartStats smart_stats_;
  analysis::SessionHourProfile session_hours_;
  analysis::WeeklyProfiles weekly_;
  analysis::EquivalenceResult equivalence_;
  std::vector<analysis::LabUsage> per_lab_;
  analysis::ResourceHeadroom headroom_;
  analysis::CapacityResult capacity_;
};

}  // namespace labmon::core
