// Streaming campaign engine — the full experiment in O(block) memory.
//
// StreamingExperiment::Run drives the same per-lab simulation as
// Experiment::Run, but collection seals fixed-size, iteration-aligned
// trace blocks as they fill instead of materialising each lab's trace:
// blocks either stay in memory as a sealed block list or spill to disk as
// LMSG1 segments (trace/segment.hpp). The merge phase then re-streams
// every lab through trace::StreamMergeBlocks and folds the merged blocks
// straight into analysis::StreamingAnalysis, so the campaign's peak
// memory is bounded by block size + per-machine analysis state — it does
// not grow with the simulated horizon. The analysis output is
// bit-identical to Experiment::Run + the materialised pipeline (pinned by
// tests/core/test_streaming_determinism).
//
// With spilling enabled every finished lab is also a checkpoint: its
// segment plus a small sidecar (config fingerprint, per-lab run stats and
// ground truth) written atomically after the segment is complete. A
// killed campaign restarted with `resume = true` re-simulates only the
// labs whose checkpoint is missing or invalid and re-streams the rest
// from disk, reproducing the exact same result.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "labmon/analysis/stream_fold.hpp"
#include "labmon/core/experiment.hpp"
#include "labmon/obs/jsonl.hpp"
#include "labmon/trace/block.hpp"
#include "labmon/trace/spill_codec.hpp"

namespace labmon::core {

struct StreamingOptions {
  /// Sealed-block capacity for collection spill and the merged stream.
  std::size_t block_samples = trace::kDefaultBlockSamples;
  /// Spill directory for per-lab segments + checkpoint sidecars; empty
  /// keeps sealed blocks in memory (still O(block) during the merge, but
  /// collection holds every sealed block).
  std::string spill_dir;
  /// Reuse valid per-lab checkpoints found in `spill_dir` instead of
  /// re-simulating those labs (requires spilling).
  bool resume = false;
  /// On-disk codec for newly written spill segments (trace/spill_codec.hpp).
  /// Read-back always dispatches on each segment's own magic, so a resumed
  /// campaign may mix codecs freely — the codec is deliberately excluded
  /// from the config fingerprint and the decoded streams are bit-identical
  /// either way.
  trace::SpillCodecId spill_codec = trace::kDefaultSpillCodec;
  /// Online anomaly detection: |z| threshold on per-machine memory load
  /// and CPU idle deltas. 0 disables the detector.
  double anomaly_threshold = 0.0;
  /// Warm-up observations per machine-metric before scoring starts.
  std::uint64_t anomaly_min_samples = 32;
  /// Optional JSONL sink for anomaly records (not owned).
  obs::JsonlWriter* anomaly_writer = nullptr;

  // --- PipelinedExperiment only (ignored by StreamingExperiment) ---

  /// Capacity of the bounded staging ring between the shard collectors and
  /// the merge stage (blocks). Small rings bound memory and apply
  /// backpressure to fast shards; output is identical at any capacity.
  std::size_t ring_capacity = 64;
  /// Lockstep window length in collection periods: every lab is advanced
  /// through window w before any lab starts w+1, so complete iteration
  /// fronts reach the merge while later windows are still simulating.
  std::size_t window_iterations = 16;
  /// Worker budget for the parallel per-front merge sort engaged when the
  /// staging ring backs up. 0 picks a small hardware-derived default.
  std::size_t merge_sort_workers = 0;
};

/// Pipeline health counters from a PipelinedExperiment run (all zero for
/// StreamingExperiment). Mirrored into obs::DefaultRegistry gauges under
/// labmon_pipeline_*.
struct PipelineStats {
  std::uint64_t staged_blocks = 0;      ///< blocks pushed through the ring
  std::uint64_t ring_push_stalls = 0;   ///< producer waits (ring full)
  std::uint64_t ring_pop_stalls = 0;    ///< merge waits (ring empty)
  double ring_push_wait_s = 0.0;
  double ring_pop_wait_s = 0.0;
  std::size_t ring_peak_occupancy = 0;
  std::size_t ring_capacity = 0;
  /// Peak blocks buffered inside the merge frontier (merge lag).
  std::size_t merge_lag_peak_blocks = 0;
  std::uint64_t arena_acquired = 0;  ///< block acquisitions (all pools)
  std::uint64_t arena_reused = 0;    ///< served from a recycling pool
  double arena_reuse_ratio = 0.0;
  double wall_s = 0.0;           ///< whole run
  double pipeline_wall_s = 0.0;  ///< overlapped collect/merge/fold region
  /// (wall_s - pipeline_wall_s) / wall_s — time outside the overlapped
  /// region (fleet build, result assembly).
  double serial_fraction = 0.0;
};

/// Spill codec accounting for one run: the encode side sums every segment
/// writer (shard workers compress before bytes hit disk), the decode side
/// sums every segment read-back (the merge re-stream and resume replay).
/// All zeros when spilling is disabled. Mirrored into obs gauges under
/// labmon_spill_*.
struct SpillCompressionStats {
  std::string codec;  ///< codec newly written segments used ("" = no spill)
  std::uint64_t segments = 0;       ///< segment files written this run
  std::uint64_t segment_bytes = 0;  ///< on-disk bytes incl. framing
  std::uint64_t blocks_encoded = 0;
  std::uint64_t samples_encoded = 0;
  std::uint64_t raw_bytes_encoded = 0;      ///< columnar in-memory footprint
  std::uint64_t payload_bytes_encoded = 0;  ///< encoded payload bytes
  double encode_s = 0.0;
  std::uint64_t blocks_decoded = 0;
  std::uint64_t samples_decoded = 0;
  std::uint64_t raw_bytes_decoded = 0;
  std::uint64_t payload_bytes_decoded = 0;
  double decode_s = 0.0;

  /// Raw columnar bytes per encoded payload byte (0 when nothing spilled).
  [[nodiscard]] double CompressionRatio() const noexcept {
    return payload_bytes_encoded != 0
               ? static_cast<double>(raw_bytes_encoded) /
                     static_cast<double>(payload_bytes_encoded)
               : 0.0;
  }
  [[nodiscard]] double EncodeNsPerSample() const noexcept {
    return samples_encoded != 0
               ? encode_s * 1e9 / static_cast<double>(samples_encoded)
               : 0.0;
  }
  [[nodiscard]] double DecodeNsPerSample() const noexcept {
    return samples_decoded != 0
               ? decode_s * 1e9 / static_cast<double>(samples_decoded)
               : 0.0;
  }
};

/// Everything a streamed run produces. There is no materialised trace:
/// `summary` holds machine count + merged iteration metadata only, and
/// `stream_hash` fingerprints the merged sample sequence
/// (trace::HashSampleStream over the merged blocks).
struct StreamingExperimentResult {
  trace::TraceStore summary;
  analysis::StreamingAnalysisResult analysis;
  ddc::RunStats run_stats;
  workload::GroundTruth ground_truth;
  std::vector<double> perf_index;
  std::vector<LabSummary> labs;
  winsim::Fleet::Totals hardware;
  int days = 0;
  std::uint64_t parse_failures = 0;
  std::uint64_t crosscheck_mismatches = 0;
  std::uint64_t samples = 0;
  std::uint64_t merged_blocks = 0;
  std::uint64_t stream_hash = 0;
  std::uint64_t anomalies = 0;
  std::uint64_t anomaly_observations = 0;
  std::size_t labs_resumed = 0;
  /// Per-lab spill/merge IO failures (empty on a clean run).
  std::vector<std::string> errors;
  /// Pipeline health (PipelinedExperiment only; zeros otherwise).
  PipelineStats pipeline;
  /// Spill codec accounting (zeros when spilling is disabled).
  SpillCompressionStats spill;
};

class StreamingExperiment {
 public:
  /// Runs collection + merge + incremental analysis end to end
  /// (deterministic for a given config; independent of shard count,
  /// block size and spill mode).
  [[nodiscard]] static StreamingExperimentResult Run(
      const ExperimentConfig& config, const StreamingOptions& options = {});
};

/// Pipelined campaign engine: the three streaming stages — per-shard
/// collection, iteration-front merge, analysis fold — run concurrently,
/// coupled by bounded staging rings, instead of strictly in sequence.
///
/// Shard workers advance their labs in lockstep windows of
/// `window_iterations` collection periods and seal iteration-aligned
/// blocks into a bounded MPSC staging ring at every window boundary. A
/// dedicated merge thread drains the ring into a trace::MergeFrontier,
/// which emits merged blocks the moment an iteration front is complete
/// across all labs — it never waits for any lab to finish its campaign.
/// Merged blocks flow through a second ring into the
/// analysis::StreamingAnalysis fold running on its own thread. Block
/// buffers recycle backwards through the rings (per-shard pools feed the
/// collectors; the fold returns merged blocks to the emitter), so the
/// steady state allocates nothing on the merge path.
///
/// The result is bit-identical to StreamingExperiment::Run (stream hash,
/// run stats, all analyses) at any shard count, window length, block size
/// or ring capacity, and checkpoints interoperate with streaming spill
/// dirs in both directions (pinned by tests/core/
/// test_pipelined_determinism).
class PipelinedExperiment {
 public:
  [[nodiscard]] static StreamingExperimentResult Run(
      const ExperimentConfig& config, const StreamingOptions& options = {});
};

}  // namespace labmon::core
