// Streaming campaign engine — the full experiment in O(block) memory.
//
// StreamingExperiment::Run drives the same per-lab simulation as
// Experiment::Run, but collection seals fixed-size, iteration-aligned
// trace blocks as they fill instead of materialising each lab's trace:
// blocks either stay in memory as a sealed block list or spill to disk as
// LMSG1 segments (trace/segment.hpp). The merge phase then re-streams
// every lab through trace::StreamMergeBlocks and folds the merged blocks
// straight into analysis::StreamingAnalysis, so the campaign's peak
// memory is bounded by block size + per-machine analysis state — it does
// not grow with the simulated horizon. The analysis output is
// bit-identical to Experiment::Run + the materialised pipeline (pinned by
// tests/core/test_streaming_determinism).
//
// With spilling enabled every finished lab is also a checkpoint: its
// segment plus a small sidecar (config fingerprint, per-lab run stats and
// ground truth) written atomically after the segment is complete. A
// killed campaign restarted with `resume = true` re-simulates only the
// labs whose checkpoint is missing or invalid and re-streams the rest
// from disk, reproducing the exact same result.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "labmon/analysis/stream_fold.hpp"
#include "labmon/core/experiment.hpp"
#include "labmon/obs/jsonl.hpp"
#include "labmon/trace/block.hpp"

namespace labmon::core {

struct StreamingOptions {
  /// Sealed-block capacity for collection spill and the merged stream.
  std::size_t block_samples = trace::kDefaultBlockSamples;
  /// Spill directory for per-lab segments + checkpoint sidecars; empty
  /// keeps sealed blocks in memory (still O(block) during the merge, but
  /// collection holds every sealed block).
  std::string spill_dir;
  /// Reuse valid per-lab checkpoints found in `spill_dir` instead of
  /// re-simulating those labs (requires spilling).
  bool resume = false;
  /// Online anomaly detection: |z| threshold on per-machine memory load
  /// and CPU idle deltas. 0 disables the detector.
  double anomaly_threshold = 0.0;
  /// Warm-up observations per machine-metric before scoring starts.
  std::uint64_t anomaly_min_samples = 32;
  /// Optional JSONL sink for anomaly records (not owned).
  obs::JsonlWriter* anomaly_writer = nullptr;
};

/// Everything a streamed run produces. There is no materialised trace:
/// `summary` holds machine count + merged iteration metadata only, and
/// `stream_hash` fingerprints the merged sample sequence
/// (trace::HashSampleStream over the merged blocks).
struct StreamingExperimentResult {
  trace::TraceStore summary;
  analysis::StreamingAnalysisResult analysis;
  ddc::RunStats run_stats;
  workload::GroundTruth ground_truth;
  std::vector<double> perf_index;
  std::vector<LabSummary> labs;
  winsim::Fleet::Totals hardware;
  int days = 0;
  std::uint64_t parse_failures = 0;
  std::uint64_t crosscheck_mismatches = 0;
  std::uint64_t samples = 0;
  std::uint64_t merged_blocks = 0;
  std::uint64_t stream_hash = 0;
  std::uint64_t anomalies = 0;
  std::uint64_t anomaly_observations = 0;
  std::size_t labs_resumed = 0;
  /// Per-lab spill/merge IO failures (empty on a clean run).
  std::vector<std::string> errors;
};

class StreamingExperiment {
 public:
  /// Runs collection + merge + incremental analysis end to end
  /// (deterministic for a given config; independent of shard count,
  /// block size and spill mode).
  [[nodiscard]] static StreamingExperimentResult Run(
      const ExperimentConfig& config, const StreamingOptions& options = {});
};

}  // namespace labmon::core
