// Experiment snapshot cache — simulate once, replay everywhere.
//
// The paper's DDC archived every probe's raw output once and ran all
// analyses off the archive (§3.2). This layer is the reproduction's
// equivalent: a full ExperimentResult is persisted as a content-keyed
// binary snapshot — the trace via the existing LMTR1 codec plus a
// versioned sidecar carrying ground truth, run stats, lab summaries,
// hardware totals and per-machine perf indices — so the 16 bench binaries
// pay for one simulation and 15 snapshot loads instead of 16 simulations.
//
// Fingerprint scheme: FNV-1a over every behaviour-affecting field of the
// ExperimentConfig (campus models, collector schedule/policy/seed, prior
// life) plus kSnapshotFormatVersion. Output-invariant knobs (metrics,
// tracer, the structured fast path) are deliberately excluded. Any config
// edit or format bump therefore keys a different file; stale files are
// never silently reused.
//
// Invalidation rules: a snapshot is replayed only when magic, format
// version, fingerprint and the payload checksum all match. Anything else —
// missing file, short file, flipped byte, codec error, foreign
// fingerprint — is a miss; RunCached warns (for real corruption),
// re-simulates, and atomically rewrites (write to a temp file, then
// rename). The checksum (FNV-1a over every payload byte) makes single
// bit-flips anywhere in the stored file detectable, not just ones that
// happen to break a varint.
#pragma once

#include <cstdint>
#include <string>

#include "labmon/core/experiment.hpp"
#include "labmon/util/expected.hpp"

namespace labmon::core {

/// Bump on any layout change to the sidecar or the embedded trace codec —
/// old snapshot files then miss and are rewritten.
/// v2: payload checksum in the header; retry/fault fields in RunStats.
inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

/// Version of the RNG draw protocol the simulation runs under. Mixed into
/// the fingerprint: the same config produces a *different* trace when the
/// draw protocol changes, so old snapshots must re-key exactly once per
/// scheme change.
/// v2: per-entity substreams (DeriveSeed) replacing the single serial
/// stream — the sharded engine's determinism scheme.
inline constexpr std::uint32_t kRngSchemeVersion = 2;

/// Content key of a config: hash of every behaviour-affecting field plus
/// the snapshot format version.
[[nodiscard]] std::uint64_t FingerprintConfig(const ExperimentConfig& config);

/// Serialises a full ExperimentResult (sidecar + embedded LMTR1 trace).
[[nodiscard]] std::string SerializeExperimentResult(
    const ExperimentResult& result, std::uint64_t fingerprint);

/// Parses snapshot bytes; fails on magic/version/fingerprint mismatch or
/// any truncation/corruption.
[[nodiscard]] util::Result<ExperimentResult> DeserializeExperimentResult(
    const std::string& bytes, std::uint64_t expected_fingerprint);

/// Directory of content-keyed snapshot files (<hex fingerprint>.lmsnap).
class SnapshotCache {
 public:
  explicit SnapshotCache(std::string directory);

  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] std::string PathFor(std::uint64_t fingerprint) const;
  /// True when a snapshot file exists for this fingerprint (it may still
  /// fail to load — corruption is detected by Load).
  [[nodiscard]] bool Contains(std::uint64_t fingerprint) const;

  [[nodiscard]] util::Result<ExperimentResult> Load(
      std::uint64_t fingerprint) const;
  /// Atomic write: serialises to "<path>.tmp", then renames over the final
  /// path, so readers never observe a half-written snapshot. Creates the
  /// directory if needed.
  [[nodiscard]] util::Result<bool> Store(std::uint64_t fingerprint,
                                         const ExperimentResult& result) const;

 private:
  std::string directory_;
};

}  // namespace labmon::core
