// Experiment — the one-call public API reproducing the study end to end:
// build the 169-machine fleet, drive it with the behavioural model, run the
// DDC coordinator for 77 simulated days, and return the collected trace
// ready for analysis.
//
//   labmon::core::ExperimentConfig config;       // paper defaults
//   auto result = labmon::core::Experiment::Run(config);
//   labmon::core::Report report(result);
//   std::cout << report.Table2();
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "labmon/ddc/coordinator.hpp"
#include "labmon/faultsim/fault_plan.hpp"
#include "labmon/trace/trace_store.hpp"
#include "labmon/winsim/fleet.hpp"
#include "labmon/workload/config.hpp"
#include "labmon/workload/driver.hpp"

namespace labmon::core {

/// Full experiment configuration; the defaults reproduce the paper.
struct ExperimentConfig {
  workload::CampusConfig campus;          ///< 77 days, 169 machines
  ddc::CoordinatorConfig collector;       ///< 15-min sequential probing
  winsim::PriorLifeModel prior_life;      ///< pre-experiment SMART history
  /// Fault scenario injected at the transport boundary (labmon::faultsim).
  /// Inert by default: a disabled/empty plan leaves the collected trace
  /// bit-identical to a build without the fault layer. Part of the snapshot
  /// fingerprint — faulted and clean runs never share a cache entry.
  faultsim::FaultPlan fault_plan;
  /// Collect through the structured in-process fast path (probe fills a
  /// W32Sample directly; the text codec is cross-checked on a deterministic
  /// 1-in-N sampling). Output-invariant: the trace is bit-identical either
  /// way (pinned by test_w32_probe_golden), so this is excluded from the
  /// snapshot fingerprint.
  bool structured_fast_path = true;
  /// Simulation shards (real threads). The fleet is partitioned by lab into
  /// contiguous shards balanced by machine count; each shard runs its labs'
  /// drivers, coordinators and fault injectors to completion and the
  /// per-lab traces are merged deterministically. Output-invariant: every
  /// shard count produces a bit-identical result (pinned by
  /// test_sharded_determinism), so this is excluded from the snapshot
  /// fingerprint. 0 = one shard per hardware thread (capped at lab count).
  int shards = 0;
};

/// A shard = a contiguous run of labs, [lab_begin, lab_end).
struct LabShard {
  std::size_t lab_begin = 0;
  std::size_t lab_end = 0;
};

/// Contiguous greedy partition of the labs into `shards` groups balanced by
/// machine count. Every shard gets at least one lab (shards is pre-clamped
/// to the lab count) and every lab is covered exactly once. Shared by the
/// materialised and pipelined engines so both attribute work to the same
/// shard boundaries.
[[nodiscard]] std::vector<LabShard> PartitionLabsByMachines(
    const winsim::Fleet& fleet, std::size_t shards);

/// Static description of one lab for reporting (Table 1).
struct LabSummary {
  std::string name;
  std::size_t machine_count = 0;
  std::string cpu_model;
  double cpu_ghz = 0.0;
  int ram_mb = 0;
  double disk_gb = 0.0;
  double int_index = 0.0;
  double fp_index = 0.0;
};

/// Everything a run produces.
struct ExperimentResult {
  trace::TraceStore trace;
  ddc::RunStats run_stats;
  workload::GroundTruth ground_truth;
  std::vector<double> perf_index;     ///< combined NBench index per machine
  std::vector<LabSummary> labs;
  winsim::Fleet::Totals hardware;
  int days = 0;
  std::uint64_t parse_failures = 0;
  /// Structured/text codec disagreements observed by the sink's 1-in-N
  /// cross-check (must be zero).
  std::uint64_t crosscheck_mismatches = 0;
};

class Experiment {
 public:
  /// Runs the full experiment (deterministic for a given config).
  [[nodiscard]] static ExperimentResult Run(const ExperimentConfig& config);

  /// Snapshot-aware Run: looks for a content-keyed snapshot of this config
  /// under `snapshot_dir` and replays it instead of simulating; on a miss
  /// (or a corrupt/stale snapshot file, after a warning) it simulates and
  /// atomically writes the snapshot for the next caller. An empty
  /// `snapshot_dir` degrades to plain Run(). See core/snapshot.hpp for the
  /// fingerprint and invalidation rules.
  [[nodiscard]] static ExperimentResult RunCached(
      const ExperimentConfig& config, const std::string& snapshot_dir);
};

}  // namespace labmon::core
