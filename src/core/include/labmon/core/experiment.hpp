// Experiment — the one-call public API reproducing the study end to end:
// build the 169-machine fleet, drive it with the behavioural model, run the
// DDC coordinator for 77 simulated days, and return the collected trace
// ready for analysis.
//
//   labmon::core::ExperimentConfig config;       // paper defaults
//   auto result = labmon::core::Experiment::Run(config);
//   labmon::core::Report report(result);
//   std::cout << report.Table2();
#pragma once

#include <cstdint>
#include <vector>

#include "labmon/ddc/coordinator.hpp"
#include "labmon/trace/trace_store.hpp"
#include "labmon/winsim/fleet.hpp"
#include "labmon/workload/config.hpp"
#include "labmon/workload/driver.hpp"

namespace labmon::core {

/// Full experiment configuration; the defaults reproduce the paper.
struct ExperimentConfig {
  workload::CampusConfig campus;          ///< 77 days, 169 machines
  ddc::CoordinatorConfig collector;       ///< 15-min sequential probing
  winsim::PriorLifeModel prior_life;      ///< pre-experiment SMART history
};

/// Static description of one lab for reporting (Table 1).
struct LabSummary {
  std::string name;
  std::size_t machine_count = 0;
  std::string cpu_model;
  double cpu_ghz = 0.0;
  int ram_mb = 0;
  double disk_gb = 0.0;
  double int_index = 0.0;
  double fp_index = 0.0;
};

/// Everything a run produces.
struct ExperimentResult {
  trace::TraceStore trace;
  ddc::RunStats run_stats;
  workload::GroundTruth ground_truth;
  std::vector<double> perf_index;     ///< combined NBench index per machine
  std::vector<LabSummary> labs;
  winsim::Fleet::Totals hardware;
  int days = 0;
  std::uint64_t parse_failures = 0;
};

class Experiment {
 public:
  /// Runs the full experiment (deterministic for a given config).
  [[nodiscard]] static ExperimentResult Run(const ExperimentConfig& config);
};

}  // namespace labmon::core
