// One simulated Windows 2000 machine.
//
// The machine exposes the same observable surface W32Probe reads through the
// Win32 API on real hardware: uptime, cumulative idle-thread time since
// boot, dwMemoryLoad-style memory/swap loads, free disk space, NIC byte
// totals since boot, and the interactive session (if any).
//
// Counters evolve *piecewise-analytically*: the workload driver sets rates
// (CPU busy fraction, network bps) at event boundaries and `AdvanceTo`
// integrates them lazily — O(events), not O(simulated seconds). This is what
// makes the 77-day × 169-machine experiment run in seconds.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

#include "labmon/smart/disk_smart.hpp"
#include "labmon/util/time.hpp"
#include "labmon/winsim/machine_spec.hpp"

namespace labmon::winsim {

/// Memory snapshot in the spirit of Win32 GlobalMemoryStatus().
struct MemoryStatus {
  double load_percent = 0.0;  ///< dwMemoryLoad
  int total_mb = 0;
  double avail_mb = 0.0;
};

/// Interactive logon session (username + logon instant).
struct InteractiveSession {
  std::string user;
  util::SimTime logon_time = 0;
};

/// Cumulative NIC counters since boot.
struct NetTotals {
  std::uint64_t sent_bytes = 0;
  std::uint64_t recv_bytes = 0;
};

class Machine {
 public:
  Machine(std::size_t id, MachineSpec spec, smart::DiskSmart disk_smart);

  [[nodiscard]] std::size_t id() const noexcept { return id_; }
  [[nodiscard]] const MachineSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] bool powered_on() const noexcept { return powered_on_; }
  /// Instant the machine state was last integrated to.
  [[nodiscard]] util::SimTime now() const noexcept { return now_; }

  // --- power management (driver-side) -----------------------------------
  /// Powers the machine on at `t`. Requires it to be off. Increments the
  /// disk's SMART power-cycle counter and resets all since-boot counters.
  void Boot(util::SimTime t);
  /// Powers the machine off at `t` (integrating up to `t` first). Any
  /// interactive session is terminated.
  void Shutdown(util::SimTime t);
  /// Shutdown immediately followed by Boot (counts one extra power cycle).
  void Reboot(util::SimTime t);

  /// Integrates counters up to `t` (monotone; no-op while powered off,
  /// except that time still passes).
  void AdvanceTo(util::SimTime t);

  // --- workload control (driver-side) ------------------------------------
  /// Sets the CPU busy fraction in [0, 1] effective from the current instant.
  void SetCpuBusyFraction(double fraction);
  /// Sets network send/receive rates in bytes per second.
  void SetNetRates(double sent_bps, double recv_bps);
  /// Sets memory load percent (dwMemoryLoad semantics, clamped to [0,100]).
  void SetMemLoadPercent(double percent);
  /// Sets swap (page file) load percent.
  void SetSwapLoadPercent(double percent);
  /// Sets used bytes on the single disk (clamped to capacity).
  void SetDiskUsedBytes(std::uint64_t bytes);
  /// Opens an interactive session. Requires power and no existing session.
  void Login(std::string user, util::SimTime t);
  /// Closes the interactive session (no-op when none).
  void Logout();
  /// Zeroes the since-boot NIC byte totals in place (driver reload or
  /// 32-bit counter wrap); rates and everything else are untouched.
  void ResetNetCounters();

  // --- observable surface (probe-side; machine must be powered on) -------
  [[nodiscard]] util::SimTime BootTime() const noexcept;
  [[nodiscard]] util::SimTime UptimeSeconds() const noexcept;
  /// Seconds consumed by the OS idle thread since boot (what the paper's
  /// probe reads to derive average CPU idleness between samples).
  [[nodiscard]] double IdleThreadSeconds() const noexcept;
  /// Busy CPU seconds since boot (complement of the idle thread).
  [[nodiscard]] double BusySeconds() const noexcept;
  [[nodiscard]] MemoryStatus Memory() const noexcept;
  [[nodiscard]] MemoryStatus Swap() const noexcept;
  [[nodiscard]] std::uint64_t DiskFreeBytes() const noexcept;
  [[nodiscard]] std::uint64_t DiskUsedBytes() const noexcept { return disk_used_bytes_; }
  [[nodiscard]] NetTotals Network() const noexcept;
  [[nodiscard]] const std::optional<InteractiveSession>& Session() const noexcept {
    return session_;
  }
  [[nodiscard]] const smart::DiskSmart& DiskSmartData() const noexcept {
    return disk_smart_;
  }

  // --- introspection for tests/analysis ground truth ---------------------
  [[nodiscard]] double cpu_busy_fraction() const noexcept { return cpu_busy_fraction_; }
  [[nodiscard]] std::uint64_t boots() const noexcept { return boots_; }
  /// Ground-truth cumulative powered-on seconds over the whole simulation.
  [[nodiscard]] double total_on_seconds() const noexcept { return total_on_seconds_; }

 private:
  void RequireOn() const noexcept { assert(powered_on_); }

  std::size_t id_;
  MachineSpec spec_;
  smart::DiskSmart disk_smart_;

  bool powered_on_ = false;
  util::SimTime now_ = 0;
  util::SimTime boot_time_ = 0;
  std::uint64_t boots_ = 0;
  double total_on_seconds_ = 0.0;

  // Piecewise rates (valid while powered on).
  double cpu_busy_fraction_ = 0.0;
  double net_sent_bps_ = 0.0;
  double net_recv_bps_ = 0.0;

  // Integrated since boot.
  double busy_seconds_ = 0.0;
  double net_sent_bytes_ = 0.0;
  double net_recv_bytes_ = 0.0;

  // Levels (not integrated).
  double mem_load_percent_ = 0.0;
  double swap_load_percent_ = 0.0;
  std::uint64_t disk_used_bytes_ = 0;

  std::optional<InteractiveSession> session_;
};

}  // namespace labmon::winsim
