// The paper's Table 1: hardware of the 11 monitored classrooms.
#pragma once

#include <vector>

#include "labmon/winsim/fleet.hpp"

namespace labmon::winsim {

/// Returns the 11 lab templates exactly as published in Table 1 (all labs
/// have 16 machines except L09 with 9; 169 machines total).
[[nodiscard]] std::vector<LabSpec> PaperLabSpecs();

/// Lab templates for a campus holding `scale_labs` replicas of the paper's
/// 11 labs (169·K machines). Replica r >= 2 reuses the paper hardware under
/// names like "L01_2"; scale_labs <= 1 is the paper itself.
[[nodiscard]] std::vector<LabSpec> ScaledLabSpecs(int scale_labs);

/// Builds the 169-machine fleet of the paper with prior-life SMART seeding.
/// `scale_labs` > 1 replicates the campus (see ScaledLabSpecs).
[[nodiscard]] Fleet MakePaperFleet(util::Rng& rng,
                                   const PriorLifeModel& prior = {},
                                   int scale_labs = 1);

}  // namespace labmon::winsim
