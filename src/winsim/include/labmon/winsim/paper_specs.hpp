// The paper's Table 1: hardware of the 11 monitored classrooms.
#pragma once

#include <vector>

#include "labmon/winsim/fleet.hpp"

namespace labmon::winsim {

/// Returns the 11 lab templates exactly as published in Table 1 (all labs
/// have 16 machines except L09 with 9; 169 machines total).
[[nodiscard]] std::vector<LabSpec> PaperLabSpecs();

/// Builds the 169-machine fleet of the paper with prior-life SMART seeding.
[[nodiscard]] Fleet MakePaperFleet(util::Rng& rng,
                                   const PriorLifeModel& prior = {});

}  // namespace labmon::winsim
