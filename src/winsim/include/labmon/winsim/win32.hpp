// Win32-flavoured API facade over a simulated machine.
//
// W32Probe "gathers its monitoring data mostly through win32 API calls"
// (§3). This header reproduces the relevant slice of that API — same
// structures, same units, same quirks — so probe code against the simulator
// reads like probe code against Windows 2000:
//
//  * GetTickCount returns *milliseconds* since boot in a DWORD and
//    therefore wraps after 49.7 days (a real bug source in long-uptime
//    monitoring; our Machine tracks uptime exactly, the facade wraps).
//  * GlobalMemoryStatus fills MEMORYSTATUS with dwMemoryLoad as an integer
//    percentage and byte counts for physical/page-file memory.
//  * NtQuerySystemInformation(SystemPerformanceInformation) exposes the
//    idle thread's accumulated time in 100 ns units.
//  * GetDiskFreeSpaceExA reports byte counts via ULARGE_INTEGER.
//  * WTSQuerySessionInformation-style session query.
#pragma once

#include <cstdint>
#include <string>

#include "labmon/winsim/machine.hpp"

namespace labmon::winsim::win32 {

// -- Windows type aliases (the real SDK spellings) --------------------------
using BOOL = int;
using DWORD = std::uint32_t;
using ULONGLONG = std::uint64_t;
using SIZE_T = std::uint64_t;
using LONGLONG = std::int64_t;

inline constexpr BOOL TRUE_ = 1;
inline constexpr BOOL FALSE_ = 0;

/// ULARGE_INTEGER: the classic low/high-part union view.
union ULARGE_INTEGER {
  struct {
    DWORD LowPart;
    DWORD HighPart;
  } u;
  ULONGLONG QuadPart;
};

/// MEMORYSTATUS as filled by GlobalMemoryStatus on Windows 2000.
struct MEMORYSTATUS {
  DWORD dwLength = sizeof(MEMORYSTATUS);
  DWORD dwMemoryLoad = 0;       ///< integer percent in use
  SIZE_T dwTotalPhys = 0;       ///< bytes
  SIZE_T dwAvailPhys = 0;       ///< bytes
  SIZE_T dwTotalPageFile = 0;   ///< bytes
  SIZE_T dwAvailPageFile = 0;   ///< bytes
  SIZE_T dwTotalVirtual = 0;
  SIZE_T dwAvailVirtual = 0;
};

/// The slice of SYSTEM_PERFORMANCE_INFORMATION the probe reads.
struct SYSTEM_PERFORMANCE_INFORMATION {
  LONGLONG IdleProcessTime = 0;  ///< 100 ns units since boot
};

/// LARGE_INTEGER-style boot-relative timing via QueryUnbiasedUptime-like
/// exact seconds (what the probe derives boot_time/uptime from).
struct SYSTEM_TIMEOFDAY_INFORMATION {
  LONGLONG BootTime = 0;     ///< seconds since experiment epoch
  LONGLONG CurrentTime = 0;  ///< seconds since experiment epoch
};

/// Milliseconds since boot, DWORD — wraps every 2^32 ms (~49.7 days),
/// exactly like the real GetTickCount.
[[nodiscard]] DWORD GetTickCount(const Machine& machine) noexcept;

/// 64-bit tick count (the XP-era GetTickCount64, provided for contrast
/// and for tests of the wrap behaviour).
[[nodiscard]] ULONGLONG GetTickCount64(const Machine& machine) noexcept;

/// Fills MEMORYSTATUS; no return value, like the real call.
void GlobalMemoryStatus(const Machine& machine, MEMORYSTATUS* status) noexcept;

/// NtQuerySystemInformation(SystemPerformanceInformation).
/// Returns 0 (STATUS_SUCCESS) always — the simulated call cannot fail.
[[nodiscard]] int NtQuerySystemInformation(
    const Machine& machine, SYSTEM_PERFORMANCE_INFORMATION* info) noexcept;

/// NtQuerySystemInformation(SystemTimeOfDayInformation).
[[nodiscard]] int NtQuerySystemInformation(
    const Machine& machine, SYSTEM_TIMEOFDAY_INFORMATION* info) noexcept;

/// GetDiskFreeSpaceExA for the machine's single volume. Returns TRUE_.
[[nodiscard]] BOOL GetDiskFreeSpaceExA(const Machine& machine,
                                       ULARGE_INTEGER* free_bytes_available,
                                       ULARGE_INTEGER* total_bytes,
                                       ULARGE_INTEGER* total_free_bytes) noexcept;

/// WTS-style interactive session query: returns TRUE_ and fills `user_name`
/// and `logon_time` when a session exists, else FALSE_.
[[nodiscard]] BOOL WTSQuerySessionInformation(const Machine& machine,
                                              std::string* user_name,
                                              LONGLONG* logon_time);

/// The slice of MIB_IFROW the probe reads (IP Helper GetIfEntry).
struct MIB_IFROW {
  DWORD dwInOctets = 0;   ///< wraps at 2^32 like the real 32-bit counter
  DWORD dwOutOctets = 0;
  ULONGLONG InOctets64 = 0;   ///< 64-bit shadow (RFC 2863 HC counters)
  ULONGLONG OutOctets64 = 0;
};

/// GetIfEntry for the machine's single NIC. Returns NO_ERROR (0).
[[nodiscard]] DWORD GetIfEntry(const Machine& machine, MIB_IFROW* row) noexcept;

}  // namespace labmon::winsim::win32
