// Fleet = the full set of monitored machines, organised into labs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "labmon/util/rng.hpp"
#include "labmon/winsim/machine.hpp"

namespace labmon::winsim {

/// One classroom laboratory: a contiguous range of machine indices.
struct LabInfo {
  std::string name;        ///< "L01" … "L11"
  std::size_t first = 0;   ///< index of first machine in the fleet
  std::size_t count = 0;   ///< number of machines
};

/// Parameters for the synthetic prior life of a disk (pre-experiment SMART
/// history, §5.2.2). Machines are 1–3 years old; prior usage patterns had
/// shorter uptimes per cycle than observed during the monitored semester.
struct PriorLifeModel {
  double min_age_years = 1.0;
  double max_age_years = 3.0;
  /// Mean/σ of the prior-life uptime-per-power-cycle (hours).
  double hours_per_cycle_mean = 5.6;
  double hours_per_cycle_sigma = 4.5;
  /// Fraction of calendar life the machine spent powered on.
  double duty_cycle_mean = 0.34;
  double duty_cycle_sigma = 0.10;
};

/// Per-lab hardware template used when instantiating a fleet.
struct LabSpec {
  std::string name;
  std::size_t machine_count = 0;
  std::string cpu_model;
  double cpu_ghz = 0.0;
  int ram_mb = 0;
  double disk_gb = 0.0;
  double int_index = 0.0;
  double fp_index = 0.0;
};

/// Owns all machines plus the lab directory.
class Fleet {
 public:
  /// Instantiates machines from per-lab templates. `rng` drives MAC/serial
  /// generation and prior-life SMART seeding.
  Fleet(std::span<const LabSpec> labs, const PriorLifeModel& prior,
        util::Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return machines_.size(); }
  [[nodiscard]] Machine& machine(std::size_t i) noexcept { return machines_[i]; }
  [[nodiscard]] const Machine& machine(std::size_t i) const noexcept {
    return machines_[i];
  }
  [[nodiscard]] std::span<const LabInfo> labs() const noexcept { return labs_; }
  [[nodiscard]] std::size_t lab_count() const noexcept { return labs_.size(); }
  /// Lab index a machine belongs to.
  [[nodiscard]] std::size_t LabOf(std::size_t machine_index) const noexcept;

  /// Integrates every machine up to `t`.
  void AdvanceAllTo(util::SimTime t);

  /// Integrates machines [first, first+count) up to `t`. Shard drivers use
  /// this so each shard only touches its own machines.
  void AdvanceRangeTo(std::size_t first, std::size_t count, util::SimTime t);

  /// Fleet-average combined NBench index — the normaliser of Figure 6's
  /// cluster-equivalence ratio (effective dedicated machines = useful
  /// index-seconds / elapsed / this). Shared by both harvest schedulers and
  /// the benches so the Fig 6 comparison is computed one way everywhere.
  [[nodiscard]] double MeanCombinedIndex() const noexcept;

  /// Aggregate hardware totals (paper §4.1: 56.62 GB RAM, 6.66 TB disk…).
  struct Totals {
    double ram_gb = 0.0;
    double disk_tb = 0.0;
    double sum_int_index = 0.0;
    double sum_fp_index = 0.0;
  };
  [[nodiscard]] Totals HardwareTotals() const noexcept;

 private:
  std::vector<Machine> machines_;
  std::vector<LabInfo> labs_;
  std::vector<std::size_t> lab_of_;
};

}  // namespace labmon::winsim
