// Static description of a simulated classroom PC — the "static metrics" of
// W32Probe (§3.1.1): processor, OS, memory sizes, disks, NICs.
#pragma once

#include <cstdint>
#include <string>

namespace labmon::winsim {

/// Immutable hardware/software description of one machine.
struct MachineSpec {
  std::string name;        ///< hostname, e.g. "L01-PC03"
  std::string lab;         ///< classroom, e.g. "L01"
  std::string cpu_model;   ///< e.g. "Pentium 4"
  double cpu_ghz = 0.0;    ///< nominal clock
  int ram_mb = 0;          ///< installed main memory
  int swap_mb = 0;         ///< configured virtual memory (page file)
  double disk_gb = 0.0;    ///< single-disk capacity as marketed (1e9 bytes)
  double int_index = 0.0;  ///< NBench integer index (Table 1, INT)
  double fp_index = 0.0;   ///< NBench floating-point index (Table 1, FP)
  std::string os = "Windows 2000 Professional SP3";
  std::string mac;         ///< primary NIC MAC, "00:0C:…"
  std::string disk_serial; ///< disk serial reported via SMART identify

  /// Disk capacity in bytes (vendors count 1 GB = 1e9 bytes).
  [[nodiscard]] std::uint64_t DiskBytes() const noexcept {
    return static_cast<std::uint64_t>(disk_gb * 1e9);
  }

  /// Combined NBench index: the paper weights INT and FP 50/50 for the
  /// cluster-equivalence normalisation (§5.4).
  [[nodiscard]] double CombinedIndex() const noexcept {
    return 0.5 * int_index + 0.5 * fp_index;
  }
};

}  // namespace labmon::winsim
