#include "labmon/winsim/machine.hpp"

#include <algorithm>

namespace labmon::winsim {

Machine::Machine(std::size_t id, MachineSpec spec, smart::DiskSmart disk_smart)
    : id_(id), spec_(std::move(spec)), disk_smart_(std::move(disk_smart)) {}

void Machine::Boot(util::SimTime t) {
  assert(!powered_on_);
  assert(t >= now_);
  now_ = t;
  powered_on_ = true;
  boot_time_ = t;
  ++boots_;
  disk_smart_.NotePowerOn();
  busy_seconds_ = 0.0;
  net_sent_bytes_ = 0.0;
  net_recv_bytes_ = 0.0;
  cpu_busy_fraction_ = 0.0;
  net_sent_bps_ = 0.0;
  net_recv_bps_ = 0.0;
  session_.reset();
}

void Machine::Shutdown(util::SimTime t) {
  RequireOn();
  AdvanceTo(t);
  powered_on_ = false;
  session_.reset();
}

void Machine::Reboot(util::SimTime t) {
  Shutdown(t);
  Boot(t);
}

void Machine::AdvanceTo(util::SimTime t) {
  assert(t >= now_);
  if (!powered_on_) {
    now_ = t;
    return;
  }
  const double dt = static_cast<double>(t - now_);
  if (dt > 0.0) {
    busy_seconds_ += cpu_busy_fraction_ * dt;
    net_sent_bytes_ += net_sent_bps_ * dt;
    net_recv_bytes_ += net_recv_bps_ * dt;
    disk_smart_.AccrueOnTime(dt);
    total_on_seconds_ += dt;
    now_ = t;
  }
}

void Machine::SetCpuBusyFraction(double fraction) {
  RequireOn();
  cpu_busy_fraction_ = std::clamp(fraction, 0.0, 1.0);
}

void Machine::SetNetRates(double sent_bps, double recv_bps) {
  RequireOn();
  net_sent_bps_ = std::max(0.0, sent_bps);
  net_recv_bps_ = std::max(0.0, recv_bps);
}

void Machine::SetMemLoadPercent(double percent) {
  RequireOn();
  mem_load_percent_ = std::clamp(percent, 0.0, 100.0);
}

void Machine::SetSwapLoadPercent(double percent) {
  RequireOn();
  swap_load_percent_ = std::clamp(percent, 0.0, 100.0);
}

void Machine::SetDiskUsedBytes(std::uint64_t bytes) {
  disk_used_bytes_ = std::min(bytes, spec_.DiskBytes());
}

void Machine::Login(std::string user, util::SimTime t) {
  RequireOn();
  assert(!session_.has_value());
  session_ = InteractiveSession{std::move(user), t};
}

void Machine::Logout() { session_.reset(); }

void Machine::ResetNetCounters() {
  RequireOn();
  net_sent_bytes_ = 0.0;
  net_recv_bytes_ = 0.0;
}

util::SimTime Machine::BootTime() const noexcept {
  RequireOn();
  return boot_time_;
}

util::SimTime Machine::UptimeSeconds() const noexcept {
  RequireOn();
  return now_ - boot_time_;
}

double Machine::IdleThreadSeconds() const noexcept {
  RequireOn();
  return static_cast<double>(UptimeSeconds()) - busy_seconds_;
}

double Machine::BusySeconds() const noexcept {
  RequireOn();
  return busy_seconds_;
}

MemoryStatus Machine::Memory() const noexcept {
  RequireOn();
  MemoryStatus m;
  m.load_percent = mem_load_percent_;
  m.total_mb = spec_.ram_mb;
  m.avail_mb = spec_.ram_mb * (1.0 - mem_load_percent_ / 100.0);
  return m;
}

MemoryStatus Machine::Swap() const noexcept {
  RequireOn();
  MemoryStatus m;
  m.load_percent = swap_load_percent_;
  m.total_mb = spec_.swap_mb;
  m.avail_mb = spec_.swap_mb * (1.0 - swap_load_percent_ / 100.0);
  return m;
}

std::uint64_t Machine::DiskFreeBytes() const noexcept {
  RequireOn();
  return spec_.DiskBytes() - disk_used_bytes_;
}

NetTotals Machine::Network() const noexcept {
  RequireOn();
  return NetTotals{static_cast<std::uint64_t>(net_sent_bytes_),
                   static_cast<std::uint64_t>(net_recv_bytes_)};
}

}  // namespace labmon::winsim
