#include "labmon/winsim/fleet.hpp"

#include <algorithm>
#include <cstdio>

namespace labmon::winsim {

namespace {

std::string MakeMac(util::Rng& rng) {
  char buf[18];
  std::snprintf(buf, sizeof buf, "00:0C:%02X:%02X:%02X:%02X",
                static_cast<unsigned>(rng.UniformInt(0, 255)),
                static_cast<unsigned>(rng.UniformInt(0, 255)),
                static_cast<unsigned>(rng.UniformInt(0, 255)),
                static_cast<unsigned>(rng.UniformInt(0, 255)));
  return buf;
}

std::string MakeDiskSerial(util::Rng& rng) {
  static constexpr char kAlphabet[] = "0123456789ABCDEFGHJKLMNPQRSTUVWXYZ";
  std::string serial = "WD-";
  for (int i = 0; i < 9; ++i) {
    serial.push_back(kAlphabet[rng.UniformInt(0, 33)]);
  }
  return serial;
}

smart::DiskSmart SeedPriorLife(const std::string& serial,
                               const PriorLifeModel& prior, util::Rng& rng) {
  const double age_years =
      rng.Uniform(prior.min_age_years, prior.max_age_years);
  const double duty =
      std::clamp(rng.Normal(prior.duty_cycle_mean, prior.duty_cycle_sigma),
                 0.05, 0.95);
  const double prior_hours = age_years * 365.0 * 24.0 * duty;
  const double hours_per_cycle = std::max(
      0.5, rng.Normal(prior.hours_per_cycle_mean, prior.hours_per_cycle_sigma));
  const auto prior_cycles =
      static_cast<std::uint64_t>(std::max(1.0, prior_hours / hours_per_cycle));
  return smart::DiskSmart(serial, prior_hours, prior_cycles);
}

}  // namespace

Fleet::Fleet(std::span<const LabSpec> labs, const PriorLifeModel& prior,
             util::Rng& rng) {
  std::size_t next_index = 0;
  for (const LabSpec& lab : labs) {
    labs_.push_back(LabInfo{lab.name, next_index, lab.machine_count});
    for (std::size_t i = 0; i < lab.machine_count; ++i) {
      MachineSpec spec;
      char host[32];
      std::snprintf(host, sizeof host, "%s-PC%02zu", lab.name.c_str(), i + 1);
      spec.name = host;
      spec.lab = lab.name;
      spec.cpu_model = lab.cpu_model;
      spec.cpu_ghz = lab.cpu_ghz;
      spec.ram_mb = lab.ram_mb;
      // Windows 2000 default page file: 1.5x installed RAM.
      spec.swap_mb = lab.ram_mb + lab.ram_mb / 2;
      spec.disk_gb = lab.disk_gb;
      spec.int_index = lab.int_index;
      spec.fp_index = lab.fp_index;
      spec.mac = MakeMac(rng);
      spec.disk_serial = MakeDiskSerial(rng);
      auto disk = SeedPriorLife(spec.disk_serial, prior, rng);
      machines_.emplace_back(next_index, std::move(spec), std::move(disk));
      lab_of_.push_back(labs_.size() - 1);
      ++next_index;
    }
  }
}

std::size_t Fleet::LabOf(std::size_t machine_index) const noexcept {
  return lab_of_[machine_index];
}

void Fleet::AdvanceAllTo(util::SimTime t) {
  for (Machine& m : machines_) m.AdvanceTo(t);
}

void Fleet::AdvanceRangeTo(std::size_t first, std::size_t count,
                           util::SimTime t) {
  for (std::size_t i = first; i < first + count; ++i) {
    machines_[i].AdvanceTo(t);
  }
}

double Fleet::MeanCombinedIndex() const noexcept {
  if (machines_.empty()) return 1.0;
  double sum = 0.0;
  for (const Machine& m : machines_) sum += m.spec().CombinedIndex();
  return sum / static_cast<double>(machines_.size());
}

Fleet::Totals Fleet::HardwareTotals() const noexcept {
  Totals totals;
  for (const Machine& m : machines_) {
    totals.ram_gb += m.spec().ram_mb / 1024.0;
    totals.disk_tb += m.spec().disk_gb / 1024.0;
    totals.sum_int_index += m.spec().int_index;
    totals.sum_fp_index += m.spec().fp_index;
  }
  return totals;
}

}  // namespace labmon::winsim
