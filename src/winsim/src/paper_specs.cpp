#include "labmon/winsim/paper_specs.hpp"

namespace labmon::winsim {

std::vector<LabSpec> PaperLabSpecs() {
  // Table 1 of the paper, column for column. INT/FP are the NBench indexes
  // measured by the authors with their DDC benchmark probe.
  return {
      {"L01", 16, "Pentium 4", 2.40, 512, 74.5, 30.5, 33.1},
      {"L02", 16, "Pentium 4", 2.40, 512, 74.5, 30.5, 33.1},
      {"L03", 16, "Pentium 4", 2.60, 512, 55.8, 39.3, 36.7},
      {"L04", 16, "Pentium 4", 2.40, 512, 59.5, 30.6, 33.2},
      {"L05", 16, "Pentium III", 1.10, 512, 14.5, 23.2, 19.9},
      {"L06", 16, "Pentium 4", 2.60, 256, 55.9, 39.2, 36.7},
      {"L07", 16, "Pentium 4", 1.50, 256, 37.3, 23.5, 22.1},
      {"L08", 16, "Pentium III", 1.10, 256, 18.6, 22.3, 18.6},
      {"L09", 9, "Pentium III", 0.65, 128, 14.5, 13.7, 12.1},
      {"L10", 16, "Pentium III", 0.65, 128, 14.5, 13.7, 12.2},
      {"L11", 16, "Pentium III", 0.65, 128, 14.5, 13.7, 12.2},
  };
}

std::vector<LabSpec> ScaledLabSpecs(int scale_labs) {
  const auto base = PaperLabSpecs();
  if (scale_labs <= 1) return base;
  std::vector<LabSpec> labs;
  labs.reserve(base.size() * static_cast<std::size_t>(scale_labs));
  for (int r = 0; r < scale_labs; ++r) {
    for (const LabSpec& lab : base) {
      LabSpec copy = lab;
      if (r > 0) copy.name = lab.name + "_" + std::to_string(r + 1);
      labs.push_back(std::move(copy));
    }
  }
  return labs;
}

Fleet MakePaperFleet(util::Rng& rng, const PriorLifeModel& prior,
                     int scale_labs) {
  const auto labs = ScaledLabSpecs(scale_labs);
  return Fleet(labs, prior, rng);
}

}  // namespace labmon::winsim
