#include "labmon/winsim/win32.hpp"

#include <cmath>

namespace labmon::winsim::win32 {

DWORD GetTickCount(const Machine& machine) noexcept {
  return static_cast<DWORD>(GetTickCount64(machine));  // truncation == wrap
}

ULONGLONG GetTickCount64(const Machine& machine) noexcept {
  return static_cast<ULONGLONG>(machine.UptimeSeconds()) * 1000ULL;
}

void GlobalMemoryStatus(const Machine& machine, MEMORYSTATUS* status) noexcept {
  const auto mem = machine.Memory();
  const auto swap = machine.Swap();
  status->dwLength = sizeof(MEMORYSTATUS);
  status->dwMemoryLoad = static_cast<DWORD>(std::lround(mem.load_percent));
  status->dwTotalPhys = static_cast<SIZE_T>(mem.total_mb) * 1024 * 1024;
  status->dwAvailPhys = static_cast<SIZE_T>(mem.avail_mb * 1024.0 * 1024.0);
  status->dwTotalPageFile = static_cast<SIZE_T>(swap.total_mb) * 1024 * 1024;
  status->dwAvailPageFile = static_cast<SIZE_T>(swap.avail_mb * 1024.0 * 1024.0);
  // Win2000's 2 GB user-mode virtual address space.
  status->dwTotalVirtual = SIZE_T{2} * 1024 * 1024 * 1024;
  status->dwAvailVirtual = status->dwTotalVirtual / 2;
}

int NtQuerySystemInformation(const Machine& machine,
                             SYSTEM_PERFORMANCE_INFORMATION* info) noexcept {
  // 100 ns ticks: seconds * 1e7.
  info->IdleProcessTime =
      static_cast<LONGLONG>(machine.IdleThreadSeconds() * 1e7);
  return 0;
}

int NtQuerySystemInformation(const Machine& machine,
                             SYSTEM_TIMEOFDAY_INFORMATION* info) noexcept {
  info->BootTime = machine.BootTime();
  info->CurrentTime = machine.now();
  return 0;
}

BOOL GetDiskFreeSpaceExA(const Machine& machine,
                         ULARGE_INTEGER* free_bytes_available,
                         ULARGE_INTEGER* total_bytes,
                         ULARGE_INTEGER* total_free_bytes) noexcept {
  const ULONGLONG free_bytes = machine.DiskFreeBytes();
  const ULONGLONG total = machine.spec().DiskBytes();
  if (free_bytes_available) free_bytes_available->QuadPart = free_bytes;
  if (total_bytes) total_bytes->QuadPart = total;
  if (total_free_bytes) total_free_bytes->QuadPart = free_bytes;
  return TRUE_;
}

BOOL WTSQuerySessionInformation(const Machine& machine, std::string* user_name,
                                LONGLONG* logon_time) {
  if (!machine.Session().has_value()) return FALSE_;
  if (user_name) *user_name = machine.Session()->user;
  if (logon_time) *logon_time = machine.Session()->logon_time;
  return TRUE_;
}

DWORD GetIfEntry(const Machine& machine, MIB_IFROW* row) noexcept {
  const auto net = machine.Network();
  row->InOctets64 = net.recv_bytes;
  row->OutOctets64 = net.sent_bytes;
  row->dwInOctets = static_cast<DWORD>(net.recv_bytes);    // 32-bit wrap
  row->dwOutOctets = static_cast<DWORD>(net.sent_bytes);
  return 0;  // NO_ERROR
}

}  // namespace labmon::winsim::win32
