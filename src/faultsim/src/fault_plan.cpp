#include "labmon/faultsim/fault_plan.hpp"

#include <algorithm>

#include "labmon/util/csv.hpp"
#include "labmon/util/ini.hpp"

namespace labmon::faultsim {

const char* FaultKindName(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLabOutage: return "lab_outage";
    case FaultKind::kMachineCrash: return "machine_crash";
    case FaultKind::kMachineHang: return "machine_hang";
    case FaultKind::kTransientError: return "transient_error";
    case FaultKind::kNicCounterReset: return "nic_reset";
    case FaultKind::kWireTruncation: return "wire_truncation";
    case FaultKind::kWireCorruption: return "wire_corruption";
    case FaultKind::kStragglerLatency: return "straggler_latency";
    case FaultKind::kArchiveWriteFailure: return "archive_write_failure";
  }
  return "unknown";
}

bool StochasticModel::Any() const noexcept {
  return transient_error_prob > 0.0 || hang_prob > 0.0 ||
         straggler_prob > 0.0 || wire_truncation_prob > 0.0 ||
         wire_corruption_prob > 0.0 || nic_reset_prob > 0.0 ||
         archive_write_failure_prob > 0.0;
}

bool FaultPlan::Active() const noexcept {
  return enabled && (stochastic.Any() || !outages.empty() ||
                     !crashes.empty() || !nic_resets.empty());
}

namespace {

/// Scenario-section parser state: scripted entries are keyed by an
/// arbitrary suffix ("outage.switch42.lab"), collected in document order.
template <typename T>
T& EntryFor(std::vector<std::string>& names, std::vector<T>& entries,
            const std::string& name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return entries[i];
  }
  names.push_back(name);
  entries.emplace_back();
  return entries.back();
}

}  // namespace

util::Result<FaultPlan> ParseFaultPlan(const std::string& text) {
  using R = util::Result<FaultPlan>;
  auto ini = util::IniFile::Parse(text);
  if (!ini.ok()) return R::Err(ini.error());
  const util::IniFile& file = ini.value();

  FaultPlan plan;
  plan.enabled = true;  // a plan file exists to be used
  std::vector<std::string> outage_names;
  std::vector<std::string> crash_names;
  std::vector<std::string> reset_names;

  bool ok = true;
  const auto f64 = [&](const std::string& key, double fallback) {
    return file.GetDouble(key, fallback, &ok);
  };
  const auto i64 = [&](const std::string& key, std::int64_t fallback) {
    return file.GetInt(key, fallback, &ok);
  };

  for (const std::string& key : file.keys()) {
    const auto dot = key.find('.');
    const std::string section = dot == std::string::npos ? "" : key.substr(0, dot);
    ok = true;
    if (section == "plan") {
      const std::string field = key.substr(dot + 1);
      if (field == "enabled") {
        plan.enabled = file.GetBool(key, true, &ok);
      } else if (field == "seed") {
        plan.seed = static_cast<std::uint64_t>(i64(key, 0));
      } else if (field == "timeout_latency_mean_s") {
        plan.timeout_latency_mean_s = f64(key, plan.timeout_latency_mean_s);
      } else if (field == "timeout_latency_sigma_s") {
        plan.timeout_latency_sigma_s = f64(key, plan.timeout_latency_sigma_s);
      } else if (field == "timeout_latency_min_s") {
        plan.timeout_latency_min_s = f64(key, plan.timeout_latency_min_s);
      } else if (field == "error_latency_mean_s") {
        plan.error_latency_mean_s = f64(key, plan.error_latency_mean_s);
      } else if (field == "error_latency_sigma_s") {
        plan.error_latency_sigma_s = f64(key, plan.error_latency_sigma_s);
      } else if (field == "error_latency_min_s") {
        plan.error_latency_min_s = f64(key, plan.error_latency_min_s);
      } else {
        return R::Err("unknown fault-plan key: " + key);
      }
    } else if (section == "stochastic") {
      const std::string field = key.substr(dot + 1);
      StochasticModel& m = plan.stochastic;
      if (field == "transient_error_prob") {
        m.transient_error_prob = f64(key, 0.0);
      } else if (field == "hang_prob") {
        m.hang_prob = f64(key, 0.0);
      } else if (field == "hang_seconds_mean") {
        m.hang_seconds_mean = f64(key, m.hang_seconds_mean);
      } else if (field == "hang_seconds_sigma") {
        m.hang_seconds_sigma = f64(key, m.hang_seconds_sigma);
      } else if (field == "straggler_prob") {
        m.straggler_prob = f64(key, 0.0);
      } else if (field == "straggler_multiplier_lo") {
        m.straggler_multiplier_lo = f64(key, m.straggler_multiplier_lo);
      } else if (field == "straggler_multiplier_hi") {
        m.straggler_multiplier_hi = f64(key, m.straggler_multiplier_hi);
      } else if (field == "wire_truncation_prob") {
        m.wire_truncation_prob = f64(key, 0.0);
      } else if (field == "wire_corruption_prob") {
        m.wire_corruption_prob = f64(key, 0.0);
      } else if (field == "wire_corruption_max_bytes") {
        m.wire_corruption_max_bytes = static_cast<int>(i64(key, 4));
      } else if (field == "nic_reset_prob") {
        m.nic_reset_prob = f64(key, 0.0);
      } else if (field == "archive_write_failure_prob") {
        m.archive_write_failure_prob = f64(key, 0.0);
      } else {
        return R::Err("unknown fault-plan key: " + key);
      }
    } else if (section == "outage" || section == "crash" ||
               section == "nic_reset") {
      // "outage.<name>.<field>"
      const auto last = key.rfind('.');
      if (last == dot) return R::Err("scenario key needs a name: " + key);
      const std::string name = key.substr(0, last);
      const std::string field = key.substr(last + 1);
      if (section == "outage") {
        ScriptedOutage& o = EntryFor(outage_names, plan.outages, name);
        if (field == "lab") {
          if (const auto v = file.Get(key)) o.lab = *v;
        } else if (field == "start") {
          o.start = i64(key, 0);
        } else if (field == "end") {
          o.end = i64(key, 0);
        } else {
          return R::Err("unknown fault-plan key: " + key);
        }
      } else if (section == "crash") {
        ScriptedCrash& c = EntryFor(crash_names, plan.crashes, name);
        if (field == "machine") {
          c.machine = static_cast<std::size_t>(i64(key, 0));
        } else if (field == "at") {
          c.at = i64(key, 0);
        } else if (field == "down_seconds") {
          c.down_seconds = i64(key, 0);
        } else {
          return R::Err("unknown fault-plan key: " + key);
        }
      } else {
        ScriptedNicReset& n = EntryFor(reset_names, plan.nic_resets, name);
        if (field == "machine") {
          n.machine = static_cast<std::size_t>(i64(key, 0));
        } else if (field == "at") {
          n.at = i64(key, 0);
        } else {
          return R::Err("unknown fault-plan key: " + key);
        }
      }
    } else {
      return R::Err("unknown fault-plan key: " + key);
    }
    if (!ok) return R::Err("unparsable value for fault-plan key: " + key);
  }
  return plan;
}

util::Result<FaultPlan> LoadFaultPlan(const std::string& path) {
  auto text = util::ReadTextFile(path);
  if (!text.ok()) return util::Result<FaultPlan>::Err(text.error());
  return ParseFaultPlan(text.value());
}

void TruncatePayload(util::Rng& rng, std::string* payload) {
  if (payload->empty()) return;
  const auto cut = static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(payload->size()) - 1));
  payload->resize(cut);
}

void CorruptPayload(util::Rng& rng, int max_bytes, std::string* payload) {
  if (payload->empty()) return;
  const int flips =
      static_cast<int>(rng.UniformInt(1, std::max(1, max_bytes)));
  for (int k = 0; k < flips; ++k) {
    const auto pos = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(payload->size()) - 1));
    (*payload)[pos] = static_cast<char>(rng.UniformInt(1, 126));
  }
}

}  // namespace labmon::faultsim
