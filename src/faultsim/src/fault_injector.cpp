#include "labmon/faultsim/fault_injector.hpp"

#include <algorithm>
#include <limits>

namespace labmon::faultsim {

namespace {
constexpr const char* kInjectedCounterName = "labmon_faultsim_injected_total";
constexpr const char* kInjectedCounterHelp =
    "Faults injected by labmon::faultsim, by kind.";
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, obs::Registry* metrics)
    : plan_(std::move(plan)), active_(plan_.Active()), rng_(plan_.seed) {
  if (metrics != nullptr && active_) {
    for (std::size_t k = 0; k < kFaultKindCount; ++k) {
      counters_[k] = &metrics->GetCounter(
          kInjectedCounterName, kInjectedCounterHelp,
          {{"kind", FaultKindName(static_cast<FaultKind>(k))}});
    }
  }
}

void FaultInjector::BindFleet(const winsim::Fleet& fleet) {
  resolved_outages_.clear();
  for (const ScriptedOutage& outage : plan_.outages) {
    for (const winsim::LabInfo& lab : fleet.labs()) {
      if (lab.name == outage.lab) {
        resolved_outages_.push_back(
            {lab.first, lab.count, outage.start, outage.end});
        break;
      }
    }
  }
}

void FaultInjector::Count(FaultKind kind) noexcept {
  const auto k = static_cast<std::size_t>(kind);
  ++counts_[k];
  if (counters_[k] != nullptr) counters_[k]->Increment();
}

double FaultInjector::TimeoutLatency() noexcept {
  return std::max(plan_.timeout_latency_min_s,
                  rng_.Normal(plan_.timeout_latency_mean_s,
                              plan_.timeout_latency_sigma_s));
}

double FaultInjector::ErrorLatency() noexcept {
  return std::max(plan_.error_latency_min_s,
                  rng_.Normal(plan_.error_latency_mean_s,
                              plan_.error_latency_sigma_s));
}

TransportFault FaultInjector::OnAttempt(std::size_t machine_index,
                                        util::SimTime t) {
  TransportFault fault;
  if (!active_) return fault;

  for (const ScriptedCrash& crash : plan_.crashes) {
    if (machine_index == crash.machine && t >= crash.at &&
        t < crash.at + crash.down_seconds) {
      Count(FaultKind::kMachineCrash);
      fault.kind = TransportFault::Kind::kTimeout;
      fault.source = FaultKind::kMachineCrash;
      fault.latency_s = TimeoutLatency();
      fault.detail = "faultsim: host crashed";
      return fault;
    }
  }
  for (const ResolvedOutage& outage : resolved_outages_) {
    if (machine_index >= outage.first &&
        machine_index < outage.first + outage.count && t >= outage.start &&
        t < outage.end) {
      Count(FaultKind::kLabOutage);
      fault.kind = TransportFault::Kind::kTimeout;
      fault.source = FaultKind::kLabOutage;
      fault.latency_s = TimeoutLatency();
      fault.detail = "faultsim: lab switch outage";
      return fault;
    }
  }
  if (plan_.stochastic.hang_prob > 0.0 &&
      rng_.Bernoulli(plan_.stochastic.hang_prob)) {
    Count(FaultKind::kMachineHang);
    fault.kind = TransportFault::Kind::kTimeout;
    fault.source = FaultKind::kMachineHang;
    fault.latency_s =
        std::max(plan_.timeout_latency_min_s,
                 rng_.Normal(plan_.stochastic.hang_seconds_mean,
                             plan_.stochastic.hang_seconds_sigma));
    fault.detail = "faultsim: probe hung";
    return fault;
  }
  if (plan_.stochastic.transient_error_prob > 0.0 &&
      rng_.Bernoulli(plan_.stochastic.transient_error_prob)) {
    Count(FaultKind::kTransientError);
    fault.kind = TransportFault::Kind::kError;
    fault.source = FaultKind::kTransientError;
    fault.latency_s = ErrorLatency();
    fault.detail = "faultsim: RPC server busy";
    return fault;
  }
  return fault;
}

void FaultInjector::BeforeProbe(winsim::Machine& machine, util::SimTime t) {
  if (!active_ || !machine.powered_on()) return;
  bool reset = false;
  for (ScriptedNicReset& scripted : plan_.nic_resets) {
    // `at` doubles as the fired flag: a reset that fired is disarmed by
    // pushing it past any representable probe instant.
    if (machine.id() == scripted.machine && t >= scripted.at) {
      scripted.at = std::numeric_limits<util::SimTime>::max();
      reset = true;
    }
  }
  if (plan_.stochastic.nic_reset_prob > 0.0 &&
      rng_.Bernoulli(plan_.stochastic.nic_reset_prob)) {
    reset = true;
  }
  if (reset) {
    Count(FaultKind::kNicCounterReset);
    machine.ResetNetCounters();
  }
}

WireFault FaultInjector::PlanWire() {
  WireFault wire;
  if (!active_) return wire;
  const StochasticModel& m = plan_.stochastic;
  if (m.wire_truncation_prob > 0.0 && rng_.Bernoulli(m.wire_truncation_prob)) {
    wire.kind = WireFault::Kind::kTruncate;
  } else if (m.wire_corruption_prob > 0.0 &&
             rng_.Bernoulli(m.wire_corruption_prob)) {
    wire.kind = WireFault::Kind::kCorrupt;
  }
  if (m.straggler_prob > 0.0 && rng_.Bernoulli(m.straggler_prob)) {
    Count(FaultKind::kStragglerLatency);
    wire.latency_multiplier =
        rng_.Uniform(m.straggler_multiplier_lo, m.straggler_multiplier_hi);
  }
  return wire;
}

void FaultInjector::ApplyWire(const WireFault& wire, std::string* payload) {
  switch (wire.kind) {
    case WireFault::Kind::kNone:
      break;
    case WireFault::Kind::kTruncate:
      Count(FaultKind::kWireTruncation);
      TruncatePayload(rng_, payload);
      break;
    case WireFault::Kind::kCorrupt:
      Count(FaultKind::kWireCorruption);
      CorruptPayload(rng_, plan_.stochastic.wire_corruption_max_bytes,
                     payload);
      break;
  }
}

bool FaultInjector::FailArchiveWrite() {
  if (!active_ || plan_.stochastic.archive_write_failure_prob <= 0.0) {
    return false;
  }
  if (rng_.Bernoulli(plan_.stochastic.archive_write_failure_prob)) {
    Count(FaultKind::kArchiveWriteFailure);
    return true;
  }
  return false;
}

std::uint64_t FaultInjector::injected_total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts_) total += c;
  return total;
}

}  // namespace labmon::faultsim
