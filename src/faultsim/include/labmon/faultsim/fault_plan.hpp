// FaultPlan — the declarative description of everything that can go wrong.
//
// The paper's DDC only survived its 77 days because the fleet constantly
// misbehaved: powered-off hosts, psexec timeouts, RPC blips, and iterations
// that overran the 15-minute budget (6,883 logged vs 7,392 ideal). A
// FaultPlan scripts that reality deterministically: correlated lab-wide
// switch outages, machine crashes/hangs mid-iteration, NIC counter resets,
// wire-level stdout truncation/corruption, straggler latency spikes,
// archive write failures, and an extra stochastic RPC-blip rate — all
// seeded, so the same plan + seed replays the same incident sequence
// bit-for-bit. A default-constructed plan is inert: zero-fault runs stay
// byte-identical to a build without the fault layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "labmon/util/expected.hpp"
#include "labmon/util/rng.hpp"
#include "labmon/util/time.hpp"

namespace labmon::faultsim {

/// Every fault family the injector can fire. Kind names label the
/// `labmon_faultsim_injected_total` metric and the plan-file sections.
enum class FaultKind : std::uint8_t {
  kLabOutage = 0,        ///< scripted lab-wide switch outage (correlated timeouts)
  kMachineCrash,         ///< scripted crash: host unreachable for a window
  kMachineHang,          ///< stochastic hang: one long-latency timeout
  kTransientError,       ///< stochastic extra RPC blip (error, short latency)
  kNicCounterReset,      ///< since-boot NIC totals reset under the probe
  kWireTruncation,       ///< probe stdout cut short on the wire
  kWireCorruption,       ///< probe stdout bytes flipped on the wire
  kStragglerLatency,     ///< successful attempt, multiplied latency
  kArchiveWriteFailure,  ///< archive append lost at the coordinator
};
inline constexpr std::size_t kFaultKindCount = 9;

/// Stable lowercase name of a fault kind ("lab_outage", ...).
[[nodiscard]] const char* FaultKindName(FaultKind kind) noexcept;

/// Scripted lab-wide switch outage: every probe against a machine of `lab`
/// inside [start, end) times out, no matter the machine's power state.
struct ScriptedOutage {
  std::string lab;
  util::SimTime start = 0;
  util::SimTime end = 0;
};

/// Scripted machine crash/hang: the host stops answering at `at` and stays
/// unreachable for `down_seconds` (someone eventually reboots it). The
/// behavioural simulation is not touched — ground truth and observation
/// diverge, exactly like a real crashed box the driver believes is up.
struct ScriptedCrash {
  std::size_t machine = 0;
  util::SimTime at = 0;
  util::SimTime down_seconds = 30 * util::kSecondsPerMinute;
};

/// Scripted NIC counter reset: the machine's since-boot byte totals drop to
/// zero just before the probe at/after `at` reads them (driver reload /
/// 32-bit counter wrap — the paper's probes saw both).
struct ScriptedNicReset {
  std::size_t machine = 0;
  util::SimTime at = 0;
};

/// Per-attempt stochastic fault rates. All default to zero (inert).
struct StochasticModel {
  double transient_error_prob = 0.0;   ///< extra RPC-busy blips
  double hang_prob = 0.0;              ///< attempt hangs, then times out
  double hang_seconds_mean = 120.0;
  double hang_seconds_sigma = 30.0;
  double straggler_prob = 0.0;         ///< success with multiplied latency
  double straggler_multiplier_lo = 4.0;
  double straggler_multiplier_hi = 16.0;
  double wire_truncation_prob = 0.0;   ///< stdout cut at a random offset
  double wire_corruption_prob = 0.0;   ///< stdout bytes flipped
  int wire_corruption_max_bytes = 4;   ///< flips per corrupted payload
  double nic_reset_prob = 0.0;         ///< counter reset under the probe
  double archive_write_failure_prob = 0.0;

  [[nodiscard]] bool Any() const noexcept;
};

/// A complete, seedable fault scenario. Off by default.
struct FaultPlan {
  bool enabled = false;
  std::uint64_t seed = 0xfa017ca5e;

  /// Latency of injected unreachable-host timeouts (outage/crash windows);
  /// defaults mirror ExecPolicy's dead-host connect timeouts.
  double timeout_latency_mean_s = 8.0;
  double timeout_latency_sigma_s = 2.0;
  double timeout_latency_min_s = 3.0;
  /// Latency of injected RPC blips; defaults mirror live-host latencies.
  double error_latency_mean_s = 1.1;
  double error_latency_sigma_s = 0.4;
  double error_latency_min_s = 0.3;

  StochasticModel stochastic;
  std::vector<ScriptedOutage> outages;
  std::vector<ScriptedCrash> crashes;
  std::vector<ScriptedNicReset> nic_resets;

  /// True when the plan can actually fire something. An injector built from
  /// an inactive plan is a strict no-op (zero-fault bit-identity).
  [[nodiscard]] bool Active() const noexcept;
};

/// Parses a fault plan from INI text. Sections:
///   [plan]        enabled, seed, *_latency_* overrides
///   [stochastic]  every StochasticModel field by name
///   [outage.N]    lab, start, end                (N = any distinct suffix)
///   [crash.N]     machine, at, down_seconds
///   [nic_reset.N] machine, at
/// Times accept plain seconds. Unknown keys fail the parse (typo safety).
[[nodiscard]] util::Result<FaultPlan> ParseFaultPlan(const std::string& text);

/// Reads and parses a fault plan file.
[[nodiscard]] util::Result<FaultPlan> LoadFaultPlan(const std::string& path);

// --- wire corruption model --------------------------------------------------
// Shared with the probe fuzz suite so tests feed the parsers exactly the
// bytes the injector would put on the wire.

/// Truncates `payload` at a uniform offset in [0, size). Empty payloads are
/// left alone. Draws exactly one value from `rng`.
void TruncatePayload(util::Rng& rng, std::string* payload);

/// Flips 1..max_bytes bytes of `payload` to uniform printable garbage
/// (mirrors psexec capture corruption, which stayed in the text range).
/// Empty payloads are left alone.
void CorruptPayload(util::Rng& rng, int max_bytes, std::string* payload);

}  // namespace labmon::faultsim
