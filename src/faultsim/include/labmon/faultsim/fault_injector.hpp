// FaultInjector — executes a FaultPlan at the winsim::Machine /
// ddc::RemoteExecutor boundary.
//
// The injector owns its own deterministic RNG stream (seeded from the
// plan), so a null or inactive injector leaves the transport's RNG draws —
// and therefore the collected trace — bit-identical to a build without the
// fault layer. All decisions are drawn in a fixed per-attempt protocol
// (transport fate → in-machine faults → wire faults), which makes a run
// with a given plan + seed exactly reproducible.
//
// The injector is not thread-safe. The coordinator's parallel mode is a
// simulated schedule on one thread, and the sharded experiment gives every
// lab its own injector (a plan copy re-seeded with the lab's kFaults
// substream), so no injector instance is ever shared across threads.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "labmon/faultsim/fault_plan.hpp"
#include "labmon/obs/registry.hpp"
#include "labmon/util/rng.hpp"
#include "labmon/util/time.hpp"
#include "labmon/winsim/fleet.hpp"

namespace labmon::faultsim {

/// Transport-level fate of one attempt, decided before the real transport
/// model runs. kNone means "no injected transport fault — proceed".
struct TransportFault {
  enum class Kind : std::uint8_t { kNone, kTimeout, kError };
  Kind kind = Kind::kNone;
  FaultKind source = FaultKind::kLabOutage;  ///< meaningful when kind != kNone
  double latency_s = 0.0;
  const char* detail = "";  ///< stderr fragment for the outcome
};

/// Wire-level fate of one successful attempt.
struct WireFault {
  enum class Kind : std::uint8_t { kNone, kTruncate, kCorrupt };
  Kind kind = Kind::kNone;
  double latency_multiplier = 1.0;  ///< straggler spike (1.0 = none)
};

class FaultInjector {
 public:
  /// Builds an injector for `plan`. `metrics` (optional) receives
  /// `labmon_faultsim_injected_total{kind=...}` counters.
  explicit FaultInjector(FaultPlan plan, obs::Registry* metrics = nullptr);

  /// Resolves scripted lab names against the fleet's lab directory so
  /// lab-wide outages know their machine index ranges. Unknown lab names
  /// are ignored (the scenario simply never fires). Call before collecting.
  void BindFleet(const winsim::Fleet& fleet);

  /// False for a disabled/empty plan: callers skip the whole protocol and
  /// the transport path is untouched.
  [[nodiscard]] bool active() const noexcept { return active_; }

  // --- per-attempt protocol (the executor calls these, in order) ---------

  /// Step 1: transport fate of the attempt against `machine_index` at `t`.
  /// Scripted crash/outage windows fire first, then stochastic hang and
  /// transient-error draws.
  [[nodiscard]] TransportFault OnAttempt(std::size_t machine_index,
                                         util::SimTime t);

  /// Step 2, after a successful transport connect and before the probe
  /// reads the machine: in-machine faults (NIC counter resets).
  void BeforeProbe(winsim::Machine& machine, util::SimTime t);

  /// Step 3, after the probe ran: decides wire truncation/corruption and
  /// straggler latency for this attempt. A non-kNone wire kind obliges the
  /// caller to ship text (a corrupted wire has no structured form).
  [[nodiscard]] WireFault PlanWire();

  /// Applies a planned wire fault to the captured payload.
  void ApplyWire(const WireFault& wire, std::string* payload);

  // --- archive boundary ---------------------------------------------------

  /// True when this archive append should be dropped (disk-full / IO error
  /// at the coordinator site).
  [[nodiscard]] bool FailArchiveWrite();

  // --- introspection ------------------------------------------------------

  [[nodiscard]] std::uint64_t injected_total() const noexcept;
  [[nodiscard]] std::uint64_t injected(FaultKind kind) const noexcept {
    return counts_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  struct ResolvedOutage {
    std::size_t first = 0;
    std::size_t count = 0;
    util::SimTime start = 0;
    util::SimTime end = 0;
  };

  void Count(FaultKind kind) noexcept;
  [[nodiscard]] double TimeoutLatency() noexcept;
  [[nodiscard]] double ErrorLatency() noexcept;

  FaultPlan plan_;
  bool active_ = false;
  util::Rng rng_;
  std::vector<ResolvedOutage> resolved_outages_;
  std::array<std::uint64_t, kFaultKindCount> counts_{};
  std::array<obs::Counter*, kFaultKindCount> counters_{};
};

}  // namespace labmon::faultsim
