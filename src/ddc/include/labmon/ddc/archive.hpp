// OutputArchive — DDC's raw-output storage (Figure 1, step 3: "these
// results are post-processed at the coordinator's and stored").
//
// Every successful probe execution is appended, timestamped, to a
// per-machine log under the archive directory; a MANIFEST file records the
// machine name mapping. Archives are append-only and replayable: a stored
// collection can be re-analysed later without re-running it (see
// ReplayArchive), which is how the study's data outlived the experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "labmon/ddc/coordinator.hpp"
#include "labmon/util/expected.hpp"

namespace labmon::ddc {

/// A sink that persists every successful probe output to disk.
class OutputArchive final : public SampleSink {
 public:
  /// Creates/opens an archive rooted at `directory` for `machine_names`.
  /// The directory is created if missing; existing logs are appended to.
  [[nodiscard]] static util::Result<std::unique_ptr<OutputArchive>> Open(
      const std::string& directory,
      const std::vector<std::string>& machine_names);

  ~OutputArchive() override;
  OutputArchive(const OutputArchive&) = delete;
  OutputArchive& operator=(const OutputArchive&) = delete;

  void OnSample(const CollectedSample& sample) override;
  void OnIterationEnd(std::uint64_t iteration, util::SimTime start_time,
                      util::SimTime end_time) override;

  /// Flushes and closes all log files (also done by the destructor).
  void Close();

  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] std::uint64_t entries_written() const noexcept {
    return entries_;
  }

 private:
  OutputArchive(std::string directory, std::vector<std::string> names);

  std::string directory_;
  std::vector<std::string> machine_names_;
  std::uint64_t entries_ = 0;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One replayed archive entry.
struct ArchiveEntry {
  std::size_t machine_index = 0;
  std::uint64_t iteration = 0;
  util::SimTime t = 0;
  std::string stdout_text;
};

/// Streams every stored entry of one machine's log in order. Returns the
/// number of entries replayed, or an error.
[[nodiscard]] util::Result<std::uint64_t> ReplayMachineLog(
    const std::string& directory, std::size_t machine_index,
    const std::function<void(const ArchiveEntry&)>& fn);

/// Reads the archive manifest (machine index -> name).
[[nodiscard]] util::Result<std::vector<std::string>> ReadManifest(
    const std::string& directory);

}  // namespace labmon::ddc
