// OutputArchive — DDC's raw-output storage (Figure 1, step 3: "these
// results are post-processed at the coordinator's and stored").
//
// Every successful probe execution is appended, timestamped, to a
// per-machine log under the archive directory; a MANIFEST file records the
// machine name mapping. Archives are append-only and replayable: a stored
// collection can be re-analysed later without re-running it (see
// ReplayArchive), which is how the study's data outlived the experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "labmon/ddc/coordinator.hpp"
#include "labmon/util/expected.hpp"

namespace labmon::faultsim {
class FaultInjector;
}  // namespace labmon::faultsim

namespace labmon::ddc {

/// A sink that persists every successful probe output to disk.
class OutputArchive final : public SampleSink {
 public:
  /// Creates/opens an archive rooted at `directory` for `machine_names`.
  /// The directory is created if missing; existing logs are appended to.
  /// `faults` (optional, not owned) lets labmon::faultsim drop appends to
  /// model coordinator-site IO failures; a dropped append is reported to
  /// the coordinator as a rejected sample so retries can re-fetch it.
  [[nodiscard]] static util::Result<std::unique_ptr<OutputArchive>> Open(
      const std::string& directory,
      const std::vector<std::string>& machine_names,
      faultsim::FaultInjector* faults = nullptr);

  ~OutputArchive() override;
  OutputArchive(const OutputArchive&) = delete;
  OutputArchive& operator=(const OutputArchive&) = delete;

  SampleVerdict OnSample(const CollectedSample& sample) override;
  void OnIterationEnd(std::uint64_t iteration, util::SimTime start_time,
                      util::SimTime end_time) override;

  /// Flushes and closes all log files (also done by the destructor).
  void Close();

  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] std::uint64_t entries_written() const noexcept {
    return entries_;
  }
  /// Appends dropped by injected archive-write failures.
  [[nodiscard]] std::uint64_t writes_failed() const noexcept {
    return writes_failed_;
  }

 private:
  OutputArchive(std::string directory, std::vector<std::string> names,
                faultsim::FaultInjector* faults);

  std::string directory_;
  std::vector<std::string> machine_names_;
  faultsim::FaultInjector* faults_ = nullptr;
  std::uint64_t entries_ = 0;
  std::uint64_t writes_failed_ = 0;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One replayed archive entry.
struct ArchiveEntry {
  std::size_t machine_index = 0;
  std::uint64_t iteration = 0;
  util::SimTime t = 0;
  std::string stdout_text;
};

/// Streams every stored entry of one machine's log in order. Returns the
/// number of entries replayed, or an error.
[[nodiscard]] util::Result<std::uint64_t> ReplayMachineLog(
    const std::string& directory, std::size_t machine_index,
    const std::function<void(const ArchiveEntry&)>& fn);

/// Reads the archive manifest (machine index -> name).
[[nodiscard]] util::Result<std::vector<std::string>> ReadManifest(
    const std::string& directory);

}  // namespace labmon::ddc
