// W32Probe — the monitoring probe of the study (§3.1) and its output parser.
//
// The emitted text mirrors what the real probe printed after querying the
// Win32 API: static metrics (processor, OS, memory sizes, disk identity,
// MACs) and dynamic metrics (boot time/uptime, idle-thread time,
// dwMemoryLoad, swap load, free disk, SMART counters, NIC totals, and the
// interactive session if one exists). Loads are emitted as integer percent
// exactly like dwMemoryLoad.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "labmon/ddc/probe.hpp"
#include "labmon/util/expected.hpp"

namespace labmon::ddc {

/// Fully parsed W32Probe output.
struct W32Sample {
  // Static metrics.
  std::string host;
  std::string os;
  std::string cpu_model;
  int cpu_mhz = 0;
  int ram_mb = 0;
  int swap_mb = 0;
  std::string disk_serial;
  std::uint64_t disk_total_b = 0;
  std::string mac;

  // Dynamic metrics.
  std::int64_t boot_time = 0;       ///< seconds since experiment epoch
  std::int64_t uptime_s = 0;
  double cpu_idle_s = 0.0;          ///< idle-thread seconds since boot
  int mem_load_pct = 0;             ///< dwMemoryLoad (integer percent)
  int swap_load_pct = 0;
  std::uint64_t disk_free_b = 0;
  std::uint64_t smart_power_on_hours = 0;
  std::uint64_t smart_power_cycles = 0;
  std::uint64_t net_sent_b = 0;     ///< total bytes since boot
  std::uint64_t net_recv_b = 0;

  // Interactive session (absent when nobody is logged on).
  std::optional<std::string> session_user;
  std::int64_t session_logon_time = 0;

  [[nodiscard]] bool HasSession() const noexcept {
    return session_user.has_value();
  }
  /// Seconds the session has been open at probe time `t`.
  [[nodiscard]] std::int64_t SessionSeconds(std::int64_t t) const noexcept {
    return HasSession() ? t - session_logon_time : 0;
  }

  /// Field-wise equality — the sink's structured/text cross-check compares
  /// whole samples.
  [[nodiscard]] friend bool operator==(const W32Sample&,
                                       const W32Sample&) = default;
};

/// The probe itself.
class W32Probe final : public Probe {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "w32probe.exe";
  }
  [[nodiscard]] std::string Execute(winsim::Machine& machine,
                                    util::SimTime t) override;
  [[nodiscard]] bool ExecuteInto(winsim::Machine& machine, util::SimTime t,
                                 W32Sample* out) override;
};

/// Renders a machine's state as W32Probe stdout (what Execute emits),
/// appending to `out` without clearing it. With a caller-owned reused
/// buffer this is allocation-free once the capacity is warm; the emitted
/// bytes are pinned identical to the legacy ostringstream formatter by
/// test_w32_probe_golden.
void FormatW32ProbeOutput(const winsim::Machine& machine, std::string& out);

/// Convenience overload returning a fresh string.
[[nodiscard]] std::string FormatW32ProbeOutput(const winsim::Machine& machine);

/// Structured fast path: fills `out` with exactly the sample that
/// ParseW32ProbeOutput(FormatW32ProbeOutput(machine)) would produce — the
/// double field is quantised through the same "%.2f" text rendering so the
/// values are bit-identical, not merely close.
void FillW32Sample(const winsim::Machine& machine, W32Sample* out);

/// Parses W32Probe stdout; fails on missing/garbled mandatory fields.
/// Single-pass line scanner: no allocations beyond the string fields of the
/// result. Tolerates reordered lines, unknown keys and extra whitespace;
/// the first occurrence of a duplicated key wins.
[[nodiscard]] util::Result<W32Sample> ParseW32ProbeOutput(
    std::string_view text);

/// Same parse into a caller-owned sample, reusing its string capacity — the
/// collect hot path passes a scratch sample so the steady-state parse is
/// allocation-free. `out` is reset to fresh-sample defaults first; after a
/// failed parse it is valid but unspecified.
[[nodiscard]] util::Result<bool> ParseW32ProbeOutput(std::string_view text,
                                                     W32Sample* out);

}  // namespace labmon::ddc
