// W32Probe — the monitoring probe of the study (§3.1) and its output parser.
//
// The emitted text mirrors what the real probe printed after querying the
// Win32 API: static metrics (processor, OS, memory sizes, disk identity,
// MACs) and dynamic metrics (boot time/uptime, idle-thread time,
// dwMemoryLoad, swap load, free disk, SMART counters, NIC totals, and the
// interactive session if one exists). Loads are emitted as integer percent
// exactly like dwMemoryLoad.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "labmon/ddc/probe.hpp"
#include "labmon/util/expected.hpp"

namespace labmon::ddc {

/// Fully parsed W32Probe output.
struct W32Sample {
  // Static metrics.
  std::string host;
  std::string os;
  std::string cpu_model;
  int cpu_mhz = 0;
  int ram_mb = 0;
  int swap_mb = 0;
  std::string disk_serial;
  std::uint64_t disk_total_b = 0;
  std::string mac;

  // Dynamic metrics.
  std::int64_t boot_time = 0;       ///< seconds since experiment epoch
  std::int64_t uptime_s = 0;
  double cpu_idle_s = 0.0;          ///< idle-thread seconds since boot
  int mem_load_pct = 0;             ///< dwMemoryLoad (integer percent)
  int swap_load_pct = 0;
  std::uint64_t disk_free_b = 0;
  std::uint64_t smart_power_on_hours = 0;
  std::uint64_t smart_power_cycles = 0;
  std::uint64_t net_sent_b = 0;     ///< total bytes since boot
  std::uint64_t net_recv_b = 0;

  // Interactive session (absent when nobody is logged on).
  std::optional<std::string> session_user;
  std::int64_t session_logon_time = 0;

  [[nodiscard]] bool HasSession() const noexcept {
    return session_user.has_value();
  }
  /// Seconds the session has been open at probe time `t`.
  [[nodiscard]] std::int64_t SessionSeconds(std::int64_t t) const noexcept {
    return HasSession() ? t - session_logon_time : 0;
  }
};

/// The probe itself.
class W32Probe final : public Probe {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "w32probe.exe";
  }
  [[nodiscard]] std::string Execute(winsim::Machine& machine,
                                    util::SimTime t) override;
};

/// Renders a machine's state as W32Probe stdout (what Execute emits).
[[nodiscard]] std::string FormatW32ProbeOutput(const winsim::Machine& machine);

/// Parses W32Probe stdout; fails on missing/garbled mandatory fields.
[[nodiscard]] util::Result<W32Sample> ParseW32ProbeOutput(
    const std::string& text);

}  // namespace labmon::ddc
