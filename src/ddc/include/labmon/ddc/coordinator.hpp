// The DDC coordinator (§3, Figure 1): schedules periodic probe executions
// over the machine set, captures probe output, and feeds it to
// post-collect code (the sink).
//
// Two execution schedules are modelled:
//  * kSequential  — what the study ran: one psexec at a time over all 169
//    machines. Offline-host timeouts make iterations overrun the 15-minute
//    period, which is why fewer iterations complete than the calendar allows.
//  * kParallelSimulated — a k-worker pool (simulated schedule, deterministic):
//    the ablation benchmark uses it to show how parallel probing removes the
//    overrun problem.
//
// Collection is retry-hardened: CollectOnce wraps each machine's attempt in
// a bounded RetryPolicy loop (exponential backoff + jitter, capped by a
// per-iteration wall-clock budget), so transient RPC blips and corrupt wire
// payloads can be recovered within the iteration instead of leaving a hole
// in the trace. Defaults keep the paper's single-attempt behaviour and a
// bit-identical trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "labmon/ddc/executor.hpp"
#include "labmon/ddc/probe.hpp"
#include "labmon/ddc/w32_probe.hpp"
#include "labmon/obs/registry.hpp"
#include "labmon/obs/span.hpp"
#include "labmon/util/function_ref.hpp"
#include "labmon/util/rng.hpp"
#include "labmon/util/time.hpp"
#include "labmon/winsim/fleet.hpp"

namespace labmon::faultsim {
class FaultInjector;
}  // namespace labmon::faultsim

namespace labmon::ddc {

/// One probe attempt as delivered to post-collect code.
struct CollectedSample {
  std::size_t machine_index = 0;
  std::uint64_t iteration = 0;
  util::SimTime attempt_time = 0;  ///< instant the execution started
  std::uint32_t attempt_number = 1;  ///< 1-based within this collection
  bool recovered = false;  ///< successful after at least one failed attempt
  ExecOutcome outcome;
  /// Structured fast path: when non-null, the probe filled this sample
  /// in-process and `outcome.stdout_text` is empty except on cross-check
  /// attempts (see CoordinatorConfig::structured_crosscheck_period). Points
  /// at coordinator-owned scratch, valid only for the OnSample call.
  const W32Sample* structured = nullptr;
};

/// The sink's judgement of a delivered sample. kRejected means "the payload
/// was unusable" (parse failure / corrupt wire bytes); the coordinator may
/// retry such attempts under RetryPolicy::retry_rejects. Failed transport
/// outcomes are kAccepted — there is nothing wrong with the *payload*.
enum class SampleVerdict : std::uint8_t { kAccepted, kRejected };

/// Post-collect interface ("post-collecting code … executed at the
/// coordinator site, immediately after a successful remote execution").
class SampleSink {
 public:
  virtual ~SampleSink() = default;
  virtual SampleVerdict OnSample(const CollectedSample& sample) = 0;
  /// Called when an iteration over all machines completes.
  virtual void OnIterationEnd(std::uint64_t iteration,
                              util::SimTime start_time,
                              util::SimTime end_time) {
    (void)iteration;
    (void)start_time;
    (void)end_time;
  }
};

/// Coordinator configuration.
struct CoordinatorConfig {
  util::SimTime period = 15 * util::kSecondsPerMinute;
  enum class Mode : std::uint8_t { kSequential, kParallelSimulated };
  Mode mode = Mode::kSequential;
  int workers = 8;  ///< parallel-simulated worker count
  /// Machine range this coordinator sweeps: [first_machine, first_machine +
  /// machine_count). machine_count == 0 means the whole fleet. The sharded
  /// experiment gives each lab its own coordinator over the lab's range.
  std::size_t first_machine = 0;
  std::size_t machine_count = 0;
  /// Iteration scheduling. The paper's coordinator (false) starts the next
  /// sweep at `max(start + period, end_of_sweep)` — an overrunning sweep
  /// *skips* period boundaries, which is why the study completed 6,883 of a
  /// possible 7,392 iterations. The aligned schedule (true) anchors sweep k
  /// to boundary `start + k*period` and carries late sweeps without skipping,
  /// so every range sweeps the same boundary grid — the property the sharded
  /// engine needs to merge per-lab traces onto one campus-wide iteration
  /// axis.
  bool aligned_schedule = false;
  ExecPolicy exec_policy;
  /// Bounded retries per machine per iteration (default: one attempt).
  RetryPolicy retry;
  std::uint64_t seed = 0xddc0ffee;
  /// Optional fault injector (see labmon::faultsim). Null or inactive keeps
  /// the transport path untouched. Not owned; must outlive the coordinator.
  faultsim::FaultInjector* faults = nullptr;
  /// Metrics registry the run reports into (per-machine attempt/outcome
  /// counters, latency histograms, iteration-overrun gauges). Null opts the
  /// hot path out of instrumentation entirely.
  obs::Registry* metrics = nullptr;
  /// Tracer receiving "coordinator.iteration"/"executor.execute" spans.
  /// Null (or a disabled tracer) records nothing.
  obs::Tracer* tracer = nullptr;
  /// In-process structured fast path: successful probes fill a W32Sample
  /// directly instead of rendering stdout text that the sink re-parses.
  /// Off by default — sinks that consume raw stdout (e.g. OutputArchive)
  /// need the text; Experiment::Run opts in for its TraceStoreSink.
  bool structured_fast_path = false;
  /// With the fast path on, every Nth structured success ALSO renders the
  /// text so the sink can cross-check codec fidelity (deterministic 1-in-N
  /// sampling). 0 disables cross-checking.
  std::uint32_t structured_crosscheck_period = 64;
};

/// Aggregate statistics of a monitoring run.
struct RunStats {
  std::uint64_t iterations = 0;
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;
  /// Graceful-degradation taxonomy (per machine-collection, not attempt):
  /// a collection either yields an accepted sample, ends `missing`
  /// (transport never succeeded) or ends `corrupt` (payload delivered but
  /// rejected by the sink, retries exhausted).
  std::uint64_t missing = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t recovered_after_retry = 0;  ///< accepted on attempt > 1
  std::uint64_t retry_attempts = 0;         ///< extra attempts beyond the first
  std::uint64_t retried_collections = 0;    ///< collections that retried at all
  std::uint64_t faults_injected = 0;        ///< injector activity during Run()
  double total_span_s = 0.0;         ///< last iteration end - start
  double max_iteration_s = 0.0;
  double mean_iteration_s = 0.0;

  [[nodiscard]] double ResponseRate() const noexcept {
    return attempts ? static_cast<double>(successes) /
                          static_cast<double>(attempts)
                    : 0.0;
  }
  /// Fraction of retried collections that ended in an accepted sample.
  [[nodiscard]] double RetryRecoveryRate() const noexcept {
    return retried_collections
               ? static_cast<double>(recovered_after_retry) /
                     static_cast<double>(retried_collections)
               : 0.0;
  }
};

class Coordinator {
 public:
  /// Hook bringing the co-simulated behaviour driver up to date before each
  /// probe. A FunctionRef (not std::function): the coordinator never
  /// outlives the driver, and the per-probe path should not pay for type
  /// erasure that can allocate.
  using AdvanceFn = util::FunctionRef<void(util::SimTime)>;

  /// `advance` is invoked with every execution instant before probing;
  /// pass the default (null) when driving a static fleet. The referenced
  /// callable must outlive the coordinator — bind a named lambda, not a
  /// temporary that dies at the end of the constructor expression.
  Coordinator(winsim::Fleet& fleet, Probe& probe, CoordinatorConfig config,
              SampleSink& sink, AdvanceFn advance = {});

  /// Runs iterations from `start` until the iteration start would reach
  /// `end`. Returns run statistics. Tallies are per-run: calling Run()
  /// again on the same coordinator starts from zero. Exactly equivalent to
  /// Begin(start); StepUntil(end); Finish().
  RunStats Run(util::SimTime start, util::SimTime end);

  /// Incremental windowed driving — the pipelined engine advances every
  /// lab in lockstep time windows so sealed blocks stream out while later
  /// windows are still simulating. The sweep/boundary sequence (and thus
  /// every probe, retry and fault draw) is bit-identical to one Run(start,
  /// end) call for any ascending window partition of [start, end).
  void Begin(util::SimTime start);
  /// Runs every iteration whose schedule condition falls before `until`.
  /// Call with ascending `until` values; the final call must use the run's
  /// end time.
  void StepUntil(util::SimTime until);
  /// Finalises and returns the run statistics accumulated since Begin().
  [[nodiscard]] RunStats Finish();

 private:
  /// Per-machine instruments, resolved once per Run() so the probe loop
  /// only touches cached pointers.
  struct MachineInstruments {
    obs::Counter* attempts = nullptr;
    obs::Counter* ok = nullptr;
    obs::Counter* timeout = nullptr;
    obs::Counter* error = nullptr;
  };

  [[nodiscard]] util::SimTime RunIterationSequential(std::uint64_t iteration,
                                                     util::SimTime start);
  [[nodiscard]] util::SimTime RunIterationParallel(std::uint64_t iteration,
                                                   util::SimTime start);
  void AdvanceTo(util::SimTime t);
  void Tally(std::size_t machine_index, const ExecOutcome& outcome) noexcept;
  /// Runs one attempt; sets `*structured_filled` when the fast path
  /// delivered the sample into `scratch_` instead of stdout text.
  ExecOutcome ExecuteOne(std::size_t machine_index, util::SimTime t,
                         bool* structured_filled);
  /// Collects machine `machine_index` for `iteration`: the attempt at
  /// `start` plus any retries the policy and the iteration budget allow
  /// (budget measured from `iteration_start`). Every attempt is delivered
  /// to the sink. Returns the instant the collection finished.
  [[nodiscard]] util::SimTime CollectOnce(std::size_t machine_index,
                                          std::uint64_t iteration,
                                          util::SimTime iteration_start,
                                          util::SimTime start);
  void BindInstruments();

  std::uint64_t attempts_ = 0;
  std::uint64_t successes_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t missing_ = 0;
  std::uint64_t corrupt_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t retry_attempts_ = 0;
  std::uint64_t retried_collections_ = 0;
  std::uint64_t structured_ok_ = 0;  ///< cross-check cadence counter

  // Incremental-run loop state (Begin()/StepUntil()/Finish()).
  util::SimTime run_start_ = 0;
  util::SimTime boundary_ = 0;          ///< aligned mode: sweep k's anchor
  util::SimTime iteration_start_ = 0;
  util::SimTime last_iteration_end_ = 0;
  std::uint64_t iterations_done_ = 0;
  double iteration_s_sum_ = 0.0;
  double max_iteration_s_ = 0.0;
  std::uint64_t faults_before_ = 0;

  winsim::Fleet& fleet_;
  Probe& probe_;
  CoordinatorConfig config_;
  SampleSink& sink_;
  std::size_t first_ = 0;  ///< resolved machine range [first_, end_)
  std::size_t end_ = 0;
  AdvanceFn advance_;
  RemoteExecutor executor_;
  /// Backoff jitter stream, separate from the transport RNG so enabling
  /// retries never perturbs transport draws for non-retried attempts.
  util::Rng retry_rng_;
  W32Sample scratch_;  ///< reused structured-sample buffer

  std::vector<MachineInstruments> machine_metrics_;
  obs::Histogram* latency_hist_[3] = {nullptr, nullptr, nullptr};
  obs::Histogram* iteration_hist_ = nullptr;
  obs::Histogram* overrun_hist_ = nullptr;
  obs::Gauge* overrun_gauge_ = nullptr;
  obs::Counter* iterations_counter_ = nullptr;
  obs::Counter* retry_counter_ = nullptr;
  obs::Counter* recovered_counter_ = nullptr;
  obs::Counter* missing_counter_ = nullptr;
  obs::Counter* corrupt_counter_ = nullptr;
  obs::Histogram* backoff_hist_ = nullptr;
};

}  // namespace labmon::ddc
