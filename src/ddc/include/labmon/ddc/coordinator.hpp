// The DDC coordinator (§3, Figure 1): schedules periodic probe executions
// over the machine set, captures probe output, and feeds it to
// post-collect code (the sink).
//
// Two execution schedules are modelled:
//  * kSequential  — what the study ran: one psexec at a time over all 169
//    machines. Offline-host timeouts make iterations overrun the 15-minute
//    period, which is why fewer iterations complete than the calendar allows.
//  * kParallelSimulated — a k-worker pool (simulated schedule, deterministic):
//    the ablation benchmark uses it to show how parallel probing removes the
//    overrun problem.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "labmon/ddc/executor.hpp"
#include "labmon/ddc/probe.hpp"
#include "labmon/ddc/w32_probe.hpp"
#include "labmon/obs/registry.hpp"
#include "labmon/obs/span.hpp"
#include "labmon/util/function_ref.hpp"
#include "labmon/util/time.hpp"
#include "labmon/winsim/fleet.hpp"

namespace labmon::ddc {

/// One probe attempt as delivered to post-collect code.
struct CollectedSample {
  std::size_t machine_index = 0;
  std::uint64_t iteration = 0;
  util::SimTime attempt_time = 0;  ///< instant the execution started
  ExecOutcome outcome;
  /// Structured fast path: when non-null, the probe filled this sample
  /// in-process and `outcome.stdout_text` is empty except on cross-check
  /// attempts (see CoordinatorConfig::structured_crosscheck_period). Points
  /// at coordinator-owned scratch, valid only for the OnSample call.
  const W32Sample* structured = nullptr;
};

/// Post-collect interface ("post-collecting code … executed at the
/// coordinator site, immediately after a successful remote execution").
class SampleSink {
 public:
  virtual ~SampleSink() = default;
  virtual void OnSample(const CollectedSample& sample) = 0;
  /// Called when an iteration over all machines completes.
  virtual void OnIterationEnd(std::uint64_t iteration,
                              util::SimTime start_time,
                              util::SimTime end_time) {
    (void)iteration;
    (void)start_time;
    (void)end_time;
  }
};

/// Coordinator configuration.
struct CoordinatorConfig {
  util::SimTime period = 15 * util::kSecondsPerMinute;
  enum class Mode : std::uint8_t { kSequential, kParallelSimulated };
  Mode mode = Mode::kSequential;
  int workers = 8;  ///< parallel-simulated worker count
  ExecPolicy exec_policy;
  std::uint64_t seed = 0xddc0ffee;
  /// Metrics registry the run reports into (per-machine attempt/outcome
  /// counters, latency histograms, iteration-overrun gauges). Null opts the
  /// hot path out of instrumentation entirely.
  obs::Registry* metrics = nullptr;
  /// Tracer receiving "coordinator.iteration"/"executor.execute" spans.
  /// Null (or a disabled tracer) records nothing.
  obs::Tracer* tracer = nullptr;
  /// In-process structured fast path: successful probes fill a W32Sample
  /// directly instead of rendering stdout text that the sink re-parses.
  /// Off by default — sinks that consume raw stdout (e.g. OutputArchive)
  /// need the text; Experiment::Run opts in for its TraceStoreSink.
  bool structured_fast_path = false;
  /// With the fast path on, every Nth structured success ALSO renders the
  /// text so the sink can cross-check codec fidelity (deterministic 1-in-N
  /// sampling). 0 disables cross-checking.
  std::uint32_t structured_crosscheck_period = 64;
};

/// Aggregate statistics of a monitoring run.
struct RunStats {
  std::uint64_t iterations = 0;
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;
  double total_span_s = 0.0;         ///< last iteration end - start
  double max_iteration_s = 0.0;
  double mean_iteration_s = 0.0;

  [[nodiscard]] double ResponseRate() const noexcept {
    return attempts ? static_cast<double>(successes) /
                          static_cast<double>(attempts)
                    : 0.0;
  }
};

class Coordinator {
 public:
  /// Hook bringing the co-simulated behaviour driver up to date before each
  /// probe. A FunctionRef (not std::function): the coordinator never
  /// outlives the driver, and the per-probe path should not pay for type
  /// erasure that can allocate.
  using AdvanceFn = util::FunctionRef<void(util::SimTime)>;

  /// `advance` is invoked with every execution instant before probing;
  /// pass the default (null) when driving a static fleet. The referenced
  /// callable must outlive the coordinator — bind a named lambda, not a
  /// temporary that dies at the end of the constructor expression.
  Coordinator(winsim::Fleet& fleet, Probe& probe, CoordinatorConfig config,
              SampleSink& sink, AdvanceFn advance = {});

  /// Runs iterations from `start` until the iteration start would reach
  /// `end`. Returns run statistics. Tallies are per-run: calling Run()
  /// again on the same coordinator starts from zero.
  RunStats Run(util::SimTime start, util::SimTime end);

 private:
  /// Per-machine instruments, resolved once per Run() so the probe loop
  /// only touches cached pointers.
  struct MachineInstruments {
    obs::Counter* attempts = nullptr;
    obs::Counter* ok = nullptr;
    obs::Counter* timeout = nullptr;
    obs::Counter* error = nullptr;
  };

  [[nodiscard]] util::SimTime RunIterationSequential(std::uint64_t iteration,
                                                     util::SimTime start);
  [[nodiscard]] util::SimTime RunIterationParallel(std::uint64_t iteration,
                                                   util::SimTime start);
  void AdvanceTo(util::SimTime t);
  void Tally(std::size_t machine_index, const ExecOutcome& outcome) noexcept;
  /// Runs one attempt; sets `*structured_filled` when the fast path
  /// delivered the sample into `scratch_` instead of stdout text.
  ExecOutcome ExecuteOne(std::size_t machine_index, util::SimTime t,
                         bool* structured_filled);
  void BindInstruments();

  std::uint64_t attempts_ = 0;
  std::uint64_t successes_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t structured_ok_ = 0;  ///< cross-check cadence counter

  winsim::Fleet& fleet_;
  Probe& probe_;
  CoordinatorConfig config_;
  SampleSink& sink_;
  AdvanceFn advance_;
  RemoteExecutor executor_;
  W32Sample scratch_;  ///< reused structured-sample buffer

  std::vector<MachineInstruments> machine_metrics_;
  obs::Histogram* latency_hist_[3] = {nullptr, nullptr, nullptr};
  obs::Histogram* iteration_hist_ = nullptr;
  obs::Histogram* overrun_hist_ = nullptr;
  obs::Gauge* overrun_gauge_ = nullptr;
  obs::Counter* iterations_counter_ = nullptr;
};

}  // namespace labmon::ddc
