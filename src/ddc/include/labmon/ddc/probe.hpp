// Probe abstraction of the Distributed Data Collector (DDC, §3).
//
// A probe is "a simple win32 console application that outputs, via standard
// output, several metrics". Here a probe is an object that renders the
// machine's observable state to the same kind of text its real counterpart
// would print; DDC captures that text and hands it to post-collect code.
#pragma once

#include <string>

#include "labmon/util/time.hpp"
#include "labmon/winsim/machine.hpp"

namespace labmon::ddc {

struct W32Sample;  // defined in w32_probe.hpp

/// Interface of a remotely executed console probe.
class Probe {
 public:
  virtual ~Probe() = default;

  /// Probe binary name (what psexec would launch remotely).
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Runs on `machine` at instant `t`; returns the probe's stdout text.
  /// The machine is powered on and already integrated to `t`.
  [[nodiscard]] virtual std::string Execute(winsim::Machine& machine,
                                            util::SimTime t) = 0;

  /// Structured fast path: fills `out` with exactly what parsing Execute()'s
  /// text would produce, without rendering any text. Returns false when the
  /// probe has no structured surface (the default), in which case callers
  /// fall back to Execute(). Only meaningful in-process — the real DDC could
  /// only ship bytes over psexec, so this is an explicit fidelity-preserving
  /// optimisation, cross-checked against the text codec by the sink.
  [[nodiscard]] virtual bool ExecuteInto(winsim::Machine& machine,
                                         util::SimTime t, W32Sample* out) {
    (void)machine;
    (void)t;
    (void)out;
    return false;
  }
};

}  // namespace labmon::ddc
