// One-shot probe campaigns.
//
// Besides periodic monitoring, DDC was used for one-off collections: the
// NBench indexes of Table 1 were "gathered with DDC using the corresponding
// benchmark probe" (§4.1) — every machine had to be measured *once*, which
// on a volatile classroom fleet means retrying powered-off machines on
// later passes until the whole fleet is covered. Campaign implements that
// scheduling mode.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "labmon/ddc/executor.hpp"
#include "labmon/ddc/probe.hpp"
#include "labmon/obs/registry.hpp"
#include "labmon/util/function_ref.hpp"
#include "labmon/winsim/fleet.hpp"

namespace labmon::ddc {

/// Result of a campaign.
struct CampaignResult {
  /// Per-machine captured stdout (nullopt = never reached).
  std::vector<std::optional<std::string>> outputs;
  std::uint64_t passes = 0;          ///< sweeps over the pending set
  std::uint64_t attempts = 0;
  std::uint64_t completed = 0;
  util::SimTime finished_at = 0;     ///< instant the last machine completed
  bool complete = false;             ///< all machines reached before deadline

  [[nodiscard]] double CoverageFraction() const noexcept {
    return outputs.empty()
               ? 0.0
               : static_cast<double>(completed) /
                     static_cast<double>(outputs.size());
  }
};

/// Campaign configuration.
struct CampaignConfig {
  /// Delay between passes over the still-pending machines.
  util::SimTime pass_period = 30 * util::kSecondsPerMinute;
  /// Give up after this instant even if machines remain unreached.
  util::SimTime deadline = 14 * util::kSecondsPerDay;
  ExecPolicy exec_policy;
  std::uint64_t seed = 0xca3b41a7;
  /// Optional fault injector (see labmon::faultsim); null or inactive keeps
  /// the transport untouched. Not owned; must outlive the campaign run.
  faultsim::FaultInjector* faults = nullptr;
  /// Injectable per-campaign registry: pass/attempt/completion counters and
  /// coverage gauge are reported here. Null disables instrumentation.
  obs::Registry* metrics = nullptr;
};

/// Runs `probe` once on every machine of the fleet, sweeping the pending
/// set every `pass_period` until full coverage or the deadline. `advance`
/// co-drives the behavioural simulation (may be null); it is only invoked
/// during this call, so binding a temporary lambda at the call site is fine.
[[nodiscard]] CampaignResult RunCampaign(
    winsim::Fleet& fleet, Probe& probe, const CampaignConfig& config,
    util::SimTime start,
    util::FunctionRef<void(util::SimTime)> advance = {});

}  // namespace labmon::ddc
