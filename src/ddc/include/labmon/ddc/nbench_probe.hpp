// The benchmark probe: how the authors collected Table 1's INT/FP indexes
// ("NBench performance indexes were gathered with DDC using the
// corresponding benchmark probe", §4.1).
//
// On a *simulated* machine it reports the indexes of the machine's spec
// (the paper's published measurements); `RunOnHost()` genuinely runs the
// labmon::nbench suite so the same probe works against real hardware.
#pragma once

#include "labmon/ddc/probe.hpp"
#include "labmon/nbench/nbench.hpp"
#include "labmon/util/expected.hpp"

namespace labmon::ddc {

/// Parsed output of the benchmark probe.
struct NBenchReport {
  std::string host;
  double int_index = 0.0;
  double fp_index = 0.0;
};

class NBenchProbe final : public Probe {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "nbenchprobe.exe";
  }
  [[nodiscard]] std::string Execute(winsim::Machine& machine,
                                    util::SimTime t) override;

  /// Runs the real kernel suite on the host and renders the same format.
  [[nodiscard]] static std::string RunOnHost(const std::string& host_name,
                                             const nbench::SuiteConfig& config);
};

/// Parses the probe's stdout.
[[nodiscard]] util::Result<NBenchReport> ParseNBenchOutput(
    const std::string& text);

}  // namespace labmon::ddc
