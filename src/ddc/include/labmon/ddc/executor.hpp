// RemoteExecutor — the psexec-style remote execution transport (§3).
//
// Models exactly the transport behaviour the study depended on: fast
// execution against a live host, *long* timeouts against a powered-off one
// ("psexec … executes application in remote windows machines"; perfmon/WMI
// were rejected for their even higher timeouts). Those offline timeouts are
// what made real iterations overrun 15 minutes and is why the paper logged
// 6,883 iterations instead of 77d/15min = 7,392.
//
// An optional labmon::faultsim::FaultInjector sits in front of the
// transport model: scripted/stochastic faults decide an attempt's fate
// before the normal latency draws, from the injector's own RNG stream, so
// a null or inactive injector leaves every draw — and the trace —
// bit-identical to a build without the fault layer.
#pragma once

#include <cstdint>
#include <string>

#include "labmon/ddc/probe.hpp"
#include "labmon/util/rng.hpp"
#include "labmon/util/time.hpp"
#include "labmon/winsim/machine.hpp"

namespace labmon::faultsim {
class FaultInjector;
}  // namespace labmon::faultsim

namespace labmon::ddc {

/// Latency/failure model of remote execution over the lab LAN.
struct ExecPolicy {
  double success_latency_mean_s = 1.1;  ///< psexec spawn + probe run
  double success_latency_sigma_s = 0.4;
  double success_latency_min_s = 0.3;
  double offline_timeout_mean_s = 8.0;  ///< dead-host connect timeout
  double offline_timeout_sigma_s = 2.0;
  double offline_timeout_min_s = 3.0;
  double transient_failure_prob = 0.004;  ///< RPC busy / access denied blip

  /// Copy with every parameter clamped to a sane range (sigmas and
  /// probabilities non-negative, latency floors positive, means at least
  /// their floor). The identity for any already-valid policy, so applying
  /// it never perturbs an existing deterministic run.
  [[nodiscard]] ExecPolicy Validated() const noexcept;
};

/// Bounded-retry policy for one machine's collection inside an iteration.
/// Defaults are the paper's behaviour: one attempt, no retries.
struct RetryPolicy {
  int max_attempts = 1;            ///< total attempts (1 = no retries)
  double backoff_initial_s = 2.0;  ///< delay before the first retry
  double backoff_multiplier = 2.0;
  double backoff_max_s = 60.0;
  /// Uniform jitter applied to each backoff: delay * (1 ± fraction).
  double jitter_fraction = 0.25;
  /// Wall-clock budget one iteration may spend including retries; retries
  /// that cannot finish inside it are skipped. 0 means "the coordinator's
  /// sampling period".
  double iteration_budget_s = 0.0;
  /// Retry timeouts? Off by default: a powered-off host (the dominant
  /// timeout cause, §4.2) will not answer seconds later either.
  bool retry_timeouts = false;
  /// Retry attempts whose payload the sink rejected as corrupt?
  bool retry_rejects = true;

  [[nodiscard]] bool enabled() const noexcept { return max_attempts > 1; }
  /// Copy with attempts >= 1, delays/fractions non-negative, and the
  /// multiplier >= 1. Identity for valid policies.
  [[nodiscard]] RetryPolicy Validated() const noexcept;
};

/// Result of one remote execution attempt.
struct ExecOutcome {
  enum class Status : std::uint8_t { kOk, kTimeout, kError };
  Status status = Status::kTimeout;
  double latency_s = 0.0;     ///< wall time the attempt consumed
  int exit_code = -1;
  std::string stdout_text;
  std::string stderr_text;

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
};

/// Executes probes against machines with simulated transport behaviour.
class RemoteExecutor {
 public:
  explicit RemoteExecutor(ExecPolicy policy, std::uint64_t seed = 0xddcddc,
                          faultsim::FaultInjector* faults = nullptr);

  /// Attempts to run `probe` on `machine` at `t`. The machine must already
  /// be behaviourally up to date (driver advanced to >= t).
  [[nodiscard]] ExecOutcome Execute(Probe& probe, winsim::Machine& machine,
                                    util::SimTime t);

  /// As Execute, but tries the probe's structured fast path first: on a
  /// successful attempt against a probe that implements ExecuteInto,
  /// `*structured_out` is filled, `*structured_filled` is set, and stdout
  /// text is rendered only when `also_text` is set (the sink's fidelity
  /// cross-check cadence). Transport behaviour and RNG draw order are
  /// identical to Execute(), so a run is deterministic regardless of which
  /// entry point collected it. A wire fault (truncation/corruption) forces
  /// the text path: a mangled payload has no structured form.
  [[nodiscard]] ExecOutcome ExecuteStructured(Probe& probe,
                                              winsim::Machine& machine,
                                              util::SimTime t,
                                              W32Sample* structured_out,
                                              bool* structured_filled,
                                              bool also_text);

  [[nodiscard]] const ExecPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] faultsim::FaultInjector* faults() const noexcept {
    return faults_;
  }

 private:
  ExecPolicy policy_;
  util::Rng rng_;
  faultsim::FaultInjector* faults_ = nullptr;
};

}  // namespace labmon::ddc
