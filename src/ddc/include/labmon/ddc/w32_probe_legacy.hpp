// Frozen pre-optimisation W32Probe codec.
//
// These are the original ostringstream formatter and keyed-lookup parser,
// kept verbatim (only renamed) when the hot path was rewritten. They exist
// as the golden reference: tests pin the fast codec byte-identical /
// value-identical to these on every machine state the simulator produces,
// and the paired micro-benchmark measures the speedup against them.
//
// Do not modify — any fix belongs in the live codec in w32_probe.hpp.
#pragma once

#include <string>

#include "labmon/ddc/w32_probe.hpp"

namespace labmon::ddc {

/// The original ostringstream-based formatter.
[[nodiscard]] std::string LegacyFormatW32ProbeOutput(
    const winsim::Machine& machine);

/// The original Split + keyed-lookup parser.
[[nodiscard]] util::Result<W32Sample> LegacyParseW32ProbeOutput(
    const std::string& text);

}  // namespace labmon::ddc
