#include "labmon/ddc/w32_probe.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <string_view>
#include <type_traits>

#include "labmon/smart/attributes.hpp"
#include "labmon/winsim/win32.hpp"
#include "labmon/util/strings.hpp"

namespace labmon::ddc {

namespace {

// Direct digit rendering — the collect loop formats ~20 numbers per sample
// and ostream/locale machinery was the dominant cost of the old formatter.
void AppendUint(std::string& out, std::uint64_t v) {
  char buf[20];
  char* p = buf + sizeof buf;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  out.append(p, static_cast<std::size_t>(buf + sizeof buf - p));
}

void AppendInt(std::string& out, std::int64_t v) {
  if (v < 0) {
    out.push_back('-');
    AppendUint(out, static_cast<std::uint64_t>(-(v + 1)) + 1);
  } else {
    AppendUint(out, static_cast<std::uint64_t>(v));
  }
}

// Exact "%.2f" of `v` as integer hundredths, matching glibc printf bit for
// bit: v*100 is exact in an extended long double (53 significand bits + 7
// for the factor 100 fit in 64), so the floor and the halfway comparison
// are exact, and ties round to even just like a correctly-rounded printf.
// Returns false outside the envelope (negative, huge, no 64-bit extended
// type) — callers then fall back to snprintf.
[[nodiscard]] bool Fixed2Hundredths(double v, std::uint64_t* out) noexcept {
  if (std::numeric_limits<long double>::digits < 60) return false;
  if (!(v >= 0.0) || v >= 9.0e13) return false;  // keeps h exact as double
  const long double scaled = static_cast<long double>(v) * 100.0L;
  const long double whole = std::floor(scaled);
  std::uint64_t h = static_cast<std::uint64_t>(whole);
  const long double frac = scaled - whole;
  if (frac > 0.5L || (frac == 0.5L && (h & 1))) ++h;
  *out = h;
  return true;
}

void AppendFixed2(std::string& out, double v) {
  std::uint64_t h;
  if (Fixed2Hundredths(v, &h)) {
    AppendUint(out, h / 100);
    out.push_back('.');
    out.push_back(static_cast<char>('0' + (h / 10) % 10));
    out.push_back(static_cast<char>('0' + h % 10));
    return;
  }
  char buf[64];
  const int n = std::snprintf(buf, sizeof buf, "%.2f", v);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

// Decimal int64 parse for the hot parser: the general util::ParseInt64
// funnels through strtoll (locale machinery + errno TLS + a buffer copy)
// and dominated the per-sample parse cost at ~15 calls each. Input is
// already trimmed; grammar matches strtoll base-10 on trimmed text:
// optional sign, one-plus digits, whole string, overflow rejected.
[[nodiscard]] std::optional<std::int64_t> ParseDecInt64(
    std::string_view text) noexcept {
  std::size_t i = 0;
  bool negative = false;
  if (!text.empty() && (text[0] == '+' || text[0] == '-')) {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) return std::nullopt;
  const std::uint64_t limit = negative ? (1ull << 63) : (1ull << 63) - 1;
  std::uint64_t magnitude = 0;
  for (; i < text.size(); ++i) {
    const unsigned digit = static_cast<unsigned char>(text[i]) - '0';
    if (digit > 9) return std::nullopt;
    if (magnitude > (limit - digit) / 10) return std::nullopt;
    magnitude = magnitude * 10 + digit;
  }
  return negative ? -static_cast<std::int64_t>(magnitude - 1) - 1
                  : static_cast<std::int64_t>(magnitude);
}

// cpu_idle_s parse. The wire always renders "%.2f", so the common shape is
// digits '.' two digits: accumulate it as integer hundredths and divide by
// 100.0 — both that division and strtod produce the double nearest to the
// same decimal value, so the bits are identical (hundredths stay well under
// 2^53, hence exact). Anything else falls back to the general strtod path.
[[nodiscard]] std::optional<double> ParseIdleSeconds(
    std::string_view text) noexcept {
  const auto dot = text.find('.');
  if (dot != std::string_view::npos && dot >= 1 && dot <= 13 &&
      dot + 3 == text.size()) {
    std::uint64_t hundredths = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (i == dot) continue;
      const unsigned digit = static_cast<unsigned char>(text[i]) - '0';
      if (digit > 9) return util::ParseDouble(text);
      hundredths = hundredths * 10 + digit;
    }
    return static_cast<double>(hundredths) / 100.0;
  }
  return util::ParseDouble(text);
}

/// One facade sweep shared by the text formatter and the structured fill so
/// both read the machine through the identical Win32 surface.
struct ProbeReadout {
  winsim::win32::SYSTEM_TIMEOFDAY_INFORMATION tod;
  winsim::win32::SYSTEM_PERFORMANCE_INFORMATION perf;
  winsim::win32::MEMORYSTATUS mem;
  winsim::win32::ULARGE_INTEGER total{};
  winsim::win32::ULARGE_INTEGER total_free{};
  winsim::win32::MIB_IFROW nic;
  std::uint64_t smart_hours = 0;
  std::uint64_t smart_cycles = 0;
  std::string session_user;
  winsim::win32::LONGLONG session_logon = 0;
  bool has_session = false;

  explicit ProbeReadout(const winsim::Machine& machine) {
    namespace win32 = winsim::win32;
    (void)win32::NtQuerySystemInformation(machine, &tod);
    (void)win32::NtQuerySystemInformation(machine, &perf);
    win32::GlobalMemoryStatus(machine, &mem);
    win32::ULARGE_INTEGER free_avail{};
    (void)win32::GetDiskFreeSpaceExA(machine, &free_avail, &total,
                                     &total_free);
    (void)win32::GetIfEntry(machine, &nic);
    const auto& disk = machine.DiskSmartData();
    smart_hours = disk.PowerOnHours();
    smart_cycles = disk.PowerCycles();
    has_session = win32::WTSQuerySessionInformation(
                      machine, &session_user, &session_logon) == win32::TRUE_;
  }

  [[nodiscard]] int SwapLoadPct() const noexcept {
    const auto swap_used = mem.dwTotalPageFile - mem.dwAvailPageFile;
    return static_cast<int>(std::lround(
        mem.dwTotalPageFile
            ? 100.0 * static_cast<double>(swap_used) /
                  static_cast<double>(mem.dwTotalPageFile)
            : 0.0));
  }
};

}  // namespace

std::string W32Probe::Execute(winsim::Machine& machine, util::SimTime t) {
  machine.AdvanceTo(t);
  std::string out;
  out.reserve(512);
  FormatW32ProbeOutput(machine, out);
  return out;
}

bool W32Probe::ExecuteInto(winsim::Machine& machine, util::SimTime t,
                           W32Sample* out) {
  machine.AdvanceTo(t);
  FillW32Sample(machine, out);
  return true;
}

void FormatW32ProbeOutput(const winsim::Machine& machine, std::string& out) {
  // Everything dynamic is read through the Win32-style facade — the same
  // API surface the real probe called on Windows 2000 (§3.1).
  const auto& spec = machine.spec();
  const ProbeReadout r(machine);

  out += "W32PROBE 1.2\nhost: ";
  out += spec.name;
  out += "\nos: ";
  out += spec.os;
  out += "\ncpu: ";
  out += spec.cpu_model;
  out += " @ ";
  AppendInt(out, std::lround(spec.cpu_ghz * 1000.0));
  out += " MHz\nram_mb: ";
  AppendUint(out, r.mem.dwTotalPhys / (1024 * 1024));
  out += "\nswap_mb: ";
  AppendUint(out, r.mem.dwTotalPageFile / (1024 * 1024));
  out += "\nmac0: ";
  out += spec.mac;
  out += "\ndisk0_serial: ";
  out += spec.disk_serial;
  out += "\ndisk0_total_b: ";
  AppendUint(out, r.total.QuadPart);
  out += "\nboot_time: ";
  AppendInt(out, r.tod.BootTime);
  out += "\nuptime_s: ";
  AppendInt(out, r.tod.CurrentTime - r.tod.BootTime);
  // The idle-thread counter is reported in 100 ns units by the kernel.
  out += "\ncpu_idle_s: ";
  AppendFixed2(out, static_cast<double>(r.perf.IdleProcessTime) / 1e7);
  // dwMemoryLoad is an integer percentage.
  out += "\nmem_load_pct: ";
  AppendUint(out, r.mem.dwMemoryLoad);
  out += "\nswap_load_pct: ";
  AppendInt(out, r.SwapLoadPct());
  out += "\ndisk0_free_b: ";
  AppendUint(out, r.total_free.QuadPart);
  out += "\nsmart_power_on_hours: ";
  AppendUint(out, r.smart_hours);
  out += "\nsmart_power_cycles: ";
  AppendUint(out, r.smart_cycles);
  out += "\nnet_sent_b: ";
  AppendUint(out, r.nic.OutOctets64);
  out += "\nnet_recv_b: ";
  AppendUint(out, r.nic.InOctets64);
  if (r.has_session) {
    out += "\nsession: ";
    out += r.session_user;
    out.push_back(' ');
    AppendInt(out, r.session_logon);
    out.push_back('\n');
  } else {
    out += "\nsession: none\n";
  }
}

std::string FormatW32ProbeOutput(const winsim::Machine& machine) {
  std::string out;
  out.reserve(512);
  FormatW32ProbeOutput(machine, out);
  return out;
}

void FillW32Sample(const winsim::Machine& machine, W32Sample* s) {
  const auto& spec = machine.spec();
  const ProbeReadout r(machine);

  s->host = spec.name;
  s->os = spec.os;
  s->cpu_model = spec.cpu_model;
  s->cpu_mhz = static_cast<int>(std::lround(spec.cpu_ghz * 1000.0));
  s->ram_mb = static_cast<int>(r.mem.dwTotalPhys / (1024 * 1024));
  s->swap_mb = static_cast<int>(r.mem.dwTotalPageFile / (1024 * 1024));
  s->disk_serial = spec.disk_serial;
  s->disk_total_b = r.total.QuadPart;
  s->mac = spec.mac;
  s->boot_time = r.tod.BootTime;
  s->uptime_s = r.tod.CurrentTime - r.tod.BootTime;
  // Quantise the one double through the same exact "%.2f" hundredths the
  // text codec renders, so a structured sample is bit-identical to parsing
  // the formatted text — not merely close.
  const double idle_raw = static_cast<double>(r.perf.IdleProcessTime) / 1e7;
  std::uint64_t idle_h;
  if (Fixed2Hundredths(idle_raw, &idle_h)) {
    // Same double ParseIdleSeconds reconstructs from the printed digits.
    s->cpu_idle_s = static_cast<double>(idle_h) / 100.0;
  } else {
    char idle[64];
    const int idle_len = std::snprintf(idle, sizeof idle, "%.2f", idle_raw);
    s->cpu_idle_s =
        idle_len > 0
            ? ParseIdleSeconds({idle, static_cast<std::size_t>(idle_len)})
                  .value_or(0.0)
            : 0.0;
  }
  s->mem_load_pct = static_cast<int>(r.mem.dwMemoryLoad);
  s->swap_load_pct = r.SwapLoadPct();
  s->disk_free_b = r.total_free.QuadPart;
  s->smart_power_on_hours = r.smart_hours;
  s->smart_power_cycles = r.smart_cycles;
  s->net_sent_b = r.nic.OutOctets64;
  s->net_recv_b = r.nic.InOctets64;
  if (r.has_session) {
    s->session_user = r.session_user;
    s->session_logon_time = r.session_logon;
  } else {
    s->session_user.reset();
    s->session_logon_time = 0;
  }
}

namespace {

// Keys in the exact order the formatter emits them. The parser predicts the
// next key from this table, so well-formed probe output resolves each line
// with a single comparison; reordered or foreign lines fall back to a full
// lookup with the same tolerance as the legacy parser.
enum KeyId : int {
  kIdHost = 0,
  kIdOs,
  kIdCpu,
  kIdRamMb,
  kIdSwapMb,
  kIdMac,
  kIdDiskSerial,
  kIdDiskTotal,
  kIdBootTime,
  kIdUptime,
  kIdCpuIdle,
  kIdMemLoad,
  kIdSwapLoad,
  kIdDiskFree,
  kIdSmartHours,
  kIdSmartCycles,
  kIdNetSent,
  kIdNetRecv,
  kIdSession,
  kIdCount,
};

constexpr std::string_view kWireKeys[kIdCount] = {
    "host",          "os",
    "cpu",           "ram_mb",
    "swap_mb",       "mac0",
    "disk0_serial",  "disk0_total_b",
    "boot_time",     "uptime_s",
    "cpu_idle_s",    "mem_load_pct",
    "swap_load_pct", "disk0_free_b",
    "smart_power_on_hours", "smart_power_cycles",
    "net_sent_b",    "net_recv_b",
    "session"};

[[nodiscard]] int LookupKeyId(std::string_view key) noexcept {
  for (int id = 0; id < kIdCount; ++id) {
    if (key == kWireKeys[id]) return id;
  }
  return -1;
}

}  // namespace

util::Result<bool> ParseW32ProbeOutput(std::string_view text, W32Sample* out) {
  using R = util::Result<bool>;
  W32Sample& s = *out;

  // Reset to fresh-sample defaults while keeping the string capacity, so a
  // reused scratch sample makes the steady-state parse allocation-free.
  s.host.clear();
  s.os.clear();
  s.cpu_model.clear();
  s.cpu_mhz = 0;
  s.ram_mb = 0;
  s.swap_mb = 0;
  s.disk_serial.clear();
  s.disk_total_b = 0;
  s.mac.clear();
  s.boot_time = 0;
  s.uptime_s = 0;
  s.cpu_idle_s = 0.0;
  s.mem_load_pct = 0;
  s.swap_load_pct = 0;
  s.disk_free_b = 0;
  s.smart_power_on_hours = 0;
  s.smart_power_cycles = 0;
  s.net_sent_b = 0;
  s.net_recv_b = 0;
  s.session_user.reset();
  s.session_logon_time = 0;

  // Presence bits; mandatory-field validation after the scan reproduces the
  // legacy parser's error order.
  enum : std::uint32_t {
    kHost = 1u << 0,
    kOs = 1u << 1,
    kCpu = 1u << 2,
    kMac = 1u << 3,
    kDiskSerial = 1u << 4,
    kRamMb = 1u << 5,
    kSwapMb = 1u << 6,
    kBootTime = 1u << 7,
    kUptime = 1u << 8,
    kCpuIdle = 1u << 9,
    kMemLoad = 1u << 10,
    kSwapLoad = 1u << 11,
    kDiskTotal = 1u << 12,
    kDiskFree = 1u << 13,
    kSmartHours = 1u << 14,
    kSmartCycles = 1u << 15,
    kNetSent = 1u << 16,
    kNetRecv = 1u << 17,
    kSession = 1u << 18,
  };
  std::uint32_t seen = 0;

  const auto garbled = [](std::string_view key) {
    return R::Err("missing/garbled field: " + std::string(key));
  };
  // Duplicated keys: the first occurrence wins, later ones are ignored
  // entirely (even if garbled) — the legacy FieldMap behaviour.
  const auto take_int = [&](std::uint32_t bit, std::string_view value,
                            auto* out) -> bool {
    if (seen & bit) return true;
    const auto parsed = ParseDecInt64(value);
    if (!parsed) return false;
    *out = static_cast<std::remove_reference_t<decltype(*out)>>(*parsed);
    seen |= bit;
    return true;
  };
  const auto take_u64 = [&](std::uint32_t bit, std::string_view value,
                            std::uint64_t* out) -> bool {
    if (seen & bit) return true;
    const auto parsed = ParseDecInt64(value);
    if (!parsed || *parsed < 0) return false;
    *out = static_cast<std::uint64_t>(*parsed);
    seen |= bit;
    return true;
  };

  std::size_t pos = 0;
  bool banner_checked = false;
  int next_key = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    const std::string_view line = util::Trim(text.substr(pos, end - pos));
    pos = end + 1;

    if (!banner_checked) {
      if (line != "W32PROBE 1.2") return R::Err("missing W32PROBE banner");
      banner_checked = true;
      continue;
    }
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      return R::Err("malformed line: " + std::string(line));
    }
    const std::string_view key = util::Trim(line.substr(0, colon));
    const std::string_view value = util::Trim(line.substr(colon + 1));

    int id;
    if (next_key < kIdCount && key == kWireKeys[next_key]) {
      id = next_key++;
    } else {
      id = LookupKeyId(key);
      if (id >= 0) next_key = id + 1;
    }

    switch (id) {
      case kIdHost:
        if (!(seen & kHost)) {
          s.host.assign(value);
          seen |= kHost;
        }
        break;
      case kIdOs:
        if (!(seen & kOs)) {
          s.os.assign(value);
          seen |= kOs;
        }
        break;
      case kIdCpu:
        if (!(seen & kCpu)) {
          seen |= kCpu;
          s.cpu_model.assign(value);
          const auto at = value.find('@');
          if (at != std::string_view::npos) {
            s.cpu_model.assign(util::Trim(value.substr(0, at)));
            const std::string_view mhz_text = value.substr(at + 1);
            const auto mhz_end = mhz_text.find("MHz");
            if (const auto mhz =
                    ParseDecInt64(util::Trim(mhz_text.substr(0, mhz_end)))) {
              s.cpu_mhz = static_cast<int>(*mhz);
            }
          }
        }
        break;
      case kIdMac:
        if (!(seen & kMac)) {
          s.mac.assign(value);
          seen |= kMac;
        }
        break;
      case kIdDiskSerial:
        if (!(seen & kDiskSerial)) {
          s.disk_serial.assign(value);
          seen |= kDiskSerial;
        }
        break;
      case kIdRamMb:
        if (!take_int(kRamMb, value, &s.ram_mb)) return garbled("ram_mb");
        break;
      case kIdSwapMb:
        if (!take_int(kSwapMb, value, &s.swap_mb)) return garbled("swap_mb");
        break;
      case kIdBootTime:
        if (!take_int(kBootTime, value, &s.boot_time)) {
          return garbled("boot_time");
        }
        break;
      case kIdUptime:
        if (!take_int(kUptime, value, &s.uptime_s)) return garbled("uptime_s");
        break;
      case kIdCpuIdle:
        if (!(seen & kCpuIdle)) {
          const auto idle = ParseIdleSeconds(value);
          if (!idle) return R::Err("garbled field: cpu_idle_s");
          s.cpu_idle_s = *idle;
          seen |= kCpuIdle;
        }
        break;
      case kIdMemLoad:
        if (!take_int(kMemLoad, value, &s.mem_load_pct)) {
          return garbled("mem_load_pct");
        }
        break;
      case kIdSwapLoad:
        if (!take_int(kSwapLoad, value, &s.swap_load_pct)) {
          return garbled("swap_load_pct");
        }
        break;
      case kIdDiskTotal:
        if (!take_u64(kDiskTotal, value, &s.disk_total_b)) {
          return garbled("disk0_total_b");
        }
        break;
      case kIdDiskFree:
        if (!take_u64(kDiskFree, value, &s.disk_free_b)) {
          return garbled("disk0_free_b");
        }
        break;
      case kIdSmartHours:
        if (!take_u64(kSmartHours, value, &s.smart_power_on_hours)) {
          return garbled("smart_power_on_hours");
        }
        break;
      case kIdSmartCycles:
        if (!take_u64(kSmartCycles, value, &s.smart_power_cycles)) {
          return garbled("smart_power_cycles");
        }
        break;
      case kIdNetSent:
        if (!take_u64(kNetSent, value, &s.net_sent_b)) {
          return garbled("net_sent_b");
        }
        break;
      case kIdNetRecv:
        if (!take_u64(kNetRecv, value, &s.net_recv_b)) {
          return garbled("net_recv_b");
        }
        break;
      case kIdSession:
        if (!(seen & kSession)) {
          seen |= kSession;
          if (value != "none") {
            const auto space = value.find(' ');
            if (space == std::string_view::npos ||
                value.find(' ', space + 1) != std::string_view::npos) {
              return R::Err("garbled session field");
            }
            const auto logon = ParseDecInt64(value.substr(space + 1));
            if (!logon) return R::Err("garbled session logon time");
            s.session_user.emplace(value.substr(0, space));
            s.session_logon_time = *logon;
          }
        }
        break;
      default:
        // Unknown keys are tolerated, exactly like the legacy parser.
        break;
    }
  }

  if (!(seen & kHost)) return R::Err("missing field: host");
  if (!(seen & kRamMb)) return garbled("ram_mb");
  if (!(seen & kSwapMb)) return garbled("swap_mb");
  if (!(seen & kBootTime)) return garbled("boot_time");
  if (!(seen & kUptime)) return garbled("uptime_s");
  if (!(seen & kCpuIdle)) return R::Err("missing field: cpu_idle_s");
  if (!(seen & kMemLoad)) return garbled("mem_load_pct");
  if (!(seen & kSwapLoad)) return garbled("swap_load_pct");
  if (!(seen & kDiskTotal)) return garbled("disk0_total_b");
  if (!(seen & kDiskFree)) return garbled("disk0_free_b");
  if (!(seen & kSmartHours)) return garbled("smart_power_on_hours");
  if (!(seen & kSmartCycles)) return garbled("smart_power_cycles");
  if (!(seen & kNetSent)) return garbled("net_sent_b");
  if (!(seen & kNetRecv)) return garbled("net_recv_b");
  if (!(seen & kSession)) return R::Err("missing field: session");
  return true;
}

util::Result<W32Sample> ParseW32ProbeOutput(std::string_view text) {
  W32Sample s;
  const auto parsed = ParseW32ProbeOutput(text, &s);
  if (!parsed.ok()) return util::Result<W32Sample>::Err(parsed.error());
  return s;
}

}  // namespace labmon::ddc
