#include "labmon/ddc/campaign.hpp"

#include <algorithm>
#include <cmath>

#include "labmon/obs/span.hpp"

namespace labmon::ddc {

CampaignResult RunCampaign(winsim::Fleet& fleet, Probe& probe,
                           const CampaignConfig& config, util::SimTime start,
                           util::FunctionRef<void(util::SimTime)> advance) {
  CampaignResult result;
  result.outputs.assign(fleet.size(), std::nullopt);

  RemoteExecutor executor(config.exec_policy, config.seed, config.faults);
  std::vector<std::size_t> pending(fleet.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;

  obs::Counter* pass_counter = nullptr;
  obs::Counter* attempt_counter = nullptr;
  obs::Counter* completed_counter = nullptr;
  obs::Gauge* coverage_gauge = nullptr;
  if (config.metrics) {
    pass_counter = &config.metrics->GetCounter(
        "labmon_campaign_passes_total", "Sweeps over the pending machine set");
    attempt_counter = &config.metrics->GetCounter(
        "labmon_campaign_attempts_total", "Probe executions attempted");
    completed_counter = &config.metrics->GetCounter(
        "labmon_campaign_completed_total", "Machines captured");
    coverage_gauge = &config.metrics->GetGauge(
        "labmon_campaign_coverage_fraction", "Fraction of the fleet captured");
  }

  util::SimTime pass_start = start;
  while (!pending.empty() && pass_start < config.deadline) {
    obs::Span pass_span("campaign.pass");
    ++result.passes;
    if (pass_counter) pass_counter->Increment();
    util::SimTime now = pass_start;
    std::vector<std::size_t> still_pending;
    still_pending.reserve(pending.size());
    for (const std::size_t i : pending) {
      if (advance) advance(now);
      ++result.attempts;
      if (attempt_counter) attempt_counter->Increment();
      const auto outcome = executor.Execute(probe, fleet.machine(i), now);
      if (outcome.ok()) {
        result.outputs[i] = outcome.stdout_text;
        ++result.completed;
        if (completed_counter) completed_counter->Increment();
        result.finished_at = now;
      } else {
        still_pending.push_back(i);
      }
      now += static_cast<util::SimTime>(std::llround(outcome.latency_s));
    }
    pending = std::move(still_pending);
    pass_span.SetSimRange(pass_start, now);
    if (coverage_gauge) coverage_gauge->Set(result.CoverageFraction());
    // Next pass at the period boundary (or immediately after an overrun).
    pass_start = std::max(pass_start + config.pass_period, now);
  }
  result.complete = pending.empty();
  return result;
}

}  // namespace labmon::ddc
