#include "labmon/ddc/campaign.hpp"

#include <algorithm>
#include <cmath>

namespace labmon::ddc {

CampaignResult RunCampaign(winsim::Fleet& fleet, Probe& probe,
                           const CampaignConfig& config, util::SimTime start,
                           const std::function<void(util::SimTime)>& advance) {
  CampaignResult result;
  result.outputs.assign(fleet.size(), std::nullopt);

  RemoteExecutor executor(config.exec_policy, config.seed);
  std::vector<std::size_t> pending(fleet.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;

  util::SimTime pass_start = start;
  while (!pending.empty() && pass_start < config.deadline) {
    ++result.passes;
    util::SimTime now = pass_start;
    std::vector<std::size_t> still_pending;
    still_pending.reserve(pending.size());
    for (const std::size_t i : pending) {
      if (advance) advance(now);
      ++result.attempts;
      const auto outcome = executor.Execute(probe, fleet.machine(i), now);
      if (outcome.ok()) {
        result.outputs[i] = outcome.stdout_text;
        ++result.completed;
        result.finished_at = now;
      } else {
        still_pending.push_back(i);
      }
      now += static_cast<util::SimTime>(std::llround(outcome.latency_s));
    }
    pending = std::move(still_pending);
    // Next pass at the period boundary (or immediately after an overrun).
    pass_start = std::max(pass_start + config.pass_period, now);
  }
  result.complete = pending.empty();
  return result;
}

}  // namespace labmon::ddc
