// Frozen copy of the pre-optimisation W32Probe codec (see header). The code
// below is the original implementation verbatim, with the functions renamed.
#include "labmon/ddc/w32_probe_legacy.hpp"

#include <cmath>
#include <sstream>
#include <string_view>
#include <vector>

#include "labmon/smart/attributes.hpp"
#include "labmon/winsim/win32.hpp"
#include "labmon/util/strings.hpp"

namespace labmon::ddc {

std::string LegacyFormatW32ProbeOutput(const winsim::Machine& machine) {
  // Everything dynamic is read through the Win32-style facade — the same
  // API surface the real probe called on Windows 2000 (§3.1).
  namespace win32 = winsim::win32;
  const auto& spec = machine.spec();

  win32::SYSTEM_TIMEOFDAY_INFORMATION tod;
  (void)win32::NtQuerySystemInformation(machine, &tod);
  win32::SYSTEM_PERFORMANCE_INFORMATION perf;
  (void)win32::NtQuerySystemInformation(machine, &perf);
  win32::MEMORYSTATUS mem;
  win32::GlobalMemoryStatus(machine, &mem);
  win32::ULARGE_INTEGER free_avail{};
  win32::ULARGE_INTEGER total{};
  win32::ULARGE_INTEGER total_free{};
  (void)win32::GetDiskFreeSpaceExA(machine, &free_avail, &total, &total_free);
  win32::MIB_IFROW nic;
  (void)win32::GetIfEntry(machine, &nic);
  const auto& disk = machine.DiskSmartData();

  std::ostringstream out;
  out << "W32PROBE 1.2\n";
  out << "host: " << spec.name << '\n';
  out << "os: " << spec.os << '\n';
  out << "cpu: " << spec.cpu_model << " @ "
      << static_cast<int>(std::lround(spec.cpu_ghz * 1000.0)) << " MHz\n";
  out << "ram_mb: " << mem.dwTotalPhys / (1024 * 1024) << '\n';
  out << "swap_mb: " << mem.dwTotalPageFile / (1024 * 1024) << '\n';
  out << "mac0: " << spec.mac << '\n';
  out << "disk0_serial: " << spec.disk_serial << '\n';
  out << "disk0_total_b: " << total.QuadPart << '\n';

  out << "boot_time: " << tod.BootTime << '\n';
  out << "uptime_s: " << tod.CurrentTime - tod.BootTime << '\n';
  // The idle-thread counter is reported in 100 ns units by the kernel.
  out << "cpu_idle_s: "
      << util::FormatFixed(static_cast<double>(perf.IdleProcessTime) / 1e7, 2)
      << '\n';
  // dwMemoryLoad is an integer percentage.
  out << "mem_load_pct: " << mem.dwMemoryLoad << '\n';
  const auto swap_used = mem.dwTotalPageFile - mem.dwAvailPageFile;
  out << "swap_load_pct: "
      << static_cast<int>(std::lround(
             mem.dwTotalPageFile
                 ? 100.0 * static_cast<double>(swap_used) /
                       static_cast<double>(mem.dwTotalPageFile)
                 : 0.0))
      << '\n';
  out << "disk0_free_b: " << total_free.QuadPart << '\n';
  out << "smart_power_on_hours: " << disk.PowerOnHours() << '\n';
  out << "smart_power_cycles: " << disk.PowerCycles() << '\n';
  out << "net_sent_b: " << nic.OutOctets64 << '\n';
  out << "net_recv_b: " << nic.InOctets64 << '\n';
  std::string user;
  win32::LONGLONG logon = 0;
  if (win32::WTSQuerySessionInformation(machine, &user, &logon) ==
      win32::TRUE_) {
    out << "session: " << user << ' ' << logon << '\n';
  } else {
    out << "session: none\n";
  }
  return out.str();
}

namespace {

/// Field accumulator with mandatory-key tracking.
class FieldMap {
 public:
  void Put(std::string_view key, std::string_view value) {
    keys_.emplace_back(key);
    values_.emplace_back(value);
  }
  [[nodiscard]] const std::string* Find(std::string_view key) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) return &values_[i];
    }
    return nullptr;
  }

 private:
  std::vector<std::string> keys_;
  std::vector<std::string> values_;
};

}  // namespace

util::Result<W32Sample> LegacyParseW32ProbeOutput(const std::string& text) {
  using R = util::Result<W32Sample>;
  const auto lines = util::Split(text, '\n');
  if (lines.empty() || util::Trim(lines.front()) != "W32PROBE 1.2") {
    return R::Err("missing W32PROBE banner");
  }
  FieldMap fields;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = util::Trim(lines[i]);
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      return R::Err("malformed line: " + std::string(line));
    }
    fields.Put(util::Trim(line.substr(0, colon)),
               util::Trim(line.substr(colon + 1)));
  }

  W32Sample s;
  const auto need = [&](const char* key) -> const std::string* {
    return fields.Find(key);
  };
  const auto need_i64 = [&](const char* key,
                            std::int64_t& out) -> const char* {
    const std::string* v = need(key);
    if (!v) return key;
    const auto parsed = util::ParseInt64(*v);
    if (!parsed) return key;
    out = *parsed;
    return nullptr;
  };
  const auto need_u64 = [&](const char* key,
                            std::uint64_t& out) -> const char* {
    std::int64_t tmp = 0;
    const char* err = need_i64(key, tmp);
    if (err || tmp < 0) return key;
    out = static_cast<std::uint64_t>(tmp);
    return nullptr;
  };

  const std::string* host = need("host");
  if (!host) return R::Err("missing field: host");
  s.host = *host;
  if (const std::string* os = need("os")) s.os = *os;
  if (const std::string* cpu = need("cpu")) {
    s.cpu_model = *cpu;
    const auto at = cpu->find('@');
    if (at != std::string::npos) {
      s.cpu_model = std::string(util::Trim(cpu->substr(0, at)));
      const auto mhz_text = cpu->substr(at + 1);
      const auto mhz_end = mhz_text.find("MHz");
      if (const auto mhz = util::ParseInt64(
              util::Trim(mhz_text.substr(0, mhz_end)))) {
        s.cpu_mhz = static_cast<int>(*mhz);
      }
    }
  }
  if (const std::string* v = need("mac0")) s.mac = *v;
  if (const std::string* v = need("disk0_serial")) s.disk_serial = *v;

  std::int64_t tmp = 0;
  for (const char* key : {"ram_mb", "swap_mb"}) {
    if (const char* err = need_i64(key, tmp)) {
      return R::Err(std::string("missing/garbled field: ") + err);
    }
    if (std::string_view(key) == "ram_mb") s.ram_mb = static_cast<int>(tmp);
    if (std::string_view(key) == "swap_mb") s.swap_mb = static_cast<int>(tmp);
  }

  if (const char* err = need_i64("boot_time", s.boot_time)) {
    return R::Err(std::string("missing/garbled field: ") + err);
  }
  if (const char* err = need_i64("uptime_s", s.uptime_s)) {
    return R::Err(std::string("missing/garbled field: ") + err);
  }
  const std::string* idle = need("cpu_idle_s");
  if (!idle) return R::Err("missing field: cpu_idle_s");
  const auto idle_parsed = util::ParseDouble(*idle);
  if (!idle_parsed) return R::Err("garbled field: cpu_idle_s");
  s.cpu_idle_s = *idle_parsed;

  if (const char* err = need_i64("mem_load_pct", tmp)) {
    return R::Err(std::string("missing/garbled field: ") + err);
  }
  s.mem_load_pct = static_cast<int>(tmp);
  if (const char* err = need_i64("swap_load_pct", tmp)) {
    return R::Err(std::string("missing/garbled field: ") + err);
  }
  s.swap_load_pct = static_cast<int>(tmp);

  for (const char* err :
       {need_u64("disk0_total_b", s.disk_total_b),
        need_u64("disk0_free_b", s.disk_free_b),
        need_u64("smart_power_on_hours", s.smart_power_on_hours),
        need_u64("smart_power_cycles", s.smart_power_cycles),
        need_u64("net_sent_b", s.net_sent_b),
        need_u64("net_recv_b", s.net_recv_b)}) {
    if (err) return R::Err(std::string("missing/garbled field: ") + err);
  }

  const std::string* session = need("session");
  if (!session) return R::Err("missing field: session");
  if (*session != "none") {
    const auto parts = util::Split(*session, ' ');
    if (parts.size() != 2) return R::Err("garbled session field");
    const auto logon = util::ParseInt64(parts[1]);
    if (!logon) return R::Err("garbled session logon time");
    s.session_user = parts[0];
    s.session_logon_time = *logon;
  }
  return s;
}

}  // namespace labmon::ddc
