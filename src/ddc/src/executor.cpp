#include "labmon/ddc/executor.hpp"

#include <algorithm>

#include "labmon/ddc/w32_probe.hpp"

namespace labmon::ddc {

RemoteExecutor::RemoteExecutor(ExecPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed) {}

namespace {

/// Fills everything but the probe payload; returns true when the attempt
/// succeeded and the probe should actually run. One function so Execute and
/// ExecuteStructured draw from the RNG identically.
bool TransportAttempt(const ExecPolicy& policy, util::Rng& rng,
                      const winsim::Machine& machine, ExecOutcome* outcome) {
  if (!machine.powered_on()) {
    outcome->status = ExecOutcome::Status::kTimeout;
    outcome->latency_s = std::max(
        policy.offline_timeout_min_s,
        rng.Normal(policy.offline_timeout_mean_s,
                   policy.offline_timeout_sigma_s));
    outcome->exit_code = -1;
    outcome->stderr_text = "psexec: could not connect to " +
                           machine.spec().name + ": timeout";
    return false;
  }
  if (rng.Bernoulli(policy.transient_failure_prob)) {
    outcome->status = ExecOutcome::Status::kError;
    outcome->latency_s = std::max(
        policy.success_latency_min_s,
        rng.Normal(policy.success_latency_mean_s,
                   policy.success_latency_sigma_s));
    outcome->exit_code = 2;
    outcome->stderr_text =
        "psexec: RPC server busy on " + machine.spec().name;
    return false;
  }
  outcome->status = ExecOutcome::Status::kOk;
  outcome->latency_s = std::max(
      policy.success_latency_min_s,
      rng.Normal(policy.success_latency_mean_s,
                 policy.success_latency_sigma_s));
  outcome->exit_code = 0;
  return true;
}

}  // namespace

ExecOutcome RemoteExecutor::Execute(Probe& probe, winsim::Machine& machine,
                                    util::SimTime t) {
  ExecOutcome outcome;
  if (TransportAttempt(policy_, rng_, machine, &outcome)) {
    outcome.stdout_text = probe.Execute(machine, t);
  }
  return outcome;
}

ExecOutcome RemoteExecutor::ExecuteStructured(Probe& probe,
                                              winsim::Machine& machine,
                                              util::SimTime t,
                                              W32Sample* structured_out,
                                              bool* structured_filled,
                                              bool also_text) {
  *structured_filled = false;
  ExecOutcome outcome;
  if (!TransportAttempt(policy_, rng_, machine, &outcome)) return outcome;
  if (structured_out != nullptr &&
      probe.ExecuteInto(machine, t, structured_out)) {
    *structured_filled = true;
    // The cross-check cadence keeps the text codec continuously verified
    // against the structured surface without paying for it on every sample.
    if (also_text) outcome.stdout_text = probe.Execute(machine, t);
  } else {
    outcome.stdout_text = probe.Execute(machine, t);
  }
  return outcome;
}

}  // namespace labmon::ddc
