#include "labmon/ddc/executor.hpp"

#include <algorithm>

namespace labmon::ddc {

RemoteExecutor::RemoteExecutor(ExecPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed) {}

ExecOutcome RemoteExecutor::Execute(Probe& probe, winsim::Machine& machine,
                                    util::SimTime t) {
  ExecOutcome outcome;
  if (!machine.powered_on()) {
    outcome.status = ExecOutcome::Status::kTimeout;
    outcome.latency_s = std::max(
        policy_.offline_timeout_min_s,
        rng_.Normal(policy_.offline_timeout_mean_s,
                    policy_.offline_timeout_sigma_s));
    outcome.exit_code = -1;
    outcome.stderr_text = "psexec: could not connect to " +
                          machine.spec().name + ": timeout";
    return outcome;
  }
  if (rng_.Bernoulli(policy_.transient_failure_prob)) {
    outcome.status = ExecOutcome::Status::kError;
    outcome.latency_s = std::max(
        policy_.success_latency_min_s,
        rng_.Normal(policy_.success_latency_mean_s,
                    policy_.success_latency_sigma_s));
    outcome.exit_code = 2;
    outcome.stderr_text =
        "psexec: RPC server busy on " + machine.spec().name;
    return outcome;
  }
  outcome.status = ExecOutcome::Status::kOk;
  outcome.latency_s = std::max(
      policy_.success_latency_min_s,
      rng_.Normal(policy_.success_latency_mean_s,
                  policy_.success_latency_sigma_s));
  outcome.exit_code = 0;
  outcome.stdout_text = probe.Execute(machine, t);
  return outcome;
}

}  // namespace labmon::ddc
