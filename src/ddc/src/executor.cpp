#include "labmon/ddc/executor.hpp"

#include <algorithm>

#include "labmon/ddc/w32_probe.hpp"
#include "labmon/faultsim/fault_injector.hpp"

namespace labmon::ddc {

ExecPolicy ExecPolicy::Validated() const noexcept {
  ExecPolicy p = *this;
  p.success_latency_sigma_s = std::max(0.0, p.success_latency_sigma_s);
  p.success_latency_min_s = std::max(0.01, p.success_latency_min_s);
  p.success_latency_mean_s =
      std::max(p.success_latency_min_s, p.success_latency_mean_s);
  p.offline_timeout_sigma_s = std::max(0.0, p.offline_timeout_sigma_s);
  p.offline_timeout_min_s = std::max(0.01, p.offline_timeout_min_s);
  p.offline_timeout_mean_s =
      std::max(p.offline_timeout_min_s, p.offline_timeout_mean_s);
  p.transient_failure_prob = std::clamp(p.transient_failure_prob, 0.0, 1.0);
  return p;
}

RetryPolicy RetryPolicy::Validated() const noexcept {
  RetryPolicy p = *this;
  p.max_attempts = std::max(1, p.max_attempts);
  p.backoff_initial_s = std::max(0.0, p.backoff_initial_s);
  p.backoff_multiplier = std::max(1.0, p.backoff_multiplier);
  p.backoff_max_s = std::max(p.backoff_initial_s, p.backoff_max_s);
  p.jitter_fraction = std::clamp(p.jitter_fraction, 0.0, 1.0);
  p.iteration_budget_s = std::max(0.0, p.iteration_budget_s);
  return p;
}

RemoteExecutor::RemoteExecutor(ExecPolicy policy, std::uint64_t seed,
                               faultsim::FaultInjector* faults)
    : policy_(policy.Validated()), rng_(seed), faults_(faults) {}

namespace {

/// Fills everything but the probe payload; returns true when the attempt
/// succeeded and the probe should actually run. One function so Execute and
/// ExecuteStructured draw from the RNG identically.
bool TransportAttempt(const ExecPolicy& policy, util::Rng& rng,
                      const winsim::Machine& machine, ExecOutcome* outcome) {
  if (!machine.powered_on()) {
    outcome->status = ExecOutcome::Status::kTimeout;
    outcome->latency_s = std::max(
        policy.offline_timeout_min_s,
        rng.Normal(policy.offline_timeout_mean_s,
                   policy.offline_timeout_sigma_s));
    outcome->exit_code = -1;
    outcome->stderr_text = "psexec: could not connect to " +
                           machine.spec().name + ": timeout";
    return false;
  }
  if (rng.Bernoulli(policy.transient_failure_prob)) {
    outcome->status = ExecOutcome::Status::kError;
    outcome->latency_s = std::max(
        policy.success_latency_min_s,
        rng.Normal(policy.success_latency_mean_s,
                   policy.success_latency_sigma_s));
    outcome->exit_code = 2;
    outcome->stderr_text =
        "psexec: RPC server busy on " + machine.spec().name;
    return false;
  }
  outcome->status = ExecOutcome::Status::kOk;
  outcome->latency_s = std::max(
      policy.success_latency_min_s,
      rng.Normal(policy.success_latency_mean_s,
                 policy.success_latency_sigma_s));
  outcome->exit_code = 0;
  return true;
}

/// Converts an injected transport fault into a finished outcome.
void FillFromFault(const faultsim::TransportFault& fault,
                   const winsim::Machine& machine, ExecOutcome* outcome) {
  if (fault.kind == faultsim::TransportFault::Kind::kTimeout) {
    outcome->status = ExecOutcome::Status::kTimeout;
    outcome->exit_code = -1;
    outcome->stderr_text = "psexec: could not connect to " +
                           machine.spec().name + ": timeout (" +
                           fault.detail + ")";
  } else {
    outcome->status = ExecOutcome::Status::kError;
    outcome->exit_code = 2;
    outcome->stderr_text =
        std::string(fault.detail) + " on " + machine.spec().name;
  }
  outcome->latency_s = fault.latency_s;
}

}  // namespace

ExecOutcome RemoteExecutor::Execute(Probe& probe, winsim::Machine& machine,
                                    util::SimTime t) {
  ExecOutcome outcome;
  const bool faulted = faults_ != nullptr && faults_->active();
  if (faulted) {
    const faultsim::TransportFault fault = faults_->OnAttempt(machine.id(), t);
    if (fault.kind != faultsim::TransportFault::Kind::kNone) {
      FillFromFault(fault, machine, &outcome);
      return outcome;
    }
  }
  if (TransportAttempt(policy_, rng_, machine, &outcome)) {
    if (faulted) {
      faults_->BeforeProbe(machine, t);
      const faultsim::WireFault wire = faults_->PlanWire();
      outcome.stdout_text = probe.Execute(machine, t);
      faults_->ApplyWire(wire, &outcome.stdout_text);
      outcome.latency_s *= wire.latency_multiplier;
    } else {
      outcome.stdout_text = probe.Execute(machine, t);
    }
  }
  return outcome;
}

ExecOutcome RemoteExecutor::ExecuteStructured(Probe& probe,
                                              winsim::Machine& machine,
                                              util::SimTime t,
                                              W32Sample* structured_out,
                                              bool* structured_filled,
                                              bool also_text) {
  *structured_filled = false;
  ExecOutcome outcome;
  const bool faulted = faults_ != nullptr && faults_->active();
  if (faulted) {
    const faultsim::TransportFault fault = faults_->OnAttempt(machine.id(), t);
    if (fault.kind != faultsim::TransportFault::Kind::kNone) {
      FillFromFault(fault, machine, &outcome);
      return outcome;
    }
  }
  if (!TransportAttempt(policy_, rng_, machine, &outcome)) return outcome;
  if (faulted) {
    faults_->BeforeProbe(machine, t);
    const faultsim::WireFault wire = faults_->PlanWire();
    outcome.latency_s *= wire.latency_multiplier;
    if (wire.kind != faultsim::WireFault::Kind::kNone) {
      // A mangled wire payload has no structured form — ship text only.
      outcome.stdout_text = probe.Execute(machine, t);
      faults_->ApplyWire(wire, &outcome.stdout_text);
      return outcome;
    }
  }
  if (structured_out != nullptr &&
      probe.ExecuteInto(machine, t, structured_out)) {
    *structured_filled = true;
    // The cross-check cadence keeps the text codec continuously verified
    // against the structured surface without paying for it on every sample.
    if (also_text) outcome.stdout_text = probe.Execute(machine, t);
  } else {
    outcome.stdout_text = probe.Execute(machine, t);
  }
  return outcome;
}

}  // namespace labmon::ddc
