#include "labmon/ddc/nbench_probe.hpp"

#include <sstream>

#include "labmon/util/strings.hpp"

namespace labmon::ddc {

namespace {

std::string Render(const std::string& host, double int_index, double fp_index) {
  std::ostringstream out;
  out << "NBENCHPROBE 1.0\n";
  out << "host: " << host << '\n';
  out << "int_index: " << util::FormatFixed(int_index, 2) << '\n';
  out << "fp_index: " << util::FormatFixed(fp_index, 2) << '\n';
  return out.str();
}

}  // namespace

std::string NBenchProbe::Execute(winsim::Machine& machine, util::SimTime t) {
  machine.AdvanceTo(t);
  // A real benchmark run would peg the CPU for minutes; on the simulated
  // fleet the published Table 1 indexes stand in for that run.
  const auto& spec = machine.spec();
  return Render(spec.name, spec.int_index, spec.fp_index);
}

std::string NBenchProbe::RunOnHost(const std::string& host_name,
                                   const nbench::SuiteConfig& config) {
  const auto scores = nbench::RunSuite(config);
  const auto indexes = nbench::ComputeIndexes(scores);
  return Render(host_name, indexes.int_index, indexes.fp_index);
}

util::Result<NBenchReport> ParseNBenchOutput(const std::string& text) {
  using R = util::Result<NBenchReport>;
  const auto lines = util::Split(text, '\n');
  if (lines.empty() || util::Trim(lines.front()) != "NBENCHPROBE 1.0") {
    return R::Err("missing NBENCHPROBE banner");
  }
  NBenchReport report;
  bool have_int = false;
  bool have_fp = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = util::Trim(lines[i]);
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const auto key = util::Trim(line.substr(0, colon));
    const auto value = util::Trim(line.substr(colon + 1));
    if (key == "host") {
      report.host = std::string(value);
    } else if (key == "int_index") {
      const auto v = util::ParseDouble(value);
      if (!v) return R::Err("garbled int_index");
      report.int_index = *v;
      have_int = true;
    } else if (key == "fp_index") {
      const auto v = util::ParseDouble(value);
      if (!v) return R::Err("garbled fp_index");
      report.fp_index = *v;
      have_fp = true;
    }
  }
  if (report.host.empty() || !have_int || !have_fp) {
    return R::Err("incomplete nbench report");
  }
  return report;
}

}  // namespace labmon::ddc
