#include "labmon/ddc/coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "labmon/faultsim/fault_injector.hpp"
#include "labmon/obs/prof.hpp"

namespace labmon::ddc {

namespace {
/// Probe latencies live between ~0.3 s (LAN success) and ~15 s (dead-host
/// timeout); buckets cover both regimes.
const std::vector<double> kLatencyBounds = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
/// Iteration durations in seconds; the paper's period is 900 s, overruns
/// reach into the tens of minutes.
const std::vector<double> kIterationBounds = {300.0,  600.0,  900.0,
                                              1200.0, 1800.0, 3600.0};
/// Overrun beyond the period, seconds (0-bucket = iteration fit the period).
const std::vector<double> kOverrunBounds = {0.0,   60.0,   120.0,
                                            300.0, 600.0, 1800.0};
/// Retry backoff delays, seconds.
const std::vector<double> kBackoffBounds = {1.0, 2.0, 5.0, 10.0, 30.0, 60.0};
}  // namespace

Coordinator::Coordinator(winsim::Fleet& fleet, Probe& probe,
                         CoordinatorConfig config, SampleSink& sink,
                         AdvanceFn advance)
    : fleet_(fleet),
      probe_(probe),
      config_(config),
      sink_(sink),
      advance_(advance),
      executor_(config.exec_policy, config.seed, config.faults),
      // Jitter gets its own stream (seed-derived) so enabling retries never
      // perturbs the transport RNG for non-retried attempts.
      retry_rng_(config.seed ^ 0x9e3779b97f4a7c15ULL) {
  config_.retry = config.retry.Validated();
  first_ = std::min(config_.first_machine, fleet_.size());
  end_ = config_.machine_count == 0
             ? fleet_.size()
             : std::min(first_ + config_.machine_count, fleet_.size());
  // Resolve instruments once: the probe loop must only touch cached
  // atomics, never the registry mutex or label strings.
  if (config_.metrics) BindInstruments();
}

void Coordinator::AdvanceTo(util::SimTime t) {
  if (advance_) advance_(t);
}

void Coordinator::BindInstruments() {
  obs::Registry& registry = *config_.metrics;
  machine_metrics_.resize(fleet_.size());
  for (std::size_t i = first_; i < end_; ++i) {
    const std::string& machine = fleet_.machine(i).spec().name;
    const std::string& lab = fleet_.labs()[fleet_.LabOf(i)].name;
    MachineInstruments& m = machine_metrics_[i];
    m.attempts = &registry.GetCounter(
        "labmon_ddc_probe_attempts_total",
        "Remote probe executions attempted per machine",
        {{"machine", machine}, {"lab", lab}});
    m.ok = &registry.GetCounter(
        "labmon_ddc_probe_outcomes_total",
        "Probe attempt outcomes per machine",
        {{"machine", machine}, {"lab", lab}, {"outcome", "ok"}});
    m.timeout = &registry.GetCounter(
        "labmon_ddc_probe_outcomes_total", "",
        {{"machine", machine}, {"lab", lab}, {"outcome", "timeout"}});
    m.error = &registry.GetCounter(
        "labmon_ddc_probe_outcomes_total", "",
        {{"machine", machine}, {"lab", lab}, {"outcome", "error"}});
  }
  const char* outcome_names[3] = {"ok", "timeout", "error"};
  for (int s = 0; s < 3; ++s) {
    latency_hist_[s] = &registry.GetHistogram(
        "labmon_ddc_probe_latency_seconds", kLatencyBounds,
        "Wall time one remote execution attempt consumed",
        {{"outcome", outcome_names[s]}});
  }
  iteration_hist_ = &registry.GetHistogram(
      "labmon_ddc_iteration_seconds", kIterationBounds,
      "Duration of one full sweep over the machine set");
  overrun_hist_ = &registry.GetHistogram(
      "labmon_ddc_iteration_overrun_seconds", kOverrunBounds,
      "Seconds an iteration ran past the sampling period");
  overrun_gauge_ = &registry.GetGauge(
      "labmon_ddc_iteration_overrun_current_seconds",
      "Overrun of the most recent iteration");
  iterations_counter_ = &registry.GetCounter(
      "labmon_ddc_iterations_total", "Completed coordinator iterations");
  retry_counter_ = &registry.GetCounter(
      "labmon_ddc_retry_attempts_total",
      "Extra probe attempts made beyond the first, per machine collection");
  recovered_counter_ = &registry.GetCounter(
      "labmon_ddc_collection_outcomes_total",
      "Terminal disposition of machine collections",
      {{"result", "recovered_after_retry"}});
  missing_counter_ = &registry.GetCounter(
      "labmon_ddc_collection_outcomes_total", "", {{"result", "missing"}});
  corrupt_counter_ = &registry.GetCounter(
      "labmon_ddc_collection_outcomes_total", "", {{"result", "corrupt"}});
  backoff_hist_ = &registry.GetHistogram(
      "labmon_ddc_retry_backoff_seconds", kBackoffBounds,
      "Backoff delay before each retry attempt");
}

void Coordinator::Tally(std::size_t machine_index,
                        const ExecOutcome& outcome) noexcept {
  ++attempts_;
  switch (outcome.status) {
    case ExecOutcome::Status::kOk: ++successes_; break;
    case ExecOutcome::Status::kTimeout: ++timeouts_; break;
    case ExecOutcome::Status::kError: ++errors_; break;
  }
  if (machine_metrics_.empty()) return;
  const MachineInstruments& m = machine_metrics_[machine_index];
  m.attempts->Increment();
  switch (outcome.status) {
    case ExecOutcome::Status::kOk: m.ok->Increment(); break;
    case ExecOutcome::Status::kTimeout: m.timeout->Increment(); break;
    case ExecOutcome::Status::kError: m.error->Increment(); break;
  }
  latency_hist_[static_cast<int>(outcome.status)]->Observe(outcome.latency_s);
}

ExecOutcome Coordinator::ExecuteOne(std::size_t machine_index,
                                    util::SimTime t,
                                    bool* structured_filled) {
  obs::Span span("executor.execute", config_.tracer);
  // Hot path (one call per probe attempt): sampled, not timed in full,
  // to stay inside the profiler's overhead budget.
  obs::prof::SampledPhaseScope prof_scope(obs::prof::Phase::kProbe);
  *structured_filled = false;
  ExecOutcome outcome;
  if (config_.structured_fast_path) {
    // Deterministic 1-in-N cadence: every Nth structured success also
    // renders the text so the sink can verify the codecs still agree.
    const bool also_text =
        config_.structured_crosscheck_period != 0 &&
        structured_ok_ % config_.structured_crosscheck_period == 0;
    outcome = executor_.ExecuteStructured(probe_, fleet_.machine(machine_index),
                                          t, &scratch_, structured_filled,
                                          also_text);
    if (*structured_filled) ++structured_ok_;
  } else {
    outcome = executor_.Execute(probe_, fleet_.machine(machine_index), t);
  }
  if (span.active()) {
    span.SetSimRange(
        t, t + static_cast<util::SimTime>(std::llround(outcome.latency_s)));
  }
  return outcome;
}

util::SimTime Coordinator::CollectOnce(std::size_t machine_index,
                                       std::uint64_t iteration,
                                       util::SimTime iteration_start,
                                       util::SimTime start) {
  const RetryPolicy& retry = config_.retry;
  const double budget = retry.iteration_budget_s > 0.0
                            ? retry.iteration_budget_s
                            : static_cast<double>(config_.period);
  util::SimTime now = start;
  double next_backoff = retry.backoff_initial_s;
  bool failed_before = false;
  bool did_retry = false;
  bool last_was_reject = false;
  for (std::uint32_t attempt = 1;; ++attempt) {
    // The behaviour driver is non-monotone-safe, so advancing again for a
    // retry instant is fine; per-machine probe times stay monotone.
    AdvanceTo(now);
    CollectedSample sample;
    sample.machine_index = machine_index;
    sample.iteration = iteration;
    sample.attempt_time = now;
    sample.attempt_number = attempt;
    bool structured = false;
    sample.outcome = ExecuteOne(machine_index, now, &structured);
    if (structured) sample.structured = &scratch_;
    sample.recovered = sample.outcome.ok() && failed_before;
    Tally(machine_index, sample.outcome);
    const SampleVerdict verdict = sink_.OnSample(sample);
    now += static_cast<util::SimTime>(std::llround(sample.outcome.latency_s));

    const bool rejected =
        sample.outcome.ok() && verdict == SampleVerdict::kRejected;
    if (sample.outcome.ok() && !rejected) {
      if (failed_before) {
        ++recovered_;
        if (recovered_counter_) recovered_counter_->Increment();
      }
      return now;
    }
    failed_before = true;
    last_was_reject = rejected;

    const bool retryable =
        rejected ? retry.retry_rejects
                 : (sample.outcome.status == ExecOutcome::Status::kError ||
                    retry.retry_timeouts);
    if (!retryable || attempt >= static_cast<std::uint32_t>(
                                     retry.max_attempts)) {
      break;
    }
    double delay = std::min(retry.backoff_max_s, next_backoff);
    next_backoff = std::min(retry.backoff_max_s,
                            next_backoff * retry.backoff_multiplier);
    if (retry.jitter_fraction > 0.0) {
      delay *= 1.0 + retry.jitter_fraction * (2.0 * retry_rng_.Uniform() - 1.0);
    }
    // Stay inside the iteration budget: the delay plus a conservative
    // estimate of the next attempt (a full dead-host timeout) must fit.
    const double elapsed = static_cast<double>(now - iteration_start);
    if (elapsed + delay + executor_.policy().offline_timeout_mean_s > budget) {
      break;
    }
    if (!did_retry) {
      did_retry = true;
      ++retried_collections_;
    }
    ++retry_attempts_;
    if (retry_counter_) retry_counter_->Increment();
    if (backoff_hist_) backoff_hist_->Observe(delay);
    now += static_cast<util::SimTime>(std::llround(delay));
  }
  // Retries exhausted (or never allowed): classify the hole in the trace.
  if (last_was_reject) {
    ++corrupt_;
    if (corrupt_counter_) corrupt_counter_->Increment();
  } else {
    ++missing_;
    if (missing_counter_) missing_counter_->Increment();
  }
  return now;
}

RunStats Coordinator::Run(util::SimTime start, util::SimTime end) {
  Begin(start);
  StepUntil(end);
  return Finish();
}

void Coordinator::Begin(util::SimTime start) {
  // Tallies are per-run; without this a second run would fold the first
  // run's counts into its RunStats.
  attempts_ = successes_ = timeouts_ = errors_ = 0;
  missing_ = corrupt_ = recovered_ = 0;
  retry_attempts_ = retried_collections_ = 0;
  structured_ok_ = 0;
  faults_before_ = config_.faults ? config_.faults->injected_total() : 0;
  run_start_ = start;
  boundary_ = start;
  iteration_start_ = start;
  last_iteration_end_ = start;
  iterations_done_ = 0;
  iteration_s_sum_ = 0.0;
  max_iteration_s_ = 0.0;
}

void Coordinator::StepUntil(util::SimTime until) {
  while (config_.aligned_schedule ? boundary_ < until
                                  : iteration_start_ < until) {
    if (config_.aligned_schedule) {
      // Carry a late sweep, never skip a boundary: every range runs the
      // same sweep count over [start, end).
      iteration_start_ = std::max(boundary_, iteration_start_);
    }
    util::SimTime iteration_end;
    {
      obs::Span span("coordinator.iteration", config_.tracer);
      iteration_end =
          config_.mode == CoordinatorConfig::Mode::kSequential
              ? RunIterationSequential(iterations_done_, iteration_start_)
              : RunIterationParallel(iterations_done_, iteration_start_);
      span.SetSimRange(iteration_start_, iteration_end);
    }
    sink_.OnIterationEnd(iterations_done_, iteration_start_, iteration_end);
    const double duration =
        static_cast<double>(iteration_end - iteration_start_);
    iteration_s_sum_ += duration;
    max_iteration_s_ = std::max(max_iteration_s_, duration);
    if (iterations_counter_) {
      iterations_counter_->Increment();
      iteration_hist_->Observe(duration);
      const double overrun =
          std::max(0.0, duration - static_cast<double>(config_.period));
      overrun_hist_->Observe(overrun);
      overrun_gauge_->Set(overrun);
    }
    ++iterations_done_;
    last_iteration_end_ = iteration_end;
    if (config_.aligned_schedule) {
      boundary_ += config_.period;
      iteration_start_ = iteration_end;
    } else {
      // Next attempt at the next period boundary — or immediately, when the
      // iteration overran the period (the paper's 6,883 < 7,392 effect).
      iteration_start_ =
          std::max(iteration_start_ + config_.period, iteration_end);
    }
  }
}

RunStats Coordinator::Finish() {
  RunStats stats;
  stats.iterations = iterations_done_;
  stats.max_iteration_s = max_iteration_s_;
  stats.mean_iteration_s =
      iterations_done_
          ? iteration_s_sum_ / static_cast<double>(iterations_done_)
          : 0.0;
  stats.total_span_s =
      iterations_done_
          ? static_cast<double>(last_iteration_end_ - run_start_)
          : 0.0;

  // Fold per-attempt tallies (kept by the sequential/parallel loops via the
  // member counters below).
  stats.attempts = attempts_;
  stats.successes = successes_;
  stats.timeouts = timeouts_;
  stats.errors = errors_;
  stats.missing = missing_;
  stats.corrupt = corrupt_;
  stats.recovered_after_retry = recovered_;
  stats.retry_attempts = retry_attempts_;
  stats.retried_collections = retried_collections_;
  stats.faults_injected =
      config_.faults ? config_.faults->injected_total() - faults_before_ : 0;
  return stats;
}

util::SimTime Coordinator::RunIterationSequential(std::uint64_t iteration,
                                                  util::SimTime start) {
  util::SimTime now = start;
  for (std::size_t i = first_; i < end_; ++i) {
    now = CollectOnce(i, iteration, start, now);
  }
  return std::max(now, start + 1);
}

util::SimTime Coordinator::RunIterationParallel(std::uint64_t iteration,
                                                util::SimTime start) {
  // k workers pull machines in index order; the earliest-free worker takes
  // the next machine. Processing assignments by start instant keeps the
  // co-simulation's time monotone.
  using WorkerFree = std::pair<util::SimTime, int>;
  std::priority_queue<WorkerFree, std::vector<WorkerFree>,
                      std::greater<WorkerFree>> workers;
  const int k = std::max(1, config_.workers);
  for (int w = 0; w < k; ++w) workers.emplace(start, w);

  util::SimTime latest = start;
  for (std::size_t i = first_; i < end_; ++i) {
    auto [free_at, worker] = workers.top();
    workers.pop();
    const util::SimTime done = CollectOnce(i, iteration, start, free_at);
    latest = std::max(latest, done);
    workers.emplace(done, worker);
  }
  return std::max(latest, start + 1);
}

}  // namespace labmon::ddc
