#include "labmon/ddc/coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace labmon::ddc {

Coordinator::Coordinator(winsim::Fleet& fleet, Probe& probe,
                         CoordinatorConfig config, SampleSink& sink,
                         std::function<void(util::SimTime)> advance)
    : fleet_(fleet),
      probe_(probe),
      config_(config),
      sink_(sink),
      advance_(std::move(advance)),
      executor_(config.exec_policy, config.seed) {}

void Coordinator::AdvanceTo(util::SimTime t) {
  if (advance_) advance_(t);
}

void Coordinator::Tally(const ExecOutcome& outcome) noexcept {
  ++attempts_;
  switch (outcome.status) {
    case ExecOutcome::Status::kOk: ++successes_; break;
    case ExecOutcome::Status::kTimeout: ++timeouts_; break;
    case ExecOutcome::Status::kError: ++errors_; break;
  }
}

RunStats Coordinator::Run(util::SimTime start, util::SimTime end) {
  RunStats stats;
  double iteration_s_sum = 0.0;
  util::SimTime iteration_start = start;
  while (iteration_start < end) {
    const util::SimTime iteration_end =
        config_.mode == CoordinatorConfig::Mode::kSequential
            ? RunIterationSequential(stats.iterations, iteration_start)
            : RunIterationParallel(stats.iterations, iteration_start);
    sink_.OnIterationEnd(stats.iterations, iteration_start, iteration_end);
    const double duration =
        static_cast<double>(iteration_end - iteration_start);
    iteration_s_sum += duration;
    stats.max_iteration_s = std::max(stats.max_iteration_s, duration);
    ++stats.iterations;
    stats.total_span_s = static_cast<double>(iteration_end - start);
    // Next attempt at the next period boundary — or immediately, when the
    // iteration overran the period (the paper's 6,883 < 7,392 effect).
    iteration_start = std::max(iteration_start + config_.period, iteration_end);
  }
  stats.mean_iteration_s =
      stats.iterations ? iteration_s_sum / static_cast<double>(stats.iterations)
                       : 0.0;

  // Fold per-attempt tallies (kept by the sequential/parallel loops via the
  // member counters below).
  stats.attempts = attempts_;
  stats.successes = successes_;
  stats.timeouts = timeouts_;
  stats.errors = errors_;
  return stats;
}

util::SimTime Coordinator::RunIterationSequential(std::uint64_t iteration,
                                                  util::SimTime start) {
  util::SimTime now = start;
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    AdvanceTo(now);
    CollectedSample sample;
    sample.machine_index = i;
    sample.iteration = iteration;
    sample.attempt_time = now;
    sample.outcome = executor_.Execute(probe_, fleet_.machine(i), now);
    Tally(sample.outcome);
    sink_.OnSample(sample);
    now += static_cast<util::SimTime>(
        std::llround(sample.outcome.latency_s));
  }
  return std::max(now, start + 1);
}

util::SimTime Coordinator::RunIterationParallel(std::uint64_t iteration,
                                                util::SimTime start) {
  // k workers pull machines in index order; the earliest-free worker takes
  // the next machine. Processing assignments by start instant keeps the
  // co-simulation's time monotone.
  using WorkerFree = std::pair<util::SimTime, int>;
  std::priority_queue<WorkerFree, std::vector<WorkerFree>,
                      std::greater<WorkerFree>> workers;
  const int k = std::max(1, config_.workers);
  for (int w = 0; w < k; ++w) workers.emplace(start, w);

  util::SimTime latest = start;
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    auto [free_at, worker] = workers.top();
    workers.pop();
    AdvanceTo(free_at);
    CollectedSample sample;
    sample.machine_index = i;
    sample.iteration = iteration;
    sample.attempt_time = free_at;
    sample.outcome = executor_.Execute(probe_, fleet_.machine(i), free_at);
    Tally(sample.outcome);
    sink_.OnSample(sample);
    const util::SimTime done =
        free_at +
        static_cast<util::SimTime>(std::llround(sample.outcome.latency_s));
    latest = std::max(latest, done);
    workers.emplace(done, worker);
  }
  return std::max(latest, start + 1);
}

}  // namespace labmon::ddc
