#include "labmon/ddc/archive.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "labmon/faultsim/fault_injector.hpp"
#include "labmon/util/csv.hpp"
#include "labmon/util/strings.hpp"

namespace labmon::ddc {

namespace {

std::string LogPath(const std::string& directory, std::size_t machine) {
  char name[32];
  std::snprintf(name, sizeof name, "machine_%04zu.log", machine);
  return directory + "/" + name;
}

}  // namespace

struct OutputArchive::Impl {
  std::vector<std::ofstream> logs;  ///< lazily opened, append mode
};

OutputArchive::OutputArchive(std::string directory,
                             std::vector<std::string> names,
                             faultsim::FaultInjector* faults)
    : directory_(std::move(directory)),
      machine_names_(std::move(names)),
      faults_(faults),
      impl_(std::make_unique<Impl>()) {
  impl_->logs.resize(machine_names_.size());
}

OutputArchive::~OutputArchive() { Close(); }

util::Result<std::unique_ptr<OutputArchive>> OutputArchive::Open(
    const std::string& directory,
    const std::vector<std::string>& machine_names,
    faultsim::FaultInjector* faults) {
  using R = util::Result<std::unique_ptr<OutputArchive>>;
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return R::Err("cannot create archive directory: " + directory);

  // Manifest: one machine name per line, index order.
  std::string manifest;
  for (const auto& name : machine_names) {
    manifest += name;
    manifest += '\n';
  }
  const auto written =
      util::WriteTextFile(directory + "/MANIFEST", manifest);
  if (!written.ok()) return R::Err(written.error());

  return std::unique_ptr<OutputArchive>(
      new OutputArchive(directory, machine_names, faults));
}

SampleVerdict OutputArchive::OnSample(const CollectedSample& sample) {
  if (!sample.outcome.ok()) return SampleVerdict::kAccepted;
  if (sample.machine_index >= impl_->logs.size()) {
    return SampleVerdict::kRejected;
  }
  if (faults_ != nullptr && faults_->FailArchiveWrite()) {
    ++writes_failed_;
    return SampleVerdict::kRejected;
  }
  auto& log = impl_->logs[sample.machine_index];
  if (!log.is_open()) {
    log.open(LogPath(directory_, sample.machine_index),
             std::ios::app | std::ios::binary);
    if (!log) return SampleVerdict::kRejected;
  }
  // Entry header: "@ <iteration> <t> <payload bytes>".
  log << "@ " << sample.iteration << ' ' << sample.attempt_time << ' '
      << sample.outcome.stdout_text.size() << '\n'
      << sample.outcome.stdout_text << '\n';
  ++entries_;
  return SampleVerdict::kAccepted;
}

void OutputArchive::OnIterationEnd(std::uint64_t, util::SimTime,
                                   util::SimTime) {}

void OutputArchive::Close() {
  if (!impl_) return;
  for (auto& log : impl_->logs) {
    if (log.is_open()) log.close();
  }
}

util::Result<std::uint64_t> ReplayMachineLog(
    const std::string& directory, std::size_t machine_index,
    const std::function<void(const ArchiveEntry&)>& fn) {
  using R = util::Result<std::uint64_t>;
  const auto text = util::ReadTextFile(LogPath(directory, machine_index));
  if (!text.ok()) return R::Err(text.error());
  const std::string& data = text.value();

  std::uint64_t replayed = 0;
  std::size_t pos = 0;
  while (pos < data.size()) {
    if (data[pos] != '@') return R::Err("corrupt log: missing entry header");
    const auto header_end = data.find('\n', pos);
    if (header_end == std::string::npos) return R::Err("truncated header");
    const auto fields =
        util::Split(data.substr(pos + 2, header_end - pos - 2), ' ');
    if (fields.size() != 3) return R::Err("garbled entry header");
    const auto iteration = util::ParseInt64(fields[0]);
    const auto t = util::ParseInt64(fields[1]);
    const auto bytes = util::ParseInt64(fields[2]);
    if (!iteration || !t || !bytes || *bytes < 0) {
      return R::Err("garbled entry header numbers");
    }
    const std::size_t payload_start = header_end + 1;
    const auto payload_len = static_cast<std::size_t>(*bytes);
    if (payload_start + payload_len + 1 > data.size() + 1) {
      return R::Err("truncated entry payload");
    }
    ArchiveEntry entry;
    entry.machine_index = machine_index;
    entry.iteration = static_cast<std::uint64_t>(*iteration);
    entry.t = *t;
    entry.stdout_text = data.substr(payload_start, payload_len);
    fn(entry);
    ++replayed;
    pos = payload_start + payload_len + 1;  // +1: trailing newline
  }
  return replayed;
}

util::Result<std::vector<std::string>> ReadManifest(
    const std::string& directory) {
  using R = util::Result<std::vector<std::string>>;
  const auto text = util::ReadTextFile(directory + "/MANIFEST");
  if (!text.ok()) return R::Err(text.error());
  std::vector<std::string> names;
  for (auto& line : util::Split(text.value(), '\n')) {
    if (!line.empty()) names.push_back(std::move(line));
  }
  return names;
}

}  // namespace labmon::ddc
