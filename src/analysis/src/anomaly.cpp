#include "labmon/analysis/anomaly.hpp"

#include <cmath>

namespace labmon::analysis {

AnomalyDetector::AnomalyDetector(std::size_t machine_count,
                                 AnomalyOptions options,
                                 obs::JsonlWriter* writer)
    : options_(options),
      writer_(writer),
      mem_load_(machine_count),
      cpu_idle_(machine_count) {}

void AnomalyDetector::OnSample(std::int64_t t, std::uint32_t machine,
                               double mem_load_pct) {
  if (machine >= mem_load_.size()) return;
  Observe(t, machine, "mem_load_pct", mem_load_[machine], mem_load_pct);
}

void AnomalyDetector::OnInterval(std::int64_t t, std::uint32_t machine,
                                 double cpu_idle_pct) {
  if (machine >= cpu_idle_.size()) return;
  Observe(t, machine, "cpu_idle_pct", cpu_idle_[machine], cpu_idle_pct);
}

void AnomalyDetector::Observe(std::int64_t t, std::uint32_t machine,
                              const char* metric, stats::RunningStats& track,
                              double value) {
  ++observations_;
  // Score against the pre-update statistics so the outlier itself does
  // not widen the band it is judged by.
  if (static_cast<std::uint64_t>(track.count()) >= options_.min_samples) {
    const double stddev = track.stddev();
    if (stddev > 0.0) {
      const double z = (value - track.mean()) / stddev;
      if (std::abs(z) >= options_.threshold) {
        ++anomalies_;
        if (writer_ != nullptr) {
          writer_->Begin("anomaly")
              .Field("t", t)
              .Field("machine", static_cast<std::uint64_t>(machine))
              .Field("metric", metric)
              .Field("value", value)
              .Field("mean", track.mean())
              .Field("stddev", stddev)
              .Field("z", z);
          writer_->End();
        }
      }
    }
  }
  track.Add(value);
}

std::uint64_t ScanForAnomalies(trace::TraceReader& reader,
                               std::size_t machine_count,
                               AnomalyDetector& detector,
                               const trace::IntervalOptions& intervals) {
  const std::uint64_t before = detector.anomalies();
  struct Cursor {
    trace::IntervalEndpoint prev;
    bool has_prev = false;
  };
  std::vector<Cursor> cursors(machine_count);
  while (const trace::TraceBlock* block = reader.Next()) {
    const auto& c = block->cols;
    for (std::size_t i = 0; i < block->size(); ++i) {
      const std::uint32_t m = c.machine[i];
      if (m >= cursors.size()) continue;
      detector.OnSample(c.t[i], m, c.mem_load_pct[i]);
      Cursor& cur = cursors[m];
      const auto endpoint = trace::detail::LoadEndpoint(
          c, static_cast<std::uint32_t>(i));
      if (cur.has_prev) {
        trace::detail::EmitIntervalFromEndpoints(
            cur.prev, endpoint, m, intervals,
            [] { return trace::LoginClass::kNoLogin; },
            [&](const trace::SampleInterval& interval) {
              detector.OnInterval(interval.end_t, m, interval.cpu_idle_pct);
            });
      }
      cur.prev = endpoint;
      cur.has_prev = true;
    }
  }
  return detector.anomalies() - before;
}

}  // namespace labmon::analysis
