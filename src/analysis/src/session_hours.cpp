#include "labmon/analysis/session_hours.hpp"

#include "labmon/obs/span.hpp"

#include <algorithm>
#include <limits>

#include "labmon/stats/running_stats.hpp"
#include "labmon/trace/intervals.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/util/table.hpp"

namespace labmon::analysis {

SessionHourProfile ComputeSessionHourProfile(const trace::TraceStore& trace,
                                             int max_hours) {
  obs::Span span("analysis.session_hours");
  std::vector<stats::RunningStats> bins(
      static_cast<std::size_t>(max_hours) + 1);

  trace::IntervalOptions options;
  // No reclassification here: Figure 2 is computed on raw login samples.
  options.forgotten_threshold_s = std::numeric_limits<std::int64_t>::max();
  trace::ForEachInterval(trace, options, [&](const trace::SampleInterval& i) {
    const auto& closing = trace.samples()[i.end_index];
    if (!closing.has_session) return;
    const auto hour = closing.SessionSeconds() / 3600;
    const auto bin = static_cast<std::size_t>(
        std::min<std::int64_t>(hour, max_hours));
    bins[bin].Add(i.cpu_idle_pct);
  });

  SessionHourProfile profile;
  profile.bins.reserve(bins.size());
  for (std::size_t h = 0; h < bins.size(); ++h) {
    SessionHourBin bin;
    bin.hour = static_cast<int>(h);
    bin.samples = static_cast<std::uint64_t>(bins[h].count());
    bin.mean_cpu_idle_pct = bins[h].mean();
    profile.bins.push_back(bin);
    if (profile.first_bin_above_99 < 0 && bin.samples > 0 &&
        bin.mean_cpu_idle_pct >= 99.0) {
      profile.first_bin_above_99 = bin.hour;
    }
  }
  return profile;
}

std::string RenderSessionHourProfile(const SessionHourProfile& profile) {
  util::AsciiTable table(
      "Figure 2: samples of interactive sessions grouped by relative hour "
      "since logon");
  table.SetHeader({"Hour bin", "Samples", "Avg CPU idle (%)"});
  for (const auto& bin : profile.bins) {
    const std::string label =
        bin.hour == static_cast<int>(profile.bins.size()) - 1
            ? "[" + std::to_string(bin.hour) + "+"
            : "[" + std::to_string(bin.hour) + "-" +
                  std::to_string(bin.hour + 1) + "[";
    table.AddRow({label, std::to_string(bin.samples),
                  util::FormatFixed(bin.mean_cpu_idle_pct, 2)});
  }
  std::string out = table.Render();
  out += "first bin with avg idleness >= 99%: [" +
         std::to_string(profile.first_bin_above_99) + "-" +
         std::to_string(profile.first_bin_above_99 + 1) +
         "[ (paper: [10-11[)\n";
  return out;
}

}  // namespace labmon::analysis
