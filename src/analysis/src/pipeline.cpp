#include "labmon/analysis/pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "labmon/obs/span.hpp"
#include "labmon/util/parallel.hpp"

namespace labmon::analysis {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

AnalysisPass& AnalysisPipeline::Add(std::unique_ptr<AnalysisPass> pass) {
  passes_.push_back(std::move(pass));
  return *passes_.back();
}

PipelineRunStats AnalysisPipeline::Run(const trace::DerivedTrace& derived) {
  obs::Span run_span("analysis.pipeline.run");
  const PassContext ctx{derived.trace(), derived};

  PipelineRunStats stats;
  stats.machines = ctx.trace.machine_count();
  const std::size_t per_chunk =
      std::max<std::size_t>(1, options_.machines_per_chunk);
  stats.chunks = (stats.machines + per_chunk - 1) / per_chunk;
  stats.workers =
      options_.workers == 0 ? util::DefaultWorkerCount() : options_.workers;
  stats.passes.resize(passes_.size());
  for (std::size_t p = 0; p < passes_.size(); ++p) {
    stats.passes[p].name = std::string(passes_[p]->name());
  }

  // Parallel sweep: per chunk, one state per pass; each machine's data is
  // fed to every pass while it is cache-hot.
  std::vector<std::vector<std::unique_ptr<AnalysisPass::State>>> states(
      stats.chunks);
  std::vector<std::vector<double>> chunk_pass_seconds(
      stats.chunks, std::vector<double>(passes_.size(), 0.0));
  {
    obs::Span sweep_span("analysis.pipeline.sweep");
    const auto sweep_start = Clock::now();
    util::ParallelFor(
        stats.chunks,
        [&](std::size_t c) {
          auto& chunk_states = states[c];
          chunk_states.reserve(passes_.size());
          for (const auto& pass : passes_) {
            chunk_states.push_back(pass->MakeState(ctx));
          }
          const std::size_t begin = c * per_chunk;
          const std::size_t end =
              std::min(begin + per_chunk, stats.machines);
          for (std::size_t m = begin; m < end; ++m) {
            for (std::size_t p = 0; p < passes_.size(); ++p) {
              const auto pass_start = Clock::now();
              passes_[p]->AccumulateMachine(ctx, m, *chunk_states[p]);
              chunk_pass_seconds[c][p] += SecondsSince(pass_start);
            }
          }
        },
        options_.workers);
    stats.sweep_seconds = SecondsSince(sweep_start);
  }

  // Serial reduction in ascending chunk order — the association is fixed
  // by the chunk grid, never by the worker count.
  {
    obs::Span merge_span("analysis.pipeline.merge");
    const auto merge_start = Clock::now();
    for (std::size_t p = 0; p < passes_.size(); ++p) {
      const auto pass_start = Clock::now();
      auto total = passes_[p]->MakeState(ctx);
      for (std::size_t c = 0; c < stats.chunks; ++c) {
        passes_[p]->MergeState(*total, *states[c][p]);
      }
      passes_[p]->Finalize(ctx, *total);
      stats.passes[p].finalize_seconds = SecondsSince(pass_start);
      for (std::size_t c = 0; c < stats.chunks; ++c) {
        stats.passes[p].accumulate_seconds += chunk_pass_seconds[c][p];
      }
    }
    stats.merge_seconds = SecondsSince(merge_start);
  }

  if (options_.metrics != nullptr) {
    auto& metrics = *options_.metrics;
    metrics
        .GetCounter("labmon_analysis_pipeline_runs_total",
                    "AnalysisPipeline::Run invocations")
        .Increment();
    metrics
        .GetCounter("labmon_analysis_pipeline_machines_total",
                    "Machines swept by the analysis pipeline")
        .Increment(stats.machines);
    metrics
        .GetGauge("labmon_analysis_pipeline_workers",
                  "Worker threads of the last pipeline sweep")
        .Set(static_cast<double>(stats.workers));
    metrics
        .GetGauge("labmon_analysis_pipeline_sweep_seconds",
                  "Wall seconds of the last pipeline sweep")
        .Set(stats.sweep_seconds);
    for (const auto& timing : stats.passes) {
      metrics
          .GetCounter("labmon_analysis_pass_us_total",
                      "Per-pass accumulate CPU-time, microseconds",
                      {{"pass", timing.name}})
          .Increment(static_cast<std::uint64_t>(
              timing.accumulate_seconds * 1e6));
    }
  }
  return stats;
}

}  // namespace labmon::analysis
