#include "labmon/analysis/per_lab.hpp"

#include "labmon/obs/span.hpp"

#include <map>

#include "labmon/stats/running_stats.hpp"
#include "labmon/trace/intervals.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/util/table.hpp"

namespace labmon::analysis {

namespace {

struct LabAccumulator {
  std::uint64_t samples = 0;
  std::uint64_t occupied = 0;
  stats::RunningStats idle;
  stats::RunningStats ram;
  stats::RunningStats free_disk_gb;
};

}  // namespace

std::vector<LabUsage> ComputePerLabUsage(const trace::TraceStore& trace,
                                         const std::vector<LabKey>& labs,
                                         std::int64_t forgotten_threshold_s) {
  obs::Span span("analysis.per_lab");
  // Machine -> lab mapping.
  std::vector<std::size_t> lab_of(trace.machine_count(), labs.size());
  for (std::size_t l = 0; l < labs.size(); ++l) {
    for (std::size_t i = labs[l].first_machine;
         i < labs[l].first_machine + labs[l].machine_count &&
         i < lab_of.size();
         ++i) {
      lab_of[i] = l;
    }
  }

  std::vector<LabAccumulator> acc(labs.size() + 1);  // +1 = fleet total
  for (const auto& s : trace.samples()) {
    const std::size_t l =
        s.machine < lab_of.size() ? lab_of[s.machine] : labs.size();
    for (const std::size_t idx : {l, labs.size()}) {
      auto& a = acc[idx];
      ++a.samples;
      if (s.CountsAsOccupied(forgotten_threshold_s)) ++a.occupied;
      a.ram.Add(s.mem_load_pct);
      a.free_disk_gb.Add(static_cast<double>(s.disk_free_b) / 1e9);
      if (idx == labs.size()) break;  // avoid double count when l == fleet
    }
  }
  trace::IntervalOptions options;
  options.forgotten_threshold_s = forgotten_threshold_s;
  trace::ForEachInterval(trace, options, [&](const trace::SampleInterval& i) {
    const std::size_t l =
        i.machine < lab_of.size() ? lab_of[i.machine] : labs.size();
    if (l < labs.size()) acc[l].idle.Add(i.cpu_idle_pct);
    acc[labs.size()].idle.Add(i.cpu_idle_pct);
  });

  const double iterations = static_cast<double>(trace.iterations().size());
  std::vector<LabUsage> out;
  out.reserve(labs.size() + 1);
  for (std::size_t l = 0; l <= labs.size(); ++l) {
    LabUsage usage;
    if (l < labs.size()) {
      usage.name = labs[l].name;
      usage.machines = labs[l].machine_count;
    } else {
      usage.name = "Fleet";
      usage.machines = trace.machine_count();
    }
    const auto& a = acc[l];
    usage.samples = a.samples;
    const double attempts = iterations * static_cast<double>(usage.machines);
    usage.uptime_pct =
        attempts > 0.0 ? 100.0 * static_cast<double>(a.samples) / attempts
                       : 0.0;
    usage.occupied_pct =
        attempts > 0.0 ? 100.0 * static_cast<double>(a.occupied) / attempts
                       : 0.0;
    usage.cpu_idle_pct = a.idle.mean();
    usage.ram_load_pct = a.ram.mean();
    usage.free_disk_gb = a.free_disk_gb.mean();
    out.push_back(std::move(usage));
  }
  return out;
}

ResourceHeadroom ComputeResourceHeadroom(const trace::TraceStore& trace) {
  obs::Span span("analysis.headroom");
  ResourceHeadroom h;
  stats::RunningStats idle;
  stats::RunningStats unused_ram_pct;
  stats::RunningStats free_ram_mb;
  stats::RunningStats free_disk_gb;
  struct ClassAcc {
    stats::RunningStats pct;
    stats::RunningStats mb;
  };
  std::map<int, ClassAcc> classes;
  for (const auto& s : trace.samples()) {
    unused_ram_pct.Add(100.0 - s.mem_load_pct);
    free_disk_gb.Add(static_cast<double>(s.disk_free_b) / 1e9);
    if (s.ram_mb > 0) {
      free_ram_mb.Add(s.FreeRamMb());
      auto& acc = classes[s.ram_mb];
      acc.pct.Add(100.0 - s.mem_load_pct);
      acc.mb.Add(s.FreeRamMb());
    }
  }
  trace::ForEachInterval(trace, {}, [&](const trace::SampleInterval& i) {
    idle.Add(i.cpu_idle_pct);
  });
  h.cpu_idle_pct = idle.mean();
  h.unused_ram_pct = unused_ram_pct.mean();
  h.free_disk_gb_per_machine = free_disk_gb.mean();
  h.free_disk_tb_fleet =
      free_disk_gb.mean() * static_cast<double>(trace.machine_count()) / 1024.0;
  // Exact when the trace carries installed-RAM sizes; otherwise fall back
  // to the paper's fleet mean of 340.8 MB/machine (Table 1).
  const double mean_free_mb =
      free_ram_mb.count() > 0 ? free_ram_mb.mean()
                              : h.unused_ram_pct / 100.0 * 340.8;
  h.unused_ram_gb_fleet =
      mean_free_mb * static_cast<double>(trace.machine_count()) / 1024.0;
  for (auto& [ram_mb, acc] : classes) {
    MemoryClassHeadroom cls;
    cls.ram_mb = ram_mb;
    cls.samples = static_cast<std::uint64_t>(acc.pct.count());
    cls.unused_pct = acc.pct.mean();
    cls.free_mb = acc.mb.mean();
    h.by_ram_class.push_back(cls);
  }
  return h;
}

std::string RenderPerLabUsage(const std::vector<LabUsage>& labs) {
  util::AsciiTable table(
      "Per-laboratory usage (10-h forgotten rule applied)");
  table.SetHeader({"Lab", "Machines", "Samples", "Uptime %", "Occupied %",
                   "CPU idle %", "RAM %", "Free disk GB"});
  for (const auto& lab : labs) {
    if (lab.name == "Fleet") table.AddSeparator();
    table.AddRow({lab.name, std::to_string(lab.machines),
                  util::FormatWithThousands(
                      static_cast<std::int64_t>(lab.samples)),
                  util::FormatFixed(lab.uptime_pct, 1),
                  util::FormatFixed(lab.occupied_pct, 1),
                  util::FormatFixed(lab.cpu_idle_pct, 2),
                  util::FormatFixed(lab.ram_load_pct, 1),
                  util::FormatFixed(lab.free_disk_gb, 1)});
  }
  return table.Render();
}

std::string RenderResourceHeadroom(const ResourceHeadroom& h) {
  std::string out = "Fleet resource headroom (paper abstract in parens):\n";
  for (const auto& cls : h.by_ram_class) {
    out += "  " + std::to_string(cls.ram_mb) + " MB machines: " +
           util::FormatFixed(cls.unused_pct, 1) + "% unused (" +
           util::FormatFixed(cls.free_mb, 0) + " MB free on average)\n";
  }
  out += "  CPU idleness: " + util::FormatFixed(h.cpu_idle_pct, 1) +
         "% (97.9%)\n";
  out += "  unused main memory: " + util::FormatFixed(h.unused_ram_pct, 1) +
         "% (42.1%), ~" + util::FormatFixed(h.unused_ram_gb_fleet, 1) +
         " GB across the fleet\n";
  out += "  free disk: " + util::FormatFixed(h.free_disk_gb_per_machine, 1) +
         " GB/machine ('gigabytes per machine'), " +
         util::FormatFixed(h.free_disk_tb_fleet, 2) + " TB fleet-wide\n";
  return out;
}

}  // namespace labmon::analysis
