#include "labmon/analysis/stream_fold.hpp"

#include <algorithm>

#include "labmon/obs/prof.hpp"

namespace labmon::analysis {

namespace {

/// TraceStore::Classify over loose values (the streamed sample's columns).
[[nodiscard]] trace::LoginClass ClassifyValue(bool has_session,
                                              std::int64_t session_s,
                                              std::int64_t threshold_s) {
  if (!has_session) return trace::LoginClass::kNoLogin;
  return session_s >= threshold_s ? trace::LoginClass::kForgotten
                                  : trace::LoginClass::kWithLogin;
}

/// trace::ClassifyInterval over endpoint classes: the closing sample
/// decides, unless the opening one shows an occupied machine.
[[nodiscard]] trace::LoginClass IntervalClass(trace::LoginClass a,
                                              trace::LoginClass b) {
  if (b == trace::LoginClass::kWithLogin) return b;
  return a == trace::LoginClass::kWithLogin ? a : b;
}

}  // namespace

/// Per-machine cursor + the per-pass accumulators the materialised sweep
/// builds per machine. ~170 KB per machine (dominated by the five weekly
/// profiles), i.e. O(machines), independent of trace length.
struct StreamingAnalysis::MachineState {
  explicit MachineState(const StreamingAnalysisConfig& cfg)
      : hours(static_cast<std::size_t>(cfg.session_hours_max) + 1),
        weekly(cfg.bin_minutes) {}

  // Interval-emission cursor (previous sample of this machine).
  trace::IntervalEndpoint prev;
  bool has_prev = false;
  trace::LoginClass prev_cls = trace::LoginClass::kNoLogin;
  trace::LoginClass prev_cls_eq = trace::LoginClass::kNoLogin;

  // Session state machine (mirrors trace::AppendMachineSessions).
  bool session_open = false;
  std::int64_t open_boot_time = 0;
  std::int64_t open_last_uptime_s = 0;

  AggregatePass::MachineAcc agg;
  AvailabilityPass::MachineAcc avail;
  SessionHoursPass::MachineAcc hours;
  WeeklyPass::MachineAcc weekly;
  StabilityPass::MachineAcc stab;
  PerLabPass::MachineAcc lab;
};

StreamingAnalysis::StreamingAnalysis(StreamingAnalysisConfig config)
    : config_(std::move(config)),
      agg_pass_(config_.intervals),
      avail_pass_(config_.intervals.forgotten_threshold_s),
      hours_pass_(config_.session_hours_max),
      weekly_pass_(config_.bin_minutes),
      eq_pass_(config_.perf_index, config_.bin_minutes,
               config_.equivalence_threshold_s),
      stab_pass_(config_.experiment_days),
      lab_pass_(config_.labs, config_.intervals.forgotten_threshold_s),
      cap_pass_(config_.capacity) {
  machines_.reserve(config_.machine_count);
  for (std::size_t m = 0; m < config_.machine_count; ++m) {
    machines_.emplace_back(config_);
  }
}

StreamingAnalysis::~StreamingAnalysis() = default;

std::uint64_t StreamingAnalysis::ConsumeRing(
    util::StagingRing<trace::TraceBlock>& ring,
    util::RecyclingPool<trace::TraceBlock>* recycle,
    std::uint64_t hash_seed) {
  obs::prof::PhaseScope prof_scope(obs::prof::Phase::kFold);
  std::uint64_t hash = hash_seed;
  trace::TraceBlock block;
  while (ring.Pop(block)) {
    hash = trace::HashBlockSamples(hash, block);
    Accept(block);
    if (recycle != nullptr) {
      block.Clear();
      recycle->Release(std::move(block));
    }
  }
  return hash;
}

void StreamingAnalysis::Accept(const trace::TraceBlock& block) {
  const trace::TraceStore::Columns& c = block.cols;
  for (std::size_t i = 0; i < block.size(); ++i) {
    const std::uint32_t m = c.machine[i];
    if (m >= machines_.size()) continue;
    const std::uint64_t it = c.iteration[i];
    if (iteration_open_ && it != current_iteration_) CloseIteration();
    current_iteration_ = it;
    iteration_open_ = true;

    MachineState& ms = machines_[m];
    const std::int64_t t = c.t[i];
    const std::int64_t boot = c.boot_time[i];
    const std::int64_t uptime = c.uptime_s[i];
    const bool has_session = c.has_session[i] != 0;
    const std::int64_t session_s = has_session ? t - c.session_logon[i] : 0;
    const trace::LoginClass cls = ClassifyValue(
        has_session, session_s, config_.intervals.forgotten_threshold_s);
    const trace::LoginClass cls_eq =
        ClassifyValue(has_session, session_s, config_.equivalence_threshold_s);

    // Session state machine: a changed boot epoch or shrinking uptime
    // closes the open session and opens a new one.
    if (!ms.session_open || boot != ms.open_boot_time ||
        uptime < ms.open_last_uptime_s) {
      if (ms.session_open) {
        ms.avail.AddSession(ms.open_last_uptime_s);
        ms.stab.AddSession(ms.open_last_uptime_s);
      }
      ms.session_open = true;
      ms.open_boot_time = boot;
    }
    ms.open_last_uptime_s = uptime;

    // Interval between this sample and the machine's previous one — the
    // same emission core the materialised derivation uses.
    const trace::IntervalEndpoint endpoint{t,
                                           boot,
                                           uptime,
                                           c.cpu_idle_s[i],
                                           c.net_sent_b[i],
                                           c.net_recv_b[i]};
    if (ms.has_prev) {
      trace::detail::EmitIntervalFromEndpoints(
          ms.prev, endpoint, m, config_.intervals,
          [&] { return IntervalClass(ms.prev_cls, cls); },
          [&](const trace::SampleInterval& iv) {
            ms.agg.AddInterval(iv.login_class, iv.cpu_idle_pct, iv.sent_bps,
                               iv.recv_bps);
            if (has_session) ms.hours.AddInterval(session_s, iv.cpu_idle_pct);
            ms.weekly.AddInterval(iv.end_t, iv.cpu_idle_pct, iv.sent_bps,
                                  iv.recv_bps);
            ms.lab.AddInterval(iv.cpu_idle_pct);
            if (eq_pass_.TracksMachine(m)) {
              eq_buffer_.push_back(
                  {m,
                   IntervalClass(ms.prev_cls_eq, cls_eq) ==
                       trace::LoginClass::kWithLogin,
                   eq_pass_.Contribution(m, iv.cpu_idle_pct)});
            }
            if (detector_ != nullptr) {
              detector_->OnInterval(iv.end_t, m, iv.cpu_idle_pct);
            }
          });
    }
    ms.prev = endpoint;
    ms.prev_cls = cls;
    ms.prev_cls_eq = cls_eq;
    ms.has_prev = true;

    // Sample-fed accumulators. Formulas mirror the TraceStore helpers the
    // materialised passes call (FreeRamMb, DiskUsedBytes).
    ms.agg.AddSample(cls, has_session, c.mem_load_pct[i], c.swap_load_pct[i],
                     static_cast<double>(c.disk_total_b[i] - c.disk_free_b[i]) /
                         1e9);
    ++ms.avail.responses;
    if (on_.size() <= it) {
      on_.resize(it + 1, 0);
      free_.resize(it + 1, 0);
    }
    ++on_[it];
    if (cls != trace::LoginClass::kWithLogin) ++free_[it];
    ms.weekly.AddSample(t, c.mem_load_pct[i], c.swap_load_pct[i]);
    ms.lab.AddSample(cls, c.mem_load_pct[i],
                     static_cast<double>(c.disk_free_b[i]) / 1e9, c.ram_mb[i],
                     c.ram_mb[i] * (100.0 - c.mem_load_pct[i]) / 100.0);
    ms.stab.AddSample(c.smart_power_on_hours[i], c.smart_power_cycles[i]);
    cap_buffer_.push_back(
        {m, c.ram_mb[i] * (100.0 - c.mem_load_pct[i]) / 100.0,
         static_cast<double>(c.disk_free_b[i]) / 1e9});
    if (detector_ != nullptr) detector_->OnSample(t, m, c.mem_load_pct[i]);
    ++samples_;
  }
}

void StreamingAnalysis::CloseIteration() {
  const std::uint64_t it = current_iteration_;
  iteration_open_ = false;
  if (eq_occupied_.size() <= it) {
    eq_occupied_.resize(it + 1, 0.0);
    eq_free_.resize(it + 1, 0.0);
  }
  if (cap_ram_mb_.size() <= it) {
    cap_ram_mb_.resize(it + 1, 0.0);
    cap_disk_gb_.resize(it + 1, 0.0);
  }

  // Replay the buffered contributions machine-sorted and chunk-grouped:
  // each chunk's contributions sum into a zero-initialised partial in
  // ascending machine order, and the partials add in ascending chunk
  // order — the exact floating-point association of the materialised
  // chunk sweep plus serial reduction. (A machine contributes at most one
  // sample per iteration, so the sort order is total.)
  const std::size_t per_chunk =
      std::max<std::size_t>(1, config_.machines_per_chunk);

  std::sort(eq_buffer_.begin(), eq_buffer_.end(),
            [](const EqEntry& a, const EqEntry& b) {
              return a.machine < b.machine;
            });
  for (std::size_t i = 0; i < eq_buffer_.size();) {
    const std::size_t chunk = eq_buffer_[i].machine / per_chunk;
    double occupied = 0.0;
    double free = 0.0;
    for (; i < eq_buffer_.size() && eq_buffer_[i].machine / per_chunk == chunk;
         ++i) {
      if (eq_buffer_[i].occupied) {
        occupied += eq_buffer_[i].contribution;
      } else {
        free += eq_buffer_[i].contribution;
      }
    }
    eq_occupied_[it] += occupied;
    eq_free_[it] += free;
  }
  eq_buffer_.clear();

  std::sort(cap_buffer_.begin(), cap_buffer_.end(),
            [](const CapEntry& a, const CapEntry& b) {
              return a.machine < b.machine;
            });
  for (std::size_t i = 0; i < cap_buffer_.size();) {
    const std::size_t chunk = cap_buffer_[i].machine / per_chunk;
    double ram_mb = 0.0;
    double disk_gb = 0.0;
    for (; i < cap_buffer_.size() &&
           cap_buffer_[i].machine / per_chunk == chunk;
         ++i) {
      ram_mb += cap_buffer_[i].ram_mb;
      disk_gb += cap_buffer_[i].disk_gb;
    }
    cap_ram_mb_[it] += ram_mb;
    cap_disk_gb_[it] += disk_gb;
  }
  cap_buffer_.clear();
}

StreamingAnalysisResult StreamingAnalysis::Finish(
    const trace::TraceStore& summary) {
  obs::prof::PhaseScope prof_scope(obs::prof::Phase::kAnalysis);
  if (iteration_open_) CloseIteration();
  for (MachineState& ms : machines_) {
    if (ms.session_open) {
      ms.avail.AddSession(ms.open_last_uptime_s);
      ms.stab.AddSession(ms.open_last_uptime_s);
      ms.session_open = false;
    }
  }

  // Per-iteration vectors sized exactly to the merged iteration metadata
  // (samples beyond it are dropped, as the materialised sweep drops them).
  const std::size_t iter_count = summary.iterations().size();
  on_.resize(iter_count, 0);
  free_.resize(iter_count, 0);
  eq_occupied_.resize(iter_count, 0.0);
  eq_free_.resize(iter_count, 0.0);
  cap_ram_mb_.resize(iter_count, 0.0);
  cap_disk_gb_.resize(iter_count, 0.0);

  // The summary store holds no samples, so the derivation is empty; every
  // Finalize only reads machine_count / iteration metadata through ctx.
  const trace::DerivedTrace derived(
      summary, trace::DerivedTraceOptions{config_.intervals});
  const PassContext ctx{summary, derived};

  // Replays AnalysisPipeline::Run's reduction: one state per chunk,
  // machines folded ascending within the chunk, chunk states merged
  // ascending into the total.
  const std::size_t per_chunk =
      std::max<std::size_t>(1, config_.machines_per_chunk);
  const std::size_t machine_count = machines_.size();
  const std::size_t chunks = (machine_count + per_chunk - 1) / per_chunk;
  const auto reduce = [&](auto& pass, auto&& fold) {
    auto total = pass.MakeState(ctx);
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      auto state = pass.MakeState(ctx);
      const std::size_t begin = chunk * per_chunk;
      const std::size_t end = std::min(begin + per_chunk, machine_count);
      for (std::size_t m = begin; m < end; ++m) fold(m, *state);
      pass.MergeState(*total, *state);
    }
    return total;
  };

  StreamingAnalysisResult result;
  {
    auto total = reduce(agg_pass_, [&](std::size_t m, AnalysisPass::State& s) {
      agg_pass_.FoldMachine(m, machines_[m].agg, s);
    });
    agg_pass_.Finalize(ctx, *total);
    result.table2 = agg_pass_.result();
  }
  {
    auto total =
        reduce(avail_pass_, [&](std::size_t m, AnalysisPass::State& s) {
          avail_pass_.FoldMachine(m, machines_[m].avail, s);
        });
    AvailabilityPass::AddIterationCounts(*total, on_, free_);
    avail_pass_.Finalize(ctx, *total);
    result.availability = avail_pass_.result();
  }
  {
    auto total =
        reduce(hours_pass_, [&](std::size_t m, AnalysisPass::State& s) {
          hours_pass_.FoldMachine(m, machines_[m].hours, s);
        });
    hours_pass_.Finalize(ctx, *total);
    result.session_hours = hours_pass_.result();
  }
  {
    auto total =
        reduce(weekly_pass_, [&](std::size_t m, AnalysisPass::State& s) {
          weekly_pass_.FoldMachine(m, machines_[m].weekly, s);
        });
    weekly_pass_.Finalize(ctx, *total);
    result.weekly = weekly_pass_.result();
  }
  {
    auto total = eq_pass_.MakeState(ctx);
    EquivalencePass::AddIterationSums(*total, eq_occupied_, eq_free_);
    eq_pass_.Finalize(ctx, *total);
    result.equivalence = eq_pass_.result();
  }
  {
    auto total =
        reduce(stab_pass_, [&](std::size_t m, AnalysisPass::State& s) {
          stab_pass_.FoldMachine(m, machines_[m].stab, s);
        });
    stab_pass_.Finalize(ctx, *total);
    result.stability = stab_pass_.result();
  }
  {
    auto total = reduce(lab_pass_, [&](std::size_t m, AnalysisPass::State& s) {
      lab_pass_.FoldMachine(m, machines_[m].lab, s);
    });
    lab_pass_.Finalize(ctx, *total);
    result.per_lab = lab_pass_.result();
  }
  {
    auto total = cap_pass_.MakeState(ctx);
    CapacityPass::AddIterationSums(*total, cap_ram_mb_, cap_disk_gb_);
    cap_pass_.Finalize(ctx, *total);
    result.capacity = cap_pass_.result();
  }
  return result;
}

}  // namespace labmon::analysis
