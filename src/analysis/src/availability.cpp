#include "labmon/analysis/availability.hpp"

#include "labmon/obs/span.hpp"

#include <algorithm>

#include "labmon/stats/nines.hpp"
#include "labmon/stats/running_stats.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/util/table.hpp"

namespace labmon::analysis {

AvailabilitySeries ComputeAvailabilitySeries(
    const trace::TraceStore& trace, std::int64_t forgotten_threshold_s) {
  obs::Span span("analysis.availability");
  AvailabilitySeries series;
  // Per-iteration counters (iterations appear in order in the metadata).
  std::vector<std::uint32_t> on(trace.iterations().size(), 0);
  std::vector<std::uint32_t> free(trace.iterations().size(), 0);
  for (const auto& s : trace.samples()) {
    if (s.iteration >= on.size()) continue;
    ++on[s.iteration];
    if (!s.CountsAsOccupied(forgotten_threshold_s)) ++free[s.iteration];
  }
  for (std::size_t i = 0; i < trace.iterations().size(); ++i) {
    const auto t = trace.iterations()[i].start_t;
    series.powered_on.Append(t, on[i]);
    series.user_free.Append(t, free[i]);
  }
  series.mean_powered_on = series.powered_on.Mean();
  series.mean_user_free = series.user_free.Mean();
  return series;
}

UptimeRanking ComputeUptimeRanking(const trace::TraceStore& trace) {
  const auto counts = trace.ResponsesPerMachine();
  std::vector<std::uint64_t> responses(trace.machine_count(), 0);
  for (std::size_t m = 0; m < responses.size() && m < counts.size(); ++m) {
    responses[m] = counts[m];
  }
  return ComputeUptimeRanking(responses, trace.iterations().size());
}

UptimeRanking ComputeUptimeRanking(
    std::span<const std::uint64_t> responses_per_machine,
    std::size_t iteration_count) {
  obs::Span span("analysis.uptime_ranking");
  UptimeRanking ranking;
  // Attempts per machine = iteration count (every iteration probes all).
  const auto attempts = static_cast<double>(iteration_count);
  ranking.entries.reserve(responses_per_machine.size());
  for (std::size_t m = 0; m < responses_per_machine.size(); ++m) {
    UptimeRanking::Entry entry;
    entry.machine = static_cast<std::uint32_t>(m);
    const auto responded = static_cast<double>(responses_per_machine[m]);
    entry.uptime_ratio = attempts > 0.0 ? responded / attempts : 0.0;
    entry.nines = stats::AvailabilityToNines(entry.uptime_ratio);
    ranking.entries.push_back(entry);
  }
  std::sort(ranking.entries.begin(), ranking.entries.end(),
            [](const auto& a, const auto& b) {
              return a.uptime_ratio > b.uptime_ratio;
            });
  for (const auto& e : ranking.entries) {
    if (e.uptime_ratio > 0.5) ++ranking.machines_above_half;
    if (e.uptime_ratio > 0.8) ++ranking.machines_above_08;
    if (e.uptime_ratio > 0.9) ++ranking.machines_above_09;
  }
  return ranking;
}

SessionLengthDistribution ComputeSessionLengthDistribution(
    const std::vector<trace::MachineSession>& sessions) {
  obs::Span span("analysis.session_lengths");
  SessionLengthDistribution dist{
      stats::Histogram(0.0, 96.0, 48), 0, 0.0, 0.0, 0.0, 0.0};
  stats::RunningStats lengths;
  double uptime_total_h = 0.0;
  double uptime_within_h = 0.0;
  std::uint64_t within = 0;
  for (const auto& s : sessions) {
    const double hours = static_cast<double>(s.last_uptime_s) / 3600.0;
    dist.histogram.Add(hours);
    lengths.Add(hours);
    uptime_total_h += hours;
    if (hours <= 96.0) {
      ++within;
      uptime_within_h += hours;
    }
  }
  dist.total_sessions = sessions.size();
  dist.fraction_within_96h =
      sessions.empty() ? 0.0
                       : 100.0 * static_cast<double>(within) /
                             static_cast<double>(sessions.size());
  dist.uptime_fraction_within_96h =
      uptime_total_h > 0.0 ? 100.0 * uptime_within_h / uptime_total_h : 0.0;
  dist.mean_hours = lengths.mean();
  dist.stddev_hours = lengths.stddev();
  return dist;
}

std::string RenderUptimeRanking(const UptimeRanking& ranking,
                                std::size_t step) {
  util::AsciiTable table(
      "Figure 4 (left): uptime ratio and availability in nines "
      "(machines sorted by cumulated uptime)");
  table.SetHeader({"Rank", "Uptime ratio", "Nines"});
  for (std::size_t i = 0; i < ranking.entries.size(); i += step) {
    const auto& e = ranking.entries[i];
    table.AddRow({std::to_string(i + 1),
                  util::FormatFixed(e.uptime_ratio, 3),
                  util::FormatFixed(e.nines, 3)});
  }
  std::string out = table.Render();
  out += "machines with uptime ratio > 0.5: " +
         std::to_string(ranking.machines_above_half) + " (paper: 30)\n";
  out += "machines with uptime ratio > 0.8: " +
         std::to_string(ranking.machines_above_08) + " (paper: <10)\n";
  out += "machines with uptime ratio > 0.9: " +
         std::to_string(ranking.machines_above_09) + " (paper: 0)\n";
  return out;
}

}  // namespace labmon::analysis
