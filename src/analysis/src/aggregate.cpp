#include "labmon/analysis/aggregate.hpp"

#include "labmon/obs/span.hpp"

#include "labmon/stats/running_stats.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/util/table.hpp"

namespace labmon::analysis {

namespace {

struct Accumulator {
  std::uint64_t samples = 0;
  stats::RunningStats cpu_idle;
  stats::RunningStats ram;
  stats::RunningStats swap;
  stats::RunningStats disk_used_gb;
  stats::RunningStats sent_bps;
  stats::RunningStats recv_bps;

  void AddSample(const trace::SampleRecord& s) {
    ++samples;
    ram.Add(s.mem_load_pct);
    swap.Add(s.swap_load_pct);
    disk_used_gb.Add(static_cast<double>(s.DiskUsedBytes()) / 1e9);
  }
  void AddInterval(const trace::SampleInterval& interval) {
    cpu_idle.Add(interval.cpu_idle_pct);
    sent_bps.Add(interval.sent_bps);
    recv_bps.Add(interval.recv_bps);
  }
  void FillColumn(Table2Column& col, std::uint64_t total_attempts) const {
    col.samples = samples;
    col.uptime_pct = total_attempts
                         ? 100.0 * static_cast<double>(samples) /
                               static_cast<double>(total_attempts)
                         : 0.0;
    col.cpu_idle_pct = cpu_idle.mean();
    col.ram_load_pct = ram.mean();
    col.swap_load_pct = swap.mean();
    col.disk_used_gb = disk_used_gb.mean();
    col.sent_bps = sent_bps.mean();
    col.recv_bps = recv_bps.mean();
  }
};

}  // namespace

Table2Result ComputeTable2(const trace::TraceStore& trace,
                           const trace::IntervalOptions& options) {
  obs::Span span("analysis.table2");
  Table2Result result;
  result.total_attempts = trace.TotalAttempts();
  result.iterations = trace.iterations().size();

  Accumulator no_login;
  Accumulator with_login;
  Accumulator both;
  for (const auto& s : trace.samples()) {
    const auto cls = s.Classify(options.forgotten_threshold_s);
    if (s.has_session) ++result.raw_login_samples;
    if (cls == trace::LoginClass::kForgotten) ++result.reclassified_samples;
    // Forgotten samples count as non-occupied (§4.2).
    (cls == trace::LoginClass::kWithLogin ? with_login : no_login)
        .AddSample(s);
    both.AddSample(s);
  }
  trace::ForEachInterval(trace, options, [&](const trace::SampleInterval& i) {
    (i.login_class == trace::LoginClass::kWithLogin ? with_login : no_login)
        .AddInterval(i);
    both.AddInterval(i);
  });

  no_login.FillColumn(result.no_login, result.total_attempts);
  with_login.FillColumn(result.with_login, result.total_attempts);
  both.FillColumn(result.both, result.total_attempts);
  return result;
}

std::string RenderTable2(const Table2Result& result,
                         bool with_paper_reference) {
  using util::FormatFixed;
  using util::FormatWithThousands;

  // Table 2 of the paper, for side-by-side comparison.
  struct PaperColumn {
    double samples, uptime, idle, ram, swap, disk, sent, recv;
  };
  static constexpr PaperColumn kPaperNoLogin{393970, 33.9, 99.7, 54.8,
                                             25.7,   13.6, 255.3, 359.2};
  static constexpr PaperColumn kPaperLogin{189683, 16.3, 94.2,  67.6,
                                           32.8,   13.6, 2601.8, 8662.1};
  static constexpr PaperColumn kPaperBoth{583653, 50.2, 97.9,   58.9,
                                          28.0,   13.6, 1071.9, 3057.9};

  util::AsciiTable table("Table 2: Main results" +
                         std::string(with_paper_reference
                                         ? " — measured vs paper (in parens)"
                                         : ""));
  table.SetHeader({"Metric", "No login", "With login", "Both"});

  const auto cell = [&](double measured, double paper, int precision) {
    std::string text = FormatFixed(measured, precision);
    if (with_paper_reference) {
      text += " (" + FormatFixed(paper, precision) + ")";
    }
    return text;
  };
  const auto count_cell = [&](std::uint64_t measured, double paper) {
    std::string text = FormatWithThousands(static_cast<std::int64_t>(measured));
    if (with_paper_reference) {
      text += " (" +
              FormatWithThousands(static_cast<std::int64_t>(paper)) + ")";
    }
    return text;
  };

  table.AddRow({"Samples",
                count_cell(result.no_login.samples, kPaperNoLogin.samples),
                count_cell(result.with_login.samples, kPaperLogin.samples),
                count_cell(result.both.samples, kPaperBoth.samples)});
  table.AddRow({"Avg uptime (%)",
                cell(result.no_login.uptime_pct, kPaperNoLogin.uptime, 1),
                cell(result.with_login.uptime_pct, kPaperLogin.uptime, 1),
                cell(result.both.uptime_pct, kPaperBoth.uptime, 1)});
  table.AddRow({"Avg CPU idle (%)",
                cell(result.no_login.cpu_idle_pct, kPaperNoLogin.idle, 1),
                cell(result.with_login.cpu_idle_pct, kPaperLogin.idle, 1),
                cell(result.both.cpu_idle_pct, kPaperBoth.idle, 1)});
  table.AddRow({"Avg RAM load (%)",
                cell(result.no_login.ram_load_pct, kPaperNoLogin.ram, 1),
                cell(result.with_login.ram_load_pct, kPaperLogin.ram, 1),
                cell(result.both.ram_load_pct, kPaperBoth.ram, 1)});
  table.AddRow({"Avg SWAP load (%)",
                cell(result.no_login.swap_load_pct, kPaperNoLogin.swap, 1),
                cell(result.with_login.swap_load_pct, kPaperLogin.swap, 1),
                cell(result.both.swap_load_pct, kPaperBoth.swap, 1)});
  table.AddRow({"Avg disk used (GB)",
                cell(result.no_login.disk_used_gb, kPaperNoLogin.disk, 1),
                cell(result.with_login.disk_used_gb, kPaperLogin.disk, 1),
                cell(result.both.disk_used_gb, kPaperBoth.disk, 1)});
  table.AddRow({"Avg sent bytes (bps)",
                cell(result.no_login.sent_bps, kPaperNoLogin.sent, 1),
                cell(result.with_login.sent_bps, kPaperLogin.sent, 1),
                cell(result.both.sent_bps, kPaperBoth.sent, 1)});
  table.AddRow({"Avg recv bytes (bps)",
                cell(result.no_login.recv_bps, kPaperNoLogin.recv, 1),
                cell(result.with_login.recv_bps, kPaperLogin.recv, 1),
                cell(result.both.recv_bps, kPaperBoth.recv, 1)});
  return table.Render();
}

}  // namespace labmon::analysis
