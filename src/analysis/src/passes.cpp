#include "labmon/analysis/passes.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "labmon/stats/running_stats.hpp"

namespace labmon::analysis {

namespace {

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

// ---------------------------------------------------------------- table2

struct AggregatePass::Impl final : AnalysisPass::State {
  struct Acc {
    std::uint64_t samples = 0;
    stats::RunningStats cpu_idle;
    stats::RunningStats ram;
    stats::RunningStats swap;
    stats::RunningStats disk_used_gb;
    stats::RunningStats sent_bps;
    stats::RunningStats recv_bps;

    void Merge(const Acc& o) {
      samples += o.samples;
      cpu_idle.Merge(o.cpu_idle);
      ram.Merge(o.ram);
      swap.Merge(o.swap);
      disk_used_gb.Merge(o.disk_used_gb);
      sent_bps.Merge(o.sent_bps);
      recv_bps.Merge(o.recv_bps);
    }
    void Fill(Table2Column& col, std::uint64_t total_attempts) const {
      col.samples = samples;
      col.uptime_pct = total_attempts
                           ? 100.0 * static_cast<double>(samples) /
                                 static_cast<double>(total_attempts)
                           : 0.0;
      col.cpu_idle_pct = cpu_idle.mean();
      col.ram_load_pct = ram.mean();
      col.swap_load_pct = swap.mean();
      col.disk_used_gb = disk_used_gb.mean();
      col.sent_bps = sent_bps.mean();
      col.recv_bps = recv_bps.mean();
    }
  };

  Acc no_login;
  Acc with_login;
  std::uint64_t raw_login_samples = 0;
  std::uint64_t reclassified_samples = 0;
};

std::unique_ptr<AnalysisPass::State> AggregatePass::MakeState(
    const PassContext&) const {
  return std::make_unique<Impl>();
}

void AggregatePass::AccumulateMachine(const PassContext& ctx,
                                      std::size_t machine,
                                      State& state) const {
  const auto& c = ctx.trace.columns();
  const std::int64_t threshold = options_.forgotten_threshold_s;

  // The per-machine accumulator lives in a non-escaping local so the
  // Welford state stays in registers across the tight loops, folding into
  // the chunk state once per machine. Routing every sample through a
  // class-selected reference into the chunk state instead forces each
  // update through memory — several times slower over the full trace.
  MachineAcc acc;
  for (const std::uint32_t idx : ctx.trace.MachineSamples(machine)) {
    acc.AddSample(ctx.derived.SampleClass(idx, threshold),
                  c.has_session[idx] != 0, c.mem_load_pct[idx],
                  c.swap_load_pct[idx],
                  static_cast<double>(ctx.trace.DiskUsedBytes(idx)) / 1e9);
  }
  const auto& iv = ctx.derived.interval_columns();
  const auto range = ctx.derived.MachineIntervalRange(machine);
  for (std::size_t i = range.begin; i < range.end; ++i) {
    acc.AddInterval(ctx.derived.IntervalClassAt(i, threshold),
                    iv.cpu_idle_pct[i], iv.sent_bps[i], iv.recv_bps[i]);
  }
  FoldMachine(machine, acc, state);
}

void AggregatePass::FoldMachine(std::size_t /*machine*/, const MachineAcc& acc,
                                State& state) const {
  auto& st = static_cast<Impl&>(state);
  st.raw_login_samples += acc.raw_login;
  st.reclassified_samples += acc.reclassified;
  st.no_login.samples += acc.no_n;
  st.no_login.ram.Merge(acc.no_ram);
  st.no_login.swap.Merge(acc.no_swap);
  st.no_login.disk_used_gb.Merge(acc.no_disk);
  st.no_login.cpu_idle.Merge(acc.no_cpu);
  st.no_login.sent_bps.Merge(acc.no_sent);
  st.no_login.recv_bps.Merge(acc.no_recv);
  st.with_login.samples += acc.with_n;
  st.with_login.ram.Merge(acc.with_ram);
  st.with_login.swap.Merge(acc.with_swap);
  st.with_login.disk_used_gb.Merge(acc.with_disk);
  st.with_login.cpu_idle.Merge(acc.with_cpu);
  st.with_login.sent_bps.Merge(acc.with_sent);
  st.with_login.recv_bps.Merge(acc.with_recv);
}

void AggregatePass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  a.no_login.Merge(b.no_login);
  a.with_login.Merge(b.with_login);
  a.raw_login_samples += b.raw_login_samples;
  a.reclassified_samples += b.reclassified_samples;
}

void AggregatePass::Finalize(const PassContext& ctx, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = Table2Result{};
  result_.total_attempts = ctx.trace.TotalAttempts();
  result_.iterations = ctx.trace.iterations().size();
  result_.raw_login_samples = st.raw_login_samples;
  result_.reclassified_samples = st.reclassified_samples;
  st.no_login.Fill(result_.no_login, result_.total_attempts);
  st.with_login.Fill(result_.with_login, result_.total_attempts);
  Impl::Acc both = st.no_login;
  both.Merge(st.with_login);
  both.Fill(result_.both, result_.total_attempts);
}

// ---------------------------------------------------------- availability

struct AvailabilityPass::Impl final : AnalysisPass::State {
  std::vector<std::uint32_t> on;    ///< responding machines per iteration
  std::vector<std::uint32_t> free;  ///< ... without an effective session
  std::vector<std::uint64_t> responses;  ///< per machine, for the ranking
  stats::Histogram histogram{0.0, 96.0, 48};
  stats::RunningStats lengths;
  double uptime_total_h = 0.0;
  double uptime_within_h = 0.0;
  std::uint64_t sessions_within = 0;
  std::uint64_t total_sessions = 0;
};

std::unique_ptr<AnalysisPass::State> AvailabilityPass::MakeState(
    const PassContext& ctx) const {
  auto state = std::make_unique<Impl>();
  state->on.assign(ctx.trace.iterations().size(), 0);
  state->free.assign(ctx.trace.iterations().size(), 0);
  state->responses.assign(ctx.trace.machine_count(), 0);
  return state;
}

void AvailabilityPass::AccumulateMachine(const PassContext& ctx,
                                         std::size_t machine,
                                         State& state) const {
  auto& st = static_cast<Impl&>(state);
  const auto& c = ctx.trace.columns();
  MachineAcc acc;
  for (const std::uint32_t idx : ctx.trace.MachineSamples(machine)) {
    const std::uint32_t it = c.iteration[idx];
    ++acc.responses;
    if (it >= st.on.size()) continue;
    ++st.on[it];
    if (ctx.derived.SampleClass(idx, forgotten_threshold_s_) !=
        trace::LoginClass::kWithLogin) {
      ++st.free[it];
    }
  }
  for (const auto& session : ctx.derived.MachineSessions(machine)) {
    acc.AddSession(session.last_uptime_s);
  }
  FoldMachine(machine, acc, state);
}

void AvailabilityPass::FoldMachine(std::size_t machine, const MachineAcc& acc,
                                   State& state) const {
  auto& st = static_cast<Impl&>(state);
  if (machine < st.responses.size()) st.responses[machine] += acc.responses;
  st.histogram.Merge(acc.histogram);
  st.lengths.Merge(acc.lengths);
  st.uptime_total_h += acc.uptime_total_h;
  st.uptime_within_h += acc.uptime_within_h;
  st.sessions_within += acc.sessions_within;
  st.total_sessions += acc.total_sessions;
}

void AvailabilityPass::AddIterationCounts(State& state,
                                          std::span<const std::uint32_t> on,
                                          std::span<const std::uint32_t> free) {
  auto& st = static_cast<Impl&>(state);
  if (st.on.size() < on.size()) {
    st.on.resize(on.size(), 0);
    st.free.resize(free.size(), 0);
  }
  for (std::size_t i = 0; i < on.size(); ++i) st.on[i] += on[i];
  for (std::size_t i = 0; i < free.size(); ++i) st.free[i] += free[i];
}

void AvailabilityPass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  if (a.on.size() < b.on.size()) {
    a.on.resize(b.on.size(), 0);
    a.free.resize(b.free.size(), 0);
  }
  for (std::size_t i = 0; i < b.on.size(); ++i) {
    a.on[i] += b.on[i];
    a.free[i] += b.free[i];
  }
  if (a.responses.size() < b.responses.size()) {
    a.responses.resize(b.responses.size(), 0);
  }
  for (std::size_t i = 0; i < b.responses.size(); ++i) {
    a.responses[i] += b.responses[i];
  }
  a.histogram.Merge(b.histogram);
  a.lengths.Merge(b.lengths);
  a.uptime_total_h += b.uptime_total_h;
  a.uptime_within_h += b.uptime_within_h;
  a.sessions_within += b.sessions_within;
  a.total_sessions += b.total_sessions;
}

void AvailabilityPass::Finalize(const PassContext& ctx, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = AvailabilityResult{};
  for (std::size_t i = 0; i < ctx.trace.iterations().size(); ++i) {
    const auto t = ctx.trace.iterations()[i].start_t;
    result_.series.powered_on.Append(t, st.on[i]);
    result_.series.user_free.Append(t, st.free[i]);
  }
  result_.series.mean_powered_on = result_.series.powered_on.Mean();
  result_.series.mean_user_free = result_.series.user_free.Mean();

  // Ranking needs only the per-machine response counts the sweep gathered —
  // no trace walk, so the streamed path (whose finalize context holds no
  // samples) produces the identical ranking.
  result_.ranking =
      ComputeUptimeRanking(st.responses, ctx.trace.iterations().size());

  auto& dist = result_.session_lengths;
  dist.histogram = st.histogram;
  dist.total_sessions = st.total_sessions;
  dist.fraction_within_96h =
      st.total_sessions == 0
          ? 0.0
          : 100.0 * static_cast<double>(st.sessions_within) /
                static_cast<double>(st.total_sessions);
  dist.uptime_fraction_within_96h =
      st.uptime_total_h > 0.0
          ? 100.0 * st.uptime_within_h / st.uptime_total_h
          : 0.0;
  dist.mean_hours = st.lengths.mean();
  dist.stddev_hours = st.lengths.stddev();
}

// --------------------------------------------------------------- per_lab

struct PerLabPass::Impl final : AnalysisPass::State {
  struct LabAcc {
    std::uint64_t samples = 0;
    std::uint64_t occupied = 0;
    stats::RunningStats idle;
    stats::RunningStats ram;
    stats::RunningStats free_disk_gb;

    void Merge(const LabAcc& o) {
      samples += o.samples;
      occupied += o.occupied;
      idle.Merge(o.idle);
      ram.Merge(o.ram);
      free_disk_gb.Merge(o.free_disk_gb);
    }
  };
  struct ClassAcc {
    stats::RunningStats pct;
    stats::RunningStats mb;
  };

  /// Per-lab accumulators plus a slot for machines outside every lab
  /// range; the fleet row and the headroom figures are merges of these,
  /// built in Finalize (one accumulation per sample, not two).
  std::vector<LabAcc> labs;
  std::map<int, ClassAcc> ram_classes;
};

std::size_t PerLabPass::LabOf(std::size_t machine) const noexcept {
  for (std::size_t l = 0; l < labs_.size(); ++l) {
    if (machine >= labs_[l].first_machine &&
        machine < labs_[l].first_machine + labs_[l].machine_count) {
      return l;
    }
  }
  return labs_.size();
}

std::unique_ptr<AnalysisPass::State> PerLabPass::MakeState(
    const PassContext&) const {
  auto state = std::make_unique<Impl>();
  state->labs.resize(labs_.size() + 1);
  return state;
}

void PerLabPass::AccumulateMachine(const PassContext& ctx,
                                   std::size_t machine, State& state) const {
  const auto& c = ctx.trace.columns();
  const std::int64_t threshold = forgotten_threshold_s_;

  // Same local-accumulator pattern as AggregatePass: a machine belongs to
  // exactly one lab and (in practice) one installed-RAM class, so the
  // whole walk accumulates into a register-resident acc and folds once at
  // the end.
  MachineAcc acc;
  for (const std::uint32_t idx : ctx.trace.MachineSamples(machine)) {
    acc.AddSample(ctx.derived.SampleClass(idx, threshold), c.mem_load_pct[idx],
                  static_cast<double>(c.disk_free_b[idx]) / 1e9,
                  c.ram_mb[idx], ctx.trace.FreeRamMb(idx));
  }
  const auto& iv = ctx.derived.interval_columns();
  const auto range = ctx.derived.MachineIntervalRange(machine);
  for (std::size_t i = range.begin; i < range.end; ++i) {
    acc.AddInterval(iv.cpu_idle_pct[i]);
  }
  FoldMachine(machine, acc, state);
}

void PerLabPass::FoldMachine(std::size_t machine, const MachineAcc& acc,
                             State& state) const {
  auto& st = static_cast<Impl&>(state);
  auto& lab = st.labs[LabOf(machine)];
  lab.samples += acc.samples;
  lab.occupied += acc.occupied;
  lab.ram.Merge(acc.ram);
  lab.free_disk_gb.Merge(acc.free_disk);
  lab.idle.Merge(acc.idle);
  for (const auto& run : acc.class_runs) {
    auto& cls = st.ram_classes[run.ram_mb];
    cls.pct.Merge(run.pct);
    cls.mb.Merge(run.mb);
  }
}

void PerLabPass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  if (a.labs.size() < b.labs.size()) a.labs.resize(b.labs.size());
  for (std::size_t l = 0; l < b.labs.size(); ++l) a.labs[l].Merge(b.labs[l]);
  for (const auto& [ram_mb, acc] : b.ram_classes) {
    auto& mine = a.ram_classes[ram_mb];
    mine.pct.Merge(acc.pct);
    mine.mb.Merge(acc.mb);
  }
}

void PerLabPass::Finalize(const PassContext& ctx, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = PerLabResult{};

  const double iterations =
      static_cast<double>(ctx.trace.iterations().size());
  // Fleet = merge of every lab accumulator (plus the outside-any-lab slot).
  Impl::LabAcc fleet;
  for (const auto& acc : st.labs) fleet.Merge(acc);
  result_.usage.reserve(labs_.size() + 1);
  for (std::size_t l = 0; l <= labs_.size(); ++l) {
    LabUsage usage;
    if (l < labs_.size()) {
      usage.name = labs_[l].name;
      usage.machines = labs_[l].machine_count;
    } else {
      usage.name = "Fleet";
      usage.machines = ctx.trace.machine_count();
    }
    const auto& acc = l < labs_.size() ? st.labs[l] : fleet;
    usage.samples = acc.samples;
    const double attempts = iterations * static_cast<double>(usage.machines);
    usage.uptime_pct =
        attempts > 0.0
            ? 100.0 * static_cast<double>(acc.samples) / attempts
            : 0.0;
    usage.occupied_pct =
        attempts > 0.0
            ? 100.0 * static_cast<double>(acc.occupied) / attempts
            : 0.0;
    usage.cpu_idle_pct = acc.idle.mean();
    usage.ram_load_pct = acc.ram.mean();
    usage.free_disk_gb = acc.free_disk_gb.mean();
    result_.usage.push_back(std::move(usage));
  }

  auto& h = result_.headroom;
  h.cpu_idle_pct = fleet.idle.mean();
  h.unused_ram_pct = fleet.ram.count() > 0 ? 100.0 - fleet.ram.mean() : 0.0;
  h.free_disk_gb_per_machine = fleet.free_disk_gb.mean();
  h.free_disk_tb_fleet = fleet.free_disk_gb.mean() *
                         static_cast<double>(ctx.trace.machine_count()) /
                         1024.0;
  // Exact when the trace carries installed-RAM sizes; otherwise fall back
  // to the paper's fleet mean of 340.8 MB/machine (Table 1).
  stats::RunningStats free_ram_mb;
  for (const auto& [ram_mb, acc] : st.ram_classes) free_ram_mb.Merge(acc.mb);
  const double mean_free_mb = free_ram_mb.count() > 0
                                  ? free_ram_mb.mean()
                                  : h.unused_ram_pct / 100.0 * 340.8;
  h.unused_ram_gb_fleet = mean_free_mb *
                          static_cast<double>(ctx.trace.machine_count()) /
                          1024.0;
  for (const auto& [ram_mb, acc] : st.ram_classes) {
    MemoryClassHeadroom cls;
    cls.ram_mb = ram_mb;
    cls.samples = static_cast<std::uint64_t>(acc.pct.count());
    cls.unused_pct = acc.pct.mean();
    cls.free_mb = acc.mb.mean();
    h.by_ram_class.push_back(cls);
  }
}

// --------------------------------------------------------- session_hours

struct SessionHoursPass::Impl final : AnalysisPass::State {
  std::vector<stats::RunningStats> bins;
};

std::unique_ptr<AnalysisPass::State> SessionHoursPass::MakeState(
    const PassContext&) const {
  auto state = std::make_unique<Impl>();
  state->bins.resize(static_cast<std::size_t>(max_hours_) + 1);
  return state;
}

void SessionHoursPass::AccumulateMachine(const PassContext& ctx,
                                         std::size_t machine,
                                         State& state) const {
  const auto& c = ctx.trace.columns();
  // Figure 2 is computed on raw login samples — no threshold filtering
  // (this analysis is what *establishes* the threshold), so only the
  // closing sample's session presence matters, not the interval class.
  MachineAcc acc(static_cast<std::size_t>(max_hours_) + 1);
  const auto& iv = ctx.derived.interval_columns();
  const auto range = ctx.derived.MachineIntervalRange(machine);
  for (std::size_t i = range.begin; i < range.end; ++i) {
    const std::uint32_t closing = iv.end_index[i];
    if (!c.has_session[closing]) continue;
    acc.AddInterval(ctx.trace.SessionSeconds(closing), iv.cpu_idle_pct[i]);
  }
  FoldMachine(machine, acc, state);
}

void SessionHoursPass::FoldMachine(std::size_t /*machine*/,
                                   const MachineAcc& acc, State& state) const {
  auto& st = static_cast<Impl&>(state);
  const std::size_t n = std::min(st.bins.size(), acc.bins.size());
  for (std::size_t b = 0; b < n; ++b) st.bins[b].Merge(acc.bins[b]);
}

void SessionHoursPass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  for (std::size_t i = 0; i < a.bins.size(); ++i) a.bins[i].Merge(b.bins[i]);
}

void SessionHoursPass::Finalize(const PassContext&, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = SessionHourProfile{};
  result_.bins.reserve(st.bins.size());
  for (std::size_t h = 0; h < st.bins.size(); ++h) {
    SessionHourBin bin;
    bin.hour = static_cast<int>(h);
    bin.samples = static_cast<std::uint64_t>(st.bins[h].count());
    bin.mean_cpu_idle_pct = st.bins[h].mean();
    result_.bins.push_back(bin);
    if (result_.first_bin_above_99 < 0 && bin.samples > 0 &&
        bin.mean_cpu_idle_pct >= 99.0) {
      result_.first_bin_above_99 = bin.hour;
    }
  }
}

// ---------------------------------------------------------------- weekly

struct WeeklyPass::Impl final : AnalysisPass::State {
  explicit Impl(int bin_minutes)
      : cpu_idle(bin_minutes),
        ram(bin_minutes),
        swap(bin_minutes),
        sent(bin_minutes),
        recv(bin_minutes) {}
  stats::WeeklyProfile cpu_idle;
  stats::WeeklyProfile ram;
  stats::WeeklyProfile swap;
  stats::WeeklyProfile sent;
  stats::WeeklyProfile recv;
};

std::unique_ptr<AnalysisPass::State> WeeklyPass::MakeState(
    const PassContext&) const {
  return std::make_unique<Impl>(bin_minutes_);
}

void WeeklyPass::AccumulateMachine(const PassContext& ctx,
                                   std::size_t machine, State& state) const {
  const auto& c = ctx.trace.columns();
  // The acc tracks the week-folded bin incrementally (a machine's
  // consecutive events are almost always exactly one bin width apart),
  // keeping the 64-bit modulo and divisions of BinOf off the hot path.
  MachineAcc acc(bin_minutes_);
  for (const std::uint32_t idx : ctx.trace.MachineSamples(machine)) {
    acc.AddSample(c.t[idx], c.mem_load_pct[idx], c.swap_load_pct[idx]);
  }
  const auto& iv = ctx.derived.interval_columns();
  const auto range = ctx.derived.MachineIntervalRange(machine);
  for (std::size_t i = range.begin; i < range.end; ++i) {
    acc.AddInterval(iv.end_t[i], iv.cpu_idle_pct[i], iv.sent_bps[i],
                    iv.recv_bps[i]);
  }
  FoldMachine(machine, acc, state);
}

void WeeklyPass::FoldMachine(std::size_t /*machine*/, const MachineAcc& acc,
                             State& state) const {
  auto& st = static_cast<Impl&>(state);
  st.cpu_idle.Merge(acc.cpu_idle);
  st.ram.Merge(acc.ram);
  st.swap.Merge(acc.swap);
  st.sent.Merge(acc.sent);
  st.recv.Merge(acc.recv);
}

void WeeklyPass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  a.cpu_idle.Merge(b.cpu_idle);
  a.ram.Merge(b.ram);
  a.swap.Merge(b.swap);
  a.sent.Merge(b.sent);
  a.recv.Merge(b.recv);
}

void WeeklyPass::Finalize(const PassContext&, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = WeeklyProfiles{std::move(st.cpu_idle), std::move(st.ram),
                           std::move(st.swap),     std::move(st.sent),
                           std::move(st.recv),     0.0,
                           {},                     0.0,
                           0.0};
  result_.min_cpu_idle_pct = result_.cpu_idle_pct.MinBinMean();
  const auto argmin = result_.cpu_idle_pct.ArgMinBin();
  if (argmin != static_cast<std::size_t>(-1)) {
    result_.min_cpu_idle_when = result_.cpu_idle_pct.BinLabel(argmin);
  }
  result_.min_ram_load_pct = result_.ram_load_pct.MinBinMean();
  // The 04:00–08:00 closed window, averaged over Tue–Fri mornings
  // (Monday's 04–08 follows the closed Sunday so machines are mostly off).
  double closed_sum = 0.0;
  int closed_n = 0;
  for (int day = 1; day <= 4; ++day) {  // Tue..Fri
    const int lo = day * 24 * 60 + 4 * 60;
    const int hi = day * 24 * 60 + 8 * 60;
    const double v = result_.cpu_idle_pct.MeanOverWindow(lo, hi);
    if (v > 0.0) {
      closed_sum += v;
      ++closed_n;
    }
  }
  result_.closed_hours_cpu_idle = closed_n ? closed_sum / closed_n : 0.0;
}

// ----------------------------------------------------------- equivalence

struct EquivalencePass::Impl final : AnalysisPass::State {
  std::vector<double> occupied_sum;  ///< per iteration, perf-weighted
  std::vector<double> free_sum;
};

std::unique_ptr<AnalysisPass::State> EquivalencePass::MakeState(
    const PassContext& ctx) const {
  auto state = std::make_unique<Impl>();
  state->occupied_sum.assign(ctx.trace.iterations().size(), 0.0);
  state->free_sum.assign(ctx.trace.iterations().size(), 0.0);
  return state;
}

void EquivalencePass::AccumulateMachine(const PassContext& ctx,
                                        std::size_t machine,
                                        State& state) const {
  auto& st = static_cast<Impl&>(state);
  if (machine >= perf_index_.size()) return;
  const auto& c = ctx.trace.columns();
  const auto& iv = ctx.derived.interval_columns();
  const auto range = ctx.derived.MachineIntervalRange(machine);
  for (std::size_t i = range.begin; i < range.end; ++i) {
    const std::uint32_t it = c.iteration[iv.end_index[i]];
    if (it >= st.occupied_sum.size()) continue;
    const double contribution = Contribution(machine, iv.cpu_idle_pct[i]);
    if (ctx.derived.IntervalClassAt(i, forgotten_threshold_s_) ==
        trace::LoginClass::kWithLogin) {
      st.occupied_sum[it] += contribution;
    } else {
      st.free_sum[it] += contribution;
    }
  }
}

void EquivalencePass::AddIterationSums(State& state,
                                       std::span<const double> occupied,
                                       std::span<const double> free) {
  auto& st = static_cast<Impl&>(state);
  if (st.occupied_sum.size() < occupied.size()) {
    st.occupied_sum.resize(occupied.size(), 0.0);
    st.free_sum.resize(free.size(), 0.0);
  }
  for (std::size_t i = 0; i < occupied.size(); ++i) {
    st.occupied_sum[i] += occupied[i];
  }
  for (std::size_t i = 0; i < free.size(); ++i) st.free_sum[i] += free[i];
}

void EquivalencePass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  if (a.occupied_sum.size() < b.occupied_sum.size()) {
    a.occupied_sum.resize(b.occupied_sum.size(), 0.0);
    a.free_sum.resize(b.free_sum.size(), 0.0);
  }
  for (std::size_t i = 0; i < b.occupied_sum.size(); ++i) {
    a.occupied_sum[i] += b.occupied_sum[i];
    a.free_sum[i] += b.free_sum[i];
  }
}

void EquivalencePass::Finalize(const PassContext& ctx, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  assert(perf_index_.size() >= ctx.trace.machine_count());
  double fleet_perf = 0.0;
  for (std::size_t m = 0; m < ctx.trace.machine_count(); ++m) {
    fleet_perf += perf_index_[m];
  }

  result_ = EquivalenceResult{stats::WeeklyProfile(bin_minutes_),
                              stats::WeeklyProfile(bin_minutes_),
                              stats::WeeklyProfile(bin_minutes_)};
  if (fleet_perf <= 0.0 || ctx.trace.iterations().empty()) return;

  stats::RunningStats occupied_mean;
  stats::RunningStats free_mean;
  for (std::size_t it = 0; it < ctx.trace.iterations().size(); ++it) {
    const auto t = ctx.trace.iterations()[it].start_t;
    const double occ = st.occupied_sum[it] / fleet_perf;
    const double fre = st.free_sum[it] / fleet_perf;
    result_.weekly_occupied.Add(t, occ);
    result_.weekly_free.Add(t, fre);
    result_.weekly_total.Add(t, occ + fre);
    occupied_mean.Add(occ);
    free_mean.Add(fre);
  }
  result_.mean_occupied = occupied_mean.mean();
  result_.mean_free = free_mean.mean();
  result_.mean_total = result_.mean_occupied + result_.mean_free;
}

// ------------------------------------------------------------- stability

struct StabilityPass::Impl final : AnalysisPass::State {
  stats::RunningStats lengths;  ///< session lengths in hours
  std::uint64_t session_count = 0;
  stats::RunningStats per_machine_cycles;
  stats::RunningStats experiment_ratio;
  stats::RunningStats life_ratio;
  std::uint64_t total_cycles = 0;
};

std::unique_ptr<AnalysisPass::State> StabilityPass::MakeState(
    const PassContext&) const {
  return std::make_unique<Impl>();
}

void StabilityPass::AccumulateMachine(const PassContext& ctx,
                                      std::size_t machine,
                                      State& state) const {
  MachineAcc acc;
  for (const auto& session : ctx.derived.MachineSessions(machine)) {
    acc.AddSession(session.last_uptime_s);
  }
  const auto indices = ctx.trace.MachineSamples(machine);
  if (!indices.empty()) {
    const auto& c = ctx.trace.columns();
    // Only the first and last sample matter; feeding both gives the acc
    // the same first/last values a full streamed walk would record.
    acc.AddSample(c.smart_power_on_hours[indices.front()],
                  c.smart_power_cycles[indices.front()]);
    acc.AddSample(c.smart_power_on_hours[indices.back()],
                  c.smart_power_cycles[indices.back()]);
  }
  FoldMachine(machine, acc, state);
}

void StabilityPass::FoldMachine(std::size_t /*machine*/, const MachineAcc& acc,
                                State& state) const {
  auto& st = static_cast<Impl&>(state);
  st.lengths.Merge(acc.lengths);
  st.session_count += acc.session_count;
  if (!acc.has_samples) return;
  // Cycles accumulated during the monitoring window. The first sample's
  // counter already includes the boot that made the machine reachable, so
  // the difference undercounts by the pre-first-sample boots — the same
  // bias the real methodology has.
  const std::uint64_t cycles =
      acc.last_power_cycles - acc.first_power_cycles;
  const std::uint64_t hours =
      acc.last_power_on_hours - acc.first_power_on_hours;
  st.total_cycles += cycles;
  st.per_machine_cycles.Add(static_cast<double>(cycles));
  if (cycles > 0) {
    st.experiment_ratio.Add(static_cast<double>(hours) /
                            static_cast<double>(cycles));
  }
  // Whole-life ratio from the absolute counters of the last sample.
  if (acc.last_power_cycles > 0) {
    st.life_ratio.Add(static_cast<double>(acc.last_power_on_hours) /
                      static_cast<double>(acc.last_power_cycles));
  }
}

void StabilityPass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  a.lengths.Merge(b.lengths);
  a.session_count += b.session_count;
  a.per_machine_cycles.Merge(b.per_machine_cycles);
  a.experiment_ratio.Merge(b.experiment_ratio);
  a.life_ratio.Merge(b.life_ratio);
  a.total_cycles += b.total_cycles;
}

void StabilityPass::Finalize(const PassContext&, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = StabilityResult{};
  result_.sessions.session_count = st.session_count;
  result_.sessions.mean_hours = st.lengths.mean();
  result_.sessions.stddev_hours = st.lengths.stddev();

  auto& smart = result_.smart;
  smart.experiment_cycles = st.total_cycles;
  smart.cycles_per_machine_mean = st.per_machine_cycles.mean();
  smart.cycles_per_machine_stddev = st.per_machine_cycles.stddev();
  smart.cycles_per_machine_day =
      experiment_days_ > 0
          ? st.per_machine_cycles.mean() / experiment_days_
          : 0.0;
  smart.cycle_excess_over_sessions_pct =
      st.session_count > 0
          ? 100.0 * (static_cast<double>(st.total_cycles) /
                         static_cast<double>(st.session_count) -
                     1.0)
          : 0.0;
  smart.experiment_hours_per_cycle_mean = st.experiment_ratio.mean();
  smart.experiment_hours_per_cycle_stddev = st.experiment_ratio.stddev();
  smart.life_hours_per_cycle_mean = st.life_ratio.mean();
  smart.life_hours_per_cycle_stddev = st.life_ratio.stddev();
}

// -------------------------------------------------------------- capacity

struct CapacityPass::Impl final : AnalysisPass::State {
  std::vector<double> ram_mb_sum;   ///< per iteration
  std::vector<double> disk_gb_sum;
};

std::unique_ptr<AnalysisPass::State> CapacityPass::MakeState(
    const PassContext& ctx) const {
  auto state = std::make_unique<Impl>();
  state->ram_mb_sum.assign(ctx.trace.iterations().size(), 0.0);
  state->disk_gb_sum.assign(ctx.trace.iterations().size(), 0.0);
  return state;
}

void CapacityPass::AccumulateMachine(const PassContext& ctx,
                                     std::size_t machine,
                                     State& state) const {
  auto& st = static_cast<Impl&>(state);
  const auto& c = ctx.trace.columns();
  for (const std::uint32_t idx : ctx.trace.MachineSamples(machine)) {
    const std::uint32_t it = c.iteration[idx];
    if (it >= st.ram_mb_sum.size()) continue;
    st.ram_mb_sum[it] += ctx.trace.FreeRamMb(idx);
    st.disk_gb_sum[it] += static_cast<double>(c.disk_free_b[idx]) / 1e9;
  }
}

void CapacityPass::AddIterationSums(State& state,
                                    std::span<const double> ram_mb,
                                    std::span<const double> disk_gb) {
  auto& st = static_cast<Impl&>(state);
  if (st.ram_mb_sum.size() < ram_mb.size()) {
    st.ram_mb_sum.resize(ram_mb.size(), 0.0);
    st.disk_gb_sum.resize(disk_gb.size(), 0.0);
  }
  for (std::size_t i = 0; i < ram_mb.size(); ++i) {
    st.ram_mb_sum[i] += ram_mb[i];
  }
  for (std::size_t i = 0; i < disk_gb.size(); ++i) {
    st.disk_gb_sum[i] += disk_gb[i];
  }
}

void CapacityPass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  if (a.ram_mb_sum.size() < b.ram_mb_sum.size()) {
    a.ram_mb_sum.resize(b.ram_mb_sum.size(), 0.0);
    a.disk_gb_sum.resize(b.disk_gb_sum.size(), 0.0);
  }
  for (std::size_t i = 0; i < b.ram_mb_sum.size(); ++i) {
    a.ram_mb_sum[i] += b.ram_mb_sum[i];
    a.disk_gb_sum[i] += b.disk_gb_sum[i];
  }
}

void CapacityPass::Finalize(const PassContext& ctx, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = CapacityResult();
  const std::size_t iterations = ctx.trace.iterations().size();
  const double replication = std::max(1, options_.replication);
  std::vector<double> ram_points;
  std::vector<double> disk_points;
  ram_points.reserve(iterations);
  disk_points.reserve(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto t = ctx.trace.iterations()[i].start_t;
    const double ram_gb = st.ram_mb_sum[i] / 1024.0 *
                          options_.ram_donation_fraction / replication;
    const double disk_tb = st.disk_gb_sum[i] / 1024.0 *
                           options_.disk_donation_fraction / replication;
    result_.ram_gb.Append(t, ram_gb);
    result_.ram_gb_weekly.Add(t, ram_gb);
    result_.disk_tb.Append(t, disk_tb);
    ram_points.push_back(ram_gb);
    disk_points.push_back(disk_tb);
  }
  result_.mean_ram_gb = result_.ram_gb.Mean();
  result_.p10_ram_gb = Percentile(ram_points, 0.10);
  result_.mean_disk_tb = result_.disk_tb.Mean();
  result_.p10_disk_tb = Percentile(disk_points, 0.10);
}

}  // namespace labmon::analysis
