#include "labmon/analysis/passes.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "labmon/stats/running_stats.hpp"

namespace labmon::analysis {

namespace {

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

// ---------------------------------------------------------------- table2

struct AggregatePass::Impl final : AnalysisPass::State {
  struct Acc {
    std::uint64_t samples = 0;
    stats::RunningStats cpu_idle;
    stats::RunningStats ram;
    stats::RunningStats swap;
    stats::RunningStats disk_used_gb;
    stats::RunningStats sent_bps;
    stats::RunningStats recv_bps;

    void Merge(const Acc& o) {
      samples += o.samples;
      cpu_idle.Merge(o.cpu_idle);
      ram.Merge(o.ram);
      swap.Merge(o.swap);
      disk_used_gb.Merge(o.disk_used_gb);
      sent_bps.Merge(o.sent_bps);
      recv_bps.Merge(o.recv_bps);
    }
    void Fill(Table2Column& col, std::uint64_t total_attempts) const {
      col.samples = samples;
      col.uptime_pct = total_attempts
                           ? 100.0 * static_cast<double>(samples) /
                                 static_cast<double>(total_attempts)
                           : 0.0;
      col.cpu_idle_pct = cpu_idle.mean();
      col.ram_load_pct = ram.mean();
      col.swap_load_pct = swap.mean();
      col.disk_used_gb = disk_used_gb.mean();
      col.sent_bps = sent_bps.mean();
      col.recv_bps = recv_bps.mean();
    }
  };

  Acc no_login;
  Acc with_login;
  std::uint64_t raw_login_samples = 0;
  std::uint64_t reclassified_samples = 0;
};

std::unique_ptr<AnalysisPass::State> AggregatePass::MakeState(
    const PassContext&) const {
  return std::make_unique<Impl>();
}

void AggregatePass::AccumulateMachine(const PassContext& ctx,
                                      std::size_t machine,
                                      State& state) const {
  auto& st = static_cast<Impl&>(state);
  const auto& c = ctx.trace.columns();
  const std::int64_t threshold = options_.forgotten_threshold_s;

  // Per-machine accumulators live in non-escaping locals so the Welford
  // state stays in registers across the tight loops, merging into the
  // chunk state once per machine. Routing every sample through a
  // class-selected reference into the chunk state instead forces each
  // update through memory — several times slower over the full trace.
  std::uint64_t raw_login = 0;
  std::uint64_t reclassified = 0;
  std::uint64_t no_n = 0;
  std::uint64_t with_n = 0;
  stats::RunningStats no_ram, no_swap, no_disk;
  stats::RunningStats with_ram, with_swap, with_disk;
  for (const std::uint32_t idx : ctx.trace.MachineSamples(machine)) {
    const auto cls = ctx.derived.SampleClass(idx, threshold);
    if (c.has_session[idx]) ++raw_login;
    if (cls == trace::LoginClass::kForgotten) ++reclassified;
    const double ram = c.mem_load_pct[idx];
    const double swap = c.swap_load_pct[idx];
    const double disk = static_cast<double>(ctx.trace.DiskUsedBytes(idx)) / 1e9;
    // Forgotten samples count as non-occupied (§4.2); the "both" column is
    // the merge of the two class accumulators, built in Finalize.
    if (cls == trace::LoginClass::kWithLogin) {
      ++with_n;
      with_ram.Add(ram);
      with_swap.Add(swap);
      with_disk.Add(disk);
    } else {
      ++no_n;
      no_ram.Add(ram);
      no_swap.Add(swap);
      no_disk.Add(disk);
    }
  }

  stats::RunningStats no_cpu, no_sent, no_recv;
  stats::RunningStats with_cpu, with_sent, with_recv;
  const auto& iv = ctx.derived.interval_columns();
  const auto range = ctx.derived.MachineIntervalRange(machine);
  for (std::size_t i = range.begin; i < range.end; ++i) {
    const auto cls = ctx.derived.IntervalClassAt(i, threshold);
    if (cls == trace::LoginClass::kWithLogin) {
      with_cpu.Add(iv.cpu_idle_pct[i]);
      with_sent.Add(iv.sent_bps[i]);
      with_recv.Add(iv.recv_bps[i]);
    } else {
      no_cpu.Add(iv.cpu_idle_pct[i]);
      no_sent.Add(iv.sent_bps[i]);
      no_recv.Add(iv.recv_bps[i]);
    }
  }

  st.raw_login_samples += raw_login;
  st.reclassified_samples += reclassified;
  st.no_login.samples += no_n;
  st.no_login.ram.Merge(no_ram);
  st.no_login.swap.Merge(no_swap);
  st.no_login.disk_used_gb.Merge(no_disk);
  st.no_login.cpu_idle.Merge(no_cpu);
  st.no_login.sent_bps.Merge(no_sent);
  st.no_login.recv_bps.Merge(no_recv);
  st.with_login.samples += with_n;
  st.with_login.ram.Merge(with_ram);
  st.with_login.swap.Merge(with_swap);
  st.with_login.disk_used_gb.Merge(with_disk);
  st.with_login.cpu_idle.Merge(with_cpu);
  st.with_login.sent_bps.Merge(with_sent);
  st.with_login.recv_bps.Merge(with_recv);
}

void AggregatePass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  a.no_login.Merge(b.no_login);
  a.with_login.Merge(b.with_login);
  a.raw_login_samples += b.raw_login_samples;
  a.reclassified_samples += b.reclassified_samples;
}

void AggregatePass::Finalize(const PassContext& ctx, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = Table2Result{};
  result_.total_attempts = ctx.trace.TotalAttempts();
  result_.iterations = ctx.trace.iterations().size();
  result_.raw_login_samples = st.raw_login_samples;
  result_.reclassified_samples = st.reclassified_samples;
  st.no_login.Fill(result_.no_login, result_.total_attempts);
  st.with_login.Fill(result_.with_login, result_.total_attempts);
  Impl::Acc both = st.no_login;
  both.Merge(st.with_login);
  both.Fill(result_.both, result_.total_attempts);
}

// ---------------------------------------------------------- availability

struct AvailabilityPass::Impl final : AnalysisPass::State {
  std::vector<std::uint32_t> on;    ///< responding machines per iteration
  std::vector<std::uint32_t> free;  ///< ... without an effective session
  stats::Histogram histogram{0.0, 96.0, 48};
  stats::RunningStats lengths;
  double uptime_total_h = 0.0;
  double uptime_within_h = 0.0;
  std::uint64_t sessions_within = 0;
  std::uint64_t total_sessions = 0;
};

std::unique_ptr<AnalysisPass::State> AvailabilityPass::MakeState(
    const PassContext& ctx) const {
  auto state = std::make_unique<Impl>();
  state->on.assign(ctx.trace.iterations().size(), 0);
  state->free.assign(ctx.trace.iterations().size(), 0);
  return state;
}

void AvailabilityPass::AccumulateMachine(const PassContext& ctx,
                                         std::size_t machine,
                                         State& state) const {
  auto& st = static_cast<Impl&>(state);
  const auto& c = ctx.trace.columns();
  for (const std::uint32_t idx : ctx.trace.MachineSamples(machine)) {
    const std::uint32_t it = c.iteration[idx];
    if (it >= st.on.size()) continue;
    ++st.on[it];
    if (ctx.derived.SampleClass(idx, forgotten_threshold_s_) !=
        trace::LoginClass::kWithLogin) {
      ++st.free[it];
    }
  }
  for (const auto& session : ctx.derived.MachineSessions(machine)) {
    const double hours = static_cast<double>(session.last_uptime_s) / 3600.0;
    st.histogram.Add(hours);
    st.lengths.Add(hours);
    st.uptime_total_h += hours;
    ++st.total_sessions;
    if (hours <= 96.0) {
      ++st.sessions_within;
      st.uptime_within_h += hours;
    }
  }
}

void AvailabilityPass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  if (a.on.size() < b.on.size()) {
    a.on.resize(b.on.size(), 0);
    a.free.resize(b.free.size(), 0);
  }
  for (std::size_t i = 0; i < b.on.size(); ++i) {
    a.on[i] += b.on[i];
    a.free[i] += b.free[i];
  }
  a.histogram.Merge(b.histogram);
  a.lengths.Merge(b.lengths);
  a.uptime_total_h += b.uptime_total_h;
  a.uptime_within_h += b.uptime_within_h;
  a.sessions_within += b.sessions_within;
  a.total_sessions += b.total_sessions;
}

void AvailabilityPass::Finalize(const PassContext& ctx, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = AvailabilityResult{};
  for (std::size_t i = 0; i < ctx.trace.iterations().size(); ++i) {
    const auto t = ctx.trace.iterations()[i].start_t;
    result_.series.powered_on.Append(t, st.on[i]);
    result_.series.user_free.Append(t, st.free[i]);
  }
  result_.series.mean_powered_on = result_.series.powered_on.Mean();
  result_.series.mean_user_free = result_.series.user_free.Mean();

  // Ranking needs only the per-machine response counts the store indexes —
  // no trace walk, so it stays in finalize (identical to the legacy code).
  result_.ranking = ComputeUptimeRanking(ctx.trace);

  auto& dist = result_.session_lengths;
  dist.histogram = st.histogram;
  dist.total_sessions = st.total_sessions;
  dist.fraction_within_96h =
      st.total_sessions == 0
          ? 0.0
          : 100.0 * static_cast<double>(st.sessions_within) /
                static_cast<double>(st.total_sessions);
  dist.uptime_fraction_within_96h =
      st.uptime_total_h > 0.0
          ? 100.0 * st.uptime_within_h / st.uptime_total_h
          : 0.0;
  dist.mean_hours = st.lengths.mean();
  dist.stddev_hours = st.lengths.stddev();
}

// --------------------------------------------------------------- per_lab

struct PerLabPass::Impl final : AnalysisPass::State {
  struct LabAcc {
    std::uint64_t samples = 0;
    std::uint64_t occupied = 0;
    stats::RunningStats idle;
    stats::RunningStats ram;
    stats::RunningStats free_disk_gb;

    void Merge(const LabAcc& o) {
      samples += o.samples;
      occupied += o.occupied;
      idle.Merge(o.idle);
      ram.Merge(o.ram);
      free_disk_gb.Merge(o.free_disk_gb);
    }
  };
  struct ClassAcc {
    stats::RunningStats pct;
    stats::RunningStats mb;
  };

  /// Per-lab accumulators plus a slot for machines outside every lab
  /// range; the fleet row and the headroom figures are merges of these,
  /// built in Finalize (one accumulation per sample, not two).
  std::vector<LabAcc> labs;
  std::map<int, ClassAcc> ram_classes;
};

std::size_t PerLabPass::LabOf(std::size_t machine) const noexcept {
  for (std::size_t l = 0; l < labs_.size(); ++l) {
    if (machine >= labs_[l].first_machine &&
        machine < labs_[l].first_machine + labs_[l].machine_count) {
      return l;
    }
  }
  return labs_.size();
}

std::unique_ptr<AnalysisPass::State> PerLabPass::MakeState(
    const PassContext&) const {
  auto state = std::make_unique<Impl>();
  state->labs.resize(labs_.size() + 1);
  return state;
}

void PerLabPass::AccumulateMachine(const PassContext& ctx,
                                   std::size_t machine, State& state) const {
  auto& st = static_cast<Impl&>(state);
  const auto& c = ctx.trace.columns();
  const std::int64_t threshold = forgotten_threshold_s_;

  // Same local-accumulator pattern as AggregatePass: a machine belongs to
  // exactly one lab and (in practice) one installed-RAM class, so the
  // whole walk accumulates into registers and merges once at the end.
  std::uint64_t samples = 0;
  std::uint64_t occupied = 0;
  stats::RunningStats ram, free_disk;
  stats::RunningStats class_pct, class_mb;
  int ram_class_mb = -1;
  for (const std::uint32_t idx : ctx.trace.MachineSamples(machine)) {
    ++samples;
    if (ctx.derived.SampleClass(idx, threshold) ==
        trace::LoginClass::kWithLogin) {
      ++occupied;
    }
    const double load = c.mem_load_pct[idx];
    ram.Add(load);
    free_disk.Add(static_cast<double>(c.disk_free_b[idx]) / 1e9);
    if (c.ram_mb[idx] > 0) {
      if (c.ram_mb[idx] != ram_class_mb) {
        if (ram_class_mb > 0) {  // rare: installed RAM changed mid-trace
          auto& flushed = st.ram_classes[ram_class_mb];
          flushed.pct.Merge(class_pct);
          flushed.mb.Merge(class_mb);
          class_pct = {};
          class_mb = {};
        }
        ram_class_mb = c.ram_mb[idx];
      }
      class_pct.Add(100.0 - load);
      class_mb.Add(ctx.trace.FreeRamMb(idx));
    }
  }

  stats::RunningStats idle;
  const auto& iv = ctx.derived.interval_columns();
  const auto range = ctx.derived.MachineIntervalRange(machine);
  for (std::size_t i = range.begin; i < range.end; ++i) {
    idle.Add(iv.cpu_idle_pct[i]);
  }

  auto& acc = st.labs[LabOf(machine)];
  acc.samples += samples;
  acc.occupied += occupied;
  acc.ram.Merge(ram);
  acc.free_disk_gb.Merge(free_disk);
  acc.idle.Merge(idle);
  if (ram_class_mb > 0) {
    auto& cls = st.ram_classes[ram_class_mb];
    cls.pct.Merge(class_pct);
    cls.mb.Merge(class_mb);
  }
}

void PerLabPass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  if (a.labs.size() < b.labs.size()) a.labs.resize(b.labs.size());
  for (std::size_t l = 0; l < b.labs.size(); ++l) a.labs[l].Merge(b.labs[l]);
  for (const auto& [ram_mb, acc] : b.ram_classes) {
    auto& mine = a.ram_classes[ram_mb];
    mine.pct.Merge(acc.pct);
    mine.mb.Merge(acc.mb);
  }
}

void PerLabPass::Finalize(const PassContext& ctx, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = PerLabResult{};

  const double iterations =
      static_cast<double>(ctx.trace.iterations().size());
  // Fleet = merge of every lab accumulator (plus the outside-any-lab slot).
  Impl::LabAcc fleet;
  for (const auto& acc : st.labs) fleet.Merge(acc);
  result_.usage.reserve(labs_.size() + 1);
  for (std::size_t l = 0; l <= labs_.size(); ++l) {
    LabUsage usage;
    if (l < labs_.size()) {
      usage.name = labs_[l].name;
      usage.machines = labs_[l].machine_count;
    } else {
      usage.name = "Fleet";
      usage.machines = ctx.trace.machine_count();
    }
    const auto& acc = l < labs_.size() ? st.labs[l] : fleet;
    usage.samples = acc.samples;
    const double attempts = iterations * static_cast<double>(usage.machines);
    usage.uptime_pct =
        attempts > 0.0
            ? 100.0 * static_cast<double>(acc.samples) / attempts
            : 0.0;
    usage.occupied_pct =
        attempts > 0.0
            ? 100.0 * static_cast<double>(acc.occupied) / attempts
            : 0.0;
    usage.cpu_idle_pct = acc.idle.mean();
    usage.ram_load_pct = acc.ram.mean();
    usage.free_disk_gb = acc.free_disk_gb.mean();
    result_.usage.push_back(std::move(usage));
  }

  auto& h = result_.headroom;
  h.cpu_idle_pct = fleet.idle.mean();
  h.unused_ram_pct = fleet.ram.count() > 0 ? 100.0 - fleet.ram.mean() : 0.0;
  h.free_disk_gb_per_machine = fleet.free_disk_gb.mean();
  h.free_disk_tb_fleet = fleet.free_disk_gb.mean() *
                         static_cast<double>(ctx.trace.machine_count()) /
                         1024.0;
  // Exact when the trace carries installed-RAM sizes; otherwise fall back
  // to the paper's fleet mean of 340.8 MB/machine (Table 1).
  stats::RunningStats free_ram_mb;
  for (const auto& [ram_mb, acc] : st.ram_classes) free_ram_mb.Merge(acc.mb);
  const double mean_free_mb = free_ram_mb.count() > 0
                                  ? free_ram_mb.mean()
                                  : h.unused_ram_pct / 100.0 * 340.8;
  h.unused_ram_gb_fleet = mean_free_mb *
                          static_cast<double>(ctx.trace.machine_count()) /
                          1024.0;
  for (const auto& [ram_mb, acc] : st.ram_classes) {
    MemoryClassHeadroom cls;
    cls.ram_mb = ram_mb;
    cls.samples = static_cast<std::uint64_t>(acc.pct.count());
    cls.unused_pct = acc.pct.mean();
    cls.free_mb = acc.mb.mean();
    h.by_ram_class.push_back(cls);
  }
}

// --------------------------------------------------------- session_hours

struct SessionHoursPass::Impl final : AnalysisPass::State {
  std::vector<stats::RunningStats> bins;
};

std::unique_ptr<AnalysisPass::State> SessionHoursPass::MakeState(
    const PassContext&) const {
  auto state = std::make_unique<Impl>();
  state->bins.resize(static_cast<std::size_t>(max_hours_) + 1);
  return state;
}

void SessionHoursPass::AccumulateMachine(const PassContext& ctx,
                                         std::size_t machine,
                                         State& state) const {
  auto& st = static_cast<Impl&>(state);
  const auto& c = ctx.trace.columns();
  // Figure 2 is computed on raw login samples — no threshold filtering
  // (this analysis is what *establishes* the threshold), so only the
  // closing sample's session presence matters, not the interval class.
  // Session hours grow monotonically within a login, so consecutive
  // intervals land in the same bin; a one-bin local accumulator keeps the
  // hot Welford state in registers and flushes on bin changes.
  stats::RunningStats local;
  std::size_t local_bin = 0;
  const auto& iv = ctx.derived.interval_columns();
  const auto range = ctx.derived.MachineIntervalRange(machine);
  for (std::size_t i = range.begin; i < range.end; ++i) {
    const std::uint32_t closing = iv.end_index[i];
    if (!c.has_session[closing]) continue;
    const auto hour = ctx.trace.SessionSeconds(closing) / 3600;
    const auto bin = static_cast<std::size_t>(
        std::min<std::int64_t>(hour, max_hours_));
    if (bin != local_bin) {
      st.bins[local_bin].Merge(local);
      local = {};
      local_bin = bin;
    }
    local.Add(iv.cpu_idle_pct[i]);
  }
  st.bins[local_bin].Merge(local);
}

void SessionHoursPass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  for (std::size_t i = 0; i < a.bins.size(); ++i) a.bins[i].Merge(b.bins[i]);
}

void SessionHoursPass::Finalize(const PassContext&, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = SessionHourProfile{};
  result_.bins.reserve(st.bins.size());
  for (std::size_t h = 0; h < st.bins.size(); ++h) {
    SessionHourBin bin;
    bin.hour = static_cast<int>(h);
    bin.samples = static_cast<std::uint64_t>(st.bins[h].count());
    bin.mean_cpu_idle_pct = st.bins[h].mean();
    result_.bins.push_back(bin);
    if (result_.first_bin_above_99 < 0 && bin.samples > 0 &&
        bin.mean_cpu_idle_pct >= 99.0) {
      result_.first_bin_above_99 = bin.hour;
    }
  }
}

// ---------------------------------------------------------------- weekly

struct WeeklyPass::Impl final : AnalysisPass::State {
  explicit Impl(int bin_minutes)
      : cpu_idle(bin_minutes),
        ram(bin_minutes),
        swap(bin_minutes),
        sent(bin_minutes),
        recv(bin_minutes) {}
  stats::WeeklyProfile cpu_idle;
  stats::WeeklyProfile ram;
  stats::WeeklyProfile swap;
  stats::WeeklyProfile sent;
  stats::WeeklyProfile recv;
};

std::unique_ptr<AnalysisPass::State> WeeklyPass::MakeState(
    const PassContext&) const {
  return std::make_unique<Impl>(bin_minutes_);
}

void WeeklyPass::AccumulateMachine(const PassContext& ctx,
                                   std::size_t machine, State& state) const {
  auto& st = static_cast<Impl&>(state);
  const auto& c = ctx.trace.columns();
  // A machine's consecutive samples are almost always exactly one bin
  // width apart, and stepping t by the bin width moves the week-folded
  // bin to its successor (mod week) regardless of alignment — so the bin
  // index is tracked incrementally, keeping the 64-bit modulo and
  // divisions of BinOf off the hot path.
  const std::size_t bin_count = st.ram.bin_count();
  const std::int64_t bin_seconds =
      static_cast<std::int64_t>(st.ram.bin_minutes()) *
      util::kSecondsPerMinute;
  std::int64_t prev_t = -2 * bin_seconds;  // never one bin before t >= 0
  std::size_t bin = 0;
  for (const std::uint32_t idx : ctx.trace.MachineSamples(machine)) {
    const std::int64_t t = c.t[idx];
    if (t - prev_t == bin_seconds) {
      if (++bin == bin_count) bin = 0;
    } else {
      bin = st.ram.BinOf(t);
    }
    prev_t = t;
    st.ram.AddAt(bin, c.mem_load_pct[idx]);
    st.swap.AddAt(bin, c.swap_load_pct[idx]);
  }
  prev_t = -2 * bin_seconds;
  bin = 0;
  const auto& iv = ctx.derived.interval_columns();
  const auto range = ctx.derived.MachineIntervalRange(machine);
  for (std::size_t i = range.begin; i < range.end; ++i) {
    const std::int64_t t = iv.end_t[i];
    if (t - prev_t == bin_seconds) {
      if (++bin == bin_count) bin = 0;
    } else {
      bin = st.cpu_idle.BinOf(t);
    }
    prev_t = t;
    st.cpu_idle.AddAt(bin, iv.cpu_idle_pct[i]);
    st.sent.AddAt(bin, iv.sent_bps[i]);
    st.recv.AddAt(bin, iv.recv_bps[i]);
  }
}

void WeeklyPass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  a.cpu_idle.Merge(b.cpu_idle);
  a.ram.Merge(b.ram);
  a.swap.Merge(b.swap);
  a.sent.Merge(b.sent);
  a.recv.Merge(b.recv);
}

void WeeklyPass::Finalize(const PassContext&, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = WeeklyProfiles{std::move(st.cpu_idle), std::move(st.ram),
                           std::move(st.swap),     std::move(st.sent),
                           std::move(st.recv),     0.0,
                           {},                     0.0,
                           0.0};
  result_.min_cpu_idle_pct = result_.cpu_idle_pct.MinBinMean();
  const auto argmin = result_.cpu_idle_pct.ArgMinBin();
  if (argmin != static_cast<std::size_t>(-1)) {
    result_.min_cpu_idle_when = result_.cpu_idle_pct.BinLabel(argmin);
  }
  result_.min_ram_load_pct = result_.ram_load_pct.MinBinMean();
  // The 04:00–08:00 closed window, averaged over Tue–Fri mornings
  // (Monday's 04–08 follows the closed Sunday so machines are mostly off).
  double closed_sum = 0.0;
  int closed_n = 0;
  for (int day = 1; day <= 4; ++day) {  // Tue..Fri
    const int lo = day * 24 * 60 + 4 * 60;
    const int hi = day * 24 * 60 + 8 * 60;
    const double v = result_.cpu_idle_pct.MeanOverWindow(lo, hi);
    if (v > 0.0) {
      closed_sum += v;
      ++closed_n;
    }
  }
  result_.closed_hours_cpu_idle = closed_n ? closed_sum / closed_n : 0.0;
}

// ----------------------------------------------------------- equivalence

struct EquivalencePass::Impl final : AnalysisPass::State {
  std::vector<double> occupied_sum;  ///< per iteration, perf-weighted
  std::vector<double> free_sum;
};

std::unique_ptr<AnalysisPass::State> EquivalencePass::MakeState(
    const PassContext& ctx) const {
  auto state = std::make_unique<Impl>();
  state->occupied_sum.assign(ctx.trace.iterations().size(), 0.0);
  state->free_sum.assign(ctx.trace.iterations().size(), 0.0);
  return state;
}

void EquivalencePass::AccumulateMachine(const PassContext& ctx,
                                        std::size_t machine,
                                        State& state) const {
  auto& st = static_cast<Impl&>(state);
  if (machine >= perf_index_.size()) return;
  const auto& c = ctx.trace.columns();
  const auto& iv = ctx.derived.interval_columns();
  const auto range = ctx.derived.MachineIntervalRange(machine);
  const double perf = perf_index_[machine];
  for (std::size_t i = range.begin; i < range.end; ++i) {
    const std::uint32_t it = c.iteration[iv.end_index[i]];
    if (it >= st.occupied_sum.size()) continue;
    const double contribution = iv.cpu_idle_pct[i] / 100.0 * perf;
    if (ctx.derived.IntervalClassAt(i, forgotten_threshold_s_) ==
        trace::LoginClass::kWithLogin) {
      st.occupied_sum[it] += contribution;
    } else {
      st.free_sum[it] += contribution;
    }
  }
}

void EquivalencePass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  if (a.occupied_sum.size() < b.occupied_sum.size()) {
    a.occupied_sum.resize(b.occupied_sum.size(), 0.0);
    a.free_sum.resize(b.free_sum.size(), 0.0);
  }
  for (std::size_t i = 0; i < b.occupied_sum.size(); ++i) {
    a.occupied_sum[i] += b.occupied_sum[i];
    a.free_sum[i] += b.free_sum[i];
  }
}

void EquivalencePass::Finalize(const PassContext& ctx, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  assert(perf_index_.size() >= ctx.trace.machine_count());
  double fleet_perf = 0.0;
  for (std::size_t m = 0; m < ctx.trace.machine_count(); ++m) {
    fleet_perf += perf_index_[m];
  }

  result_ = EquivalenceResult{stats::WeeklyProfile(bin_minutes_),
                              stats::WeeklyProfile(bin_minutes_),
                              stats::WeeklyProfile(bin_minutes_)};
  if (fleet_perf <= 0.0 || ctx.trace.iterations().empty()) return;

  stats::RunningStats occupied_mean;
  stats::RunningStats free_mean;
  for (std::size_t it = 0; it < ctx.trace.iterations().size(); ++it) {
    const auto t = ctx.trace.iterations()[it].start_t;
    const double occ = st.occupied_sum[it] / fleet_perf;
    const double fre = st.free_sum[it] / fleet_perf;
    result_.weekly_occupied.Add(t, occ);
    result_.weekly_free.Add(t, fre);
    result_.weekly_total.Add(t, occ + fre);
    occupied_mean.Add(occ);
    free_mean.Add(fre);
  }
  result_.mean_occupied = occupied_mean.mean();
  result_.mean_free = free_mean.mean();
  result_.mean_total = result_.mean_occupied + result_.mean_free;
}

// ------------------------------------------------------------- stability

struct StabilityPass::Impl final : AnalysisPass::State {
  stats::RunningStats lengths;  ///< session lengths in hours
  std::uint64_t session_count = 0;
  stats::RunningStats per_machine_cycles;
  stats::RunningStats experiment_ratio;
  stats::RunningStats life_ratio;
  std::uint64_t total_cycles = 0;
};

std::unique_ptr<AnalysisPass::State> StabilityPass::MakeState(
    const PassContext&) const {
  return std::make_unique<Impl>();
}

void StabilityPass::AccumulateMachine(const PassContext& ctx,
                                      std::size_t machine,
                                      State& state) const {
  auto& st = static_cast<Impl&>(state);
  for (const auto& session : ctx.derived.MachineSessions(machine)) {
    st.lengths.Add(static_cast<double>(session.last_uptime_s) / 3600.0);
    ++st.session_count;
  }

  const auto indices = ctx.trace.MachineSamples(machine);
  if (indices.empty()) return;
  const auto& c = ctx.trace.columns();
  const std::uint32_t first = indices.front();
  const std::uint32_t last = indices.back();
  // Cycles accumulated during the monitoring window. The first sample's
  // counter already includes the boot that made the machine reachable, so
  // the difference undercounts by the pre-first-sample boots — the same
  // bias the real methodology has.
  const std::uint64_t cycles =
      c.smart_power_cycles[last] - c.smart_power_cycles[first];
  const std::uint64_t hours =
      c.smart_power_on_hours[last] - c.smart_power_on_hours[first];
  st.total_cycles += cycles;
  st.per_machine_cycles.Add(static_cast<double>(cycles));
  if (cycles > 0) {
    st.experiment_ratio.Add(static_cast<double>(hours) /
                            static_cast<double>(cycles));
  }
  // Whole-life ratio from the absolute counters of the last sample.
  if (c.smart_power_cycles[last] > 0) {
    st.life_ratio.Add(static_cast<double>(c.smart_power_on_hours[last]) /
                      static_cast<double>(c.smart_power_cycles[last]));
  }
}

void StabilityPass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  a.lengths.Merge(b.lengths);
  a.session_count += b.session_count;
  a.per_machine_cycles.Merge(b.per_machine_cycles);
  a.experiment_ratio.Merge(b.experiment_ratio);
  a.life_ratio.Merge(b.life_ratio);
  a.total_cycles += b.total_cycles;
}

void StabilityPass::Finalize(const PassContext&, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = StabilityResult{};
  result_.sessions.session_count = st.session_count;
  result_.sessions.mean_hours = st.lengths.mean();
  result_.sessions.stddev_hours = st.lengths.stddev();

  auto& smart = result_.smart;
  smart.experiment_cycles = st.total_cycles;
  smart.cycles_per_machine_mean = st.per_machine_cycles.mean();
  smart.cycles_per_machine_stddev = st.per_machine_cycles.stddev();
  smart.cycles_per_machine_day =
      experiment_days_ > 0
          ? st.per_machine_cycles.mean() / experiment_days_
          : 0.0;
  smart.cycle_excess_over_sessions_pct =
      st.session_count > 0
          ? 100.0 * (static_cast<double>(st.total_cycles) /
                         static_cast<double>(st.session_count) -
                     1.0)
          : 0.0;
  smart.experiment_hours_per_cycle_mean = st.experiment_ratio.mean();
  smart.experiment_hours_per_cycle_stddev = st.experiment_ratio.stddev();
  smart.life_hours_per_cycle_mean = st.life_ratio.mean();
  smart.life_hours_per_cycle_stddev = st.life_ratio.stddev();
}

// -------------------------------------------------------------- capacity

struct CapacityPass::Impl final : AnalysisPass::State {
  std::vector<double> ram_mb_sum;   ///< per iteration
  std::vector<double> disk_gb_sum;
};

std::unique_ptr<AnalysisPass::State> CapacityPass::MakeState(
    const PassContext& ctx) const {
  auto state = std::make_unique<Impl>();
  state->ram_mb_sum.assign(ctx.trace.iterations().size(), 0.0);
  state->disk_gb_sum.assign(ctx.trace.iterations().size(), 0.0);
  return state;
}

void CapacityPass::AccumulateMachine(const PassContext& ctx,
                                     std::size_t machine,
                                     State& state) const {
  auto& st = static_cast<Impl&>(state);
  const auto& c = ctx.trace.columns();
  for (const std::uint32_t idx : ctx.trace.MachineSamples(machine)) {
    const std::uint32_t it = c.iteration[idx];
    if (it >= st.ram_mb_sum.size()) continue;
    st.ram_mb_sum[it] += ctx.trace.FreeRamMb(idx);
    st.disk_gb_sum[it] += static_cast<double>(c.disk_free_b[idx]) / 1e9;
  }
}

void CapacityPass::MergeState(State& into, State& from) const {
  auto& a = static_cast<Impl&>(into);
  auto& b = static_cast<Impl&>(from);
  if (a.ram_mb_sum.size() < b.ram_mb_sum.size()) {
    a.ram_mb_sum.resize(b.ram_mb_sum.size(), 0.0);
    a.disk_gb_sum.resize(b.disk_gb_sum.size(), 0.0);
  }
  for (std::size_t i = 0; i < b.ram_mb_sum.size(); ++i) {
    a.ram_mb_sum[i] += b.ram_mb_sum[i];
    a.disk_gb_sum[i] += b.disk_gb_sum[i];
  }
}

void CapacityPass::Finalize(const PassContext& ctx, State& merged) {
  auto& st = static_cast<Impl&>(merged);
  result_ = CapacityResult();
  const std::size_t iterations = ctx.trace.iterations().size();
  const double replication = std::max(1, options_.replication);
  std::vector<double> ram_points;
  std::vector<double> disk_points;
  ram_points.reserve(iterations);
  disk_points.reserve(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto t = ctx.trace.iterations()[i].start_t;
    const double ram_gb = st.ram_mb_sum[i] / 1024.0 *
                          options_.ram_donation_fraction / replication;
    const double disk_tb = st.disk_gb_sum[i] / 1024.0 *
                           options_.disk_donation_fraction / replication;
    result_.ram_gb.Append(t, ram_gb);
    result_.ram_gb_weekly.Add(t, ram_gb);
    result_.disk_tb.Append(t, disk_tb);
    ram_points.push_back(ram_gb);
    disk_points.push_back(disk_tb);
  }
  result_.mean_ram_gb = result_.ram_gb.Mean();
  result_.p10_ram_gb = Percentile(ram_points, 0.10);
  result_.mean_disk_tb = result_.disk_tb.Mean();
  result_.p10_disk_tb = Percentile(disk_points, 0.10);
}

}  // namespace labmon::analysis
