#include "labmon/analysis/weekly.hpp"

#include "labmon/obs/span.hpp"

#include "labmon/trace/intervals.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/util/table.hpp"

namespace labmon::analysis {

WeeklyProfiles ComputeWeeklyProfiles(const trace::TraceStore& trace,
                                     int bin_minutes) {
  obs::Span span("analysis.weekly");
  WeeklyProfiles p{stats::WeeklyProfile(bin_minutes),
                   stats::WeeklyProfile(bin_minutes),
                   stats::WeeklyProfile(bin_minutes),
                   stats::WeeklyProfile(bin_minutes),
                   stats::WeeklyProfile(bin_minutes),
                   0.0,
                   {},
                   0.0,
                   0.0};

  for (const auto& s : trace.samples()) {
    p.ram_load_pct.Add(s.t, s.mem_load_pct);
    p.swap_load_pct.Add(s.t, s.swap_load_pct);
  }
  trace::ForEachInterval(trace, {}, [&](const trace::SampleInterval& i) {
    p.cpu_idle_pct.Add(i.end_t, i.cpu_idle_pct);
    p.sent_bps.Add(i.end_t, i.sent_bps);
    p.recv_bps.Add(i.end_t, i.recv_bps);
  });

  p.min_cpu_idle_pct = p.cpu_idle_pct.MinBinMean();
  const auto argmin = p.cpu_idle_pct.ArgMinBin();
  if (argmin != static_cast<std::size_t>(-1)) {
    p.min_cpu_idle_when = p.cpu_idle_pct.BinLabel(argmin);
  }
  p.min_ram_load_pct = p.ram_load_pct.MinBinMean();
  // The 04:00–08:00 closed window, averaged over Tue–Fri mornings (Monday's
  // 04–08 follows the closed Sunday so machines are mostly off).
  double closed_sum = 0.0;
  int closed_n = 0;
  for (int day = 1; day <= 4; ++day) {  // Tue..Fri
    const int lo = day * 24 * 60 + 4 * 60;
    const int hi = day * 24 * 60 + 8 * 60;
    const double v = p.cpu_idle_pct.MeanOverWindow(lo, hi);
    if (v > 0.0) {
      closed_sum += v;
      ++closed_n;
    }
  }
  p.closed_hours_cpu_idle = closed_n ? closed_sum / closed_n : 0.0;
  return p;
}

std::string RenderWeeklyProfiles(const WeeklyProfiles& profiles) {
  util::AsciiTable table(
      "Figure 5: weekly distribution (hourly means across the week)");
  table.SetHeader({"When", "CPU idle %", "RAM %", "SWAP %", "sent bps",
                   "recv bps"});
  const int per_hour = 60 / profiles.cpu_idle_pct.bin_minutes();
  for (int hour_of_week = 0; hour_of_week < 7 * 24; hour_of_week += 2) {
    const int lo = hour_of_week * 60;
    const int hi = lo + 120;
    const auto label =
        profiles.cpu_idle_pct.BinLabel(static_cast<std::size_t>(
            hour_of_week * per_hour));
    table.AddRow({label,
                  util::FormatFixed(
                      profiles.cpu_idle_pct.MeanOverWindow(lo, hi), 2),
                  util::FormatFixed(
                      profiles.ram_load_pct.MeanOverWindow(lo, hi), 1),
                  util::FormatFixed(
                      profiles.swap_load_pct.MeanOverWindow(lo, hi), 1),
                  util::FormatFixed(profiles.sent_bps.MeanOverWindow(lo, hi), 0),
                  util::FormatFixed(profiles.recv_bps.MeanOverWindow(lo, hi),
                                    0)});
  }
  std::string out = table.Render();
  out += "min weekly CPU idleness: " +
         util::FormatFixed(profiles.min_cpu_idle_pct, 2) + "% at " +
         profiles.min_cpu_idle_when +
         " (paper: <91% on Tuesday afternoon, never below 90%)\n";
  out += "min weekly RAM load: " +
         util::FormatFixed(profiles.min_ram_load_pct, 1) +
         "% (paper: never below 50%)\n";
  out += "closed-hours (Tue-Fri 04:00-08:00) CPU idleness: " +
         util::FormatFixed(profiles.closed_hours_cpu_idle, 2) +
         "% (paper: ~100%)\n";
  return out;
}

}  // namespace labmon::analysis
