#include "labmon/analysis/equivalence.hpp"

#include "labmon/obs/span.hpp"

#include <cassert>

#include "labmon/stats/running_stats.hpp"
#include "labmon/trace/intervals.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/util/table.hpp"

namespace labmon::analysis {

EquivalenceResult ComputeEquivalence(const trace::TraceStore& trace,
                                     const std::vector<double>& perf_index,
                                     int bin_minutes,
                                     std::int64_t forgotten_threshold_s) {
  obs::Span span("analysis.equivalence");
  assert(perf_index.size() >= trace.machine_count());
  double fleet_perf = 0.0;
  for (std::size_t m = 0; m < trace.machine_count(); ++m) {
    fleet_perf += perf_index[m];
  }

  EquivalenceResult result{stats::WeeklyProfile(bin_minutes),
                           stats::WeeklyProfile(bin_minutes),
                           stats::WeeklyProfile(bin_minutes),
                           0.0,
                           0.0,
                           0.0};
  if (fleet_perf <= 0.0 || trace.iterations().empty()) return result;

  // Accumulate per-iteration performance-weighted idleness by class.
  const std::size_t iterations = trace.iterations().size();
  std::vector<double> occupied_sum(iterations, 0.0);
  std::vector<double> free_sum(iterations, 0.0);

  trace::IntervalOptions options;
  options.forgotten_threshold_s = forgotten_threshold_s;
  trace::ForEachInterval(trace, options, [&](const trace::SampleInterval& i) {
    const auto& closing = trace.samples()[i.end_index];
    if (closing.iteration >= iterations) return;
    const double contribution =
        i.cpu_idle_pct / 100.0 * perf_index[i.machine];
    if (i.login_class == trace::LoginClass::kWithLogin) {
      occupied_sum[closing.iteration] += contribution;
    } else {
      free_sum[closing.iteration] += contribution;
    }
  });

  stats::RunningStats occupied_mean;
  stats::RunningStats free_mean;
  for (std::size_t it = 0; it < iterations; ++it) {
    const auto t = trace.iterations()[it].start_t;
    const double occ = occupied_sum[it] / fleet_perf;
    const double fre = free_sum[it] / fleet_perf;
    result.weekly_occupied.Add(t, occ);
    result.weekly_free.Add(t, fre);
    result.weekly_total.Add(t, occ + fre);
    occupied_mean.Add(occ);
    free_mean.Add(fre);
  }
  result.mean_occupied = occupied_mean.mean();
  result.mean_free = free_mean.mean();
  result.mean_total = result.mean_occupied + result.mean_free;
  return result;
}

std::string RenderEquivalence(const EquivalenceResult& result) {
  util::AsciiTable table(
      "Figure 6: weekly distribution of the cluster-equivalence ratio");
  table.SetHeader({"When", "Occupied", "User-free", "Total"});
  const int per_hour = 60 / result.weekly_total.bin_minutes();
  for (int hour_of_week = 0; hour_of_week < 7 * 24; hour_of_week += 4) {
    const int lo = hour_of_week * 60;
    const int hi = lo + 240;
    table.AddRow(
        {result.weekly_total.BinLabel(
             static_cast<std::size_t>(hour_of_week * per_hour)),
         util::FormatFixed(result.weekly_occupied.MeanOverWindow(lo, hi), 3),
         util::FormatFixed(result.weekly_free.MeanOverWindow(lo, hi), 3),
         util::FormatFixed(result.weekly_total.MeanOverWindow(lo, hi), 3)});
  }
  std::string out = table.Render();
  out += "mean equivalence ratio, occupied machines: " +
         util::FormatFixed(result.mean_occupied, 3) + " (paper: 0.26)\n";
  out += "mean equivalence ratio, user-free machines: " +
         util::FormatFixed(result.mean_free, 3) + " (paper: 0.25)\n";
  out += "mean equivalence ratio, total: " +
         util::FormatFixed(result.mean_total, 3) +
         " (paper: 0.51 — the 2:1 rule)\n";
  return out;
}

}  // namespace labmon::analysis
