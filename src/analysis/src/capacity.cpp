#include "labmon/analysis/capacity.hpp"

#include "labmon/obs/span.hpp"

#include <algorithm>
#include <vector>

#include "labmon/util/strings.hpp"

namespace labmon::analysis {

namespace {

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

CapacityResult ComputeHarvestableCapacity(const trace::TraceStore& trace,
                                          const CapacityOptions& options) {
  obs::Span span("analysis.capacity");
  CapacityResult result;
  const std::size_t iterations = trace.iterations().size();
  std::vector<double> ram_mb_sum(iterations, 0.0);
  std::vector<double> disk_gb_sum(iterations, 0.0);
  for (const auto& s : trace.samples()) {
    if (s.iteration >= iterations) continue;
    ram_mb_sum[s.iteration] += s.FreeRamMb();
    disk_gb_sum[s.iteration] += static_cast<double>(s.disk_free_b) / 1e9;
  }

  const double replication =
      std::max(1, options.replication);
  std::vector<double> ram_points;
  std::vector<double> disk_points;
  ram_points.reserve(iterations);
  disk_points.reserve(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto t = trace.iterations()[i].start_t;
    const double ram_gb = ram_mb_sum[i] / 1024.0 *
                          options.ram_donation_fraction / replication;
    const double disk_tb = disk_gb_sum[i] / 1024.0 *
                           options.disk_donation_fraction / replication;
    result.ram_gb.Append(t, ram_gb);
    result.ram_gb_weekly.Add(t, ram_gb);
    result.disk_tb.Append(t, disk_tb);
    ram_points.push_back(ram_gb);
    disk_points.push_back(disk_tb);
  }
  result.mean_ram_gb = result.ram_gb.Mean();
  result.p10_ram_gb = Percentile(ram_points, 0.10);
  result.mean_disk_tb = result.disk_tb.Mean();
  result.p10_disk_tb = Percentile(disk_points, 0.10);
  return result;
}

std::string RenderCapacity(const CapacityResult& result,
                           const CapacityOptions& options) {
  using util::FormatFixed;
  std::string out = "Harvestable capacity (replication x" +
                    std::to_string(options.replication) + ", donating " +
                    FormatFixed(100.0 * options.ram_donation_fraction, 0) +
                    "% of free RAM / " +
                    FormatFixed(100.0 * options.disk_donation_fraction, 0) +
                    "% of free disk):\n";
  out += "  network RAM: mean " + FormatFixed(result.mean_ram_gb, 1) +
         " GB, dependable floor (p10) " + FormatFixed(result.p10_ram_gb, 1) +
         " GB\n";
  out += "  distributed backup: mean " + FormatFixed(result.mean_disk_tb, 2) +
         " TB, dependable floor (p10) " +
         FormatFixed(result.p10_disk_tb, 2) + " TB\n";
  return out;
}

}  // namespace labmon::analysis
