#include "labmon/analysis/stability.hpp"

#include "labmon/obs/span.hpp"

#include "labmon/stats/running_stats.hpp"
#include "labmon/util/strings.hpp"
#include "labmon/util/table.hpp"

namespace labmon::analysis {

SessionStats ComputeSessionStats(
    const std::vector<trace::MachineSession>& sessions) {
  obs::Span span("analysis.session_stats");
  SessionStats out;
  stats::RunningStats lengths;
  for (const auto& s : sessions) {
    lengths.Add(static_cast<double>(s.last_uptime_s) / 3600.0);
  }
  out.session_count = sessions.size();
  out.mean_hours = lengths.mean();
  out.stddev_hours = lengths.stddev();
  return out;
}

SmartStats ComputeSmartStats(const trace::TraceStore& trace,
                             std::uint64_t session_count,
                             int experiment_days) {
  obs::Span span("analysis.smart_stats");
  SmartStats out;
  stats::RunningStats per_machine_cycles;
  stats::RunningStats experiment_ratio;
  stats::RunningStats life_ratio;
  std::uint64_t total_cycles = 0;

  for (std::size_t m = 0; m < trace.machine_count(); ++m) {
    const auto indices = trace.MachineSamples(m);
    if (indices.empty()) continue;
    const auto& first = trace.samples()[indices.front()];
    const auto& last = trace.samples()[indices.back()];

    // Cycles accumulated during the monitoring window. The first sample's
    // counter already includes the boot that made the machine reachable, so
    // the difference undercounts by the pre-first-sample boots — the same
    // bias the real methodology has.
    const std::uint64_t cycles =
        last.smart_power_cycles - first.smart_power_cycles;
    const std::uint64_t hours =
        last.smart_power_on_hours - first.smart_power_on_hours;
    total_cycles += cycles;
    per_machine_cycles.Add(static_cast<double>(cycles));
    if (cycles > 0) {
      experiment_ratio.Add(static_cast<double>(hours) /
                           static_cast<double>(cycles));
    }
    // Whole-life ratio from the absolute counters of the last sample.
    if (last.smart_power_cycles > 0) {
      life_ratio.Add(static_cast<double>(last.smart_power_on_hours) /
                     static_cast<double>(last.smart_power_cycles));
    }
  }

  out.experiment_cycles = total_cycles;
  out.cycles_per_machine_mean = per_machine_cycles.mean();
  out.cycles_per_machine_stddev = per_machine_cycles.stddev();
  out.cycles_per_machine_day =
      experiment_days > 0 ? per_machine_cycles.mean() / experiment_days : 0.0;
  out.cycle_excess_over_sessions_pct =
      session_count > 0
          ? 100.0 * (static_cast<double>(total_cycles) /
                         static_cast<double>(session_count) -
                     1.0)
          : 0.0;
  out.experiment_hours_per_cycle_mean = experiment_ratio.mean();
  out.experiment_hours_per_cycle_stddev = experiment_ratio.stddev();
  out.life_hours_per_cycle_mean = life_ratio.mean();
  out.life_hours_per_cycle_stddev = life_ratio.stddev();
  return out;
}

std::string RenderStability(const SessionStats& sessions,
                            const SmartStats& smart) {
  using util::FormatFixed;
  util::AsciiTable table("Machine stability (paper §5.2) — measured vs paper");
  table.SetHeader({"Metric", "Measured", "Paper"});
  table.AddRow({"Machine sessions captured",
                std::to_string(sessions.session_count), "10688"});
  table.AddRow({"Avg session length (h)", FormatFixed(sessions.mean_hours, 2),
                "15.92"});
  table.AddRow({"Session length stddev (h)",
                FormatFixed(sessions.stddev_hours, 2), "26.65"});
  table.AddSeparator();
  table.AddRow({"SMART power cycles (experiment)",
                std::to_string(smart.experiment_cycles), "13871"});
  table.AddRow({"Cycles per machine",
                FormatFixed(smart.cycles_per_machine_mean, 2), "82.57"});
  table.AddRow({"Cycles per machine stddev",
                FormatFixed(smart.cycles_per_machine_stddev, 2), "37.05"});
  table.AddRow({"Cycles per machine-day",
                FormatFixed(smart.cycles_per_machine_day, 2), "1.07"});
  table.AddRow({"Cycle excess over sessions (%)",
                FormatFixed(smart.cycle_excess_over_sessions_pct, 1), "~30"});
  table.AddRow({"Uptime per cycle, experiment (h)",
                FormatFixed(smart.experiment_hours_per_cycle_mean, 2),
                "13.90"});
  table.AddRow({"Uptime per cycle stddev (h)",
                FormatFixed(smart.experiment_hours_per_cycle_stddev, 2),
                "~8"});
  table.AddRow({"Uptime per cycle, whole life (h)",
                FormatFixed(smart.life_hours_per_cycle_mean, 2), "6.46"});
  table.AddRow({"Whole-life stddev (h)",
                FormatFixed(smart.life_hours_per_cycle_stddev, 2), "4.78"});
  return table.Render();
}

}  // namespace labmon::analysis
